// Firewall / intrusion-detection scenario (§4.4).
//
// The split-service pattern: a SYN-monitor *data* forwarder runs on the
// MicroEngines for every packet, while a *control* forwarder on the Pentium
// polls its counters. When a SYN flood starts mid-run, the detector
// installs the port-filter data forwarder — through admission control —
// and the attack traffic dies at line rate while legitimate traffic is
// untouched.

#include <cstdio>
#include <functional>

#include "src/core/router.h"
#include "src/forwarders/control.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"

using namespace npr;

int main() {
  Router router((RouterConfig()));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);

  uint64_t delivered_good = 0, delivered_attack = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    router.port(p).SetSink([&](Packet&& packet) {
      auto ip = Ipv4Header::Parse(packet.l3());
      if (ip && ip->protocol == kIpProtoTcp) {
        auto tcp = TcpHeader::Parse(packet.l4());
        if (tcp && tcp->dst_port >= 6000 && tcp->dst_port <= 6999) {
          ++delivered_attack;
          return;
        }
      }
      ++delivered_good;
    });
  }

  // Data half: SYN monitor over all packets.
  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  auto monitor_fid = router.Install(req);
  if (!monitor_fid.ok) {
    std::fprintf(stderr, "%s\n", monitor_fid.error.c_str());
    return 1;
  }

  // Control half: poll every 2 ms; more than 400 SYNs between polls = flood.
  SynFloodDetector detector(router, monitor_fid.fid, /*threshold_per_poll=*/200);
  detector.SetBlockedRange(6000, 6999);
  std::function<void()> poll = [&] {
    const bool deployed_before = detector.attack_detected();
    detector.Poll();
    if (!deployed_before && detector.attack_detected()) {
      std::printf("[%6.2f ms] SYN flood detected -> port filter installed as fid %u\n",
                  static_cast<double>(router.engine().now()) / kPsPerMs,
                  detector.filter_fid());
    }
    router.engine().ScheduleIn(2 * kPsPerMs, poll);
  };
  router.engine().ScheduleIn(2 * kPsPerMs, poll);

  router.Start();

  // Phase 1 (0-10 ms): normal traffic on ports 0-3.
  std::vector<std::unique_ptr<TrafficGen>> generators;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 100'000;
    spec.protocol = kIpProtoTcp;
    generators.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                      static_cast<uint64_t>(p + 1)));
    generators.back()->Start(30 * kPsPerMs);
  }
  router.RunForMs(10.0);
  std::printf("[%6.2f ms] baseline: %llu good packets delivered, attack port quiet\n",
              static_cast<double>(router.engine().now()) / kPsPerMs,
              static_cast<unsigned long long>(delivered_good));

  // Phase 2 (10-30 ms): a SYN flood against TCP port 6667 joins on port 4.
  {
    TrafficSpec flood;
    flood.rate_pps = 140'000;
    flood.protocol = kIpProtoTcp;
    flood.syn_fraction = 1.0;
    flood.dst_port = 6667;  // inside the detector's blocked range
    flood.pattern = TrafficSpec::DstPattern::kSinglePort;
    flood.single_dst_port = 2;
    auto gen = std::make_unique<TrafficGen>(router.engine(), router.port(4), flood, 99);
    gen->Start(30 * kPsPerMs);
    generators.push_back(std::move(gen));
  }

  const uint64_t attack_before_detect = delivered_attack;
  router.RunForMs(20.0);

  std::printf("[%6.2f ms] final: good=%llu attack-delivered=%llu dropped-by-filter=%llu\n",
              static_cast<double>(router.engine().now()) / kPsPerMs,
              static_cast<unsigned long long>(delivered_good),
              static_cast<unsigned long long>(delivered_attack),
              static_cast<unsigned long long>(router.stats().dropped_by_vrp));
  std::printf("attack packets delivered before detection: %llu\n",
              static_cast<unsigned long long>(attack_before_detect));
  std::printf("filter deployed: %s\n", detector.attack_detected() ? "yes" : "no");
  return 0;
}
