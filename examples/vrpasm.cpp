// vrpasm — assemble, verify, and cost a VRP forwarder from the command line.
//
//   vrpasm <file.vrp> [--budget-mpps <rate>] [--disasm]
//   vrpasm --builtin <name> [--disasm]      (splicer|wavelet|ack|syn|filter|ip|dscp|limiter)
//
// Prints what admission control would decide: worst-case cycles, SRAM
// transfers, hashes, ISTORE slots, and the verdict against the VRP budget
// for the given line rate (default: the prototype's 1.128 Mpps budget).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/forwarders/vrp_programs.h"
#include "src/vrp/assembler.h"
#include "src/vrp/budget.h"
#include "src/vrp/verifier.h"

using namespace npr;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: vrpasm <file.vrp> [--budget-mpps <rate>] [--disasm]\n"
               "       vrpasm --builtin <name> [--disasm]\n"
               "builtins: splicer wavelet ack syn filter ip dscp limiter\n");
  return 2;
}

bool Builtin(const std::string& name, VrpProgram* out) {
  if (name == "splicer") {
    *out = BuildTcpSplicer();
  } else if (name == "wavelet") {
    *out = BuildWaveletDropper();
  } else if (name == "ack") {
    *out = BuildAckMonitor();
  } else if (name == "syn") {
    *out = BuildSynMonitor();
  } else if (name == "filter") {
    *out = BuildPortFilter();
  } else if (name == "ip") {
    *out = BuildIpMinimal();
  } else if (name == "dscp") {
    *out = BuildDscpTagger();
  } else if (name == "limiter") {
    *out = BuildRateLimiter();
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }

  VrpProgram program;
  bool disasm = false;
  double budget_mpps = 0;  // 0 = prototype budget

  int arg = 1;
  if (std::strcmp(argv[arg], "--builtin") == 0) {
    if (arg + 1 >= argc || !Builtin(argv[arg + 1], &program)) {
      return Usage();
    }
    arg += 2;
  } else {
    std::ifstream in(argv[arg]);
    if (!in) {
      std::fprintf(stderr, "vrpasm: cannot open %s\n", argv[arg]);
      return 1;
    }
    std::ostringstream source;
    source << in.rdbuf();
    auto result = Assemble(argv[arg], source.str());
    if (!result.ok) {
      std::fprintf(stderr, "vrpasm: %s: %s\n", argv[arg], result.error.c_str());
      return 1;
    }
    program = std::move(result.program);
    ++arg;
  }
  for (; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--disasm") == 0) {
      disasm = true;
    } else if (std::strcmp(argv[arg], "--budget-mpps") == 0 && arg + 1 < argc) {
      budget_mpps = std::atof(argv[++arg]);
    } else {
      return Usage();
    }
  }

  auto verdict = VerifyProgram(program);
  std::printf("program: %s\n", program.name.c_str());
  std::printf("  instructions:     %zu (+%d ISTORE slot for per-flow indirection)\n",
              program.instructions(), 1);
  std::printf("  flow state:       %u bytes of SRAM\n", program.flow_state_bytes);
  if (!verdict.ok) {
    std::printf("  verification:     REJECTED — %s\n", verdict.error.c_str());
    return 1;
  }
  std::printf("  worst-case cost:  %u cycles, %u SRAM transfers (%u bytes), %u hashes\n",
              verdict.worst_case.cycles, verdict.worst_case.sram_transfers(),
              verdict.worst_case.sram_bytes(), verdict.worst_case.hashes);

  const VrpBudget budget =
      budget_mpps > 0 ? VrpBudget::ForForwardingRate(budget_mpps) : VrpBudget::Prototype();
  std::printf("  budget:           %s%s\n", budget.ToString().c_str(),
              budget_mpps > 0 ? (" (for " + std::to_string(budget_mpps) + " Mpps)").c_str()
                              : " (prototype, 8 x 100 Mbps)");
  std::printf("  admission:        %s\n",
              budget.Admits(verdict.worst_case) ? "ADMITTED" : "REJECTED (over budget)");
  if (disasm) {
    std::printf("\n%s", Disassemble(program).c_str());
  }
  return budget.Admits(verdict.worst_case) ? 0 : 1;
}
