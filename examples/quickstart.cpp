// Quickstart: build a router, install routes and a monitoring forwarder,
// push packets through it, and read the results.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/router.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"

using namespace npr;

int main() {
  // 1. A router with the paper's prototype hardware: a 733 MHz Pentium III
  //    plus an IXP1200 with 8 x 100 Mbps ports, 4 input MicroEngines and 2
  //    output MicroEngines.
  RouterConfig config;
  Router router(std::move(config));

  // 2. Routes: destinations 10.<p>.0.0/16 leave on port <p>.
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);  // pre-fill the MicroEngines' route cache
  // Option-bearing packets are handled by full IP on the StrongARM.
  router.SetExceptionHandler(std::make_unique<FullIpForwarder>());

  // 3. Count outgoing packets per port.
  uint64_t delivered[8] = {};
  for (int p = 0; p < router.num_ports(); ++p) {
    router.port(p).SetSink([&delivered, p](Packet&&) { delivered[p] += 1; });
  }

  // 4. Extend the data plane through the paper's install() interface: a SYN
  //    monitor, written in VRP assembly, statically verified and admitted
  //    against the VRP budget, applied to every packet.
  VrpProgram monitor = BuildSynMonitor();
  InstallRequest request;
  request.key = FlowKey::All();
  request.where = Where::kMicroEngine;
  request.program = &monitor;
  InstallOutcome outcome = router.Install(request);
  if (!outcome.ok) {
    std::fprintf(stderr, "install failed: %s\n", outcome.error.c_str());
    return 1;
  }
  std::printf("installed syn-monitor as fid %u (worst case fits the VRP budget %s)\n",
              outcome.fid, router.config().budget.ToString().c_str());

  router.Start();

  // 5. Offer line-rate traffic on every port for 10 ms of simulated time,
  //    with 2%% TCP SYNs mixed in.
  std::vector<std::unique_ptr<TrafficGen>> generators;
  for (int p = 0; p < router.num_ports(); ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;  // 95% of the 148.8 Kpps theoretical maximum
    spec.syn_fraction = 0.02;
    generators.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                      static_cast<uint64_t>(p + 1)));
    generators.back()->Start(10 * kPsPerMs);
  }
  router.RunForMs(12.0);

  // 6. Results.
  std::printf("\nforwarded %llu packets (%.3f Mpps aggregate), %llu exceptional, 0 expected "
              "drops (got %llu)\n",
              static_cast<unsigned long long>(router.stats().forwarded),
              router.ForwardingRateMpps(),
              static_cast<unsigned long long>(router.stats().exceptional),
              static_cast<unsigned long long>(router.stats().dropped_queue_full));
  std::printf("per-port deliveries:");
  for (int p = 0; p < router.num_ports(); ++p) {
    std::printf(" p%d=%llu", p, static_cast<unsigned long long>(delivered[p]));
  }
  std::printf("\nlatency: %s ns\n", router.stats().latency_ns.Summary().c_str());

  // 7. The control side of the service: read the data forwarder's counters
  //    back through getdata().
  auto state = router.GetData(outcome.fid);
  uint32_t syn_count = 0;
  if (state.size() >= 4) {
    std::memcpy(&syn_count, state.data(), 4);
  }
  std::printf("syn-monitor counted %u SYN packets\n", syn_count);
  return 0;
}
