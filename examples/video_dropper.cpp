// Wavelet-video smart dropping (§4.4 [3]).
//
// Wavelet-encoded video splits the stream into layers; under congestion the
// router drops high-frequency layers first. The data forwarder (on the
// MicroEngines, per-flow) drops packets above a cutoff layer; the control
// forwarder watches the delivered rate and moves the cutoff — a closed
// control loop across the processor hierarchy.

#include <cstdio>
#include <functional>

#include "src/core/router.h"
#include "src/forwarders/control.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/traffic_gen.h"
#include "src/net/udp.h"

using namespace npr;

namespace {

// Builds one video packet: layer tag (level, subband) in the first payload
// bytes, which the VRP dropper reads from packet register p13.
Packet VideoPacket(uint32_t src_ip, uint32_t dst_ip, uint8_t level, uint8_t subband,
                   uint32_t seq) {
  PacketSpec spec;
  spec.protocol = kIpProtoUdp;
  spec.src_ip = src_ip;
  spec.dst_ip = dst_ip;
  spec.src_port = 5004;
  spec.dst_port = 5004;
  spec.frame_bytes = 128;
  Packet p = BuildPacket(spec);
  p.bytes()[54] = level;
  p.bytes()[55] = subband;
  p.bytes()[56] = static_cast<uint8_t>(seq >> 8);
  p.bytes()[57] = static_cast<uint8_t>(seq);
  return p;
}

}  // namespace

int main() {
  RouterConfig config;
  config.classifier = ClassifierMode::kFlowTable;  // per-flow forwarders need §4.5 classification
  Router router(std::move(config));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);

  const uint32_t src_ip = SrcIpForPort(0, 1);
  const uint32_t dst_ip = DstIpForPort(1, 1);

  uint64_t delivered = 0;
  uint64_t delivered_by_layer[16] = {};
  router.port(1).SetSink([&](Packet&& packet) {
    ++delivered;
    if (packet.size() > 55) {
      const int layer = packet.bytes()[54] * 4 + packet.bytes()[55];
      if (layer < 16) {
        delivered_by_layer[layer] += 1;
      }
    }
  });

  // Install the wavelet dropper as a per-flow data forwarder.
  VrpProgram dropper = BuildWaveletDropper();
  InstallRequest req;
  req.key = FlowKey::Tuple(src_ip, dst_ip, 5004, 5004);
  req.where = Where::kMicroEngine;
  req.program = &dropper;
  auto outcome = router.Install(req);
  if (!outcome.ok) {
    std::fprintf(stderr, "install failed: %s\n", outcome.error.c_str());
    return 1;
  }

  // Control half: hold the delivered video to ~40 Kpps (a congested 100
  // Mbps port would sustain ~90 Kpps of these frames; we emulate tighter
  // congestion policy).
  WaveletController controller(router, outcome.fid, /*target_pps=*/40'000);
  std::function<void()> poll = [&] {
    const uint32_t cutoff = controller.Poll(/*interval_sec=*/0.004);
    std::printf("[%6.2f ms] cutoff layer -> %u\n",
                static_cast<double>(router.engine().now()) / kPsPerMs, cutoff);
    router.engine().ScheduleIn(4 * kPsPerMs, poll);
  };
  router.engine().ScheduleIn(4 * kPsPerMs, poll);

  router.Start();

  // The source: 80 Kpps of video, layers 0..11 round-robin (lower layers
  // more frequent, as subband pyramids are).
  uint32_t seq = 0;
  std::function<void()> send = [&] {
    const uint8_t level = static_cast<uint8_t>(seq % 3);
    const uint8_t subband = static_cast<uint8_t>((seq / 3) % 4);
    router.port(0).InjectFromWire(VideoPacket(src_ip, dst_ip, level, subband, seq));
    ++seq;
    if (router.engine().now() < 60 * kPsPerMs) {
      router.engine().ScheduleIn(kPsPerSec / 80'000, send);
    }
  };
  router.engine().ScheduleIn(0, send);

  router.RunForMs(62.0);

  std::printf("\nsent=%u delivered=%llu (%.1f Kpps vs 40 Kpps target) dropped-by-vrp=%llu\n",
              seq, static_cast<unsigned long long>(delivered),
              static_cast<double>(delivered) / 60.0,
              static_cast<unsigned long long>(router.stats().dropped_by_vrp));
  std::printf("per-layer deliveries (low layers must survive, high layers die first):\n");
  for (int l = 0; l < 12; ++l) {
    std::printf("  layer %2d: %llu\n", l,
                static_cast<unsigned long long>(delivered_by_layer[l]));
  }
  return 0;
}
