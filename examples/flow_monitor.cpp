// Performance-monitoring scenario (§4.4 [20]).
//
// Data forwarders (SYN + ACK monitors) count events on the MicroEngines at
// line rate; a control forwarder periodically aggregates the counters and
// keeps a rate history, "sending summaries to a global coordinator". The
// run prints the per-interval rates the coordinator would receive.

#include <cstdio>
#include <functional>

#include "src/core/router.h"
#include "src/forwarders/control.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/traffic_gen.h"

using namespace npr;

int main() {
  Router router((RouterConfig()));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);

  // Two general data forwarders: SYN counter and ACK monitor.
  auto install = [&](VrpProgram program) {
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    auto outcome = router.Install(req);
    if (!outcome.ok) {
      std::fprintf(stderr, "install failed: %s\n", outcome.error.c_str());
      std::exit(1);
    }
    return outcome.fid;
  };
  const uint32_t syn_fid = install(BuildSynMonitor());
  const uint32_t ack_fid = install(BuildAckMonitor());
  std::printf("VRP budget after installs: generals cost %u cycles of %u\n",
              router.admission().general_chain_cost().cycles, router.config().budget.cycles);

  // Control halves: poll the counters every 5 ms.
  PerfMonitorController syn_rate(router, syn_fid, /*counter_offset=*/0);
  PerfMonitorController ack_total(router, ack_fid, /*counter_offset=*/8);
  PerfMonitorController ack_dups(router, ack_fid, /*counter_offset=*/4);
  std::function<void()> poll = [&] {
    const uint64_t syns = syn_rate.Poll();
    const uint64_t acks = ack_total.Poll();
    const uint64_t dups = ack_dups.Poll();
    std::printf("[%6.2f ms] last 5 ms: %llu SYNs, %llu ACKs (%llu repeats)\n",
                static_cast<double>(router.engine().now()) / kPsPerMs,
                static_cast<unsigned long long>(syns), static_cast<unsigned long long>(acks),
                static_cast<unsigned long long>(dups));
    router.engine().ScheduleIn(5 * kPsPerMs, poll);
  };
  router.engine().ScheduleIn(5 * kPsPerMs, poll);

  router.Start();

  // TCP flow traffic: a mix of handshakes and data (some repeated ACKs come
  // from the small flow count hitting the same ack values).
  std::vector<std::unique_ptr<TrafficGen>> generators;
  for (int p = 0; p < router.num_ports(); ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.protocol = kIpProtoTcp;
    spec.pattern = TrafficSpec::DstPattern::kFlows;
    spec.num_flows = 16;
    spec.syn_fraction = 0.05;
    generators.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                      static_cast<uint64_t>(p * 7 + 1)));
    generators.back()->Start(25 * kPsPerMs);
  }
  router.RunForMs(27.0);

  std::printf("\ntotals: %llu packets forwarded at %.3f Mpps, zero loss (%llu drops)\n",
              static_cast<unsigned long long>(router.stats().forwarded),
              router.ForwardingRateMpps(),
              static_cast<unsigned long long>(router.stats().dropped_queue_full));
  std::printf("syn history:");
  for (uint64_t d : syn_rate.history()) {
    std::printf(" %llu", static_cast<unsigned long long>(d));
  }
  std::printf("\n");
  return 0;
}
