// TCP splicing (§4.4 [21]) — the flagship processor-hierarchy migration.
//
// A proxy (control forwarder, Pentium) vets the start of a TCP connection:
// handshake plus the first bytes of application data. Once satisfied, the
// splice controller installs the splicer *data* forwarder on the
// MicroEngines — every subsequent packet is header-patched at line rate
// without ever leaving the IXP. The run prints where each phase's packets
// were processed.

#include <cstdio>
#include <functional>

#include "src/core/router.h"
#include "src/forwarders/control.h"
#include "src/forwarders/native.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"

using namespace npr;

int main() {
  RouterConfig config;
  config.classifier = ClassifierMode::kFlowTable;
  Router router(std::move(config));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);

  const uint32_t client_ip = SrcIpForPort(0, 1);
  const uint32_t server_ip = DstIpForPort(2, 1);
  const FlowKey flow = FlowKey::Tuple(client_ip, server_ip, 40000, 80);

  uint64_t delivered = 0;
  router.port(2).SetSink([&](Packet&&) { ++delivered; });

  // Proxy on the Pentium, bound to this connection.
  const int proxy_idx = router.pe_forwarders().Register(std::make_unique<TcpProxyForwarder>());
  InstallRequest proxy_req;
  proxy_req.key = flow;
  proxy_req.where = Where::kPentium;
  proxy_req.native_index = proxy_idx;
  proxy_req.expected_pps = 50'000;
  auto proxy = router.Install(proxy_req);
  if (!proxy.ok) {
    std::fprintf(stderr, "proxy install failed: %s\n", proxy.error.c_str());
    return 1;
  }

  SpliceController controller(router, proxy.fid, flow);
  std::function<void()> poll = [&] {
    const bool before = controller.spliced();
    controller.Poll();
    if (!before && controller.spliced()) {
      std::printf("[%6.2f ms] connection vetted -> splicer installed on the MicroEngines "
                  "(fid %u); proxy removed from the Pentium\n",
                  static_cast<double>(router.engine().now()) / kPsPerMs,
                  controller.splicer_fid());
    }
    router.engine().ScheduleIn(kPsPerMs, poll);
  };
  router.engine().ScheduleIn(kPsPerMs, poll);

  router.Start();

  // The connection: SYN, ACK, then a stream of data segments.
  auto segment = [&](uint8_t flags, uint32_t seqno, uint32_t ackno, size_t bytes) {
    PacketSpec spec;
    spec.protocol = kIpProtoTcp;
    spec.src_ip = client_ip;
    spec.dst_ip = server_ip;
    spec.src_port = 40000;
    spec.dst_port = 80;
    spec.tcp_flags = flags;
    spec.tcp_seq = seqno;
    spec.tcp_ack = ackno;
    spec.frame_bytes = bytes;
    return BuildPacket(spec);
  };

  router.port(0).InjectFromWire(segment(kTcpFlagSyn, 1000, 0, 64));
  router.RunForMs(1.0);
  router.port(0).InjectFromWire(segment(kTcpFlagAck, 1001, 501, 64));
  router.RunForMs(1.0);
  // Application data the proxy inspects (256 B segments).
  for (int i = 0; i < 3; ++i) {
    router.port(0).InjectFromWire(
        segment(kTcpFlagAck | kTcpFlagPsh, 1001 + static_cast<uint32_t>(i) * 202, 501, 256));
    router.RunForMs(1.0);
  }
  const uint64_t pentium_before_splice = router.stats().pentium_processed;
  router.RunForMs(3.0);  // give the controller time to splice

  // Post-splice data: these must be patched by the MicroEngines, not the
  // Pentium.
  for (int i = 0; i < 50; ++i) {
    router.port(0).InjectFromWire(
        segment(kTcpFlagAck, 2000 + static_cast<uint32_t>(i) * 202, 501, 256));
  }
  router.RunForMs(5.0);

  const uint64_t pentium_after = router.stats().pentium_processed;
  std::printf("\nphase summary:\n");
  std::printf("  handshake + vetting: %llu packets through the Pentium\n",
              static_cast<unsigned long long>(pentium_before_splice));
  std::printf("  after splice: %llu additional Pentium packets (expect 0)\n",
              static_cast<unsigned long long>(pentium_after - pentium_before_splice));
  std::printf("  delivered to the server side: %llu packets\n",
              static_cast<unsigned long long>(delivered));
  std::printf("  spliced: %s\n", controller.spliced() ? "yes" : "no");

  // The splicer's own packet counter (state word [20]) confirms the fast
  // path did the work.
  if (controller.spliced()) {
    auto state = router.GetData(controller.splicer_fid());
    uint32_t count = 0;
    if (state.size() >= 24) {
      std::memcpy(&count, state.data() + 20, 4);
    }
    std::printf("  packets header-patched at line rate by the splicer: %u\n", count);
  }
  return 0;
}
