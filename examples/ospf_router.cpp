// Control-plane scenario: OSPF-lite on the Pentium (§4.1).
//
// Routing updates arrive as ordinary packets, are classified to the
// control queue on the MicroEngines, cross the hierarchy to the Pentium,
// and recompute the routing table — whose epoch bump invalidates the
// MicroEngines' route cache, so the data plane follows the topology within
// one slow-path resolution. Data traffic keeps flowing throughout (the
// isolation the paper's scheduler share guarantees).

#include <cstdio>

#include "src/control/ospf_lite.h"
#include "src/core/router.h"
#include "src/net/traffic_gen.h"

using namespace npr;

int main() {
  Router router((RouterConfig()));
  // Only a default route to start with; OSPF will learn the rest.
  router.AddRoute("10.0.0.0/16", 0);
  router.WarmRouteCache(8);

  uint64_t delivered[8] = {};
  for (int p = 0; p < router.num_ports(); ++p) {
    router.port(p).SetSink([&delivered, p](Packet&&) { delivered[p] += 1; });
  }

  // This router is OSPF node 1, with neighbors 2 (port 6) and 3 (port 7).
  OspfLite protocol(1);
  protocol.AddLocalLink(OspfLink{2, 0, 0, 1, 6});
  protocol.AddLocalLink(OspfLink{3, 0, 0, 1, 7});
  const int idx = router.pe_forwarders().Register(std::make_unique<OspfForwarder>(protocol));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 1'000;  // control traffic reservation
  if (auto outcome = router.Install(req); !outcome.ok) {
    std::fprintf(stderr, "%s\n", outcome.error.c_str());
    return 1;
  }
  router.Start();

  auto send_lsa = [&](const Lsa& lsa, uint8_t arrival_port) {
    router.port(arrival_port)
        .InjectFromWire(BuildLsaPacket(lsa, DstIpForPort(arrival_port, 2),
                                       DstIpForPort(arrival_port, 1), arrival_port));
  };
  auto probe = [&](const char* tag) {
    PacketSpec spec;
    spec.dst_ip = Ipv4FromString("10.50.0.1");
    for (int i = 0; i < 10; ++i) {
      router.port(0).InjectFromWire(BuildPacket(spec));
    }
    router.RunForMs(3.0);
    std::printf("[%6.2f ms] %-28s routes=%zu deliveries: port6=%llu port7=%llu\n",
                static_cast<double>(router.engine().now()) / kPsPerMs, tag,
                router.route_table().size(), static_cast<unsigned long long>(delivered[6]),
                static_cast<unsigned long long>(delivered[7]));
  };

  probe("before any LSA (unroutable)");

  // Neighbor 2 advertises 10.50/16.
  Lsa from2;
  from2.origin = 2;
  from2.seq = 1;
  from2.links = {OspfLink{1, 0, 0, 1, 0},
                 OspfLink{0, Ipv4FromString("10.50.0.0"), 16, 1, 0}};
  send_lsa(from2, 6);
  router.RunForMs(3.0);
  probe("after neighbor 2's LSA");

  // Topology change: neighbor 2 withdraws; neighbor 3 now reaches 10.50/16.
  Lsa from2b;
  from2b.origin = 2;
  from2b.seq = 2;
  from2b.links = {OspfLink{1, 0, 0, 1, 0}};
  send_lsa(from2b, 6);
  Lsa from3;
  from3.origin = 3;
  from3.seq = 1;
  from3.links = {OspfLink{1, 0, 0, 1, 0},
                 OspfLink{0, Ipv4FromString("10.50.0.0"), 16, 1, 0}};
  send_lsa(from3, 7);
  router.RunForMs(3.0);
  probe("after reroute to neighbor 3");

  std::printf("\nLSAs consumed by the control plane: %llu; route-table epoch %llu "
              "(each change invalidated the fast-path cache)\n",
              static_cast<unsigned long long>(router.stats().pentium_processed),
              static_cast<unsigned long long>(router.route_table().epoch()));
  return 0;
}
