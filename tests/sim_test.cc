// Unit tests for the simulation core: event queue, coroutine tasks, RNG,
// statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace npr {
namespace {

TEST(ClockDomain, IxpCycleIs5ns) {
  EXPECT_EQ(kIxpClock.ToTime(1), 5000);
  EXPECT_EQ(kIxpClock.ToTime(200), 1000 * kPsPerNs);
  EXPECT_DOUBLE_EQ(kIxpClock.FrequencyHz(), 200e6);
}

TEST(ClockDomain, PentiumIs733MHz) {
  EXPECT_NEAR(kPentiumClock.FrequencyHz(), 733e6, 1e6);
}

TEST(ClockDomain, RoundTripCycles) {
  for (int64_t cycles : {1, 7, 100, 123456}) {
    EXPECT_EQ(kIxpClock.ToCycles(kIxpClock.ToTime(cycles)), cycles);
  }
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(300, [&] { order.push_back(3); });
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(200, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(50, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents) {
  EventQueue q;
  q.RunUntil(5000);
  EXPECT_EQ(q.now(), 5000);
  EXPECT_EQ(q.events_run(), 0u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.Schedule(100, [&] { ++ran; });
  q.Schedule(200, [&] { ++ran; });
  q.RunUntil(150);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 150);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleIn(10, chain);
    }
  };
  q.ScheduleIn(10, chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, ClearDropsWithoutRunning) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] { ++ran; });
  q.Clear();
  q.RunAll();
  EXPECT_EQ(ran, 0);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.RunOne());
}

// The wheel buckets time in 4096 ps ticks; same-instant FIFO must hold for
// instants that share a bucket with earlier *and* later neighbours.
TEST(EventQueue, SameInstantFifoSharingBucketWithNeighbours) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(8192 + 10, [&] { order.push_back(100); });  // same bucket, earlier t
  for (int i = 0; i < 5; ++i) {
    q.Schedule(8192 + 50, [&order, i] { order.push_back(i); });
  }
  q.Schedule(8192 + 90, [&] { order.push_back(200); });  // same bucket, later t
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{100, 0, 1, 2, 3, 4, 200}));
}

TEST(EventQueue, ScheduleAtNowFromCallbackRunsBeforeLaterEvents) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(100, [&] {
    order.push_back(1);
    // Same instant, scheduled mid-dispatch: must run after the current
    // event (FIFO) but before anything later.
    q.Schedule(q.now(), [&] { order.push_back(2); });
  });
  q.Schedule(100, [&] { order.push_back(3); });
  q.Schedule(101, [&] { order.push_back(4); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 4}));
  EXPECT_EQ(q.now(), 101);
}

TEST(EventQueue, ScheduleIntoDrainedWindowKeepsOrder) {
  EventQueue q;
  std::vector<SimTime> times;
  q.Schedule(200, [&] { times.push_back(q.now()); });
  q.RunUntil(150);  // drains the bucket holding 200 into the ready list
  q.Schedule(160, [&] { times.push_back(q.now()); });
  q.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{160, 200}));
}

// Regression test for the window-boundary cascade: an event parked one
// level up in the incoming window must run before a level-0 event that a
// callback schedules after the cursor has already crossed the boundary.
TEST(EventQueue, WindowCrossingCascadesBeforeFreshLevel0Events) {
  constexpr SimTime kWindow = SimTime{1} << 22;  // level-0 span: 1024 x 4096 ps
  EventQueue q;
  std::vector<int> order;
  // Parked at level 1 (scheduled while the cursor is still in window 0).
  q.Schedule(kWindow + 2 * 4096, [&] { order.push_back(1); });
  // Last bucket of window 0; its callback schedules into window 1 at a time
  // *later* than the parked event but at level 0.
  q.Schedule(kWindow - 4096, [&] {
    order.push_back(0);
    q.Schedule(kWindow + 3 * 4096, [&] { order.push_back(2); });
  });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), kWindow + 3 * 4096);
}

// Exercise every carry level: level-1 window (2^22 ps), level-2 window
// (2^32 ps), and the far-future heap past the wheels' span (2^42 ps).
TEST(EventQueue, BoundaryCrossingsRunAtExactTimes) {
  const std::vector<SimTime> deltas = {
      1,
      4096,
      (SimTime{1} << 22) - 1, (SimTime{1} << 22), (SimTime{1} << 22) + 1,
      (SimTime{1} << 32) - 1, (SimTime{1} << 32), (SimTime{1} << 32) + 1,
      (SimTime{1} << 42) - 1, (SimTime{1} << 42), (SimTime{1} << 42) + 1,
      (SimTime{3} << 42) + 12345,
  };
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : deltas) {
    q.Schedule(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.RunAll();
  EXPECT_EQ(fired, deltas);  // already ascending; each fires at its own t
}

TEST(EventQueue, RunAllReportsTruncation) {
  EventQueue q;
  // Self-perpetuating chain: two pending at all times.
  struct Chain {
    EventQueue* q;
    static void Tick(void* self) {
      Chain* c = static_cast<Chain*>(self);
      c->q->ScheduleRaw(c->q->now() + 10, &Chain::Tick, c);
      c->q->ScheduleRaw(c->q->now() + 20, &Chain::Tick, c);
    }
  };
  Chain chain{&q};
  q.ScheduleRaw(10, &Chain::Tick, &chain);
  const uint64_t ran = q.RunAll(1000);
  EXPECT_EQ(ran, 1000u);
  EXPECT_GT(q.pending(), 0u);
  q.Clear();
  EXPECT_EQ(q.pending(), 0u);
}

struct ResumeProbe {
  struct promise_type {
    ResumeProbe get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
  std::coroutine_handle<promise_type> handle;
};

struct ResumeAt {
  EventQueue* q;
  SimTime t;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) { q->ScheduleResume(t, h); }
  void await_resume() {}
};

ResumeProbe ResumeTwice(EventQueue* q, std::vector<SimTime>* seen) {
  co_await ResumeAt{q, 5000};
  seen->push_back(q->now());
  co_await ResumeAt{q, 2 * kPsPerMs};  // far enough to park above level 0
  seen->push_back(q->now());
}

TEST(EventQueue, ScheduleResumeDrivesCoroutine) {
  EventQueue q;
  std::vector<SimTime> seen;
  ResumeProbe probe = ResumeTwice(&q, &seen);
  probe.handle.resume();  // run to the first co_await
  q.RunAll();
  EXPECT_EQ(seen, (std::vector<SimTime>{5000, 2 * kPsPerMs}));
  probe.handle.destroy();
}

// Randomized schedule shapes vs a trivially-correct oracle: execution order
// must equal a stable sort by time of the events in scheduling order (that
// is what "deterministic FIFO within an instant" means), and every event
// must fire exactly at its scheduled time.
TEST(EventQueue, RandomizedOrderMatchesStableSortOracle) {
  const std::vector<SimTime> horizons = {0,     1,          4096,        50'000,
                                         1 << 22, 1 << 24, SimTime{1} << 32,
                                         SimTime{1} << 43};
  Rng rng(0xC0FFEE);
  EventQueue q;
  std::vector<std::pair<SimTime, int>> scheduled;  // (t, id) in schedule order
  std::vector<std::pair<SimTime, int>> ran;
  int next_id = 0;
  std::function<void()> schedule_random = [&] {
    const SimTime horizon = horizons[rng.Uniform(horizons.size())];
    const SimTime t = q.now() + static_cast<SimTime>(rng.Uniform(static_cast<uint64_t>(horizon) + 1));
    const int id = next_id++;
    scheduled.emplace_back(t, id);
    q.Schedule(t, [&, id] {
      ran.emplace_back(q.now(), id);
      // Occasionally breed follow-up events (tests mid-dispatch inserts).
      if (rng.Chance(0.2) && next_id < 4000) {
        schedule_random();
        schedule_random();
      }
    });
  };
  for (int i = 0; i < 500; ++i) {
    schedule_random();
  }
  q.RunAll();
  ASSERT_EQ(ran.size(), scheduled.size());
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(ran, scheduled);
}

// --- Task ---

Task Counting(int* counter, std::suspend_always* /*unused*/) {
  ++*counter;
  co_return;
}

TEST(Task, StartsSuspended) {
  int counter = 0;
  Task t = Counting(&counter, nullptr);
  EXPECT_EQ(counter, 0);
  t.Start();
  EXPECT_EQ(counter, 1);
  EXPECT_TRUE(t.done());
}

TEST(Task, DestroyWithoutStartIsSafe) {
  int counter = 0;
  {
    Task t = Counting(&counter, nullptr);
    (void)t;
  }
  EXPECT_EQ(counter, 0);
}

TEST(Task, MoveTransfersOwnership) {
  int counter = 0;
  Task a = Counting(&counter, nullptr);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  b.Start();
  EXPECT_EQ(counter, 1);
}

// --- Rng ---

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.Uniform(8)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expectation 1000, loose 20% bound
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(5);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(5);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// --- stats ---

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Histogram, TracksExtremaAndMean) {
  Histogram h;
  h.Add(1);
  h.Add(100);
  h.Add(10000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 3367.0, 1.0);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_LE(h.Percentile(10), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(99));
}

TEST(RateMeter, ComputesRate) {
  RateMeter m;
  m.StartWindow(0);
  // 1000 events spread over 1 ms => 1M events/s.
  for (int i = 1; i <= 1000; ++i) {
    m.Record(static_cast<SimTime>(i) * kPsPerUs);
  }
  EXPECT_NEAR(m.RatePerSec(), 1e6, 1e4);
}

TEST(RateMeter, EmptyWindowIsZero) {
  RateMeter m;
  m.StartWindow(0);
  EXPECT_EQ(m.RatePerSec(), 0.0);
}

}  // namespace
}  // namespace npr
