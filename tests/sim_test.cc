// Unit tests for the simulation core: event queue, coroutine tasks, RNG,
// statistics.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace npr {
namespace {

TEST(ClockDomain, IxpCycleIs5ns) {
  EXPECT_EQ(kIxpClock.ToTime(1), 5000);
  EXPECT_EQ(kIxpClock.ToTime(200), 1000 * kPsPerNs);
  EXPECT_DOUBLE_EQ(kIxpClock.FrequencyHz(), 200e6);
}

TEST(ClockDomain, PentiumIs733MHz) {
  EXPECT_NEAR(kPentiumClock.FrequencyHz(), 733e6, 1e6);
}

TEST(ClockDomain, RoundTripCycles) {
  for (int64_t cycles : {1, 7, 100, 123456}) {
    EXPECT_EQ(kIxpClock.ToCycles(kIxpClock.ToTime(cycles)), cycles);
  }
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(300, [&] { order.push_back(3); });
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(200, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(50, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents) {
  EventQueue q;
  q.RunUntil(5000);
  EXPECT_EQ(q.now(), 5000);
  EXPECT_EQ(q.events_run(), 0u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.Schedule(100, [&] { ++ran; });
  q.Schedule(200, [&] { ++ran; });
  q.RunUntil(150);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 150);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleIn(10, chain);
    }
  };
  q.ScheduleIn(10, chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, ClearDropsWithoutRunning) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] { ++ran; });
  q.Clear();
  q.RunAll();
  EXPECT_EQ(ran, 0);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.RunOne());
}

// --- Task ---

Task Counting(int* counter, std::suspend_always* /*unused*/) {
  ++*counter;
  co_return;
}

TEST(Task, StartsSuspended) {
  int counter = 0;
  Task t = Counting(&counter, nullptr);
  EXPECT_EQ(counter, 0);
  t.Start();
  EXPECT_EQ(counter, 1);
  EXPECT_TRUE(t.done());
}

TEST(Task, DestroyWithoutStartIsSafe) {
  int counter = 0;
  {
    Task t = Counting(&counter, nullptr);
    (void)t;
  }
  EXPECT_EQ(counter, 0);
}

TEST(Task, MoveTransfersOwnership) {
  int counter = 0;
  Task a = Counting(&counter, nullptr);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  b.Start();
  EXPECT_EQ(counter, 1);
}

// --- Rng ---

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.Uniform(8)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expectation 1000, loose 20% bound
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(5);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(5);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// --- stats ---

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Histogram, TracksExtremaAndMean) {
  Histogram h;
  h.Add(1);
  h.Add(100);
  h.Add(10000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 3367.0, 1.0);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_LE(h.Percentile(10), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(99));
}

TEST(RateMeter, ComputesRate) {
  RateMeter m;
  m.StartWindow(0);
  // 1000 events spread over 1 ms => 1M events/s.
  for (int i = 1; i <= 1000; ++i) {
    m.Record(static_cast<SimTime>(i) * kPsPerUs);
  }
  EXPECT_NEAR(m.RatePerSec(), 1e6, 1e4);
}

TEST(RateMeter, EmptyWindowIsZero) {
  RateMeter m;
  m.StartWindow(0);
  EXPECT_EQ(m.RatePerSec(), 0.0);
}

}  // namespace
}  // namespace npr
