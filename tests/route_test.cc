// Unit tests for routing: prefixes, the CPE trie (with a property-based
// comparison against a naive longest-prefix reference), route table, cache.

#include <gtest/gtest.h>

#include <map>

#include "src/net/ipv4.h"
#include "src/route/cpe_trie.h"
#include "src/route/prefix.h"
#include "src/route/route_cache.h"
#include "src/route/route_table.h"
#include "src/sim/random.h"

namespace npr {
namespace {

TEST(Prefix, ParseValid) {
  auto p = Prefix::Parse("10.1.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->addr, 0x0a010000u);
  EXPECT_EQ(p->len, 16);
  EXPECT_EQ(p->ToString(), "10.1.0.0/16");
}

TEST(Prefix, ParseCanonicalizes) {
  auto p = Prefix::Parse("10.1.2.3/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->addr, 0x0a010000u);  // host bits masked
}

TEST(Prefix, ParseRejectsGarbage) {
  EXPECT_FALSE(Prefix::Parse("10.1.0.0"));
  EXPECT_FALSE(Prefix::Parse("10.1.0.0/33"));
  EXPECT_FALSE(Prefix::Parse("999.1.0.0/8"));
  EXPECT_FALSE(Prefix::Parse("banana/8"));
}

TEST(Prefix, Contains) {
  auto p = *Prefix::Parse("192.168.0.0/24");
  EXPECT_TRUE(p.Contains(0xc0a80001));
  EXPECT_FALSE(p.Contains(0xc0a80101));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  auto p = Prefix::Make(0, 0);
  EXPECT_TRUE(p.Contains(0));
  EXPECT_TRUE(p.Contains(0xffffffff));
}

// --- CpeTrie ---

TEST(CpeTrie, EmptyLookupMisses) {
  CpeTrie trie;
  auto r = trie.Lookup(0x0a000001);
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(r.nodes_visited, 1);
}

TEST(CpeTrie, ExactAndLongestMatch) {
  CpeTrie trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 2);
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.Lookup(0x0a050505).value, 1u);
  EXPECT_EQ(trie.Lookup(0x0a010505).value, 2u);
  EXPECT_EQ(trie.Lookup(0x0a010205).value, 3u);
  EXPECT_FALSE(trie.Lookup(0x0b000001).value.has_value());
}

TEST(CpeTrie, LookupVisitsAtMostStrideLevels) {
  CpeTrie trie({16, 8, 8});
  trie.Insert(*Prefix::Parse("10.1.2.3/32"), 9);
  auto r = trie.Lookup(0x0a010203);
  EXPECT_EQ(r.value, 9u);
  EXPECT_LE(r.nodes_visited, 3);
}

TEST(CpeTrie, LongerPrefixWinsRegardlessOfInsertOrder) {
  for (bool long_first : {true, false}) {
    CpeTrie trie;
    if (long_first) {
      trie.Insert(*Prefix::Parse("10.1.0.0/16"), 2);
      trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
    } else {
      trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
      trie.Insert(*Prefix::Parse("10.1.0.0/16"), 2);
    }
    EXPECT_EQ(trie.Lookup(0x0a010001).value, 2u) << "long_first=" << long_first;
    EXPECT_EQ(trie.Lookup(0x0a020001).value, 1u);
  }
}

TEST(CpeTrie, DefaultRoute) {
  CpeTrie trie;
  trie.Insert(Prefix::Make(0, 0), 42);
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.Lookup(0xdeadbeef).value, 42u);
  EXPECT_EQ(trie.Lookup(0x0a000001).value, 1u);
}

// Property test: against a naive reference implementation, over random
// prefix sets and random stride configurations.
class CpeTrieProperty : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(CpeTrieProperty, MatchesNaiveReferenceOnRandomSets) {
  Rng rng(0xfeedface);
  for (int trial = 0; trial < 10; ++trial) {
    CpeTrie trie(GetParam());
    std::map<Prefix, uint32_t> reference;
    for (int i = 0; i < 60; ++i) {
      const uint8_t len = static_cast<uint8_t>(rng.Range(4, 28));
      const Prefix p = Prefix::Make(static_cast<uint32_t>(rng.Next()), len);
      reference[p] = static_cast<uint32_t>(i);
      trie.Insert(p, static_cast<uint32_t>(i));
    }
    for (int q = 0; q < 300; ++q) {
      // Half the probes target installed prefixes to guarantee hits.
      uint32_t ip;
      if (q % 2 == 0) {
        auto it = reference.begin();
        std::advance(it, static_cast<long>(rng.Uniform(reference.size())));
        ip = it->first.addr | (static_cast<uint32_t>(rng.Next()) & ~it->first.Mask());
      } else {
        ip = static_cast<uint32_t>(rng.Next());
      }
      // Naive longest-prefix match.
      std::optional<uint32_t> expect;
      int best_len = -1;
      for (const auto& [prefix, value] : reference) {
        if (prefix.Contains(ip) && prefix.len > best_len) {
          best_len = prefix.len;
          expect = value;
        }
      }
      auto got = trie.Lookup(ip);
      EXPECT_EQ(got.value, expect) << "ip=" << Ipv4ToString(ip);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, CpeTrieProperty,
                         ::testing::Values(std::vector<int>{16, 8, 8},
                                           std::vector<int>{8, 8, 8, 8},
                                           std::vector<int>{24, 8},
                                           std::vector<int>{12, 12, 8}),
                         [](const auto& info) {
                           std::string name;
                           for (int s : info.param) {
                             name += std::to_string(s) + "_";
                           }
                           name.pop_back();
                           return name;
                         });

TEST(CpeTrie, MemoryGrowsWithPrefixes) {
  CpeTrie trie;
  const size_t base = trie.MemoryBytes();
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 1);
  EXPECT_GT(trie.MemoryBytes(), base);
}

// --- RouteTable ---

TEST(RouteTable, AddLookupRemove) {
  RouteTable table;
  EXPECT_TRUE(table.AddRoute("10.3.0.0/16", 3));
  auto hit = table.Lookup(0x0a030101);
  ASSERT_TRUE(hit.entry);
  EXPECT_EQ(hit.entry->out_port, 3);
  EXPECT_EQ(hit.entry->next_hop_mac, PortMac(3));
  EXPECT_GE(hit.memory_accesses, 1);

  EXPECT_TRUE(table.RemoveRoute(*Prefix::Parse("10.3.0.0/16")));
  EXPECT_FALSE(table.Lookup(0x0a030101).entry);
  EXPECT_FALSE(table.RemoveRoute(*Prefix::Parse("10.3.0.0/16")));
}

TEST(RouteTable, EpochBumpsOnMutation) {
  RouteTable table;
  const uint64_t e0 = table.epoch();
  table.AddRoute("10.0.0.0/8", 0);
  EXPECT_GT(table.epoch(), e0);
  const uint64_t e1 = table.epoch();
  table.RemoveRoute(*Prefix::Parse("10.0.0.0/8"));
  EXPECT_GT(table.epoch(), e1);
}

TEST(RouteTable, ReplaceUpdatesEntry) {
  RouteTable table;
  table.AddRoute("10.0.0.0/8", 1);
  table.AddRoute("10.0.0.0/8", 5);
  EXPECT_EQ(table.Lookup(0x0a000001).entry->out_port, 5);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RouteTable, DumpListsRoutes) {
  RouteTable table;
  table.AddRoute("10.0.0.0/8", 0);
  table.AddRoute("10.1.0.0/16", 1);
  EXPECT_EQ(table.Dump().size(), 2u);
}

TEST(RouteTable, RejectsMalformedCidr) {
  RouteTable table;
  EXPECT_FALSE(table.AddRoute("nonsense", 0));
}

// --- RouteCache ---

TEST(RouteCache, MissThenHit) {
  RouteCache cache(8);
  RouteEntry entry{4, PortMac(4)};
  EXPECT_FALSE(cache.Lookup(0x0a000001, 1));
  cache.Insert(0x0a000001, entry, 1);
  auto hit = cache.Lookup(0x0a000001, 1);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->out_port, 4);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RouteCache, EpochChangeInvalidatesEverything) {
  RouteCache cache(8);
  cache.Insert(0x0a000001, RouteEntry{4, PortMac(4)}, 1);
  EXPECT_TRUE(cache.Lookup(0x0a000001, 1));
  EXPECT_FALSE(cache.Lookup(0x0a000001, 2));  // routes changed
}

TEST(RouteCache, DirectMappedEviction) {
  // With a single slot, any second distinct key evicts the first.
  RouteCache cache(0);
  cache.Insert(1, RouteEntry{1, PortMac(1)}, 1);
  cache.Insert(2, RouteEntry{2, PortMac(2)}, 1);
  const bool first = cache.Lookup(1, 1).has_value();
  const bool second = cache.Lookup(2, 1).has_value();
  EXPECT_TRUE(second);
  EXPECT_FALSE(first);
}

TEST(RouteCache, HitRate) {
  RouteCache cache(10);
  cache.Insert(7, RouteEntry{0, PortMac(0)}, 1);
  for (int i = 0; i < 9; ++i) {
    cache.Lookup(7, 1);
  }
  cache.Lookup(8, 1);
  EXPECT_NEAR(cache.HitRate(), 0.9, 0.001);
}

}  // namespace
}  // namespace npr
