// Tests for the example data forwarders (Table 5) — functional behavior on
// real packets, and static costs within the VRP budget — plus the native
// StrongARM/Pentium forwarders.

#include <gtest/gtest.h>

#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/ixp/hash_unit.h"
#include "src/mem/backing_store.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"
#include "src/route/route_table.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

class ForwarderTest : public ::testing::Test {
 protected:
  ForwarderTest() : sram_("sram", 8192), interp_(sram_, hash_) {}

  // Runs `program` over the first MP of `packet` with state at 512.
  VrpOutcome Run(const VrpProgram& program, Packet& packet) {
    auto bytes = packet.bytes();
    return interp_.Run(program, bytes.first(std::min<size_t>(64, bytes.size())), 512, &budget_);
  }

  BackingStore sram_;
  HashUnit hash_;
  VrpInterpreter interp_;
  const VrpBudget budget_ = VrpBudget::Prototype();
};

// Every Table 5 forwarder verifies and fits the prototype VRP budget.
class Table5Budget : public ::testing::TestWithParam<const char*> {};

TEST_P(Table5Budget, VerifiesAndFitsBudget) {
  VrpProgram program;
  const std::string which = GetParam();
  if (which == "splicer") {
    program = BuildTcpSplicer();
  } else if (which == "wavelet") {
    program = BuildWaveletDropper();
  } else if (which == "ack") {
    program = BuildAckMonitor();
  } else if (which == "syn") {
    program = BuildSynMonitor();
  } else if (which == "filter") {
    program = BuildPortFilter();
  } else {
    program = BuildIpMinimal();
  }
  auto v = VerifyProgram(program);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(VrpBudget::Prototype().Admits(v.worst_case))
      << which << " needs " << v.worst_case.cycles << " cycles, "
      << v.worst_case.sram_transfers() << " transfers";
  // ISTORE footprint stays within the 650 free slots.
  EXPECT_LE(program.instructions(), 650u);
}

INSTANTIATE_TEST_SUITE_P(All, Table5Budget,
                         ::testing::Values("splicer", "wavelet", "ack", "syn", "filter", "ip"),
                         [](const auto& info) { return std::string(info.param); });

// --- SYN monitor ---

TEST_F(ForwarderTest, SynMonitorCountsOnlySyns) {
  auto program = BuildSynMonitor();
  PacketSpec syn;
  syn.protocol = kIpProtoTcp;
  syn.tcp_flags = kTcpFlagSyn;
  PacketSpec ack = syn;
  ack.tcp_flags = kTcpFlagAck;

  for (int i = 0; i < 3; ++i) {
    Packet p = BuildPacket(syn);
    EXPECT_EQ(Run(program, p).action, VrpAction::kSend);
  }
  for (int i = 0; i < 5; ++i) {
    Packet p = BuildPacket(ack);
    EXPECT_EQ(Run(program, p).action, VrpAction::kSend);
  }
  EXPECT_EQ(sram_.ReadU32(512), 3u);
}

TEST_F(ForwarderTest, SynMonitorCountsSynAck) {
  auto program = BuildSynMonitor();
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_flags = kTcpFlagSyn | kTcpFlagAck;
  Packet p = BuildPacket(spec);
  Run(program, p);
  EXPECT_EQ(sram_.ReadU32(512), 1u);
}

// --- ACK monitor ---

TEST_F(ForwarderTest, AckMonitorDetectsDuplicates) {
  auto program = BuildAckMonitor();
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_flags = kTcpFlagAck;
  spec.tcp_ack = 0x1000;

  for (int i = 0; i < 3; ++i) {  // same ack three times: 2 repeats
    Packet p = BuildPacket(spec);
    Run(program, p);
  }
  spec.tcp_ack = 0x2000;  // fresh ack
  Packet p = BuildPacket(spec);
  Run(program, p);

  EXPECT_EQ(sram_.ReadU32(512 + 0), 0x2000u);  // last ack
  EXPECT_EQ(sram_.ReadU32(512 + 4), 2u);       // duplicates
  EXPECT_EQ(sram_.ReadU32(512 + 8), 4u);       // total acks
}

TEST_F(ForwarderTest, AckMonitorIgnoresNonTcp) {
  auto program = BuildAckMonitor();
  PacketSpec spec;
  spec.protocol = kIpProtoUdp;
  Packet p = BuildPacket(spec);
  Run(program, p);
  EXPECT_EQ(sram_.ReadU32(512 + 8), 0u);
}

// --- port filter ---

struct FilterCase {
  uint16_t port;
  bool dropped;
};

class PortFilterRanges : public ForwarderTest, public ::testing::WithParamInterface<FilterCase> {};

TEST_P(PortFilterRanges, BlocksConfiguredRanges) {
  auto program = BuildPortFilter();
  // Ranges: [80,99] and [1000,1000]; rest empty.
  sram_.WriteU32(512 + 0, 80u << 16 | 99);
  sram_.WriteU32(512 + 4, 1000u << 16 | 1000);

  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.dst_port = GetParam().port;
  Packet p = BuildPacket(spec);
  auto out = Run(program, p);
  EXPECT_EQ(out.action, GetParam().dropped ? VrpAction::kDrop : VrpAction::kSend)
      << "port " << GetParam().port;
}

INSTANTIATE_TEST_SUITE_P(Boundaries, PortFilterRanges,
                         ::testing::Values(FilterCase{79, false}, FilterCase{80, true},
                                           FilterCase{90, true}, FilterCase{99, true},
                                           FilterCase{100, false}, FilterCase{999, false},
                                           FilterCase{1000, true}, FilterCase{1001, false},
                                           FilterCase{8080, false}),
                         [](const auto& info) {
                           return "port" + std::to_string(info.param.port);
                         });

// --- wavelet dropper ---

TEST_F(ForwarderTest, WaveletDropsAboveCutoff) {
  auto program = BuildWaveletDropper();
  sram_.WriteU32(512, 4);  // cutoff layer: 4

  auto make = [](uint8_t level, uint8_t subband) {
    PacketSpec spec;
    spec.protocol = kIpProtoUdp;
    spec.frame_bytes = 128;
    Packet p = BuildPacket(spec);
    // Layer tag in payload bytes 54-55 (p13 lo16): level, subband.
    p.bytes()[54] = level;
    p.bytes()[55] = subband;
    return p;
  };

  Packet low = make(0, 2);  // layer 2 < 4: keep
  EXPECT_EQ(Run(program, low).action, VrpAction::kSend);
  Packet high = make(2, 1);  // layer 9 > 4: drop
  EXPECT_EQ(Run(program, high).action, VrpAction::kDrop);
  EXPECT_EQ(sram_.ReadU32(512 + 4), 1u);  // one forwarded
}

TEST_F(ForwarderTest, WaveletCutoffZeroDropsAll) {
  auto program = BuildWaveletDropper();
  sram_.WriteU32(512, 0);
  PacketSpec spec;
  spec.frame_bytes = 128;
  int sent = 0;
  for (int i = 0; i < 8; ++i) {
    Packet p = BuildPacket(spec);
    p.bytes()[54] = 1;
    p.bytes()[55] = static_cast<uint8_t>(i % 4);
    sent += Run(program, p).action == VrpAction::kSend;
  }
  EXPECT_EQ(sent, 0);
}

// --- TCP splicer ---

TEST_F(ForwarderTest, SplicerPassesThroughBeforeSplice) {
  auto program = BuildTcpSplicer();
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_seq = 1000;
  Packet p = BuildPacket(spec);
  const uint32_t before = [&] {
    auto tcp = TcpHeader::Parse(p.l4());
    return tcp->seq;
  }();
  EXPECT_EQ(Run(program, p).action, VrpAction::kSend);
  auto tcp = TcpHeader::Parse(p.l4());
  EXPECT_EQ(tcp->seq, before);  // untouched
  EXPECT_EQ(sram_.ReadU32(512 + 20), 0u);  // not counted
}

TEST_F(ForwarderTest, SplicerRewritesSeqAndAck) {
  auto program = BuildTcpSplicer();
  sram_.WriteU32(512 + 0, 5000);   // seq delta
  sram_.WriteU32(512 + 4, static_cast<uint32_t>(-3000));  // ack delta
  sram_.WriteU32(512 + 16, 1);     // spliced

  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_seq = 1000;
  spec.tcp_ack = 9000;
  spec.tcp_flags = kTcpFlagAck;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(Run(program, p).action, VrpAction::kSend);

  auto tcp = TcpHeader::Parse(p.l4());
  ASSERT_TRUE(tcp);
  EXPECT_EQ(tcp->seq, 6000u);  // 1000 + 5000
  EXPECT_EQ(tcp->ack, 6000u);  // 9000 - 3000
  EXPECT_EQ(sram_.ReadU32(512 + 20), 1u);  // packet counted
}

TEST_F(ForwarderTest, SplicerKeepsTcpChecksumValid) {
  // RFC 1624 end to end: after the seq/ack rewrite plus the precomputed
  // adjustment, the transport checksum must still verify.
  auto program = BuildTcpSplicer();
  const uint32_t seq_delta = 0x00012345;
  const uint32_t ack_delta = 0u - 0x00012345u;
  auto fold = [](uint32_t v) {
    uint32_t s = (v >> 16) + (v & 0xffff);
    while (s >> 16) {
      s = (s & 0xffff) + (s >> 16);
    }
    return s;
  };
  uint32_t adjust = fold(seq_delta) + fold(ack_delta);
  while (adjust >> 16) {
    adjust = (adjust & 0xffff) + (adjust >> 16);
  }
  sram_.WriteU32(512 + 0, seq_delta);
  sram_.WriteU32(512 + 4, ack_delta);
  sram_.WriteU32(512 + 12, adjust);
  sram_.WriteU32(512 + 16, 1);

  for (uint32_t seq : {0u, 1000u, 0xfffff000u, 0x7fffffffu}) {
    PacketSpec spec;
    spec.protocol = kIpProtoTcp;
    spec.tcp_seq = seq;
    spec.tcp_ack = seq + 777;
    spec.tcp_flags = kTcpFlagAck;
    Packet p = BuildPacket(spec);
    EXPECT_EQ(Run(program, p).action, VrpAction::kSend);

    // Verify the rewritten values and the checksum against a from-scratch
    // recompute.
    auto ip = Ipv4Header::Parse(p.l3());
    auto l4 = p.l3().subspan(ip->header_bytes());
    auto tcp = TcpHeader::Parse(l4);
    ASSERT_TRUE(tcp);
    EXPECT_EQ(tcp->seq, seq + seq_delta);
    EXPECT_EQ(tcp->ack, spec.tcp_ack + ack_delta);
    TcpHeader expect = *tcp;
    std::vector<uint8_t> copy(l4.begin(), l4.end());
    expect.WriteWithChecksum(copy, ip->src, ip->dst);
    const uint16_t recomputed = TcpHeader::Parse(copy)->checksum;
    // One's-complement arithmetic has two zero representations; normalize.
    auto norm = [](uint16_t v) { return v == 0xffff ? 0 : v; };
    EXPECT_EQ(norm(tcp->checksum), norm(recomputed)) << "seq=" << seq;
  }
}

// --- minimal IP ---

TEST_F(ForwarderTest, IpMinimalDecrementsTtlAndKeepsChecksumValid) {
  auto program = BuildIpMinimal();
  // Cache route state: new Ethernet header words.
  Packet tmpl = BuildPacket(PacketSpec{});
  EthernetHeader eth;
  eth.dst = PortMac(5);
  eth.src = PortMac(2);
  uint8_t hdr[14];
  eth.Write(hdr);
  for (int w = 0; w < 3; ++w) {
    sram_.WriteU32(512 + static_cast<uint32_t>(w) * 4,
                   static_cast<uint32_t>(hdr[w * 4]) << 24 |
                       static_cast<uint32_t>(hdr[w * 4 + 1]) << 16 |
                       static_cast<uint32_t>(hdr[w * 4 + 2]) << 8 | hdr[w * 4 + 3]);
  }

  PacketSpec spec;
  spec.ttl = 64;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(Run(program, p).action, VrpAction::kSend);

  auto ip = Ipv4Header::Parse(p.l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->ttl, 63);
  EXPECT_TRUE(Ipv4Header::Validate(p.l3())) << "incremental checksum invalid";
  auto new_eth = EthernetHeader::Parse(p.bytes());
  EXPECT_EQ(new_eth->dst, PortMac(5));
  EXPECT_EQ(sram_.ReadU32(512 + 16), 1u);  // forwarded count
}

TEST_F(ForwarderTest, IpMinimalExpiresTtlOne) {
  auto program = BuildIpMinimal();
  PacketSpec spec;
  spec.ttl = 1;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(Run(program, p).action, VrpAction::kExcept);
  EXPECT_EQ(sram_.ReadU32(512 + 20), 1u);  // expired count
}

// --- synthetic blocks ---

TEST_F(ForwarderTest, SyntheticBlocksCostTenPlusOne) {
  for (int blocks : {1, 4, 16}) {
    auto program = BuildSyntheticBlocks(blocks);
    auto v = VerifyProgram(program);
    ASSERT_TRUE(v.ok);
    EXPECT_EQ(v.worst_case.cycles, static_cast<uint32_t>(blocks * 11 + 1));
    EXPECT_EQ(v.worst_case.sram_reads, static_cast<uint32_t>(blocks));
  }
}

// --- native forwarders ---

TEST(FullIp, ForwardsAndRewrites) {
  RouteTable routes;
  routes.AddRoute("10.2.0.0/16", 2);
  BackingStore sram("sram", 1024);
  FullIpForwarder fw;
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 1);
  Packet p = BuildPacket(spec);
  NativeContext ctx;
  ctx.packet = &p;
  ctx.routes = &routes;
  ctx.sram = &sram;
  ctx.state_addr = 0;
  ctx.state_bytes = 16;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kForward);
  EXPECT_EQ(ctx.out_port, 2);
  auto ip = Ipv4Header::Parse(p.l3());
  EXPECT_EQ(ip->ttl, 63);
  EXPECT_TRUE(Ipv4Header::Validate(p.l3()));
  EXPECT_EQ(sram.ReadU32(0), 1u);
}

TEST(FullIp, HandlesRecordRouteOption) {
  RouteTable routes;
  routes.AddRoute("10.2.0.0/16", 2);
  FullIpForwarder fw;
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 1);
  spec.ip_options = {0x07, 0x07, 0x04, 0, 0, 0, 0, 0x00};  // record route, one slot
  Packet p = BuildPacket(spec);
  NativeContext ctx;
  ctx.packet = &p;
  ctx.routes = &routes;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kForward);
  EXPECT_EQ(fw.options_handled(), 1u);
  EXPECT_GT(ctx.extra_cycles, 0u);
  auto ip = Ipv4Header::Parse(p.l3());
  ASSERT_TRUE(ip->has_options());
  EXPECT_EQ(ip->options[2], 0x08);  // pointer advanced past the stamped slot
}

TEST(FullIp, DropsUnroutable) {
  RouteTable routes;  // empty
  FullIpForwarder fw;
  Packet p = BuildPacket(PacketSpec{});
  NativeContext ctx;
  ctx.packet = &p;
  ctx.routes = &routes;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kDrop);
}

TEST(TcpProxy, TracksHandshakeAndMarksSpliceEligible) {
  BackingStore sram("sram", 1024);
  TcpProxyForwarder fw;
  RouteTable routes;
  NativeContext ctx;
  ctx.routes = &routes;
  ctx.sram = &sram;
  ctx.state_addr = 0;
  ctx.state_bytes = 32;

  PacketSpec syn;
  syn.protocol = kIpProtoTcp;
  syn.tcp_flags = kTcpFlagSyn;
  syn.tcp_seq = 100;
  Packet p1 = BuildPacket(syn);
  ctx.packet = &p1;
  fw.Process(ctx);
  EXPECT_EQ(sram.ReadU32(0), 1u);  // phase: saw SYN

  PacketSpec ack = syn;
  ack.tcp_flags = kTcpFlagAck;
  ack.tcp_ack = 101;
  Packet p2 = BuildPacket(ack);
  ctx.packet = &p2;
  fw.Process(ctx);
  EXPECT_EQ(sram.ReadU32(0), 2u);  // established
  EXPECT_EQ(fw.handshakes_seen(), 1u);

  // Push enough payload through to become splice-eligible.
  PacketSpec data = ack;
  data.frame_bytes = 256;
  for (int i = 0; i < 2; ++i) {
    Packet p = BuildPacket(data);
    ctx.packet = &p;
    fw.Process(ctx);
  }
  EXPECT_EQ(sram.ReadU32(16), 1u);
}

TEST(FixedCost, DeclaresItsCycles) {
  FixedCostForwarder fw("svc", 1510);
  EXPECT_EQ(fw.cycles_per_packet(), 1510u);
  Packet p = BuildPacket(PacketSpec{});
  NativeContext ctx;
  ctx.packet = &p;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kForward);
  EXPECT_EQ(fw.processed(), 1u);
}

}  // namespace
}  // namespace npr
