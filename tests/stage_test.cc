// Pipeline-behavior tests: isolation modes, ablation paths, allocator
// flavors, interrupt mode, SA-level flows, budget scaling, measurement
// windows — the configuration space the benches rely on.

#include <gtest/gtest.h>

#include "src/core/router.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

RouterConfig Infinite() {
  RouterConfig cfg;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_pentium = false;
  cfg.enable_strongarm = false;
  return cfg;
}

void AddRoutes(Router& router) {
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(8);
}

double RunMpps(RouterConfig cfg, double warm_ms = 2.0, double ms = 6.0) {
  Router router(std::move(cfg));
  AddRoutes(router);
  router.Start();
  router.RunForMs(warm_ms);
  router.StartMeasurement();
  router.RunForMs(ms);
  return router.ForwardingRateMpps();
}

// --- isolation modes ---

TEST(StageModes, MagicDrainCountsInputEnqueues) {
  RouterConfig cfg = Infinite();
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;
  EXPECT_GT(RunMpps(std::move(cfg)), 3.0);
}

TEST(StageModes, FakeDataDrivesOutputAlone) {
  RouterConfig cfg = Infinite();
  cfg.input_contexts_override = 0;
  cfg.output_fake_data = true;
  Router router(std::move(cfg));
  AddRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  router.RunForMs(6.0);
  EXPECT_GT(router.ForwardingRateMpps(), 3.0);
  EXPECT_EQ(router.stats().input.mps, 0u) << "no input stage must run";
  EXPECT_GT(router.stats().output.mps, 10'000u);
}

TEST(StageModes, StageCountsScaleWithContexts) {
  // More input contexts -> more throughput, monotonically (up to the knee).
  double last = 0;
  for (int ctx : {2, 4, 8, 16}) {
    RouterConfig cfg = Infinite();
    cfg.input_contexts_override = ctx;
    cfg.output_contexts_override = 0;
    cfg.magic_drain = true;
    const double rate = RunMpps(std::move(cfg), 1.0, 4.0);
    EXPECT_GT(rate, last) << ctx << " contexts";
    last = rate;
  }
}

// --- ablation paths ---

TEST(Ablations, DramDirectIsSlowerAndDramBound) {
  RouterConfig direct = Infinite();
  direct.dram_direct_path = true;
  Router router(std::move(direct));
  AddRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  const SimTime t0 = router.engine().now();
  router.RunForMs(6.0);
  const double rate = router.ForwardingRateMpps();
  EXPECT_LT(rate, 3.0);
  EXPECT_GT(rate, 2.0);
  EXPECT_GT(router.chip().memory().dram().Utilization(t0), 0.95)
      << "§3.7: the direct design saturates DRAM";
}

TEST(Ablations, NaiveTokenOrderIsMuchSlower) {
  RouterConfig naive = Infinite();
  naive.token_ring_interleaved = false;
  naive.output_contexts_override = 0;
  naive.magic_drain = true;
  const double slow = RunMpps(std::move(naive), 1.0, 4.0);
  RouterConfig good = Infinite();
  good.output_contexts_override = 0;
  good.magic_drain = true;
  const double fast = RunMpps(std::move(good), 1.0, 4.0);
  EXPECT_GT(fast, slow * 1.5) << "§3.2.2: interleaving the rotation matters";
}

// --- buffer pool flavors ---

TEST(BufferPools, StackPoolEliminatesLapLoss) {
  for (bool stack : {false, true}) {
    RouterConfig cfg = Infinite();
    cfg.hw.num_buffers = 64;  // scarce
    cfg.use_stack_buffer_pool = stack;
    Router router(std::move(cfg));
    AddRoutes(router);
    router.Start();
    router.RunForMs(8.0);
    if (stack) {
      EXPECT_EQ(router.stats().lost_overwritten, 0u);
    } else {
      EXPECT_GT(router.stats().lost_overwritten, 0u);
    }
  }
}

TEST(BufferPools, StackPoolDeliversIntactPackets) {
  RouterConfig cfg;  // real ports
  cfg.use_stack_buffer_pool = true;
  Router router(std::move(cfg));
  AddRoutes(router);
  router.WarmRouteCache(64);
  std::optional<Packet> got;
  router.port(2).SetSink([&](Packet&& p) { got = std::move(p); });
  router.Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 3);
  router.port(0).InjectFromWire(BuildPacket(spec));
  router.RunForMs(2.0);
  ASSERT_TRUE(got);
  EXPECT_TRUE(Ipv4Header::Validate(got->l3()));
}

TEST(BufferPools, StackPoolRecyclesUnderSustainedLoad) {
  // If any drop/consume path leaked buffers, a long run at full rate with a
  // small pool would exhaust it. VRP-dropping half the traffic stresses the
  // release-on-drop path.
  RouterConfig cfg = Infinite();
  cfg.use_stack_buffer_pool = true;
  cfg.hw.num_buffers = 128;
  Router router(std::move(cfg));
  AddRoutes(router);
  VrpProgram limiter = BuildRateLimiter();  // zero tokens: drops everything
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &limiter;
  ASSERT_TRUE(router.Install(req).ok);
  router.Start();
  router.RunForMs(10.0);
  EXPECT_GT(router.stats().dropped_by_vrp, 10'000u);
  EXPECT_EQ(router.stats().dropped_no_buffer, 0u) << "drop path leaked pool buffers";
}

// --- StrongARM flows and interrupt mode ---

TEST(StrongArmFlows, PerFlowSaForwarderRuns) {
  RouterConfig cfg;
  cfg.classifier = ClassifierMode::kFlowTable;
  Router router(std::move(cfg));
  AddRoutes(router);
  router.WarmRouteCache(64);
  uint64_t delivered = 0;
  router.port(3).SetSink([&](Packet&&) { ++delivered; });

  auto null_fw = std::make_unique<NullForwarder>(100);
  NullForwarder* raw = null_fw.get();
  const int idx = router.sa_forwarders().Register(std::move(null_fw));

  PacketSpec spec;
  spec.dst_ip = DstIpForPort(3, 1);
  spec.protocol = kIpProtoTcp;
  spec.src_port = 9000;
  spec.dst_port = 80;
  InstallRequest req;
  req.key = FlowKey::Tuple(spec.src_ip, spec.dst_ip, 9000, 80);
  req.where = Where::kStrongArm;
  req.native_index = idx;
  req.expected_pps = 10'000;
  ASSERT_TRUE(router.Install(req).ok);
  router.Start();

  for (int i = 0; i < 7; ++i) {
    router.port(0).InjectFromWire(BuildPacket(spec));
  }
  router.RunForMs(3.0);
  EXPECT_EQ(raw->processed(), 7u);
  EXPECT_EQ(delivered, 7u);
  EXPECT_EQ(router.stats().sa_local_processed, 7u);
}

TEST(StrongArmFlows, InterruptModeIsSlowerThanPolling) {
  auto measure = [](bool interrupts) {
    RouterConfig cfg = Infinite();
    cfg.enable_strongarm = true;
    cfg.sa_use_interrupts = interrupts;
    cfg.synthetic_exceptional_fraction = 1.0;
    cfg.output_contexts_override = 0;
    cfg.magic_drain = true;
    Router router(std::move(cfg));
    AddRoutes(router);
    router.Start();
    router.RunForMs(2.0);
    router.StartMeasurement();
    const uint64_t before = router.stats().sa_local_processed;
    router.RunForMs(8.0);
    return static_cast<double>(router.stats().sa_local_processed - before);
  };
  const double polling = measure(false);
  const double interrupts = measure(true);
  EXPECT_LT(interrupts, polling * 0.6) << "§3.6: interrupts were significantly slower";
}

// --- budget scaling (Figure 9 relation) ---

class BudgetScaling : public ::testing::TestWithParam<double> {};

TEST_P(BudgetScaling, MonotoneAndConsistent) {
  const double mpps = GetParam();
  const VrpBudget b = VrpBudget::ForForwardingRate(mpps);
  const VrpBudget slower = VrpBudget::ForForwardingRate(mpps / 2);
  EXPECT_GE(slower.cycles, b.cycles) << "halving the rate can only grow the budget";
  EXPECT_GE(slower.sram_transfers, b.sram_transfers);
}

INSTANTIATE_TEST_SUITE_P(Rates, BudgetScaling, ::testing::Values(0.5, 1.0, 1.128, 2.0, 2.8),
                         [](const auto& info) {
                           return "mpps_x100_" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

// --- measurement plumbing ---

TEST(Measurement, StartMeasurementResetsWindow) {
  RouterConfig cfg = Infinite();
  Router router(std::move(cfg));
  AddRoutes(router);
  router.Start();
  router.RunForMs(3.0);
  const uint64_t warm = router.stats().input.mps;
  EXPECT_GT(warm, 0u);
  router.StartMeasurement();
  EXPECT_EQ(router.stats().input.mps, 0u);
  EXPECT_EQ(router.stats().latency_ns.count(), 0u);
  router.RunForMs(2.0);
  EXPECT_GT(router.stats().input.mps, 0u);
}

TEST(Measurement, TokenRingIdleAccounted) {
  RouterConfig cfg = Infinite();
  Router router(std::move(cfg));
  AddRoutes(router);
  router.Start();
  router.RunForMs(3.0);
  // At saturation the input token still idles a little between members.
  EXPECT_GT(router.input_stage().token_ring().idle_ps(), 0);
  EXPECT_EQ(router.input_stage().token_ring().size(), 16);
  EXPECT_EQ(router.output_stage().token_ring().size(), 8);
}

TEST(Measurement, MemoryChannelsBusyUnderLoad) {
  RouterConfig cfg = Infinite();
  Router router(std::move(cfg));
  AddRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  const SimTime t0 = router.engine().now();
  router.RunForMs(4.0);
  // 3.4 Mpps x 128 B through DRAM ~ 3.5 Gbps of its 6.4 Gbps.
  EXPECT_GT(router.chip().memory().dram().Utilization(t0), 0.4);
  EXPECT_LT(router.chip().memory().dram().Utilization(t0), 0.8);
  EXPECT_GT(router.chip().memory().sram().Utilization(t0), 0.02);
}

// --- install API edges ---

TEST(InstallApi, IstoreExhaustionRejectsCleanly) {
  Router router((RouterConfig()));
  AddRoutes(router);
  // Fill the ISTORE with per-flow forwarders (cheap in budget terms since
  // per-flow costs max, not sum).
  VrpProgram big = BuildSyntheticBlocks(18);  // ~199 slots+1 each
  int installed = 0;
  for (int i = 0; i < 10; ++i) {
    InstallRequest req;
    req.key = FlowKey::Tuple(1000 + static_cast<uint32_t>(i), 2, 3, 4);
    req.where = Where::kMicroEngine;
    req.program = &big;
    auto outcome = router.Install(req);
    if (!outcome.ok) {
      EXPECT_NE(outcome.error.find("ISTORE"), std::string::npos);
      break;
    }
    ++installed;
  }
  EXPECT_GE(installed, 3);
  EXPECT_LE(installed, 4);  // 650 / 200
}

TEST(InstallApi, GetDataOnUnknownFidIsEmpty) {
  Router router((RouterConfig()));
  EXPECT_TRUE(router.GetData(999).empty());
  EXPECT_FALSE(router.SetData(999, std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_FALSE(router.Remove(999));
}

TEST(InstallApi, SetDataRejectsOversizedWrites) {
  Router router((RouterConfig()));
  VrpProgram monitor = BuildSynMonitor();  // 4 bytes of state
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  auto outcome = router.Install(req);
  ASSERT_TRUE(outcome.ok);
  std::vector<uint8_t> too_big(8, 0);
  EXPECT_FALSE(router.SetData(outcome.fid, too_big));
  std::vector<uint8_t> fits(4, 0);
  EXPECT_TRUE(router.SetData(outcome.fid, fits));
}

}  // namespace
}  // namespace npr
