// Tests for the OSPF-lite control plane: LSA codec, SPF route computation,
// and the Pentium control forwarder.

#include <gtest/gtest.h>

#include "src/control/ospf_lite.h"
#include "src/net/ipv4.h"

namespace npr {
namespace {

Lsa MakeLsa(uint32_t origin, uint32_t seq, std::vector<OspfLink> links) {
  Lsa lsa;
  lsa.origin = origin;
  lsa.seq = seq;
  lsa.links = std::move(links);
  return lsa;
}

OspfLink RouterLink(uint32_t neighbor, uint8_t cost, uint16_t port = 0) {
  OspfLink l;
  l.neighbor_id = neighbor;
  l.cost = cost;
  l.port_hint = port;
  return l;
}

OspfLink StubLink(const std::string& cidr, uint16_t port = 0) {
  auto p = *Prefix::Parse(cidr);
  OspfLink l;
  l.neighbor_id = 0;
  l.prefix_addr = p.addr;
  l.prefix_len = p.len;
  l.port_hint = port;
  return l;
}

TEST(LsaCodec, RoundTrip) {
  Lsa lsa = MakeLsa(7, 42, {RouterLink(9, 3, 2), StubLink("10.5.0.0/16", 1)});
  auto bytes = EncodeLsa(lsa);
  auto decoded = DecodeLsa(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->origin, 7u);
  EXPECT_EQ(decoded->seq, 42u);
  ASSERT_EQ(decoded->links.size(), 2u);
  EXPECT_EQ(decoded->links[0].neighbor_id, 9u);
  EXPECT_EQ(decoded->links[0].cost, 3);
  EXPECT_EQ(decoded->links[1].prefix_len, 16);
}

TEST(LsaCodec, RejectsGarbage) {
  std::vector<uint8_t> junk(10, 0xab);
  EXPECT_FALSE(DecodeLsa(junk));
  EXPECT_FALSE(DecodeLsa({}));
}

TEST(LsaCodec, RejectsTruncatedLinks) {
  Lsa lsa = MakeLsa(1, 1, {RouterLink(2, 1)});
  auto bytes = EncodeLsa(lsa);
  bytes.resize(bytes.size() - 4);  // cut into the link record
  EXPECT_FALSE(DecodeLsa(bytes));
}

TEST(LsaPacket, TravelsInsideIpProto89) {
  Lsa lsa = MakeLsa(3, 1, {StubLink("10.9.0.0/16")});
  Packet p = BuildLsaPacket(lsa, 0x0a000001, 0x0a0000ff);
  auto ip = Ipv4Header::Parse(p.l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoOspfLite);
  EXPECT_TRUE(Ipv4Header::Validate(p.l3()));
  auto decoded = DecodeLsa(p.l3().subspan(ip->header_bytes()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->origin, 3u);
}

TEST(OspfLite, StaleLsaIgnored) {
  OspfLite ospf(1);
  EXPECT_TRUE(ospf.ProcessLsa(MakeLsa(2, 5, {})));
  EXPECT_FALSE(ospf.ProcessLsa(MakeLsa(2, 5, {})));
  EXPECT_FALSE(ospf.ProcessLsa(MakeLsa(2, 4, {})));
  EXPECT_TRUE(ospf.ProcessLsa(MakeLsa(2, 6, {})));
}

TEST(OspfLite, DirectlyAttachedPrefixes) {
  OspfLite ospf(1);
  ospf.AddLocalLink(StubLink("10.0.0.0/16", 0));
  ospf.AddLocalLink(StubLink("10.1.0.0/16", 1));
  RouteTable table;
  EXPECT_EQ(ospf.ComputeRoutes(table), 2);
  EXPECT_EQ(table.Lookup(0x0a000005).entry->out_port, 0);
  EXPECT_EQ(table.Lookup(0x0a010005).entry->out_port, 1);
}

// Topology: us(1) --port2-- R2 -- R3 (advertises 10.30/16)
//              \--port5-- R4 (advertises 10.40/16, also linked to R3 at
//                             high cost)
TEST(OspfLite, SpfPicksShortestPath) {
  OspfLite ospf(1);
  ospf.AddLocalLink(RouterLink(2, 1, 2));
  ospf.AddLocalLink(RouterLink(4, 1, 5));
  ASSERT_TRUE(ospf.ProcessLsa(MakeLsa(2, 1, {RouterLink(1, 1), RouterLink(3, 1)})));
  ASSERT_TRUE(ospf.ProcessLsa(
      MakeLsa(3, 1, {RouterLink(2, 1), RouterLink(4, 10), StubLink("10.30.0.0/16")})));
  ASSERT_TRUE(ospf.ProcessLsa(
      MakeLsa(4, 1, {RouterLink(1, 1), RouterLink(3, 10), StubLink("10.40.0.0/16")})));

  RouteTable table;
  ospf.ComputeRoutes(table);
  // 10.30/16 lives on R3, reached via R2 on port 2 (cost 2 < 11 via R4).
  EXPECT_EQ(table.Lookup(0x0a1e0001).entry->out_port, 2);
  // 10.40/16 lives on R4, directly adjacent via port 5.
  EXPECT_EQ(table.Lookup(0x0a280001).entry->out_port, 5);
}

TEST(OspfLite, RerouteAfterTopologyChange) {
  OspfLite ospf(1);
  ospf.AddLocalLink(RouterLink(2, 1, 2));
  ospf.AddLocalLink(RouterLink(4, 1, 5));
  ospf.ProcessLsa(MakeLsa(2, 1, {RouterLink(1, 1), RouterLink(3, 1)}));
  ospf.ProcessLsa(MakeLsa(3, 1, {RouterLink(2, 1), StubLink("10.30.0.0/16")}));
  ospf.ProcessLsa(MakeLsa(4, 1, {RouterLink(1, 1)}));
  RouteTable table;
  ospf.ComputeRoutes(table);
  ASSERT_EQ(table.Lookup(0x0a1e0001).entry->out_port, 2);

  // R3 detaches from R2 and reattaches behind R4.
  ospf.ProcessLsa(MakeLsa(2, 2, {RouterLink(1, 1)}));
  ospf.ProcessLsa(MakeLsa(3, 2, {RouterLink(4, 1), StubLink("10.30.0.0/16")}));
  ospf.ProcessLsa(MakeLsa(4, 2, {RouterLink(1, 1), RouterLink(3, 1)}));
  const uint64_t epoch_before = table.epoch();
  ospf.ComputeRoutes(table);
  EXPECT_EQ(table.Lookup(0x0a1e0001).entry->out_port, 5);
  EXPECT_GT(table.epoch(), epoch_before) << "route change must invalidate caches";
}

TEST(OspfLite, UnreachablePrefixNotInstalled) {
  OspfLite ospf(1);
  // R9 advertises a prefix but nothing links to it.
  ospf.ProcessLsa(MakeLsa(9, 1, {StubLink("10.90.0.0/16")}));
  RouteTable table;
  ospf.ComputeRoutes(table);
  EXPECT_FALSE(table.Lookup(0x0a5a0001).entry);
}

TEST(HelloCodec, RoundTripAndTypeDiscrimination) {
  const OspfHello hello{7, 0xdeadbeefu};
  auto bytes = EncodeHello(hello);
  auto decoded = DecodeHello(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->origin, 7u);
  EXPECT_EQ(decoded->seq, 0xdeadbeefu);
  // A hello is not an LSA and vice versa — the type byte discriminates.
  EXPECT_FALSE(DecodeLsa(bytes));
  EXPECT_FALSE(DecodeHello(EncodeLsa(MakeLsa(7, 1, {}))));

  Packet p = BuildHelloPacket(hello, 0x0a000001, 0x0a000002);
  auto ip = Ipv4Header::Parse(p.l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoOspfLite);
  auto from_wire = DecodeHello(p.l3().subspan(ip->header_bytes()));
  ASSERT_TRUE(from_wire);
  EXPECT_EQ(from_wire->origin, 7u);
}

TEST(OspfLite, SeqNewerSerialArithmetic) {
  EXPECT_FALSE(OspfLite::SeqNewer(5, 5));
  EXPECT_TRUE(OspfLite::SeqNewer(6, 5));
  EXPECT_FALSE(OspfLite::SeqNewer(5, 6));
  // RFC 1982 serial arithmetic: sequence numbers survive wraparound.
  EXPECT_TRUE(OspfLite::SeqNewer(0, UINT32_MAX));
  EXPECT_FALSE(OspfLite::SeqNewer(UINT32_MAX, 0));
  EXPECT_TRUE(OspfLite::SeqNewer(3, UINT32_MAX - 2));
  EXPECT_FALSE(OspfLite::SeqNewer(UINT32_MAX - 2, 3));
}

TEST(OspfLite, SeqWraparoundAcceptedAsNewer) {
  OspfLite ospf(1);
  EXPECT_TRUE(ospf.ProcessLsa(MakeLsa(2, UINT32_MAX, {})));
  EXPECT_TRUE(ospf.ProcessLsa(MakeLsa(2, 0, {})));           // wraps, still newer
  EXPECT_FALSE(ospf.ProcessLsa(MakeLsa(2, UINT32_MAX, {})));  // now stale
}

TEST(OspfLite, WithdrawalRemovesRouteAndBumpsEpoch) {
  OspfLite ospf(1);
  ospf.AddLocalLink(RouterLink(2, 1, 2));
  ospf.ProcessLsa(MakeLsa(2, 1, {RouterLink(1, 1), StubLink("10.30.0.0/16")}));
  RouteTable table;
  // A static route must never be disturbed by the protocol.
  RouteEntry static_entry;
  static_entry.out_port = 7;
  table.AddRoute(*Prefix::Parse("10.99.0.0/16"), static_entry);

  int withdrawn = 0;
  ospf.ComputeRoutes(table, nullptr, &withdrawn);
  EXPECT_EQ(withdrawn, 0);
  ASSERT_TRUE(table.Lookup(0x0a1e0001).entry);

  // Our side of the link to R2 dies: the prefix becomes unreachable even
  // though R2's stale LSA still names the adjacency.
  EXPECT_TRUE(ospf.SetLocalLinkUp(2, 2, false));
  const uint64_t epoch_before = table.epoch();
  ospf.ComputeRoutes(table, nullptr, &withdrawn);
  EXPECT_EQ(withdrawn, 1);
  EXPECT_FALSE(table.Lookup(0x0a1e0001).entry);
  EXPECT_GT(table.epoch(), epoch_before) << "withdrawal must invalidate route caches";
  EXPECT_EQ(table.Lookup(0x0a630001).entry->out_port, 7) << "static route disturbed";

  // Link restored: the route comes back.
  EXPECT_TRUE(ospf.SetLocalLinkUp(2, 2, true));
  ospf.ComputeRoutes(table, nullptr, &withdrawn);
  EXPECT_EQ(withdrawn, 0);
  ASSERT_TRUE(table.Lookup(0x0a1e0001).entry);
  EXPECT_EQ(table.Lookup(0x0a1e0001).entry->out_port, 2);
}

TEST(OspfLite, NextHopResolverSetsRemoteMac) {
  OspfLite ospf(1);
  ospf.AddLocalLink(RouterLink(2, 1, 4));
  ospf.ProcessLsa(MakeLsa(2, 1, {RouterLink(1, 1), StubLink("10.30.0.0/16")}));
  MacAddr want{0x02, 0, 0, 0, 0x01, 0x09};
  ospf.set_next_hop_resolver([&](uint32_t neighbor_id, uint16_t port) {
    EXPECT_EQ(neighbor_id, 2u);
    EXPECT_EQ(port, 4);
    return want;
  });
  RouteTable table;
  ospf.ComputeRoutes(table);
  EXPECT_EQ(table.Lookup(0x0a1e0001).entry->next_hop_mac, want);
}

TEST(OspfForwarder, ConsumesLsaAndInstallsRoutes) {
  OspfLite ospf(1);
  ospf.AddLocalLink(RouterLink(2, 1, 3));
  OspfForwarder fw(ospf);
  RouteTable table;

  Lsa lsa = MakeLsa(2, 1, {RouterLink(1, 1), StubLink("10.77.0.0/16")});
  Packet p = BuildLsaPacket(lsa, 0x0a000002, 0x0a000001);
  NativeContext ctx;
  ctx.packet = &p;
  ctx.routes = &table;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kConsume);
  EXPECT_EQ(fw.lsas_processed(), 1u);
  EXPECT_EQ(fw.spf_runs(), 1u);
  EXPECT_GT(ctx.extra_cycles, 0u);
  EXPECT_EQ(table.Lookup(0x0a4d0001).entry->out_port, 3);

  // A stale copy does not trigger SPF again.
  Packet p2 = BuildLsaPacket(lsa, 0x0a000002, 0x0a000001);
  ctx.packet = &p2;
  ctx.extra_cycles = 0;
  fw.Process(ctx);
  EXPECT_EQ(fw.spf_runs(), 1u);
  EXPECT_EQ(ctx.extra_cycles, 0u);
}

TEST(OspfForwarder, NonLsaForwards) {
  OspfLite ospf(1);
  OspfForwarder fw(ospf);
  Packet p = BuildPacket(PacketSpec{});
  NativeContext ctx;
  ctx.packet = &p;
  EXPECT_EQ(fw.Process(ctx), NativeAction::kForward);
}

}  // namespace
}  // namespace npr
