// Self-healing subsystem: watchdog detection and recovery per fault class,
// quarantine escalation for trapping forwarders, the retry/timeout-hardened
// control channel, and determinism of all of the above.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/router.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/control_channel.h"
#include "src/health/health_monitor.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

std::unique_ptr<Router> MakeRouter(RouterConfig cfg = RouterConfig{}) {
  auto router = std::make_unique<Router>(std::move(cfg));
  for (int p = 0; p < router->num_ports(); ++p) {
    router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router->WarmRouteCache(32);
  return router;
}

void DriveTraffic(Router& router, std::vector<std::unique_ptr<TrafficGen>>* gens,
                  double traffic_ms, int ports = 4, uint64_t rate_pps = 120'000) {
  for (int p = 0; p < ports; ++p) {
    TrafficSpec spec;
    spec.rate_pps = rate_pps;
    spec.dst_spread = 16;
    gens->push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                 static_cast<uint64_t>(500 + p)));
    gens->back()->Start(static_cast<SimTime>(traffic_ms * kPsPerMs));
  }
}

size_t CountEvents(const HealthMonitor& health, RecoveryEvent::Kind kind) {
  size_t n = 0;
  for (const RecoveryEvent& e : health.events()) {
    n += e.kind == kind ? 1 : 0;
  }
  return n;
}

// --- token-loss detection and regeneration ---

TEST(HealthMonitorTest, LostTokenIsRegeneratedWithinDeadline) {
  FaultPlan plan;
  plan.token_lost_p = 5e-5;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  HealthMonitor health(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 10.0);
  router->RunForMs(13.0);

  EXPECT_GT(router->stats().tokens_regenerated, 0u);
  EXPECT_GT(router->stats().watchdog_fired, 0u);
  EXPECT_GT(router->stats().forwarded, 1000u);
  ASSERT_GT(CountEvents(health, RecoveryEvent::Kind::kTokenRegen), 0u);
  const HealthConfig& hc = health.config();
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind != RecoveryEvent::Kind::kTokenRegen) {
      continue;
    }
    // Detection waits out the deadline, then lands on a watchdog tick.
    EXPECT_GE(e.mttd_ps(), hc.token_deadline_ps);
    EXPECT_LE(e.mttd_ps(), hc.token_deadline_ps + 2 * hc.scan_interval_ps);
    EXPECT_EQ(e.recovered_at, e.detected_at);  // regeneration is immediate
  }
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Regression: the liveness invariant must tell "token lost awaiting
// regeneration" apart from "token in flight", and must not fire inside the
// recovery window.
TEST(HealthMonitorTest, TokenLivenessInvariantReportsUnrecoveredLoss) {
  FaultPlan plan;
  plan.token_lost_p = 1.0;  // first release loses the token, nobody recovers
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 2.0, /*ports=*/1);
  router->RunForMs(13.0);

  EXPECT_TRUE(router->input_stage().token_ring().token_lost());
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  ASSERT_FALSE(report.ok());
  bool saw_lost = false;
  for (const std::string& v : report.violations) {
    saw_lost = saw_lost || v.find("token lost") != std::string::npos;
  }
  EXPECT_TRUE(saw_lost) << report.ToString();
}

TEST(HealthMonitorTest, TokenLossInsideRecoveryWindowIsNotAViolation) {
  // Same loss, but checked while a monitor would still be mid-recovery: the
  // loss is younger than the liveness window, so no violation yet. The
  // injector starts disarmed so the loss lands at a controlled instant.
  FaultPlan plan;
  plan.token_lost_p = 1.0;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  ASSERT_NE(router->fault_injector(), nullptr);
  router->fault_injector()->set_armed(false);
  router->RunForMs(6.0);  // token circulates fault-free past the window
  ASSERT_FALSE(router->input_stage().token_ring().token_lost());

  router->fault_injector()->set_armed(true);  // next release loses the token
  router->RunForMs(0.5);
  ASSERT_TRUE(router->input_stage().token_ring().token_lost());
  const SimTime lost_for =
      router->engine().now() - router->input_stage().token_ring().token_lost_since_ps();
  ASSERT_LT(lost_for, RouterInvariants::kTokenLivenessWindowPs);
  const InvariantReport in_window = RouterInvariants::CheckAll(*router);
  for (const std::string& v : in_window.violations) {
    EXPECT_EQ(v.find("token lost"), std::string::npos) << v;
  }

  router->RunForMs(6.0);  // nobody recovers: now it is a violation
  const InvariantReport after = RouterInvariants::CheckAll(*router);
  bool saw_lost = false;
  for (const std::string& v : after.violations) {
    saw_lost = saw_lost || v.find("token lost") != std::string::npos;
  }
  EXPECT_TRUE(saw_lost) << after.ToString();
}

// --- lost context restarts ---

TEST(HealthMonitorTest, LostRestartsAreRecoveredByTheWatchdog) {
  FaultPlan plan;
  plan.context_crash_mean_ps = 2 * kPsPerMs;
  plan.context_restart_ps = 50 * kPsPerUs;
  plan.restart_lost_p = 1.0;  // every scheduled restart is lost
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  HealthMonitor health(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 10.0);
  router->RunForMs(13.0);

  EXPECT_GT(router->stats().context_crashes, 0u);
  // With every restart lost, only the watchdog brings contexts back.
  EXPECT_GT(router->stats().context_restarts, 0u);
  ASSERT_GT(CountEvents(health, RecoveryEvent::Kind::kContextRestore), 0u);
  const HealthConfig& hc = health.config();
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind != RecoveryEvent::Kind::kContextRestore) {
      continue;
    }
    EXPECT_GE(e.mttd_ps(), hc.context_deadline_ps);
    EXPECT_LE(e.mttd_ps(), hc.context_deadline_ps + 2 * hc.scan_interval_ps);
  }
  EXPECT_GT(router->stats().forwarded, 1000u);
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Pentium hang: degraded-mode shedding and recovery ---

TEST(HealthMonitorTest, PentiumHangShedsLoadAndRecovers) {
  FaultPlan plan;
  plan.pentium_hang_mean_ps = 4 * kPsPerMs;
  plan.pentium_hang_ps = 1500 * kPsPerUs;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_strongarm = true;
  cfg.enable_pentium = true;
  cfg.synthetic_pentium_fraction = 0.3;
  auto router = MakeRouter(std::move(cfg));
  const int idx =
      router->pe_forwarders().Register(std::make_unique<FixedCostForwarder>("svc", 100));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 100'000;
  ASSERT_TRUE(router->Install(req).ok);
  router->Start();
  HealthMonitor health(*router);

  router->RunForMs(14.0);

  ASSERT_GT(CountEvents(health, RecoveryEvent::Kind::kPentiumDegrade), 0u);
  EXPECT_GT(router->stats().pkts_shed_degraded, 0u)
      << "degraded mode must shed Pentium-bound packets";
  bool recovered = false;
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind == RecoveryEvent::Kind::kPentiumDegrade && e.recovered_at > 0) {
      recovered = true;
      EXPECT_GT(e.recovered_at, e.detected_at);
    }
  }
  EXPECT_TRUE(recovered) << "the degraded mark must clear once the host resumes";
  // Path A must have kept forwarding throughout the hang.
  EXPECT_GT(router->stats().forwarded, 10'000u);
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- quarantine escalation ---

TEST(HealthMonitorTest, TrappingForwarderIsThrottledThenEvicted) {
  FaultPlan plan;
  plan.vrp_trap_p = 1.0;  // every VRP run traps
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  HealthMonitor health(*router);

  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  const InstallOutcome outcome = router->Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(router->flow_table().size(), 1u);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 8.0, /*ports=*/1);
  router->RunForMs(10.0);

  // warn -> throttle (cooldown) -> more traps -> evict.
  EXPECT_EQ(router->stats().forwarders_quarantined, 1u);
  EXPECT_EQ(router->flow_table().size(), 0u) << "eviction removes the flow binding";
  EXPECT_GE(router->stats().vrp_traps, health.config().evict_after_traps);
  EXPECT_EQ(CountEvents(health, RecoveryEvent::Kind::kQuarantine), 1u);
  // Path A keeps running on default IP after the eviction.
  EXPECT_GT(router->stats().forwarded, 500u);
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(HealthMonitorTest, FaultFreeBehaviorIsUnchangedByMonitoring) {
  // The watchdog only observes on the fault-free path: attaching it must
  // not change what the router forwards.
  uint64_t forwarded[2] = {0, 0};
  for (int with_health = 0; with_health < 2; ++with_health) {
    auto router = MakeRouter();
    router->Start();
    std::unique_ptr<HealthMonitor> health;
    if (with_health == 1) {
      health = std::make_unique<HealthMonitor>(*router);
    }
    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 6.0);
    router->RunForMs(8.0);
    forwarded[with_health] = router->stats().forwarded;
    if (health != nullptr) {
      EXPECT_EQ(router->stats().watchdog_fired, 0u);
      EXPECT_TRUE(health->events().empty());
    }
  }
  EXPECT_EQ(forwarded[0], forwarded[1]);
}

// --- hardened control channel ---

TEST(ControlChannelTest, PerfectLinkInstallAndRemoveAck) {
  auto router = MakeRouter();
  router->Start();
  ControlChannel channel(*router);

  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  uint32_t fid = 0;
  const uint64_t seq =
      channel.Install(req, [&fid](const CtrlResult& r) { fid = r.fid; });
  router->RunForMs(1.0);
  ASSERT_TRUE(channel.acked(seq));
  ASSERT_NE(channel.result(seq), nullptr);
  EXPECT_TRUE(channel.result(seq)->ok) << channel.result(seq)->error;
  EXPECT_NE(fid, 0u);
  EXPECT_EQ(router->flow_table().size(), 1u);

  const uint64_t rm = channel.Remove(fid);
  router->RunForMs(1.0);
  ASSERT_TRUE(channel.acked(rm));
  EXPECT_TRUE(channel.result(rm)->ok);
  EXPECT_EQ(router->flow_table().size(), 0u);
  EXPECT_EQ(channel.executed_count(), 2u);
  EXPECT_EQ(router->stats().ctrl_retries, 0u);
  EXPECT_EQ(router->stats().ctrl_timeouts, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(ControlChannelTest, LossyLinkConvergesToCorrectInstalledSet) {
  FaultPlan plan;
  plan.ctrl_drop_p = 0.25;
  plan.ctrl_dup_p = 0.15;
  plan.ctrl_delay_p = 0.25;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  ControlChannelConfig ccfg;
  ccfg.max_attempts = 10;
  ControlChannel channel(*router, ccfg);

  VrpProgram monitor = BuildSynMonitor();
  VrpProgram filter = BuildPortFilter();
  InstallRequest a;
  a.key = FlowKey::All();
  a.where = Where::kMicroEngine;
  a.program = &monitor;
  InstallRequest b = a;
  b.program = &filter;

  uint32_t fid_a = 0;
  uint32_t fid_b = 0;
  std::vector<uint64_t> seqs;
  seqs.push_back(channel.Install(a, [&](const CtrlResult& r) { fid_a = r.fid; }));
  seqs.push_back(channel.Install(b, [&](const CtrlResult& r) { fid_b = r.fid; }));
  router->RunForMs(20.0);
  ASSERT_TRUE(channel.acked(seqs[0]));
  ASSERT_TRUE(channel.acked(seqs[1]));
  ASSERT_NE(fid_a, 0u);
  ASSERT_NE(fid_b, 0u);
  EXPECT_EQ(router->flow_table().size(), 2u);

  // Remove one; the surviving set must be exactly {b}.
  const uint64_t rm = channel.Remove(fid_a);
  router->RunForMs(20.0);
  ASSERT_TRUE(channel.acked(rm));
  EXPECT_TRUE(channel.result(rm)->ok);
  EXPECT_EQ(router->flow_table().size(), 1u);
  EXPECT_EQ(router->flow_table().Get(fid_a), nullptr);
  EXPECT_NE(router->flow_table().Get(fid_b), nullptr);

  // Idempotency: dropped acks and duplicated deliveries must not execute a
  // message twice — three messages, exactly three executions.
  EXPECT_EQ(channel.executed_count(), 3u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(ControlChannelTest, RetriesAndTimeoutsAreCountedUnderLoss) {
  FaultPlan plan;
  plan.ctrl_drop_p = 0.6;  // heavy loss: retries are certain
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  ControlChannelConfig ccfg;
  ccfg.max_attempts = 8;  // worst-case backoff tail fits the run below
  ControlChannel channel(*router, ccfg);

  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 4; ++i) {
    seqs.push_back(i == 0 ? channel.Install(req) : channel.GetData(1));
  }
  router->RunForMs(60.0);
  for (uint64_t seq : seqs) {
    EXPECT_TRUE(channel.acked(seq) || channel.failed(seq)) << "seq " << seq << " still open";
  }
  EXPECT_GT(router->stats().ctrl_timeouts, 0u);
  EXPECT_GT(router->stats().ctrl_retries, 0u);
}

TEST(ControlChannelTest, SameSeedYieldsBitIdenticalTrace) {
  auto run = [](std::vector<std::string>* trace, uint64_t* retries) {
    FaultPlan plan;
    plan.ctrl_drop_p = 0.3;
    plan.ctrl_dup_p = 0.2;
    plan.ctrl_delay_p = 0.3;
    plan.seed = 42;
    RouterConfig cfg;
    cfg.fault_plan = plan;
    auto router = MakeRouter(std::move(cfg));
    router->Start();
    ControlChannelConfig ccfg;
    ccfg.seed = 7;
    ControlChannel channel(*router, ccfg);
    VrpProgram monitor = BuildSynMonitor();
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &monitor;
    uint32_t fid = 0;
    channel.Install(req, [&fid](const CtrlResult& r) { fid = r.fid; });
    router->RunForMs(10.0);
    if (fid != 0) {
      channel.Remove(fid);
    }
    channel.SetData(99, {1, 2, 3});  // unknown fid: executes, acks ok=false
    router->RunForMs(10.0);
    *trace = channel.trace();
    *retries = router->stats().ctrl_retries;
  };
  std::vector<std::string> trace_a;
  std::vector<std::string> trace_b;
  uint64_t retries_a = 0;
  uint64_t retries_b = 0;
  run(&trace_a, &retries_a);
  run(&trace_b, &retries_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(retries_a, retries_b);
}

// --- end-to-end recovery chaos ---

struct ChaosOutcome {
  uint64_t forwarded = 0;
  uint64_t watchdog_fired = 0;
  uint64_t tokens_regenerated = 0;
  uint64_t context_restarts = 0;
  size_t recovery_events = 0;
  SimTime final_time = 0;

  friend bool operator==(const ChaosOutcome&, const ChaosOutcome&) = default;
};

ChaosOutcome RunRecoveryChaos(uint64_t seed) {
  RouterConfig cfg;
  cfg.fault_plan = FaultPlan::RecoveryChaos(seed);
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  HealthMonitor health(*router);
  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 14.0);
  router->RunForMs(16.0);
  ChaosOutcome out;
  out.forwarded = router->stats().forwarded;
  out.watchdog_fired = router->stats().watchdog_fired;
  out.tokens_regenerated = router->stats().tokens_regenerated;
  out.context_restarts = router->stats().context_restarts;
  out.recovery_events = health.events().size();
  out.final_time = router->engine().now();
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
  return out;
}

TEST(RecoveryChaosTest, RouterRecoversEveryInjectedFault) {
  const ChaosOutcome out = RunRecoveryChaos(0xfa017ULL);
  EXPECT_GT(out.forwarded, 1000u) << "no permanent stall under recovery chaos";
  EXPECT_GT(out.watchdog_fired, 0u);
  EXPECT_GT(out.recovery_events, 0u);
}

TEST(RecoveryChaosTest, SameSeedRecoveryIsBitIdentical) {
  const ChaosOutcome a = RunRecoveryChaos(99);
  const ChaosOutcome b = RunRecoveryChaos(99);
  EXPECT_EQ(a, b);
}

TEST(RecoveryChaosTest, PathARateRecoversAfterFaultsStop) {
  // Baseline: identical run with no faults.
  double baseline = 0;
  {
    auto router = MakeRouter();
    router->Start();
    HealthMonitor health(*router);
    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 26.0);
    router->RunForMs(16.0);
    router->StartMeasurement();
    router->RunForMs(8.0);
    baseline = router->ForwardingRateMpps();
  }
  ASSERT_GT(baseline, 0.0);

  RouterConfig cfg;
  cfg.fault_plan = FaultPlan::RecoveryChaos();
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  HealthMonitor health(*router);
  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 26.0);
  router->RunForMs(13.0);  // fault burst
  ASSERT_NE(router->fault_injector(), nullptr);
  router->fault_injector()->set_armed(false);  // burst ends deterministically
  router->RunForMs(3.0);                       // recovery grace
  router->StartMeasurement();
  router->RunForMs(8.0);
  const double recovered = router->ForwardingRateMpps();

  EXPECT_GE(recovered, 0.95 * baseline)
      << "post-recovery rate " << recovered << " Mpps vs baseline " << baseline << " Mpps";
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace npr
