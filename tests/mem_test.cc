// Unit tests for the memory system: channel timing (Table 3), queueing,
// bandwidth, backing stores.

#include <gtest/gtest.h>

#include "src/ixp/hw_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/event_queue.h"

namespace npr {
namespace {

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : mem_(engine_, HwConfig::Default().MakeMemoryConfig()) {}
  EventQueue engine_;
  MemorySystem mem_;
};

// Table 3 unloaded latencies, in IXP cycles.
struct LatencyCase {
  const char* memory;
  uint32_t bytes;
  bool write;
  int64_t expect_cycles;
};

class Table3Latency : public MemorySystemTest,
                      public ::testing::WithParamInterface<LatencyCase> {};

TEST_P(Table3Latency, UnloadedLatencyMatchesTable3) {
  const LatencyCase& c = GetParam();
  MemoryChannel* ch = nullptr;
  if (std::string(c.memory) == "dram") {
    ch = &mem_.dram();
  } else if (std::string(c.memory) == "sram") {
    ch = &mem_.sram();
  } else {
    ch = &mem_.scratch();
  }
  EXPECT_EQ(kIxpClock.ToCycles(ch->UnloadedLatency(c.bytes, c.write)), c.expect_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllMemories, Table3Latency,
    ::testing::Values(LatencyCase{"dram", 32, false, 52}, LatencyCase{"dram", 32, true, 40},
                      LatencyCase{"sram", 4, false, 22}, LatencyCase{"sram", 4, true, 22},
                      LatencyCase{"scratch", 4, false, 16},
                      LatencyCase{"scratch", 4, true, 20}),
    [](const auto& info) {
      return std::string(info.param.memory) + (info.param.write ? "_write" : "_read") +
             std::to_string(info.param.bytes) + "B";
    });

TEST_F(MemorySystemTest, CompletionCallbackFiresAtLatency) {
  SimTime done_at = -1;
  mem_.sram().Issue(4, false, [&] { done_at = engine_.now(); });
  engine_.RunAll();
  EXPECT_EQ(done_at, kIxpClock.ToTime(22));
}

TEST_F(MemorySystemTest, BackToBackAccessesQueue) {
  // Two 32 B DRAM reads issued together: the second waits for the first's
  // bus occupancy (4 bus cycles = 40 ns), not its full latency.
  SimTime first = -1, second = -1;
  mem_.dram().Issue(32, false, [&] { first = engine_.now(); });
  mem_.dram().Issue(32, false, [&] { second = engine_.now(); });
  engine_.RunAll();
  EXPECT_EQ(first, 260 * kPsPerNs);          // 52 cycles
  EXPECT_EQ(second, (260 + 40) * kPsPerNs);  // + occupancy only
}

TEST_F(MemorySystemTest, DramPeakBandwidthIs6_4Gbps) {
  // Saturate with 64 B transfers for 1 ms and measure goodput.
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mem_.dram().Issue(64, true, [] {});
  }
  engine_.RunAll();
  const double seconds = static_cast<double>(engine_.now()) / kPsPerSec;
  const double gbps = static_cast<double>(mem_.dram().bytes_moved()) * 8 / seconds / 1e9;
  EXPECT_NEAR(gbps, 6.4, 0.1);
}

TEST_F(MemorySystemTest, SramPeakBandwidthIs3_2Gbps) {
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    mem_.sram().Issue(4, true, [] {});
  }
  engine_.RunAll();
  const double seconds = static_cast<double>(engine_.now()) / kPsPerSec;
  const double gbps = static_cast<double>(mem_.sram().bytes_moved()) * 8 / seconds / 1e9;
  EXPECT_NEAR(gbps, 3.2, 0.1);
}

TEST_F(MemorySystemTest, UtilizationTracksLoad) {
  mem_.dram().Issue(32, false, nullptr);
  engine_.RunUntil(80 * kPsPerNs);  // occupancy is 40 ns of the 80 ns window
  EXPECT_NEAR(mem_.dram().Utilization(0), 0.5, 0.01);
}

TEST_F(MemorySystemTest, StatsCountAccesses) {
  mem_.scratch().Issue(4, false, nullptr);
  mem_.scratch().Issue(4, true, nullptr);
  mem_.scratch().Issue(4, true, nullptr);
  engine_.RunAll();
  EXPECT_EQ(mem_.scratch().reads(), 1u);
  EXPECT_EQ(mem_.scratch().writes(), 2u);
  EXPECT_EQ(mem_.scratch().bytes_moved(), 12u);
  mem_.ResetStats();
  EXPECT_EQ(mem_.scratch().reads(), 0u);
}

TEST_F(MemorySystemTest, QueueWaitRecordedUnderContention) {
  for (int i = 0; i < 10; ++i) {
    mem_.sram().Issue(4, false, nullptr);
  }
  engine_.RunAll();
  EXPECT_EQ(mem_.sram().queue_wait().count(), 10u);
  EXPECT_GT(mem_.sram().queue_wait().max(), 0u);
}

TEST_F(MemorySystemTest, PeekLatencyAgreesWithIssueUnderBacklog) {
  // Regression: PeekLatency and Issue once computed the bus occupancy
  // independently and could disagree under a backlog. Both now go through
  // the same busy-timeline helper, so a fault-free Peek at any instant must
  // predict the very completion time the next Issue returns.
  MemoryChannel& ch = mem_.sram();
  for (int i = 0; i < 7; ++i) {
    ch.Issue(32, /*is_write=*/i % 2 == 0, nullptr);
  }
  for (uint32_t bytes : {4u, 8u, 32u, 64u}) {
    const SimTime peek = ch.PeekLatency(bytes, /*is_write=*/false);
    const SimTime done = ch.Issue(bytes, /*is_write=*/false, nullptr);
    EXPECT_EQ(done - engine_.now(), peek) << bytes << " bytes";
  }
}

TEST_F(MemorySystemTest, IssueBurstMatchesSequentialIssues) {
  // IssueBurst(n, b) must be arithmetically identical to n Issue(b) calls:
  // same final completion time, same op/byte counters, same queue-wait
  // samples — only the number of scheduled events differs.
  MemoryChannelConfig cfg;
  cfg.name = "burst";
  cfg.width_bytes = 4;
  cfg.bus_cycle_ps = 10000;
  cfg.write_latency_ps = 50000;
  MemoryChannel seq(engine_, cfg);
  MemoryChannel burst(engine_, cfg);
  seq.Issue(16, true, nullptr);  // pre-existing backlog on both
  burst.Issue(16, true, nullptr);

  SimTime seq_done = 0;
  for (int i = 0; i < 4; ++i) {
    seq_done = seq.Issue(8, true, nullptr);
  }
  const SimTime burst_done = burst.IssueBurst(4, 8, true, nullptr);
  EXPECT_EQ(burst_done, seq_done);
  EXPECT_EQ(burst.writes(), seq.writes());
  EXPECT_EQ(burst.bytes_moved(), seq.bytes_moved());
  EXPECT_EQ(burst.queue_wait().count(), seq.queue_wait().count());
  EXPECT_EQ(burst.queue_wait().max(), seq.queue_wait().max());
  EXPECT_DOUBLE_EQ(burst.queue_wait().mean(), seq.queue_wait().mean());
  engine_.RunAll();
  EXPECT_EQ(burst.Utilization(0), seq.Utilization(0));
}

TEST_F(MemorySystemTest, IssueBurstCompletionFiresOnce) {
  int fires = 0;
  const SimTime done = mem_.dram().IssueBurst(3, 64, false, [&] { ++fires; });
  engine_.RunAll();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(engine_.now(), done);
  EXPECT_EQ(mem_.dram().reads(), 3u);
}

// --- BackingStore ---

TEST(BackingStore, ReadWriteRoundTrip) {
  BackingStore store("test", 1024);
  const uint8_t data[] = {1, 2, 3, 4, 5};
  store.Write(100, data);
  uint8_t out[5] = {};
  store.Read(100, out);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], data[i]);
  }
}

TEST(BackingStore, WordAccessors) {
  BackingStore store("test", 64);
  store.WriteU32(8, 0xdeadbeef);
  EXPECT_EQ(store.ReadU32(8), 0xdeadbeefu);
  store.WriteU64(16, 0x0123456789abcdefULL);
  EXPECT_EQ(store.ReadU64(16), 0x0123456789abcdefULL);
}

TEST(BackingStore, ZeroFills) {
  BackingStore store("test", 64);
  store.WriteU32(0, 0xffffffff);
  store.Zero(0, 4);
  EXPECT_EQ(store.ReadU32(0), 0u);
}

TEST(BackingStore, InitiallyZeroed) {
  BackingStore store("test", 128);
  EXPECT_EQ(store.ReadU64(0), 0u);
  EXPECT_EQ(store.ReadU64(120), 0u);
}

#ifdef NDEBUG
TEST(BackingStore, OutOfBoundsCountsError) {
  BackingStore store("test", 16);
  store.WriteU32(20, 1);  // out of bounds: rejected, counted
  EXPECT_EQ(store.oob_errors(), 1u);
  EXPECT_EQ(store.ReadU32(20), 0u);  // read also rejected -> zero
  EXPECT_EQ(store.oob_errors(), 2u);
}
#endif

}  // namespace
}  // namespace npr
