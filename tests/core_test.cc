// Unit tests for the router core pieces: buffer allocation, packet queues,
// queue plan, classifier, flow table, proportional-share scheduler,
// admission control.

#include <gtest/gtest.h>

#include "src/core/admission.h"
#include "src/core/buffer_allocator.h"
#include "src/core/classifier.h"
#include "src/core/flow_table.h"
#include "src/core/packet_queue.h"
#include "src/core/prop_share.h"
#include "src/core/queue_plan.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

// --- CircularBufferAllocator ---

TEST(CircularAllocator, RoundRobinAddresses) {
  CircularBufferAllocator alloc(0, 2048, 4);
  EXPECT_EQ(alloc.Allocate({}), 0u);
  EXPECT_EQ(alloc.Allocate({}), 2048u);
  EXPECT_EQ(alloc.Allocate({}), 4096u);
  EXPECT_EQ(alloc.Allocate({}), 6144u);
  EXPECT_EQ(alloc.Allocate({}), 0u);  // wrapped
  EXPECT_EQ(alloc.laps(), 1u);
}

TEST(CircularAllocator, LapInvalidatesOldGeneration) {
  CircularBufferAllocator alloc(0, 2048, 2);
  const uint32_t addr = alloc.Allocate({});
  const uint64_t gen = alloc.MetaFor(addr).generation;
  EXPECT_TRUE(alloc.StillValid(addr, gen));
  alloc.Allocate({});
  EXPECT_TRUE(alloc.StillValid(addr, gen));  // not yet lapped
  alloc.Allocate({});                        // reuses the first buffer
  EXPECT_FALSE(alloc.StillValid(addr, gen)) << "§3.2.3: one lap and the packet is lost";
}

TEST(CircularAllocator, MetaTravelsWithBuffer) {
  CircularBufferAllocator alloc(0, 2048, 8);
  BufferMeta meta;
  meta.packet_id = 99;
  meta.arrival_port = 3;
  meta.ingress_time = 1234;
  const uint32_t addr = alloc.Allocate(meta);
  EXPECT_EQ(alloc.MetaFor(addr).packet_id, 99u);
  EXPECT_EQ(alloc.MetaFor(addr).arrival_port, 3);
}

TEST(StackPool, AllocateFreeCycle) {
  StackBufferPool pool(0, 2048, 2);
  auto a = pool.Allocate({});
  auto b = pool.Allocate({});
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(pool.Allocate({}));  // exhausted — unlike the circular scheme
  EXPECT_EQ(pool.failed_allocations(), 1u);
  pool.Free(*a);
  EXPECT_TRUE(pool.Allocate({}));
}

// --- PacketQueue ---

class PacketQueueTest : public ::testing::Test {
 protected:
  PacketQueueTest()
      : sram_("sram", 4096), scratch_("scratch", 64),
        queue_(sram_, scratch_, 0, 0, 8, 1, 0, 2048) {}

  PacketDescriptor Desc(uint32_t buffer_index) {
    PacketDescriptor d;
    d.buffer_addr = buffer_index * 2048;
    d.mp_count = 1;
    d.out_port = 3;
    d.generation = 7;
    return d;
  }

  BackingStore sram_;
  BackingStore scratch_;
  PacketQueue queue_;
};

TEST_F(PacketQueueTest, FifoOrder) {
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue_.Push(Desc(i)));
  }
  for (uint32_t i = 0; i < 5; ++i) {
    auto d = queue_.Pop();
    ASSERT_TRUE(d);
    EXPECT_EQ(d->buffer_addr, i * 2048);
    EXPECT_EQ(d->out_port, 3);
    EXPECT_EQ(d->generation, 7u);
  }
  EXPECT_TRUE(queue_.empty());
}

TEST_F(PacketQueueTest, OverflowDropsAndCounts) {
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue_.Push(Desc(i)));
  }
  EXPECT_FALSE(queue_.Push(Desc(9)));
  EXPECT_EQ(queue_.drops(), 1u);
  EXPECT_EQ(queue_.size(), 8u);
}

TEST_F(PacketQueueTest, WrapsAroundRing) {
  for (int round = 0; round < 5; ++round) {
    for (uint32_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue_.Push(Desc(i)));
    }
    for (uint32_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue_.Pop());
    }
  }
  EXPECT_EQ(queue_.pushes(), 30u);
  EXPECT_EQ(queue_.pops(), 30u);
}

TEST_F(PacketQueueTest, HeadTailLiveInScratch) {
  queue_.Push(Desc(0));
  EXPECT_EQ(scratch_.ReadU32(queue_.head_scratch_addr()), 1u);
  EXPECT_EQ(scratch_.ReadU32(queue_.tail_scratch_addr()), 0u);
  queue_.Pop();
  EXPECT_EQ(scratch_.ReadU32(queue_.tail_scratch_addr()), 1u);
}

TEST_F(PacketQueueTest, EntriesAreRealSramWords) {
  queue_.Push(Desc(5));
  const uint32_t word = sram_.ReadU32(queue_.entry_sram_addr(0));
  const auto decoded = PacketDescriptor::Decode(word, 0, 2048);
  EXPECT_EQ(decoded.buffer_addr, 5u * 2048);
  EXPECT_EQ(decoded.out_port, 3);
}

TEST(PacketDescriptor, EncodeDecodeRoundTrip) {
  for (uint32_t index : {0u, 1u, 4095u, 8191u}) {
    for (uint16_t mps : {1, 24, 32}) {
      PacketDescriptor d;
      d.buffer_addr = index * 2048;
      d.mp_count = mps;
      d.out_port = static_cast<uint8_t>(index % 10);
      d.exceptional = index % 2 == 0;
      const auto decoded = PacketDescriptor::Decode(d.Encode(0, 2048), 0, 2048);
      EXPECT_EQ(decoded.buffer_addr, d.buffer_addr);
      EXPECT_EQ(decoded.mp_count, d.mp_count);
      EXPECT_EQ(decoded.out_port, d.out_port);
      EXPECT_EQ(decoded.exceptional, d.exceptional);
    }
  }
}

// --- QueuePlan ---

class QueuePlanTest : public ::testing::Test {
 protected:
  QueuePlanTest() : mem_(engine_, HwConfig::Default().MakeMemoryConfig()) {}

  std::unique_ptr<QueuePlan> Make(InputQueueing iq, int out_ctx = 8) {
    RouterConfig cfg;
    cfg.input_queueing = iq;
    sram_ = std::make_unique<Arena>(0, 2u << 20);
    scratch_ = std::make_unique<Arena>(0, 4096);
    return std::make_unique<QueuePlan>(engine_, mem_, cfg, *sram_, *scratch_, 16, out_ctx);
  }

  EventQueue engine_;
  MemorySystem mem_;
  std::unique_ptr<Arena> sram_;
  std::unique_ptr<Arena> scratch_;
};

TEST_F(QueuePlanTest, ProtectedSharesQueuesAcrossContexts) {
  auto plan = Make(InputQueueing::kProtectedPublic);
  PacketQueue& a = plan->QueueFor(0, 3, 0);
  PacketQueue& b = plan->QueueFor(15, 3, 0);
  EXPECT_EQ(&a, &b) << "I.2: all input contexts share the port queue";
  EXPECT_NE(plan->MutexFor(a), nullptr);
  EXPECT_EQ(plan->all_queues().size(), 8u);
}

TEST_F(QueuePlanTest, PrivateGivesEachContextItsOwn) {
  auto plan = Make(InputQueueing::kPrivatePerContext);
  PacketQueue& a = plan->QueueFor(0, 3, 0);
  PacketQueue& b = plan->QueueFor(1, 3, 0);
  EXPECT_NE(&a, &b) << "I.1: private queues, no sharing";
  EXPECT_EQ(plan->MutexFor(a), nullptr) << "I.1 avoids locks entirely";
  EXPECT_EQ(plan->all_queues().size(), 8u * 16u);
}

TEST_F(QueuePlanTest, PortsPartitionedOverOutputContexts) {
  auto plan = Make(InputQueueing::kProtectedPublic, 8);
  for (uint8_t p = 0; p < 8; ++p) {
    EXPECT_EQ(plan->OutputContextForPort(p), p % 8);
  }
  EXPECT_EQ(plan->QueuesForOutputContext(0).size(), 1u);
}

TEST_F(QueuePlanTest, ReadyBitsTrackQueueState) {
  auto plan = Make(InputQueueing::kProtectedPublic);
  PacketQueue& q = plan->QueueFor(0, 2, 0);
  EXPECT_FALSE(plan->IsReady(q));
  plan->MarkReady(q);
  EXPECT_TRUE(plan->IsReady(q));
  plan->ClearReady(q);
  EXPECT_FALSE(plan->IsReady(q));
}

// --- FlowTable ---

TEST(FlowTable, InsertLookupRemove) {
  FlowTable table;
  FlowMeta meta;
  meta.key = FlowKey::Tuple(1, 2, 3, 4);
  meta.where = Where::kStrongArm;
  const uint32_t fid = table.Insert(meta);
  EXPECT_NE(fid, 0u);
  ASSERT_NE(table.Get(fid), nullptr);
  ASSERT_NE(table.LookupTuple(FlowKey::Tuple(1, 2, 3, 4)), nullptr);
  EXPECT_EQ(table.LookupTuple(FlowKey::Tuple(1, 2, 3, 5)), nullptr);
  EXPECT_TRUE(table.Remove(fid));
  EXPECT_EQ(table.LookupTuple(FlowKey::Tuple(1, 2, 3, 4)), nullptr);
  EXPECT_FALSE(table.Remove(fid));
}

TEST(FlowTable, RemoveDoesNotUnbindRekeyedTuple) {
  // Regression: installing a new flow on the same tuple (splicer replacing
  // its proxy) and then removing the old fid must keep the new binding.
  FlowTable table;
  FlowMeta proxy;
  proxy.key = FlowKey::Tuple(1, 2, 3, 4);
  proxy.where = Where::kPentium;
  const uint32_t proxy_fid = table.Insert(proxy);
  FlowMeta splicer;
  splicer.key = proxy.key;
  splicer.where = Where::kMicroEngine;
  const uint32_t splicer_fid = table.Insert(splicer);
  ASSERT_TRUE(table.Remove(proxy_fid));
  const FlowMeta* bound = table.LookupTuple(proxy.key);
  ASSERT_NE(bound, nullptr);
  EXPECT_EQ(bound->fid, splicer_fid);
  EXPECT_EQ(bound->where, Where::kMicroEngine);
}

TEST(FlowTable, GeneralsFilteredByWhere) {
  FlowTable table;
  FlowMeta sa;
  sa.key = FlowKey::All();
  sa.where = Where::kStrongArm;
  FlowMeta pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  table.Insert(sa);
  table.Insert(pe);
  EXPECT_EQ(table.Generals(Where::kStrongArm).size(), 1u);
  EXPECT_EQ(table.Generals(Where::kPentium).size(), 1u);
  EXPECT_EQ(table.Generals(Where::kMicroEngine).size(), 0u);
}

// --- PropShareScheduler ---

TEST(PropShare, ServesProportionally) {
  PropShareScheduler sched;
  sched.ConfigureFlow(1, 3.0);
  sched.ConfigureFlow(2, 1.0);
  for (int i = 0; i < 400; ++i) {
    sched.Enqueue(1, HostPacket{});
    sched.Enqueue(2, HostPacket{});
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(sched.Next());
  }
  // Flow 1 (3 tickets) should have gotten ~3x the service of flow 2.
  EXPECT_NEAR(static_cast<double>(sched.served(1)) / static_cast<double>(sched.served(2)), 3.0,
              0.2);
}

TEST(PropShare, IdleFlowDoesNotHoardCredit) {
  PropShareScheduler sched;
  sched.ConfigureFlow(1, 1.0);
  sched.ConfigureFlow(2, 1.0);
  // Flow 1 runs alone for a while.
  for (int i = 0; i < 100; ++i) {
    sched.Enqueue(1, HostPacket{});
    sched.Next();
  }
  // Flow 2 wakes: it must not monopolize to "catch up".
  for (int i = 0; i < 100; ++i) {
    sched.Enqueue(1, HostPacket{});
    sched.Enqueue(2, HostPacket{});
  }
  uint64_t first_20_flow2 = 0;
  for (int i = 0; i < 20; ++i) {
    sched.Next();
  }
  first_20_flow2 = sched.served(2);
  EXPECT_LE(first_20_flow2, 12u);
  EXPECT_GE(first_20_flow2, 8u);
}

TEST(PropShare, EmptyReturnsNothing) {
  PropShareScheduler sched;
  EXPECT_FALSE(sched.Next());
}

TEST(PropShare, AutoRegistersUnknownFlows) {
  PropShareScheduler sched;
  sched.Enqueue(42, HostPacket{});
  EXPECT_TRUE(sched.Next());
  EXPECT_EQ(sched.served(42), 1u);
}

// --- AdmissionControl ---

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() : istore_(cfg_.hw), admission_(cfg_, istore_) {}
  RouterConfig cfg_;
  IStoreLayout istore_;
  AdmissionControl admission_;
};

TEST_F(AdmissionTest, AcceptsTable5Forwarders) {
  for (auto builder : {BuildSynMonitor, BuildAckMonitor, BuildPortFilter}) {
    auto program = builder();
    auto r = admission_.CheckMicroEngine(program, /*general=*/true);
    EXPECT_TRUE(r.admitted) << r.reason;
  }
}

TEST_F(AdmissionTest, RejectsLoopingCode) {
  VrpProgram evil;
  evil.code = {VrpInstr{VrpOp::kNop, 0, 0, 0}, VrpInstr{VrpOp::kBeq, 7, 7, -1},
               VrpInstr{VrpOp::kSend, 0, 0, 0}};
  auto r = admission_.CheckMicroEngine(evil, true);
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.reason.find("verification"), std::string::npos);
}

TEST_F(AdmissionTest, GeneralsAccumulateUntilBudgetExhausted) {
  // Generals run serially: their cycle costs sum (§4.6).
  auto block = BuildSyntheticBlocks(6);  // ~67 cycles each
  int admitted = 0;
  while (admitted < 10) {
    auto r = admission_.CheckMicroEngine(block, true);
    if (!r.admitted) {
      break;
    }
    auto handle = istore_.InstallGeneral(block, 0);
    ASSERT_TRUE(handle);
    admission_.CommitMicroEngine(*handle, r.worst_case, true);
    ++admitted;
  }
  EXPECT_GE(admitted, 2);
  EXPECT_LE(admitted, 4);  // 240-cycle budget / ~67 = 3
}

TEST_F(AdmissionTest, PerFlowForwardersRunLogicallyInParallel) {
  // Only the most expensive per-flow forwarder counts (§4.6): many can be
  // admitted even though their *sum* exceeds the budget.
  auto heavy = BuildSyntheticBlocks(15);  // ~166 cycles
  for (int i = 0; i < 3; ++i) {
    auto r = admission_.CheckMicroEngine(heavy, false);
    ASSERT_TRUE(r.admitted) << "flow " << i << ": " << r.reason;
    auto handle = istore_.InstallPerFlow(heavy);
    ASSERT_TRUE(handle);
    admission_.CommitMicroEngine(*handle, r.worst_case, false);
  }
  // But a general must fit on top of the *max* per-flow cost.
  auto general = BuildSyntheticBlocks(10);  // ~111 cycles; 166+111 > 240
  EXPECT_FALSE(admission_.CheckMicroEngine(general, true).admitted);
}

TEST_F(AdmissionTest, ReleaseRestoresBudget) {
  auto big = BuildSyntheticBlocks(20);
  auto r = admission_.CheckMicroEngine(big, true);
  ASSERT_TRUE(r.admitted);
  auto handle = istore_.InstallGeneral(big, 0);
  admission_.CommitMicroEngine(*handle, r.worst_case, true);
  EXPECT_FALSE(admission_.CheckMicroEngine(big, true).admitted);
  istore_.Remove(*handle);
  admission_.ReleaseMicroEngine(*handle);
  EXPECT_TRUE(admission_.CheckMicroEngine(big, true).admitted);
}

TEST_F(AdmissionTest, PentiumRateTimesCycles) {
  // 100 Kpps at 2000 cpp plus bridge overhead fits in 733 MHz...
  auto ok = admission_.CheckPentium(100'000, 2000);
  EXPECT_TRUE(ok.admitted) << ok.reason;
  admission_.CommitPentium(1, 100'000, 2000);
  // ...but five more of those exceed capacity.
  admission_.CommitPentium(2, 100'000, 2000);
  auto too_much = admission_.CheckPentium(150'000, 2000);
  EXPECT_FALSE(too_much.admitted);
}

TEST_F(AdmissionTest, PentiumPacketRateCap) {
  auto r = admission_.CheckPentium(600'000, 1);  // above the 534 Kpps path max
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.reason.find("packet rate"), std::string::npos);
}

TEST_F(AdmissionTest, StrongArmReserveProtectsBridge) {
  NullForwarder cheap(100);
  // 80% of the StrongARM is reserved for bridging: 40 Mcycles/s available.
  EXPECT_TRUE(admission_.CheckStrongArm(cheap, 100'000).admitted);
  EXPECT_FALSE(admission_.CheckStrongArm(cheap, 600'000).admitted);
}

// --- Classifier ---

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest()
      : classifier_(ClassifierMode::kFlowTable, routes_, cache_, flows_, hash_) {
    routes_.AddRoute("10.1.0.0/16", 1);
    RouteEntry e{1, PortMac(1)};
    cache_.Insert(DstIpForPort(1, 1), e, routes_.epoch());
  }

  RouteTable routes_;
  RouteCache cache_;
  FlowTable flows_;
  HashUnit hash_;
  Classifier classifier_;
};

TEST_F(ClassifierTest, FastPathHitGoesToPort) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  Packet p = BuildPacket(spec);
  auto out = classifier_.Classify(p.bytes());
  EXPECT_EQ(out.target, ClassifyOutcome::Target::kPort);
  EXPECT_EQ(out.out_port, 1);
}

TEST_F(ClassifierTest, CacheMissDivertsToStrongArm) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 99);  // routable but not cached
  Packet p = BuildPacket(spec);
  auto out = classifier_.Classify(p.bytes());
  EXPECT_EQ(out.target, ClassifyOutcome::Target::kStrongArmLocal);
  EXPECT_STREQ(out.reason, "route-miss");
}

TEST_F(ClassifierTest, OptionsAreExceptional) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  spec.ip_options = {0x07, 0x04, 0x04, 0x00};
  Packet p = BuildPacket(spec);
  auto out = classifier_.Classify(p.bytes());
  EXPECT_EQ(out.target, ClassifyOutcome::Target::kStrongArmLocal);
  EXPECT_STREQ(out.reason, "ip-options");
}

TEST_F(ClassifierTest, TtlExpiryIsExceptional) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  spec.ttl = 1;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(classifier_.Classify(p.bytes()).target,
            ClassifyOutcome::Target::kStrongArmLocal);
}

TEST_F(ClassifierTest, CorruptHeaderDropped) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  Packet p = BuildPacket(spec);
  p.bytes()[16] ^= 0xff;  // corrupt total_length
  EXPECT_EQ(classifier_.Classify(p.bytes()).target, ClassifyOutcome::Target::kDrop);
}

TEST_F(ClassifierTest, ControlProtocolToPentium) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  spec.protocol = kIpProtoOspfLite;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(classifier_.Classify(p.bytes()).target, ClassifyOutcome::Target::kPentium);
}

TEST_F(ClassifierTest, FlowMatchRoutesToInstalledLevel) {
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  spec.protocol = kIpProtoTcp;
  spec.src_port = 7777;
  spec.dst_port = 80;
  Packet p = BuildPacket(spec);

  FlowMeta meta;
  meta.key = FlowKey::Tuple(spec.src_ip, spec.dst_ip, 7777, 80);
  meta.where = Where::kPentium;
  flows_.Insert(meta);

  auto out = classifier_.Classify(p.bytes());
  EXPECT_EQ(out.target, ClassifyOutcome::Target::kPentium);
  ASSERT_NE(out.flow, nullptr);
  EXPECT_EQ(out.flow->where, Where::kPentium);
}

TEST_F(ClassifierTest, SlowPathResolveWarmsCache) {
  const uint32_t dst = DstIpForPort(1, 50);
  EXPECT_FALSE(cache_.Lookup(dst, routes_.epoch()));
  RouteEntry entry;
  const int accesses = classifier_.SlowPathResolve(dst, &entry);
  EXPECT_GE(accesses, 1);
  EXPECT_EQ(entry.out_port, 1);
  EXPECT_TRUE(cache_.Lookup(dst, routes_.epoch()));
}

}  // namespace
}  // namespace npr
