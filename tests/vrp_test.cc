// Unit tests for the VRP: assembler, static verifier (the admission
// mechanism), interpreter semantics, budget math, ISTORE layout.

#include <gtest/gtest.h>

#include "src/ixp/hash_unit.h"
#include "src/mem/backing_store.h"
#include "src/vrp/assembler.h"
#include "src/vrp/budget.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/istore_layout.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

VrpProgram MustAssemble(const std::string& src) {
  auto result = Assemble("test", src);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

// --- assembler ---

TEST(Assembler, BasicProgram) {
  auto p = MustAssemble(R"(
    .state 8
    movi r0, 5
    addi r0, -2
    send
  )");
  EXPECT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.flow_state_bytes, 8u);
  EXPECT_EQ(p.code[0].op, VrpOp::kMovI);
  EXPECT_EQ(p.code[1].imm, -2);
}

TEST(Assembler, CommentsAndLabels) {
  auto p = MustAssemble(R"(
    ; header comment
    movi r0, 1        # trailing comment
    beq r0, r7, done
    movi r1, 2
    done: send
  )");
  EXPECT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[1].op, VrpOp::kBeq);
  EXPECT_EQ(p.code[1].imm, 2);  // forward by two instructions
}

TEST(Assembler, HexImmediates) {
  auto p = MustAssemble("andi r0, 0xff\nsend\n");
  EXPECT_EQ(p.code[0].imm, 255);
}

TEST(Assembler, RejectsUnknownMnemonic) {
  auto r = Assemble("bad", "frobnicate r0\nsend\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown mnemonic"), std::string::npos);
}

TEST(Assembler, RejectsBackwardBranch) {
  auto r = Assemble("bad", R"(
    top: movi r0, 1
    beq r0, r7, top
    send
  )");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("backward"), std::string::npos);
}

TEST(Assembler, RejectsUnknownLabel) {
  auto r = Assemble("bad", "beq r0, r1, nowhere\nsend\n");
  EXPECT_FALSE(r.ok);
}

TEST(Assembler, RejectsDuplicateLabel) {
  auto r = Assemble("bad", "x: movi r0, 1\nx: send\n");
  EXPECT_FALSE(r.ok);
}

TEST(Assembler, RejectsBadStateDirective) {
  EXPECT_FALSE(Assemble("bad", ".state 7\nsend\n").ok);
  EXPECT_FALSE(Assemble("bad", ".state -4\nsend\n").ok);
}

TEST(Assembler, RejectsEmpty) { EXPECT_FALSE(Assemble("bad", "; nothing\n").ok); }

TEST(Assembler, RejectsWrongArity) {
  EXPECT_FALSE(Assemble("bad", "add r0\nsend\n").ok);
  EXPECT_FALSE(Assemble("bad", "send r0\n").ok);
}

// --- verifier ---

TEST(Verifier, AcceptsStraightLine) {
  auto p = MustAssemble(".state 4\nmovi r0, 1\nldsram r1, 0\nhash r2, r0\nsend\n");
  auto v = VerifyProgram(p);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.instructions, 4u);
  EXPECT_EQ(v.worst_case.cycles, 4u);
  EXPECT_EQ(v.worst_case.sram_reads, 1u);
  EXPECT_EQ(v.worst_case.hashes, 1u);
}

TEST(Verifier, BranchDelayCounted) {
  auto p = MustAssemble("movi r0, 1\nbeq r0, r7, l\nnop\nl: send\n");
  auto v = VerifyProgram(p);
  ASSERT_TRUE(v.ok);
  // movi(1) + beq(2) + max(nop path, taken path): fall-through costs
  // nop(1)+send(1)=2, taken costs send(1)=1 -> total 1+2+2 = 5.
  EXPECT_EQ(v.worst_case.cycles, 5u);
}

TEST(Verifier, WorstCaseTakesMaxOverPaths) {
  auto p = MustAssemble(R"(
    .state 16
    movi r0, 1
    beq r0, r7, cheap
    ldsram r1, 0
    ldsram r2, 4
    ldsram r3, 8
    cheap: send
  )");
  auto v = VerifyProgram(p);
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.worst_case.sram_reads, 3u);  // expensive path dominates
}

TEST(Verifier, RejectsMissingTerminator) {
  VrpProgram p;
  p.code = {VrpInstr{VrpOp::kMovI, 0, 0, 1}};
  EXPECT_FALSE(VerifyProgram(p).ok);
}

TEST(Verifier, RejectsHandCraftedBackwardBranch) {
  VrpProgram p;
  p.code = {VrpInstr{VrpOp::kNop, 0, 0, 0}, VrpInstr{VrpOp::kBeq, 0, 0, -1},
            VrpInstr{VrpOp::kSend, 0, 0, 0}};
  EXPECT_FALSE(VerifyProgram(p).ok);
}

TEST(Verifier, RejectsRegisterOutOfRange) {
  VrpProgram p;
  p.code = {VrpInstr{VrpOp::kMovI, 9, 0, 1}, VrpInstr{VrpOp::kSend, 0, 0, 0}};
  EXPECT_FALSE(VerifyProgram(p).ok);
}

TEST(Verifier, RejectsPacketRegisterOutOfRange) {
  VrpProgram p;
  p.code = {VrpInstr{VrpOp::kLdPkt, 0, 16, 0}, VrpInstr{VrpOp::kSend, 0, 0, 0}};
  EXPECT_FALSE(VerifyProgram(p).ok);
}

TEST(Verifier, RejectsFlowStateOutOfBounds) {
  VrpProgram p;
  p.flow_state_bytes = 4;
  p.code = {VrpInstr{VrpOp::kLdSram, 0, 0, 4}, VrpInstr{VrpOp::kSend, 0, 0, 0}};
  EXPECT_FALSE(VerifyProgram(p).ok);
  p.code[0].imm = 2;  // misaligned
  EXPECT_FALSE(VerifyProgram(p).ok);
  p.code[0].imm = 0;
  EXPECT_TRUE(VerifyProgram(p).ok);
}

// --- interpreter ---

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : sram_("sram", 4096), interp_(sram_, hash_) {}

  VrpOutcome Run(const std::string& src, const VrpBudget* budget = nullptr) {
    auto p = MustAssemble(src);
    return interp_.Run(p, mp_, 256, budget);
  }

  uint32_t MpWord(int i) const {
    return static_cast<uint32_t>(mp_[static_cast<size_t>(i) * 4]) << 24 |
           static_cast<uint32_t>(mp_[static_cast<size_t>(i) * 4 + 1]) << 16 |
           static_cast<uint32_t>(mp_[static_cast<size_t>(i) * 4 + 2]) << 8 |
           mp_[static_cast<size_t>(i) * 4 + 3];
  }

  BackingStore sram_;
  HashUnit hash_;
  VrpInterpreter interp_;
  std::array<uint8_t, 64> mp_{};
};

TEST_F(InterpreterTest, AluAndStore) {
  auto out = Run(R"(
    movi r0, 10
    addi r0, 5
    mov r1, r0
    shl r1, 4
    stpkt r1, p2
    send
  )");
  EXPECT_EQ(out.action, VrpAction::kSend);
  EXPECT_EQ(MpWord(2), 15u << 4);
  EXPECT_EQ(out.metered.cycles, 6u);
}

struct AluCase {
  const char* op;
  uint32_t a, b, expect;
};

class AluSemantics : public InterpreterTest, public ::testing::WithParamInterface<AluCase> {};

TEST_P(AluSemantics, BinaryOp) {
  const AluCase& c = GetParam();
  auto out = Run("movi r0, " + std::to_string(c.a) + "\nmovi r1, " + std::to_string(c.b) +
                 "\n" + c.op + " r0, r1\nstpkt r0, p0\nsend\n");
  EXPECT_EQ(out.action, VrpAction::kSend);
  EXPECT_EQ(MpWord(0), c.expect) << c.op;
}

INSTANTIATE_TEST_SUITE_P(Ops, AluSemantics,
                         ::testing::Values(AluCase{"add", 7, 3, 10}, AluCase{"sub", 7, 3, 4},
                                           AluCase{"and", 12, 10, 8}, AluCase{"or", 12, 10, 14},
                                           AluCase{"xor", 12, 10, 6}, AluCase{"mov", 7, 3, 3}),
                         [](const auto& info) { return info.param.op; });

TEST_F(InterpreterTest, PacketReadSeesBigEndianWords) {
  mp_[4] = 0x11;
  mp_[5] = 0x22;
  mp_[6] = 0x33;
  mp_[7] = 0x44;
  auto out = Run("ldpkt r0, p1\nstpkt r0, p3\nsend\n");
  EXPECT_EQ(out.action, VrpAction::kSend);
  EXPECT_EQ(MpWord(3), 0x11223344u);
}

TEST_F(InterpreterTest, FlowStatePersistsAcrossRuns) {
  const std::string src = ".state 4\nldsram r0, 0\naddi r0, 1\nstsram r0, 0\nsend\n";
  for (int i = 0; i < 5; ++i) {
    Run(src);
  }
  EXPECT_EQ(sram_.ReadU32(256), 5u);
}

TEST_F(InterpreterTest, BranchesTakenAndNot) {
  auto taken = Run("movi r0, 5\nmovi r1, 5\nbeq r0, r1, yes\ndrop\nyes: send\n");
  EXPECT_EQ(taken.action, VrpAction::kSend);
  auto not_taken = Run("movi r0, 5\nmovi r1, 6\nbeq r0, r1, yes\ndrop\nyes: send\n");
  EXPECT_EQ(not_taken.action, VrpAction::kDrop);
}

TEST_F(InterpreterTest, UnsignedComparisons) {
  auto blt = Run("movi r0, 2\nmovi r1, 3\nblt r0, r1, yes\ndrop\nyes: send\n");
  EXPECT_EQ(blt.action, VrpAction::kSend);
  // 0xffffffff as unsigned is huge: blt must not treat it as -1.
  auto big = Run("movi r0, -1\nmovi r1, 3\nblt r0, r1, yes\ndrop\nyes: send\n");
  EXPECT_EQ(big.action, VrpAction::kDrop);
}

TEST_F(InterpreterTest, SetQueueReported) {
  auto out = Run("setq 3\nsend\n");
  ASSERT_TRUE(out.queue);
  EXPECT_EQ(*out.queue, 3u);
}

TEST_F(InterpreterTest, ExceptAction) {
  EXPECT_EQ(Run("except\n").action, VrpAction::kExcept);
}

TEST_F(InterpreterTest, HashMetered) {
  auto out = Run("movi r0, 99\nhash r1, r0\nhash r2, r1\nsend\n");
  EXPECT_EQ(out.metered.hashes, 2u);
}

TEST_F(InterpreterTest, BudgetTrapOnCycleOverrun) {
  VrpBudget tiny;
  tiny.cycles = 3;
  auto out = Run("movi r0, 1\nmovi r1, 1\nmovi r2, 1\nmovi r3, 1\nsend\n", &tiny);
  EXPECT_EQ(out.action, VrpAction::kTrap);
  EXPECT_EQ(interp_.traps(), 1u);
}

TEST_F(InterpreterTest, BudgetTrapOnSramOverrun) {
  VrpBudget tiny;
  tiny.sram_transfers = 1;
  auto out = Run(".state 8\nldsram r0, 0\nldsram r1, 4\nsend\n", &tiny);
  EXPECT_EQ(out.action, VrpAction::kTrap);
}

TEST_F(InterpreterTest, WithinBudgetDoesNotTrap) {
  const VrpBudget budget = VrpBudget::Prototype();
  auto out = Run(".state 4\nldsram r0, 0\nsend\n", &budget);
  EXPECT_EQ(out.action, VrpAction::kSend);
}

TEST_F(InterpreterTest, UnverifiedLoopTrapsAtRuntime) {
  // Hand-crafted backward branch (the assembler would reject it): the
  // runtime safety net must trap, not hang.
  VrpProgram p;
  p.name = "evil";
  p.code = {VrpInstr{VrpOp::kNop, 0, 0, 0}, VrpInstr{VrpOp::kBeq, 7, 7, -1},
            VrpInstr{VrpOp::kSend, 0, 0, 0}};
  auto out = interp_.Run(p, mp_, 0, nullptr);
  EXPECT_EQ(out.action, VrpAction::kTrap);
}

TEST_F(InterpreterTest, FallOffEndTraps) {
  VrpProgram p;
  p.code = {VrpInstr{VrpOp::kNop, 0, 0, 0}};
  EXPECT_EQ(interp_.Run(p, mp_, 0, nullptr).action, VrpAction::kTrap);
}

// --- budget ---

TEST(Budget, PrototypeMatchesPaper) {
  auto b = VrpBudget::Prototype();
  EXPECT_EQ(b.cycles, 240u);
  EXPECT_EQ(b.sram_transfers, 24u);
  EXPECT_EQ(b.hashes, 3u);
  EXPECT_EQ(b.istore_slots, 650u);
}

TEST(Budget, ScalesDownWithLineRate) {
  auto full = VrpBudget::ForForwardingRate(1.128);
  auto half = VrpBudget::ForForwardingRate(2.0);
  EXPECT_GT(full.cycles, half.cycles);
  // At the 3.47 Mpps maximum there is no headroom at all.
  auto max = VrpBudget::ForForwardingRate(3.47);
  EXPECT_EQ(max.cycles, 0u);
}

TEST(Budget, PrototypeRateGivesRoughlyPaperBudget) {
  auto b = VrpBudget::ForForwardingRate(1.128);
  EXPECT_NEAR(b.cycles, 240.0, 40.0);
  EXPECT_NEAR(b.sram_transfers, 24.0, 5.0);
}

TEST(Budget, AdmitsChecksEveryDimension) {
  VrpBudget b;
  VrpCost fits{100, 2, 2, 1};
  EXPECT_TRUE(b.Admits(fits));
  VrpCost cycles_heavy{500, 0, 0, 0};
  EXPECT_FALSE(b.Admits(cycles_heavy));
  VrpCost sram_heavy{10, 20, 20, 0};
  EXPECT_FALSE(b.Admits(sram_heavy));
  VrpCost hash_heavy{10, 0, 0, 4};
  EXPECT_FALSE(b.Admits(hash_heavy));
  VrpCost extra{200, 0, 0, 0};
  EXPECT_FALSE(b.Admits(fits, extra));  // 100+200 > 240
}

// --- ISTORE layout ---

TEST(IStoreLayout, CapacityMatchesPaper) {
  IStoreLayout layout(HwConfig::Default());
  EXPECT_EQ(layout.extension_capacity(), 650u);  // §4.3
  EXPECT_EQ(layout.free_slots(), 650u);
}

TEST(IStoreLayout, InstallCostsMatchSection45) {
  IStoreLayout layout(HwConfig::Default());
  VrpProgram ten;
  ten.code.resize(10);
  EXPECT_EQ(layout.InstallCostCycles(ten), 800u);          // "takes 800 cycles"
  EXPECT_GT(layout.FullRewriteCostCycles(), 80'000u);      // "over 80,000 cycles"
}

TEST(IStoreLayout, PerFlowTakesExtraJumpSlot) {
  IStoreLayout layout(HwConfig::Default());
  VrpProgram p;
  p.code.resize(10);
  auto id = layout.InstallPerFlow(p);
  ASSERT_TRUE(id);
  EXPECT_EQ(layout.used_slots(), 11u);  // + indirect jump
  layout.Remove(*id);
  EXPECT_EQ(layout.used_slots(), 0u);
}

TEST(IStoreLayout, GeneralChainIsReverseInstallOrder) {
  IStoreLayout layout(HwConfig::Default());
  VrpProgram ip;
  ip.name = "ip";
  ip.code.resize(5);
  VrpProgram counter;
  counter.name = "counter";
  counter.code.resize(5);
  layout.InstallGeneral(ip, 100);
  layout.InstallGeneral(counter, 200);
  auto chain = layout.GeneralChain();
  ASSERT_EQ(chain.size(), 2u);
  // Most recently installed executes first; IP (installed first) is last.
  EXPECT_EQ(chain[0].program->name, "counter");
  EXPECT_EQ(chain[0].state_addr, 200u);
  EXPECT_EQ(chain[1].program->name, "ip");
}

TEST(IStoreLayout, RejectsWhenFull) {
  IStoreLayout layout(HwConfig::Default());
  VrpProgram big;
  big.code.resize(651);
  EXPECT_FALSE(layout.InstallGeneral(big, 0));
  big.code.resize(650);
  EXPECT_TRUE(layout.InstallGeneral(big, 0));
  VrpProgram one;
  one.code.resize(1);
  EXPECT_FALSE(layout.InstallGeneral(one, 0));
}

TEST(IStoreLayout, RemoveUnknownFails) {
  IStoreLayout layout(HwConfig::Default());
  EXPECT_FALSE(layout.Remove(1234));
}

TEST(Disassemble, ContainsMnemonics) {
  auto p = MustAssemble("movi r0, 1\nhash r1, r0\nsend\n");
  const std::string text = Disassemble(p);
  EXPECT_NE(text.find("movi"), std::string::npos);
  EXPECT_NE(text.find("hash"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
}

}  // namespace
}  // namespace npr
