// §4.3's VRP characterization, verified at its exact boundaries:
//   * up to 240 cycles of instructions
//   * up to 24 SRAM transfers of 4 bytes (96 bytes of persistent state)
//   * up to 3 hardware hashes
//   * 650 ISTORE instruction slots
//   * 8 general-purpose registers; values do not persist across MPs

#include <gtest/gtest.h>

#include <string>

#include "src/core/router.h"
#include "src/ixp/hash_unit.h"
#include "src/vrp/assembler.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

// Builds a straight-line program with exactly `cycles` instruction cycles
// (including its send), `sram` 4-byte reads, and `hashes` hashes.
VrpProgram Exact(uint32_t cycles, uint32_t sram, uint32_t hashes) {
  std::string body = ".state 96\n";
  uint32_t used = 1;  // the trailing send
  for (uint32_t i = 0; i < sram; ++i) {
    body += "ldsram r1, " + std::to_string((i % 24) * 4) + "\n";
    ++used;
  }
  for (uint32_t i = 0; i < hashes; ++i) {
    body += "hash r2, r1\n";
    ++used;
  }
  EXPECT_LE(used, cycles) << "test bug: too many mandatory instructions";
  while (used < cycles) {
    body += "addi r0, 1\n";
    ++used;
  }
  body += "send\n";
  auto result = Assemble("exact", body);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

class Characterization : public ::testing::Test {
 protected:
  AdmissionResult Check(const VrpProgram& program) {
    Router router((RouterConfig()));
    return router.admission().CheckMicroEngine(program, /*general=*/true);
  }
};

TEST_F(Characterization, Exactly240CyclesAdmitted) {
  auto at_limit = Exact(240, 0, 0);
  EXPECT_TRUE(Check(at_limit).admitted);
  auto over = Exact(241, 0, 0);
  EXPECT_FALSE(Check(over).admitted);
}

TEST_F(Characterization, Exactly24SramTransfersAdmitted) {
  auto at_limit = Exact(100, 24, 0);
  EXPECT_TRUE(Check(at_limit).admitted);
  auto over = Exact(100, 25, 0);
  EXPECT_FALSE(Check(over).admitted);
}

TEST_F(Characterization, ExactlyThreeHashesAdmitted) {
  auto at_limit = Exact(50, 0, 3);
  EXPECT_TRUE(Check(at_limit).admitted);
  auto over = Exact(50, 0, 4);
  EXPECT_FALSE(Check(over).admitted);
}

TEST_F(Characterization, NinetySixBytesOfStateAddressable) {
  // Offsets 0..92 are legal with .state 96; offset 96 is not.
  auto ok = Assemble("edge", ".state 96\nldsram r0, 92\nsend\n");
  ASSERT_TRUE(ok.ok);
  EXPECT_TRUE(VerifyProgram(ok.program).ok);
  auto bad = Assemble("edge", ".state 96\nldsram r0, 96\nsend\n");
  ASSERT_TRUE(bad.ok);
  EXPECT_FALSE(VerifyProgram(bad.program).ok);
}

TEST_F(Characterization, EightRegistersNoMore) {
  EXPECT_TRUE(Assemble("r", "movi r7, 1\nsend\n").ok);
  auto program = Assemble("r", "movi r8, 1\nsend\n");
  // The assembler accepts the token; the verifier rejects the index.
  ASSERT_TRUE(program.ok);
  EXPECT_FALSE(VerifyProgram(program.program).ok);
}

TEST_F(Characterization, RegistersDoNotPersistAcrossMps) {
  // §4.3: "Values stored here do not last across invocations of the VRP."
  BackingStore sram("sram", 256);
  HashUnit hash;
  VrpInterpreter interp(sram, hash);
  // Writes r0=7 to the packet on the *second* run only if r0 persisted.
  auto program = Assemble("persist", R"(
    movi r1, 7
    beq r0, r1, leaked
    movi r0, 7
    send
    leaked: stpkt r1, p0
    send
  )");
  ASSERT_TRUE(program.ok);
  std::array<uint8_t, 64> mp{};
  interp.Run(program.program, mp, 0, nullptr);
  interp.Run(program.program, mp, 0, nullptr);
  EXPECT_EQ(mp[3], 0) << "register state leaked across invocations";
}

TEST_F(Characterization, IstoreBoundaryAt650Slots) {
  Router router((RouterConfig()));
  // A general forwarder of exactly 650 instructions fits (cycle budget is
  // checked separately, so use a rejected-by-cycles-but-ISTORE-ok probe:
  // check ISTORE via the layout directly).
  EXPECT_EQ(router.istore().extension_capacity(), 650u);
  VrpProgram p650;
  p650.code.assign(650, VrpInstr{VrpOp::kNop, 0, 0, 0});
  p650.code.back() = VrpInstr{VrpOp::kSend, 0, 0, 0};
  EXPECT_TRUE(router.istore().InstallGeneral(p650, 0).has_value());
  VrpProgram one;
  one.code = {VrpInstr{VrpOp::kSend, 0, 0, 0}};
  EXPECT_FALSE(router.istore().InstallGeneral(one, 0).has_value());
}

TEST_F(Characterization, BudgetBindsAcrossInstalledGenerals) {
  // Two 120-cycle generals fill the budget exactly; a third single-cycle
  // program is rejected.
  Router router((RouterConfig()));
  for (int i = 0; i < 2; ++i) {
    auto program = Exact(120, 0, 0);
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    auto outcome = router.Install(req);
    ASSERT_TRUE(outcome.ok) << i << ": " << outcome.error;
  }
  auto tiny = Exact(2, 0, 0);
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &tiny;
  EXPECT_FALSE(router.Install(req).ok);
}

}  // namespace
}  // namespace npr
