// Unit tests for the IXP1200 model: MicroEngine context scheduling
// (swap-on-memory-reference, latency hiding), token ring, hardware mutex,
// SoftCore, DMA, hash unit.

#include <gtest/gtest.h>

#include <vector>

#include "src/ixp/dma.h"
#include "src/ixp/hash_unit.h"
#include "src/ixp/hw_config.h"
#include "src/ixp/hw_mutex.h"
#include "src/ixp/ixp1200.h"
#include "src/ixp/microengine.h"
#include "src/ixp/soft_core.h"
#include "src/ixp/token_ring.h"
#include "src/mem/memory_system.h"

namespace npr {
namespace {

class IxpTest : public ::testing::Test {
 protected:
  IxpTest()
      : mem_(engine_, HwConfig::Default().MakeMemoryConfig()),
        me_(engine_, 0, 4, /*ctx_switch_cycles=*/1) {}

  EventQueue engine_;
  MemorySystem mem_;
  MicroEngine me_;
};

Task ComputeOnce(HwContext* ctx, uint32_t cycles, SimTime* finished, EventQueue* engine) {
  co_await ctx->Compute(cycles);
  *finished = engine->now();
}

TEST_F(IxpTest, ComputeTakesExactCycles) {
  SimTime finished = -1;
  me_.context(0).Install(ComputeOnce(&me_.context(0), 100, &finished, &engine_));
  engine_.RunAll();
  // 1 cycle dispatch bubble + 100 compute.
  EXPECT_EQ(finished, kIxpClock.ToTime(101));
}

TEST_F(IxpTest, TwoContextsSerializeOnPipeline) {
  SimTime f0 = -1, f1 = -1;
  me_.context(0).Install(ComputeOnce(&me_.context(0), 100, &f0, &engine_));
  me_.context(1).Install(ComputeOnce(&me_.context(1), 100, &f1, &engine_));
  engine_.RunAll();
  EXPECT_EQ(f0, kIxpClock.ToTime(101));
  // Second context runs only after the first releases the pipeline (here:
  // when it finishes), plus another switch bubble.
  EXPECT_EQ(f1, kIxpClock.ToTime(202));
}

Task ReadThenRecord(HwContext* ctx, MemoryChannel* ch, SimTime* finished, EventQueue* engine) {
  co_await ctx->Read(*ch, 32);
  *finished = engine->now();
}

TEST_F(IxpTest, MemoryReferenceReleasesPipeline) {
  // Context 0 blocks on a 52-cycle DRAM read; context 1's compute overlaps.
  SimTime read_done = -1, compute_done = -1;
  me_.context(0).Install(ReadThenRecord(&me_.context(0), &mem_.dram(), &read_done, &engine_));
  me_.context(1).Install(ComputeOnce(&me_.context(1), 20, &compute_done, &engine_));
  engine_.RunAll();
  EXPECT_LT(compute_done, read_done);
  EXPECT_LE(read_done, kIxpClock.ToTime(60));  // 52 + dispatch overheads
}

struct LoopState {
  int iterations = 0;
  int target = 0;
};

Task WorkLoop(HwContext* ctx, MemoryChannel* ch, LoopState* state) {
  while (state->iterations < state->target) {
    co_await ctx->Compute(10);
    co_await ctx->Read(*ch, 4);
    ++state->iterations;
  }
}

TEST_F(IxpTest, FourContextsHideMemoryLatency) {
  // One context: each iteration is ~10 compute + 22 stall = 32+ cycles.
  // Four contexts: stalls overlap, so aggregate throughput approaches the
  // pipeline bound of one iteration per 10 cycles.
  LoopState single{0, 200};
  {
    EventQueue engine;
    MemorySystem mem(engine, HwConfig::Default().MakeMemoryConfig());
    MicroEngine me(engine, 0, 4, 1);
    me.context(0).Install(WorkLoop(&me.context(0), &mem.sram(), &single));
    engine.RunAll();
    const double cycles = static_cast<double>(kIxpClock.ToCycles(engine.now()));
    EXPECT_GT(cycles / single.iterations, 30.0);
  }
  {
    EventQueue engine;
    MemorySystem mem(engine, HwConfig::Default().MakeMemoryConfig());
    MicroEngine me(engine, 0, 4, 1);
    std::vector<LoopState> states(4, LoopState{0, 200});
    for (int i = 0; i < 4; ++i) {
      me.context(i).Install(WorkLoop(&me.context(i), &mem.sram(), &states[static_cast<size_t>(i)]));
    }
    engine.RunAll();
    int total = 0;
    for (const auto& s : states) {
      total += s.iterations;
    }
    const double cycles = static_cast<double>(kIxpClock.ToCycles(engine.now()));
    EXPECT_LT(cycles / total, 16.0);  // latency mostly hidden
  }
}

TEST_F(IxpTest, BusyCyclesAccumulate) {
  SimTime f = -1;
  me_.context(0).Install(ComputeOnce(&me_.context(0), 123, &f, &engine_));
  engine_.RunAll();
  EXPECT_EQ(me_.busy_cycles(), 123u);
}

Task YieldPingPong(HwContext* ctx, std::vector<int>* order, int id, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    order->push_back(id);
    co_await ctx->Yield();
  }
}

TEST_F(IxpTest, YieldRoundRobins) {
  std::vector<int> order;
  me_.context(0).Install(YieldPingPong(&me_.context(0), &order, 0, 3));
  me_.context(1).Install(YieldPingPong(&me_.context(1), &order, 1, 3));
  engine_.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

// --- TokenRing ---

Task TokenWorker(HwContext* ctx, TokenRing* ring, int member, std::vector<int>* order,
                 int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await ring->Acquire(member);
    order->push_back(member);
    co_await ctx->Compute(5);
    ring->Release(member);
    co_await ctx->Compute(3);
  }
}

TEST_F(IxpTest, TokenRotatesInStrictOrder) {
  TokenRing ring(engine_, 1);
  std::vector<int> order;
  std::vector<int> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(ring.AddMember(me_.context(i)));
  }
  for (int i = 0; i < 3; ++i) {
    me_.context(i).Install(TokenWorker(&me_.context(i), &ring, members[static_cast<size_t>(i)],
                                       &order, 4));
  }
  engine_.RunAll();
  ASSERT_EQ(order.size(), 12u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 3)) << "at " << i;
  }
}

Task SlowTokenWorker(HwContext* ctx, TokenRing* ring, int member, std::vector<int>* order) {
  co_await ctx->Compute(200);  // late to the party
  for (int i = 0; i < 2; ++i) {
    co_await ring->Acquire(member);
    order->push_back(member);
    ring->Release(member);
  }
}

TEST_F(IxpTest, TokenWaitsForSpecificMember) {
  // Member 1 is busy for 200 cycles; the ring must wait for it even though
  // member 0 (on another engine conceptually) is ready — strict rotation.
  TokenRing ring(engine_, 1);
  std::vector<int> order;
  const int m0 = ring.AddMember(me_.context(0));
  const int m1 = ring.AddMember(me_.context(1));
  me_.context(0).Install(TokenWorker(&me_.context(0), &ring, m0, &order, 2));
  me_.context(1).Install(SlowTokenWorker(&me_.context(1), &ring, m1, &order));
  engine_.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_GT(ring.idle_ps(), 0);  // the token idled waiting for member 1
}

// --- HwMutex ---

struct MutexProbe {
  int in_cs = 0;
  int max_in_cs = 0;
  std::vector<int> grant_order;
};

Task MutexWorker(HwContext* ctx, HwMutex* mutex, MutexProbe* probe, int id, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await mutex->Acquire(*ctx);
    probe->grant_order.push_back(id);
    probe->in_cs++;
    probe->max_in_cs = std::max(probe->max_in_cs, probe->in_cs);
    co_await ctx->Compute(10);
    probe->in_cs--;
    mutex->Release();
    co_await ctx->Compute(5);
  }
}

TEST_F(IxpTest, MutexEnforcesExclusion) {
  HwMutex mutex(engine_, mem_.sram(), 47);
  MutexProbe probe;
  for (int i = 0; i < 4; ++i) {
    me_.context(i).Install(MutexWorker(&me_.context(i), &mutex, &probe, i, 5));
  }
  engine_.RunAll();
  EXPECT_EQ(probe.max_in_cs, 1);
  EXPECT_EQ(probe.grant_order.size(), 20u);
  EXPECT_FALSE(mutex.locked());
  EXPECT_GT(mutex.contended_acquires(), 0u);
}

TEST_F(IxpTest, MutexUncontendedCostIsOneSramTrip) {
  HwMutex mutex(engine_, mem_.sram(), 47);
  MutexProbe probe;
  me_.context(0).Install(MutexWorker(&me_.context(0), &mutex, &probe, 0, 1));
  engine_.RunAll();
  EXPECT_EQ(mutex.contended_acquires(), 0u);
  // acquire (22) + dispatch + 10 CS + 5 tail + the release write landing
  // (22): well under 70 cycles end to end.
  EXPECT_LT(kIxpClock.ToCycles(engine_.now()), 70);
}

// --- SoftCore ---

Task SoftProgram(SoftCore* core, MemoryChannel* ch, SimTime* t_compute, SimTime* t_mem,
                 SimTime* t_wake, EventQueue* engine) {
  co_await core->Compute(100);
  *t_compute = engine->now();
  co_await core->Read(*ch, 4);
  *t_mem = engine->now();
  co_await core->Block();
  *t_wake = engine->now();
}

TEST_F(IxpTest, SoftCoreComputeMemoryBlockWake) {
  SoftCore core(engine_, kIxpClock, "test");
  SimTime t_compute = -1, t_mem = -1, t_wake = -1;
  core.Install(SoftProgram(&core, &mem_.sram(), &t_compute, &t_mem, &t_wake, &engine_));
  engine_.RunAll();
  EXPECT_EQ(t_compute, kIxpClock.ToTime(100));
  EXPECT_EQ(t_mem, kIxpClock.ToTime(122));  // + 22-cycle SRAM read
  EXPECT_TRUE(core.IsBlocked());
  engine_.RunUntil(kIxpClock.ToTime(500));
  core.Wake();
  engine_.RunAll();
  EXPECT_EQ(t_wake, kIxpClock.ToTime(500));
  EXPECT_EQ(core.busy_cycles(), 100u);
}

TEST_F(IxpTest, SoftCoreWakeWhenRunningIsCoalesced) {
  SoftCore core(engine_, kIxpClock, "test");
  core.Wake();  // not blocked: no-op
  EXPECT_FALSE(core.IsBlocked());
}

TEST_F(IxpTest, PentiumClockIsFaster) {
  SoftCore pe(engine_, kPentiumClock, "pe");
  SimTime f = -1;
  SimTime t_mem = -1, t_wake = -1;
  pe.Install(SoftProgram(&pe, &mem_.sram(), &f, &t_mem, &t_wake, &engine_));
  engine_.RunAll();
  EXPECT_EQ(f, kPentiumClock.ToTime(100));
  EXPECT_LT(f, kIxpClock.ToTime(100));
}

// --- HashUnit / DMA / chip assembly ---

TEST(HashUnit, DeterministicAndCounting) {
  HashUnit h;
  const uint64_t a = h.Hash64(12345);
  HashUnit h2;
  EXPECT_EQ(h2.Hash64(12345), a);
  EXPECT_NE(h.Hash64(12346), a);
  EXPECT_EQ(h.uses(), 2u);
}

TEST(HashUnit, CombineDependsOnBothInputs) {
  HashUnit h;
  EXPECT_NE(h.Combine(1, 2), h.Combine(2, 1));
  EXPECT_NE(h.Combine(1, 2), h.Combine(1, 3));
}

TEST(Dma, TransferTimeMatchesIxBus) {
  EventQueue engine;
  HwConfig hw = HwConfig::Default();
  MemoryChannel ix(engine, MakeIxBusConfig(hw));
  DmaEngine dma(engine, ix, hw.dma_setup_cycles);
  SimTime done = -1;
  dma.Transfer(64, [&] { done = engine.now(); });
  engine.RunAll();
  // setup (4 ME cycles = 20 ns) + 8 IX-bus cycles (~121 ns).
  EXPECT_NEAR(static_cast<double>(done) / kPsPerNs, 141.2, 2.0);
}

TEST(Ixp1200, AssemblyMatchesBlockDiagram) {
  EventQueue engine;
  Ixp1200 chip(engine, HwConfig::Default());
  EXPECT_EQ(chip.num_mes(), 6);
  EXPECT_EQ(chip.me(0).num_contexts(), 4);
  EXPECT_EQ(chip.rfifo().size(), 16);
  EXPECT_EQ(chip.tfifo().size(), 16);
  EXPECT_EQ(chip.memory().dram_store().size(), 32u << 20);
  EXPECT_EQ(chip.memory().sram_store().size(), 2u << 20);
  EXPECT_EQ(chip.memory().scratch_store().size(), 4096u);
}

TEST(HostSystem, PciBandwidthIsRoughly1Gbps) {
  EventQueue engine;
  HostSystem host(engine, HwConfig::Default());
  for (int i = 0; i < 10000; ++i) {
    host.pci().Issue(64, true, [] {});
  }
  engine.RunAll();
  const double seconds = static_cast<double>(engine.now()) / kPsPerSec;
  const double gbps = static_cast<double>(host.pci().bytes_moved()) * 8 / seconds / 1e9;
  EXPECT_NEAR(gbps, 1.056, 0.05);
}

}  // namespace
}  // namespace npr
