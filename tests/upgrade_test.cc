// Hitless in-service upgrade: ISTORE double-buffer staging, checksum-gated
// installs, flow-state SRAM accounting, shadow validation, atomic cutover
// with state migration, auto-rollback (byzantine image, trap, crashed
// cutover step), control-channel image shipment, and the cluster rolling
// upgrade under UpgradeChaos.
//
// The UpgradeCluster suite runs the sharded cluster and is included in
// ci/sanitize.sh's ThreadSanitizer sweep.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_control.h"
#include "src/core/router.h"
#include "src/core/upgrade.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/router_invariants.h"
#include "src/health/cluster_health.h"
#include "src/health/control_channel.h"
#include "src/health/health_monitor.h"
#include "src/health/rolling_upgrade.h"
#include "src/net/traffic_gen.h"
#include "src/sim/random.h"

namespace npr {
namespace {

std::unique_ptr<Router> MakeRouter(RouterConfig cfg = RouterConfig{}) {
  auto router = std::make_unique<Router>(std::move(cfg));
  for (int p = 0; p < router->num_ports(); ++p) {
    router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router->WarmRouteCache(32);
  return router;
}

void DriveTraffic(Router& router, std::vector<std::unique_ptr<TrafficGen>>* gens,
                  double traffic_ms, int ports = 1, uint64_t rate_pps = 200'000) {
  for (int p = 0; p < ports; ++p) {
    TrafficSpec spec;
    spec.rate_pps = rate_pps;
    spec.dst_spread = 16;
    gens->push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                 static_cast<uint64_t>(700 + p)));
    gens->back()->Start(static_cast<SimTime>(traffic_ms * kPsPerMs));
  }
}

// Counts a packet in flow state at `counter_offset`, then picks the queue by
// the counter's parity and sends. Outwardly deterministic in the counter, so
// two copies stay in lockstep iff their state regions agree — which is what
// the shadow/soak comparisons and the rollback bit-identity tests exercise.
VrpProgram ParityQueue(int32_t counter_offset, uint32_t state_bytes, const char* name) {
  VrpProgram p;
  p.name = name;
  p.flow_state_bytes = state_bytes;
  p.code = {
      {VrpOp::kLdSram, 0, 0, counter_offset},
      {VrpOp::kAddI, 0, 0, 1},
      {VrpOp::kStSram, 0, 0, counter_offset},
      {VrpOp::kMovI, 1, 0, 0},
      {VrpOp::kAndI, 0, 0, 1},
      {VrpOp::kBeq, 0, 1, 2},  // even parity: skip the queue bump
      {VrpOp::kSetQueue, 0, 0, 1},
      {VrpOp::kSend, 0, 0, 0},
  };
  return p;
}

// Same contract as ParityQueue(0, 4, ...) until the counter exceeds
// `misbehave_after`, then silently drops every conforming packet — a
// byzantine image that survives shadow validation and goes bad in soak.
VrpProgram ByzantineAfter(int32_t misbehave_after, const char* name) {
  VrpProgram p;
  p.name = name;
  p.flow_state_bytes = 4;
  p.code = {
      {VrpOp::kLdSram, 0, 0, 0},
      {VrpOp::kAddI, 0, 0, 1},
      {VrpOp::kStSram, 0, 0, 0},
      {VrpOp::kMovI, 1, 0, misbehave_after},
      {VrpOp::kBlt, 0, 1, 2},  // counter < threshold: still conforming
      {VrpOp::kDrop, 0, 0, 0},
      {VrpOp::kMovI, 1, 0, 0},
      {VrpOp::kAndI, 0, 1, 1},
      {VrpOp::kBeq, 0, 1, 2},
      {VrpOp::kSetQueue, 0, 0, 1},
      {VrpOp::kSend, 0, 0, 0},
  };
  // Keep R0's counter for the parity pick below the branch.
  p.code[7] = {VrpOp::kAndI, 0, 0, 1};
  return p;
}

uint32_t InstallGeneralMe(Router& router, const VrpProgram& program) {
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &program;
  const InstallOutcome out = router.Install(req);
  EXPECT_TRUE(out.ok) << out.error;
  return out.fid;
}

template <typename Pred>
bool RunUntil(Router& router, Pred pred, double step_ms = 0.05, double deadline_ms = 30.0) {
  for (double t = 0; t < deadline_ms && !pred(); t += step_ms) {
    router.RunForMs(step_ms);
  }
  return pred();
}

// --- ISTORE double-buffer staging --------------------------------------

TEST(UpgradeIstore, StagingLifecycleSwapsWithoutChangingTheHandle) {
  auto router = MakeRouter();
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(4, 8, "v2");
  const uint32_t fid = InstallGeneralMe(*router, v1);
  const uint32_t handle = router->flow_table().Get(fid)->me_program_id;
  IStoreLayout& istore = router->istore();
  const uint32_t active_slots = istore.used_slots();

  // Staged slots count against capacity; the active image keeps serving.
  ASSERT_TRUE(istore.StageReplace(handle, v2, 0x9000));
  EXPECT_GT(istore.used_slots(), active_slots);
  EXPECT_EQ(istore.Get(handle)->name, "v1");
  ASSERT_NE(istore.Staged(handle), nullptr);
  EXPECT_EQ(istore.Staged(handle)->name, "v2");
  EXPECT_FALSE(istore.StageReplace(handle, v2, 0x9000)) << "one replacement in flight";

  // Cancel restores the original accounting.
  ASSERT_TRUE(istore.CancelReplace(handle));
  EXPECT_EQ(istore.used_slots(), active_slots);
  EXPECT_EQ(istore.Staged(handle), nullptr);

  // Commit flips the image under the same handle; revert flips it back.
  ASSERT_TRUE(istore.StageReplace(handle, v2, 0x9000));
  ASSERT_TRUE(istore.CommitReplace(handle));
  EXPECT_EQ(istore.Get(handle)->name, "v2");
  EXPECT_TRUE(istore.HasRetained(handle));
  ASSERT_TRUE(istore.RevertReplace(handle));
  EXPECT_EQ(istore.Get(handle)->name, "v1");
  EXPECT_FALSE(istore.HasRetained(handle));
  EXPECT_EQ(istore.used_slots(), active_slots);

  // Promote drops the retained half for good.
  ASSERT_TRUE(istore.StageReplace(handle, v2, 0x9000));
  ASSERT_TRUE(istore.CommitReplace(handle));
  ASSERT_TRUE(istore.PromoteReplace(handle));
  EXPECT_EQ(istore.Get(handle)->name, "v2");
  EXPECT_FALSE(istore.HasRetained(handle));
  EXPECT_FALSE(istore.RevertReplace(handle)) << "nothing retained after promote";
}

// --- checksum-gated install (satellite: typed InstallOutcome) -----------

TEST(UpgradeChecksum, CorruptedImageIsRefusedAtInstallWithTypedReason) {
  auto router = MakeRouter();
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &v1;
  req.image_checksum = VrpImageChecksum(v1) ^ 1;  // one flipped bit somewhere

  const InstallOutcome bad = router->Install(req);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.reject, InstallReject::kChecksumMismatch);
  EXPECT_EQ(router->stats().upgrade_checksum_rejects, 1u);
  EXPECT_EQ(router->flow_table().size(), 0u);

  req.image_checksum = VrpImageChecksum(v1);
  const InstallOutcome good = router->Install(req);
  EXPECT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.reject, InstallReject::kNone);
}

TEST(UpgradeChecksum, OrchestratorRefusesMismatchedImageBeforeTouchingAnything) {
  auto router = MakeRouter();
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(0, 4, "v2");
  const uint32_t fid = InstallGeneralMe(*router, v1);
  router->Start();
  UpgradeOrchestrator upgrade(*router);

  const uint32_t outstanding = router->sram_arena().outstanding();
  EXPECT_FALSE(upgrade.Begin(fid, v2, VrpImageChecksum(v2) ^ (1ull << 17)));
  EXPECT_EQ(upgrade.last_error(), "image checksum mismatch");
  EXPECT_EQ(upgrade.phase(), UpgradePhase::kIdle);
  EXPECT_EQ(router->sram_arena().outstanding(), outstanding) << "no state allocated";
  EXPECT_EQ(router->stats().upgrade_checksum_rejects, 1u);
}

// --- flow-state SRAM accounting (satellite: Remove releases state) ------

TEST(UpgradeMemory, RemoveReleasesFlowStateSramAndLedgerReconciles) {
  auto router = MakeRouter();
  const uint32_t baseline = router->sram_arena().outstanding();
  EXPECT_EQ(baseline, router->sram_infra_bytes());

  VrpProgram v1 = ParityQueue(0, 4, "v1");
  const uint32_t fid = InstallGeneralMe(*router, v1);
  EXPECT_EQ(router->sram_arena().outstanding(), baseline + 4);
  EXPECT_TRUE(RouterInvariants::CheckAll(*router).ok());

  ASSERT_TRUE(router->Remove(fid));
  EXPECT_EQ(router->sram_arena().outstanding(), baseline)
      << "Remove must release the flow-state region";
  EXPECT_TRUE(RouterInvariants::CheckAll(*router).ok());

  // The freed region is reusable: a second install fits where the first sat.
  const uint32_t fid2 = InstallGeneralMe(*router, v1);
  EXPECT_EQ(router->sram_arena().outstanding(), baseline + 4);
  ASSERT_TRUE(router->Remove(fid2));
  EXPECT_EQ(router->sram_arena().outstanding(), baseline);
}

// --- hitless stateful upgrade -------------------------------------------

TEST(UpgradeHitless, StatefulUpgradeDeliversEveryConformingPacketBitIdentically) {
  // v2 keeps its counter at a different offset in a wider state record; the
  // layout map carries the live value across. A correct migration means the
  // parity sequence never skips, so the upgraded run's per-packet decisions
  // are bit-identical to a never-upgraded control run end to end.
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(4, 8, "v2");
  StateMigrator migrate = [](std::span<const uint8_t> old_state,
                             std::span<uint8_t> new_state) {
    if (old_state.size() < 4 || new_state.size() < 8) {
      return false;
    }
    std::copy_n(old_state.begin(), 4, new_state.begin() + 4);
    return true;
  };

  uint64_t forwarded[2] = {0, 0};
  std::vector<uint64_t> decisions[2];
  UpgradeReport report;
  for (int upgraded = 0; upgraded < 2; ++upgraded) {
    auto router = MakeRouter();
    const uint32_t fid = InstallGeneralMe(*router, v1);
    const uint32_t handle = router->flow_table().Get(fid)->me_program_id;
    router->Start();
    UpgradeOrchestrator upgrade(*router);
    upgrade.RecordDecisions(handle);

    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 4.0);
    router->RunForMs(0.5);
    if (upgraded == 1) {
      ASSERT_TRUE(upgrade.Begin(fid, v2, VrpImageChecksum(v2), migrate))
          << upgrade.last_error();
    }
    router->RunForMs(4.5);

    if (upgraded == 1) {
      ASSERT_EQ(upgrade.phase(), UpgradePhase::kPromoted) << upgrade.last_error();
      report = upgrade.report();
    }
    forwarded[upgraded] = router->stats().forwarded;
    decisions[upgraded] = upgrade.decisions();
    const InvariantReport inv = RouterInvariants::CheckAll(*router);
    EXPECT_TRUE(inv.ok()) << inv.ToString();
    EXPECT_EQ(upgrade.held_state_bytes(), 0u);
  }

  // Zero conforming loss and full bit-identity against the control run.
  EXPECT_EQ(forwarded[1], forwarded[0]);
  ASSERT_EQ(decisions[1].size(), decisions[0].size());
  EXPECT_EQ(decisions[1], decisions[0])
      << "an upgraded run must be indistinguishable packet-for-packet";

  EXPECT_GT(report.shadow_packets, 0u);
  EXPECT_EQ(report.shadow_divergences, 0u);
  EXPECT_GT(report.soak_packets, 0u);
  EXPECT_EQ(report.soak_divergences, 0u);
  EXPECT_EQ(report.migrated_bytes, 12u);  // 4 read + 8 written, twice migrated
  EXPECT_GT(report.cutover_pause_cycles, 0u);
  EXPECT_LT(report.cutover_pause_cycles, 1000u) << "the atomic window stays tiny";
}

TEST(UpgradeHitless, IdleOrchestratorIsInvisibleToForwarding) {
  uint64_t forwarded[2] = {0, 0};
  uint64_t events[2] = {0, 0};
  for (int attached = 0; attached < 2; ++attached) {
    auto router = MakeRouter();
    VrpProgram v1 = ParityQueue(0, 4, "v1");
    InstallGeneralMe(*router, v1);
    router->Start();
    std::unique_ptr<UpgradeOrchestrator> upgrade;
    if (attached == 1) {
      upgrade = std::make_unique<UpgradeOrchestrator>(*router);
    }
    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 3.0);
    router->RunForMs(3.5);
    forwarded[attached] = router->stats().forwarded;
    events[attached] = router->engine().events_run();
  }
  EXPECT_EQ(forwarded[1], forwarded[0]);
  EXPECT_EQ(events[1], events[0]) << "an idle orchestrator schedules nothing";
}

// --- auto-rollback ------------------------------------------------------

TEST(UpgradeRollback, ByzantineImageRollsBackInSoakAndRestoresBitIdentity) {
  // The byzantine image conforms until its packet counter passes a
  // threshold placed just beyond the shadow window, then drops everything.
  // Soak catches the divergence and rolls back to the retained image and
  // state; from that point the decision stream must realign with a
  // never-upgraded control run — the retained state was kept current by the
  // reverse shadow, so recovery is bit-identical, not merely functional.
  VrpProgram v1 = ParityQueue(0, 4, "v1");

  std::vector<uint64_t> decisions[2];
  size_t rollback_count = 0;
  UpgradeRollbackRecord record;
  SimTime cutover_at = 0;
  size_t upgrade_events = 0;
  for (int upgraded = 0; upgraded < 2; ++upgraded) {
    auto router = MakeRouter();
    const uint32_t fid = InstallGeneralMe(*router, v1);
    const uint32_t handle = router->flow_table().Get(fid)->me_program_id;
    const uint32_t state_addr = router->flow_table().Get(fid)->state_addr;
    router->Start();
    HealthMonitor health(*router);
    UpgradeOrchestrator upgrade(*router);
    upgrade.RecordDecisions(handle);

    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 6.0);
    router->RunForMs(0.5);
    if (upgraded == 1) {
      // Misbehave roughly one shadow window after cutover: past shadow
      // validation, well inside the soak window.
      const uint32_t counter =
          router->chip().memory().sram_store().ReadU32(state_addr);
      VrpProgram bad = ByzantineAfter(static_cast<int32_t>(counter + 60), "byz");
      ASSERT_TRUE(upgrade.Begin(fid, bad, VrpImageChecksum(bad))) << upgrade.last_error();
    }
    router->RunForMs(6.0);

    decisions[upgraded] = upgrade.decisions();
    if (upgraded == 1) {
      ASSERT_EQ(upgrade.phase(), UpgradePhase::kRolledBack) << upgrade.last_error();
      ASSERT_EQ(upgrade.rollbacks().size(), 1u);
      record = upgrade.rollbacks()[0];
      cutover_at = upgrade.report().cutover_at;
      rollback_count = upgrade.rollbacks().size();
      EXPECT_EQ(router->stats().upgrade_rollbacks, 1u);
      EXPECT_GT(router->stats().upgrade_divergences, 0u);
      // HealthMonitor folds the episode into the uniform recovery stream.
      for (const RecoveryEvent& ev : health.events()) {
        upgrade_events += ev.kind == RecoveryEvent::Kind::kUpgradeRollback ? 1 : 0;
      }
      const InvariantReport inv = RouterInvariants::CheckAll(*router);
      EXPECT_TRUE(inv.ok()) << inv.ToString();
    }
  }

  ASSERT_EQ(rollback_count, 1u);
  EXPECT_EQ(upgrade_events, 1u);
  // Detected and recovered within the soak window, with ordered timestamps.
  EXPECT_GE(record.detected_at, record.fault_at);
  EXPECT_GE(record.recovered_at, record.detected_at);
  EXPECT_GT(record.fault_at, cutover_at) << "the image went bad after cutover";
  EXPECT_LE(record.recovered_at - cutover_at, UpgradeConfig{}.soak_window_ps * 2);

  // Decisions: identical prefix, a byzantine window, then an identical
  // suffix once the retained image and state are back.
  ASSERT_EQ(decisions[1].size(), decisions[0].size());
  size_t first_diff = decisions[0].size();
  size_t last_diff = 0;
  for (size_t i = 0; i < decisions[0].size(); ++i) {
    if (decisions[0][i] != decisions[1][i]) {
      first_diff = std::min(first_diff, i);
      last_diff = i;
    }
  }
  ASSERT_LT(first_diff, decisions[0].size()) << "the byzantine image must diverge";
  EXPECT_LT(last_diff + 100, decisions[0].size())
      << "post-rollback forwarding must realign with the control run";
}

TEST(UpgradeRollback, TrapDuringSoakTriggersRollbackWithTightMttd) {
  FaultPlan plan;
  plan.vrp_trap_p = 1.0;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  ASSERT_NE(router->fault_injector(), nullptr);
  router->fault_injector()->set_armed(false);

  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(0, 4, "v2");
  v2.code.insert(v2.code.begin(), {VrpOp::kNop, 0, 0, 0});  // distinct image, same behavior
  const uint32_t fid = InstallGeneralMe(*router, v1);
  router->Start();
  UpgradeOrchestrator upgrade(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 10.0);
  router->RunForMs(0.3);
  ASSERT_TRUE(upgrade.Begin(fid, v2)) << upgrade.last_error();

  ASSERT_TRUE(RunUntil(*router, [&] { return upgrade.phase() == UpgradePhase::kSoak; }))
      << "never reached soak: " << UpgradePhaseName(upgrade.phase());
  // Arm the injector only now: the very next packet the new image serves
  // traps, and any trap during soak must roll the upgrade back.
  router->fault_injector()->set_armed(true);
  const SimTime armed_at = router->engine().now();
  ASSERT_TRUE(
      RunUntil(*router, [&] { return upgrade.phase() == UpgradePhase::kRolledBack; }, 0.01))
      << UpgradePhaseName(upgrade.phase());
  router->fault_injector()->set_armed(false);
  router->RunForMs(1.0);

  ASSERT_EQ(upgrade.rollbacks().size(), 1u);
  const UpgradeRollbackRecord& rec = upgrade.rollbacks()[0];
  EXPECT_NE(rec.reason.find("trapped"), std::string::npos) << rec.reason;
  EXPECT_GE(rec.fault_at, armed_at);
  EXPECT_EQ(rec.detected_at, rec.fault_at) << "the trap itself is the detection";
  // Recovery is the next scheduled event after the classify call returns.
  EXPECT_LE(rec.recovered_at - rec.detected_at, 10 * kPsPerUs);
  const InvariantReport inv = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(UpgradeCrash, CutoverCrashIsCaughtByWatchdogAndAbortsCleanly) {
  FaultPlan plan;
  plan.upgrade_crash_p = 1.0;  // every cutover step is lost mid-way
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(4, 8, "v2");

  uint64_t forwarded[2] = {0, 0};
  for (int upgraded = 0; upgraded < 2; ++upgraded) {
    RouterConfig cfg;
    cfg.fault_plan = plan;
    auto router = MakeRouter(std::move(cfg));
    const uint32_t fid = InstallGeneralMe(*router, v1);
    const uint32_t handle = router->flow_table().Get(fid)->me_program_id;
    router->Start();
    UpgradeOrchestrator upgrade(*router);

    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 4.0);
    router->RunForMs(0.5);
    if (upgraded == 1) {
      ASSERT_TRUE(upgrade.Begin(fid, v2)) << upgrade.last_error();
    }
    router->RunForMs(4.0);
    forwarded[upgraded] = router->stats().forwarded;

    if (upgraded == 1) {
      EXPECT_EQ(upgrade.phase(), UpgradePhase::kAborted);
      EXPECT_NE(upgrade.report().error.find("watchdog"), std::string::npos)
          << upgrade.report().error;
      EXPECT_EQ(router->stats().upgrade_aborts, 1u);
      // The abort is an episode with a detection latency of one deadline.
      ASSERT_EQ(upgrade.rollbacks().size(), 1u);
      EXPECT_EQ(upgrade.rollbacks()[0].detected_at - upgrade.rollbacks()[0].fault_at,
                UpgradeConfig{}.step_deadline_ps);
      // The commit never happened: the old image never stopped serving and
      // the staged resources were released.
      EXPECT_EQ(router->istore().Get(handle)->name, "v1");
      EXPECT_FALSE(router->istore().HasRetained(handle));
      EXPECT_EQ(upgrade.held_state_bytes(), 0u);
      const InvariantReport inv = RouterInvariants::CheckAll(*router);
      EXPECT_TRUE(inv.ok()) << inv.ToString();
    }
  }
  EXPECT_EQ(forwarded[1], forwarded[0]) << "an aborted upgrade loses nothing";
}

// --- control channel ----------------------------------------------------

TEST(UpgradeChannel, CorruptedImageInTransitIsRefusedAndResendSucceeds) {
  FaultPlan plan;
  plan.image_corrupt_p = 1.0;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(4, 8, "v2");
  const uint32_t fid = InstallGeneralMe(*router, v1);
  router->Start();
  UpgradeOrchestrator upgrade(*router);
  ControlChannel channel(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 4.0);

  // Every crossing corrupts the image; the checksum refuses it on arrival.
  CtrlResult refused;
  channel.Upgrade(fid, v2, VrpImageChecksum(v2), [&](const CtrlResult& r) { refused = r; });
  router->RunForMs(1.0);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("checksum"), std::string::npos) << refused.error;
  EXPECT_GE(router->stats().upgrade_checksum_rejects, 1u);
  EXPECT_EQ(upgrade.phase(), UpgradePhase::kIdle) << "nothing may start from a bad image";

  // A clean resend (corruption disarmed) starts the episode.
  router->fault_injector()->set_armed(false);
  CtrlResult accepted;
  channel.Upgrade(fid, v2, VrpImageChecksum(v2), [&](const CtrlResult& r) { accepted = r; });
  router->RunForMs(1.0);
  EXPECT_TRUE(accepted.ok) << accepted.error;
  EXPECT_NE(upgrade.phase(), UpgradePhase::kIdle);
}

TEST(UpgradeChannel, RetryExhaustionSurfacesTerminalFailure) {
  // Satellite: a drop-all link must end in a *reported* failure, not a
  // silent hang — failed(seq) flips, the callback fires with ok=false, and
  // every attempt was counted as a timeout.
  FaultPlan plan;
  plan.ctrl_drop_p = 1.0;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  router->Start();

  ControlChannelConfig cc;
  cc.ack_timeout_ps = 100 * kPsPerUs;
  cc.backoff_base_ps = 50 * kPsPerUs;
  cc.max_attempts = 4;
  ControlChannel channel(*router, cc);

  CtrlResult result;
  bool called = false;
  const uint64_t seq = channel.GetData(0, [&](const CtrlResult& r) {
    called = true;
    result = r;
  });
  router->RunForMs(5.0);

  EXPECT_TRUE(called);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("max attempts exhausted"), std::string::npos) << result.error;
  EXPECT_TRUE(channel.failed(seq));
  EXPECT_FALSE(channel.acked(seq));
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(router->stats().ctrl_timeouts, 4u);
  EXPECT_EQ(channel.executed_count(), 0u) << "nothing crossed a drop-all link";
}

// --- cluster rolling upgrade (sharded; in the TSan sweep) ---------------

TEST(UpgradeCluster, RollingUpgradeUnderChaosEndsConsistentWithoutFalseSuspicion) {
  ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.internal_links = 2;
  ccfg.fabric_latency_ps = 2 * kPsPerUs;
  ccfg.threads = 4;
  ccfg.node_config.fault_plan = FaultPlan::UpgradeChaos();
  ClusterRouter cluster(std::move(ccfg));
  ClusterControlPlane control(cluster);
  control.Start();

  // Chaos drops ~15% and delays ~10% of probe crossings, so a single
  // attempt fails about a quarter of the time; at the default 3 attempts a
  // probe exhausts every ~60 tries, which over hundreds of probes would
  // raise false suspicions. Ten attempts push exhaustion below 1e-6 per
  // probe. Genuine death detection is not under test here — UpgradeChaos
  // kills no nodes, so every suspicion would be spurious.
  ClusterHealthConfig hc;
  hc.probe_max_attempts = 10;
  ClusterHealthMonitor health(cluster, control, hc);

  // v2 widens the state record but keeps the counter at offset 0, so the
  // coordinator's identity migration preserves behavior in both directions
  // (forward upgrades and abort-path downgrades alike).
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(0, 8, "v2");
  std::vector<uint32_t> fids;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &v1;
    const InstallOutcome out = cluster.node(k).Install(req);
    ASSERT_TRUE(out.ok) << "node " << k << ": " << out.error;
    fids.push_back(out.fid);
  }
  cluster.Start();

  RollingUpgradeConfig rc;
  rc.node.shadow_window_ps = 100 * kPsPerUs;
  rc.node.shadow_min_packets = 16;
  rc.node.soak_window_ps = 150 * kPsPerUs;
  rc.node.soak_min_packets = 16;
  rc.node.step_deadline_ps = 200 * kPsPerUs;
  rc.node.probe_period_ps = 25 * kPsPerUs;
  rc.channel.link_delay_ps = 5 * kPsPerUs;
  rc.channel.ack_timeout_ps = 60 * kPsPerUs;
  rc.channel.backoff_base_ps = 30 * kPsPerUs;
  rc.channel.max_attempts = 5;
  RollingUpgradeCoordinator rolling(cluster, &health, rc);

  // Per-node local traffic so every node's general forwarder sees enough
  // packets for its shadow and soak evidence bars.
  struct Pump {
    ClusterRouter* cluster;
    int node;
    Rng rng;
    SimTime gap;
    SimTime stop;
    void Tick() {
      const int g = node * cluster->external_ports_per_node() +
                    static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(cluster->external_ports_per_node())));
      PacketSpec spec;
      spec.dst_ip = cluster->ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
      spec.src_ip = cluster->ExternalDstIp(node * cluster->external_ports_per_node(), 200);
      cluster->node(node).port(0).InjectFromWire(BuildPacket(spec));
      if (cluster->node_engine(node).now() + gap <= stop) {
        cluster->node_engine(node).ScheduleIn(gap, [this] { Tick(); });
      }
    }
  };
  std::vector<std::unique_ptr<Pump>> pumps;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    auto pump = std::make_unique<Pump>(
        Pump{&cluster, k, Rng(FaultPlan::DeriveNodeSeed(0x9a27ULL, k)),
             static_cast<SimTime>(kPsPerSec / 200'000), 60 * kPsPerMs});
    cluster.node_engine(k).ScheduleIn(pump->gap, [p = pump.get()] { p->Tick(); });
    pumps.push_back(std::move(pump));
  }

  cluster.RunForMs(1.0);  // control-plane convergence + warm counters
  ASSERT_TRUE(rolling.Start(fids, v2));

  bool settled = false;
  for (int i = 0; i < 200 && !settled; ++i) {
    cluster.RunForMs(0.25);
    settled = rolling.status() != RollingUpgradeCoordinator::Status::kRunning &&
              rolling.status() != RollingUpgradeCoordinator::Status::kDowngrading;
  }
  ASSERT_TRUE(settled) << "rollout never settled; stuck at node " << rolling.current_node();
  // Stop the pumps and drain so the final conservation check sees a quiet
  // cluster (a packet mid-hop is invisible to the per-node in-flight sum).
  // The offered rate slightly exceeds node capacity with a general forwarder
  // installed, so drain to quiescence, not for a fixed grace period.
  for (auto& pump : pumps) {
    pump->stop = 0;
  }
  uint64_t quiesce_prev = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.RunForMs(0.5);
    uint64_t progress = 0;
    for (int k = 0; k < cluster.num_nodes(); ++k) {
      progress += cluster.node(k).stats().input.packets + cluster.node(k).stats().forwarded;
    }
    if (progress == quiesce_prev) {
      break;
    }
    quiesce_prev = progress;
  }

  // Completes or aborts cleanly — never an inconsistent cluster.
  const auto status = rolling.status();
  EXPECT_TRUE(status == RollingUpgradeCoordinator::Status::kDone ||
              status == RollingUpgradeCoordinator::Status::kAborted)
      << "status=" << static_cast<int>(status) << " error=" << rolling.error();
  if (status == RollingUpgradeCoordinator::Status::kDone) {
    EXPECT_EQ(rolling.NodesOnNewImage(), cluster.num_nodes());
    EXPECT_EQ(rolling.nodes_promoted(), cluster.num_nodes());
  } else {
    EXPECT_EQ(rolling.NodesOnNewImage(), 0) << "abort must downgrade promoted nodes";
  }

  // Upgrade-aware federated health: chaos plus eight cutovers, yet no node
  // was ever suspected dead.
  EXPECT_EQ(health.suspects_raised(), 0u);
  EXPECT_GT(health.probes_acked(), 0u);

  const InvariantReport inv = RouterInvariants::CheckCluster(cluster);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

}  // namespace
}  // namespace npr
