// QoS and service-differentiation tests: multi-priority queues (§3.4),
// the DSCP tagger and token-bucket limiter forwarders, PCAP capture, and
// heterogeneous port rates.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/router.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/ixp/hash_unit.h"
#include "src/net/pcap_writer.h"
#include "src/net/traffic_gen.h"
#include "src/vrp/assembler.h"
#include "src/vrp/interpreter.h"

namespace npr {
namespace {

// --- multi-priority queues (§3.4.1: priority-ordered service) ---

TEST(Qos, HighPriorityFlowSurvivesCongestion) {
  // Two flows converge on one 100 Mbps port at 2x its line rate. Flow B is
  // demoted to priority 1 by a per-flow VRP program (setq); the output
  // scheduler drains priority 0 first, so flow A keeps (nearly) all of its
  // packets and flow B absorbs the loss.
  RouterConfig cfg;
  cfg.queues_per_port = 2;
  cfg.output_servicing = OutputServicing::kMultiQueueIndirection;
  cfg.classifier = ClassifierMode::kFlowTable;
  cfg.queue_capacity = 256;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);

  uint64_t delivered_a = 0, delivered_b = 0;
  router.port(2).SetSink([&](Packet&& packet) {
    auto ip = Ipv4Header::Parse(packet.l3());
    if (ip && ip->src == SrcIpForPort(0, 1)) {
      ++delivered_a;
    } else {
      ++delivered_b;
    }
  });

  // Flow B's per-flow forwarder: demote to priority queue 1.
  auto demote = Assemble("demote", "setq 1\nsend\n");
  ASSERT_TRUE(demote.ok);
  InstallRequest req;
  req.key = FlowKey::Tuple(SrcIpForPort(1, 1), DstIpForPort(2, 1), 1024, 80);
  req.where = Where::kMicroEngine;
  req.program = &demote.program;
  ASSERT_TRUE(router.Install(req).ok);
  router.Start();

  // Both flows at 141 Kpps toward port 2 (capacity 148.8 Kpps).
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int src = 0; src < 2; ++src) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    spec.pattern = TrafficSpec::DstPattern::kSinglePort;
    spec.single_dst_port = 2;
    spec.protocol = kIpProtoTcp;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(src), spec,
                                                static_cast<uint64_t>(src + 1)));
    gens.back()->Start(20 * kPsPerMs);
  }
  router.RunForMs(25.0);

  // ~2820 of each offered; the port can carry ~2976 total.
  EXPECT_GT(delivered_a, 2600u) << "priority 0 must ride out the congestion";
  EXPECT_LT(delivered_b, delivered_a / 4) << "priority 1 absorbs the overload";
  EXPECT_GT(router.stats().dropped_queue_full, 1000u);
}

TEST(Qos, PriorityFromVrpClampedToConfiguredQueues) {
  // setq beyond queues_per_port-1 is clamped, not an overflow.
  RouterConfig cfg;
  cfg.queues_per_port = 2;
  cfg.output_servicing = OutputServicing::kMultiQueueIndirection;
  cfg.classifier = ClassifierMode::kFlowTable;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(8);
  uint64_t delivered = 0;
  router.port(1).SetSink([&](Packet&&) { ++delivered; });

  auto wild = Assemble("wild", "setq 9\nsend\n");
  ASSERT_TRUE(wild.ok);
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  spec.protocol = kIpProtoTcp;
  spec.src_port = 7;
  spec.dst_port = 7;
  InstallRequest req;
  req.key = FlowKey::Tuple(spec.src_ip, spec.dst_ip, 7, 7);
  req.where = Where::kMicroEngine;
  req.program = &wild.program;
  ASSERT_TRUE(router.Install(req).ok);
  router.Start();
  router.port(0).InjectFromWire(BuildPacket(spec));
  router.RunForMs(2.0);
  EXPECT_EQ(delivered, 1u);
}

// --- DSCP tagger ---

class TaggerTest : public ::testing::Test {
 protected:
  TaggerTest() : sram_("sram", 1024), interp_(sram_, hash_) {}
  BackingStore sram_;
  HashUnit hash_;
  VrpInterpreter interp_;
};

TEST_F(TaggerTest, RewritesTosAndKeepsChecksumValid) {
  auto program = BuildDscpTagger();
  sram_.WriteU32(0, 0xb8);  // EF class

  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  Packet p = BuildPacket(spec);
  ASSERT_TRUE(Ipv4Header::Validate(p.l3()));
  auto out = interp_.Run(program, p.bytes().first(64), 0, nullptr);
  EXPECT_EQ(out.action, VrpAction::kSend);

  auto ip = Ipv4Header::Parse(p.l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->tos, 0xb8);
  EXPECT_TRUE(Ipv4Header::Validate(p.l3())) << "incremental checksum update broke the header";
  EXPECT_EQ(sram_.ReadU32(4), 1u);  // tagged count
}

TEST_F(TaggerTest, UnchangedClassLeavesChecksumAlone) {
  auto program = BuildDscpTagger();
  sram_.WriteU32(0, 0);  // class 0 == default TOS
  PacketSpec spec;
  Packet p = BuildPacket(spec);
  const uint16_t before = Ipv4Header::Parse(p.l3())->checksum;
  interp_.Run(program, p.bytes().first(64), 0, nullptr);
  EXPECT_EQ(Ipv4Header::Parse(p.l3())->checksum, before);
  EXPECT_EQ(sram_.ReadU32(4), 0u);  // not counted as tagged
}

TEST_F(TaggerTest, SweepClassesChecksumAlwaysValid) {
  auto program = BuildDscpTagger();
  for (uint32_t cls : {0x20u, 0x48u, 0x68u, 0x88u, 0xb8u, 0xffu}) {
    sram_.WriteU32(0, cls);
    PacketSpec spec;
    spec.dst_ip = 0x0a000000 + cls;  // vary the header contents too
    Packet p = BuildPacket(spec);
    interp_.Run(program, p.bytes().first(64), 0, nullptr);
    EXPECT_TRUE(Ipv4Header::Validate(p.l3())) << "class " << cls;
    EXPECT_EQ(Ipv4Header::Parse(p.l3())->tos, cls);
  }
}

// --- rate limiter ---

TEST_F(TaggerTest, RateLimiterSpendsTokensThenDrops) {
  auto program = BuildRateLimiter();
  sram_.WriteU32(0, 3);  // 3 tokens

  PacketSpec spec;
  int sent = 0, dropped = 0;
  for (int i = 0; i < 5; ++i) {
    Packet p = BuildPacket(spec);
    auto out = interp_.Run(program, p.bytes().first(64), 0, nullptr);
    (out.action == VrpAction::kSend ? sent : dropped) += 1;
  }
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(sram_.ReadU32(0), 0u);
  EXPECT_EQ(sram_.ReadU32(4), 2u);

  // The control half refills the bucket.
  sram_.WriteU32(0, 2);
  Packet p = BuildPacket(spec);
  EXPECT_EQ(interp_.Run(program, p.bytes().first(64), 0, nullptr).action, VrpAction::kSend);
}

TEST(RateLimiterEndToEnd, ControlRefillGovernsThroughput) {
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(16);
  uint64_t delivered = 0;
  router.port(1).SetSink([&](Packet&&) { ++delivered; });

  VrpProgram limiter = BuildRateLimiter();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &limiter;
  auto outcome = router.Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  router.Start();

  // Refill 100 tokens every 2 ms => ~50 Kpps admitted of a 141 Kpps flood.
  std::function<void()> refill = [&] {
    auto state = router.GetData(outcome.fid);
    uint32_t tokens = 100;
    std::memcpy(state.data(), &tokens, 4);
    router.SetData(outcome.fid, state);
    router.engine().ScheduleIn(2 * kPsPerMs, refill);
  };
  refill();

  TrafficSpec spec;
  spec.rate_pps = 141'000;
  spec.pattern = TrafficSpec::DstPattern::kSinglePort;
  spec.single_dst_port = 1;
  TrafficGen gen(router.engine(), router.port(0), spec, 9);
  gen.Start(20 * kPsPerMs);
  router.RunForMs(22.0);

  // ~10 refills x 100 tokens = ~1000 admitted of ~2820 offered.
  EXPECT_NEAR(static_cast<double>(delivered), 1100.0, 200.0);
  EXPECT_GT(router.stats().dropped_by_vrp, 1500u);
}

// --- PCAP ---

TEST(Pcap, WritesParseableFile) {
  const std::string path = ::testing::TempDir() + "/npr_test.pcap";
  {
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
    PacketSpec spec;
    spec.frame_bytes = 100;
    writer.Capture(BuildPacket(spec), 1 * kPsPerSec + 500 * kPsPerMs);
    writer.Capture(BuildPacket(spec), 2 * kPsPerSec);
    EXPECT_EQ(writer.captured(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint32_t magic = 0;
  ASSERT_EQ(std::fread(&magic, 4, 1, f), 1u);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::fseek(f, 24, SEEK_SET);  // past the global header
  uint32_t rec[4];
  ASSERT_EQ(std::fread(rec, 4, 4, f), 4u);
  EXPECT_EQ(rec[0], 1u);       // ts_sec
  EXPECT_EQ(rec[1], 500'000u); // ts_usec
  EXPECT_EQ(rec[2], 100u);     // incl_len
  EXPECT_EQ(rec[3], 100u);     // orig_len
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Pcap, SinkIntegration) {
  const std::string path = ::testing::TempDir() + "/npr_sink.pcap";
  Router router((RouterConfig()));
  router.AddRoute("10.1.0.0/16", 1);
  router.WarmRouteCache(8);
  {
    PcapWriter writer(path);
    router.port(1).SetSink(
        [&](Packet&& packet) { writer.Capture(packet, router.engine().now()); });
    router.Start();
    PacketSpec spec;
    spec.dst_ip = DstIpForPort(1, 1);
    for (int i = 0; i < 5; ++i) {
      router.port(0).InjectFromWire(BuildPacket(spec));
    }
    router.RunForMs(2.0);
    EXPECT_EQ(writer.captured(), 5u);
  }
  std::remove(path.c_str());
}

// --- heterogeneous ports (the board's 8x100 Mbps + 2x1 Gbps, §2.2) ---

TEST(MixedPorts, GigabitIngressFansOutWithoutLoss) {
  RouterConfig cfg;
  cfg.port_rates_bps = std::vector<double>(8, 100e6);
  cfg.port_rates_bps.push_back(1e9);
  cfg.port_rates_bps.push_back(1e9);
  Router router(std::move(cfg));
  ASSERT_EQ(router.num_ports(), 10);
  for (int p = 0; p < 8; ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  uint64_t delivered = 0;
  for (int p = 0; p < 8; ++p) {
    router.port(p).SetSink([&](Packet&&) { ++delivered; });
  }
  router.Start();

  // 500 Kpps into gigabit port 8, spread over the eight 100 Mbps ports
  // (62.5 Kpps each, well within their 148.8 Kpps line rate).
  TrafficSpec spec;
  spec.rate_pps = 500'000;
  spec.num_dst_ports = 8;
  spec.dst_spread = 32;
  TrafficGen gen(router.engine(), router.port(8), spec, 5);
  gen.Start(10 * kPsPerMs);
  router.RunForMs(13.0);

  EXPECT_NEAR(static_cast<double>(delivered), 5000.0, 100.0);
  EXPECT_EQ(router.stats().dropped_queue_full, 0u);
  EXPECT_EQ(router.port(8).rx_dropped(), 0u);
}

}  // namespace
}  // namespace npr
