// ICMP codec and the StrongARM's error-generation path.

#include <gtest/gtest.h>

#include "src/core/router.h"
#include "src/net/checksum.h"
#include "src/net/icmp.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

TEST(IcmpCodec, HeaderRoundTrip) {
  std::vector<uint8_t> message(16, 0xaa);
  IcmpHeader h;
  h.type = kIcmpTimeExceeded;
  h.code = kIcmpCodeTtlExceeded;
  h.WriteWithChecksum(message);
  auto parsed = IcmpHeader::Parse(message);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, kIcmpTimeExceeded);
  EXPECT_EQ(parsed->code, kIcmpCodeTtlExceeded);
  // A correct ICMP message checksums (one's complement) to all-ones.
  EXPECT_EQ(ChecksumPartial(message), 0xffff);
}

TEST(IcmpCodec, TooShortFails) {
  uint8_t buf[4] = {};
  EXPECT_FALSE(IcmpHeader::Parse(buf));
}

TEST(IcmpBuilder, QuotesOffendingHeader) {
  PacketSpec spec;
  spec.src_ip = Ipv4FromString("172.16.5.9");
  spec.dst_ip = Ipv4FromString("10.9.9.9");
  spec.protocol = kIpProtoUdp;
  spec.src_port = 1234;
  Packet original = BuildPacket(spec);

  auto reply = BuildIcmpError(kIcmpTimeExceeded, 0, original, Ipv4FromString("10.255.0.1"));
  ASSERT_TRUE(reply);
  auto ip = Ipv4Header::Parse(reply->l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoIcmp);
  EXPECT_EQ(ip->src, Ipv4FromString("10.255.0.1"));
  EXPECT_EQ(ip->dst, spec.src_ip) << "error goes back to the offender's source";
  EXPECT_TRUE(Ipv4Header::Validate(reply->l3()));

  // The quote: original IP header + 8 payload bytes after the 8-byte ICMP
  // header.
  auto icmp_payload = reply->l3().subspan(ip->header_bytes());
  EXPECT_EQ(ChecksumPartial(icmp_payload), 0xffff);
  auto quoted = Ipv4Header::Parse(icmp_payload.subspan(8));
  ASSERT_TRUE(quoted);
  EXPECT_EQ(quoted->src, spec.src_ip);
  EXPECT_EQ(quoted->dst, spec.dst_ip);
  EXPECT_EQ(quoted->protocol, kIpProtoUdp);
}

TEST(IcmpBuilder, NeverAboutIcmpErrors) {
  // Build a time-exceeded, then ask for an error about it: refused.
  Packet original = BuildPacket(PacketSpec{});
  auto first = BuildIcmpError(kIcmpTimeExceeded, 0, original, 0x0aff0001);
  ASSERT_TRUE(first);
  EXPECT_FALSE(BuildIcmpError(kIcmpTimeExceeded, 0, *first, 0x0aff0001));
}

class IcmpPathTest : public ::testing::Test {
 protected:
  std::unique_ptr<Router> MakeRouter(bool icmp_on = true) {
    RouterConfig cfg;
    cfg.generate_icmp_errors = icmp_on;
    auto router = std::make_unique<Router>(std::move(cfg));
    for (int p = 0; p < router->num_ports(); ++p) {
      router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
    }
    // Sources live behind port 5.
    router->AddRoute("172.16.0.0/12", 5);
    router->WarmRouteCache(16);
    router->port(5).SetSink([this](Packet&& p) {
      ++back_to_source_;
      last_ = std::move(p);
    });
    return router;
  }

  uint64_t back_to_source_ = 0;
  std::optional<Packet> last_;
};

TEST_F(IcmpPathTest, TtlExpiryGeneratesTimeExceeded) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.src_ip = SrcIpForPort(0, 1);  // 172.16.0.1: routable back via port 5
  spec.dst_ip = DstIpForPort(2, 1);
  spec.ttl = 1;
  Packet original = BuildPacket(spec);
  router->port(0).InjectFromWire(std::move(original));
  router->RunForMs(3.0);

  EXPECT_EQ(router->stats().icmp_generated, 1u);
  ASSERT_EQ(back_to_source_, 1u);
  auto ip = Ipv4Header::Parse(last_->l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoIcmp);
  auto icmp = IcmpHeader::Parse(last_->l4());
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, kIcmpTimeExceeded);
  EXPECT_TRUE(Ipv4Header::Validate(last_->l3()));
}

TEST_F(IcmpPathTest, UnroutableGeneratesUnreachable) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.src_ip = SrcIpForPort(0, 1);
  spec.dst_ip = Ipv4FromString("192.0.2.1");  // no route
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(3.0);

  EXPECT_EQ(router->stats().icmp_generated, 1u);
  ASSERT_EQ(back_to_source_, 1u);
  auto icmp = IcmpHeader::Parse(last_->l4());
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, kIcmpDestUnreachable);
  EXPECT_EQ(icmp->code, kIcmpCodeHostUnreachable);
}

TEST_F(IcmpPathTest, DisabledFlagSuppressesErrors) {
  auto router = MakeRouter(/*icmp_on=*/false);
  router->Start();
  PacketSpec spec;
  spec.src_ip = SrcIpForPort(0, 1);
  spec.dst_ip = DstIpForPort(2, 1);
  spec.ttl = 1;
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(3.0);
  EXPECT_EQ(router->stats().icmp_generated, 0u);
  EXPECT_EQ(back_to_source_, 0u);
}

TEST_F(IcmpPathTest, UnroutableSourceDropsSilently) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.src_ip = Ipv4FromString("198.51.100.1");  // source itself unroutable
  spec.dst_ip = DstIpForPort(2, 1);
  spec.ttl = 1;
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(3.0);
  EXPECT_EQ(router->stats().icmp_generated, 0u);
}

TEST_F(IcmpPathTest, FloodOfExpiringPacketsStaysBounded) {
  // A TTL=1 flood exercises allocation + generation under load; regular
  // traffic keeps flowing.
  auto router = MakeRouter();
  uint64_t regular = 0;
  router->port(2).SetSink([&](Packet&&) { ++regular; });
  router->Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  {
    TrafficSpec expiring;
    expiring.rate_pps = 50'000;
    expiring.ttl = 1;
    expiring.pattern = TrafficSpec::DstPattern::kSinglePort;
    expiring.single_dst_port = 3;
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(0), expiring, 1));
    gens.back()->Start(10 * kPsPerMs);
  }
  {
    TrafficSpec normal;
    normal.rate_pps = 100'000;
    normal.pattern = TrafficSpec::DstPattern::kSinglePort;
    normal.single_dst_port = 2;
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(1), normal, 2));
    gens.back()->Start(10 * kPsPerMs);
  }
  router->RunForMs(12.0);
  EXPECT_GT(router->stats().icmp_generated, 300u);
  EXPECT_NEAR(static_cast<double>(regular), 1000.0, 60.0);
}

// --- echo / ping ---

Packet BuildEchoRequest(uint32_t src, uint32_t dst, uint16_t ident) {
  PacketSpec spec;
  spec.protocol = kIpProtoIcmp;
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.frame_bytes = 74;  // 40 B of echo payload
  Packet p = BuildPacket(spec);
  auto l4 = p.l4();
  IcmpHeader icmp;
  icmp.type = kIcmpEchoRequest;
  icmp.rest = static_cast<uint32_t>(ident) << 16 | 1;  // id | seq
  icmp.WriteWithChecksum(l4);
  // The payload change invalidates nothing (ICMP checksum covers it), but
  // the IP header must be rewritten since BuildPacket checksummed before.
  auto ip = Ipv4Header::Parse(p.l3());
  ip->Write(p.l3());
  return p;
}

TEST(IcmpEcho, ReplySwapsAddressesAndType) {
  Packet request = BuildEchoRequest(0x0a010101, 0x0aff0001, 77);
  auto reply = BuildEchoReply(request);
  ASSERT_TRUE(reply);
  auto ip = Ipv4Header::Parse(reply->l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->src, 0x0aff0001u);
  EXPECT_EQ(ip->dst, 0x0a010101u);
  EXPECT_TRUE(Ipv4Header::Validate(reply->l3()));
  auto icmp = IcmpHeader::Parse(reply->l4());
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, kIcmpEchoReply);
  EXPECT_EQ(icmp->rest >> 16, 77u);  // identifier preserved
  EXPECT_EQ(ChecksumPartial(reply->l4()), 0xffff);
  // Payload preserved byte for byte.
  EXPECT_TRUE(std::equal(reply->l4().begin() + 8, reply->l4().end(),
                         request.l4().begin() + 8));
}

TEST(IcmpEcho, NonEchoIsNotAnswered) {
  Packet tcp = BuildPacket(PacketSpec{});
  EXPECT_FALSE(BuildEchoReply(tcp));
}

TEST_F(IcmpPathTest, RouterAnswersPing) {
  auto router = MakeRouter();
  router->Start();
  // Ping 10.255.0.1 (the router) from a source behind port 5.
  router->port(0).InjectFromWire(
      BuildEchoRequest(SrcIpForPort(0, 1), router->config().router_ip, 42));
  router->RunForMs(3.0);
  ASSERT_EQ(back_to_source_, 1u);
  auto ip = Ipv4Header::Parse(last_->l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoIcmp);
  EXPECT_EQ(ip->src, router->config().router_ip);
  auto icmp = IcmpHeader::Parse(last_->l4());
  ASSERT_TRUE(icmp);
  EXPECT_EQ(icmp->type, kIcmpEchoReply);
  EXPECT_EQ(icmp->rest >> 16, 42u);
}

TEST_F(IcmpPathTest, NonEchoToRouterIsAbsorbed) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.src_ip = SrcIpForPort(0, 1);
  spec.dst_ip = router->config().router_ip;
  spec.protocol = kIpProtoUdp;
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(3.0);
  EXPECT_EQ(back_to_source_, 0u);
  EXPECT_EQ(router->stats().forwarded, 0u);
  EXPECT_EQ(router->stats().sa_local_processed, 1u);
}

}  // namespace
}  // namespace npr
