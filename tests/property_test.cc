// Property-based tests over randomized inputs:
//   * the verifier's worst case is a sound upper bound on any dynamic run
//     (the property admission control's safety rests on);
//   * repeated incremental TTL updates always agree with a full recompute;
//   * PacketQueue behaves exactly like a bounded FIFO reference model.

#include <gtest/gtest.h>

#include <deque>

#include "src/core/packet_queue.h"
#include "src/ixp/hash_unit.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

// Generates a random *valid* VRP program: straight-line ALU/packet/SRAM/
// hash instructions with occasional forward branches, ending in send.
VrpProgram RandomProgram(Rng& rng, int max_len) {
  VrpProgram program;
  program.name = "random";
  program.flow_state_bytes = 32;
  const int body = static_cast<int>(rng.Range(1, static_cast<uint64_t>(max_len)));
  for (int i = 0; i < body; ++i) {
    VrpInstr in;
    switch (rng.Uniform(10)) {
      case 0:
        in = {VrpOp::kMovI, static_cast<uint8_t>(rng.Uniform(8)), 0,
              static_cast<int32_t>(rng.Uniform(1000))};
        break;
      case 1:
        in = {VrpOp::kAdd, static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<uint8_t>(rng.Uniform(8)), 0};
        break;
      case 2:
        in = {VrpOp::kXor, static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<uint8_t>(rng.Uniform(8)), 0};
        break;
      case 3:
        in = {VrpOp::kLdPkt, static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<uint8_t>(rng.Uniform(16)), 0};
        break;
      case 4:
        in = {VrpOp::kStPkt, static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<uint8_t>(rng.Uniform(16)), 0};
        break;
      case 5:
        in = {VrpOp::kLdSram, static_cast<uint8_t>(rng.Uniform(8)), 0,
              static_cast<int32_t>(rng.Uniform(8) * 4)};
        break;
      case 6:
        in = {VrpOp::kStSram, static_cast<uint8_t>(rng.Uniform(8)), 0,
              static_cast<int32_t>(rng.Uniform(8) * 4)};
        break;
      case 7:
        in = {VrpOp::kHash, static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<uint8_t>(rng.Uniform(8)), 0};
        break;
      case 8: {
        // Forward branch somewhere within the remaining body (+ send).
        const int remaining = body - i;
        in = {static_cast<VrpOp>(static_cast<int>(VrpOp::kBeq) + rng.Uniform(4)),
              static_cast<uint8_t>(rng.Uniform(8)), static_cast<uint8_t>(rng.Uniform(8)),
              static_cast<int32_t>(rng.Range(1, static_cast<uint64_t>(remaining)))};
        break;
      }
      default:
        in = {VrpOp::kAddI, static_cast<uint8_t>(rng.Uniform(8)), 0,
              static_cast<int32_t>(rng.Uniform(100))};
        break;
    }
    program.code.push_back(in);
  }
  program.code.push_back(VrpInstr{VrpOp::kSend, 0, 0, 0});
  return program;
}

TEST(Property, VerifierWorstCaseBoundsEveryDynamicRun) {
  Rng rng(0xabcdef12);
  BackingStore sram("sram", 4096);
  HashUnit hash;
  VrpInterpreter interp(sram, hash);
  int verified = 0;
  for (int trial = 0; trial < 200; ++trial) {
    VrpProgram program = RandomProgram(rng, 40);
    auto v = VerifyProgram(program);
    ASSERT_TRUE(v.ok) << Disassemble(program);
    ++verified;
    // Several packets with random contents: metered cost never exceeds the
    // static worst case in any dimension.
    for (int run = 0; run < 5; ++run) {
      std::array<uint8_t, 64> mp;
      for (auto& b : mp) {
        b = static_cast<uint8_t>(rng.Next());
      }
      auto out = interp.Run(program, mp, 128, nullptr);
      ASSERT_NE(out.action, VrpAction::kTrap);
      EXPECT_LE(out.metered.cycles, v.worst_case.cycles) << Disassemble(program);
      EXPECT_LE(out.metered.sram_reads, v.worst_case.sram_reads);
      EXPECT_LE(out.metered.sram_writes, v.worst_case.sram_writes);
      EXPECT_LE(out.metered.hashes, v.worst_case.hashes);
    }
  }
  EXPECT_EQ(verified, 200);
}

TEST(Property, AdmittedProgramsNeverTrapAtRuntime) {
  // If the verifier's worst case fits the budget, enforcement can never
  // fire — the soundness contract between static and dynamic checks.
  Rng rng(0x1357);
  BackingStore sram("sram", 4096);
  HashUnit hash;
  VrpInterpreter interp(sram, hash);
  const VrpBudget budget = VrpBudget::Prototype();
  int admitted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    VrpProgram program = RandomProgram(rng, 60);
    auto v = VerifyProgram(program);
    ASSERT_TRUE(v.ok);
    if (!budget.Admits(v.worst_case)) {
      continue;
    }
    ++admitted;
    std::array<uint8_t, 64> mp;
    for (auto& b : mp) {
      b = static_cast<uint8_t>(rng.Next());
    }
    auto out = interp.Run(program, mp, 256, &budget);
    EXPECT_NE(out.action, VrpAction::kTrap) << Disassemble(program);
  }
  EXPECT_GT(admitted, 100);
}

// Generates an *arbitrary* instruction — most are invalid (out-of-range
// registers, misaligned or out-of-bounds flow-state offsets, backward or
// zero branches, missing terminators). The verifier is the only gate.
VrpInstr ArbitraryInstr(Rng& rng, int remaining) {
  VrpInstr in;
  in.op = static_cast<VrpOp>(rng.Uniform(static_cast<uint64_t>(VrpOp::kNop) + 1));
  in.a = static_cast<uint8_t>(rng.Uniform(9));   // 8 is out of range
  in.b = static_cast<uint8_t>(rng.Uniform(17));  // >= 8 / >= 16 invalid per class
  switch (rng.Uniform(4)) {
    case 0:
      in.imm = static_cast<int32_t>(rng.Uniform(8) * 4);  // aligned, small
      break;
    case 1:
      in.imm = static_cast<int32_t>(rng.Range(1, static_cast<uint64_t>(remaining + 2)));
      break;
    case 2:
      in.imm = static_cast<int32_t>(rng.Uniform(64)) - 8;  // may be negative
      break;
    default:
      in.imm = static_cast<int32_t>(rng.Uniform(1000));
      break;
  }
  return in;
}

TEST(Property, FuzzedProgramsAcceptedByVerifierNeverTrap) {
  // Robustness contract of the extension interface (§4.6): whatever
  // garbage is thrown at install(), anything the verifier accepts runs to
  // completion within its own declared worst case — so admission can trust
  // the static bound and a hostile or buggy forwarder cannot trap in the
  // fast path after admission.
  Rng rng(0xf0221);
  BackingStore sram("sram", 4096);
  HashUnit hash;
  VrpInterpreter interp(sram, hash);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    VrpProgram program;
    program.name = "fuzz";
    program.flow_state_bytes = 32;
    const int body = static_cast<int>(rng.Range(1, 5));
    for (int i = 0; i < body; ++i) {
      program.code.push_back(ArbitraryInstr(rng, body - i));
    }
    if (rng.Chance(0.85)) {
      program.code.push_back(VrpInstr{VrpOp::kSend, 0, 0, 0});
    }
    const auto v = VerifyProgram(program);
    if (!v.ok) {
      ++rejected;
      continue;
    }
    ++accepted;
    // The program's own worst case, declared as a hard runtime budget: the
    // interpreter's enforcement must never fire.
    const VrpBudget declared{v.worst_case.cycles, v.worst_case.sram_transfers(),
                             v.worst_case.hashes, 650};
    for (int run = 0; run < 4; ++run) {
      std::array<uint8_t, 64> mp;
      for (auto& byte : mp) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      const auto out = interp.Run(program, mp, 256, &declared);
      ASSERT_NE(out.action, VrpAction::kTrap) << Disassemble(program);
      EXPECT_LE(out.metered.cycles, v.worst_case.cycles) << Disassemble(program);
      EXPECT_LE(out.metered.sram_transfers(), v.worst_case.sram_transfers());
      EXPECT_LE(out.metered.hashes, v.worst_case.hashes);
    }
  }
  // The generator must actually exercise both sides of the gate.
  EXPECT_GT(accepted, 50);
  EXPECT_GT(rejected, 50);
}

TEST(Property, IncrementalTtlAgreesWithRecomputeAlways) {
  Rng rng(0x2468);
  for (int trial = 0; trial < 300; ++trial) {
    Ipv4Header h;
    h.ttl = static_cast<uint8_t>(rng.Range(2, 255));
    h.protocol = static_cast<uint8_t>(rng.Uniform(256));
    h.src = static_cast<uint32_t>(rng.Next());
    h.dst = static_cast<uint32_t>(rng.Next());
    h.identification = static_cast<uint16_t>(rng.Next());
    h.total_length = static_cast<uint16_t>(rng.Range(20, 1500));
    uint8_t buf[20];
    h.Write(buf);
    // Decrement all the way down; the header must validate at every step.
    while (buf[8] > 1) {
      ASSERT_TRUE(DecrementTtlInPlace(buf));
      ASSERT_TRUE(Ipv4Header::Validate(buf))
          << "ttl=" << static_cast<int>(buf[8]) << " trial=" << trial;
    }
  }
}

TEST(Property, PacketQueueMatchesReferenceModel) {
  Rng rng(0x9999);
  BackingStore sram("sram", 1 << 16);
  BackingStore scratch("scratch", 64);
  const uint32_t capacity = 16;
  PacketQueue queue(sram, scratch, 0, 0, capacity, 0, 0, 2048);
  std::deque<uint32_t> reference;  // buffer addresses

  for (int op = 0; op < 5000; ++op) {
    if (rng.Chance(0.55)) {
      PacketDescriptor d;
      d.buffer_addr = static_cast<uint32_t>(rng.Uniform(8192)) * 2048;
      d.mp_count = static_cast<uint16_t>(rng.Range(1, 24));
      d.out_port = static_cast<uint8_t>(rng.Uniform(8));
      const bool pushed = queue.Push(d);
      if (reference.size() < capacity) {
        ASSERT_TRUE(pushed) << "op " << op;
        reference.push_back(d.buffer_addr);
      } else {
        ASSERT_FALSE(pushed) << "op " << op;
      }
    } else {
      auto got = queue.Pop();
      if (reference.empty()) {
        ASSERT_FALSE(got.has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << op;
        EXPECT_EQ(got->buffer_addr, reference.front());
        reference.pop_front();
      }
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
}

}  // namespace
}  // namespace npr
