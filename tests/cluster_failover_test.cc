// Cluster-level fault tolerance: OSPF-lite reconvergence after link and
// node failures, warm-restart readmission, federated health escalation,
// per-node seed independence, deterministic replay, and the cluster-scope
// invariant sweep.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/cluster/cluster_control.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/health/cluster_health.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

// --- satellite (b): per-node seed derivation and draw isolation ---

TEST(FaultPlanSeeds, PerNodeDerivationIsDeterministicAndIndependent) {
  const uint64_t base = 0x5eed1ULL;
  // Pure function of (base, node): same inputs, same seed.
  EXPECT_EQ(FaultPlan::DeriveNodeSeed(base, 3), FaultPlan::DeriveNodeSeed(base, 3));
  // Distinct nodes get distinct streams; adjacent nodes are not `seed + k`.
  std::set<uint64_t> seeds;
  for (int k = 0; k < 16; ++k) {
    seeds.insert(FaultPlan::DeriveNodeSeed(base, k));
  }
  EXPECT_EQ(seeds.size(), 16u);
  EXPECT_NE(FaultPlan::DeriveNodeSeed(base, 1) - FaultPlan::DeriveNodeSeed(base, 0),
            FaultPlan::DeriveNodeSeed(base, 2) - FaultPlan::DeriveNodeSeed(base, 1));
  // The base seed itself avalanches too.
  EXPECT_NE(FaultPlan::DeriveNodeSeed(0x5eed1ULL, 0), FaultPlan::DeriveNodeSeed(0x5eed2ULL, 0));
}

TEST(FaultPlanSeeds, DisabledClusterClassesDrawNoRandomness) {
  // Two injectors under the identical plan; the second one is also polled
  // for the *disabled* cluster classes between fabric draws. If disabled
  // hooks consumed Rng draws, the fabric-loss sequences would diverge.
  FaultPlan plan;
  plan.seed = 0x5eed1ULL;
  plan.fabric_loss_p = 0.5;

  EventQueue engine;
  FaultInjector plain(plan, engine);
  FaultInjector polled(plan, engine);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(polled.LinkDownPs(), 0) << "link flap disabled in this plan";
    EXPECT_EQ(polled.NodeCrashPs(), 0) << "node crash disabled in this plan";
    ASSERT_EQ(plain.ShouldDropFabricFrame(), polled.ShouldDropFabricFrame()) << "draw " << i;
  }
}

// --- reconvergence scenarios ---

class ClusterFailoverTest : public ::testing::Test {
 protected:
  void Build(int nodes, int planes, FaultPlan plan = FaultPlan{}, bool with_health = true) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.internal_links = planes;
    cfg.node_config.fault_plan = plan;
    cluster_ = std::make_unique<ClusterRouter>(std::move(cfg));
    control_ = std::make_unique<ClusterControlPlane>(*cluster_);
    control_->Start();
    if (with_health) {
      health_ = std::make_unique<ClusterHealthMonitor>(*cluster_, *control_);
    }
    for (int k = 0; k < cluster_->num_nodes(); ++k) {
      for (int p = 0; p < cluster_->external_ports_per_node(); ++p) {
        cluster_->node(k).port(p).SetSink(
            [this, k, p](Packet&&) { deliveries_[{k, p}] += 1; });
      }
    }
    cluster_->Start();
  }

  // Injects one probe at `from`'s external port 0 toward prefix 10.<g>/16.
  // The source sits inside `from`'s own port-0 prefix so an ICMP error for
  // an unreachable destination has a route back.
  void Probe(int from, int g) {
    PacketSpec spec;
    spec.dst_ip = cluster_->ExternalDstIp(g, 1);
    spec.src_ip = cluster_->ExternalDstIp(from * cluster_->external_ports_per_node(), 200);
    cluster_->node(from).port(0).InjectFromWire(BuildPacket(spec));
  }

  uint64_t Delivered(int node, int port) { return deliveries_[{node, port}]; }

  bool HasRoute(int node, int g) {
    return cluster_->node(node).route_table().Lookup(cluster_->ExternalDstIp(g, 1)).entry
        .has_value();
  }

  std::unique_ptr<ClusterRouter> cluster_;
  std::unique_ptr<ClusterControlPlane> control_;
  std::unique_ptr<ClusterHealthMonitor> health_;
  std::map<std::pair<int, int>, uint64_t> deliveries_;
};

TEST_F(ClusterFailoverTest, NodeCrashWithdrawsPrefixesAndKeepsSurvivorsReachable) {
  Build(4, 1);
  cluster_->RunForMs(1.0);
  ASSERT_TRUE(HasRoute(0, 3 * 7 + 2)) << "victim prefixes installed before the crash";

  control_->ApplyNodeCrash(3, FaultInjector::kForever);
  cluster_->RunForMs(2.0);

  // Survivors detected the crash (federated health beat the dead-interval),
  // re-ran SPF, and withdrew every prefix behind node 3.
  ASSERT_FALSE(control_->records().empty());
  const ReconvergenceRecord& rec = control_->records().front();
  EXPECT_EQ(rec.kind, ReconvergenceRecord::Kind::kNodeDown);
  EXPECT_EQ(rec.node, 3);
  ASSERT_TRUE(rec.closed());
  EXPECT_LT(rec.mttd_ps(), 350 * kPsPerUs) << "escalation must beat the dead-interval";
  EXPECT_GE(health_->suspects_raised(), 1u);
  EXPECT_TRUE(health_->node_degraded(3));
  for (int k = 0; k < 3; ++k) {
    EXPECT_FALSE(HasRoute(k, 3 * 7 + 2)) << "node " << k << " still routes to the dead node";
  }

  // Surviving prefixes stay reachable; the dead node's prefixes shed as
  // ICMP unreachables at the ingress node instead of blackholing.
  Probe(0, 1 * 7 + 3);  // node 1, port 3
  Probe(0, 3 * 7 + 2);  // dead node 3
  cluster_->RunForMs(2.0);
  EXPECT_EQ(Delivered(1, 3), 1u);
  EXPECT_EQ(Delivered(3, 2), 0u);
  EXPECT_GE(cluster_->node(0).stats().icmp_originated, 1u);

  const InvariantReport report = RouterInvariants::CheckCluster(*cluster_);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST_F(ClusterFailoverTest, LinkDownReroutesOverSurvivingPlane) {
  Build(2, 2);
  cluster_->RunForMs(1.0);

  const uint64_t plane1_before = cluster_->fabric(1).forwarded();
  control_->ApplyLinkDown(0, 0, FaultInjector::kForever);
  cluster_->RunForMs(2.0);

  ASSERT_FALSE(control_->records().empty());
  const ReconvergenceRecord& rec = control_->records().front();
  EXPECT_EQ(rec.kind, ReconvergenceRecord::Kind::kLinkDown);
  EXPECT_EQ(rec.node, 0);
  EXPECT_EQ(rec.plane, 0);
  ASSERT_TRUE(rec.closed());

  // Cross-node traffic survives the dead plane by riding the other one.
  // (With 2 planes each node has 6 external ports, so node 1's port 3
  // serves prefix 10.<ppn + 3>/16.)
  Probe(0, cluster_->external_ports_per_node() + 3);
  cluster_->RunForMs(2.0);
  EXPECT_EQ(Delivered(1, 3), 1u);
  EXPECT_GT(cluster_->fabric(1).forwarded(), plane1_before);

  const InvariantReport report = RouterInvariants::CheckCluster(*cluster_);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST_F(ClusterFailoverTest, WarmRestartReadmissionRestoresVictimFib) {
  Build(4, 1);
  cluster_->RunForMs(1.0);
  control_->ApplyNodeCrash(2, 1 * kPsPerMs);
  cluster_->RunForMs(4.0);

  bool saw_down = false, saw_readmit = false;
  for (const ReconvergenceRecord& rec : control_->records()) {
    if (rec.kind == ReconvergenceRecord::Kind::kNodeDown && rec.node == 2) {
      saw_down = true;
      EXPECT_TRUE(rec.closed());
    }
    if (rec.kind == ReconvergenceRecord::Kind::kNodeReadmit && rec.node == 2) {
      saw_readmit = true;
      EXPECT_TRUE(rec.closed());
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_readmit);
  EXPECT_FALSE(health_->node_degraded(2));

  // Survivors reach the readmitted node again, and its own FIB came back
  // through database resync (it can reach remote prefixes).
  Probe(0, 2 * 7 + 4);
  Probe(2, 0 * 7 + 5);
  cluster_->RunForMs(2.0);
  EXPECT_EQ(Delivered(2, 4), 1u);
  EXPECT_EQ(Delivered(0, 5), 1u);

  // The probe-driven failover episode closed and a readmit episode exists.
  bool health_readmit = false;
  for (const RecoveryEvent& ev : health_->events()) {
    if (ev.kind == RecoveryEvent::Kind::kNodeReadmit) {
      health_readmit = true;
    }
    EXPECT_NE(ev.recovered_at, 0) << "open health episode after full recovery";
  }
  EXPECT_TRUE(health_readmit);
}

TEST_F(ClusterFailoverTest, SuspectNodeFalsePositiveSelfCorrects) {
  Build(2, 1);
  cluster_->RunForMs(1.0);
  ASSERT_TRUE(HasRoute(0, 1 * 7 + 3));

  // A wrong suspicion tears the adjacencies down; the very next hello from
  // the (alive) node brings them — and the routes — back.
  control_->SuspectNode(1);
  EXPECT_FALSE(HasRoute(0, 1 * 7 + 3));
  cluster_->RunForMs(1.0);
  EXPECT_TRUE(HasRoute(0, 1 * 7 + 3));

  Probe(0, 1 * 7 + 3);
  cluster_->RunForMs(2.0);
  EXPECT_EQ(Delivered(1, 3), 1u);
}

// --- deterministic replay ---

TEST(ClusterChaosReplay, SameSeedProducesBitIdenticalTrace) {
  auto run = [](uint64_t seed) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.internal_links = 2;
    cfg.node_config.fault_plan = FaultPlan::ClusterChaos(seed);
    ClusterRouter cluster(std::move(cfg));
    ClusterControlPlane control(cluster);
    control.Start();
    cluster.Start();
    cluster.RunForMs(30.0);
    std::ostringstream out;
    for (const std::string& line : control.trace()) {
      out << line << '\n';
    }
    return out.str();
  };
  const std::string a = run(0xfa017ULL);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run(0xfa017ULL)) << "same seed must replay bit-identically";
  EXPECT_NE(a, run(0x5eed1ULL)) << "different seed must explore a different schedule";
}

// --- cluster-scope invariants ---

TEST(ClusterInvariants, BlackholedFrameIsAViolationNotADrop) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  ClusterRouter cluster(std::move(cfg));
  cluster.InstallClusterRoutes();
  cluster.Start();
  EXPECT_TRUE(RouterInvariants::CheckCluster(cluster).ok());

  // A frame addressed to a MAC nobody answers on means some node's FIB is
  // stale: CheckCluster must flag the transmitting member.
  PacketSpec spec;
  spec.eth_dst = ClusterNodeMac(7);
  cluster.fabric().SendFrom(ClusterNodeMac(0), BuildPacket(spec));
  const InvariantReport report = RouterInvariants::CheckCluster(cluster);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("blackhole"), std::string::npos);
}

}  // namespace
}  // namespace npr
