// Fault-injection subsystem: per-fault-class graceful degradation, router-wide
// invariants under every shipped plan, and seed-deterministic replay.

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "src/core/router.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/health/health_monitor.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

// Everything observable about a faulted run. Two runs of the same (plan,
// workload) pair must compare equal, member for member.
struct FaultRunOutcome {
  uint64_t ingress = 0;
  uint64_t forwarded = 0;
  uint64_t dropped_invalid = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t crc_dropped = 0;
  uint64_t corrupt_drops = 0;
  std::array<uint64_t, kFaultKindCount> injected{};
  bool invariants_ok = false;
  std::string report;
  SimTime final_time = 0;

  friend bool operator==(const FaultRunOutcome&, const FaultRunOutcome&) = default;
};

FaultRunOutcome RunUnderFaults(const FaultPlan& plan, double traffic_ms = 8.0,
                               double run_ms = 13.0) {
  RouterConfig cfg;
  cfg.fault_plan = plan;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(500 + p)));
    gens.back()->Start(static_cast<SimTime>(traffic_ms * kPsPerMs));
  }
  router.RunForMs(run_ms);

  FaultRunOutcome out;
  const RouterStats& stats = router.stats();
  out.ingress = stats.input.packets;
  out.forwarded = stats.forwarded;
  out.dropped_invalid = stats.dropped_invalid;
  out.crashes = stats.context_crashes;
  out.restarts = stats.context_restarts;
  for (int p = 0; p < router.num_ports(); ++p) {
    out.crc_dropped += router.port(p).rx_crc_dropped();
  }
  for (const auto& q : router.queues().all_queues()) {
    out.corrupt_drops += q->corrupt_drops();
  }
  out.corrupt_drops += router.sa_local_queue().corrupt_drops();
  out.corrupt_drops += router.sa_pentium_queue().corrupt_drops();
  if (FaultInjector* fi = router.fault_injector()) {
    for (size_t k = 0; k < kFaultKindCount; ++k) {
      out.injected[k] = fi->injected(static_cast<FaultKind>(k));
    }
  }
  const InvariantReport report = RouterInvariants::CheckAll(router);
  out.invariants_ok = report.ok();
  out.report = report.ToString();
  out.final_time = router.engine().now();
  return out;
}

uint64_t Injected(const FaultRunOutcome& out, FaultKind kind) {
  return out.injected[static_cast<size_t>(kind)];
}

TEST(FaultInjection, NoFaultPlanMeansNoInjector) {
  // The default plan injects nothing, so the router must not even build an
  // injector — the zero-fault path stays hook-free.
  EXPECT_FALSE(FaultPlan{}.Any());
  RouterConfig cfg;
  Router router(std::move(cfg));
  EXPECT_EQ(router.fault_injector(), nullptr);

  RouterConfig faulty;
  faulty.fault_plan = FaultPlan::Chaos();
  Router chaos_router(std::move(faulty));
  EXPECT_NE(chaos_router.fault_injector(), nullptr);
}

TEST(FaultInjection, MemoryLatencySpikesDegradeGracefully) {
  FaultPlan plan;
  plan.mem_latency_spike_p = 2e-4;
  const FaultRunOutcome out = RunUnderFaults(plan);
  EXPECT_GT(Injected(out, FaultKind::kMemLatencySpike), 0u);
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, MemoryBitFlipsAreContained) {
  // Read-disturbance flips corrupt payloads in flight, never router state:
  // the pipeline keeps forwarding and every packet stays accounted for.
  FaultPlan plan;
  plan.mem_bit_flip_p = 1e-4;
  const FaultRunOutcome out = RunUnderFaults(plan);
  EXPECT_GT(Injected(out, FaultKind::kMemBitFlip), 0u);
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, FrameFaultsAreCountedDrops) {
  const FaultRunOutcome out = RunUnderFaults(FaultPlan::FrameFaults());
  EXPECT_GT(Injected(out, FaultKind::kFrameCrcDrop), 0u);
  EXPECT_GT(Injected(out, FaultKind::kFrameCorrupt), 0u);
  EXPECT_GT(out.crc_dropped, 0u);
  // Header corruption must surface as counted validation drops, not as
  // silently-forwarded garbage.
  EXPECT_GT(out.dropped_invalid, 0u);
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, ContextCrashesRestartAndRecover) {
  const FaultRunOutcome out = RunUnderFaults(FaultPlan::ContextCrashes());
  EXPECT_GT(out.crashes, 0u);
  EXPECT_GT(out.restarts, 0u);
  EXPECT_LE(out.restarts, out.crashes);  // the last crash may still be down
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, DroppedTokenOffersRecover) {
  const FaultRunOutcome out = RunUnderFaults(FaultPlan::TokenFaults());
  EXPECT_GT(Injected(out, FaultKind::kTokenDrop), 0u);
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, DescriptorCorruptionIsDetectedNeverFollowed) {
  // A corrupted descriptor word must be caught by the sidecar cross-check
  // and discarded as a counted drop — following it would stream garbage
  // DRAM out a port.
  const FaultRunOutcome out = RunUnderFaults(FaultPlan::DescriptorFaults());
  EXPECT_GT(Injected(out, FaultKind::kDescCorrupt), 0u);
  EXPECT_GT(out.corrupt_drops, 0u);
  EXPECT_GT(out.forwarded, 1000u);
  EXPECT_TRUE(out.invariants_ok) << out.report;
}

TEST(FaultInjection, ChaosSameSeedIsBitIdentical) {
  // Every fault class at once, twice, same seed: bit-identical stats down
  // to the per-kind injection counts and the final simulated instant.
  const FaultRunOutcome a = RunUnderFaults(FaultPlan::Chaos(7));
  const FaultRunOutcome b = RunUnderFaults(FaultPlan::Chaos(7));
  EXPECT_EQ(a, b);
  EXPECT_GT(a.forwarded, 1000u);
  EXPECT_TRUE(a.invariants_ok) << a.report;
}

TEST(FaultInjection, PoolLedgerBalancesUnderChaosPlans) {
  // Frame faults drop, truncate, and corrupt pooled frames on every path;
  // crashes tear contexts down mid-packet. Whatever happens, every acquired
  // frame buffer must be back in its pool (or held by an accounted holder)
  // at the end — RouterInvariants::CheckAll includes the pool ledger, but
  // assert it explicitly here so a ledger regression names itself.
  const struct {
    const char* name;
    FaultPlan plan;
  } plans[] = {
      {"chaos", FaultPlan::Chaos(29)},
      {"recovery_chaos", FaultPlan::RecoveryChaos(31)},
      {"overload_chaos", FaultPlan::OverloadChaos(37)},
  };
  for (const auto& p : plans) {
    SCOPED_TRACE(p.name);
    RouterConfig cfg;
    cfg.fault_plan = p.plan;
    Router router(std::move(cfg));
    for (int port = 0; port < router.num_ports(); ++port) {
      router.AddRoute("10." + std::to_string(port) + ".0.0/16", static_cast<uint8_t>(port));
    }
    router.WarmRouteCache(32);
    router.Start();
    // The recovery/overload plans inject faults (lost tokens, wedged
    // contexts) that stay broken without the health monitor, and this test
    // is about the pool ledger *through* recovery, not about bare survival.
    HealthMonitor health(router);
    std::vector<std::unique_ptr<TrafficGen>> gens;
    for (int port = 0; port < 4; ++port) {
      TrafficSpec spec;
      spec.rate_pps = 130'000;
      spec.exceptional_fraction = 0.02;  // exercise the StrongARM detour too
      spec.dst_spread = 16;
      gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(port), spec,
                                                  static_cast<uint64_t>(900 + port)));
      gens.back()->Start(6 * kPsPerMs);
    }
    router.RunForMs(10.0);
    for (int port = 0; port < router.num_ports(); ++port) {
      const MacPort& mac = router.port(port);
      EXPECT_EQ(mac.pool().outstanding(), mac.pooled_in_flight()) << "port " << port;
    }
    EXPECT_EQ(router.packet_pool().outstanding(),
              static_cast<uint64_t>(router.bridge().pooled_live()));
    const InvariantReport report = RouterInvariants::CheckAll(router);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST(FaultInjection, EveryShippedFaultPlanIsDeterministicAndLive) {
  const struct {
    const char* name;
    FaultPlan plan;
  } plans[] = {
      {"memory", FaultPlan::MemoryFaults()},
      {"frame", FaultPlan::FrameFaults()},
      {"crash", FaultPlan::ContextCrashes()},
      {"token", FaultPlan::TokenFaults()},
      {"descriptor", FaultPlan::DescriptorFaults()},
      {"chaos", FaultPlan::Chaos()},
  };
  for (const auto& p : plans) {
    SCOPED_TRACE(p.name);
    const FaultRunOutcome a = RunUnderFaults(p.plan, 4.0, 7.0);
    const FaultRunOutcome b = RunUnderFaults(p.plan, 4.0, 7.0);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.forwarded, 0u);
    EXPECT_TRUE(a.invariants_ok) << a.report;
  }
}

}  // namespace
}  // namespace npr
