// End-to-end system properties: determinism of the simulation, realistic
// packet-size mixes, Poisson burst tolerance, and long-run stability.

#include <gtest/gtest.h>

#include "src/core/router.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/health_monitor.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

struct RunSummary {
  uint64_t forwarded = 0;
  uint64_t exceptional = 0;
  uint64_t drops = 0;
  uint64_t input_reg_cycles = 0;
  SimTime final_time = 0;

  friend bool operator==(const RunSummary&, const RunSummary&) = default;
};

RunSummary OneRun(uint64_t seed) {
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 100'000;
    spec.poisson = true;
    spec.exceptional_fraction = 0.01;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                seed + static_cast<uint64_t>(p)));
    gens.back()->Start(8 * kPsPerMs);
  }
  router.RunForMs(10.0);
  EXPECT_TRUE(RouterInvariants::CheckAll(router).ok())
      << RouterInvariants::CheckAll(router).ToString();
  RunSummary s;
  s.forwarded = router.stats().forwarded;
  s.exceptional = router.stats().exceptional;
  s.drops = router.stats().dropped_queue_full;
  s.input_reg_cycles = router.stats().input.reg_cycles;
  s.final_time = router.engine().now();
  return s;
}

TEST(EndToEnd, SimulationIsDeterministic) {
  // The whole point of a DES with stable event ordering: identical seeds
  // give bit-identical results, down to cycle counts.
  const RunSummary a = OneRun(12345);
  const RunSummary b = OneRun(12345);
  EXPECT_EQ(a, b);
  const RunSummary c = OneRun(54321);
  EXPECT_NE(a.forwarded, 0u);
  EXPECT_NE(a, c) << "different seeds should differ somewhere";
}

TEST(EndToEnd, TrimodalSizeMixAtLineRateNoLoss) {
  // The classic Internet mix: 64 B (acks), ~576 B (legacy MTU), 1518 B
  // (full frames). Offered at each port's line rate *in bits*, the router
  // must carry it without loss — larger packets cost proportionally more
  // wire time but only linearly more MPs (§3.7: forwarding scales linearly
  // on the MicroEngines).
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  std::map<size_t, uint64_t> delivered_by_size;
  for (int p = 0; p < router.num_ports(); ++p) {
    router.port(p).SetSink(
        [&delivered_by_size](Packet&& packet) { delivered_by_size[packet.size()] += 1; });
  }
  router.Start();

  std::vector<std::unique_ptr<TrafficGen>> gens;
  const struct {
    size_t bytes;
    double pps;
  } mix[] = {{64, 40'000}, {576, 10'000}, {1518, 4'000}};
  // Aggregate ~93 Mbps per port: just under the 100 Mbps line.
  for (int p = 0; p < 4; ++p) {
    for (const auto& m : mix) {
      TrafficSpec spec;
      spec.rate_pps = m.pps;
      spec.frame_bytes = m.bytes;
      spec.poisson = true;
      spec.dst_spread = 16;
      gens.push_back(std::make_unique<TrafficGen>(
          router.engine(), router.port(p), spec,
          static_cast<uint64_t>(p * 10 + static_cast<int>(m.bytes))));
      gens.back()->Start(10 * kPsPerMs);
    }
  }
  router.RunForMs(14.0);

  EXPECT_EQ(router.stats().dropped_queue_full, 0u);
  EXPECT_EQ(router.stats().lost_overwritten, 0u);
  EXPECT_GT(delivered_by_size[64], 1000u);
  EXPECT_GT(delivered_by_size[576], 250u);
  EXPECT_GT(delivered_by_size[1518], 100u);
  // Multi-MP accounting: MPs processed must exceed packets processed.
  EXPECT_GT(router.stats().input.mps, router.stats().input.packets);
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  EXPECT_TRUE(inv.conservation_checked);
}

TEST(EndToEnd, LongRunWithMonitorsStaysStable) {
  // 100 ms of line-rate traffic with the monitoring suite: no drops, no
  // buffer laps, counters strictly increasing.
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);
  for (auto builder : {BuildSynMonitor, BuildAckMonitor}) {
    VrpProgram program = builder();
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    ASSERT_TRUE(router.Install(req).ok);
  }
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    spec.protocol = kIpProtoTcp;
    spec.syn_fraction = 0.01;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 77)));
    gens.back()->Start(100 * kPsPerMs);
  }
  uint64_t last_forwarded = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    router.RunForMs(10.0);
    EXPECT_GT(router.stats().forwarded, last_forwarded) << "epoch " << epoch;
    last_forwarded = router.stats().forwarded;
  }
  EXPECT_GT(router.stats().forwarded, 110'000u);  // 1.128 Mpps x 100 ms = ~112.8K
  EXPECT_EQ(router.stats().dropped_queue_full, 0u);
  EXPECT_EQ(router.stats().lost_overwritten, 0u);
  EXPECT_EQ(router.stats().vrp_traps, 0u);
  router.RunForMs(2.0);  // drain in-flight packets for an exact balance
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  EXPECT_TRUE(inv.conservation_checked);
}

TEST(EndToEnd, SelfHealingLongRunUnderRecoveryChaos) {
  // 60 ms of line-rate traffic with the full recovery-chaos plan and the
  // health monitor attached: every fault class fires, every one recovers,
  // forwarding never permanently stalls, and the run closes with the
  // invariants intact. Prints the health counter summary for the log.
  RouterConfig cfg;
  cfg.fault_plan = FaultPlan::RecoveryChaos();
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  router.Start();
  HealthMonitor health(router);
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 900)));
    gens.back()->Start(55 * kPsPerMs);
  }
  uint64_t last_forwarded = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    router.RunForMs(10.0);
    EXPECT_GT(router.stats().forwarded, last_forwarded)
        << "permanent stall in epoch " << epoch;
    last_forwarded = router.stats().forwarded;
  }
  ASSERT_NE(router.fault_injector(), nullptr);
  router.fault_injector()->set_armed(false);  // end the burst, let it heal
  router.RunForMs(10.0);
  EXPECT_GT(router.stats().forwarded, last_forwarded) << "no recovery after disarm";
  EXPECT_GT(router.stats().watchdog_fired, 0u);
  EXPECT_FALSE(health.events().empty());
  std::printf("[ e2e ] %s\n", HealthSummary(router.stats()).c_str());
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(EndToEnd, IdPreservationUnderLoad) {
  // Every delivered packet's id must be one we injected — no duplication,
  // no fabrication — across 10k packets.
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  std::set<uint32_t> seen;
  uint64_t duplicates = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    router.port(p).SetSink([&](Packet&& packet) {
      if (!seen.insert(packet.id()).second) {
        ++duplicates;
      }
    });
  }
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 400)));
    gens.back()->Start(20 * kPsPerMs);
  }
  router.RunForMs(24.0);
  EXPECT_EQ(duplicates, 0u);
  EXPECT_GT(seen.size(), 9000u);
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(EndToEnd, PooledFramesSurviveTheSlowPathDetour) {
  // Exceptional packets (IP options) detour through the StrongARM bridge,
  // which materializes them from DRAM into pooled frame buffers and hands
  // refcounted copies through queues, the echo path, and re-forwarding.
  // After the run every pooled buffer must be back home: the bridge holds
  // nothing, the router pool is drained, and each port's pool balances
  // against its in-flight accounting.
  RouterConfig cfg;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(32);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 4; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 80'000;
    spec.exceptional_fraction = 0.25;  // heavy slow-path pressure
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 700)));
    gens.back()->Start(8 * kPsPerMs);
  }
  router.RunForMs(14.0);
  EXPECT_GT(router.stats().exceptional, 500u);
  EXPECT_EQ(router.bridge().pooled_live(), 0);
  EXPECT_EQ(router.packet_pool().outstanding(), 0u);
  for (int p = 0; p < router.num_ports(); ++p) {
    EXPECT_EQ(router.port(p).pool().outstanding(), router.port(p).pooled_in_flight())
        << "port " << p;
  }
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

}  // namespace
}  // namespace npr
