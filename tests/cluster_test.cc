// Tests for the multi-chassis router (§6 future work): switch fabric
// delivery, cluster route plan, cross-node forwarding semantics, isolation.

#include <gtest/gtest.h>

#include "src/cluster/cluster_router.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

TEST(SwitchFabric, DeliversByDestinationMac) {
  EventQueue engine;
  MacPort a(engine, 0, 1e9);
  MacPort b(engine, 1, 1e9);
  SwitchFabric fabric;
  fabric.Attach(ClusterNodeMac(0), a);
  fabric.Attach(ClusterNodeMac(1), b);

  PacketSpec spec;
  spec.eth_dst = ClusterNodeMac(1);
  Packet p = BuildPacket(spec);
  // Frames transmitted by member A enter the fabric via its sink; simulate
  // one by handing the packet straight to A's sink path: reassemble via Tx.
  for (const auto& mp : SegmentIntoMps(p, 0)) {
    a.TxAccept(mp);
  }
  engine.RunAll();
  EXPECT_EQ(fabric.forwarded(), 1u);
  EXPECT_TRUE(b.RxReady());
}

TEST(SwitchFabric, UnknownMacCounted) {
  EventQueue engine;
  MacPort a(engine, 0, 1e9);
  SwitchFabric fabric;
  fabric.Attach(ClusterNodeMac(0), a);
  PacketSpec spec;
  spec.eth_dst = ClusterNodeMac(7);  // nobody home
  Packet p = BuildPacket(spec);
  for (const auto& mp : SegmentIntoMps(p, 0)) {
    a.TxAccept(mp);
  }
  engine.RunAll();
  EXPECT_EQ(fabric.forwarded(), 0u);
  EXPECT_EQ(fabric.unknown_destination(), 1u);
  // The drop is charged to the transmitting member: a node whose FIB points
  // at a MAC nobody answers on is identifiable, not just a global count.
  EXPECT_EQ(fabric.member_stats(ClusterNodeMac(0)).unknown_dropped, 1u);
  EXPECT_EQ(fabric.member_stats(ClusterNodeMac(7)).unknown_dropped, 0u);
}

TEST(SwitchFabric, GateDropsChargeTransmittingMember) {
  EventQueue engine;
  MacPort a(engine, 0, 1e9);
  MacPort b(engine, 1, 1e9);
  SwitchFabric fabric;
  fabric.Attach(ClusterNodeMac(0), a);
  fabric.Attach(ClusterNodeMac(1), b);
  FabricDrop verdict = FabricDrop::kNone;
  fabric.set_gate([&](const MacAddr&, const MacAddr&) { return verdict; });

  auto send = [&] {
    PacketSpec spec;
    spec.eth_dst = ClusterNodeMac(1);
    Packet p = BuildPacket(spec);
    for (const auto& mp : SegmentIntoMps(p, 0)) {
      a.TxAccept(mp);
    }
    engine.RunAll();
  };
  send();
  verdict = FabricDrop::kLinkDown;
  send();
  verdict = FabricDrop::kNodeDown;
  send();
  verdict = FabricDrop::kInjected;
  send();

  const SwitchFabric::MemberStats ms = fabric.member_stats(ClusterNodeMac(0));
  EXPECT_EQ(ms.forwarded, 1u);
  EXPECT_EQ(ms.link_down_dropped, 1u);
  EXPECT_EQ(ms.node_down_dropped, 1u);
  EXPECT_EQ(ms.injected_dropped, 1u);
  EXPECT_EQ(fabric.forwarded(), 1u);
  EXPECT_EQ(fabric.gate_dropped(), 3u);
  // The receiving member transmitted nothing and is charged nothing.
  EXPECT_EQ(fabric.member_stats(ClusterNodeMac(1)).forwarded, 0u);
}

TEST(SwitchFabric, ControlSinkCrossesTheSameGate) {
  SwitchFabric fabric;
  int got = 0;
  fabric.AttachControlSink(ClusterControlMac(1), [&](Packet&&) { ++got; });

  PacketSpec spec;
  spec.eth_dst = ClusterControlMac(1);
  fabric.SendFrom(ClusterControlMac(0), BuildPacket(spec));
  EXPECT_EQ(got, 1);
  // A down link starves control frames exactly as it starves data.
  fabric.set_gate([](const MacAddr&, const MacAddr&) { return FabricDrop::kLinkDown; });
  fabric.SendFrom(ClusterControlMac(0), BuildPacket(spec));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fabric.member_stats(ClusterControlMac(0)).link_down_dropped, 1u);
  EXPECT_EQ(fabric.member_stats(ClusterControlMac(0)).forwarded, 1u);
}

class ClusterTest : public ::testing::Test {
 protected:
  std::unique_ptr<ClusterRouter> MakeCluster(int nodes = 2) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    auto cluster = std::make_unique<ClusterRouter>(std::move(cfg));
    cluster->InstallClusterRoutes();
    // Sinks on every external port of every node.
    for (int k = 0; k < cluster->num_nodes(); ++k) {
      for (int p = 0; p < cluster->external_ports_per_node(); ++p) {
        cluster->node(k).port(p).SetSink([this, k, p](Packet&& packet) {
          deliveries_[{k, p}] += 1;
          last_ = std::move(packet);
        });
      }
    }
    return cluster;
  }

  std::map<std::pair<int, int>, uint64_t> deliveries_;
  std::optional<Packet> last_;
};

TEST_F(ClusterTest, AddressPlanShape) {
  auto cluster = MakeCluster(4);
  EXPECT_EQ(cluster->internal_port(), 7);
  EXPECT_EQ(cluster->external_ports_per_node(), 7);
  EXPECT_EQ(cluster->num_external_ports(), 28);
  EXPECT_EQ(cluster->LocateExternal(0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(cluster->LocateExternal(9), (std::pair<int, int>{1, 2}));
  EXPECT_EQ(cluster->ExternalCidr(9), "10.9.0.0/16");
  // The internal link runs at 1 Gbps.
  EXPECT_DOUBLE_EQ(cluster->node(0).port(7).bits_per_sec(), 1e9);
}

TEST_F(ClusterTest, LocalTrafficStaysLocal) {
  auto cluster = MakeCluster(2);
  cluster->Start();
  PacketSpec spec;
  spec.dst_ip = cluster->ExternalDstIp(2, 1);  // node 0, port 2
  cluster->node(0).port(0).InjectFromWire(BuildPacket(spec));
  cluster->RunForMs(2.0);
  EXPECT_EQ((deliveries_[{0, 2}]), 1u);
  EXPECT_EQ(cluster->fabric().forwarded(), 0u) << "local traffic must not cross the fabric";
}

TEST_F(ClusterTest, CrossNodeTrafficTraversesFabric) {
  auto cluster = MakeCluster(2);
  cluster->Start();
  PacketSpec spec;
  spec.dst_ip = cluster->ExternalDstIp(10, 1);  // node 1, port 3
  spec.ttl = 64;
  Packet p = BuildPacket(spec);
  p.set_id(4242);
  cluster->node(0).port(0).InjectFromWire(std::move(p));
  cluster->RunForMs(3.0);

  ASSERT_EQ((deliveries_[{1, 3}]), 1u);
  EXPECT_EQ(cluster->fabric().forwarded(), 1u);
  ASSERT_TRUE(last_);
  EXPECT_EQ(last_->id(), 4242u);
  // Two IP hops: TTL decremented twice, checksum still valid at egress.
  auto ip = Ipv4Header::Parse(last_->l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->ttl, 62);
  EXPECT_TRUE(Ipv4Header::Validate(last_->l3()));
  // Egress MACs belong to the egress node's port.
  auto eth = EthernetHeader::Parse(last_->bytes());
  EXPECT_EQ(eth->src, PortMac(3));
}

TEST_F(ClusterTest, AllPairsReachability) {
  auto cluster = MakeCluster(4);
  cluster->Start();
  // One probe from node i's port 0 to every external prefix.
  int sent = 0;
  for (int i = 0; i < 4; ++i) {
    for (int g = 0; g < cluster->num_external_ports(); ++g) {
      PacketSpec spec;
      spec.dst_ip = cluster->ExternalDstIp(g, 2);
      spec.src_ip = SrcIpForPort(static_cast<uint8_t>(i), 1);
      cluster->node(i).port(0).InjectFromWire(BuildPacket(spec));
      ++sent;
    }
  }
  cluster->RunForMs(8.0);
  uint64_t received = 0;
  for (const auto& [where, count] : deliveries_) {
    received += count;
  }
  EXPECT_EQ(received, static_cast<uint64_t>(sent));
  EXPECT_EQ(cluster->TotalDrops(), 0u);
}

TEST_F(ClusterTest, DeadNodeDropsAtFabricAndRecovers) {
  auto cluster = MakeCluster(2);
  cluster->Start();
  cluster->SetNodeUp(1, false);

  PacketSpec spec;
  spec.dst_ip = cluster->ExternalDstIp(10, 1);  // node 1, port 3
  cluster->node(0).port(0).InjectFromWire(BuildPacket(spec));
  cluster->RunForMs(3.0);
  EXPECT_EQ((deliveries_[{1, 3}]), 0u);
  EXPECT_EQ(cluster->fabric().gate_dropped(), 1u);
  EXPECT_EQ(cluster->fabric().member_stats(ClusterNodeMac(0)).node_down_dropped, 1u);

  // Warm restart: the same flow delivers again, nothing lingers down.
  cluster->SetNodeUp(1, true);
  cluster->node(0).port(0).InjectFromWire(BuildPacket(spec));
  cluster->RunForMs(3.0);
  EXPECT_EQ((deliveries_[{1, 3}]), 1u);
}

TEST_F(ClusterTest, DownLinkDropsCountedPerMember) {
  auto cluster = MakeCluster(2);
  cluster->Start();
  cluster->SetLinkUp(0, 0, false);

  PacketSpec spec;
  spec.dst_ip = cluster->ExternalDstIp(10, 1);
  cluster->node(0).port(0).InjectFromWire(BuildPacket(spec));
  cluster->RunForMs(3.0);
  EXPECT_EQ((deliveries_[{1, 3}]), 0u);
  EXPECT_EQ(cluster->fabric().member_stats(ClusterNodeMac(0)).link_down_dropped, 1u);

  cluster->SetLinkUp(0, 0, true);
  cluster->node(0).port(0).InjectFromWire(BuildPacket(spec));
  cluster->RunForMs(3.0);
  EXPECT_EQ((deliveries_[{1, 3}]), 1u);
}

TEST_F(ClusterTest, SustainsExternalLineRatePlusInternalTraffic) {
  // Every node takes line rate on one external port, half of it remote:
  // the internal gigabit link and both pipelines absorb it without loss
  // (the §6 concern: RI capacity must cover the internal link).
  auto cluster = MakeCluster(2);
  cluster->Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int k = 0; k < 2; ++k) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    spec.pattern = TrafficSpec::DstPattern::kSinglePort;
    // Node 0 sends to node 1's prefix 10.8/16 and vice versa -> all remote.
    spec.single_dst_port = static_cast<uint8_t>(k == 0 ? 8 : 1);
    gens.push_back(std::make_unique<TrafficGen>(cluster->engine(), cluster->node(k).port(0),
                                                spec, static_cast<uint64_t>(k + 5)));
    gens.back()->Start(12 * kPsPerMs);
  }
  cluster->RunForMs(2.0);
  cluster->StartMeasurement();
  cluster->RunForMs(8.0);
  uint64_t received = 0;
  for (const auto& [where, count] : deliveries_) {
    received += count;
  }
  EXPECT_GT(received, 2'000u);
  EXPECT_EQ(cluster->TotalDrops(), 0u);
  EXPECT_GT(cluster->fabric().forwarded(), 2'000u);
}

}  // namespace
}  // namespace npr
