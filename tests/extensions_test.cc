// Tests for the extension features beyond the paper's prototype: the
// StrongARM proportional-share scheduler (§4.1's stated plan) and the
// input-side WFQ approximation (§3.4.1's unevaluated idea).

#include <gtest/gtest.h>

#include "src/core/router.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/ixp/hash_unit.h"
#include "src/net/traffic_gen.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

// --- WFQ approximator program semantics ---

class WfqProgram : public ::testing::Test {
 protected:
  WfqProgram() : sram_("sram", 256), interp_(sram_, hash_) {}

  // Runs `n` packets; returns how many were sent to priority 0.
  int HighPriorityCount(uint32_t weight, int n) {
    sram_.WriteU32(0, weight);
    sram_.WriteU32(4, 0);
    auto program = BuildWfqApproximator();
    int high = 0;
    for (int i = 0; i < n; ++i) {
      Packet p = BuildPacket(PacketSpec{});
      auto out = interp_.Run(program, p.bytes().first(64), 0, nullptr);
      EXPECT_EQ(out.action, VrpAction::kSend);
      EXPECT_TRUE(out.queue.has_value()) << "program must always select a queue";
      high += out.queue.value_or(1) == 0;
    }
    return high;
  }

  BackingStore sram_;
  HashUnit hash_;
  VrpInterpreter interp_;
  int high_ = 0;
};

TEST_F(WfqProgram, WeightControlsShareOfFrame) {
  EXPECT_EQ(HighPriorityCount(0, 16), 0);
  EXPECT_EQ(HighPriorityCount(1, 16), 4);   // 1 of every 4
  EXPECT_EQ(HighPriorityCount(2, 16), 8);   // 2 of every 4
  EXPECT_EQ(HighPriorityCount(3, 16), 12);  // 3 of every 4
  EXPECT_EQ(HighPriorityCount(4, 16), 16);  // all
}

TEST_F(WfqProgram, VerifiesWithinBudget) {
  auto program = BuildWfqApproximator();
  auto v = VerifyProgram(program);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(VrpBudget::Prototype().Admits(v.worst_case));
  EXPECT_LE(v.worst_case.cycles, 20u);
}

// --- StrongARM proportional share (§4.1) ---

struct SaShareResult {
  uint64_t pentium_done = 0;
  uint64_t local_done = 0;
};

SaShareResult RunSaShares(bool proportional, double pentium_share, double local_share) {
  RouterConfig cfg;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_strongarm = true;
  cfg.enable_pentium = true;
  cfg.sa_proportional_share = proportional;
  cfg.sa_pentium_share = pentium_share;
  cfg.sa_local_share = local_share;
  // Saturate both StrongARM queues: 30% of traffic to each.
  cfg.synthetic_pentium_fraction = 0.3;
  cfg.synthetic_exceptional_fraction = 0.3;
  cfg.output_contexts_override = 8;
  Router router(std::move(cfg));
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(8);
  // Pentium service: nearly free, so the bridge (not the Pentium) is the
  // bottleneck and the SA's scheduling choice is what shows.
  const int idx =
      router.pe_forwarders().Register(std::make_unique<FixedCostForwarder>("svc", 10));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 100'000;
  (void)router.Install(req);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  const uint64_t pe0 = router.stats().to_pentium;
  const uint64_t sa0 = router.stats().sa_local_processed;
  const uint64_t bridged0 = router.bridge().bridged_to_pentium();
  (void)pe0;
  router.RunForMs(10.0);
  SaShareResult r;
  r.pentium_done = router.bridge().bridged_to_pentium() - bridged0;
  r.local_done = router.stats().sa_local_processed - sa0;
  return r;
}

TEST(SaProportionalShare, StrictPriorityStarvesLocalWork) {
  const auto r = RunSaShares(false, 0, 0);
  ASSERT_GT(r.pentium_done, 1000u);
  // Strict precedence: local work only runs when the Pentium queue is
  // momentarily empty.
  EXPECT_LT(static_cast<double>(r.local_done),
            static_cast<double>(r.pentium_done) * 0.35);
}

TEST(SaProportionalShare, SharesSplitTheStrongArm) {
  const auto even = RunSaShares(true, 1, 1);
  ASSERT_GT(even.pentium_done, 500u);
  ASSERT_GT(even.local_done, 500u);
  const double even_ratio =
      static_cast<double>(even.pentium_done) / static_cast<double>(even.local_done);
  EXPECT_NEAR(even_ratio, 1.0, 0.35) << "1:1 shares should serve both queues evenly";

  const auto skewed = RunSaShares(true, 3, 1);
  const double skewed_ratio =
      static_cast<double>(skewed.pentium_done) / static_cast<double>(skewed.local_done);
  EXPECT_GT(skewed_ratio, even_ratio * 1.5) << "3:1 shares must favor the Pentium queue";
}

}  // namespace
}  // namespace npr
