// Integration tests: the complete router — real packets in, real packets
// out — covering the fast path, the exception paths through the StrongARM
// and Pentium, the install/remove/getdata/setdata interface, the control
// plane, and the robustness properties of Section 4.

#include <gtest/gtest.h>

#include <map>

#include "src/control/ospf_lite.h"
#include "src/core/router.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/control.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

struct Received {
  std::vector<Packet> packets;
  std::map<int, uint64_t> per_port;
};

class RouterTest : public ::testing::Test {
 protected:
  // Builds a real-port router with 10.<p>/16 -> port p routes and sinks
  // capturing egress traffic.
  std::unique_ptr<Router> MakeRouter(RouterConfig cfg = RouterConfig{}) {
    auto router = std::make_unique<Router>(std::move(cfg));
    for (int p = 0; p < router->num_ports(); ++p) {
      router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
      router->port(p).SetSink([this, p](Packet&& packet) {
        received_.per_port[p] += 1;
        if (received_.packets.size() < 4096) {
          received_.packets.push_back(std::move(packet));
        }
      });
    }
    router->SetExceptionHandler(std::make_unique<FullIpForwarder>());
    router->WarmRouteCache(64);
    return router;
  }

  // Structural health check run at the end of a test, after traffic has
  // drained. Conservation is skipped automatically for runs that opened a
  // measurement window.
  static void ExpectInvariants(Router& router) {
    const InvariantReport inv = RouterInvariants::CheckAll(router);
    EXPECT_TRUE(inv.ok()) << inv.ToString();
  }

  Received received_;
};

TEST_F(RouterTest, ForwardsPacketsCorrectly) {
  auto router = MakeRouter();
  router->Start();

  PacketSpec spec;
  spec.dst_ip = DstIpForPort(3, 7);
  spec.src_ip = SrcIpForPort(0, 1);
  spec.ttl = 17;
  spec.protocol = kIpProtoTcp;
  spec.frame_bytes = 64;
  Packet sent = BuildPacket(spec);
  sent.set_id(1001);
  router->port(0).InjectFromWire(std::move(sent));
  router->RunForMs(1.0);

  ASSERT_EQ(received_.per_port[3], 1u) << "packet must leave on the routed port";
  const Packet& got = received_.packets.at(0);
  EXPECT_EQ(got.id(), 1001u);
  EXPECT_EQ(got.size(), 64u);

  // Minimal IP semantics: TTL decremented, checksum still valid, MACs
  // rewritten for the egress link.
  EXPECT_TRUE(Ipv4Header::Validate(got.l3()));
  auto ip = Ipv4Header::Parse(got.l3());
  EXPECT_EQ(ip->ttl, 16);
  EXPECT_EQ(ip->dst, spec.dst_ip);
  auto eth = EthernetHeader::Parse(got.bytes());
  EXPECT_EQ(eth->src, PortMac(3));
  EXPECT_EQ(eth->dst, PortMac(3));  // next hop MAC per route convention
  EXPECT_EQ(router->stats().forwarded, 1u);
  ExpectInvariants(*router);
}

TEST_F(RouterTest, PayloadSurvivesDramRoundTrip) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 5);
  spec.frame_bytes = 300;  // multi-MP
  Packet sent = BuildPacket(spec);
  const std::vector<uint8_t> original(sent.bytes().begin(), sent.bytes().end());
  router->port(1).InjectFromWire(std::move(sent));
  router->RunForMs(1.0);

  ASSERT_EQ(received_.packets.size(), 1u);
  const Packet& got = received_.packets[0];
  ASSERT_EQ(got.size(), original.size());
  // Payload beyond the rewritten headers must be byte-identical.
  for (size_t i = kEthHeaderBytes + kIpv4MinHeaderBytes; i < original.size(); ++i) {
    ASSERT_EQ(got.bytes()[i], original[i]) << "payload corrupted at byte " << i;
  }
  ExpectInvariants(*router);
}

TEST_F(RouterTest, SustainsLineRateWithoutLoss) {
  // §3.5.1: 8 x 141 Kpps of 64-byte packets = 1.128 Mpps, zero loss.
  auto router = MakeRouter();
  router->Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(p), spec,
                                                static_cast<uint64_t>(900 + p)));
    gens.back()->Start(15 * kPsPerMs);
  }
  router->RunForMs(3.0);
  router->StartMeasurement();
  router->RunForMs(10.0);

  EXPECT_NEAR(router->ForwardingRateMpps(), 1.128, 0.03);
  EXPECT_EQ(router->stats().dropped_queue_full, 0u);
  EXPECT_EQ(router->stats().lost_overwritten, 0u);
  uint64_t rx_drops = 0;
  for (int p = 0; p < 8; ++p) {
    rx_drops += router->port(p).rx_dropped();
  }
  EXPECT_EQ(rx_drops, 0u);
  router->RunForMs(4.0);  // drain
  ExpectInvariants(*router);
}

TEST_F(RouterTest, OptionPacketsTakeStrongArmPathAndGetProcessed) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(4, 2);
  spec.ip_options = {0x01, 0x01, 0x01, 0x00};  // no-ops
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(2.0);

  EXPECT_EQ(router->stats().exceptional, 1u);
  EXPECT_EQ(router->stats().sa_local_processed, 1u);
  ASSERT_EQ(received_.per_port[4], 1u) << "exceptional packet still delivered";
  auto ip = Ipv4Header::Parse(received_.packets.at(0).l3());
  EXPECT_EQ(ip->ttl, 63);  // full IP decremented it
  EXPECT_TRUE(Ipv4Header::Validate(received_.packets.at(0).l3()));
  ExpectInvariants(*router);
}

TEST_F(RouterTest, RouteMissResolvesViaSlowPathThenFastPath) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(5, 200);  // routable, outside the warmed set
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(2.0);
  EXPECT_EQ(router->stats().exceptional, 1u);
  EXPECT_EQ(received_.per_port[5], 1u);

  // Second packet to the same destination: the StrongARM warmed the cache,
  // so it must take the fast path.
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(2.0);
  EXPECT_EQ(router->stats().exceptional, 1u) << "second packet should hit the route cache";
  EXPECT_EQ(received_.per_port[5], 2u);
  ExpectInvariants(*router);
}

TEST_F(RouterTest, UnroutablePacketAnsweredWithIcmp) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = 0xc0000001;  // 192.0.0.1: no route
  spec.src_ip = DstIpForPort(4, 9);  // source reachable via port 4
  router->port(0).InjectFromWire(BuildPacket(spec));
  router->RunForMs(2.0);
  // The offending packet is not delivered anywhere; the only forwarded
  // packet is the ICMP destination-unreachable back toward the source.
  EXPECT_EQ(router->stats().icmp_generated, 1u);
  EXPECT_EQ(router->stats().forwarded, 1u);
  ASSERT_EQ(received_.per_port[4], 1u);
  auto ip = Ipv4Header::Parse(received_.packets.at(0).l3());
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, kIpProtoIcmp);
  ExpectInvariants(*router);
}

TEST_F(RouterTest, CorruptPacketsDropped) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(1, 1);
  Packet p = BuildPacket(spec);
  p.bytes()[20] ^= 0xff;  // corrupt the IP header
  router->port(0).InjectFromWire(std::move(p));
  router->RunForMs(1.0);
  EXPECT_EQ(router->stats().dropped_invalid, 1u);
  EXPECT_EQ(router->stats().forwarded, 0u);
  ExpectInvariants(*router);
}

// --- install / remove / getdata / setdata (§4.5) ---

TEST_F(RouterTest, InstalledPortFilterDropsMatchingTraffic) {
  auto router = MakeRouter();
  router->Start();

  VrpProgram filter = BuildPortFilter();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &filter;
  auto outcome = router->Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  // Block destination ports [8000, 8999].
  auto state = router->GetData(outcome.fid);
  ASSERT_GE(state.size(), 4u);
  const uint32_t range = 8000u << 16 | 8999;
  std::memcpy(state.data(), &range, 4);
  ASSERT_TRUE(router->SetData(outcome.fid, state));

  PacketSpec blocked;
  blocked.dst_ip = DstIpForPort(2, 1);
  blocked.protocol = kIpProtoTcp;
  blocked.dst_port = 8080;
  PacketSpec allowed = blocked;
  allowed.dst_port = 443;
  router->port(0).InjectFromWire(BuildPacket(blocked));
  router->port(0).InjectFromWire(BuildPacket(allowed));
  router->RunForMs(1.0);

  EXPECT_EQ(router->stats().dropped_by_vrp, 1u);
  EXPECT_EQ(received_.per_port[2], 1u);

  // Removing the filter restores the blocked traffic.
  ASSERT_TRUE(router->Remove(outcome.fid));
  router->port(0).InjectFromWire(BuildPacket(blocked));
  router->RunForMs(1.0);
  EXPECT_EQ(received_.per_port[2], 2u);
  ExpectInvariants(*router);
}

TEST_F(RouterTest, SynMonitorCountsReadableViaGetData) {
  auto router = MakeRouter();
  router->Start();

  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  auto outcome = router->Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  PacketSpec syn;
  syn.dst_ip = DstIpForPort(1, 1);
  syn.protocol = kIpProtoTcp;
  syn.tcp_flags = kTcpFlagSyn;
  PacketSpec normal = syn;
  normal.tcp_flags = kTcpFlagAck;
  for (int i = 0; i < 5; ++i) {
    router->port(0).InjectFromWire(BuildPacket(syn));
  }
  for (int i = 0; i < 3; ++i) {
    router->port(0).InjectFromWire(BuildPacket(normal));
  }
  router->RunForMs(1.0);

  auto state = router->GetData(outcome.fid);
  ASSERT_GE(state.size(), 4u);
  uint32_t count;
  std::memcpy(&count, state.data(), 4);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(received_.per_port[1], 8u) << "monitoring must not drop anything";
  ExpectInvariants(*router);
}

TEST_F(RouterTest, AdmissionRejectsOverBudgetInstall) {
  auto router = MakeRouter();
  router->Start();
  VrpProgram huge = BuildSyntheticBlocks(40);  // ~441 cycles > 240 budget
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &huge;
  auto outcome = router->Install(req);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("budget"), std::string::npos);
}

TEST_F(RouterTest, InstallRejectsUnknownNativeIndex) {
  auto router = MakeRouter();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = 99;
  EXPECT_FALSE(router->Install(req).ok);
}

// --- Pentium path ---

TEST_F(RouterTest, PentiumFlowRoundTrips) {
  RouterConfig cfg;
  cfg.classifier = ClassifierMode::kFlowTable;  // per-flow installs need §4.5 classification
  auto router = MakeRouter(std::move(cfg));
  const int idx = router->pe_forwarders().Register(
      std::make_unique<FixedCostForwarder>("svc", 1000));
  router->Start();

  PacketSpec spec;
  spec.dst_ip = DstIpForPort(6, 1);
  spec.protocol = kIpProtoTcp;
  spec.src_port = 5555;
  spec.dst_port = 80;

  InstallRequest req;
  req.key = FlowKey::Tuple(spec.src_ip, spec.dst_ip, 5555, 80);
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 10'000;
  auto outcome = router->Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  for (int i = 0; i < 10; ++i) {
    router->port(0).InjectFromWire(BuildPacket(spec));
  }
  router->RunForMs(5.0);

  EXPECT_EQ(router->stats().to_pentium, 10u);
  EXPECT_EQ(router->stats().pentium_processed, 10u);
  EXPECT_EQ(received_.per_port[6], 10u) << "Pentium-processed packets re-enter the data path";
  ExpectInvariants(*router);
}

TEST_F(RouterTest, ControlPlaneUpdatesRoutesViaOspf) {
  // The protocol instance must outlive the router's use of the forwarder.
  static OspfLite ospf(1);
  ospf = OspfLite(1);
  ospf.AddLocalLink(OspfLink{2, 0, 0, 1, 7});  // neighbor 2 via port 7
  auto router = MakeRouter();
  const int idx =
      router->pe_forwarders().Register(std::make_unique<OspfForwarder>(ospf));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 1000;
  ASSERT_TRUE(router->Install(req).ok);
  router->Start();

  // No route for 10.200/16 yet.
  PacketSpec data;
  data.dst_ip = Ipv4FromString("10.200.0.1");
  router->port(0).InjectFromWire(BuildPacket(data));
  router->RunForMs(2.0);
  EXPECT_EQ(received_.per_port[7], 0u);

  // Neighbor 2 advertises 10.200/16.
  Lsa lsa;
  lsa.origin = 2;
  lsa.seq = 1;
  lsa.links = {OspfLink{1, 0, 0, 1, 0},
               OspfLink{0, Ipv4FromString("10.200.0.0"), 16, 1, 0}};
  router->port(7).InjectFromWire(BuildLsaPacket(lsa, 0x0a070002, 0x0a070001, 7));
  router->RunForMs(3.0);
  EXPECT_GE(router->stats().pentium_processed, 1u);
  ASSERT_TRUE(router->route_table().Lookup(data.dst_ip).entry);

  // Now data flows out port 7.
  router->port(0).InjectFromWire(BuildPacket(data));
  router->RunForMs(3.0);
  EXPECT_EQ(received_.per_port[7], 1u);
  ExpectInvariants(*router);
}

// --- robustness (§4.7) ---

TEST_F(RouterTest, MonitoringSuiteDoesNotBreakLineRate) {
  // Install a suite of Table 5 forwarders, then offer full line rate: the
  // VRP budget guarantees zero loss.
  auto router = MakeRouter();
  router->Start();
  for (auto builder : {BuildSynMonitor, BuildAckMonitor}) {
    VrpProgram program = builder();
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    ASSERT_TRUE(router->Install(req).ok);
  }
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    spec.protocol = kIpProtoTcp;
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(p), spec,
                                                static_cast<uint64_t>(100 + p)));
    gens.back()->Start(12 * kPsPerMs);
  }
  router->RunForMs(2.0);
  router->StartMeasurement();
  router->RunForMs(8.0);
  EXPECT_NEAR(router->ForwardingRateMpps(), 1.128, 0.03);
  EXPECT_EQ(router->stats().dropped_queue_full, 0u);
  router->RunForMs(3.0);  // drain
  ExpectInvariants(*router);
}

TEST_F(RouterTest, BufferLapLossIsDetected) {
  // Shrink the buffer pool so the circular allocator laps while packets sit
  // in a congested queue: the output stage must detect and count the loss
  // (§3.2.3's designed-in hazard).
  RouterConfig cfg;
  cfg.hw.num_buffers = 32;
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  TrafficSpec spec;
  spec.rate_pps = 148'000;
  spec.pattern = TrafficSpec::DstPattern::kSinglePort;
  spec.single_dst_port = 1;
  // All eight sources aim at one 100 Mbps port: 8:1 overload.
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(p), spec,
                                                static_cast<uint64_t>(p)));
    gens.back()->Start(10 * kPsPerMs);
  }
  router->RunForMs(10.0);
  EXPECT_GT(router->stats().lost_overwritten, 0u);
  router->RunForMs(8.0);  // let the congested port drain
  ExpectInvariants(*router);
}

TEST_F(RouterTest, LatencyIsMicroseconds) {
  auto router = MakeRouter();
  router->Start();
  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 1);
  for (int i = 0; i < 20; ++i) {
    router->port(0).InjectFromWire(BuildPacket(spec));
  }
  router->RunForMs(3.0);
  ASSERT_GT(router->stats().latency_ns.count(), 0u);
  // Store-and-forward of a 64 B packet through the pipeline: a few µs
  // dominated by wire and queueing, well under a millisecond.
  EXPECT_LT(router->stats().latency_ns.max(), 1'000'000u);
  EXPECT_GT(router->stats().latency_ns.min(), 100u);
  ExpectInvariants(*router);
}

}  // namespace
}  // namespace npr
