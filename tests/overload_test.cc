// Overload governor: degradation-ladder hysteresis, RED / policing / quench
// behavior, the control-plane carve-out, MAC accounting invariants, istore
// throttle edge cases, admission rejection paths, adversarial TrafficGen
// determinism, and an 8-node sharded cluster that must not spuriously
// reconverge under flood.
//
// Every suite is prefixed Overload so ci/sanitize.sh can include this file
// in the ThreadSanitizer run (-R 'ParallelCluster|Overload').

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster_control.h"
#include "src/core/overload.h"
#include "src/core/router.h"
#include "src/fault/fault_plan.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/cluster_health.h"
#include "src/health/health_monitor.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace {

// 100 Mbps ports cannot overload path A (8 x 148.8 Kpps min-size is well
// under the ~3.47 Mpps pipeline); overload scenarios run gigabit ports.
RouterConfig GigConfig(int ports = 8) {
  RouterConfig cfg;
  cfg.port_rates_bps = std::vector<double>(static_cast<size_t>(ports), 1e9);
  return cfg;
}

std::unique_ptr<Router> MakeRouter(RouterConfig cfg) {
  auto router = std::make_unique<Router>(std::move(cfg));
  for (int p = 0; p < router->num_ports(); ++p) {
    router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router->WarmRouteCache(32);
  return router;
}

// Floods `ports` source ports with min-size frames at line rate, all aimed
// at dst port `victim`.
void Flood(Router& router, std::vector<std::unique_ptr<TrafficGen>>* gens, double until_ms,
           std::vector<int> ports, uint8_t victim, uint64_t seed = 42) {
  for (int p : ports) {
    TrafficSpec spec;
    spec.rate_pps = 1.6e6;  // above gigabit line rate; the wire paces it down
    spec.adversarial = TrafficSpec::Adversarial::kMinSizeFlood;
    spec.flood_factor = 1.0;
    spec.single_dst_port = victim;
    // Rotate over enough sources that none crosses the heavy-hitter share:
    // with the policer defeated, only RED and the deeper stages push back,
    // which is what walks the ladder past stage 2.
    spec.flood_sources = 64;
    gens->push_back(std::make_unique<TrafficGen>(
        router.engine(), router.port(p), spec, seed + static_cast<uint64_t>(p)));
    gens->back()->Start(static_cast<SimTime>(until_ms * kPsPerMs));
  }
}

size_t CountEvents(const HealthMonitor& health, RecoveryEvent::Kind kind) {
  size_t n = 0;
  for (const RecoveryEvent& e : health.events()) {
    n += e.kind == kind ? 1 : 0;
  }
  return n;
}

uint64_t GovDropsAllPorts(Router& router) {
  uint64_t n = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    n += router.port(p).gov_red_dropped() + router.port(p).gov_policed() +
         router.port(p).gov_quenched();
  }
  return n;
}

// --- degradation ladder -------------------------------------------------

TEST(OverloadLadder, EscalatesUnderFloodAndRecoversAfterIt) {
  auto router = MakeRouter(GigConfig());
  router->Start();
  OverloadGovernor gov(*router);
  HealthMonitor health(*router);

  // A general extension the stage-3 throttle should act on.
  const VrpProgram tagger = BuildDscpTagger();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &tagger;
  const InstallOutcome out = router->Install(req);
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(router->istore().GeneralChain().size(), 1u);
  const uint32_t handle = router->istore().GeneralChain()[0].id;

  std::vector<std::unique_ptr<TrafficGen>> gens;
  Flood(*router, &gens, 3.0, {0, 1, 2, 3, 4, 5, 6}, /*victim=*/7);
  router->RunForMs(3.0);

  // Sustained line-rate flood walks the ladder to host-bound shedding, and
  // the stage-3 throttle has taken the extension out of the chain.
  EXPECT_GE(gov.stage(), 3) << "flood must escalate to forwarder throttling";
  EXPECT_GT(gov.escalations(), 0u);
  EXPECT_EQ(router->stats().gov_escalations, gov.escalations());
  EXPECT_TRUE(router->istore().IsThrottled(handle));
  EXPECT_TRUE(router->istore().GeneralChain().empty());
  EXPECT_GT(router->stats().gov_red_dropped, 0u);
  EXPECT_GT(router->stats().forwarded, 0u) << "degradation, not collapse";

  // Overload is an open, detected health event while the flood runs.
  ASSERT_EQ(CountEvents(health, RecoveryEvent::Kind::kOverload), 1u);

  // Flood over: the ladder walks back down, the throttle lifts, and the
  // health event closes with MTTD/MTTR populated.
  router->RunForMs(5.0);
  EXPECT_EQ(gov.stage(), 0);
  EXPECT_FALSE(gov.overloaded());
  EXPECT_FALSE(router->istore().IsThrottled(handle));
  ASSERT_EQ(router->istore().GeneralChain().size(), 1u);
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind != RecoveryEvent::Kind::kOverload) {
      continue;
    }
    EXPECT_GT(e.recovered_at, e.detected_at);
    EXPECT_GE(e.detected_at, e.fault_at);  // MTTD covers the escalation dwell
  }

  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(OverloadLadder, HysteresisHoldsStageZeroUnderBurstsBelowEnterThreshold) {
  // On/off bursts whose on-window is shorter than the escalation dwell must
  // not flap the ladder: pressure spikes but never holds for two ticks.
  auto router = MakeRouter(GigConfig());
  router->Start();
  OverloadConfig oc;
  oc.escalate_dwell_ticks = 4;  // 80 us of sustained pressure required
  OverloadGovernor gov(*router, oc);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  TrafficSpec spec;
  spec.rate_pps = 1.6e6;
  spec.adversarial = TrafficSpec::Adversarial::kOnOffBurst;
  spec.flood_factor = 1.0;
  spec.burst_on_ps = 50 * kPsPerUs;   // ~74 min-size frames: fill stays < 0.20
  spec.burst_off_ps = 400 * kPsPerUs; // long enough for full drain
  spec.single_dst_port = 7;
  gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(0), spec, 7));
  gens.back()->Start(3 * kPsPerMs);
  router->RunForMs(4.0);

  EXPECT_EQ(gov.escalations(), 0u) << "sub-dwell bursts must not escalate";
  EXPECT_EQ(gov.stage(), 0);
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- conforming goodput under attack -------------------------------------

// Conforming goodput: deliveries on an uncontended victim port fed by a
// conforming source while other ports are flooded must stay within 10% of
// the fault-free baseline (the attack ports take the RED/police losses).
TEST(OverloadRed, ConformingGoodputSurvivesFloodOnOtherPorts) {
  auto run = [](bool attack) {
    auto router = MakeRouter(GigConfig());
    uint64_t delivered = 0;
    router->port(5).SetSink([&delivered](Packet&&) { ++delivered; });
    router->Start();
    OverloadGovernor gov(*router);

    std::vector<std::unique_ptr<TrafficGen>> gens;
    TrafficSpec conforming;
    conforming.rate_pps = 100'000;
    conforming.pattern = TrafficSpec::DstPattern::kSinglePort;
    conforming.single_dst_port = 5;
    gens.push_back(
        std::make_unique<TrafficGen>(router->engine(), router->port(0), conforming, 99));
    gens.back()->Start(5 * kPsPerMs);
    if (attack) {
      Flood(*router, &gens, 5.0, {1, 2, 3}, /*victim=*/4);
    }
    // Past the generators by 2.5 ms: the attack's wire backlog and the
    // victim port's full output queue need time to drain to quiescence
    // before the conservation check.
    router->RunForMs(7.5);
    if (attack) {
      EXPECT_GT(gov.escalations(), 0u) << "attack must actually pressure the governor";
      EXPECT_GT(router->stats().gov_red_dropped, 0u);
      // The governor's drops land on the flooded ports, not the conforming one.
      EXPECT_EQ(router->port(0).gov_red_dropped() + router->port(0).gov_policed(), 0u);
    }
    const InvariantReport report = RouterInvariants::CheckAll(*router);
    EXPECT_TRUE(report.ok()) << report.ToString();
    return delivered;
  };

  const uint64_t baseline = run(false);
  const uint64_t under_attack = run(true);
  ASSERT_GT(baseline, 100u);
  EXPECT_GE(static_cast<double>(under_attack), 0.9 * static_cast<double>(baseline))
      << "conforming goodput " << under_attack << " vs baseline " << baseline;
}

// --- heavy-hitter policing ------------------------------------------------

TEST(OverloadPolice, ElephantSourcesArePolicedConformingAreNot) {
  auto router = MakeRouter(GigConfig());
  router->Start();
  OverloadGovernor gov(*router);

  const int kAttackPorts = 6;
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < kAttackPorts; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 1.6e6;
    spec.frame_bytes = 64;
    spec.adversarial = TrafficSpec::Adversarial::kElephantFlows;
    spec.elephant_count = 2;
    spec.elephant_share = 0.9;
    gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(p), spec,
                                                1000 + static_cast<uint64_t>(p)));
    gens.back()->Start(3 * kPsPerMs);
  }

  // Policing is self-limiting: shedding the elephants collapses the very
  // pressure that entered stage 2, so the ladder legitimately oscillates
  // around the 1/2 boundary. Sample the stage over the flood and snapshot
  // the hot sets the first time policing engages; cumulative counters are
  // checked at the end (hot sets are per-tick state and decay).
  int max_stage = 0;
  bool captured = false;
  std::vector<std::set<uint32_t>> hot_mid_flood(kAttackPorts);
  for (int i = 10; i <= 58; ++i) {
    router->engine().Schedule(static_cast<SimTime>(i) * 50 * kPsPerUs, [&] {
      max_stage = std::max(max_stage, gov.stage());
      if (gov.stage() >= 2 && !captured) {
        captured = true;
        for (int p = 0; p < kAttackPorts; ++p) {
          hot_mid_flood[static_cast<size_t>(p)] = gov.hot_sources(static_cast<uint8_t>(p));
        }
      }
    });
  }
  router->RunForMs(4.0);

  EXPECT_GE(max_stage, 2) << "elephant flood must reach the policing stage";
  EXPECT_GT(router->stats().gov_policed, 0u);
  ASSERT_TRUE(captured);
  // The policed set on each flooded port is exactly the elephants: source
  // lows 1..elephant_count of that port's address plan.
  for (int p = 0; p < kAttackPorts; ++p) {
    const auto& hot = hot_mid_flood[static_cast<size_t>(p)];
    ASSERT_FALSE(hot.empty()) << "port " << p;
    for (uint32_t src : hot) {
      const uint16_t low = static_cast<uint16_t>(src & 0xff);
      EXPECT_LE(low, 2u) << "only elephants may be policed; src low " << low;
    }
  }
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(OverloadPolice, QuenchStageAccountsPerSource) {
  // Drive the ladder to stage 4 with thresholds lowered so a line-rate
  // flood sustains hard shed, and check the source-quench accounting.
  auto router = MakeRouter(GigConfig());
  router->Start();
  OverloadConfig oc;
  oc.enter_fill[4] = 0.35;
  oc.exit_fill[4] = 0.20;
  OverloadGovernor gov(*router, oc);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  Flood(*router, &gens, 3.0, {0, 1, 2, 3, 4, 5, 6}, /*victim=*/7);
  int stage_mid_flood = 0;
  router->engine().Schedule(static_cast<SimTime>(2.5 * kPsPerMs),
                            [&] { stage_mid_flood = gov.stage(); });
  router->RunForMs(4.0);

  // The ladder oscillates on the stage-3/4 boundary (hard shed drains the
  // very backlog that justified it), so the stable claims are that hard
  // shed happened and the ladder was deep in degradation mid-flood.
  EXPECT_GE(stage_mid_flood, 3);
  EXPECT_GT(router->stats().gov_quenched, 0u);
  ASSERT_FALSE(gov.quench_by_src().empty());
  uint64_t accounted = 0;
  for (const auto& [src, n] : gov.quench_by_src()) {
    accounted += n;
  }
  EXPECT_EQ(accounted, router->stats().gov_quenched)
      << "every hard-shed frame must be charged to a source";
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- control-plane carve-out ----------------------------------------------

Packet ControlFrame(uint8_t arrival_port, uint32_t id) {
  PacketSpec spec;
  spec.protocol = kIpProtoOspfLite;
  spec.eth_src = PortMac(arrival_port);
  spec.eth_dst = PortMac(0xfe);  // the router's MAC
  spec.dst_ip = 0x0aff0001;      // the router itself
  spec.src_ip = SrcIpForPort(arrival_port, 99);
  Packet p = BuildPacket(spec);
  p.set_id(id);
  p.set_arrival_port(arrival_port);
  return p;
}

TEST(OverloadCarveOut, ControlFramesAreNeverShedAtAnyStage) {
  auto router = MakeRouter(GigConfig());
  router->Start();
  OverloadConfig oc;
  oc.enter_fill[4] = 0.35;  // reach hard shed: the harshest stage for data
  oc.exit_fill[4] = 0.20;
  OverloadGovernor gov(*router, oc);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  Flood(*router, &gens, 4.0, {0, 1, 2, 3, 4, 5, 6}, /*victim=*/7);

  // Control frames arrive through the most-flooded port, on a cadence that
  // spans every ladder stage the flood walks through.
  const int kControl = 40;
  for (int i = 0; i < kControl; ++i) {
    router->engine().Schedule(static_cast<SimTime>(i) * 100 * kPsPerUs, [&router, i] {
      router->port(0).InjectFromWire(ControlFrame(0, 0x00c00001u + static_cast<uint32_t>(i)));
    });
  }
  router->RunForMs(6.0);

  EXPECT_GT(gov.escalations(), 0u);
  // Every control frame was admitted with priority; none hit a governor
  // drop or the MAC tail drop.
  EXPECT_EQ(gov.control_admitted(), static_cast<uint64_t>(kControl));
  EXPECT_EQ(router->port(0).rx_priority_frames(), static_cast<uint64_t>(kControl));
  // And every one of them crossed the bridge to the Pentium's control
  // forwarders — the UDP flood rides path A, so the Pentium-bound stream is
  // exactly the control traffic, and governor host-bound shedding (stage 3+)
  // must have let all of it through.
  EXPECT_EQ(router->bridge().bridged_to_pentium(), static_cast<uint64_t>(kControl));

  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- MAC accounting and conservation under every adversarial mode ---------

TEST(OverloadInvariants, EveryAdversarialModeKeepsAttributionExact) {
  const TrafficSpec::Adversarial modes[] = {
      TrafficSpec::Adversarial::kMinSizeFlood,
      TrafficSpec::Adversarial::kElephantFlows,
      TrafficSpec::Adversarial::kOnOffBurst,
      TrafficSpec::Adversarial::kFlowChurn,
  };
  for (const auto mode : modes) {
    auto router = MakeRouter(GigConfig());
    router->Start();
    OverloadGovernor gov(*router);
    std::vector<std::unique_ptr<TrafficGen>> gens;
    for (int p = 0; p < 6; ++p) {
      TrafficSpec spec;
      spec.rate_pps = 1.6e6;
      spec.adversarial = mode;
      spec.flood_factor = 1.0;
      spec.single_dst_port = 7;
      gens.push_back(std::make_unique<TrafficGen>(router->engine(), router->port(p), spec,
                                                  77 + static_cast<uint64_t>(p)));
      gens.back()->Start(2 * kPsPerMs);
    }
    router->RunForMs(4.0);

    const InvariantReport report = RouterInvariants::CheckAll(*router);
    EXPECT_TRUE(report.ok()) << "mode " << static_cast<int>(mode) << ": "
                             << report.ToString();
    // The invariant actually had governor drops to attribute.
    EXPECT_GT(GovDropsAllPorts(*router), 0u) << "mode " << static_cast<int>(mode);
  }
}

TEST(OverloadInvariants, SilentMacDropIsAViolation) {
  // Force the books out of balance the way a silent drop would and check
  // the MAC accounting invariant actually fires (the counters are only
  // mutable from inside the subsystem, so this simulates via offered load
  // with a detached governor mid-run — detach loses no frames, so instead
  // verify the arithmetic by injecting and checking exactness).
  auto router = MakeRouter(GigConfig());
  router->Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  Flood(*router, &gens, 1.0, {0}, /*victim=*/1);
  router->RunForMs(2.0);
  const MacPort& port = router->port(0);
  EXPECT_EQ(port.rx_offered(), port.rx_crc_dropped() + port.rx_dropped() +
                                   port.gov_red_dropped() + port.gov_policed() +
                                   port.gov_quenched() + port.rx_frames());
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- istore throttle edge cases (satellite) -------------------------------

TEST(OverloadThrottle, SetLiftAndRethrottleSequences) {
  const HwConfig hw = HwConfig::Default();
  IStoreLayout istore(hw);
  const VrpProgram prog = BuildDscpTagger();
  const auto id = istore.InstallGeneral(prog);
  ASSERT_TRUE(id.has_value());

  EXPECT_FALSE(istore.IsThrottled(*id));
  EXPECT_TRUE(istore.SetThrottled(*id, true));
  EXPECT_TRUE(istore.IsThrottled(*id));
  EXPECT_TRUE(istore.GeneralChain().empty()) << "throttled generals leave the chain";
  // Idempotent re-throttle, then lift, then re-throttle.
  EXPECT_TRUE(istore.SetThrottled(*id, true));
  EXPECT_TRUE(istore.SetThrottled(*id, false));
  EXPECT_FALSE(istore.IsThrottled(*id));
  EXPECT_EQ(istore.GeneralChain().size(), 1u);
  EXPECT_TRUE(istore.SetThrottled(*id, true));
  EXPECT_TRUE(istore.IsThrottled(*id));
}

TEST(OverloadThrottle, UnknownHandleIsALoggedErrorNotASilentNoop) {
  const HwConfig hw = HwConfig::Default();
  IStoreLayout istore(hw);
  EXPECT_FALSE(istore.SetThrottled(12345, true));
  EXPECT_FALSE(istore.IsThrottled(12345));
  // A removed forwarder's handle goes stale the same way.
  const VrpProgram prog = BuildDscpTagger();
  const auto id = istore.InstallGeneral(prog);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(istore.Remove(*id));
  EXPECT_FALSE(istore.SetThrottled(*id, true));
}

// --- admission rejection paths (satellite) --------------------------------

TEST(OverloadAdmission, RejectionPathsReportReasons) {
  auto router = MakeRouter(RouterConfig{});
  router->Start();

  // ME install without a program.
  InstallRequest me;
  me.key = FlowKey::All();
  me.where = Where::kMicroEngine;
  EXPECT_FALSE(router->Install(me).ok);
  EXPECT_FALSE(router->Install(me).error.empty());

  // SA / PE installs with unknown jump-table indexes.
  InstallRequest sa;
  sa.key = FlowKey::All();
  sa.where = Where::kStrongArm;
  sa.native_index = 42;
  EXPECT_FALSE(router->Install(sa).ok);

  InstallRequest pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  pe.native_index = 42;
  EXPECT_FALSE(router->Install(pe).ok);

  // Pentium admission: an honest forwarder asking for more packet rate than
  // the PCI path sustains is denied with the budget in the reason.
  const int idx =
      router->pe_forwarders().Register(std::make_unique<FixedCostForwarder>("svc", 100));
  InstallRequest greedy;
  greedy.key = FlowKey::All();
  greedy.where = Where::kPentium;
  greedy.native_index = idx;
  greedy.expected_pps = 1e9;
  const InstallOutcome out = router->Install(greedy);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.error.empty());

  // Direct check: the same denial without going through Install.
  const AdmissionResult direct = router->admission().CheckPentium(1e9, 100);
  EXPECT_FALSE(direct.admitted);
  EXPECT_FALSE(direct.reason.empty());
  // And a conforming request still passes.
  EXPECT_TRUE(router->admission().CheckPentium(10'000, 100).admitted);
}

// --- adversarial TrafficGen determinism (satellite) -----------------------

uint64_t GenFingerprint(TrafficSpec::Adversarial mode, uint64_t seed) {
  EventQueue engine;
  MacPort port(engine, 0, 1e9);
  port.SetSink([](Packet&&) {});
  TrafficSpec spec;
  spec.rate_pps = 500'000;
  spec.adversarial = mode;
  TrafficGen gen(engine, port, spec, seed);
  gen.Start(1 * kPsPerMs);
  engine.RunFor(2 * kPsPerMs);
  EXPECT_GT(gen.generated(), 100u);
  return gen.fingerprint();
}

TEST(OverloadTrafficGen, SameSeedIsBitIdenticalAcrossModesDifferentSeedIsNot) {
  const TrafficSpec::Adversarial modes[] = {
      TrafficSpec::Adversarial::kMinSizeFlood,
      TrafficSpec::Adversarial::kElephantFlows,
      TrafficSpec::Adversarial::kOnOffBurst,
      TrafficSpec::Adversarial::kFlowChurn,
  };
  for (const auto mode : modes) {
    const uint64_t a = GenFingerprint(mode, 0xfeedULL);
    const uint64_t b = GenFingerprint(mode, 0xfeedULL);
    const uint64_t c = GenFingerprint(mode, 0xbeefULL);
    EXPECT_EQ(a, b) << "mode " << static_cast<int>(mode)
                    << ": same seed must replay bit-identically";
    EXPECT_NE(a, c) << "mode " << static_cast<int>(mode)
                    << ": different seeds must diverge";
  }
}

// --- overload chaos: governor + health + ambient faults -------------------

TEST(OverloadChaosTest, GovernorAndHealthSurviveFloodPlusAmbientFaults) {
  RouterConfig cfg = GigConfig();
  cfg.fault_plan = FaultPlan::OverloadChaos(0x0c0deULL);
  auto router = MakeRouter(std::move(cfg));
  router->Start();
  OverloadGovernor gov(*router);
  HealthMonitor health(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  Flood(*router, &gens, 4.0, {0, 1, 2, 3, 4, 5}, /*victim=*/7);
  router->RunForMs(9.0);

  EXPECT_GT(gov.escalations(), 0u);
  EXPECT_EQ(gov.stage(), 0) << "flood ended ms ago; the ladder must be back down";
  EXPECT_GT(router->stats().forwarded, 1000u) << "forwarding survived chaos + flood";
  EXPECT_GE(CountEvents(health, RecoveryEvent::Kind::kOverload), 1u);
  const InvariantReport report = RouterInvariants::CheckAll(*router);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- 8-node sharded cluster under flood -----------------------------------

TEST(OverloadCluster, FloodedClusterHasZeroSpuriousReconvergences) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.internal_links = 2;
  cfg.fabric_latency_ps = 2 * kPsPerUs;
  cfg.threads = 2;
  cfg.node_config.port_rates_bps = std::vector<double>(4, 1e9);
  ClusterRouter cluster(std::move(cfg));
  ASSERT_TRUE(cluster.sharded());

  ClusterControlPlane control(cluster);
  control.Start();
  ClusterHealthMonitor cluster_health(cluster, control);

  std::vector<std::unique_ptr<OverloadGovernor>> governors;
  std::vector<std::unique_ptr<HealthMonitor>> monitors;
  // Sinks fire on their node's shard thread; the cross-node tally must be
  // atomic under the sharded engine.
  std::atomic<uint64_t> delivered{0};
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    governors.push_back(std::make_unique<OverloadGovernor>(cluster.node(k)));
    monitors.push_back(std::make_unique<HealthMonitor>(cluster.node(k)));
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered](Packet&&) { ++delivered; });
    }
  }
  cluster.Start();

  // Both external ports of every node are flooded at line rate: port 0 at
  // the next node's prefix (so the frames also cross the fabric and arrive
  // on the victim's internal link) and port 1 at the node's own second
  // prefix. Each node then sees ~3 line-rate ingress streams against a
  // path-A capacity of ~2.3 streams — genuine overload on all 8 nodes.
  const int ext = cluster.external_ports_per_node();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    const int next = (k + 1) % cluster.num_nodes();
    const uint8_t targets[] = {static_cast<uint8_t>(next * ext),
                               static_cast<uint8_t>(k * ext + 1)};
    for (int p = 0; p < 2; ++p) {
      TrafficSpec spec;
      spec.rate_pps = 1.6e6;
      spec.adversarial = TrafficSpec::Adversarial::kMinSizeFlood;
      spec.flood_factor = 1.0;
      spec.single_dst_port = targets[p];  // global prefix index: 10.<g>.0.0/16
      gens.push_back(std::make_unique<TrafficGen>(
          cluster.node_engine(k), cluster.node(k).port(p), spec,
          FaultPlan::DeriveNodeSeed(0x10ad5ULL, k * 2 + p)));
      gens.back()->Start(4 * kPsPerMs);
    }
  }
  cluster.RunForMs(8.0);

  // The flood pressured at least some governors...
  uint64_t escalations = 0;
  for (const auto& gov : governors) {
    escalations += gov->escalations();
  }
  EXPECT_GT(escalations, 0u) << "cluster flood must pressure node governors";
  EXPECT_GT(delivered.load(), 0u);

  // ...but the control plane never mistook overload for death: no suspects,
  // no withdrawals, no reconvergence records, anywhere.
  EXPECT_EQ(cluster_health.suspects_raised(), 0u);
  EXPECT_TRUE(control.records().empty())
      << control.records().size() << " spurious reconvergence(s) under flood";
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    EXPECT_TRUE(cluster.node_up(k));
  }

  const InvariantReport report = RouterInvariants::CheckCluster(cluster);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace npr
