// Unit tests for the network substrate: checksums, header codecs, packet
// building, MP segmentation/reassembly, MAC port pacing, traffic generation.

#include <gtest/gtest.h>

#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/net/mac_port.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/net/traffic_gen.h"
#include "src/net/udp.h"
#include "src/net/wire.h"
#include "src/sim/random.h"

namespace npr {
namespace {

// --- checksum ---

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2 -> ~ = 0x220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InetChecksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(InetChecksum(data), 0xfbfd);
}

TEST(Checksum, ValidHeaderSumsToAllOnes) {
  Ipv4Header h;
  h.src = 0x0a000001;
  h.dst = 0x0a000002;
  h.total_length = 40;
  uint8_t buf[20];
  h.Write(buf);
  EXPECT_EQ(ChecksumPartial(buf), 0xffff);
}

class IncrementalChecksum : public ::testing::TestWithParam<std::pair<uint8_t, uint8_t>> {};

TEST_P(IncrementalChecksum, MatchesFullRecompute) {
  // Property: RFC 1624 incremental update after a TTL change equals a full
  // recompute, across TTL values.
  const auto [ttl_before, protocol] = GetParam();
  Ipv4Header h;
  h.ttl = ttl_before;
  h.protocol = protocol;
  h.src = 0xc0a80101;
  h.dst = 0x0a141e28;
  h.total_length = 100;
  uint8_t buf[20];
  h.Write(buf);
  ASSERT_TRUE(Ipv4Header::Validate(buf));

  ASSERT_TRUE(DecrementTtlInPlace(buf));
  EXPECT_TRUE(Ipv4Header::Validate(buf)) << "incremental checksum broke validation";
  EXPECT_EQ(buf[8], ttl_before - 1);
}

INSTANTIATE_TEST_SUITE_P(TtlSweep, IncrementalChecksum,
                         ::testing::Values(std::make_pair(uint8_t{2}, uint8_t{6}),
                                           std::make_pair(uint8_t{3}, uint8_t{17}),
                                           std::make_pair(uint8_t{16}, uint8_t{6}),
                                           std::make_pair(uint8_t{64}, uint8_t{17}),
                                           std::make_pair(uint8_t{128}, uint8_t{1}),
                                           std::make_pair(uint8_t{255}, uint8_t{6})));

TEST(Checksum, TtlOneRefusesDecrement) {
  Ipv4Header h;
  h.ttl = 1;
  uint8_t buf[20];
  h.Write(buf);
  EXPECT_FALSE(DecrementTtlInPlace(buf));
}

// --- headers ---

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = PortMac(3);
  h.src = PortMac(7);
  h.ethertype = kEtherTypeIpv4;
  uint8_t buf[14];
  h.Write(buf);
  auto parsed = EthernetHeader::Parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);
}

TEST(Ethernet, TooShortFails) {
  uint8_t buf[10] = {};
  EXPECT_FALSE(EthernetHeader::Parse(buf));
}

TEST(Ethernet, MacToStringFormats) {
  EXPECT_EQ(MacToString(PortMac(5)), "02:00:00:00:00:05");
}

TEST(Ipv4, RoundTripWithOptions) {
  Ipv4Header h;
  h.src = 0x01020304;
  h.dst = 0x05060708;
  h.ttl = 9;
  h.protocol = kIpProtoTcp;
  h.total_length = 60;
  h.options = {0x07, 0x04, 0x04, 0x00};
  uint8_t buf[24];
  h.Write(buf);
  auto parsed = Ipv4Header::Parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ihl, 6);
  EXPECT_TRUE(parsed->has_options());
  EXPECT_EQ(parsed->options, h.options);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_TRUE(Ipv4Header::Validate(buf));
}

TEST(Ipv4, ValidateRejectsCorruption) {
  Ipv4Header h;
  h.total_length = 40;
  uint8_t buf[20];
  h.Write(buf);
  buf[12] ^= 0x40;  // flip a src-address bit
  EXPECT_FALSE(Ipv4Header::Validate(buf));
}

TEST(Ipv4, ValidateRejectsBadVersion) {
  uint8_t buf[20] = {};
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::Validate(buf));
}

TEST(Ipv4, StringConversions) {
  EXPECT_EQ(Ipv4ToString(0x0a010203), "10.1.2.3");
  EXPECT_EQ(Ipv4FromString("192.168.1.200"), 0xc0a801c8u);
}

TEST(Tcp, RoundTripAndChecksum) {
  std::vector<uint8_t> segment(28, 0);
  for (size_t i = 20; i < segment.size(); ++i) {
    segment[i] = static_cast<uint8_t>(i);
  }
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 0x11223344;
  h.ack = 0x55667788;
  h.flags = kTcpFlagAck | kTcpFlagPsh;
  h.window = 4096;
  h.WriteWithChecksum(segment, 0x0a000001, 0x0a000002);

  auto parsed = TcpHeader::Parse(segment);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_EQ(parsed->flags, h.flags);
  EXPECT_NE(parsed->checksum, 0);
}

TEST(Udp, RoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 5353;
  h.length = 30;
  uint8_t buf[8];
  h.Write(buf);
  auto parsed = UdpHeader::Parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 5353);
  EXPECT_EQ(parsed->length, 30);
}

// --- packet building ---

class PacketSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(PacketSizes, BuildsValidFrames) {
  PacketSpec spec;
  spec.frame_bytes = GetParam();
  spec.protocol = kIpProtoTcp;
  Packet p = BuildPacket(spec);
  EXPECT_EQ(p.size(), std::clamp<size_t>(GetParam(), 64, 1518));
  auto eth = EthernetHeader::Parse(p.bytes());
  ASSERT_TRUE(eth);
  EXPECT_EQ(eth->ethertype, kEtherTypeIpv4);
  EXPECT_TRUE(Ipv4Header::Validate(p.l3()));
  auto ip = Ipv4Header::Parse(p.l3());
  EXPECT_EQ(ip->total_length, p.size() - kEthHeaderBytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizes,
                         ::testing::Values(60, 64, 65, 128, 512, 1024, 1500, 1518, 2000));

TEST(Packet, MpCount) {
  PacketSpec spec;
  spec.frame_bytes = 64;
  EXPECT_EQ(BuildPacket(spec).mp_count(), 1u);
  spec.frame_bytes = 65;
  EXPECT_EQ(BuildPacket(spec).mp_count(), 2u);
  spec.frame_bytes = 1500;
  EXPECT_EQ(BuildPacket(spec).mp_count(), 24u);  // §3.7: twenty-four 64 B MPs
}

// --- MP segmentation / reassembly ---

class MpRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(MpRoundTrip, SegmentThenReassembleIsIdentity) {
  PacketSpec spec;
  spec.frame_bytes = GetParam();
  spec.protocol = kIpProtoUdp;
  Packet original = BuildPacket(spec);
  original.set_id(777);

  auto mps = SegmentIntoMps(original, 3);
  ASSERT_EQ(mps.size(), original.mp_count());
  EXPECT_TRUE(mps.front().tag.sop);
  EXPECT_TRUE(mps.back().tag.eop);
  for (size_t i = 0; i + 1 < mps.size(); ++i) {
    EXPECT_EQ(mps[i].tag.bytes, 64);
    EXPECT_FALSE(mps[i].tag.eop);
  }

  MpReassembler reassembler;
  std::optional<Packet> out;
  for (const auto& mp : mps) {
    auto result = reassembler.Accept(mp);
    if (result) {
      out = std::move(result);
    }
  }
  ASSERT_TRUE(out);
  EXPECT_EQ(out->id(), 777u);
  ASSERT_EQ(out->size(), original.size());
  EXPECT_TRUE(std::equal(out->bytes().begin(), out->bytes().end(), original.bytes().begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpRoundTrip, ::testing::Values(64, 65, 127, 128, 500, 1500, 1518));

TEST(MpReassembler, MissingSopIsProtocolError) {
  MpReassembler r;
  Mp mp;
  mp.tag.sop = false;
  mp.tag.eop = true;
  mp.tag.bytes = 64;
  EXPECT_FALSE(r.Accept(mp));
  EXPECT_EQ(r.protocol_errors(), 1u);
}

// --- MacPort ---

TEST(MacPort, WireRateCapsAt148_8Kpps) {
  // IEEE 802.3: 64 B frames + 20 B overhead at 100 Mbps = 148.8 Kpps.
  EventQueue engine;
  MacPort port(engine, 0, 100e6, /*rx_buffer_mps=*/100000);
  PacketSpec spec;
  for (int i = 0; i < 2000; ++i) {
    port.InjectFromWire(BuildPacket(spec));
  }
  engine.RunAll();
  const double seconds = static_cast<double>(engine.now()) / kPsPerSec;
  EXPECT_NEAR(2000.0 / seconds, 148'800, 500);
  EXPECT_EQ(port.rx_frames(), 2000u);
}

TEST(MacPort, DropsWholePacketsWhenBufferFull) {
  EventQueue engine;
  MacPort port(engine, 0, 100e6, /*rx_buffer_mps=*/4);
  PacketSpec spec;
  spec.frame_bytes = 256;  // 4 MPs each
  port.InjectFromWire(BuildPacket(spec));
  port.InjectFromWire(BuildPacket(spec));  // does not fit behind the first
  engine.RunAll();
  EXPECT_EQ(port.rx_frames(), 1u);
  EXPECT_EQ(port.rx_dropped(), 1u);
  EXPECT_EQ(port.rx_backlog_mps(), 4u);
}

TEST(MacPort, RxClaimDrainsInOrder) {
  EventQueue engine;
  MacPort port(engine, 2, 100e6);
  PacketSpec spec;
  spec.frame_bytes = 130;  // 3 MPs
  port.InjectFromWire(BuildPacket(spec));
  engine.RunAll();
  ASSERT_TRUE(port.RxReady());
  auto a = port.RxClaim();
  auto b = port.RxClaim();
  auto c = port.RxClaim();
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(a->tag.sop);
  EXPECT_TRUE(c->tag.eop);
  EXPECT_EQ(c->tag.bytes, 130 - 128);
  EXPECT_FALSE(port.RxReady());
  EXPECT_EQ(port.rx_mps_claimed(), 3u);
}

TEST(MacPort, TxReassemblesAndDeliversToSink) {
  EventQueue engine;
  MacPort port(engine, 1, 100e6);
  std::optional<Packet> delivered;
  port.SetSink([&](Packet&& p) { delivered = std::move(p); });
  PacketSpec spec;
  spec.frame_bytes = 200;
  Packet original = BuildPacket(spec);
  original.set_id(42);
  for (const auto& mp : SegmentIntoMps(original, 1)) {
    port.TxAccept(mp);
  }
  engine.RunAll();
  ASSERT_TRUE(delivered);
  EXPECT_EQ(delivered->id(), 42u);
  EXPECT_EQ(delivered->size(), original.size());
  EXPECT_EQ(port.tx_frames(), 1u);
}

// --- TrafficGen ---

TEST(TrafficGen, GeneratesAtConfiguredRate) {
  EventQueue engine;
  MacPort port(engine, 0, 100e6, 1 << 20);
  TrafficSpec spec;
  spec.rate_pps = 50'000;
  TrafficGen gen(engine, port, spec, 1);
  gen.Start(10 * kPsPerMs);
  engine.RunUntil(10 * kPsPerMs);
  EXPECT_NEAR(static_cast<double>(gen.generated()), 500.0, 2.0);
}

TEST(TrafficGen, SinglePortPatternTargetsOnePrefix) {
  EventQueue engine;
  MacPort port(engine, 0, 1e9, 1 << 20);
  TrafficSpec spec;
  spec.pattern = TrafficSpec::DstPattern::kSinglePort;
  spec.single_dst_port = 5;
  spec.rate_pps = 100'000;
  TrafficGen gen(engine, port, spec, 2);
  gen.Start(2 * kPsPerMs);
  engine.RunUntil(3 * kPsPerMs);
  int seen = 0;
  while (auto mp = port.RxClaim()) {
    if (mp->tag.sop) {
      auto ip = Ipv4Header::Parse(std::span<const uint8_t>(mp->data).subspan(kEthHeaderBytes));
      ASSERT_TRUE(ip);
      EXPECT_EQ(ip->dst >> 16 & 0xff, 5u);
      ++seen;
    }
  }
  EXPECT_GT(seen, 100);
}

TEST(TrafficGen, ExceptionalFractionCarriesOptions) {
  EventQueue engine;
  MacPort port(engine, 0, 1e9, 1 << 20);
  TrafficSpec spec;
  spec.exceptional_fraction = 1.0;
  spec.rate_pps = 100'000;
  TrafficGen gen(engine, port, spec, 3);
  gen.Start(kPsPerMs);
  engine.RunUntil(2 * kPsPerMs);
  int with_options = 0, total = 0;
  while (auto mp = port.RxClaim()) {
    if (!mp->tag.sop) {
      continue;
    }
    auto ip = Ipv4Header::Parse(std::span<const uint8_t>(mp->data).subspan(kEthHeaderBytes));
    ASSERT_TRUE(ip);
    ++total;
    with_options += ip->has_options();
  }
  EXPECT_GT(total, 50);
  EXPECT_EQ(with_options, total);
}

TEST(TrafficGen, FlowPatternReusesTuples) {
  EventQueue engine;
  MacPort port(engine, 0, 1e9, 1 << 20);
  TrafficSpec spec;
  spec.pattern = TrafficSpec::DstPattern::kFlows;
  spec.num_flows = 4;
  spec.rate_pps = 100'000;
  TrafficGen gen(engine, port, spec, 4);
  gen.Start(2 * kPsPerMs);
  engine.RunUntil(3 * kPsPerMs);
  std::set<uint64_t> tuples;
  while (auto mp = port.RxClaim()) {
    if (!mp->tag.sop) {
      continue;
    }
    auto bytes = std::span<const uint8_t>(mp->data);
    auto ip = Ipv4Header::Parse(bytes.subspan(kEthHeaderBytes));
    ASSERT_TRUE(ip);
    tuples.insert(static_cast<uint64_t>(ip->src) << 32 | ip->dst);
  }
  EXPECT_LE(tuples.size(), 4u);
  EXPECT_GE(tuples.size(), 2u);
}

// --- packet pool ---

TEST(PacketPool, AcquireReleaseRecycles) {
  PacketPool pool;
  FrameBuf* a = pool.TryAcquire(64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->len, 64u);
  EXPECT_EQ(a->pool, &pool);
  EXPECT_EQ(a->refcount.load(), 1u);
  EXPECT_EQ(pool.outstanding(), 1u);
  a->Unref();
  EXPECT_EQ(pool.outstanding(), 0u);
  // The freed buffer heads the class free list: the next acquire reuses it
  // instead of growing the arena.
  FrameBuf* b = pool.TryAcquire(60);
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->len, 60u);
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  b->Unref();
}

TEST(PacketPool, PicksSmallestFittingClassAndRejectsOversize) {
  PacketPool pool;
  FrameBuf* small = pool.TryAcquire(64);
  FrameBuf* mtu = pool.TryAcquire(65);
  FrameBuf* jumbo = pool.TryAcquire(PacketPool::kClassBytes[1] + 1);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(mtu, nullptr);
  ASSERT_NE(jumbo, nullptr);
  EXPECT_EQ(small->capacity, PacketPool::kClassBytes[0]);
  EXPECT_EQ(mtu->capacity, PacketPool::kClassBytes[1]);
  EXPECT_EQ(jumbo->capacity, PacketPool::kClassBytes[2]);
  EXPECT_EQ(pool.TryAcquire(PacketPool::kClassBytes[2] + 1), nullptr);
  EXPECT_EQ(pool.exhausted(), 1u);
  small->Unref();
  mtu->Unref();
  jumbo->Unref();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(PacketPool, CapExhaustionFailsGracefullyAndRecovers) {
  PacketPool pool;
  pool.set_max_frames_per_class(2);
  FrameBuf* a = pool.TryAcquire(64);
  FrameBuf* b = pool.TryAcquire(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.TryAcquire(64), nullptr);
  EXPECT_EQ(pool.exhausted(), 1u);
  a->Unref();
  // Releasing one buffer makes the class serviceable again.
  FrameBuf* c = pool.TryAcquire(64);
  EXPECT_NE(c, nullptr);
  b->Unref();
  c->Unref();
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PacketPool, HeapBuffersBypassTheLedger) {
  PacketPool pool;
  FrameBuf* h = PacketPool::AcquireHeap(2000);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->pool, nullptr);
  EXPECT_EQ(h->len, 2000u);
  EXPECT_EQ(pool.acquires(), 0u);
  h->Unref();  // frees, no pool involved
}

TEST(Packet, CopiesShareTheFrameBufAndMakeOwnedDetaches) {
  PacketPool pool;
  FrameBuf* buf = pool.TryAcquire(100);
  ASSERT_NE(buf, nullptr);
  for (uint32_t i = 0; i < 100; ++i) {
    buf->data()[i] = static_cast<uint8_t>(i);
  }
  Packet p = Packet::Adopt(buf);
  EXPECT_TRUE(p.pooled());
  {
    Packet copy = p;  // shares the buffer: still one pool acquire
    EXPECT_EQ(pool.outstanding(), 1u);
    EXPECT_EQ(copy.bytes().data(), p.bytes().data());
  }
  EXPECT_EQ(pool.outstanding(), 1u);
  // MakeOwned copies to a one-off heap buffer and returns the pooled one.
  p.MakeOwned();
  EXPECT_FALSE(p.pooled());
  EXPECT_EQ(pool.outstanding(), 0u);
  ASSERT_EQ(p.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(p.bytes()[i], static_cast<uint8_t>(i));
  }
}

TEST(MacPort, PoolExhaustionBecomesGracefulRxLoss) {
  // Cap the port pool so the generator cannot always build a frame: the
  // failures must be counted as rx_pool_exhausted (never offered to the
  // wire), the port must keep forwarding what it can, and the pool ledger
  // must balance once the port drains.
  EventQueue engine;
  MacPort port(engine, 0, 100e6, 1 << 20);
  // One frame per class: any frame still serializing on the wire starves
  // the next acquire. Offered above line rate, exhaustion is guaranteed.
  port.pool().set_max_frames_per_class(1);
  TrafficSpec spec;
  spec.rate_pps = 300'000;
  TrafficGen gen(engine, port, spec, 11);
  gen.Start(5 * kPsPerMs);
  engine.RunUntil(6 * kPsPerMs);
  uint64_t claimed = 0;
  while (port.RxClaim()) {
    ++claimed;
  }
  EXPECT_GT(port.rx_pool_exhausted(), 0u);
  EXPECT_GT(port.rx_frames(), 0u);
  // Conservation: every offered frame landed somewhere.
  EXPECT_EQ(port.rx_offered(), port.rx_frames() + port.rx_dropped());
  EXPECT_EQ(port.pool().outstanding(), port.pooled_in_flight());
}

TEST(MacPort, SinkFramesOutliveThePool) {
  // TxAccept hands frames to the sink as heap-backed copies, so a sink may
  // hold them past the port's lifetime; the pooled originals are returned.
  EventQueue engine;
  std::vector<Packet> kept;
  {
    MacPort port(engine, 1, 1e9, 1 << 20);
    port.SetSink([&](Packet&& p) { kept.push_back(std::move(p)); });
    PacketSpec spec;
    spec.frame_bytes = 200;
    Packet frame = BuildPacket(spec);
    frame.set_id(42);
    for (const Mp& mp : SegmentIntoMps(frame, 1)) {
      port.TxAccept(mp);
    }
    engine.RunAll();
    EXPECT_EQ(port.pool().outstanding(), port.pooled_in_flight());
  }
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FALSE(kept[0].pooled());
  EXPECT_EQ(kept[0].size(), 200u);
}

}  // namespace
}  // namespace npr
