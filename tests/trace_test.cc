// Route-config loading and trace record/replay.

#include <gtest/gtest.h>

#include "src/core/router.h"
#include "src/net/trace.h"
#include "src/net/traffic_gen.h"
#include "src/route/route_loader.h"

namespace npr {
namespace {

// --- route loader ---

TEST(RouteLoader, LoadsWellFormedConfig) {
  RouteTable table;
  const std::string config = R"(
    # core FIB
    10.1.0.0/16     1
    10.2.0.0/16     2     02:aa:bb:cc:dd:ee
    default         0
  )";
  auto result = LoadRoutesFromString(config, table);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.routes_loaded, 3);
  EXPECT_EQ(table.Lookup(Ipv4FromString("10.1.9.9")).entry->out_port, 1);
  auto custom = table.Lookup(Ipv4FromString("10.2.1.1")).entry;
  ASSERT_TRUE(custom);
  EXPECT_EQ(custom->out_port, 2);
  EXPECT_EQ(MacToString(custom->next_hop_mac), "02:aa:bb:cc:dd:ee");
  EXPECT_EQ(table.Lookup(Ipv4FromString("99.0.0.1")).entry->out_port, 0) << "default route";
}

TEST(RouteLoader, ReportsBadLines) {
  RouteTable table;
  auto bad_prefix = LoadRoutesFromString("10.1.0.0/99 1\n", table);
  EXPECT_FALSE(bad_prefix.ok);
  EXPECT_NE(bad_prefix.error.find("line 1"), std::string::npos);

  auto bad_port = LoadRoutesFromString("10.1.0.0/16 99\n", table);
  EXPECT_FALSE(bad_port.ok);

  auto bad_mac = LoadRoutesFromString("10.1.0.0/16 1 zz:zz\n", table);
  EXPECT_FALSE(bad_mac.ok);

  auto arity = LoadRoutesFromString("10.1.0.0/16\n", table);
  EXPECT_FALSE(arity.ok);
}

TEST(RouteLoader, MissingFileFails) {
  RouteTable table;
  EXPECT_FALSE(LoadRoutesFromFile("/nonexistent/fib.conf", table).ok);
}

TEST(RouteLoader, ParseMacRoundTrip) {
  MacAddr mac{};
  ASSERT_TRUE(ParseMac("02:00:00:00:00:07", &mac));
  EXPECT_EQ(mac, PortMac(7));
  EXPECT_FALSE(ParseMac("02:00:00", &mac));
}

// --- trace records ---

TEST(Trace, RecordRoundTrip) {
  TraceRecord record;
  record.at = 12'500 * kPsPerUs / 1000;  // 12.5 us
  record.spec.src_ip = Ipv4FromString("172.16.0.1");
  record.spec.dst_ip = Ipv4FromString("10.3.0.7");
  record.spec.protocol = kIpProtoTcp;
  record.spec.src_port = 1024;
  record.spec.dst_port = 80;
  record.spec.frame_bytes = 64;
  record.spec.tcp_flags = 0x02;  // SYN

  auto parsed = TraceRecord::Parse(record.Serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->at, record.at);
  EXPECT_EQ(parsed->spec.src_ip, record.spec.src_ip);
  EXPECT_EQ(parsed->spec.dst_ip, record.spec.dst_ip);
  EXPECT_EQ(parsed->spec.protocol, kIpProtoTcp);
  EXPECT_EQ(parsed->spec.dst_port, 80);
  EXPECT_EQ(parsed->spec.tcp_flags, 0x02);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(TraceRecord::Parse("not a record"));
  auto result = ParseTrace("1.0 172.16.0.1 10.0.0.1 udp 1 2 64\njunk\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(Trace, ParseSkipsCommentsAndBlanks) {
  auto result = ParseTrace("# header\n\n1.0 172.16.0.1 10.0.0.1 udp 1 2 64 -\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records.size(), 1u);
}

TEST(Trace, RecorderCapturesSinkTraffic) {
  TraceRecorder recorder;
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_flags = 0x12;  // SYN|ACK
  Packet p = BuildPacket(spec);
  recorder.Record(p, 5 * kPsPerUs);
  ASSERT_EQ(recorder.size(), 1u);
  const std::string text = recorder.Serialize();
  EXPECT_NE(text.find("tcp"), std::string::npos);
  auto reparsed = ParseTrace(text);
  ASSERT_TRUE(reparsed.ok);
  EXPECT_EQ(reparsed.records.size(), 1u);
  EXPECT_EQ(reparsed.records[0].spec.tcp_flags, 0x12);
}

TEST(Trace, ReplayDrivesARouter) {
  Router router((RouterConfig()));
  RouteTable& table = router.route_table();
  ASSERT_TRUE(LoadRoutesFromString("10.2.0.0/16 2\n10.3.0.0/16 3\n", table).ok);
  router.WarmRouteCache(8);
  uint64_t to2 = 0, to3 = 0;
  router.port(2).SetSink([&](Packet&&) { ++to2; });
  router.port(3).SetSink([&](Packet&&) { ++to3; });
  router.Start();

  auto trace = ParseTrace(R"(
    # three packets, interleaved destinations
    100.0  172.16.0.1 10.2.0.1 udp 1000 53 64 -
    200.0  172.16.0.1 10.3.0.1 tcp 1001 80 128 SA
    300.0  172.16.0.1 10.2.0.2 udp 1002 53 64 -
  )");
  ASSERT_TRUE(trace.ok) << trace.error;
  TraceReplayer replayer(router.engine(), router.port(0));
  EXPECT_EQ(replayer.Replay(trace.records), 3);
  router.RunForMs(2.0);
  EXPECT_EQ(replayer.injected(), 3u);
  EXPECT_EQ(to2, 2u);
  EXPECT_EQ(to3, 1u);
}

TEST(Trace, RecordThenReplayReproducesWorkload) {
  // Capture egress of one run, replay it into a second router: packet
  // counts per port must match.
  TraceRecorder recorder;
  {
    Router router((RouterConfig()));
    for (int p = 0; p < 8; ++p) {
      router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
    }
    router.WarmRouteCache(16);
    for (int p = 0; p < 8; ++p) {
      router.port(p).SetSink(
          [&recorder, &router](Packet&& pkt) { recorder.Record(pkt, router.engine().now()); });
    }
    router.Start();
    TrafficSpec spec;
    spec.rate_pps = 50'000;
    spec.dst_spread = 16;
    TrafficGen gen(router.engine(), router.port(0), spec, 3);
    gen.Start(4 * kPsPerMs);
    router.RunForMs(6.0);
  }
  ASSERT_GT(recorder.size(), 100u);

  auto reparsed = ParseTrace(recorder.Serialize());
  ASSERT_TRUE(reparsed.ok);
  Router router2((RouterConfig()));
  for (int p = 0; p < 8; ++p) {
    router2.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router2.WarmRouteCache(16);
  uint64_t delivered = 0;
  for (int p = 0; p < 8; ++p) {
    router2.port(p).SetSink([&](Packet&&) { ++delivered; });
  }
  router2.Start();
  TraceReplayer replayer(router2.engine(), router2.port(0));
  replayer.Replay(reparsed.records);
  router2.RunForMs(8.0);
  EXPECT_EQ(delivered, recorder.size());
}

}  // namespace
}  // namespace npr
