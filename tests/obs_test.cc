// Observability layer: per-packet span tracing, the cycle-accounting
// profiler, and the fault-triggered flight recorder.
//
// Three end-to-end properties (they need NPR_OBS_ENABLED and skip
// otherwise) plus component unit tests that run in any build:
//   1. golden trace — the full span stream of the Table 1 line-rate config
//      at a fixed seed is bit-identical across runs and matches the golden
//      committed under tests/data/ (regenerate with NPR_REGEN_GOLDEN=1);
//   2. reconciliation — for randomized traffic/fault seeds, folding the
//      span stream reproduces RouterStats exactly, the in-flight tracker
//      balances against the conservation invariant, and the profiler's
//      cycle totals equal the MicroEngines' own accounting;
//   3. flight recorder — an injected vrp_trap dumps the faulted packet's
//      chain up to the failure point; a lost token dumps too, and the
//      health monitor's recovery span lands at the recorded MTTR.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/router.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/health_monitor.h"
#include "src/net/traffic_gen.h"
#include "src/obs/observer.h"

namespace npr {
namespace {

std::unique_ptr<Router> MakeRouter(RouterConfig cfg = RouterConfig{}) {
  auto router = std::make_unique<Router>(std::move(cfg));
  for (int p = 0; p < router->num_ports(); ++p) {
    router->AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router->WarmRouteCache(32);
  return router;
}

void DriveTraffic(Router& router, std::vector<std::unique_ptr<TrafficGen>>* gens,
                  double traffic_ms, int ports = 4, uint64_t rate_pps = 120'000,
                  uint64_t seed_base = 500) {
  for (int p = 0; p < ports; ++p) {
    TrafficSpec spec;
    spec.rate_pps = rate_pps;
    spec.dst_spread = 16;
    gens->push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                 seed_base + static_cast<uint64_t>(p)));
    gens->back()->Start(static_cast<SimTime>(traffic_ms * kPsPerMs));
  }
}

std::string RenderRecord(const SpanRecord& r) {
  char line[96];
  std::snprintf(line, sizeof(line), "%llu %s u%02x a%u p%u",
                static_cast<unsigned long long>(r.t_ps),
                SpanPointName(static_cast<SpanPoint>(r.point)), r.unit, r.arg, r.packet_id);
  return std::string(line);
}

uint64_t Fnv1a(const std::vector<SpanRecord>& records) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const SpanRecord& r : records) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(&r);
    for (size_t i = 0; i < sizeof(SpanRecord); ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

// --- golden per-packet trace (Table 1 line-rate config, fixed seed) ------

constexpr size_t kGoldenHeadLines = 256;

// One deterministic 8x100 Mbps line-rate run with full capture.
std::vector<SpanRecord> CaptureLineRateTrace() {
  RouterConfig cfg;  // real ports, Table 1 in-text configuration
  cfg.enable_pentium = false;
  Router router(std::move(cfg));
  ObserverConfig ocfg;
  ocfg.capture_reserve = 1u << 19;
  Observer obs(router.engine(), ocfg);
  router.SetObserver(&obs);
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(64);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 1)));
    gens.back()->Start(2 * kPsPerMs);
  }
  router.RunForMs(3.0);
  EXPECT_FALSE(obs.capture_truncated()) << "raise capture_reserve";
  EXPECT_EQ(obs.tracker_overflows(), 0u);
  return obs.capture();
}

TEST(GoldenTraceTest, LineRateSpanStreamIsDeterministicAndMatchesGolden) {
#if !defined(NPR_OBS_ENABLED)
  GTEST_SKIP() << "built with NPR_OBS=OFF";
#else
  const std::vector<SpanRecord> first = CaptureLineRateTrace();
  const std::vector<SpanRecord> second = CaptureLineRateTrace();
  ASSERT_GT(first.size(), 10'000u) << "line-rate run produced almost no spans";
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    const std::string a = RenderRecord(first[i]);
    const std::string b = RenderRecord(second[i]);
    ASSERT_EQ(a, b) << "trace diverges at record " << i;
  }

  const std::string path = std::string(TESTS_DATA_DIR) + "/obs_golden_trace.txt";
  char header[128];
  std::snprintf(header, sizeof(header), "records %llu\nfnv1a %016llx\n",
                static_cast<unsigned long long>(first.size()),
                static_cast<unsigned long long>(Fnv1a(first)));
  std::string expected(header);
  for (size_t i = 0; i < std::min(first.size(), kGoldenHeadLines); ++i) {
    expected += RenderRecord(first[i]);
    expected += '\n';
  }

  if (std::getenv("NPR_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(expected.data(), 1, expected.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "missing golden " << path
                        << " (regenerate with NPR_REGEN_GOLDEN=1)";
  std::string golden;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    golden.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(golden, expected)
      << "span stream diverged from the committed golden; if the router's "
         "timing changed intentionally, regenerate with NPR_REGEN_GOLDEN=1";
#endif
}

// --- reconciliation: span fold == RouterStats, profiler == engines -------

TEST(ReconciliationTest, SpanFoldMatchesRouterStatsAcrossSeedsAndFaults) {
#if !defined(NPR_OBS_ENABLED)
  GTEST_SKIP() << "built with NPR_OBS=OFF";
#else
  struct Case {
    uint64_t seed;
    bool chaos;
  };
  const Case cases[] = {{1, false}, {2, true}, {3, true}, {4, false}};
  for (const Case& c : cases) {
    SCOPED_TRACE("seed=" + std::to_string(c.seed) + (c.chaos ? " chaos" : " fault-free"));
    RouterConfig cfg;
    if (c.chaos) {
      // Chaos (frame faults, bit flips, crashes, descriptor corruption)
      // but no degraded-mode shedding: a shed pop does not re-validate the
      // buffer generation, so a lapped buffer would erase the successor's
      // track and the accounting below is only exact without shedding.
      cfg.fault_plan = FaultPlan::Chaos(c.seed);
    }
    auto router = MakeRouter(std::move(cfg));
    ObserverConfig ocfg;
    ocfg.tracker_slots = 1u << 16;
    Observer obs(router->engine(), ocfg);
    router->SetObserver(&obs);
    router->Start();
    std::vector<std::unique_ptr<TrafficGen>> gens;
    DriveTraffic(*router, &gens, 6.0, /*ports=*/4, /*rate_pps=*/120'000,
                 /*seed_base=*/700 * c.seed);
    router->RunForMs(10.0);  // 4 ms drain after the last frame

    const RouterStats& stats = router->stats();
    ASSERT_GT(stats.forwarded, 1000u);
    ASSERT_EQ(obs.tracker_overflows(), 0u);

    // Every RouterStats disposition counter has exactly one span point
    // recorded adjacent to it.
    EXPECT_EQ(obs.point_count(SpanPoint::kPktIngress), stats.input.packets);
    EXPECT_EQ(obs.point_count(SpanPoint::kPktTxComplete), stats.forwarded);
    EXPECT_EQ(obs.point_count(SpanPoint::kDropInvalid), stats.dropped_invalid);
    EXPECT_EQ(obs.point_count(SpanPoint::kDropVrp), stats.dropped_by_vrp);
    EXPECT_EQ(obs.point_count(SpanPoint::kDropQueueFull), stats.dropped_queue_full);
    EXPECT_EQ(obs.point_count(SpanPoint::kDropNoBuffer), stats.dropped_no_buffer);
    EXPECT_EQ(obs.point_count(SpanPoint::kOutLostLap), stats.lost_overwritten);
    EXPECT_EQ(obs.point_count(SpanPoint::kSaLapped), stats.sa_lapped);
    EXPECT_EQ(obs.point_count(SpanPoint::kSaAbsorbed), stats.sa_absorbed);
    EXPECT_EQ(obs.point_count(SpanPoint::kPeAbsorbed), stats.pe_absorbed);
    EXPECT_EQ(obs.point_count(SpanPoint::kSaShedPe), stats.pkts_shed_degraded);
    EXPECT_EQ(obs.point_count(SpanPoint::kIcmpOriginated), stats.icmp_originated);
    EXPECT_EQ(obs.point_count(SpanPoint::kSaDequeued), stats.sa_local_processed)
        << "every valid StrongARM dequeue is one locally processed packet";
    EXPECT_EQ(obs.point_count(SpanPoint::kPeServiced), stats.pentium_processed);

    uint64_t corrupt_drops = 0;
    for (const auto& q : router->queues().all_queues()) {
      corrupt_drops += q->corrupt_drops();
    }
    corrupt_drops += router->sa_local_queue().corrupt_drops();
    corrupt_drops += router->sa_pentium_queue().corrupt_drops();
    EXPECT_EQ(obs.point_count(SpanPoint::kQueueCorrupt), corrupt_drops);

    // The span fold reproduces the conservation balance the invariant
    // checker computes from the counters.
    const InvariantReport report = RouterInvariants::CheckAll(*router);
    EXPECT_TRUE(report.ok()) << report.ToString();
    ASSERT_TRUE(report.conservation_checked);
    EXPECT_EQ(obs.point_count(SpanPoint::kPktIngress) +
                  obs.point_count(SpanPoint::kIcmpOriginated),
              report.sources);

    // Tracker balance: a chain stays open iff the packet is visibly in
    // flight or left through a path that cannot name it (lapped buffers,
    // corrupted descriptors).
    EXPECT_EQ(obs.tracker_live(),
              report.in_flight + stats.lost_overwritten + stats.sa_lapped + corrupt_drops);

    // Forwarded packets split across the per-path latency histograms.
    uint64_t path_total = 0;
    for (int p = 0; p < kPathKindCount; ++p) {
      path_total += obs.path_latency(static_cast<PathKind>(p)).count();
    }
    EXPECT_EQ(path_total, stats.forwarded);

    // Per-stage cycle sums equal the profiler totals: the profiler's view
    // of each context and engine matches the hardware model's own books.
    for (int me = 0; me < router->chip().num_mes(); ++me) {
      MicroEngine& engine = router->chip().me(me);
      EXPECT_EQ(obs.profiler().EngineComputeCycles(static_cast<uint8_t>(me)),
                engine.busy_cycles())
          << "engine " << me;
      for (int ctx = 0; ctx < engine.num_contexts(); ++ctx) {
        EXPECT_EQ(obs.profiler()
                      .slot(static_cast<uint8_t>(me), static_cast<uint8_t>(ctx))
                      .compute_cycles,
                  engine.context(ctx).compute_cycles())
            << "engine " << me << " ctx " << ctx;
      }
    }
  }
#endif
}

// --- flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, VrpTrapDumpContainsFaultedPacketChain) {
#if !defined(NPR_OBS_ENABLED)
  GTEST_SKIP() << "built with NPR_OBS=OFF";
#else
  FaultPlan plan;
  plan.vrp_trap_p = 1.0;  // the first VRP run traps
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  Observer obs(router->engine());
  router->SetObserver(&obs);
  router->Start();

  VrpProgram monitor = BuildSynMonitor();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &monitor;
  const InstallOutcome outcome = router->Install(req);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 4.0, /*ports=*/1);
  router->RunForMs(6.0);

  ASSERT_GT(router->stats().vrp_traps, 0u);
  const FlightRecorder& rec = obs.recorder();
  ASSERT_TRUE(rec.has_dump());
  const FlightRecorder::Dump& dump = rec.dump();
  EXPECT_EQ(dump.reason, "vrp_trap");
  ASSERT_NE(dump.packet_id, 0u);
  EXPECT_EQ(rec.dump_triggers(), router->stats().vrp_traps)
      << "every trap triggers; only the first dump is kept";

  // The dump must hold the faulted packet's chain up to the failure point:
  // wire arrival, ingress, then the fault — and nothing after it, because
  // the snapshot was taken at the instant of the trap.
  std::vector<SpanPoint> chain;
  for (const SpanRecord& r : dump.records) {
    if (r.packet_id == dump.packet_id) {
      chain.push_back(static_cast<SpanPoint>(r.point));
    }
  }
  ASSERT_GE(chain.size(), 3u) << FlightRecorder::Format(dump);
  EXPECT_EQ(chain.front(), SpanPoint::kMacRxFrame);
  EXPECT_EQ(chain[1], SpanPoint::kPktIngress);
  EXPECT_EQ(chain.back(), SpanPoint::kFault);
  const std::string text = FlightRecorder::Format(dump);
  EXPECT_NE(text.find("vrp_trap"), std::string::npos);
  EXPECT_NE(text.find("fault"), std::string::npos);
#endif
}

TEST(FlightRecorderTest, LostTokenDumpAndRecoverySpanAfterMttr) {
#if !defined(NPR_OBS_ENABLED)
  GTEST_SKIP() << "built with NPR_OBS=OFF";
#else
  FaultPlan plan;
  plan.token_lost_p = 5e-5;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  auto router = MakeRouter(std::move(cfg));
  ObserverConfig ocfg;
  ocfg.capture_reserve = 1u << 20;
  Observer obs(router->engine(), ocfg);
  router->SetObserver(&obs);
  router->Start();
  HealthMonitor health(*router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  DriveTraffic(*router, &gens, 10.0);
  router->RunForMs(13.0);

  ASSERT_GT(router->stats().tokens_regenerated, 0u);
  ASSERT_TRUE(obs.recorder().has_dump());
  EXPECT_EQ(obs.recorder().dump().reason, "token_lost");
  ASSERT_GT(obs.point_count(SpanPoint::kRecovery), 0u);

  // Each token regeneration leaves a recovery span stamped exactly at the
  // event's recovered_at — i.e. MTTR after the fault the dump recorded.
  size_t regens_matched = 0;
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind != RecoveryEvent::Kind::kTokenRegen) {
      continue;
    }
    bool found = false;
    for (const SpanRecord& r : obs.capture()) {
      if (static_cast<SpanPoint>(r.point) == SpanPoint::kRecovery &&
          r.unit == kUnitHealth &&
          r.arg == static_cast<uint16_t>(RecoveryEvent::Kind::kTokenRegen) &&
          r.t_ps == static_cast<uint64_t>(e.recovered_at)) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no recovery span at recovered_at=" << e.recovered_at;
    EXPECT_EQ(e.mttr_ps(), e.recovered_at - e.fault_at);
    EXPECT_GE(e.mttr_ps(), health.config().token_deadline_ps);
    ++regens_matched;
  }
  EXPECT_GT(regens_matched, 0u);
  // The recovery span postdates the fault evidence in the dump.
  for (const SpanRecord& r : obs.capture()) {
    if (static_cast<SpanPoint>(r.point) == SpanPoint::kRecovery) {
      EXPECT_GT(r.t_ps, static_cast<uint64_t>(obs.recorder().dump().t_ps));
      break;
    }
  }
#endif
}

// --- component unit tests (run in any build; Record() is gated only at
// the hook sites, not on the Observer API itself) -------------------------

TEST(SpanTest, NamesAreStableAndTerminalsClassified) {
  for (int p = 0; p < kSpanPointCount; ++p) {
    EXPECT_STRNE(SpanPointName(static_cast<SpanPoint>(p)), "?") << "point " << p;
  }
  EXPECT_STREQ(SpanPointName(SpanPoint::kPktIngress), "in.ingress");
  EXPECT_STREQ(SpanPointName(SpanPoint::kPktTxComplete), "out.tx_complete");
  EXPECT_TRUE(IsTerminal(SpanPoint::kDropVrp));
  EXPECT_TRUE(IsErasingTerminal(SpanPoint::kDropVrp));
  EXPECT_TRUE(IsTerminal(SpanPoint::kOutLostLap));
  EXPECT_FALSE(IsErasingTerminal(SpanPoint::kOutLostLap));
  EXPECT_TRUE(IsTerminal(SpanPoint::kSaLapped));
  EXPECT_FALSE(IsErasingTerminal(SpanPoint::kSaLapped));
  EXPECT_FALSE(IsTerminal(SpanPoint::kQueuePush));
  EXPECT_EQ(ContextUnit(3, 2), 14);
}

TEST(FlightRecorderUnitTest, RingWrapsAndFirstDumpWins) {
  FlightRecorder rec(4);  // clamped up to the minimum capacity
  EXPECT_GE(rec.capacity(), 16u);
  const size_t cap = rec.capacity();
  for (uint64_t i = 0; i < cap + 10; ++i) {
    rec.Record(SpanRecord{i, static_cast<uint32_t>(i), 0, 0, 0});
  }
  EXPECT_EQ(rec.size(), cap);
  const std::vector<SpanRecord> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), cap);
  EXPECT_EQ(snap.front().t_ps, 10u);  // oldest surviving record
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].t_ps, snap[i].t_ps);
  }

  rec.TriggerDump("first", 7, 123);
  rec.TriggerDump("second", 8, 456);
  EXPECT_TRUE(rec.has_dump());
  EXPECT_EQ(rec.dump_triggers(), 2u);
  EXPECT_EQ(rec.dump().reason, "first");
  EXPECT_EQ(rec.dump().packet_id, 7u);
  EXPECT_EQ(rec.dump().t_ps, 123);
  EXPECT_EQ(rec.dump().records.size(), cap);
  const std::string text = FlightRecorder::Format(rec.dump());
  EXPECT_NE(text.find("first"), std::string::npos);

  rec.Reset();
  EXPECT_FALSE(rec.has_dump());
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dump_triggers(), 0u);
}

TEST(CycleProfilerUnitTest, AttributionAndAggregates) {
  CycleProfiler prof;
  prof.AddCompute(0, 0, 100);
  prof.AddCompute(0, 1, 50);
  prof.AddCompute(2, 3, 25);
  prof.AddWait(0, 0, WaitClass::kDram, 1000);
  prof.AddWait(0, 0, WaitClass::kDram, 500);
  prof.AddWait(0, 1, WaitClass::kToken, 2000);
  prof.AddWait(2, 3, WaitClass::kMutex, 300);

  EXPECT_EQ(prof.slot(0, 0).compute_cycles, 100u);
  EXPECT_EQ(prof.slot(0, 0).compute_bursts, 1u);
  EXPECT_EQ(prof.slot(0, 0).wait_ps[static_cast<int>(WaitClass::kDram)], 1500u);
  EXPECT_EQ(prof.slot(0, 0).waits[static_cast<int>(WaitClass::kDram)], 2u);
  EXPECT_EQ(prof.EngineComputeCycles(0), 150u);
  EXPECT_EQ(prof.EngineWaitPs(0, WaitClass::kToken), 2000u);
  EXPECT_EQ(prof.TotalComputeCycles(), 175u);
  EXPECT_EQ(prof.TotalWaitPs(WaitClass::kMutex), 300u);
  for (int w = 0; w < kWaitClassCount; ++w) {
    EXPECT_STRNE(WaitClassName(static_cast<WaitClass>(w)), "?");
  }
  const std::string report = prof.Report();
  EXPECT_NE(report.find("me0"), std::string::npos);
  EXPECT_NE(report.find("me2"), std::string::npos);
  EXPECT_EQ(report.find("me1"), std::string::npos) << "idle engines are omitted";

  prof.Reset();
  EXPECT_EQ(prof.TotalComputeCycles(), 0u);
  EXPECT_EQ(prof.TotalWaitPs(WaitClass::kDram), 0u);
}

// Drives Observer::Record directly at controlled simulated times. Each
// Run() advances the epoch so a later At() never schedules into the past.
class ObserverHarness {
 public:
  explicit ObserverHarness(ObserverConfig cfg = {}) : obs_(engine_, cfg) {}

  void At(SimTime t, SpanPoint p, uint32_t id, uint8_t unit = 0, uint16_t arg = 0) {
    engine_.Schedule(epoch_ + t, [this, p, id, unit, arg] { obs_.Record(p, id, unit, arg); });
  }
  void Run() {
    engine_.RunFor(1 * kPsPerMs);
    epoch_ += 1 * kPsPerMs;
  }

  EventQueue engine_;
  Observer obs_;
  SimTime epoch_ = 0;
};

TEST(ObserverUnitTest, PathClassificationAndHopHistograms) {
  ObserverHarness h;
  // Path A: ingress -> enqueued -> queue wait -> output -> tx.
  h.At(1000, SpanPoint::kPktIngress, 1);
  h.At(3000, SpanPoint::kInEnqueued, 1);
  h.At(9000, SpanPoint::kOutDequeued, 1);
  h.At(12'000, SpanPoint::kPktTxComplete, 1);
  // Path B: diverted to the StrongARM.
  h.At(2000, SpanPoint::kPktIngress, 2);
  h.At(4000, SpanPoint::kInToSa, 2);
  h.At(20'000, SpanPoint::kSaDequeued, 2);
  h.At(30'000, SpanPoint::kSaForwarded, 2);
  h.At(40'000, SpanPoint::kOutDequeued, 2);
  h.At(52'000, SpanPoint::kPktTxComplete, 2);
  // Path C: to the Pentium and back.
  h.At(5000, SpanPoint::kPktIngress, 3);
  h.At(6000, SpanPoint::kInToPe, 3);
  h.At(7000, SpanPoint::kBridgeToPe, 3);
  h.At(8000, SpanPoint::kPeIntake, 3);
  h.At(9000, SpanPoint::kPeServiced, 3);
  h.At(10'000, SpanPoint::kPeReturned, 3);
  h.At(11'000, SpanPoint::kSaReturnEnqueued, 3);
  h.At(13'000, SpanPoint::kOutDequeued, 3);
  h.At(15'000, SpanPoint::kPktTxComplete, 3);
  h.Run();

  EXPECT_EQ(h.obs_.records(), 19u);
  EXPECT_EQ(h.obs_.tracker_live(), 0u);
  EXPECT_EQ(h.obs_.path_latency(PathKind::kPathA).count(), 1u);
  EXPECT_EQ(h.obs_.path_latency(PathKind::kPathB).count(), 1u);
  EXPECT_EQ(h.obs_.path_latency(PathKind::kPathC).count(), 1u);
  // End-to-end: (12000 - 1000) ps = 11 ns for packet 1.
  EXPECT_EQ(h.obs_.path_latency(PathKind::kPathA).max(), 11u);
  EXPECT_EQ(h.obs_.path_latency(PathKind::kPathB).max(), 50u);
  EXPECT_GT(h.obs_.hop_latency(HopKind::kInput).count(), 0u);
  EXPECT_GT(h.obs_.hop_latency(HopKind::kQueueWait).count(), 0u);
  EXPECT_GT(h.obs_.hop_latency(HopKind::kOutput).count(), 0u);
  EXPECT_GT(h.obs_.hop_latency(HopKind::kSaService).count(), 0u);
  EXPECT_GT(h.obs_.hop_latency(HopKind::kPeService).count(), 0u);
}

TEST(ObserverUnitTest, TerminalsEraseAndLapPointsDoNot) {
  ObserverHarness h;
  h.At(1000, SpanPoint::kPktIngress, 10);
  h.At(2000, SpanPoint::kDropInvalid, 10);  // erases
  h.At(3000, SpanPoint::kPktIngress, 11);
  h.At(4000, SpanPoint::kOutLostLap, 12);   // successor id: must not erase 11
  h.At(5000, SpanPoint::kIcmpOriginated, 13);  // a source: opens a chain
  h.At(6000, SpanPoint::kQueuePush, 11);    // buffer-index points never track
  h.At(7000, SpanPoint::kFault, 11);        // fault spans never track
  h.Run();

  EXPECT_EQ(h.obs_.tracker_live(), 2u);  // 11 (lapped away) and 13 (in flight)
  EXPECT_EQ(h.obs_.point_count(SpanPoint::kOutLostLap), 1u);
  EXPECT_EQ(h.obs_.point_count(SpanPoint::kQueuePush), 1u);
  // Untracked ids are ignored, id 0 is never tracked.
  h.At(8000, SpanPoint::kPktTxComplete, 99);
  h.At(9000, SpanPoint::kPktIngress, 0);
  h.Run();
  EXPECT_EQ(h.obs_.tracker_live(), 2u);
}

TEST(ObserverUnitTest, TrackerCollisionsBackwardShiftAndOverflow) {
  ObserverConfig cfg;
  cfg.tracker_slots = 64;  // force collisions: ids 1, 65, 129 share a home
  ObserverHarness h(cfg);
  h.At(1000, SpanPoint::kPktIngress, 1);
  h.At(1100, SpanPoint::kPktIngress, 65);
  h.At(1200, SpanPoint::kPktIngress, 129);
  h.At(2000, SpanPoint::kDropInvalid, 65);  // erase the middle of the chain
  h.Run();
  EXPECT_EQ(h.obs_.tracker_live(), 2u);
  // Both survivors must still be findable after the backward shift.
  h.At(3000, SpanPoint::kDropInvalid, 129);
  h.At(3100, SpanPoint::kDropInvalid, 1);
  h.Run();
  EXPECT_EQ(h.obs_.tracker_live(), 0u);

  // Fill the table far past capacity: FindOrCreate gives up after its probe
  // bound and counts the overflow instead of clobbering live chains.
  for (uint32_t i = 0; i < 300; ++i) {
    h.At(4000 + i, SpanPoint::kPktIngress, 1000 + i);
  }
  h.Run();
  EXPECT_GT(h.obs_.tracker_overflows(), 0u);
  EXPECT_LE(h.obs_.tracker_live(), 64u);
}

TEST(ObserverUnitTest, CaptureReserveTruncatesInsteadOfGrowing) {
  ObserverConfig cfg;
  cfg.capture_reserve = 4;
  ObserverHarness h(cfg);
  for (uint32_t i = 0; i < 10; ++i) {
    h.At(1000 + i, SpanPoint::kMacRxFrame, i, kUnitMacBase);
  }
  h.Run();
  EXPECT_EQ(h.obs_.capture().size(), 4u);
  EXPECT_TRUE(h.obs_.capture_truncated());
  EXPECT_EQ(h.obs_.records(), 10u);  // counting is not truncated
}

}  // namespace
}  // namespace npr
