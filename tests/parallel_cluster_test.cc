// Sharded cluster simulation (conservative lookahead): ShardPool/ShardGroup
// unit tests, sharded-cluster smoke, the parallel-vs-sequential bit-identity
// matrix across seeds × fault plans, and the lookahead-violation check.
//
// Every suite is prefixed ParallelCluster so ci/sanitize.sh can run exactly
// this file under ThreadSanitizer (-R ParallelCluster).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <vector>

#include "src/cluster/cluster_control.h"
#include "src/fault/fault_plan.h"
#include "src/fault/router_invariants.h"
#include "src/health/cluster_health.h"
#include "src/health/health_monitor.h"
#include "src/obs/observer.h"
#include "src/sim/random.h"
#include "src/sim/shard_group.h"

namespace npr {
namespace {

// --- ShardPool ----------------------------------------------------------

TEST(ParallelClusterPool, RunsEveryIndexExactlyOnceAndIsReusable) {
  for (int threads : {1, 2, 4}) {
    ShardPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    for (int round = 0; round < 64; ++round) {
      std::vector<std::atomic<int>> hits(33);
      pool.Run(33, [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
      for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " round=" << round
                                     << " index=" << i;
      }
    }
  }
}

TEST(ParallelClusterPool, HandlesMoreWorkThanThreadsAndEmptyRuns) {
  ShardPool pool(3);
  pool.Run(0, [](int) { FAIL() << "no indices to run"; });
  std::atomic<int> sum{0};
  pool.Run(100, [&sum](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

// --- ShardGroup ---------------------------------------------------------

// A self-rescheduling per-queue ticker; shard events touch only their own
// queue's state, as the sharding contract requires.
struct Ticker {
  EventQueue* q = nullptr;
  SimTime period = 0;
  SimTime stop = 0;
  uint64_t count = 0;

  void Start() {
    q->ScheduleIn(period, [this] { Tick(); });
  }
  void Tick() {
    ++count;
    if (q->now() + period <= stop) {
      q->ScheduleIn(period, [this] { Tick(); });
    }
  }
};

TEST(ParallelClusterGroup, WindowedRunAdvancesEveryClockAndCountsEvents) {
  for (int threads : {1, 2}) {
    EventQueue hub;
    EventQueue a;
    EventQueue b;
    ShardGroup group(&hub, {&a, &b}, 1000, threads);

    Ticker ha{&hub, 250, 10'000};
    Ticker ta{&a, 100, 10'000};
    Ticker tb{&b, 170, 10'000};
    ha.Start();
    ta.Start();
    tb.Start();
    group.RunUntil(10'000);

    EXPECT_EQ(group.now(), 10'000);
    EXPECT_EQ(hub.now(), 10'000);
    EXPECT_EQ(a.now(), 10'000);
    EXPECT_EQ(b.now(), 10'000);
    EXPECT_EQ(group.windows_run(), 10u);
    EXPECT_EQ(ha.count, 40u) << "threads=" << threads;
    EXPECT_EQ(ta.count, 100u);
    EXPECT_EQ(tb.count, 58u);
    EXPECT_EQ(group.events_run(), hub.events_run() + a.events_run() + b.events_run());
  }
}

TEST(ParallelClusterGroup, MergeHookRunsOncePerWindowBeforeTheHubPhase) {
  EventQueue hub;
  EventQueue shard;
  ShardGroup group(&hub, {&shard}, 500, 1);
  std::vector<SimTime> window_starts;
  group.set_merge_hook([&](SimTime window_start) {
    // The hook sees the hub still parked at the window start.
    EXPECT_EQ(hub.now(), window_start);
    window_starts.push_back(window_start);
  });
  group.RunUntil(2'000);
  ASSERT_EQ(window_starts.size(), 4u);
  EXPECT_EQ(window_starts, (std::vector<SimTime>{0, 500, 1000, 1500}));
  // A partial final window is clamped to the requested end time.
  group.RunUntil(2'200);
  EXPECT_EQ(window_starts.back(), 2'000);
  EXPECT_EQ(group.now(), 2'200);
  EXPECT_EQ(shard.now(), 2'200);
}

TEST(ParallelClusterGroup, HubPhaseMaySeedShardsWithinTheWindow) {
  // The hub schedules work into a shard for the same window — legal because
  // shards still sit at the window start during the hub phase. This is how
  // deferred fabric delivery lands frames on the destination shard.
  EventQueue hub;
  EventQueue shard;
  ShardGroup group(&hub, {&shard}, 1000, 2);
  uint64_t shard_ran_at = 0;
  hub.Schedule(1'500, [&] {
    shard.Schedule(1'500, [&] { shard_ran_at = shard.now(); });
  });
  group.RunUntil(3'000);
  EXPECT_EQ(shard_ran_at, 1'500u);
}

// --- sharded cluster smoke ---------------------------------------------

TEST(ParallelClusterSmoke, CrossNodeFrameArrivesWithFabricLatency) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.fabric_latency_ps = 2 * kPsPerUs;
  ClusterRouter cluster(std::move(cfg));
  ASSERT_TRUE(cluster.sharded());
  cluster.InstallClusterRoutes();

  std::vector<uint64_t> delivered(static_cast<size_t>(cluster.num_nodes()), 0);
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered, k](Packet&&) { ++delivered[static_cast<size_t>(k)]; });
    }
  }
  cluster.Start();

  // Node 0 port 0 takes a packet for a prefix behind node 1.
  PacketSpec spec;
  spec.dst_ip = cluster.ExternalDstIp(1 * cluster.external_ports_per_node() + 3, 1);
  spec.src_ip = cluster.ExternalDstIp(0, 200);
  cluster.node(0).port(0).InjectFromWire(BuildPacket(spec));

  cluster.RunForMs(2.0);
  EXPECT_EQ(delivered[1], 1u) << "cross-node packet must arrive through the mailbox path";
  EXPECT_EQ(cluster.fabric().forwarded(), 1u);
  EXPECT_GT(cluster.TotalEventsRun(), 0u);
  EXPECT_EQ(cluster.now(), 2 * kPsPerMs);

  const InvariantReport report = RouterInvariants::CheckCluster(cluster);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

// --- determinism matrix -------------------------------------------------

std::string RenderSpan(const SpanRecord& r) {
  char line[96];
  std::snprintf(line, sizeof(line), "%llu %s u%02x a%u p%u",
                static_cast<unsigned long long>(r.t_ps),
                SpanPointName(static_cast<SpanPoint>(r.point)), r.unit, r.arg, r.packet_id);
  return std::string(line);
}

// One deterministic per-node traffic source living on that node's shard.
struct NodePump {
  ClusterRouter* cluster = nullptr;
  int node = 0;
  Rng rng{1};
  SimTime gap = 0;
  SimTime stop = 0;
  uint32_t next_id = 1;

  void Start() { cluster->node_engine(node).ScheduleIn(gap, [this] { Tick(); }); }
  void Tick() {
    // Remote destinations half the time: plenty of mailbox traffic.
    int g;
    if (rng.Chance(0.5)) {
      int other;
      do {
        other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster->num_nodes())));
      } while (other == node);
      g = other * cluster->external_ports_per_node() +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node())));
    } else {
      g = node * cluster->external_ports_per_node() + 1 +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node() - 1)));
    }
    PacketSpec spec;
    spec.dst_ip = cluster->ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
    spec.src_ip = cluster->ExternalDstIp(node * cluster->external_ports_per_node(), 200);
    Packet packet = BuildPacket(spec);
    packet.set_id((static_cast<uint32_t>(node) << 24) | next_id++);
    cluster->node(node).port(0).InjectFromWire(std::move(packet));
    if (cluster->node_engine(node).now() + gap <= stop) {
      cluster->node_engine(node).ScheduleIn(gap, [this] { Tick(); });
    }
  }
};

// Runs a fully-loaded sharded cluster (control plane, federated + intra-node
// health, observers, per-node pumps, fault plan) and fingerprints everything
// observable: stats, fabric accounting, control traces, recovery events,
// span traces, event counts. Bit-identity of this string across `threads`
// values is the tentpole's determinism guarantee.
std::string RunFingerprint(uint64_t seed, const FaultPlan& plan, int threads) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.internal_links = 2;
  cfg.fabric_latency_ps = 2 * kPsPerUs;
  cfg.threads = threads;
  cfg.node_config.fault_plan = plan;
  ClusterRouter cluster(std::move(cfg));

  ClusterControlPlane control(cluster);
  control.Start();
  ClusterHealthMonitor health(cluster, control);

  std::vector<std::unique_ptr<HealthMonitor>> monitors;
  std::vector<std::unique_ptr<Observer>> observers;
  std::vector<std::vector<uint64_t>> delivered(
      static_cast<size_t>(cluster.num_nodes()),
      std::vector<uint64_t>(static_cast<size_t>(cluster.external_ports_per_node()), 0));
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    // Intra-node recovery runs on the node's own shard (HealthMonitor
    // schedules on router.engine()); observers are per-shard too, merged
    // into the fingerprint at fold time below.
    monitors.push_back(std::make_unique<HealthMonitor>(cluster.node(k)));
    ObserverConfig oc;
    oc.capture_reserve = 1 << 15;
    observers.push_back(std::make_unique<Observer>(cluster.node_engine(k), oc));
    cluster.node(k).SetObserver(observers.back().get());
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered, k, p](Packet&&) {
        ++delivered[static_cast<size_t>(k)][static_cast<size_t>(p)];
      });
    }
  }
  cluster.Start();

  std::vector<std::unique_ptr<NodePump>> pumps;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    auto pump = std::make_unique<NodePump>();
    pump->cluster = &cluster;
    pump->node = k;
    pump->rng = Rng(FaultPlan::DeriveNodeSeed(seed, k));
    pump->gap = static_cast<SimTime>(kPsPerSec / 141'000);
    pump->stop = 3 * kPsPerMs;
    pump->Start();
    pumps.push_back(std::move(pump));
  }

  cluster.RunForMs(4.0);

  std::ostringstream out;
  out << "events=" << cluster.TotalEventsRun() << " now=" << cluster.now() << "\n";
  for (int plane = 0; plane < cluster.num_planes(); ++plane) {
    const SwitchFabric& fab = cluster.fabric(plane);
    out << "plane " << plane << " fwd=" << fab.forwarded() << " gate=" << fab.gate_dropped()
        << " unknown=" << fab.unknown_destination() << "\n";
  }
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    const RouterStats& st = cluster.node(k).stats();
    out << "node " << k << " fwd=" << st.forwarded << " qdrop=" << st.dropped_queue_full
        << " icmp=" << st.icmp_originated << " ctrl_to=" << st.ctrl_timeouts
        << " watchdog=" << st.watchdog_fired << " tokregen=" << st.tokens_regenerated
        << " deliveries=";
    for (uint64_t d : delivered[static_cast<size_t>(k)]) {
      out << d << ",";
    }
    out << "\n";
  }
  for (const std::string& line : control.trace()) {
    out << "ctl " << line << "\n";
  }
  for (const RecoveryEvent& ev : health.events()) {
    out << "ev k=" << static_cast<int>(ev.kind) << " f=" << ev.fault_at
        << " d=" << ev.detected_at << " r=" << ev.recovered_at << "\n";
  }
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (const RecoveryEvent& ev : monitors[static_cast<size_t>(k)]->events()) {
      out << "nodeev " << k << " k=" << static_cast<int>(ev.kind) << " f=" << ev.fault_at
          << " d=" << ev.detected_at << " r=" << ev.recovered_at << "\n";
    }
  }
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    const Observer& obs = *observers[static_cast<size_t>(k)];
    out << "spans " << k << " n=" << obs.records() << "\n";
    for (const SpanRecord& r : obs.capture()) {
      out << "s" << k << " " << RenderSpan(r) << "\n";
    }
  }
  return out.str();
}

TEST(ParallelClusterDeterminism, ParallelEqualsSequentialAcrossSeedAndPlanMatrix) {
  struct PlanCase {
    const char* name;
    FaultPlan (*make)(uint64_t seed);
  };
  const PlanCase cases[] = {
      {"NoFaults", [](uint64_t seed) {
         FaultPlan plan;
         plan.seed = seed;
         return plan;
       }},
      {"RecoveryChaos", [](uint64_t seed) { return FaultPlan::RecoveryChaos(seed); }},
      {"ClusterChaos", [](uint64_t seed) { return FaultPlan::ClusterChaos(seed); }},
  };
  for (const uint64_t seed : {0xfa017ULL, 0x5eed1ULL}) {
    for (const PlanCase& pc : cases) {
      const std::string seq = RunFingerprint(seed, pc.make(seed), 1);
      const std::string par = RunFingerprint(seed, pc.make(seed), 4);
      ASSERT_FALSE(seq.empty());
      // EXPECT_EQ on the full strings would print megabytes on failure;
      // compare and report a compact diff position instead.
      if (seq != par) {
        size_t pos = 0;
        while (pos < seq.size() && pos < par.size() && seq[pos] == par[pos]) {
          ++pos;
        }
        FAIL() << "plan=" << pc.name << " seed=" << seed
               << ": parallel diverges from sequential at byte " << pos << ":\n  seq: ..."
               << seq.substr(pos > 60 ? pos - 60 : 0, 120) << "\n  par: ..."
               << par.substr(pos > 60 ? pos - 60 : 0, 120);
      }
    }
  }
}

TEST(ParallelClusterDeterminism, DifferentSeedsDiverge) {
  FaultPlan a;
  a.seed = 1;
  FaultPlan b;
  b.seed = 2;
  EXPECT_NE(RunFingerprint(0xfa017ULL, a, 2), RunFingerprint(0x5eed1ULL, b, 2));
}

// --- lookahead violation ------------------------------------------------

TEST(ParallelClusterLookahead, WindowWiderThanFabricLatencyFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run = [] {
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.fabric_latency_ps = 2 * kPsPerUs;
    cfg.window_ps = 8 * kPsPerUs;  // 4x the lookahead: frames land mid-window
    cfg.threads = 1;               // single-threaded so the death is fork-safe
    ClusterRouter cluster(std::move(cfg));
    cluster.InstallClusterRoutes();
    cluster.Start();
    // Enough cross-node traffic that some frame is transmitted early in a
    // window and therefore due before the next one starts.
    for (uint16_t i = 0; i < 32; ++i) {
      PacketSpec spec;
      spec.dst_ip = cluster.ExternalDstIp(1 * cluster.external_ports_per_node() + 1, 1 + i % 8);
      spec.src_ip = cluster.ExternalDstIp(0, 200);
      cluster.node(0).port(0).InjectFromWire(BuildPacket(spec));
    }
    cluster.RunForMs(1.0);
  };
  EXPECT_DEATH(run(), "lookahead violation");
}

}  // namespace
}  // namespace npr
