// Single-context processor model, used for the StrongARM core and the host
// Pentium III.
//
// Unlike a MicroEngine, a SoftCore has one context and stalls on its own
// memory references (no latency hiding); what matters for the paper's
// results is its cycle *rate* and the contention its memory traffic adds to
// the shared channels (the StrongARM shares SRAM/DRAM bandwidth with the
// MicroEngines, §4.1).

#ifndef SRC_IXP_SOFT_CORE_H_
#define SRC_IXP_SOFT_CORE_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>

#include "src/mem/memory_channel.h"
#include "src/sim/event_queue.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace npr {

class SoftCore {
 public:
  SoftCore(EventQueue& engine, ClockDomain clock, std::string name)
      : engine_(engine), clock_(clock), name_(std::move(name)) {}

  SoftCore(const SoftCore&) = delete;
  SoftCore& operator=(const SoftCore&) = delete;

  // Occupies the core for `cycles` of its own clock.
  struct ComputeAwaiter {
    SoftCore* core;
    uint64_t cycles;
    bool await_ready() const { return cycles == 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  ComputeAwaiter Compute(uint64_t cycles) { return ComputeAwaiter{this, cycles}; }

  // Issues an access on a shared channel and stalls until it completes.
  struct MemAwaiter {
    SoftCore* core;
    MemoryChannel* channel;
    uint32_t bytes;
    bool is_write;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  MemAwaiter Read(MemoryChannel& channel, uint32_t bytes) {
    return MemAwaiter{this, &channel, bytes, false};
  }
  MemAwaiter Write(MemoryChannel& channel, uint32_t bytes) {
    return MemAwaiter{this, &channel, bytes, true};
  }

  // Posted write: issued, not waited on.
  void Post(MemoryChannel& channel, uint32_t bytes) {
    channel.Issue(bytes, /*is_write=*/true, nullptr);
  }

  // n posted writes of bytes_each at this instant as one coalesced channel
  // transaction loop (per-access accounting identical to n Post calls).
  void PostBurst(MemoryChannel& channel, uint32_t n, uint32_t bytes_each) {
    channel.IssueBurst(n, bytes_each, /*is_write=*/true, nullptr);
  }

  // Sleeps until Wake() (interrupt-style blocking).
  struct BlockAwaiter {
    SoftCore* core;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  BlockAwaiter Block() { return BlockAwaiter{this}; }

  // Wakes a core blocked in Block(). No-op if not blocked (a signal to a
  // busy core is coalesced, as with a level-triggered interrupt).
  void Wake();

  bool IsBlocked() const { return blocked_; }

  // Installs and starts the core's program.
  void Install(Task task);

  const std::string& name() const { return name_; }
  ClockDomain clock() const { return clock_; }
  EventQueue& event_queue() { return engine_; }

  // Busy cycles spent in Compute (memory stalls not included).
  uint64_t busy_cycles() const { return busy_cycles_; }
  double Utilization(SimTime window_start) const {
    const SimTime window = engine_.now() - window_start;
    if (window <= 0) {
      return 0.0;
    }
    return static_cast<double>(busy_cycles_) * static_cast<double>(clock_.cycle_ps) /
           static_cast<double>(window);
  }
  void ResetStats() { busy_cycles_ = 0; }

 private:
  void Resume();

  EventQueue& engine_;
  const ClockDomain clock_;
  const std::string name_;
  Task task_;
  bool started_ = false;
  bool blocked_ = false;
  // Suspension point parked in Block(); Compute/Read/Write resume their
  // handle straight from the event queue and never store it here.
  std::coroutine_handle<> pending_;
  uint64_t busy_cycles_ = 0;
};

}  // namespace npr

#endif  // SRC_IXP_SOFT_CORE_H_
