#include "src/ixp/hw_mutex.h"

#include <cassert>

namespace npr {

HwMutex::HwMutex(EventQueue& engine, MemoryChannel& sram, uint32_t grant_cycles)
    : engine_(engine), sram_(sram), grant_cycles_(grant_cycles) {}

void HwMutex::Awaiter::await_suspend(std::coroutine_handle<> h) {
  HwMutex* m = mutex;
  HwContext* c = ctx;
#if defined(NPR_OBS_ENABLED)
  c->set_wait_class(WaitClass::kMutex);
#endif
  // The CAM probe is an SRAM access; the context swaps out for it like any
  // other memory reference.
  HwContext::BlockAwaiter block{c};
  block.await_suspend(h);
  m->sram_.Issue(4, /*is_write=*/false, [m, c] { m->OnAcquireLanded(c); });
}

void HwMutex::OnAcquireLanded(HwContext* ctx) {
  ++acquires_;
  if (!locked_) {
    locked_ = true;
    ctx->MakeReady();
  } else {
    ++contended_acquires_;
    waiters_.push_back(ctx);  // hardware CAM queue: no memory traffic while waiting
  }
}

void HwMutex::Release() {
  assert(locked_ && "Release of an unlocked HwMutex");
  sram_.Issue(4, /*is_write=*/true, [this] { OnReleaseLanded(); });
}

void HwMutex::OnReleaseLanded() {
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  HwContext* next = waiters_.front();
  waiters_.pop_front();
  // locked_ stays true: ownership passes directly to the next waiter after
  // the bus-turnaround + inter-engine signal delay.
  engine_.ScheduleIn(kIxpClock.ToTime(grant_cycles_), [next] { next->MakeReady(); });
}

}  // namespace npr
