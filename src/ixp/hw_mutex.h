// Blocking hardware mutex (§3.4.2).
//
// The IXP1200 provides mutual exclusion over special SRAM regions through a
// CAM mechanism: acquiring costs one SRAM round trip, and — crucially,
// unlike a test-and-set spin loop — blocked waiters generate *no further
// memory traffic*; the hardware wakes the next waiter when the lock is
// released. The paper found spin locks "performance-crippling" under
// contention and uses these instead for shared (protected) output queues.

#ifndef SRC_IXP_HW_MUTEX_H_
#define SRC_IXP_HW_MUTEX_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "src/ixp/microengine.h"
#include "src/mem/memory_channel.h"
#include "src/sim/event_queue.h"

namespace npr {

class HwMutex {
 public:
  // `grant_cycles` models release-to-wakeup delay under contention
  // (HwConfig::mutex_grant_cycles; calibrated against Table 1 row I.3).
  HwMutex(EventQueue& engine, MemoryChannel& sram, uint32_t grant_cycles);

  // Awaitable: issues the CAM read on the SRAM channel and blocks until the
  // lock is owned by `ctx`.
  struct Awaiter {
    HwMutex* mutex;
    HwContext* ctx;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  Awaiter Acquire(HwContext& ctx) { return Awaiter{this, &ctx}; }

  // Releases the lock: posts the CAM write; when it lands, the next waiter
  // (if any) is granted after the calibrated signal delay.
  void Release();

  bool locked() const { return locked_; }
  uint64_t contended_acquires() const { return contended_acquires_; }
  uint64_t acquires() const { return acquires_; }

 private:
  void OnAcquireLanded(HwContext* ctx);
  void OnReleaseLanded();

  EventQueue& engine_;
  MemoryChannel& sram_;
  const uint32_t grant_cycles_;
  bool locked_ = false;
  std::deque<HwContext*> waiters_;
  uint64_t acquires_ = 0;
  uint64_t contended_acquires_ = 0;
};

}  // namespace npr

#endif  // SRC_IXP_HW_MUTEX_H_
