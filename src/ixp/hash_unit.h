// The IXP1200's hardware hashing unit.
//
// The paper's fast-path classification uses "a one-cycle hardware hash" of
// the destination address (§3.5.1), and the full classifier hashes the IP
// and TCP headers separately and combines them (§4.5). The VRP budget
// allows 3 hashes per MP (§4.3). The *cycle cost* is charged by the calling
// code (one Compute cycle per hash); this class provides the function and
// counts uses.

#ifndef SRC_IXP_HASH_UNIT_H_
#define SRC_IXP_HASH_UNIT_H_

#include <cstdint>

namespace npr {

class HashUnit {
 public:
  // 64 -> 64 bit mix (SplitMix64 finalizer: good avalanche, cheap).
  uint64_t Hash64(uint64_t key) {
    ++uses_;
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t Hash32(uint32_t key) { return static_cast<uint32_t>(Hash64(key)); }

  // Combines two header hashes the way the classifier does (§4.5).
  uint64_t Combine(uint64_t a, uint64_t b) { return Hash64(a ^ (b * 0x9e3779b97f4a7c15ULL)); }

  uint64_t uses() const { return uses_; }
  void ResetStats() { uses_ = 0; }

 private:
  uint64_t uses_ = 0;
};

}  // namespace npr

#endif  // SRC_IXP_HASH_UNIT_H_
