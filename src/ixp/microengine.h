// MicroEngine and hardware-context model.
//
// Each of the IXP1200's six MicroEngines has one execution pipeline shared
// by four hardware contexts. Non-memory instructions run to completion; a
// context *swaps out* on every memory reference (or voluntary yield), at
// which point the engine immediately dispatches the next ready context.
// This is the mechanism the paper relies on to hide memory latency, and it
// is modelled literally: a context is a coroutine, `Compute(n)` occupies the
// pipeline for n cycles, and every awaited memory access releases it.

#ifndef SRC_IXP_MICROENGINE_H_
#define SRC_IXP_MICROENGINE_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/memory_channel.h"
#include "src/obs/cycle_profiler.h"
#include "src/sim/event_queue.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace npr {

class MicroEngine;

// One of the four hardware contexts of a MicroEngine. The loop a context
// runs is expressed as a coroutine (see core/input_stage.cc for the main
// examples) that awaits the primitives below.
class HwContext {
 public:
  HwContext(MicroEngine& me, int index);

  HwContext(const HwContext&) = delete;
  HwContext& operator=(const HwContext&) = delete;

  // Occupies the MicroEngine pipeline for `cycles` cycles (register-only
  // instructions). The context keeps the engine; no swap occurs.
  struct ComputeAwaiter {
    HwContext* ctx;
    uint32_t cycles;
    bool await_ready() const { return cycles == 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  ComputeAwaiter Compute(uint32_t cycles) { return ComputeAwaiter{this, cycles}; }

  // Issues a memory access and swaps out until it completes.
  struct MemAwaiter {
    HwContext* ctx;
    MemoryChannel* channel;
    uint32_t bytes;
    bool is_write;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  MemAwaiter Read(MemoryChannel& channel, uint32_t bytes) {
    return MemAwaiter{this, &channel, bytes, false};
  }
  MemAwaiter Write(MemoryChannel& channel, uint32_t bytes) {
    return MemAwaiter{this, &channel, bytes, true};
  }

  // Posted write: the access is issued but the context does not wait for it
  // (nor swap out). The issuing instruction itself must be charged by the
  // caller as part of a Compute() block.
  void Post(MemoryChannel& channel, uint32_t bytes);

  // n posted writes of bytes_each issued back to back at this instant, via
  // MemoryChannel::IssueBurst: per-access accounting identical to n Post
  // calls, one channel transaction loop instead of n.
  void PostBurst(MemoryChannel& channel, uint32_t n, uint32_t bytes_each);

  // Swaps out until an external waker calls MakeReady() (token grant, mutex
  // grant, FIFO valid signal, queue doorbell...).
  struct BlockAwaiter {
    HwContext* ctx;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  BlockAwaiter Block() { return BlockAwaiter{this}; }

  // Voluntary swap: lets other ready contexts of this engine run, then
  // continues (round-robin).
  struct YieldAwaiter {
    HwContext* ctx;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  YieldAwaiter Yield() { return YieldAwaiter{this}; }

  // Installs the context's program and makes it runnable. A context may be
  // reinstalled after its previous program finished (crash-and-restart).
  void Install(Task task);

  // Wakes a context blocked in Block(). Called by synchronization
  // primitives; a no-op is an error (asserted).
  void MakeReady();

  // True if the context is blocked in Block() awaiting an external waker.
  bool IsBlocked() const { return state_ == State::kBlocked; }
  bool IsInstalled() const { return installed_; }

  MicroEngine& engine() const { return me_; }
  int index() const { return index_; }

  // Tags what the *next* blocking suspension is waiting on, so the cycle
  // profiler can classify the blocked time. Memory references tag
  // themselves from the channel; token-ring and mutex awaiters call this
  // before blocking. Reset to kFifo after each attribution.
  void set_wait_class(WaitClass w) { wait_class_ = w; }

  // --- accounting ---
  uint64_t compute_cycles() const { return compute_cycles_; }
  uint64_t mem_reads() const { return mem_reads_; }
  uint64_t mem_writes() const { return mem_writes_; }
  // Time spent waiting for the pipeline after becoming ready (unhidden
  // latency: all-four-contexts-blocked shows up here as zero, pipeline
  // contention as positive values).
  SimTime ready_wait_ps() const { return ready_wait_ps_; }

 private:
  friend class MicroEngine;

  enum class State {
    kIdle,      // no program, or program finished
    kReady,     // runnable, waiting for the pipeline
    kRunning,   // owns the pipeline (incl. during Compute)
    kBlocked,   // swapped out on memory/Block
  };

  void ResumeNow();

  MicroEngine& me_;
  const int index_;
  Task task_;
  bool installed_ = false;
  bool started_ = false;
  State state_ = State::kIdle;
  std::coroutine_handle<> pending_;
  SimTime ready_since_ = 0;

  uint64_t compute_cycles_ = 0;
  uint64_t mem_reads_ = 0;
  uint64_t mem_writes_ = 0;
  SimTime ready_wait_ps_ = 0;

  // Cycle-profiler bookkeeping (only consulted when a profiler is attached
  // and NPR_OBS_ENABLED is defined; otherwise dead weight of 16 bytes).
  SimTime blocked_since_ = 0;
  WaitClass wait_class_ = WaitClass::kFifo;
};

// A single MicroEngine: one pipeline, four hardware contexts, round-robin
// dispatch among ready contexts with a 1-cycle swap bubble.
class MicroEngine {
 public:
  MicroEngine(EventQueue& engine, int id, int num_contexts, uint32_t ctx_switch_cycles);

  MicroEngine(const MicroEngine&) = delete;
  MicroEngine& operator=(const MicroEngine&) = delete;

  HwContext& context(int i) { return *contexts_[static_cast<size_t>(i)]; }
  int num_contexts() const { return static_cast<int>(contexts_.size()); }
  int id() const { return id_; }
  EventQueue& event_queue() { return engine_; }

  // Total pipeline-busy cycles (Compute) across all contexts.
  uint64_t busy_cycles() const { return busy_cycles_; }
  // Pipeline utilization over [window_start, now].
  double Utilization(SimTime window_start) const;

  // Attaches the cycle-accounting profiler (observability layer); nullptr
  // detaches. Attribution happens only when NPR_OBS_ENABLED is defined.
  void set_profiler(CycleProfiler* profiler) { profiler_ = profiler; }

 private:
  friend class HwContext;

  // Scheduling interface used by HwContext and its awaitables.
  void EnqueueReady(HwContext* ctx);
  void OnBlocked(HwContext* ctx);
  void OnComputeStart(HwContext* ctx, uint32_t cycles);
  void Dispatch();

  // The ready queue is a fixed ring: a context is enqueued at most once, so
  // capacity == num_contexts and push/pop are two index updates (this is
  // the engine's hottest path — every swap goes through it).
  HwContext* PopReady() {
    HwContext* ctx = ready_ring_[ready_head_];
    ready_head_ = (ready_head_ + 1) % ready_ring_.size();
    --ready_count_;
    return ctx;
  }

  EventQueue& engine_;
  const int id_;
  const uint32_t ctx_switch_cycles_;
  std::vector<std::unique_ptr<HwContext>> contexts_;
  HwContext* running_ = nullptr;
  std::vector<HwContext*> ready_ring_;
  size_t ready_head_ = 0;
  size_t ready_count_ = 0;
  bool dispatch_scheduled_ = false;
  uint64_t busy_cycles_ = 0;
  CycleProfiler* profiler_ = nullptr;
};

}  // namespace npr

#endif  // SRC_IXP_MICROENGINE_H_
