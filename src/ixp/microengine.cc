#include "src/ixp/microengine.h"

#include <utility>

#include "src/sim/log.h"

namespace npr {

HwContext::HwContext(MicroEngine& me, int index) : me_(me), index_(index) {}

void HwContext::Install(Task task) {
  // A context can be (re)programmed only while it has no live program: never
  // installed, or its previous program ran to completion (crash-and-restart
  // reinstalls a context whose loop co_returned).
  assert((!installed_ || state_ == State::kIdle) && "context already has a live program");
  task_ = std::move(task);
  installed_ = true;
  started_ = false;
  state_ = State::kReady;
  ready_since_ = me_.event_queue().now();
  me_.EnqueueReady(this);
}

void HwContext::MakeReady() {
  assert(state_ == State::kBlocked && "MakeReady on a context that is not blocked");
#if defined(NPR_OBS_ENABLED)
  if (me_.profiler_ != nullptr) {
    me_.profiler_->AddWait(static_cast<uint8_t>(me_.id()), static_cast<uint8_t>(index_),
                           wait_class_, me_.event_queue().now() - blocked_since_);
  }
  wait_class_ = WaitClass::kFifo;
#endif
  state_ = State::kReady;
  ready_since_ = me_.event_queue().now();
  me_.EnqueueReady(this);
}

void HwContext::ResumeNow() {
  assert(state_ == State::kRunning);
  if (!started_) {
    started_ = true;
    task_.Start();
  } else {
    auto h = std::exchange(pending_, std::coroutine_handle<>{});
    assert(h && "resume with no pending suspension point");
    h.resume();
  }
  if (task_.done()) {
    // Finite programs (tests, one-shot probes) fall off the end; release
    // the pipeline for the remaining contexts.
    state_ = State::kIdle;
    if (me_.running_ == this) {
      me_.running_ = nullptr;
      me_.Dispatch();
    }
  }
}

void HwContext::ComputeAwaiter::await_suspend(std::coroutine_handle<> h) {
  HwContext* c = ctx;
  assert(c->state_ == State::kRunning);
  c->pending_ = h;
  c->compute_cycles_ += cycles;
  c->me_.OnComputeStart(c, cycles);
}

void HwContext::MemAwaiter::await_suspend(std::coroutine_handle<> h) {
  HwContext* c = ctx;
  assert(c->state_ == State::kRunning);
  c->pending_ = h;
  if (is_write) {
    ++c->mem_writes_;
  } else {
    ++c->mem_reads_;
  }
#if defined(NPR_OBS_ENABLED)
  c->wait_class_ = static_cast<WaitClass>(channel->config().profile_class);
#endif
  channel->Issue(bytes, is_write, [c] { c->MakeReady(); });
  c->me_.OnBlocked(c);
}

void HwContext::Post(MemoryChannel& channel, uint32_t bytes) {
  ++mem_writes_;
  channel.Issue(bytes, /*is_write=*/true, nullptr);
}

void HwContext::PostBurst(MemoryChannel& channel, uint32_t n, uint32_t bytes_each) {
  mem_writes_ += n;
  channel.IssueBurst(n, bytes_each, /*is_write=*/true, nullptr);
}

void HwContext::BlockAwaiter::await_suspend(std::coroutine_handle<> h) {
  HwContext* c = ctx;
  assert(c->state_ == State::kRunning);
  c->pending_ = h;
  c->me_.OnBlocked(c);
}

void HwContext::YieldAwaiter::await_suspend(std::coroutine_handle<> h) {
  HwContext* c = ctx;
  assert(c->state_ == State::kRunning);
  c->pending_ = h;
  c->state_ = State::kReady;
  c->ready_since_ = c->me_.event_queue().now();
  c->me_.running_ = nullptr;
  c->me_.EnqueueReady(c);
}

MicroEngine::MicroEngine(EventQueue& engine, int id, int num_contexts,
                         uint32_t ctx_switch_cycles)
    : engine_(engine), id_(id), ctx_switch_cycles_(ctx_switch_cycles) {
  contexts_.reserve(static_cast<size_t>(num_contexts));
  for (int i = 0; i < num_contexts; ++i) {
    contexts_.push_back(std::make_unique<HwContext>(*this, i));
  }
  ready_ring_.assign(static_cast<size_t>(num_contexts), nullptr);
}

double MicroEngine::Utilization(SimTime window_start) const {
  const SimTime window = engine_.now() - window_start;
  if (window <= 0) {
    return 0.0;
  }
  return static_cast<double>(busy_cycles_) * static_cast<double>(kIxpClock.cycle_ps) /
         static_cast<double>(window);
}

void MicroEngine::EnqueueReady(HwContext* ctx) {
  assert(ctx->state_ == HwContext::State::kReady);
  assert(ready_count_ < ready_ring_.size());
  ready_ring_[(ready_head_ + ready_count_) % ready_ring_.size()] = ctx;
  ++ready_count_;
  if (running_ == nullptr) {
    Dispatch();
  }
}

void MicroEngine::OnBlocked(HwContext* ctx) {
  assert(running_ == ctx);
#if defined(NPR_OBS_ENABLED)
  ctx->blocked_since_ = engine_.now();
#endif
  ctx->state_ = HwContext::State::kBlocked;
  running_ = nullptr;
  Dispatch();
}

void MicroEngine::OnComputeStart(HwContext* ctx, uint32_t cycles) {
  assert(running_ == ctx);
  busy_cycles_ += cycles;
#if defined(NPR_OBS_ENABLED)
  if (profiler_ != nullptr) {
    profiler_->AddCompute(static_cast<uint8_t>(id_), static_cast<uint8_t>(ctx->index_), cycles);
  }
#endif
  // A computing context keeps the pipeline: it resumes directly, with no
  // dispatch in between (fn-ptr + context, the queue's cheapest shape).
  engine_.ScheduleRaw(engine_.now() + kIxpClock.ToTime(cycles),
                      [](void* c) {
                        auto* running = static_cast<HwContext*>(c);
                        assert(running->state_ == HwContext::State::kRunning);
                        running->ResumeNow();
                      },
                      ctx);
}

void MicroEngine::Dispatch() {
  if (running_ != nullptr || ready_count_ == 0 || dispatch_scheduled_) {
    return;
  }
  dispatch_scheduled_ = true;
  // The swap bubble: the pipeline restarts the incoming context a cycle
  // after the outgoing one left (fn-ptr + engine, the queue's cheapest
  // event shape — this fires once per context swap).
  engine_.ScheduleRaw(
      engine_.now() + kIxpClock.ToTime(ctx_switch_cycles_),
      [](void* self_raw) {
        auto* self = static_cast<MicroEngine*>(self_raw);
        self->dispatch_scheduled_ = false;
        if (self->running_ != nullptr || self->ready_count_ == 0) {
          return;
        }
        HwContext* ctx = self->PopReady();
        assert(ctx->state_ == HwContext::State::kReady);
        ctx->state_ = HwContext::State::kRunning;
        ctx->ready_wait_ps_ += self->engine_.now() - ctx->ready_since_;
        self->running_ = ctx;
        ctx->ResumeNow();
      },
      this);
}

}  // namespace npr
