// Assembly of the complete simulated hardware: the IXP1200 chip (memories,
// MicroEngines, FIFOs, DMA, hash unit, StrongARM) and the host side
// (Pentium III, PCI bus, host memory). Mirrors the block diagram in
// Figure 3 of the paper.

#ifndef SRC_IXP_IXP1200_H_
#define SRC_IXP_IXP1200_H_

#include <memory>
#include <vector>

#include "src/ixp/dma.h"
#include "src/ixp/fifo.h"
#include "src/ixp/hash_unit.h"
#include "src/ixp/hw_config.h"
#include "src/ixp/microengine.h"
#include "src/ixp/soft_core.h"
#include "src/mem/memory_system.h"
#include "src/sim/event_queue.h"

namespace npr {

class Ixp1200 {
 public:
  Ixp1200(EventQueue& engine, const HwConfig& config);

  Ixp1200(const Ixp1200&) = delete;
  Ixp1200& operator=(const Ixp1200&) = delete;

  const HwConfig& config() const { return config_; }
  EventQueue& event_queue() { return engine_; }

  MemorySystem& memory() { return memory_; }
  MicroEngine& me(int i) { return *microengines_[static_cast<size_t>(i)]; }
  int num_mes() const { return static_cast<int>(microengines_.size()); }

  FifoBank& rfifo() { return rfifo_; }
  FifoBank& tfifo() { return tfifo_; }

  MemoryChannel& ix_bus() { return ix_bus_; }
  DmaEngine& rx_dma() { return rx_dma_; }
  DmaEngine& tx_dma() { return tx_dma_; }

  HashUnit& hash() { return hash_; }
  SoftCore& strongarm() { return strongarm_; }

 private:
  EventQueue& engine_;
  HwConfig config_;
  MemorySystem memory_;
  std::vector<std::unique_ptr<MicroEngine>> microengines_;
  FifoBank rfifo_;
  FifoBank tfifo_;
  MemoryChannel ix_bus_;
  DmaEngine rx_dma_;
  DmaEngine tx_dma_;
  HashUnit hash_;
  SoftCore strongarm_;
};

// Host side of the prototype: Pentium III, 32-bit/33 MHz PCI, host DRAM.
class HostSystem {
 public:
  HostSystem(EventQueue& engine, const HwConfig& config);

  HostSystem(const HostSystem&) = delete;
  HostSystem& operator=(const HostSystem&) = delete;

  SoftCore& pentium() { return pentium_; }
  MemoryChannel& pci() { return pci_; }
  BackingStore& host_mem() { return host_mem_; }

 private:
  SoftCore pentium_;
  MemoryChannel pci_;
  BackingStore host_mem_;
};

}  // namespace npr

#endif  // SRC_IXP_IXP1200_H_
