// Token-passing serializer for MicroEngine contexts (§3.2.2).
//
// The single DMA state machine (and the ordered output FIFO) are protected
// not by a memory lock but by passing a token through the contexts with the
// on-chip one-cycle inter-thread signal. The token visits members in a
// fixed rotation (construction order); the paper deliberately interleaves
// the rotation across MicroEngines so a context handing off the token never
// hands it to a sibling on its own engine.
//
// Semantics modelled: the token is *offered* to exactly one member at a
// time. If that member is blocked in Acquire(), it is granted immediately;
// otherwise the token waits until the member next asks (hardware signal
// stays set). Release() passes the token onward after the 1-cycle signal.

#ifndef SRC_IXP_TOKEN_RING_H_
#define SRC_IXP_TOKEN_RING_H_

#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/ixp/microengine.h"
#include "src/sim/event_queue.h"

namespace npr {

class FaultInjector;
class Observer;

class TokenRing {
 public:
  // `pass_cycles` is the inter-thread signal latency (HwConfig::token_pass_cycles).
  TokenRing(EventQueue& engine, uint32_t pass_cycles);

  // Adds `ctx` as the next member of the rotation. All members must be
  // registered before the first Acquire. Returns the member index.
  int AddMember(HwContext& ctx);

  // Awaitable: blocks the calling context until the token is offered to
  // `member` (which must be the index returned by AddMember for this
  // context's registration).
  struct Awaiter {
    TokenRing* ring;
    int member;
    bool await_ready() const { return ring->TryGrant(member); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
  };
  Awaiter Acquire(int member) { return Awaiter{this, member}; }

  // Passes the token to the next member in rotation. Must be called by the
  // current holder.
  void Release(int member);

  int size() const { return static_cast<int>(members_.size()); }
  // Total time the token spent offered-but-unclaimed (a measure of rotation
  // stall; see §3.2.2's discussion of rotation order).
  SimTime idle_ps() const { return idle_ps_; }

  // Takes a member out of (or back into) the rotation — a crashed context
  // must not wedge the ring. A down member is skipped by Offer(); if every
  // member is down the token parks and is re-offered when one comes back.
  // Must not be called by the current token holder.
  void SetMemberDown(int member, bool down);

  int members_up() const;
  // Time of the most recent successful grant (liveness checks).
  SimTime last_grant_ps() const { return last_grant_ps_; }

  // True while the token has been lost to an injected hand-off fault: no
  // offer is in flight and no member holds it, so the ring is wedged until
  // RecoverLostToken() regenerates it.
  bool token_lost() const { return lost_; }
  SimTime token_lost_since_ps() const { return lost_since_; }

  // Regenerates a lost token by re-issuing the swallowed offer. Safe to
  // call any time: a no-op unless the token is actually lost (regenerating
  // a merely-slow token would put two tokens in the rotation and break
  // mutual exclusion). Returns true if a token was regenerated.
  bool RecoverLostToken();

  // Member liveness, indexed by AddMember order (watchdog bookkeeping).
  bool member_down(int member) const {
    return members_[static_cast<size_t>(member)].down;
  }
  SimTime member_down_since_ps(int member) const {
    return members_[static_cast<size_t>(member)].down_since;
  }

  // Fault injection: deterministic extra delay on token hand-offs.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Observability: a lost-token injection records a fault span and trips
  // the flight recorder (the ring wedge is exactly the kind of failure the
  // recorder exists to explain).
  void set_tracer(Observer* tracer) { tracer_ = tracer; }

 private:
  friend struct Awaiter;

  bool TryGrant(int member);
  void Offer(int member);

  struct Member {
    HwContext* ctx;
    bool waiting = false;
    bool down = false;
    SimTime down_since = 0;
  };

  EventQueue& engine_;
  const uint32_t pass_cycles_;
  std::vector<Member> members_;
  FaultInjector* fault_ = nullptr;
  Observer* tracer_ = nullptr;
  int offered_to_ = 0;     // member the token is currently offered to
  bool available_ = true;  // true when offered and not yet claimed
  bool held_ = false;
  bool parked_ = false;    // every member down; token waits for a restart
  bool lost_ = false;      // injected loss; awaiting regeneration
  int lost_next_ = 0;      // member the swallowed offer was bound for
  SimTime lost_since_ = 0;
  SimTime offer_since_ = 0;
  SimTime idle_ps_ = 0;
  SimTime last_grant_ps_ = 0;
};

}  // namespace npr

#endif  // SRC_IXP_TOKEN_RING_H_
