#include "src/ixp/ixp1200.h"

namespace npr {

Ixp1200::Ixp1200(EventQueue& engine, const HwConfig& config)
    : engine_(engine),
      config_(config),
      memory_(engine, config.MakeMemoryConfig()),
      rfifo_(config.fifo_slots),
      tfifo_(config.fifo_slots),
      ix_bus_(engine, MakeIxBusConfig(config)),
      rx_dma_(engine, ix_bus_, config.dma_setup_cycles),
      tx_dma_(engine, ix_bus_, config.dma_setup_cycles),
      strongarm_(engine, kIxpClock, "strongarm") {
  microengines_.reserve(static_cast<size_t>(config.num_microengines));
  for (int i = 0; i < config.num_microengines; ++i) {
    microengines_.push_back(std::make_unique<MicroEngine>(engine, i, config.contexts_per_me,
                                                          config.ctx_switch_cycles));
  }
}

HostSystem::HostSystem(EventQueue& engine, const HwConfig& config)
    : pentium_(engine, kPentiumClock, "pentium"),
      pci_(engine, MemoryChannelConfig{
                       .name = "pci",
                       .width_bytes = config.pci_width_bytes,
                       .bus_cycle_ps = config.pci_cycle_ps,
                       // First-word latency of a PCI transaction.
                       .read_latency_ps = 8 * config.pci_cycle_ps,
                       .write_latency_ps = 4 * config.pci_cycle_ps,
                   }),
      host_mem_("host_mem", 8u << 20) {}

}  // namespace npr
