#include "src/ixp/hw_config.h"

namespace npr {

MemorySystemConfig HwConfig::MakeMemoryConfig() const {
  MemorySystemConfig mc;

  // DRAM: 64-bit x 100 MHz. A 32 B transfer occupies 4 bus cycles (40 ns =
  // 8 ME cycles); Table 3 reports 52 cycle (260 ns) reads and 40 cycle
  // (200 ns) writes unloaded, so pipeline latency is the remainder.
  mc.dram = MemoryChannelConfig{
      .name = "dram",
      .width_bytes = 8,
      .bus_cycle_ps = kMemBusClock.cycle_ps,
      .read_latency_ps = 260'000 - 40'000,
      .write_latency_ps = 200'000 - 40'000,
      .profile_class = 0,  // WaitClass::kDram
  };

  // SRAM: 32-bit x 100 MHz. A 4 B transfer occupies 1 bus cycle (10 ns);
  // Table 3 reports 22 cycles (110 ns) both ways.
  mc.sram = MemoryChannelConfig{
      .name = "sram",
      .width_bytes = 4,
      .bus_cycle_ps = kMemBusClock.cycle_ps,
      .read_latency_ps = 110'000 - 10'000,
      .write_latency_ps = 110'000 - 10'000,
      .profile_class = 1,  // WaitClass::kSram
  };

  // Scratch: on-chip, 4 B per access; Table 3: read 16 cycles (80 ns),
  // write 20 cycles (100 ns).
  mc.scratch = MemoryChannelConfig{
      .name = "scratch",
      .width_bytes = 4,
      .bus_cycle_ps = kMemBusClock.cycle_ps,
      .read_latency_ps = 80'000 - 10'000,
      .write_latency_ps = 100'000 - 10'000,
      .profile_class = 2,  // WaitClass::kScratch
  };

  mc.dram_size_bytes = 32u << 20;
  mc.sram_size_bytes = 2u << 20;
  mc.scratch_size_bytes = 4096;
  return mc;
}

}  // namespace npr
