// DMA state machines moving MAC-packets between port memory and the FIFOs
// over the shared IX bus (§2.2, §3.2).
//
// There is a single receive DMA state machine (requests to it are not
// hardware-serialized — hence the input token ring) and a transmit DMA that
// drains output FIFO slots in strict circular order. Both contend for the
// one 64-bit x 66 MHz IX bus, which this model represents as a shared
// MemoryChannel.

#ifndef SRC_IXP_DMA_H_
#define SRC_IXP_DMA_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "src/ixp/hw_config.h"
#include "src/mem/memory_channel.h"
#include "src/sim/event_fn.h"
#include "src/sim/event_queue.h"

namespace npr {

class DmaEngine {
 public:
  // Both DMA front-ends share `ix_bus`.
  DmaEngine(EventQueue& engine, MemoryChannel& ix_bus, uint32_t setup_cycles)
      : engine_(engine), ix_bus_(ix_bus), setup_cycles_(setup_cycles) {}

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  // Starts a transfer of `bytes` bytes; `done` runs when the data has fully
  // crossed the IX bus. Transfers queue FIFO on the bus. The pending request
  // rides in a deque rather than the setup event's capture so the event
  // itself stays allocation-free; setup delays are identical, so completions
  // pop in issue order.
  //
  // Note: folding the setup delay into the bus issue itself
  // (MemoryChannel::IssueDeferred) produces arithmetically identical
  // completion times, but enqueues the completion event earlier — which
  // reorders same-instant event ties under contention and breaks
  // bit-identical replay. The two-event shape is kept deliberately.
  void Transfer(uint32_t bytes, EventFn done) {
    pending_.push_back(Pending{bytes, std::move(done)});
    engine_.ScheduleRaw(engine_.now() + kIxpClock.ToTime(setup_cycles_), &DmaEngine::IssueHead,
                        this);
  }

  uint64_t transfers() const { return ix_bus_.writes(); }

 private:
  struct Pending {
    uint32_t bytes;
    EventFn done;
  };

  static void IssueHead(void* self_raw) {
    auto* self = static_cast<DmaEngine*>(self_raw);
    Pending p = std::move(self->pending_.front());
    self->pending_.pop_front();
    self->ix_bus_.Issue(p.bytes, /*is_write=*/true, std::move(p.done));
  }

  EventQueue& engine_;
  MemoryChannel& ix_bus_;
  const uint32_t setup_cycles_;
  std::deque<Pending> pending_;
};

// Builds the IX-bus channel from the hardware config.
inline MemoryChannelConfig MakeIxBusConfig(const HwConfig& hw) {
  return MemoryChannelConfig{
      .name = "ix_bus",
      .width_bytes = hw.ix_bus_width_bytes,
      .bus_cycle_ps = hw.ix_bus_cycle_ps,
      .read_latency_ps = 0,
      .write_latency_ps = 0,
  };
}

}  // namespace npr

#endif  // SRC_IXP_DMA_H_
