// The IXP1200's transmit/receive "FIFOs" (§2.2, §3.1).
//
// Each is really an addressable 16-slot x 64-byte register file; it only
// behaves as a FIFO if software uses it that way. The router statically
// assigns slots to contexts (§3.2.1, §3.3), which this model supports by
// exposing slots by index. Slot contents are real bytes: the MAC-packet
// payload travels through here.

#ifndef SRC_IXP_FIFO_H_
#define SRC_IXP_FIFO_H_

#include <array>
#include <cstdint>
#include <vector>

namespace npr {

// Tag the MAC attaches to each 64-byte MAC-packet (MP): position within the
// enclosing Ethernet frame plus bookkeeping the forwarding code needs.
struct MpTag {
  uint8_t port = 0;        // arrival (or destination) port
  bool sop = false;        // first MP of the packet
  bool eop = false;        // last MP of the packet
  uint16_t bytes = 0;      // valid bytes in this MP (< 64 only when eop)
  uint32_t packet_id = 0;  // simulator-side identity for end-to-end checks
};

struct FifoSlot {
  std::array<uint8_t, 64> data{};
  MpTag tag;
  bool valid = false;
};

class FifoBank {
 public:
  explicit FifoBank(int slots = 16) : slots_(static_cast<size_t>(slots)) {}

  FifoSlot& slot(int i) { return slots_[static_cast<size_t>(i)]; }
  const FifoSlot& slot(int i) const { return slots_[static_cast<size_t>(i)]; }
  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<FifoSlot> slots_;
};

}  // namespace npr

#endif  // SRC_IXP_FIFO_H_
