#include "src/ixp/soft_core.h"

namespace npr {

void SoftCore::Install(Task task) {
  assert(!started_ && "core already running a program");
  task_ = std::move(task);
  started_ = true;
  task_.Start();
}

void SoftCore::Resume() {
  auto h = std::exchange(pending_, std::coroutine_handle<>{});
  assert(h && "resume with no pending suspension point");
  h.resume();
}

void SoftCore::ComputeAwaiter::await_suspend(std::coroutine_handle<> h) {
  // A single-context core has nothing to dispatch on wakeup: the scheduled
  // event resumes the coroutine directly, with no bookkeeping in between.
  SoftCore* c = core;
  c->busy_cycles_ += cycles;
  c->engine_.ScheduleResumeIn(c->clock_.ToTime(static_cast<int64_t>(cycles)), h);
}

void SoftCore::MemAwaiter::await_suspend(std::coroutine_handle<> h) {
  channel->Issue(bytes, is_write, EventFn::Resume(h));
}

void SoftCore::BlockAwaiter::await_suspend(std::coroutine_handle<> h) {
  SoftCore* c = core;
  c->pending_ = h;
  c->blocked_ = true;
}

void SoftCore::Wake() {
  if (!blocked_) {
    return;
  }
  blocked_ = false;
  // Wakeup is delivered through the event queue to keep resumption ordering
  // deterministic with respect to the waking event.
  engine_.ScheduleRaw(engine_.now(), [](void* c) { static_cast<SoftCore*>(c)->Resume(); }, this);
}

}  // namespace npr
