// Intelligent I/O (I2O) hardware message queues (§3.7).
//
// Each logical IXP<->Pentium queue is a pair of hardware FIFOs of 32-bit
// buffer pointers: one holds pointers to *free* host buffers, the other
// pointers to *full* ones. (The real silicon's I2O unit was broken and the
// paper simulated it in software; the Pentium-side cost of that software
// path is captured in HwConfig::pentium_* constants.) These queues are
// functional; the PCI traffic to reach them is charged by the bridge code.

#ifndef SRC_IXP_I2O_QUEUE_H_
#define SRC_IXP_I2O_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

namespace npr {

class I2oQueue {
 public:
  explicit I2oQueue(size_t capacity) : capacity_(capacity) {}

  // Appends a pointer; fails (returns false) when the queue is full.
  bool Push(uint32_t value) {
    if (entries_.size() >= capacity_) {
      ++overflows_;
      return false;
    }
    entries_.push_back(value);
    return true;
  }

  std::optional<uint32_t> Pop() {
    if (entries_.empty()) {
      return std::nullopt;
    }
    uint32_t v = entries_.front();
    entries_.pop_front();
    return v;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t capacity() const { return capacity_; }
  uint64_t overflows() const { return overflows_; }

 private:
  size_t capacity_;
  std::deque<uint32_t> entries_;
  uint64_t overflows_ = 0;
};

// One logical direction of the bridge: free buffers flow one way, full
// buffers the other (§3.7).
struct I2oQueuePair {
  I2oQueuePair(size_t free_cap, size_t full_cap) : free_q(free_cap), full_q(full_cap) {}
  I2oQueue free_q;
  I2oQueue full_q;
};

}  // namespace npr

#endif  // SRC_IXP_I2O_QUEUE_H_
