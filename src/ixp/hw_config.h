// Calibrated hardware constants for the simulated IXP1200 + Pentium system.
//
// Every number here carries its provenance from the paper (section, table,
// or a fit to reported results). The defaults reproduce the paper's
// evaluation; tests and benches may perturb them for ablations.

#ifndef SRC_IXP_HW_CONFIG_H_
#define SRC_IXP_HW_CONFIG_H_

#include <cstdint>

#include "src/mem/memory_system.h"
#include "src/sim/time.h"

namespace npr {

struct HwConfig {
  // --- chip layout (§2.2) ---
  int num_microengines = 6;
  int contexts_per_me = 4;
  int fifo_slots = 16;            // input and output FIFO: 16 slots x 64 B each
  uint32_t mp_bytes = 64;         // MAC-packet size (§3.1)

  // --- context scheduling ---
  // Cycles lost when a MicroEngine swaps to another hardware context. The
  // IXP1200 swap is nearly free (it is why the contexts exist); 1 cycle
  // models the pipeline bubble.
  uint32_t ctx_switch_cycles = 1;
  // One-cycle on-chip inter-thread signal (§3.2.2), used for token passing.
  uint32_t token_pass_cycles = 1;

  // --- serialization calibration ---
  // Extra serialized cycles inside the input token critical section beyond
  // the instructions the stage itself charges (signal test, branch shadow,
  // DMA state-machine handshake). Calibrated against Table 1 row I.1
  // (3.75 Mpps) and Figure 7's input plateau.
  uint32_t input_token_overhead_cycles = 6;
  uint32_t output_token_overhead_cycles = 2;
  // Delay from a CAM mutex release landing in SRAM to the next waiter
  // resuming (bus turnaround + inter-ME signal + wakeup). Calibrated against
  // Table 1 row I.3 (1.67 Mpps under maximal queue contention).
  uint32_t mutex_grant_cycles = 47;
  // Pipeline cycles the CAM probe steals from the engine that issuing
  // context's siblings cannot use (the probe holds the SRAM interface).
  // Not an instruction, so it is charged as pipeline time but not counted
  // in the Table 2 register-operation statistics. Calibrated against the
  // I.1 (213) vs I.2 (229) effective per-MP cycle difference implied by
  // Table 1 rows 3.75 vs 3.47 Mpps.
  uint32_t mutex_pipeline_stall_cycles = 10;

  // --- memory system (Table 3 + datasheet §2.2) ---
  // DRAM: 64-bit x 100 MHz; 32 B read 52 cycles, write 40 cycles unloaded.
  // SRAM: 32-bit x 100 MHz; 4 B read/write 22 cycles.
  // Scratch: 4 B read 16, write 20 cycles.
  // Unloaded latency = occupancy + pipeline latency; see MemoryChannel.
  MemorySystemConfig MakeMemoryConfig() const;

  // --- IX bus / MAC DMA (§2.2) ---
  // 64-bit x 66 MHz shared bus, single DMA state machine.
  SimTime ix_bus_cycle_ps = kIxBusClock.cycle_ps;
  uint32_t ix_bus_width_bytes = 8;
  // Fixed DMA setup latency per transfer, in ME cycles.
  uint32_t dma_setup_cycles = 4;

  // --- ISTORE (§4.3, §4.5) ---
  // 4 KB per-MicroEngine instruction store. The paper reports 650 free
  // slots for extensions after the router infrastructure and classifier.
  uint32_t istore_slots = 1024;
  uint32_t istore_ri_slots = 318;         // fixed router infrastructure
  uint32_t istore_classifier_slots = 56;  // classification code (§4.5)
  // Writing the ISTORE takes two memory accesses per instruction (§4.5:
  // 10-instruction forwarder = 800 cycles; full rewrite > 80,000 cycles).
  uint32_t istore_write_cycles_per_instr = 80;

  // --- StrongARM (§3.6, Table 4) ---
  // Null-forwarder packet cost fitted to 526 Kpps at 200 MHz.
  uint32_t sa_null_forwarder_cycles = 380;
  // Dequeue / enqueue instruction costs of the StrongARM's minimal OS; the
  // remainder of the 380-cycle null-forwarder budget is memory stalls.
  uint32_t sa_dequeue_cycles = 30;
  uint32_t sa_enqueue_cycles = 30;
  // Bridge (IXP->Pentium) cost fitted to Table 4: 374 cycles per packet at
  // 64 B (344 outbound + 30 consuming the return), nearly size-independent
  // because the DMA engine runs concurrently.
  uint32_t sa_bridge_fixed_cycles = 344;
  uint32_t sa_bridge_per_extra_mp_cycles = 1;
  // Polling gap when the exception queues are empty.
  uint32_t sa_poll_gap_cycles = 40;
  // Interrupt dispatch overhead ("interrupts were significantly slower").
  uint32_t sa_interrupt_overhead_cycles = 600;

  // --- Pentium / PCI (§3.7, Table 4) ---
  // Software-simulated I2O queue management + copy: fitted to Table 4
  // (64 B: 534 Kpps with 500 spare cycles; 1500 B: 43.6 Kpps with 800
  // spare): cost = fixed + per_byte * payload_bytes.
  uint32_t pentium_fixed_cycles = 197;
  double pentium_per_byte_cycles = 10.54;
  // PCI: 32-bit x 33 MHz = 1.056 Gbps, which is exactly what caps the
  // 1500 B x 2-way x 43.6 Kpps result.
  SimTime pci_cycle_ps = kPciClock.cycle_ps;
  uint32_t pci_width_bytes = 4;
  // Internal routing header prepended to the first 64 B crossing PCI (§3.7).
  uint32_t pci_routing_header_bytes = 8;

  // --- packet buffers (§3.2.3) ---
  uint32_t buffer_bytes = 2048;
  uint32_t num_buffers = 8192;  // 16 MB of the 32 MB DRAM

  // Returns the paper's prototype configuration.
  static HwConfig Default() { return HwConfig{}; }
};

}  // namespace npr

#endif  // SRC_IXP_HW_CONFIG_H_
