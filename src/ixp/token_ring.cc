#include "src/ixp/token_ring.h"

#include <cassert>

namespace npr {

TokenRing::TokenRing(EventQueue& engine, uint32_t pass_cycles)
    : engine_(engine), pass_cycles_(pass_cycles) {}

int TokenRing::AddMember(HwContext& ctx) {
  assert(!held_ && "cannot add members while the token is held");
  members_.push_back(Member{&ctx});
  return static_cast<int>(members_.size()) - 1;
}

bool TokenRing::TryGrant(int member) {
  assert(member >= 0 && member < size());
  if (available_ && offered_to_ == member) {
    available_ = false;
    held_ = true;
    idle_ps_ += engine_.now() - offer_since_;
    return true;
  }
  return false;
}

void TokenRing::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Member& m = ring->members_[static_cast<size_t>(member)];
  assert(!m.waiting && "member already waiting for the token");
  m.waiting = true;
  // The context blocks; Offer() wakes it through its MicroEngine.
  HwContext::BlockAwaiter block{m.ctx};
  block.await_suspend(h);
}

void TokenRing::Release(int member) {
  assert(held_ && offered_to_ == member && "Release by a non-holder");
  held_ = false;
  const int next = (member + 1) % size();
  engine_.ScheduleIn(kIxpClock.ToTime(pass_cycles_), [this, next] { Offer(next); });
}

void TokenRing::Offer(int member) {
  offered_to_ = member;
  offer_since_ = engine_.now();
  Member& m = members_[static_cast<size_t>(member)];
  if (m.waiting) {
    m.waiting = false;
    available_ = false;
    held_ = true;
    m.ctx->MakeReady();
  } else {
    // Signal stays set; the member will claim it in TryGrant when it next
    // reaches its Acquire.
    available_ = true;
  }
}

}  // namespace npr
