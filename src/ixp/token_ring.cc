#include "src/ixp/token_ring.h"

#include <cassert>

#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"

namespace npr {

TokenRing::TokenRing(EventQueue& engine, uint32_t pass_cycles)
    : engine_(engine), pass_cycles_(pass_cycles) {}

int TokenRing::AddMember(HwContext& ctx) {
  assert(!held_ && "cannot add members while the token is held");
  members_.push_back(Member{&ctx});
  last_grant_ps_ = engine_.now();
  return static_cast<int>(members_.size()) - 1;
}

int TokenRing::members_up() const {
  int up = 0;
  for (const Member& m : members_) {
    up += m.down ? 0 : 1;
  }
  return up;
}

bool TokenRing::TryGrant(int member) {
  assert(member >= 0 && member < size());
  if (available_ && offered_to_ == member) {
    available_ = false;
    held_ = true;
    idle_ps_ += engine_.now() - offer_since_;
    last_grant_ps_ = engine_.now();
    return true;
  }
  return false;
}

void TokenRing::SetMemberDown(int member, bool down) {
  assert(member >= 0 && member < size());
  Member& m = members_[static_cast<size_t>(member)];
  if (down) {
    assert(!(held_ && offered_to_ == member) && "token holder cannot go down");
    m.down = true;
    m.waiting = false;
    m.down_since = engine_.now();
    if (available_ && offered_to_ == member) {
      // The token was sitting on the dying member's doorstep; pass it on so
      // the rotation survives.
      available_ = false;
      const int next = (member + 1) % size();
      engine_.ScheduleIn(kIxpClock.ToTime(pass_cycles_), [this, next] { Offer(next); });
    }
  } else {
    m.down = false;
    if (parked_) {
      parked_ = false;
      Offer(member);
    }
  }
}

void TokenRing::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Member& m = ring->members_[static_cast<size_t>(member)];
  assert(!m.waiting && "member already waiting for the token");
  m.waiting = true;
#if defined(NPR_OBS_ENABLED)
  m.ctx->set_wait_class(WaitClass::kToken);
#endif
  // The context blocks; Offer() wakes it through its MicroEngine.
  HwContext::BlockAwaiter block{m.ctx};
  block.await_suspend(h);
}

void TokenRing::Release(int member) {
  assert(held_ && offered_to_ == member && "Release by a non-holder");
  held_ = false;
  const int next = (member + 1) % size();
  SimTime delay = kIxpClock.ToTime(pass_cycles_);
  if (fault_ != nullptr) {
    if (fault_->ShouldLoseToken()) {
      // The hand-off signal vanishes entirely: no offer is scheduled, the
      // ring wedges, and only RecoverLostToken() can revive it.
      lost_ = true;
      lost_next_ = next;
      lost_since_ = engine_.now();
      NPR_OBS_HOOK(tracer_, Record(SpanPoint::kFault, 0, kUnitNone,
                                   static_cast<uint16_t>(FaultKind::kTokenLost)));
      NPR_OBS_HOOK(tracer_, TriggerDump("token_lost", 0));
      return;
    }
    // A dropped inter-thread signal: the offer is redelivered late.
    delay += fault_->TokenOfferDelayPs();
  }
  engine_.ScheduleIn(delay, [this, next] { Offer(next); });
}

bool TokenRing::RecoverLostToken() {
  if (!lost_) {
    return false;
  }
  lost_ = false;
  Offer(lost_next_);
  return true;
}

void TokenRing::Offer(int member) {
  // Skip members that crashed out of the rotation.
  int target = member;
  for (int i = 0; i < size() && members_[static_cast<size_t>(target)].down; ++i) {
    target = (target + 1) % size();
  }
  if (members_[static_cast<size_t>(target)].down) {
    // Everyone is down; park the token until a restart calls
    // SetMemberDown(member, false).
    parked_ = true;
    available_ = false;
    return;
  }
  offered_to_ = target;
  offer_since_ = engine_.now();
  Member& m = members_[static_cast<size_t>(target)];
  if (m.waiting) {
    m.waiting = false;
    available_ = false;
    held_ = true;
    last_grant_ps_ = engine_.now();
    m.ctx->MakeReady();
  } else {
    // Signal stays set; the member will claim it in TryGrant when it next
    // reaches its Acquire.
    available_ = true;
  }
}

}  // namespace npr
