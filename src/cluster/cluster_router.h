// Multi-chassis router: the paper's stated next step (§6).
//
// "We next plan to construct a router from four Pentium/IXP pairs connected
// by a Gigabit Ethernet switch. The main difference ... is that we will
// need to budget RI capacity to service packets arriving on the 'internal'
// link, leaving fewer cycles for the VRP."
//
// Each node is a complete Router (Pentium + IXP1200). One port of every
// node (by default the last) is its internal gigabit link into a learning
// switch fabric. Routes are arranged so each node owns the prefixes behind
// its external ports and reaches every other node's prefixes through the
// fabric, addressed by the peer's internal MAC. A cross-node packet is
// therefore forwarded twice — once at the ingress node, once at the egress
// node — exactly as in a real multi-chassis system.
//
// For fault-tolerance experiments the cluster can carry more than one
// fabric plane (`ClusterConfig::internal_links`): each plane is its own
// switch with its own per-node internal port, so a link failure on one
// plane leaves a surviving path for reconvergence to use. Link and node
// state is modelled at the fabric boundary: frames crossing a down link or
// addressed to/from a dead node are dropped there and counted per member.

#ifndef SRC_CLUSTER_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_CLUSTER_ROUTER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/router.h"

namespace npr {

// Why a fabric frame was dropped (beyond "no such member").
enum class FabricDrop : uint8_t { kNone, kLinkDown, kNodeDown, kInjected };

// A functional N-port full-duplex Ethernet switch: frames are delivered to
// the member whose attachment MAC equals the frame's destination. Pacing
// and drops are handled by the attached MacPorts themselves (the fabric is
// non-blocking, as a real gigabit switch effectively is at this scale).
// Every drop is attributed to the transmitting member, so a blackholed
// node is visible per member, not just as a global count.
class SwitchFabric {
 public:
  struct MemberStats {
    uint64_t forwarded = 0;
    uint64_t unknown_dropped = 0;
    uint64_t link_down_dropped = 0;
    uint64_t node_down_dropped = 0;
    uint64_t injected_dropped = 0;
  };

  // Attaches `port` under `mac`. Frames the port transmits enter the
  // fabric; frames addressed to `mac` are injected into the port's wire.
  void Attach(const MacAddr& mac, MacPort& port);

  // Attaches a frame sink under `mac` with no MacPort behind it — the
  // control plane's receive path. Control frames cross the same fabric and
  // the same gate as data, so a down link starves hellos exactly as it
  // starves traffic.
  void AttachControlSink(const MacAddr& mac, std::function<void(Packet&&)> sink);

  // Offers a frame to the fabric on behalf of member `src_mac` (the control
  // plane's transmit path; MacPort members enter via their sink instead).
  void SendFrom(const MacAddr& src_mac, Packet&& packet);

  // Consulted per crossing once the destination member resolves; a verdict
  // other than kNone drops the frame and charges `src_mac`'s stats.
  using Gate = std::function<FabricDrop(const MacAddr& src, const MacAddr& dst)>;
  void set_gate(Gate gate) { gate_ = std::move(gate); }

  uint64_t forwarded() const { return forwarded_; }
  uint64_t unknown_destination() const { return unknown_; }
  uint64_t gate_dropped() const { return gate_dropped_; }
  // Stats charged to the transmitting member (zeroes for unknown MACs).
  MemberStats member_stats(const MacAddr& mac) const;

 private:
  void Deliver(const MacAddr& src_mac, Packet&& packet);

  std::map<MacAddr, MacPort*> members_;
  std::map<MacAddr, std::function<void(Packet&&)>> control_sinks_;
  std::map<MacAddr, MemberStats> member_stats_;
  Gate gate_;
  uint64_t forwarded_ = 0;
  uint64_t unknown_ = 0;
  uint64_t gate_dropped_ = 0;
};

// The internal MAC of node `k` on fabric plane `plane` (distinct from the
// per-port convention), and the MAC its control-plane endpoint answers on.
MacAddr ClusterNodeMac(int node, int plane = 0);
MacAddr ClusterControlMac(int node, int plane = 0);

struct ClusterConfig {
  int nodes = 4;
  // Per-node router configuration; the last `internal_links` ports become
  // internal links and are re-rated to 1 Gbps.
  RouterConfig node_config;
  double internal_link_bps = 1e9;
  // Fabric planes. 1 reproduces the single-switch §6 topology; 2 adds a
  // redundant plane so reconvergence has a surviving path after a link
  // failure.
  int internal_links = 1;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterConfig config);

  // Installs the cluster-wide address plan: destination 10.<g>.0.0/16 is
  // served by external port (g % ports_per_node) of node (g / ports_per_node),
  // where g ranges over all external ports; remote prefixes route through
  // the internal link with the owning node's MAC as next hop.
  void InstallClusterRoutes();
  // Installs only each node's own external prefixes — remote prefixes are
  // left to a control plane (ClusterControlPlane) to discover and install.
  void InstallLocalRoutes();
  // Warms every node's fast-path cache for the cluster address plan.
  void WarmRouteCaches();

  void Start();
  void RunForMs(double ms) { engine_.RunFor(static_cast<SimTime>(ms * kPsPerMs)); }
  void StartMeasurement();

  EventQueue& engine() { return engine_; }
  Router& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_planes() const { return config_.internal_links; }
  int internal_port(int plane = 0) const { return first_internal_port_ + plane; }
  int external_ports_per_node() const { return first_internal_port_; }
  SwitchFabric& fabric(int plane = 0) { return *planes_[static_cast<size_t>(plane)]; }

  // --- link / node state (driven by fault supervisors and health) ---

  // Marks node `k`'s internal link on `plane` up or down. Frames crossing a
  // down link are dropped at the fabric and counted per member.
  void SetLinkUp(int node, int plane, bool up);
  bool link_up(int node, int plane) const {
    return link_up_[static_cast<size_t>(node * num_planes() + plane)];
  }
  // Marks node `k` as crashed (down) or restarted (up). A dead node's
  // frames — data and control, both directions — are dropped at every
  // plane, which is what starves its neighbors' hellos and probes.
  void SetNodeUp(int node, bool up);
  bool node_up(int node) const { return node_up_[static_cast<size_t>(node)]; }

  // Observers called from SetNodeUp (the ClusterHealthMonitor mirrors node
  // state onto its probe channels without the cluster linking npr_health).
  void AddNodeStateHook(std::function<void(int node, bool up)> hook) {
    node_state_hooks_.push_back(std::move(hook));
  }

  // Global external prefix index `g` -> (node, port) and its CIDR string.
  std::pair<int, int> LocateExternal(int g) const;
  std::string ExternalCidr(int g) const;
  uint32_t ExternalDstIp(int g, uint16_t low = 1) const;
  int num_external_ports() const { return num_nodes() * external_ports_per_node(); }

  // Aggregate statistics across the cluster.
  uint64_t TotalForwarded() const;
  uint64_t TotalDrops() const;
  double AggregateRateMpps() const;

  ~ClusterRouter();

 private:
  FabricDrop GateFrame(int plane, const MacAddr& src, const MacAddr& dst) const;

  EventQueue engine_;
  ClusterConfig config_;
  int first_internal_port_ = 0;
  std::vector<std::unique_ptr<Router>> nodes_;
  std::vector<std::unique_ptr<SwitchFabric>> planes_;
  std::vector<bool> node_up_;
  std::vector<bool> link_up_;  // node * num_planes() + plane
  std::vector<std::function<void(int, bool)>> node_state_hooks_;
  SimTime window_start_ = 0;
};

}  // namespace npr

#endif  // SRC_CLUSTER_CLUSTER_ROUTER_H_
