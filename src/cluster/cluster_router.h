// Multi-chassis router: the paper's stated next step (§6).
//
// "We next plan to construct a router from four Pentium/IXP pairs connected
// by a Gigabit Ethernet switch. The main difference ... is that we will
// need to budget RI capacity to service packets arriving on the 'internal'
// link, leaving fewer cycles for the VRP."
//
// Each node is a complete Router (Pentium + IXP1200). One port of every
// node (by default the last) is its internal gigabit link into a learning
// switch fabric. Routes are arranged so each node owns the prefixes behind
// its external ports and reaches every other node's prefixes through the
// fabric, addressed by the peer's internal MAC. A cross-node packet is
// therefore forwarded twice — once at the ingress node, once at the egress
// node — exactly as in a real multi-chassis system.

#ifndef SRC_CLUSTER_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_CLUSTER_ROUTER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/router.h"

namespace npr {

// A functional N-port full-duplex Ethernet switch: frames are delivered to
// the member whose attachment MAC equals the frame's destination. Pacing
// and drops are handled by the attached MacPorts themselves (the fabric is
// non-blocking, as a real gigabit switch effectively is at this scale).
class SwitchFabric {
 public:
  // Attaches `port` under `mac`. Frames the port transmits enter the
  // fabric; frames addressed to `mac` are injected into the port's wire.
  void Attach(const MacAddr& mac, MacPort& port);

  uint64_t forwarded() const { return forwarded_; }
  uint64_t unknown_destination() const { return unknown_; }

 private:
  void Deliver(Packet&& packet);

  std::map<MacAddr, MacPort*> members_;
  uint64_t forwarded_ = 0;
  uint64_t unknown_ = 0;
};

// The internal MAC of node `k` (distinct from the per-port convention).
MacAddr ClusterNodeMac(int node);

struct ClusterConfig {
  int nodes = 4;
  // Per-node router configuration; the last port becomes the internal link
  // and is re-rated to 1 Gbps.
  RouterConfig node_config;
  double internal_link_bps = 1e9;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterConfig config);

  // Installs the cluster-wide address plan: destination 10.<g>.0.0/16 is
  // served by external port (g % ports_per_node) of node (g / ports_per_node),
  // where g ranges over all external ports; remote prefixes route through
  // the internal link with the owning node's MAC as next hop.
  void InstallClusterRoutes();

  void Start();
  void RunForMs(double ms) { engine_.RunFor(static_cast<SimTime>(ms * kPsPerMs)); }
  void StartMeasurement();

  EventQueue& engine() { return engine_; }
  Router& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int internal_port() const { return internal_port_; }
  int external_ports_per_node() const { return internal_port_; }
  SwitchFabric& fabric() { return fabric_; }

  // Global external prefix index `g` -> (node, port) and its CIDR string.
  std::pair<int, int> LocateExternal(int g) const;
  std::string ExternalCidr(int g) const;
  uint32_t ExternalDstIp(int g, uint16_t low = 1) const;
  int num_external_ports() const { return num_nodes() * external_ports_per_node(); }

  // Aggregate statistics across the cluster.
  uint64_t TotalForwarded() const;
  uint64_t TotalDrops() const;
  double AggregateRateMpps() const;

  ~ClusterRouter();

 private:
  EventQueue engine_;
  ClusterConfig config_;
  int internal_port_ = 0;
  std::vector<std::unique_ptr<Router>> nodes_;
  SwitchFabric fabric_;
  SimTime window_start_ = 0;
};

}  // namespace npr

#endif  // SRC_CLUSTER_CLUSTER_ROUTER_H_
