// Multi-chassis router: the paper's stated next step (§6).
//
// "We next plan to construct a router from four Pentium/IXP pairs connected
// by a Gigabit Ethernet switch. The main difference ... is that we will
// need to budget RI capacity to service packets arriving on the 'internal'
// link, leaving fewer cycles for the VRP."
//
// Each node is a complete Router (Pentium + IXP1200). One port of every
// node (by default the last) is its internal gigabit link into a learning
// switch fabric. Routes are arranged so each node owns the prefixes behind
// its external ports and reaches every other node's prefixes through the
// fabric, addressed by the peer's internal MAC. A cross-node packet is
// therefore forwarded twice — once at the ingress node, once at the egress
// node — exactly as in a real multi-chassis system.
//
// For fault-tolerance experiments the cluster can carry more than one
// fabric plane (`ClusterConfig::internal_links`): each plane is its own
// switch with its own per-node internal port, so a link failure on one
// plane leaves a surviving path for reconvergence to use. Link and node
// state is modelled at the fabric boundary: frames crossing a down link or
// addressed to/from a dead node are dropped there and counted per member.
//
// With ClusterConfig::fabric_latency_ps > 0 the cluster runs *sharded*:
// each node gets its own EventQueue and the fabric latency becomes a
// conservative lookahead window (src/sim/shard_group.h), so node shards can
// execute a window in parallel while staying bit-identical to a
// single-threaded run. Outbound fabric frames are parked in per-node
// mailboxes during a window and merged onto the hub engine at the barrier
// in (deliver_time, source node, transmit seq) order.

#ifndef SRC_CLUSTER_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_CLUSTER_ROUTER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/router.h"
#include "src/sim/shard_group.h"

namespace npr {

// Why a fabric frame was dropped (beyond "no such member").
enum class FabricDrop : uint8_t { kNone, kLinkDown, kNodeDown, kInjected };

// A functional N-port full-duplex Ethernet switch: frames are delivered to
// the member whose attachment MAC equals the frame's destination. Pacing
// and drops are handled by the attached MacPorts themselves (the fabric is
// non-blocking, as a real gigabit switch effectively is at this scale).
// Every drop is attributed to the transmitting member, so a blackholed
// node is visible per member, not just as a global count.
class SwitchFabric {
 public:
  struct MemberStats {
    uint64_t forwarded = 0;
    uint64_t unknown_dropped = 0;
    uint64_t link_down_dropped = 0;
    uint64_t node_down_dropped = 0;
    uint64_t injected_dropped = 0;
  };

  // Attaches `port` under `mac`. Frames the port transmits enter the
  // fabric; frames addressed to `mac` are injected into the port's wire.
  void Attach(const MacAddr& mac, MacPort& port);

  // Attaches a frame sink under `mac` with no MacPort behind it — the
  // control plane's receive path. Control frames cross the same fabric and
  // the same gate as data, so a down link starves hellos exactly as it
  // starves traffic.
  void AttachControlSink(const MacAddr& mac, std::function<void(Packet&&)> sink);

  // Offers a frame to the fabric on behalf of member `src_mac` (the control
  // plane's transmit path; MacPort members enter via their sink instead).
  void SendFrom(const MacAddr& src_mac, Packet&& packet);

  // Consulted per crossing once the destination member resolves; a verdict
  // other than kNone drops the frame and charges `src_mac`'s stats.
  using Gate = std::function<FabricDrop(const MacAddr& src, const MacAddr& dst)>;
  void set_gate(Gate gate) { gate_ = std::move(gate); }

  uint64_t forwarded() const { return forwarded_; }
  uint64_t unknown_destination() const { return unknown_; }
  uint64_t gate_dropped() const { return gate_dropped_; }
  // Stats charged to the transmitting member (zeroes for unknown MACs).
  MemberStats member_stats(const MacAddr& mac) const;

  // Sharded clusters: member frames are delivered by scheduling the wire
  // injection on the destination port's own engine at the hub's current
  // time, instead of injecting synchronously — the fabric itself (gate,
  // stats) always runs on the hub. Control sinks stay synchronous; they are
  // hub-resident by construction. Pass nullptr to restore direct delivery.
  void set_deferred_delivery(EventQueue* hub) { hub_ = hub; }

 private:
  void Deliver(const MacAddr& src_mac, Packet&& packet);

  std::map<MacAddr, MacPort*> members_;
  std::map<MacAddr, std::function<void(Packet&&)>> control_sinks_;
  std::map<MacAddr, MemberStats> member_stats_;
  Gate gate_;
  EventQueue* hub_ = nullptr;
  uint64_t forwarded_ = 0;
  uint64_t unknown_ = 0;
  uint64_t gate_dropped_ = 0;
};

// The internal MAC of node `k` on fabric plane `plane` (distinct from the
// per-port convention), and the MAC its control-plane endpoint answers on.
MacAddr ClusterNodeMac(int node, int plane = 0);
MacAddr ClusterControlMac(int node, int plane = 0);

struct ClusterConfig {
  int nodes = 4;
  // Per-node router configuration; the last `internal_links` ports become
  // internal links and are re-rated to 1 Gbps.
  RouterConfig node_config;
  double internal_link_bps = 1e9;
  // Fabric planes. 1 reproduces the single-switch §6 topology; 2 adds a
  // redundant plane so reconvergence has a surviving path after a link
  // failure.
  int internal_links = 1;

  // --- sharded execution (docs/perf.md, "Sharded cluster simulation") ---
  //
  // 0 (the default) is the legacy mode: every node shares the cluster
  // engine and fabric crossings deliver synchronously with zero latency.
  // A positive value models a store-and-forward fabric: a frame transmitted
  // at t is injected into the destination port at t + fabric_latency_ps,
  // and each node runs on its own EventQueue shard. The latency doubles as
  // the conservative lookahead window, so runs are bit-identical for any
  // `threads` value. 2 µs is a realistic gigabit switch crossing.
  SimTime fabric_latency_ps = 0;
  // Worker threads for the node phase of each window (1 = sequential; only
  // meaningful in sharded mode).
  int threads = 1;
  // Window-width override for lookahead-violation testing; 0 = auto
  // (= fabric_latency_ps). A window wider than the fabric latency breaks
  // the lookahead guarantee and is detected — loudly — at the next merge.
  SimTime window_ps = 0;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterConfig config);

  // Installs the cluster-wide address plan: destination 10.<g>.0.0/16 is
  // served by external port (g % ports_per_node) of node (g / ports_per_node),
  // where g ranges over all external ports; remote prefixes route through
  // the internal link with the owning node's MAC as next hop.
  void InstallClusterRoutes();
  // Installs only each node's own external prefixes — remote prefixes are
  // left to a control plane (ClusterControlPlane) to discover and install.
  void InstallLocalRoutes();
  // Warms every node's fast-path cache for the cluster address plan.
  void WarmRouteCaches();

  void Start();
  void RunFor(SimTime dt) {
    if (shard_group_) {
      shard_group_->RunFor(dt);
    } else {
      engine_.RunFor(dt);
    }
  }
  void RunForMs(double ms) { RunFor(static_cast<SimTime>(ms * kPsPerMs)); }
  void StartMeasurement();

  // The hub engine: cluster-global logic (control plane, fault supervisors,
  // federated health, fabric gate) lives here. In legacy mode it is also
  // every node's engine.
  EventQueue& engine() { return engine_; }
  // The engine node `k`'s pipeline runs on: its shard when sharded, the hub
  // otherwise. Per-node traffic drivers and observers belong here.
  EventQueue& node_engine(int k) {
    return shard_engines_.empty() ? engine_ : *shard_engines_[static_cast<size_t>(k)];
  }
  bool sharded() const { return config_.fabric_latency_ps > 0; }
  SimTime now() const { return shard_group_ ? shard_group_->now() : engine_.now(); }
  // Events executed across the hub and every shard (== engine().events_run()
  // in legacy mode).
  uint64_t TotalEventsRun() const {
    return shard_group_ ? shard_group_->events_run() : engine_.events_run();
  }
  Router& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_planes() const { return config_.internal_links; }
  int internal_port(int plane = 0) const { return first_internal_port_ + plane; }
  int external_ports_per_node() const { return first_internal_port_; }
  SwitchFabric& fabric(int plane = 0) { return *planes_[static_cast<size_t>(plane)]; }

  // --- link / node state (driven by fault supervisors and health) ---

  // Marks node `k`'s internal link on `plane` up or down. Frames crossing a
  // down link are dropped at the fabric and counted per member.
  void SetLinkUp(int node, int plane, bool up);
  bool link_up(int node, int plane) const {
    return link_up_[static_cast<size_t>(node * num_planes() + plane)];
  }
  // Marks node `k` as crashed (down) or restarted (up). A dead node's
  // frames — data and control, both directions — are dropped at every
  // plane, which is what starves its neighbors' hellos and probes.
  void SetNodeUp(int node, bool up);
  bool node_up(int node) const { return node_up_[static_cast<size_t>(node)]; }

  // Observers called from SetNodeUp (the ClusterHealthMonitor mirrors node
  // state onto its probe channels without the cluster linking npr_health).
  void AddNodeStateHook(std::function<void(int node, bool up)> hook) {
    node_state_hooks_.push_back(std::move(hook));
  }

  // Global external prefix index `g` -> (node, port) and its CIDR string.
  std::pair<int, int> LocateExternal(int g) const;
  std::string ExternalCidr(int g) const;
  uint32_t ExternalDstIp(int g, uint16_t low = 1) const;
  int num_external_ports() const { return num_nodes() * external_ports_per_node(); }

  // Aggregate statistics across the cluster.
  uint64_t TotalForwarded() const;
  uint64_t TotalDrops() const;
  double AggregateRateMpps() const;

  ~ClusterRouter();

 private:
  FabricDrop GateFrame(int plane, const MacAddr& src, const MacAddr& dst) const;

  // One node's outbound fabric frames buffered during the current window.
  // Appended only by that node's shard (single-writer), drained only at the
  // barrier (single-reader, phases never overlap) — no locking needed.
  struct FabricMailbox {
    struct Entry {
      SimTime deliver_at = 0;  // tx time + fabric_latency_ps
      int plane = 0;
      uint64_t seq = 0;  // per-source transmit order
      Packet packet;
    };
    std::vector<Entry> entries;
    uint64_t next_seq = 0;
  };

  // Barrier hook: drains every mailbox onto the hub in (deliver_at,
  // src_node, seq) order and aborts on a lookahead violation.
  void MergeMailboxes(SimTime window_start);

  EventQueue engine_;  // the hub
  ClusterConfig config_;
  int first_internal_port_ = 0;
  std::vector<std::unique_ptr<EventQueue>> shard_engines_;  // empty in legacy mode
  std::vector<FabricMailbox> mailboxes_;                    // one per node
  std::vector<std::unique_ptr<Router>> nodes_;
  std::vector<std::unique_ptr<SwitchFabric>> planes_;
  std::unique_ptr<ShardGroup> shard_group_;
  std::vector<bool> node_up_;
  std::vector<bool> link_up_;  // node * num_planes() + plane
  std::vector<std::function<void(int, bool)>> node_state_hooks_;
  SimTime window_start_ = 0;
};

}  // namespace npr

#endif  // SRC_CLUSTER_CLUSTER_ROUTER_H_
