#include "src/cluster/cluster_control.h"

#include <cstdarg>
#include <cstdio>

#include "src/fault/fault_injector.h"
#include "src/net/ipv4.h"

namespace npr {

const char* ReconvergenceKindName(ReconvergenceRecord::Kind kind) {
  switch (kind) {
    case ReconvergenceRecord::Kind::kLinkDown:
      return "link_down";
    case ReconvergenceRecord::Kind::kNodeDown:
      return "node_down";
    case ReconvergenceRecord::Kind::kNodeReadmit:
      return "node_readmit";
  }
  return "unknown";
}

ClusterControlPlane::ClusterControlPlane(ClusterRouter& cluster, ClusterControlConfig config)
    : cluster_(cluster), cfg_(config) {
  nodes_.resize(static_cast<size_t>(cluster_.num_nodes()));
}

void ClusterControlPlane::Start() {
  started_ = true;
  const SimTime now = cluster_.engine().now();
  const int planes = cluster_.num_planes();

  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    NodeState& st = nodes_[static_cast<size_t>(k)];
    st.ospf = std::make_unique<OspfLite>(RouterId(k));
    st.ospf->set_next_hop_resolver([this](uint32_t neighbor_id, uint16_t port) {
      const int plane = static_cast<int>(port) - cluster_.internal_port(0);
      return ClusterNodeMac(NodeOfId(neighbor_id), plane);
    });
    // Local external prefixes as stub links.
    for (int p = 0; p < cluster_.external_ports_per_node(); ++p) {
      const int g = k * cluster_.external_ports_per_node() + p;
      OspfLink stub;
      stub.neighbor_id = 0;
      stub.prefix_addr = cluster_.ExternalDstIp(g, 0);
      stub.prefix_len = 16;
      stub.port_hint = static_cast<uint16_t>(p);
      st.ospf->AddLocalLink(stub);
    }
    // Full-mesh adjacency over every fabric plane.
    for (int j = 0; j < cluster_.num_nodes(); ++j) {
      if (j == k) {
        continue;
      }
      for (int plane = 0; plane < planes; ++plane) {
        OspfLink adj;
        adj.neighbor_id = RouterId(j);
        adj.cost = 1;
        adj.port_hint = static_cast<uint16_t>(cluster_.internal_port(plane));
        st.ospf->AddLocalLink(adj);
        st.adj[{j, plane}] = AdjState{now, true};
      }
    }
    for (int plane = 0; plane < planes; ++plane) {
      cluster_.fabric(plane).AttachControlSink(
          ClusterControlMac(k, plane),
          [this, k, plane](Packet&& packet) { OnControlFrame(k, plane, std::move(packet)); });
    }
  }

  // Bootstrap: peers exchange their initial self LSAs synchronously (the
  // equivalent of configuration-time peering) and compute first routes.
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    for (int j = 0; j < cluster_.num_nodes(); ++j) {
      if (j != k) {
        ospf(j).ProcessLsa(ospf(k).self_lsa());
      }
    }
  }
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    Recompute(k);
  }
  Note("control plane started: %d nodes, %d plane(s)", cluster_.num_nodes(), planes);

  next_hello_at_ = now;  // first hellos go out on the first tick
  cluster_.engine().ScheduleIn(cfg_.supervisor_period_ps, [this] { Tick(); });
}

void ClusterControlPlane::Tick() {
  const SimTime now = cluster_.engine().now();
  if (now >= next_hello_at_) {
    for (int k = 0; k < cluster_.num_nodes(); ++k) {
      SendHellos(k);
    }
    next_hello_at_ += cfg_.hello_period_ps;
  }
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    CheckDeadIntervals(k);
    PollInjector(k);
  }
  cluster_.engine().ScheduleIn(cfg_.supervisor_period_ps, [this] { Tick(); });
}

void ClusterControlPlane::SendHellos(int node) {
  if (!cluster_.node_up(node)) {
    return;
  }
  NodeState& st = nodes_[static_cast<size_t>(node)];
  ++st.hello_seq;
  const OspfHello hello{RouterId(node), st.hello_seq};
  for (int plane = 0; plane < cluster_.num_planes(); ++plane) {
    for (int j = 0; j < cluster_.num_nodes(); ++j) {
      if (j == node) {
        continue;
      }
      Packet packet = BuildHelloPacket(hello, RouterId(node), RouterId(j));
      SendControlFrame(node, j, plane, std::move(packet));
      ++hellos_sent_;
    }
  }
}

void ClusterControlPlane::SendControlFrame(int from, int to, int plane, Packet&& packet) {
  EthernetHeader eth;
  eth.src = ClusterControlMac(from, plane);
  eth.dst = ClusterControlMac(to, plane);
  eth.Write(packet.bytes());
  cluster_.engine().ScheduleIn(
      cfg_.link_delay_ps,
      [this, plane, src = eth.src, p = std::move(packet)]() mutable {
        cluster_.fabric(plane).SendFrom(src, std::move(p));
      });
}

void ClusterControlPlane::OnControlFrame(int node, int plane, Packet&& packet) {
  if (!cluster_.node_up(node)) {
    return;
  }
  auto l3 = packet.l3();
  auto ip = Ipv4Header::Parse(l3);
  if (!ip || ip->protocol != kIpProtoOspfLite) {
    return;
  }
  auto payload = l3.subspan(ip->header_bytes());
  if (auto hello = DecodeHello(payload)) {
    OnHello(node, plane, *hello);
    return;
  }
  if (auto lsa = DecodeLsa(payload)) {
    OnLsa(node, *lsa);
  }
}

void ClusterControlPlane::OnHello(int node, int plane, const OspfHello& hello) {
  const int peer = NodeOfId(hello.origin);
  NodeState& st = nodes_[static_cast<size_t>(node)];
  auto it = st.adj.find({peer, plane});
  if (it == st.adj.end()) {
    return;
  }
  ++hellos_received_;
  it->second.last_hello_at = cluster_.engine().now();
  if (it->second.up) {
    return;
  }
  // Adjacency recovers: re-originate, resync the peer's database (it may be
  // warm-restarting with an empty view), and reroute onto the link.
  it->second.up = true;
  Note("node%d adjacency up: peer=%d plane=%d", node, peer, plane);
  NoteReadmitHello(peer);
  if (ospf(node).SetLocalLinkUp(hello.origin,
                                static_cast<uint16_t>(cluster_.internal_port(plane)), true)) {
    FloodLsa(node, ospf(node).self_lsa());
    ResyncPeer(node, peer);
    Recompute(node);
  }
}

void ClusterControlPlane::CheckDeadIntervals(int node) {
  if (!cluster_.node_up(node)) {
    return;
  }
  const SimTime now = cluster_.engine().now();
  NodeState& st = nodes_[static_cast<size_t>(node)];
  for (auto& [key, adj] : st.adj) {
    if (!adj.up || now < adj.last_hello_at + cfg_.dead_interval_ps) {
      continue;
    }
    Note("node%d dead-interval expired: peer=%d plane=%d", node, key.first, key.second);
    DeclareAdjacencyDown(node, key.first, key.second);
  }
}

void ClusterControlPlane::DeclareAdjacencyDown(int node, int peer, int plane) {
  NodeState& st = nodes_[static_cast<size_t>(node)];
  auto it = st.adj.find({peer, plane});
  if (it == st.adj.end() || !it->second.up) {
    return;
  }
  it->second.up = false;
  NoteDeadDeclare(node, peer, plane);
  if (ospf(node).SetLocalLinkUp(RouterId(peer),
                                static_cast<uint16_t>(cluster_.internal_port(plane)), false)) {
    FloodLsa(node, ospf(node).self_lsa());
    Recompute(node);
  }
}

void ClusterControlPlane::SuspectNode(int node) {
  Note("health: node%d suspected, expiring adjacencies now", node);
  for (int j = 0; j < cluster_.num_nodes(); ++j) {
    if (j == node || !cluster_.node_up(j)) {
      continue;
    }
    for (int plane = 0; plane < cluster_.num_planes(); ++plane) {
      DeclareAdjacencyDown(j, node, plane);
    }
  }
}

void ClusterControlPlane::PollInjector(int node) {
  if (!cluster_.node_up(node)) {
    return;
  }
  FaultInjector* fault = cluster_.node(node).fault_injector();
  if (fault == nullptr) {
    return;
  }
  if (const SimTime down = fault->LinkDownPs(); down > 0) {
    NodeState& st = nodes_[static_cast<size_t>(node)];
    const int plane = st.next_flap_plane;
    st.next_flap_plane = (st.next_flap_plane + 1) % cluster_.num_planes();
    ApplyLinkDown(node, plane, down);
  }
  if (const SimTime dead = fault->NodeCrashPs(); dead > 0) {
    ApplyNodeCrash(node, dead);
  }
}

void ClusterControlPlane::ApplyLinkDown(int node, int plane, SimTime duration_ps) {
  if (!cluster_.link_up(node, plane)) {
    return;  // already down (overlapping flap)
  }
  cluster_.SetLinkUp(node, plane, false);
  OpenRecord(ReconvergenceRecord::Kind::kLinkDown, node, plane);
  Note("fault: node%d plane%d link down for %lld us", node, plane,
       static_cast<long long>(duration_ps / kPsPerUs));
  if (duration_ps != FaultInjector::kForever) {
    cluster_.engine().ScheduleIn(duration_ps, [this, node, plane] {
      cluster_.SetLinkUp(node, plane, true);
      Note("node%d plane%d link restored", node, plane);
    });
  }
}

void ClusterControlPlane::ApplyNodeCrash(int node, SimTime duration_ps) {
  if (!cluster_.node_up(node)) {
    return;
  }
  cluster_.SetNodeUp(node, false);
  OpenRecord(ReconvergenceRecord::Kind::kNodeDown, node, -1);
  if (duration_ps == FaultInjector::kForever) {
    Note("fault: node%d crashed (permanent)", node);
  } else {
    Note("fault: node%d crashed for %lld us", node,
         static_cast<long long>(duration_ps / kPsPerUs));
    cluster_.engine().ScheduleIn(duration_ps, [this, node] { Readmit(node); });
  }
}

void ClusterControlPlane::Readmit(int node) {
  cluster_.SetNodeUp(node, true);
  const SimTime now = cluster_.engine().now();
  NodeState& st = nodes_[static_cast<size_t>(node)];
  for (auto& [key, adj] : st.adj) {
    adj.last_hello_at = now;  // fresh grace period
    adj.up = true;
    ospf(node).SetLocalLinkUp(RouterId(key.first),
                              static_cast<uint16_t>(cluster_.internal_port(key.second)), true);
  }
  OpenRecord(ReconvergenceRecord::Kind::kNodeReadmit, node, -1);
  Note("node%d warm restart: re-flooding self LSA", node);
  FloodLsa(node, ospf(node).ReoriginateSelf());
  Recompute(node);
}

void ClusterControlPlane::OnLsa(int node, const Lsa& lsa) {
  if (lsa.origin == RouterId(node)) {
    return;  // own LSA relayed back
  }
  if (!ospf(node).ProcessLsa(lsa)) {
    ++duplicate_lsas_suppressed_;
    return;
  }
  // Newer LSA: relay it onward (peers that already have it suppress the
  // duplicate, which terminates the flood) and reconverge locally.
  FloodLsa(node, lsa);
  Recompute(node);
}

void ClusterControlPlane::FloodLsa(int node, const Lsa& lsa) {
  if (!cluster_.node_up(node)) {
    return;
  }
  cluster_.node(node).stats().lsas_reflooded += 1;
  for (int plane = 0; plane < cluster_.num_planes(); ++plane) {
    for (int j = 0; j < cluster_.num_nodes(); ++j) {
      if (j == node) {
        continue;
      }
      Packet packet = BuildLsaPacket(lsa, RouterId(node), RouterId(j));
      SendControlFrame(node, j, plane, std::move(packet));
      ++lsas_flooded_;
    }
  }
}

void ClusterControlPlane::ResyncPeer(int node, int peer) {
  for (const Lsa& lsa : ospf(node).DatabaseSnapshot()) {
    for (int plane = 0; plane < cluster_.num_planes(); ++plane) {
      Packet packet = BuildLsaPacket(lsa, RouterId(node), RouterId(peer));
      SendControlFrame(node, peer, plane, std::move(packet));
      ++lsas_flooded_;
    }
  }
}

void ClusterControlPlane::Recompute(int node) {
  if (!cluster_.node_up(node)) {
    return;
  }
  int work = 0;
  int withdrawn = 0;
  const int installed =
      ospf(node).ComputeRoutes(cluster_.node(node).route_table(), &work, &withdrawn);
  RouterStats& stats = cluster_.node(node).stats();
  stats.spf_recomputes += 1;
  stats.routes_withdrawn += static_cast<uint64_t>(withdrawn);
  NoteRecompute(node);
  Note("node%d spf: work=%d installed=%d withdrawn=%d", node, work, installed, withdrawn);
}

void ClusterControlPlane::OpenRecord(ReconvergenceRecord::Kind kind, int node, int plane) {
  ReconvergenceRecord record;
  record.kind = kind;
  record.node = node;
  record.plane = plane;
  record.fault_at = cluster_.engine().now();
  records_.push_back(record);
  // Closing the record requires an SPF re-run on every node still up.
  std::vector<int> pending;
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    if (cluster_.node_up(k)) {
      pending.push_back(k);
    }
  }
  pending_recompute_.push_back(std::move(pending));
}

void ClusterControlPlane::NoteDeadDeclare(int observer, int peer, int plane) {
  const SimTime now = cluster_.engine().now();
  for (ReconvergenceRecord& r : records_) {
    if (r.closed() || r.detected_at != 0) {
      continue;
    }
    const bool node_match =
        r.kind == ReconvergenceRecord::Kind::kNodeDown && r.node == peer;
    const bool link_match = r.kind == ReconvergenceRecord::Kind::kLinkDown &&
                            r.plane == plane && (r.node == peer || r.node == observer);
    if (node_match || link_match) {
      r.detected_at = now;
    }
  }
}

void ClusterControlPlane::NoteReadmitHello(int node) {
  const SimTime now = cluster_.engine().now();
  for (ReconvergenceRecord& r : records_) {
    if (!r.closed() && r.detected_at == 0 &&
        r.kind == ReconvergenceRecord::Kind::kNodeReadmit && r.node == node) {
      r.detected_at = now;
    }
  }
}

void ClusterControlPlane::NoteRecompute(int node) {
  const SimTime now = cluster_.engine().now();
  for (size_t i = 0; i < records_.size(); ++i) {
    ReconvergenceRecord& r = records_[i];
    if (r.closed() || r.detected_at == 0) {
      continue;
    }
    std::vector<int>& pending = pending_recompute_[i];
    std::erase(pending, node);
    if (pending.empty()) {
      r.reconverged_at = now;
      Note("reconverged: kind=%s node=%d mttd=%lld us mttr=%lld us",
           ReconvergenceKindName(r.kind), r.node,
           static_cast<long long>(r.mttd_ps() / kPsPerUs),
           static_cast<long long>(r.mttr_ps() / kPsPerUs));
    }
  }
}

void ClusterControlPlane::Note(const char* fmt, ...) {
  if (trace_.size() >= cfg_.max_trace_lines) {
    ++trace_dropped_;
    return;
  }
  char body[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  char line[288];
  std::snprintf(line, sizeof(line), "t=%lld %s",
                static_cast<long long>(cluster_.engine().now()), body);
  trace_.emplace_back(line);
}

}  // namespace npr
