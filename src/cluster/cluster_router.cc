#include "src/cluster/cluster_router.h"

#include <cassert>

#include "src/forwarders/native.h"

namespace npr {

MacAddr ClusterNodeMac(int node) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, 0x01, static_cast<uint8_t>(node)};
}

void SwitchFabric::Attach(const MacAddr& mac, MacPort& port) {
  members_[mac] = &port;
  port.SetSink([this](Packet&& packet) { Deliver(std::move(packet)); });
}

void SwitchFabric::Deliver(Packet&& packet) {
  auto eth = EthernetHeader::Parse(packet.bytes());
  if (!eth) {
    ++unknown_;
    return;
  }
  auto it = members_.find(eth->dst);
  if (it == members_.end()) {
    ++unknown_;
    return;
  }
  ++forwarded_;
  it->second->InjectFromWire(std::move(packet));
}

ClusterRouter::ClusterRouter(ClusterConfig config) : config_(std::move(config)) {
  assert(config_.nodes >= 2);
  RouterConfig node_cfg = config_.node_config;
  assert(!node_cfg.port_rates_bps.empty());
  internal_port_ = node_cfg.num_ports() - 1;
  // The internal link is gigabit (§6); budgeting RI capacity for it is the
  // paper's stated consequence — visible here as the extra load the
  // internal port's traffic puts on the ingress/egress pipelines.
  node_cfg.port_rates_bps[static_cast<size_t>(internal_port_)] = config_.internal_link_bps;

  nodes_.reserve(static_cast<size_t>(config_.nodes));
  for (int k = 0; k < config_.nodes; ++k) {
    nodes_.push_back(std::make_unique<Router>(node_cfg, engine_));
    nodes_.back()->SetExceptionHandler(std::make_unique<FullIpForwarder>());
    fabric_.Attach(ClusterNodeMac(k), nodes_.back()->port(internal_port_));
  }
}

ClusterRouter::~ClusterRouter() {
  // The shared engine's pending events reference the member routers; drop
  // them before the nodes (declared after engine_) are destroyed.
  engine_.Clear();
}

std::pair<int, int> ClusterRouter::LocateExternal(int g) const {
  return {g / external_ports_per_node(), g % external_ports_per_node()};
}

std::string ClusterRouter::ExternalCidr(int g) const {
  return "10." + std::to_string(g) + ".0.0/16";
}

uint32_t ClusterRouter::ExternalDstIp(int g, uint16_t low) const {
  return 0x0a000000u | static_cast<uint32_t>(g) << 16 | low;
}

void ClusterRouter::InstallClusterRoutes() {
  for (int g = 0; g < num_external_ports(); ++g) {
    const auto [owner, port] = LocateExternal(g);
    const auto prefix = *Prefix::Parse(ExternalCidr(g));
    for (int k = 0; k < num_nodes(); ++k) {
      RouteEntry entry;
      if (k == owner) {
        entry.out_port = static_cast<uint8_t>(port);
        entry.next_hop_mac = PortMac(static_cast<uint8_t>(port));
      } else {
        // Remote prefix: egress on the internal link, addressed to the
        // owning node's fabric MAC.
        entry.out_port = static_cast<uint8_t>(internal_port_);
        entry.next_hop_mac = ClusterNodeMac(owner);
      }
      node(k).route_table().AddRoute(prefix, entry);
    }
  }
  // Warm every node's fast-path cache for the cluster address plan.
  for (int k = 0; k < num_nodes(); ++k) {
    for (int g = 0; g < num_external_ports(); ++g) {
      for (uint16_t low = 1; low <= 16; ++low) {
        const uint32_t dst = ExternalDstIp(g, low);
        auto hit = node(k).route_table().Lookup(dst);
        if (hit.entry) {
          node(k).route_cache().Insert(dst, *hit.entry, node(k).route_table().epoch());
        }
      }
    }
  }
}

void ClusterRouter::Start() {
  for (auto& n : nodes_) {
    n->Start();
  }
}

void ClusterRouter::StartMeasurement() {
  window_start_ = engine_.now();
  for (auto& n : nodes_) {
    n->StartMeasurement();
  }
}

uint64_t ClusterRouter::TotalForwarded() const {
  // Note: a cross-node packet is forwarded once at each hop, so this counts
  // it twice — it measures pipeline work, not external goodput (benches
  // measure goodput at their sinks).
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().forwarded;
  }
  return total;
}

uint64_t ClusterRouter::TotalDrops() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().dropped_queue_full + n->stats().lost_overwritten;
  }
  return total;
}

double ClusterRouter::AggregateRateMpps() const {
  double total = 0;
  for (const auto& n : nodes_) {
    total += n->ForwardingRateMpps();
  }
  return total;
}

}  // namespace npr
