#include "src/cluster/cluster_router.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/fault/fault_injector.h"
#include "src/forwarders/native.h"
#include "src/sim/log.h"

namespace npr {

MacAddr ClusterNodeMac(int node, int plane) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, static_cast<uint8_t>(0x01 + plane),
                 static_cast<uint8_t>(node)};
}

MacAddr ClusterControlMac(int node, int plane) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, static_cast<uint8_t>(0x11 + plane),
                 static_cast<uint8_t>(node)};
}

void SwitchFabric::Attach(const MacAddr& mac, MacPort& port) {
  members_[mac] = &port;
  member_stats_[mac];
  port.SetSink([this, mac](Packet&& packet) { Deliver(mac, std::move(packet)); });
}

void SwitchFabric::AttachControlSink(const MacAddr& mac, std::function<void(Packet&&)> sink) {
  control_sinks_[mac] = std::move(sink);
  member_stats_[mac];
}

void SwitchFabric::SendFrom(const MacAddr& src_mac, Packet&& packet) {
  Deliver(src_mac, std::move(packet));
}

SwitchFabric::MemberStats SwitchFabric::member_stats(const MacAddr& mac) const {
  auto it = member_stats_.find(mac);
  return it == member_stats_.end() ? MemberStats{} : it->second;
}

void SwitchFabric::Deliver(const MacAddr& src_mac, Packet&& packet) {
  MemberStats& stats = member_stats_[src_mac];
  auto eth = EthernetHeader::Parse(packet.bytes());
  if (!eth) {
    ++unknown_;
    ++stats.unknown_dropped;
    return;
  }
  auto member = members_.find(eth->dst);
  auto control = control_sinks_.end();
  if (member == members_.end()) {
    control = control_sinks_.find(eth->dst);
    if (control == control_sinks_.end()) {
      ++unknown_;
      ++stats.unknown_dropped;
      return;
    }
  }
  if (gate_) {
    switch (gate_(src_mac, eth->dst)) {
      case FabricDrop::kNone:
        break;
      case FabricDrop::kLinkDown:
        ++gate_dropped_;
        ++stats.link_down_dropped;
        return;
      case FabricDrop::kNodeDown:
        ++gate_dropped_;
        ++stats.node_down_dropped;
        return;
      case FabricDrop::kInjected:
        ++gate_dropped_;
        ++stats.injected_dropped;
        return;
    }
  }
  ++forwarded_;
  ++stats.forwarded;
  if (member != members_.end()) {
    MacPort* port = member->second;
    if (hub_ != nullptr) {
      // Sharded: the destination port lives on another shard, which sits at
      // (or before) the hub's clock — hand the frame to its engine instead
      // of touching the port from here.
      port->engine().Schedule(hub_->now(), [port, p = std::move(packet)]() mutable {
        port->InjectFromWire(std::move(p));
      });
    } else {
      port->InjectFromWire(std::move(packet));
    }
  } else {
    control->second(std::move(packet));
  }
}

ClusterRouter::ClusterRouter(ClusterConfig config) : config_(std::move(config)) {
  assert(config_.nodes >= 2);
  assert(config_.internal_links >= 1);
  RouterConfig node_cfg = config_.node_config;
  assert(!node_cfg.port_rates_bps.empty());
  assert(node_cfg.num_ports() > config_.internal_links);
  first_internal_port_ = node_cfg.num_ports() - config_.internal_links;
  // The internal link is gigabit (§6); budgeting RI capacity for it is the
  // paper's stated consequence — visible here as the extra load the
  // internal port's traffic puts on the ingress/egress pipelines.
  for (int plane = 0; plane < config_.internal_links; ++plane) {
    node_cfg.port_rates_bps[static_cast<size_t>(first_internal_port_ + plane)] =
        config_.internal_link_bps;
  }

  planes_.reserve(static_cast<size_t>(config_.internal_links));
  for (int plane = 0; plane < config_.internal_links; ++plane) {
    planes_.push_back(std::make_unique<SwitchFabric>());
    planes_.back()->set_gate([this, plane](const MacAddr& src, const MacAddr& dst) {
      return GateFrame(plane, src, dst);
    });
  }

  node_up_.assign(static_cast<size_t>(config_.nodes), true);
  link_up_.assign(static_cast<size_t>(config_.nodes * config_.internal_links), true);

  if (sharded()) {
    // One engine per node; the cluster's own engine_ becomes the hub. The
    // fabric (gate verdicts, stats, control sinks) runs entirely on the hub,
    // and member delivery is deferred onto the destination shard.
    shard_engines_.reserve(static_cast<size_t>(config_.nodes));
    for (int k = 0; k < config_.nodes; ++k) {
      shard_engines_.push_back(std::make_unique<EventQueue>());
    }
    mailboxes_.resize(static_cast<size_t>(config_.nodes));
    for (auto& plane : planes_) {
      plane->set_deferred_delivery(&engine_);
    }
  }

  nodes_.reserve(static_cast<size_t>(config_.nodes));
  for (int k = 0; k < config_.nodes; ++k) {
    RouterConfig cfg_k = node_cfg;
    if (cfg_k.fault_plan.Any()) {
      // Node k's injector stream must be independent of node j's and a pure
      // function of (base seed, node); see FaultPlan::DeriveNodeSeed.
      cfg_k.fault_plan.seed = FaultPlan::DeriveNodeSeed(node_cfg.fault_plan.seed, k);
    }
    nodes_.push_back(std::make_unique<Router>(cfg_k, node_engine(k)));
    nodes_.back()->SetExceptionHandler(std::make_unique<FullIpForwarder>());
    for (int plane = 0; plane < config_.internal_links; ++plane) {
      MacPort& port = nodes_.back()->port(first_internal_port_ + plane);
      planes_[static_cast<size_t>(plane)]->Attach(ClusterNodeMac(k, plane), port);
      if (sharded()) {
        // Attach() wired the port's sink straight into the fabric; in
        // sharded mode the transmit side runs on node k's shard, so the
        // sink must only touch k-local state: it timestamps the frame with
        // the fabric latency and parks it in k's mailbox. The barrier
        // offers it to the fabric (on the hub) in deterministic order.
        port.SetSink([this, k, plane](Packet&& packet) {
          FabricMailbox& mb = mailboxes_[static_cast<size_t>(k)];
          mb.entries.push_back(FabricMailbox::Entry{
              node_engine(k).now() + config_.fabric_latency_ps, plane, mb.next_seq++,
              std::move(packet)});
        });
      }
    }
  }

  if (sharded()) {
    std::vector<EventQueue*> shards;
    shards.reserve(shard_engines_.size());
    for (auto& e : shard_engines_) {
      shards.push_back(e.get());
    }
    const SimTime window =
        config_.window_ps > 0 ? config_.window_ps : config_.fabric_latency_ps;
    shard_group_ =
        std::make_unique<ShardGroup>(&engine_, std::move(shards), window, config_.threads);
    shard_group_->set_merge_hook([this](SimTime window_start) { MergeMailboxes(window_start); });
  }
}

void ClusterRouter::MergeMailboxes(SimTime window_start) {
  // Flatten all mailboxes, then impose the deterministic total order
  // (deliver_at, src_node, seq): the hub's (time, insertion-seq) FIFO then
  // replays them identically no matter how many threads filled the boxes.
  struct Merged {
    SimTime deliver_at;
    int src_node;
    uint64_t seq;
    int plane;
    Packet packet;
  };
  std::vector<Merged> merged;
  size_t total = 0;
  for (const FabricMailbox& mb : mailboxes_) {
    total += mb.entries.size();
  }
  merged.reserve(total);
  for (int k = 0; k < num_nodes(); ++k) {
    FabricMailbox& mb = mailboxes_[static_cast<size_t>(k)];
    for (FabricMailbox::Entry& e : mb.entries) {
      merged.push_back(Merged{e.deliver_at, k, e.seq, e.plane, std::move(e.packet)});
    }
    mb.entries.clear();
  }
  std::sort(merged.begin(), merged.end(), [](const Merged& a, const Merged& b) {
    if (a.deliver_at != b.deliver_at) {
      return a.deliver_at < b.deliver_at;
    }
    if (a.src_node != b.src_node) {
      return a.src_node < b.src_node;
    }
    return a.seq < b.seq;
  });
  for (Merged& e : merged) {
    if (e.deliver_at < window_start) {
      // A frame due before the window we are about to run: the window was
      // wider than the fabric latency, so shards already simulated past its
      // delivery time. Silently reordering it would be a nondeterminism
      // bug — fail loudly instead (and see ClusterConfig::window_ps).
      NPR_ERROR(
          "lookahead violation: frame from node %d due at %lld ps, window starts at %lld ps "
          "(window wider than fabric latency?)",
          e.src_node, static_cast<long long>(e.deliver_at),
          static_cast<long long>(window_start));
      std::abort();
    }
    engine_.Schedule(e.deliver_at,
                     [this, plane = e.plane, src = ClusterNodeMac(e.src_node, e.plane),
                      p = std::move(e.packet)]() mutable {
                       planes_[static_cast<size_t>(plane)]->SendFrom(src, std::move(p));
                     });
  }
}

ClusterRouter::~ClusterRouter() {
  // Pending events (hub and shards) reference the member routers; drop them
  // before the nodes (declared after the engines) are destroyed.
  engine_.Clear();
  for (auto& e : shard_engines_) {
    e->Clear();
  }
}

FabricDrop ClusterRouter::GateFrame(int plane, const MacAddr& src, const MacAddr& dst) const {
  // Attachment MACs carry the node index in their last byte (both the data
  // and the control convention), so the gate resolves membership directly.
  const int src_node = src[5];
  const int dst_node = dst[5];
  if (!node_up_[static_cast<size_t>(src_node)] || !node_up_[static_cast<size_t>(dst_node)]) {
    return FabricDrop::kNodeDown;
  }
  if (!link_up(src_node, plane) || !link_up(dst_node, plane)) {
    return FabricDrop::kLinkDown;
  }
  FaultInjector* fault = nodes_[static_cast<size_t>(src_node)]->fault_injector();
  if (fault != nullptr && fault->ShouldDropFabricFrame()) {
    return FabricDrop::kInjected;
  }
  return FabricDrop::kNone;
}

void ClusterRouter::SetLinkUp(int node, int plane, bool up) {
  link_up_[static_cast<size_t>(node * num_planes() + plane)] = up;
}

void ClusterRouter::SetNodeUp(int node, bool up) {
  if (node_up_[static_cast<size_t>(node)] == up) {
    return;
  }
  node_up_[static_cast<size_t>(node)] = up;
  for (const auto& hook : node_state_hooks_) {
    hook(node, up);
  }
}

std::pair<int, int> ClusterRouter::LocateExternal(int g) const {
  return {g / external_ports_per_node(), g % external_ports_per_node()};
}

std::string ClusterRouter::ExternalCidr(int g) const {
  return "10." + std::to_string(g) + ".0.0/16";
}

uint32_t ClusterRouter::ExternalDstIp(int g, uint16_t low) const {
  return 0x0a000000u | static_cast<uint32_t>(g) << 16 | low;
}

void ClusterRouter::InstallClusterRoutes() {
  for (int g = 0; g < num_external_ports(); ++g) {
    const auto [owner, port] = LocateExternal(g);
    const auto prefix = *Prefix::Parse(ExternalCidr(g));
    for (int k = 0; k < num_nodes(); ++k) {
      RouteEntry entry;
      if (k == owner) {
        entry.out_port = static_cast<uint8_t>(port);
        entry.next_hop_mac = PortMac(static_cast<uint8_t>(port));
      } else {
        // Remote prefix: egress on the internal link, addressed to the
        // owning node's fabric MAC.
        entry.out_port = static_cast<uint8_t>(internal_port());
        entry.next_hop_mac = ClusterNodeMac(owner);
      }
      node(k).route_table().AddRoute(prefix, entry);
    }
  }
  WarmRouteCaches();
}

void ClusterRouter::InstallLocalRoutes() {
  for (int g = 0; g < num_external_ports(); ++g) {
    const auto [owner, port] = LocateExternal(g);
    RouteEntry entry;
    entry.out_port = static_cast<uint8_t>(port);
    entry.next_hop_mac = PortMac(static_cast<uint8_t>(port));
    node(owner).route_table().AddRoute(*Prefix::Parse(ExternalCidr(g)), entry);
  }
}

void ClusterRouter::WarmRouteCaches() {
  for (int k = 0; k < num_nodes(); ++k) {
    for (int g = 0; g < num_external_ports(); ++g) {
      for (uint16_t low = 1; low <= 16; ++low) {
        const uint32_t dst = ExternalDstIp(g, low);
        auto hit = node(k).route_table().Lookup(dst);
        if (hit.entry) {
          node(k).route_cache().Insert(dst, *hit.entry, node(k).route_table().epoch());
        }
      }
    }
  }
}

void ClusterRouter::Start() {
  for (auto& n : nodes_) {
    n->Start();
  }
}

void ClusterRouter::StartMeasurement() {
  window_start_ = engine_.now();
  for (auto& n : nodes_) {
    n->StartMeasurement();
  }
}

uint64_t ClusterRouter::TotalForwarded() const {
  // Note: a cross-node packet is forwarded once at each hop, so this counts
  // it twice — it measures pipeline work, not external goodput (benches
  // measure goodput at their sinks).
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().forwarded;
  }
  return total;
}

uint64_t ClusterRouter::TotalDrops() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().dropped_queue_full + n->stats().lost_overwritten;
  }
  return total;
}

double ClusterRouter::AggregateRateMpps() const {
  double total = 0;
  for (const auto& n : nodes_) {
    total += n->ForwardingRateMpps();
  }
  return total;
}

}  // namespace npr
