#include "src/cluster/cluster_router.h"

#include <cassert>

#include "src/fault/fault_injector.h"
#include "src/forwarders/native.h"

namespace npr {

MacAddr ClusterNodeMac(int node, int plane) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, static_cast<uint8_t>(0x01 + plane),
                 static_cast<uint8_t>(node)};
}

MacAddr ClusterControlMac(int node, int plane) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, static_cast<uint8_t>(0x11 + plane),
                 static_cast<uint8_t>(node)};
}

void SwitchFabric::Attach(const MacAddr& mac, MacPort& port) {
  members_[mac] = &port;
  member_stats_[mac];
  port.SetSink([this, mac](Packet&& packet) { Deliver(mac, std::move(packet)); });
}

void SwitchFabric::AttachControlSink(const MacAddr& mac, std::function<void(Packet&&)> sink) {
  control_sinks_[mac] = std::move(sink);
  member_stats_[mac];
}

void SwitchFabric::SendFrom(const MacAddr& src_mac, Packet&& packet) {
  Deliver(src_mac, std::move(packet));
}

SwitchFabric::MemberStats SwitchFabric::member_stats(const MacAddr& mac) const {
  auto it = member_stats_.find(mac);
  return it == member_stats_.end() ? MemberStats{} : it->second;
}

void SwitchFabric::Deliver(const MacAddr& src_mac, Packet&& packet) {
  MemberStats& stats = member_stats_[src_mac];
  auto eth = EthernetHeader::Parse(packet.bytes());
  if (!eth) {
    ++unknown_;
    ++stats.unknown_dropped;
    return;
  }
  auto member = members_.find(eth->dst);
  auto control = control_sinks_.end();
  if (member == members_.end()) {
    control = control_sinks_.find(eth->dst);
    if (control == control_sinks_.end()) {
      ++unknown_;
      ++stats.unknown_dropped;
      return;
    }
  }
  if (gate_) {
    switch (gate_(src_mac, eth->dst)) {
      case FabricDrop::kNone:
        break;
      case FabricDrop::kLinkDown:
        ++gate_dropped_;
        ++stats.link_down_dropped;
        return;
      case FabricDrop::kNodeDown:
        ++gate_dropped_;
        ++stats.node_down_dropped;
        return;
      case FabricDrop::kInjected:
        ++gate_dropped_;
        ++stats.injected_dropped;
        return;
    }
  }
  ++forwarded_;
  ++stats.forwarded;
  if (member != members_.end()) {
    member->second->InjectFromWire(std::move(packet));
  } else {
    control->second(std::move(packet));
  }
}

ClusterRouter::ClusterRouter(ClusterConfig config) : config_(std::move(config)) {
  assert(config_.nodes >= 2);
  assert(config_.internal_links >= 1);
  RouterConfig node_cfg = config_.node_config;
  assert(!node_cfg.port_rates_bps.empty());
  assert(node_cfg.num_ports() > config_.internal_links);
  first_internal_port_ = node_cfg.num_ports() - config_.internal_links;
  // The internal link is gigabit (§6); budgeting RI capacity for it is the
  // paper's stated consequence — visible here as the extra load the
  // internal port's traffic puts on the ingress/egress pipelines.
  for (int plane = 0; plane < config_.internal_links; ++plane) {
    node_cfg.port_rates_bps[static_cast<size_t>(first_internal_port_ + plane)] =
        config_.internal_link_bps;
  }

  planes_.reserve(static_cast<size_t>(config_.internal_links));
  for (int plane = 0; plane < config_.internal_links; ++plane) {
    planes_.push_back(std::make_unique<SwitchFabric>());
    planes_.back()->set_gate([this, plane](const MacAddr& src, const MacAddr& dst) {
      return GateFrame(plane, src, dst);
    });
  }

  node_up_.assign(static_cast<size_t>(config_.nodes), true);
  link_up_.assign(static_cast<size_t>(config_.nodes * config_.internal_links), true);

  nodes_.reserve(static_cast<size_t>(config_.nodes));
  for (int k = 0; k < config_.nodes; ++k) {
    RouterConfig cfg_k = node_cfg;
    if (cfg_k.fault_plan.Any()) {
      // Node k's injector stream must be independent of node j's and a pure
      // function of (base seed, node); see FaultPlan::DeriveNodeSeed.
      cfg_k.fault_plan.seed = FaultPlan::DeriveNodeSeed(node_cfg.fault_plan.seed, k);
    }
    nodes_.push_back(std::make_unique<Router>(cfg_k, engine_));
    nodes_.back()->SetExceptionHandler(std::make_unique<FullIpForwarder>());
    for (int plane = 0; plane < config_.internal_links; ++plane) {
      planes_[static_cast<size_t>(plane)]->Attach(
          ClusterNodeMac(k, plane), nodes_.back()->port(first_internal_port_ + plane));
    }
  }
}

ClusterRouter::~ClusterRouter() {
  // The shared engine's pending events reference the member routers; drop
  // them before the nodes (declared after engine_) are destroyed.
  engine_.Clear();
}

FabricDrop ClusterRouter::GateFrame(int plane, const MacAddr& src, const MacAddr& dst) const {
  // Attachment MACs carry the node index in their last byte (both the data
  // and the control convention), so the gate resolves membership directly.
  const int src_node = src[5];
  const int dst_node = dst[5];
  if (!node_up_[static_cast<size_t>(src_node)] || !node_up_[static_cast<size_t>(dst_node)]) {
    return FabricDrop::kNodeDown;
  }
  if (!link_up(src_node, plane) || !link_up(dst_node, plane)) {
    return FabricDrop::kLinkDown;
  }
  FaultInjector* fault = nodes_[static_cast<size_t>(src_node)]->fault_injector();
  if (fault != nullptr && fault->ShouldDropFabricFrame()) {
    return FabricDrop::kInjected;
  }
  return FabricDrop::kNone;
}

void ClusterRouter::SetLinkUp(int node, int plane, bool up) {
  link_up_[static_cast<size_t>(node * num_planes() + plane)] = up;
}

void ClusterRouter::SetNodeUp(int node, bool up) {
  if (node_up_[static_cast<size_t>(node)] == up) {
    return;
  }
  node_up_[static_cast<size_t>(node)] = up;
  for (const auto& hook : node_state_hooks_) {
    hook(node, up);
  }
}

std::pair<int, int> ClusterRouter::LocateExternal(int g) const {
  return {g / external_ports_per_node(), g % external_ports_per_node()};
}

std::string ClusterRouter::ExternalCidr(int g) const {
  return "10." + std::to_string(g) + ".0.0/16";
}

uint32_t ClusterRouter::ExternalDstIp(int g, uint16_t low) const {
  return 0x0a000000u | static_cast<uint32_t>(g) << 16 | low;
}

void ClusterRouter::InstallClusterRoutes() {
  for (int g = 0; g < num_external_ports(); ++g) {
    const auto [owner, port] = LocateExternal(g);
    const auto prefix = *Prefix::Parse(ExternalCidr(g));
    for (int k = 0; k < num_nodes(); ++k) {
      RouteEntry entry;
      if (k == owner) {
        entry.out_port = static_cast<uint8_t>(port);
        entry.next_hop_mac = PortMac(static_cast<uint8_t>(port));
      } else {
        // Remote prefix: egress on the internal link, addressed to the
        // owning node's fabric MAC.
        entry.out_port = static_cast<uint8_t>(internal_port());
        entry.next_hop_mac = ClusterNodeMac(owner);
      }
      node(k).route_table().AddRoute(prefix, entry);
    }
  }
  WarmRouteCaches();
}

void ClusterRouter::InstallLocalRoutes() {
  for (int g = 0; g < num_external_ports(); ++g) {
    const auto [owner, port] = LocateExternal(g);
    RouteEntry entry;
    entry.out_port = static_cast<uint8_t>(port);
    entry.next_hop_mac = PortMac(static_cast<uint8_t>(port));
    node(owner).route_table().AddRoute(*Prefix::Parse(ExternalCidr(g)), entry);
  }
}

void ClusterRouter::WarmRouteCaches() {
  for (int k = 0; k < num_nodes(); ++k) {
    for (int g = 0; g < num_external_ports(); ++g) {
      for (uint16_t low = 1; low <= 16; ++low) {
        const uint32_t dst = ExternalDstIp(g, low);
        auto hit = node(k).route_table().Lookup(dst);
        if (hit.entry) {
          node(k).route_cache().Insert(dst, *hit.entry, node(k).route_table().epoch());
        }
      }
    }
  }
}

void ClusterRouter::Start() {
  for (auto& n : nodes_) {
    n->Start();
  }
}

void ClusterRouter::StartMeasurement() {
  window_start_ = engine_.now();
  for (auto& n : nodes_) {
    n->StartMeasurement();
  }
}

uint64_t ClusterRouter::TotalForwarded() const {
  // Note: a cross-node packet is forwarded once at each hop, so this counts
  // it twice — it measures pipeline work, not external goodput (benches
  // measure goodput at their sinks).
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().forwarded;
  }
  return total;
}

uint64_t ClusterRouter::TotalDrops() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().dropped_queue_full + n->stats().lost_overwritten;
  }
  return total;
}

double ClusterRouter::AggregateRateMpps() const {
  double total = 0;
  for (const auto& n : nodes_) {
    total += n->ForwardingRateMpps();
  }
  return total;
}

}  // namespace npr
