// Cluster control plane: failure detection and OSPF-lite reconvergence.
//
// One OspfLite instance per node (router-id = node + 1), talking over the
// same switch fabric the data plane uses: hellos and LSAs are real frames
// addressed to per-node control MACs, cross the fabric gate, and therefore
// die with the link or node they depend on — which is exactly the signal
// the dead-interval detector consumes. The paper isolates control traffic
// from data (§4.1 guaranteed scheduler share); here that isolation is
// modelled by delivering control frames to a dedicated sink instead of the
// packet pipeline.
//
// The loop closed per failure class:
//   link down  — hellos on that plane stop, both ends declare the
//                adjacency dead after the dead-interval, re-originate
//                their LSAs, flood, and re-run Dijkstra: with a surviving
//                plane traffic reroutes; with none, the dead node's
//                prefixes are withdrawn and traffic sheds as ICMP
//                unreachables instead of blackholing.
//   node crash — every survivor's hellos from the node stop; detection
//                and reflood as above; the node's prefixes are withdrawn
//                cluster-wide.
//   readmit    — a warm-restarting node resumes hellos, re-originates its
//                self LSA with a bumped sequence number, and neighbors
//                resync their full database to it, restoring its FIB
//                without disturbing survivors.
//
// Each per-node FaultInjector is polled by a supervisor tick for the
// cluster fault classes (link flap, whole-node crash), so chaos runs
// replay bit-identically per (plan seed, node). Every reconvergence is
// recorded with fault/detect/reconverge timestamps for MTTD/MTTR.

#ifndef SRC_CLUSTER_CLUSTER_CONTROL_H_
#define SRC_CLUSTER_CLUSTER_CONTROL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster_router.h"
#include "src/control/ospf_lite.h"

namespace npr {

struct ClusterControlConfig {
  // Hello beacon period per node, and how long an adjacency may go silent
  // before it is declared dead (several hello periods, so isolated fabric
  // frame loss does not flap adjacencies).
  SimTime hello_period_ps = 100 * kPsPerUs;
  SimTime dead_interval_ps = 350 * kPsPerUs;
  // Supervisor tick: polls dead-intervals and each node's fault injector.
  SimTime supervisor_period_ps = 25 * kPsPerUs;
  // One-way control-frame latency across the fabric.
  SimTime link_delay_ps = 5 * kPsPerUs;
  // Trace cap; lines past it are dropped (counted), keeping chaos runs
  // bounded without losing determinism.
  size_t max_trace_lines = 65536;
};

struct ReconvergenceRecord {
  enum class Kind : uint8_t { kLinkDown, kNodeDown, kNodeReadmit };
  Kind kind = Kind::kLinkDown;
  int node = 0;    // the failed (or readmitted) node
  int plane = -1;  // kLinkDown only
  SimTime fault_at = 0;
  SimTime detected_at = 0;     // first dead-declare (or first hello, readmit)
  SimTime reconverged_at = 0;  // last required SPF re-run; 0 = still open

  bool closed() const { return reconverged_at != 0; }
  SimTime mttd_ps() const { return detected_at - fault_at; }
  SimTime mttr_ps() const { return reconverged_at - fault_at; }
};

const char* ReconvergenceKindName(ReconvergenceRecord::Kind kind);

class ClusterControlPlane {
 public:
  explicit ClusterControlPlane(ClusterRouter& cluster,
                               ClusterControlConfig config = ClusterControlConfig{});

  // Installs adjacencies and each node's local prefixes, floods the initial
  // LSAs synchronously, computes every node's routes, and starts the hello
  // and supervisor timers. Call once, before ClusterRouter::Start().
  void Start();

  // Fault application (the supervisor drives these from the per-node
  // injectors; tests may call them directly). Durations of
  // FaultInjector::kForever never restore.
  void ApplyLinkDown(int node, int plane, SimTime duration_ps);
  void ApplyNodeCrash(int node, SimTime duration_ps);

  // Federated-health escalation: every surviving node immediately declares
  // its adjacencies to `node` dead instead of waiting out the remainder of
  // the dead-interval. A false suspicion self-corrects — the next hello
  // from the node brings the adjacencies (and routes) back.
  void SuspectNode(int node);

  OspfLite& ospf(int node) { return *nodes_[static_cast<size_t>(node)].ospf; }
  const std::vector<ReconvergenceRecord>& records() const { return records_; }
  const std::vector<std::string>& trace() const { return trace_; }
  uint64_t trace_dropped() const { return trace_dropped_; }

  uint64_t hellos_sent() const { return hellos_sent_; }
  uint64_t hellos_received() const { return hellos_received_; }
  uint64_t lsas_flooded() const { return lsas_flooded_; }
  uint64_t duplicate_lsas_suppressed() const { return duplicate_lsas_suppressed_; }

 private:
  struct AdjState {
    SimTime last_hello_at = 0;
    bool up = true;
  };
  struct NodeState {
    std::unique_ptr<OspfLite> ospf;
    std::map<std::pair<int, int>, AdjState> adj;  // (peer, plane)
    uint32_t hello_seq = 0;
    int next_flap_plane = 0;
  };

  uint32_t RouterId(int node) const { return static_cast<uint32_t>(node) + 1; }
  int NodeOfId(uint32_t id) const { return static_cast<int>(id) - 1; }

  void Tick();
  void SendHellos(int node);
  void CheckDeadIntervals(int node);
  void DeclareAdjacencyDown(int node, int peer, int plane);
  void PollInjector(int node);
  void Readmit(int node);
  void OnControlFrame(int node, int plane, Packet&& packet);
  void OnHello(int node, int plane, const OspfHello& hello);
  void OnLsa(int node, const Lsa& lsa);
  // Sends `lsa` from `node` to every peer on every plane (the gate decides
  // what actually crosses).
  void FloodLsa(int node, const Lsa& lsa);
  void SendControlFrame(int from, int to, int plane, Packet&& packet);
  // Floods `node`'s full database to `peer` (warm-restart resync).
  void ResyncPeer(int node, int peer);
  void Recompute(int node);

  void OpenRecord(ReconvergenceRecord::Kind kind, int node, int plane);
  void NoteDeadDeclare(int observer, int peer, int plane);
  void NoteReadmitHello(int node);
  void NoteRecompute(int node);
  void Note(const char* fmt, ...);

  ClusterRouter& cluster_;
  ClusterControlConfig cfg_;
  std::vector<NodeState> nodes_;
  bool started_ = false;
  SimTime next_hello_at_ = 0;

  std::vector<ReconvergenceRecord> records_;
  // Per open record: nodes whose SPF re-run is still required to close it.
  std::vector<std::vector<int>> pending_recompute_;

  std::vector<std::string> trace_;
  uint64_t trace_dropped_ = 0;
  uint64_t hellos_sent_ = 0;
  uint64_t hellos_received_ = 0;
  uint64_t lsas_flooded_ = 0;
  uint64_t duplicate_lsas_suppressed_ = 0;
};

}  // namespace npr

#endif  // SRC_CLUSTER_CLUSTER_CONTROL_H_
