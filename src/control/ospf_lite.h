// OSPF-lite: a small link-state routing protocol for the control plane.
//
// The paper's control plane runs OSPF on the Pentium, isolated from data
// traffic by its own queue and a guaranteed scheduler share (§4.1). This is
// a self-contained link-state protocol in that role: routers flood LSAs
// (IP protocol 89), each LSA carries the origin's links and the prefixes it
// can deliver, and Dijkstra over the collected database yields the routing
// table — installed via RouteTable, which bumps the epoch and thereby
// invalidates the MicroEngines' route cache.

#ifndef SRC_CONTROL_OSPF_LITE_H_
#define SRC_CONTROL_OSPF_LITE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/core/forwarder.h"
#include "src/net/packet.h"
#include "src/route/route_table.h"

namespace npr {

struct OspfLink {
  uint32_t neighbor_id = 0;  // 0 = stub network (prefix only)
  uint32_t prefix_addr = 0;
  uint8_t prefix_len = 0;
  uint8_t cost = 1;
  // For the origin's own links: the local port reaching this neighbor.
  uint16_t port_hint = 0;
};

struct Lsa {
  uint32_t origin = 0;
  uint32_t seq = 0;
  std::vector<OspfLink> links;
};

// Wire codec (payload of IP proto 89).
std::vector<uint8_t> EncodeLsa(const Lsa& lsa);
std::optional<Lsa> DecodeLsa(std::span<const uint8_t> payload);

// Builds a complete Ethernet+IP frame carrying the LSA.
Packet BuildLsaPacket(const Lsa& lsa, uint32_t src_ip, uint32_t dst_ip,
                      uint8_t arrival_port = 0);

class OspfLite {
 public:
  explicit OspfLite(uint32_t self_id) : self_id_(self_id) {}

  // Declares one of this router's own links (fills the self LSA).
  void AddLocalLink(const OspfLink& link);

  // Floods-in one LSA. Returns true if the database changed (newer seq).
  bool ProcessLsa(const Lsa& lsa);

  // Runs Dijkstra and installs one route per reachable advertised prefix.
  // Returns the number of routes installed. `spf_work` (out, optional)
  // reports nodes+edges relaxed, used for cycle charging.
  int ComputeRoutes(RouteTable& table, int* spf_work = nullptr);

  size_t database_size() const { return db_.size(); }
  uint32_t self_id() const { return self_id_; }
  const std::vector<OspfLink>& local_links() const { return self_links_; }

 private:
  uint32_t self_id_;
  std::vector<OspfLink> self_links_;
  std::map<uint32_t, Lsa> db_;  // origin -> newest LSA
};

// The Pentium-level control forwarder: consumes LSA packets, updates the
// database, recomputes routes on change.
class OspfForwarder : public NativeForwarder {
 public:
  explicit OspfForwarder(OspfLite& protocol) : protocol_(protocol) {}

  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return 2000; }  // LSA parse + flood
  NativeAction Process(NativeContext& ctx) override;

  uint64_t lsas_processed() const { return lsas_; }
  uint64_t spf_runs() const { return spf_runs_; }

 private:
  std::string name_ = "ospf-lite";
  OspfLite& protocol_;
  uint64_t lsas_ = 0;
  uint64_t spf_runs_ = 0;
};

}  // namespace npr

#endif  // SRC_CONTROL_OSPF_LITE_H_
