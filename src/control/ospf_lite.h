// OSPF-lite: a small link-state routing protocol for the control plane.
//
// The paper's control plane runs OSPF on the Pentium, isolated from data
// traffic by its own queue and a guaranteed scheduler share (§4.1). This is
// a self-contained link-state protocol in that role: routers flood LSAs
// (IP protocol 89), each LSA carries the origin's links and the prefixes it
// can deliver, and Dijkstra over the collected database yields the routing
// table — installed via RouteTable, which bumps the epoch and thereby
// invalidates the MicroEngines' route cache.

#ifndef SRC_CONTROL_OSPF_LITE_H_
#define SRC_CONTROL_OSPF_LITE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "src/core/forwarder.h"
#include "src/net/packet.h"
#include "src/route/route_table.h"

namespace npr {

struct OspfLink {
  uint32_t neighbor_id = 0;  // 0 = stub network (prefix only)
  uint32_t prefix_addr = 0;
  uint8_t prefix_len = 0;
  uint8_t cost = 1;
  // For the origin's own links: the local port reaching this neighbor.
  uint16_t port_hint = 0;
};

struct Lsa {
  uint32_t origin = 0;
  uint32_t seq = 0;
  std::vector<OspfLink> links;
};

// Hello: the liveness beacon a router emits on each of its links. A
// neighbor that misses hellos for a dead-interval is declared down and the
// local LSA is re-originated without the link.
struct OspfHello {
  uint32_t origin = 0;
  uint32_t seq = 0;
};

// Wire codec (payload of IP proto 89).
std::vector<uint8_t> EncodeLsa(const Lsa& lsa);
std::optional<Lsa> DecodeLsa(std::span<const uint8_t> payload);
std::vector<uint8_t> EncodeHello(const OspfHello& hello);
std::optional<OspfHello> DecodeHello(std::span<const uint8_t> payload);

// Builds a complete Ethernet+IP frame carrying the LSA / hello.
Packet BuildLsaPacket(const Lsa& lsa, uint32_t src_ip, uint32_t dst_ip,
                      uint8_t arrival_port = 0);
Packet BuildHelloPacket(const OspfHello& hello, uint32_t src_ip, uint32_t dst_ip,
                        uint8_t arrival_port = 0);

class OspfLite {
 public:
  explicit OspfLite(uint32_t self_id) : self_id_(self_id) {}

  // RFC 1982 serial-number comparison: true iff `a` is newer than `b` under
  // wraparound (a != b and (a - b) mod 2^32 < 2^31). Sequence numbers that
  // wrap past UINT32_MAX stay ordered.
  static bool SeqNewer(uint32_t a, uint32_t b) {
    return a != b && static_cast<uint32_t>(a - b) < 0x80000000u;
  }

  // Declares one of this router's own links (fills the self LSA).
  void AddLocalLink(const OspfLink& link);

  // Marks a local (neighbor, port) adjacency up or down and re-originates
  // the self LSA with a bumped sequence number. Returns true if the state
  // actually changed (callers flood the new self LSA on change).
  bool SetLocalLinkUp(uint32_t neighbor_id, uint16_t port_hint, bool up);

  // Floods-in one LSA. Returns true if the database changed (newer seq).
  bool ProcessLsa(const Lsa& lsa);

  // Runs Dijkstra and installs one route per reachable advertised prefix;
  // prefixes this instance previously installed that became unreachable are
  // withdrawn (RemoveRoute bumps the epoch, so MicroEngine route caches
  // invalidate and misses take the StrongARM exception path — which answers
  // with ICMP unreachable once the table lookup fails too). Returns routes
  // installed. `spf_work` (out, optional) reports nodes+edges relaxed for
  // cycle charging; `withdrawn` (out, optional) reports withdrawals.
  int ComputeRoutes(RouteTable& table, int* spf_work = nullptr,
                    int* withdrawn = nullptr);

  // Cluster deployments resolve next-hop MACs per first-hop neighbor (the
  // fabric is a learning switch keyed by node MAC); standalone deployments
  // default to the egress port's link-peer MAC.
  using NextHopResolver = std::function<MacAddr(uint32_t neighbor_id, uint16_t port)>;
  void set_next_hop_resolver(NextHopResolver resolver) {
    next_hop_resolver_ = std::move(resolver);
  }

  // The current self LSA (to originate a flood), and the whole database
  // (to resync a warm-restarting neighbor).
  const Lsa& self_lsa() const { return db_.at(self_id_); }
  std::vector<Lsa> DatabaseSnapshot() const;

  // Re-originates the self LSA with a bumped sequence number — a warm
  // restart announces itself with a seq its neighbors must accept even if
  // they hold the pre-crash LSA.
  const Lsa& ReoriginateSelf() {
    RefreshSelfLsa();
    return db_.at(self_id_);
  }

  size_t database_size() const { return db_.size(); }
  uint32_t self_id() const { return self_id_; }
  const std::vector<OspfLink>& local_links() const { return self_links_; }

 private:
  void RefreshSelfLsa();

  uint32_t self_id_;
  std::vector<OspfLink> self_links_;
  // (neighbor, port) adjacencies currently held down; excluded from the
  // advertised self LSA until SetLocalLinkUp(..., true).
  std::set<std::pair<uint32_t, uint16_t>> down_links_;
  std::map<uint32_t, Lsa> db_;  // origin -> newest LSA
  // Prefixes ComputeRoutes installed on its last run; the withdrawal set is
  // computed against this, so statically-installed routes are never touched.
  std::set<std::pair<uint32_t, uint8_t>> installed_prefixes_;
  NextHopResolver next_hop_resolver_;
};

// The Pentium-level control forwarder: consumes LSA packets, updates the
// database, recomputes routes on change.
class OspfForwarder : public NativeForwarder {
 public:
  explicit OspfForwarder(OspfLite& protocol) : protocol_(protocol) {}

  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return 2000; }  // LSA parse + flood
  NativeAction Process(NativeContext& ctx) override;

  uint64_t lsas_processed() const { return lsas_; }
  uint64_t spf_runs() const { return spf_runs_; }

 private:
  std::string name_ = "ospf-lite";
  OspfLite& protocol_;
  uint64_t lsas_ = 0;
  uint64_t spf_runs_ = 0;
};

}  // namespace npr

#endif  // SRC_CONTROL_OSPF_LITE_H_
