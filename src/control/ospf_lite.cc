#include "src/control/ospf_lite.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/net/ipv4.h"
#include "src/net/wire.h"

namespace npr {
namespace {

constexpr uint8_t kOspfLiteVersion = 1;
constexpr uint8_t kTypeLsa = 1;
constexpr uint8_t kTypeHello = 2;
constexpr size_t kLsaHeaderBytes = 16;
constexpr size_t kLinkBytes = 12;

Packet BuildProtoPacket(const std::vector<uint8_t>& payload, uint32_t src_ip,
                        uint32_t dst_ip, uint8_t arrival_port) {
  PacketSpec spec;
  spec.protocol = kIpProtoOspfLite;
  spec.src_ip = src_ip;
  spec.dst_ip = dst_ip;
  spec.frame_bytes =
      std::max<size_t>(kEthMinFrame, kEthHeaderBytes + kIpv4MinHeaderBytes + payload.size());
  Packet packet = BuildPacket(spec);
  // Splice the protocol payload into the IP payload and refresh the header
  // (BuildPacket wrote a filler payload).
  auto l3 = packet.l3();
  auto ip = Ipv4Header::Parse(l3);
  std::copy(payload.begin(), payload.end(), l3.begin() + static_cast<long>(ip->header_bytes()));
  ip->Write(l3);
  packet.set_arrival_port(arrival_port);
  return packet;
}

}  // namespace

std::vector<uint8_t> EncodeLsa(const Lsa& lsa) {
  std::vector<uint8_t> out(kLsaHeaderBytes + lsa.links.size() * kLinkBytes, 0);
  out[0] = kOspfLiteVersion;
  out[1] = kTypeLsa;
  WriteBe16(out, 2, static_cast<uint16_t>(out.size()));
  WriteBe32(out, 4, lsa.origin);
  WriteBe32(out, 8, lsa.seq);
  WriteBe16(out, 12, static_cast<uint16_t>(lsa.links.size()));
  size_t off = kLsaHeaderBytes;
  for (const OspfLink& link : lsa.links) {
    WriteBe32(out, off, link.neighbor_id);
    WriteBe32(out, off + 4, link.prefix_addr);
    out[off + 8] = link.prefix_len;
    out[off + 9] = link.cost;
    WriteBe16(out, off + 10, link.port_hint);
    off += kLinkBytes;
  }
  return out;
}

std::optional<Lsa> DecodeLsa(std::span<const uint8_t> payload) {
  if (payload.size() < kLsaHeaderBytes || payload[0] != kOspfLiteVersion ||
      payload[1] != kTypeLsa) {
    return std::nullopt;
  }
  Lsa lsa;
  lsa.origin = ReadBe32(payload, 4);
  lsa.seq = ReadBe32(payload, 8);
  const uint16_t num_links = ReadBe16(payload, 12);
  if (payload.size() < kLsaHeaderBytes + static_cast<size_t>(num_links) * kLinkBytes) {
    return std::nullopt;
  }
  size_t off = kLsaHeaderBytes;
  for (uint16_t i = 0; i < num_links; ++i) {
    OspfLink link;
    link.neighbor_id = ReadBe32(payload, off);
    link.prefix_addr = ReadBe32(payload, off + 4);
    link.prefix_len = payload[off + 8];
    link.cost = payload[off + 9];
    link.port_hint = ReadBe16(payload, off + 10);
    lsa.links.push_back(link);
    off += kLinkBytes;
  }
  return lsa;
}

std::vector<uint8_t> EncodeHello(const OspfHello& hello) {
  std::vector<uint8_t> out(kLsaHeaderBytes, 0);
  out[0] = kOspfLiteVersion;
  out[1] = kTypeHello;
  WriteBe16(out, 2, static_cast<uint16_t>(out.size()));
  WriteBe32(out, 4, hello.origin);
  WriteBe32(out, 8, hello.seq);
  return out;
}

std::optional<OspfHello> DecodeHello(std::span<const uint8_t> payload) {
  if (payload.size() < kLsaHeaderBytes || payload[0] != kOspfLiteVersion ||
      payload[1] != kTypeHello) {
    return std::nullopt;
  }
  OspfHello hello;
  hello.origin = ReadBe32(payload, 4);
  hello.seq = ReadBe32(payload, 8);
  return hello;
}

Packet BuildLsaPacket(const Lsa& lsa, uint32_t src_ip, uint32_t dst_ip, uint8_t arrival_port) {
  return BuildProtoPacket(EncodeLsa(lsa), src_ip, dst_ip, arrival_port);
}

Packet BuildHelloPacket(const OspfHello& hello, uint32_t src_ip, uint32_t dst_ip,
                        uint8_t arrival_port) {
  return BuildProtoPacket(EncodeHello(hello), src_ip, dst_ip, arrival_port);
}

void OspfLite::AddLocalLink(const OspfLink& link) {
  self_links_.push_back(link);
  RefreshSelfLsa();
}

void OspfLite::RefreshSelfLsa() {
  Lsa self;
  self.origin = self_id_;
  self.seq = db_.count(self_id_) ? db_[self_id_].seq + 1 : 1;
  for (const OspfLink& link : self_links_) {
    if (link.neighbor_id != 0 && down_links_.count({link.neighbor_id, link.port_hint})) {
      continue;
    }
    self.links.push_back(link);
  }
  db_[self_id_] = std::move(self);
}

bool OspfLite::SetLocalLinkUp(uint32_t neighbor_id, uint16_t port_hint, bool up) {
  const std::pair<uint32_t, uint16_t> key{neighbor_id, port_hint};
  const bool changed = up ? down_links_.erase(key) > 0 : down_links_.insert(key).second;
  if (changed) {
    RefreshSelfLsa();
  }
  return changed;
}

bool OspfLite::ProcessLsa(const Lsa& lsa) {
  auto it = db_.find(lsa.origin);
  if (it != db_.end() && !SeqNewer(lsa.seq, it->second.seq)) {
    return false;  // stale or duplicate
  }
  db_[lsa.origin] = lsa;
  return true;
}

std::vector<Lsa> OspfLite::DatabaseSnapshot() const {
  std::vector<Lsa> out;
  out.reserve(db_.size());
  for (const auto& [origin, lsa] : db_) {
    out.push_back(lsa);
  }
  return out;
}

int OspfLite::ComputeRoutes(RouteTable& table, int* spf_work, int* withdrawn) {
  // Dijkstra over the router graph.
  std::map<uint32_t, uint32_t> dist;       // router id -> cost
  std::map<uint32_t, uint16_t> first_port; // router id -> local egress port
  std::map<uint32_t, uint32_t> first_nbr;  // router id -> first-hop neighbor
  using Item = std::pair<uint32_t, uint32_t>;  // (cost, id)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  int work = 0;

  dist[self_id_] = 0;
  heap.push({0, self_id_});
  while (!heap.empty()) {
    auto [cost, id] = heap.top();
    heap.pop();
    if (dist.count(id) && cost > dist[id]) {
      continue;
    }
    ++work;
    auto lsa = db_.find(id);
    if (lsa == db_.end()) {
      continue;
    }
    for (const OspfLink& link : lsa->second.links) {
      if (link.neighbor_id == 0) {
        continue;  // stub
      }
      ++work;
      const uint32_t next_cost = cost + link.cost;
      if (!dist.count(link.neighbor_id) || next_cost < dist[link.neighbor_id]) {
        dist[link.neighbor_id] = next_cost;
        // First hop: for self links, the link's own port and neighbor;
        // otherwise inherit from the path so far.
        first_port[link.neighbor_id] =
            id == self_id_ ? link.port_hint : first_port[id];
        first_nbr[link.neighbor_id] =
            id == self_id_ ? link.neighbor_id : first_nbr[id];
        heap.push({next_cost, link.neighbor_id});
      }
    }
  }

  // Install one route per advertised prefix of every reachable router. A
  // path only counts if *both* ends still advertise the adjacency — a
  // one-sided LSA (the dead node's last flood still names the link) must
  // not resurrect a route through it, so installation additionally requires
  // the origin to be reachable in `dist`, which Dijkstra only grants along
  // links present in the *current* database.
  int installed = 0;
  std::set<std::pair<uint32_t, uint8_t>> now_installed;
  for (const auto& [origin, lsa] : db_) {
    for (const OspfLink& link : lsa.links) {
      if (link.prefix_len == 0) {
        continue;
      }
      uint16_t port;
      MacAddr next_hop;
      if (origin == self_id_) {
        port = link.port_hint;  // directly attached
        next_hop = PortMac(static_cast<uint8_t>(port));
      } else if (first_port.count(origin)) {
        port = first_port[origin];
        next_hop = next_hop_resolver_
                       ? next_hop_resolver_(first_nbr[origin], port)
                       : PortMac(static_cast<uint8_t>(port));
      } else {
        continue;  // unreachable
      }
      RouteEntry entry;
      entry.out_port = static_cast<uint8_t>(port);
      entry.next_hop_mac = next_hop;
      table.AddRoute(Prefix::Make(link.prefix_addr, link.prefix_len), entry);
      now_installed.insert({link.prefix_addr, link.prefix_len});
      ++installed;
    }
  }

  // Withdraw prefixes this instance installed before but can no longer
  // reach; the epoch bump invalidates route caches, so traffic to them
  // takes the exception path and is answered with ICMP unreachable instead
  // of blackholing at the fabric.
  int removed = 0;
  for (const auto& [addr, len] : installed_prefixes_) {
    if (!now_installed.count({addr, len})) {
      removed += table.RemoveRoute(Prefix::Make(addr, len)) ? 1 : 0;
    }
  }
  installed_prefixes_ = std::move(now_installed);

  if (spf_work != nullptr) {
    *spf_work = work;
  }
  if (withdrawn != nullptr) {
    *withdrawn = removed;
  }
  return installed;
}

NativeAction OspfForwarder::Process(NativeContext& ctx) {
  auto l3 = ctx.packet->l3();
  auto ip = Ipv4Header::Parse(l3);
  if (!ip || ip->protocol != kIpProtoOspfLite) {
    return NativeAction::kForward;  // not ours
  }
  auto lsa = DecodeLsa(l3.subspan(ip->header_bytes()));
  if (!lsa) {
    return NativeAction::kDrop;
  }
  ++lsas_;
  if (protocol_.ProcessLsa(*lsa)) {
    int work = 0;
    protocol_.ComputeRoutes(*ctx.routes, &work);
    // SPF is the paper's canonical compute-heavy control operation; charge
    // it proportionally to the graph walked.
    ctx.extra_cycles += static_cast<uint32_t>(work) * 120;
    ++spf_runs_;
  }
  return NativeAction::kConsume;
}

}  // namespace npr
