// Functional (contents) model of a memory, separate from its timing model.
//
// The simulator keeps real bytes in simulated DRAM/SRAM/Scratch: packet
// payloads are actually written by the input stage and read back by the
// output stage, queue entries are real 32-bit words, and forwarder flow
// state lives at real SRAM addresses. This keeps the functional router
// honest — a corrupted pointer shows up as a corrupted packet, not as a
// silently-correct abstraction.

#ifndef SRC_MEM_BACKING_STORE_H_
#define SRC_MEM_BACKING_STORE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace npr {

class FaultInjector;

class BackingStore {
 public:
  BackingStore(std::string name, size_t size_bytes);

  size_t size() const { return data_.size(); }
  const std::string& name() const { return name_; }

  // Byte-span accessors. Addresses are bounds-checked (assert in debug,
  // clamped no-op in release with an error counter).
  void Write(uint32_t addr, std::span<const uint8_t> bytes);
  void Read(uint32_t addr, std::span<uint8_t> out) const;

  // 32-bit little-endian word accessors (queue entries, flow state words).
  void WriteU32(uint32_t addr, uint32_t value);
  uint32_t ReadU32(uint32_t addr) const;

  void WriteU64(uint32_t addr, uint64_t value);
  uint64_t ReadU64(uint32_t addr) const;

  // Zero-fills [addr, addr + len).
  void Zero(uint32_t addr, size_t len);

  // Number of accesses rejected for being out of bounds.
  uint64_t oob_errors() const { return oob_errors_; }

  // Fault injection: single-bit flips on the data returned by Read(). The
  // stored bytes are untouched (a transient read disturbance).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  bool CheckRange(uint32_t addr, size_t len) const;

  std::string name_;
  std::vector<uint8_t> data_;
  FaultInjector* fault_ = nullptr;
  mutable uint64_t oob_errors_ = 0;
};

}  // namespace npr

#endif  // SRC_MEM_BACKING_STORE_H_
