// Functional (contents) model of a memory, separate from its timing model.
//
// The simulator keeps real bytes in simulated DRAM/SRAM/Scratch: packet
// payloads are actually written by the input stage and read back by the
// output stage, queue entries are real 32-bit words, and forwarder flow
// state lives at real SRAM addresses. This keeps the functional router
// honest — a corrupted pointer shows up as a corrupted packet, not as a
// silently-correct abstraction.

#ifndef SRC_MEM_BACKING_STORE_H_
#define SRC_MEM_BACKING_STORE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace npr {

class FaultInjector;

class BackingStore {
 public:
  BackingStore(std::string name, size_t size_bytes);

  size_t size() const { return data_.size(); }
  const std::string& name() const { return name_; }

  // Byte-span accessors. Addresses are bounds-checked (assert in debug,
  // clamped no-op in release with an error counter). Inline: queue words
  // and MP payloads cross these on every simulated memory reference.
  void Write(uint32_t addr, std::span<const uint8_t> bytes) {
    if (!CheckRange(addr, bytes.size())) {
      return;
    }
    std::memcpy(data_.data() + addr, bytes.data(), bytes.size());
  }
  void Read(uint32_t addr, std::span<uint8_t> out) const {
    if (!CheckRange(addr, out.size())) {
      std::memset(out.data(), 0, out.size());
      return;
    }
    std::memcpy(out.data(), data_.data() + addr, out.size());
    if (fault_ != nullptr && !out.empty()) {
      FaultFlip(out);
    }
  }

  // 32-bit little-endian word accessors (queue entries, flow state words).
  void WriteU32(uint32_t addr, uint32_t value) {
    uint8_t bytes[4];
    std::memcpy(bytes, &value, 4);
    Write(addr, bytes);
  }
  uint32_t ReadU32(uint32_t addr) const {
    uint8_t bytes[4] = {};
    Read(addr, bytes);
    uint32_t value;
    std::memcpy(&value, bytes, 4);
    return value;
  }

  void WriteU64(uint32_t addr, uint64_t value) {
    uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);
    Write(addr, bytes);
  }
  uint64_t ReadU64(uint32_t addr) const {
    uint8_t bytes[8] = {};
    Read(addr, bytes);
    uint64_t value;
    std::memcpy(&value, bytes, 8);
    return value;
  }

  // Zero-fills [addr, addr + len).
  void Zero(uint32_t addr, size_t len);

  // Number of accesses rejected for being out of bounds.
  uint64_t oob_errors() const { return oob_errors_; }

  // Fault injection: single-bit flips on the data returned by Read(). The
  // stored bytes are untouched (a transient read disturbance).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  bool CheckRange(uint32_t addr, size_t len) const {
    if (static_cast<size_t>(addr) + len > data_.size()) [[unlikely]] {
      return RangeFailure(addr, len);
    }
    return true;
  }
  // Cold halves, out of line: error reporting and fault-injection flips.
  bool RangeFailure(uint32_t addr, size_t len) const;
  void FaultFlip(std::span<uint8_t> out) const;

  std::string name_;
  std::vector<uint8_t> data_;
  FaultInjector* fault_ = nullptr;
  mutable uint64_t oob_errors_ = 0;
};

}  // namespace npr

#endif  // SRC_MEM_BACKING_STORE_H_
