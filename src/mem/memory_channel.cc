#include "src/mem/memory_channel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/fault/fault_injector.h"

namespace npr {

MemoryChannel::MemoryChannel(EventQueue& engine, MemoryChannelConfig config)
    : engine_(engine), config_(std::move(config)) {
  assert(config_.width_bytes > 0);
  assert(config_.bus_cycle_ps > 0);
}

SimTime MemoryChannel::Occupancy(uint32_t bytes) const {
  const uint32_t bus_cycles = (bytes + config_.width_bytes - 1) / config_.width_bytes;
  return static_cast<SimTime>(bus_cycles) * config_.bus_cycle_ps;
}

SimTime MemoryChannel::IssueAt(SimTime virtual_now, uint32_t bytes, bool is_write,
                               EventFn done) {
  assert(bytes > 0);
  const SimTime start = virtual_now + GrantWait(virtual_now);
  queue_wait_.Add(static_cast<uint64_t>(start - virtual_now));
  const SimTime occupancy = Occupancy(bytes);
  busy_until_ = start + occupancy;
  busy_accum_ += occupancy;
  SimTime done_at =
      busy_until_ + (is_write ? config_.write_latency_ps : config_.read_latency_ps);
  if (fault_ != nullptr) {
    // An injected spike holds the bus, so later accesses queue behind it —
    // one slow refresh stalls every context waiting on this channel.
    const SimTime spike = fault_->MemExtraLatencyPs();
    if (spike > 0) {
      busy_until_ += spike;
      busy_accum_ += spike;
      done_at += spike;
    }
  }

  if (is_write) {
    ++writes_;
  } else {
    ++reads_;
  }
  bytes_moved_ += bytes;

  if (done) {
    engine_.Schedule(done_at, std::move(done));
  }
  return done_at;
}

SimTime MemoryChannel::Issue(uint32_t bytes, bool is_write, EventFn done) {
  return IssueAt(engine_.now(), bytes, is_write, std::move(done));
}

SimTime MemoryChannel::IssueDeferred(SimTime delay_ps, uint32_t bytes, bool is_write,
                                     EventFn done) {
  return IssueAt(engine_.now() + delay_ps, bytes, is_write, std::move(done));
}

SimTime MemoryChannel::IssueBurst(uint32_t n, uint32_t bytes_each, bool is_write,
                                  EventFn done) {
  assert(n > 0);
  for (uint32_t i = 1; i < n; ++i) {
    IssueAt(engine_.now(), bytes_each, is_write, EventFn());
  }
  return IssueAt(engine_.now(), bytes_each, is_write, std::move(done));
}

SimTime MemoryChannel::PeekLatency(uint32_t bytes, bool is_write) const {
  return GrantWait(engine_.now()) + UnloadedLatency(bytes, is_write);
}

SimTime MemoryChannel::UnloadedLatency(uint32_t bytes, bool is_write) const {
  return Occupancy(bytes) + (is_write ? config_.write_latency_ps : config_.read_latency_ps);
}

double MemoryChannel::Utilization(SimTime window_start) const {
  const SimTime window = engine_.now() - window_start;
  if (window <= 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(busy_accum_) / static_cast<double>(window));
}

void MemoryChannel::ResetStats() {
  reads_ = 0;
  writes_ = 0;
  bytes_moved_ = 0;
  busy_accum_ = 0;
  queue_wait_.Reset();
}

}  // namespace npr
