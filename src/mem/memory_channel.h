// Timing model for one memory (DRAM, SRAM, or Scratch).
//
// A channel is a single FIFO server: an access occupies the memory bus for
// ceil(bytes / width) bus cycles and completes after an additional fixed
// pipeline latency. Unloaded round-trip latencies therefore match the
// paper's Table 3 measurements, while sustained throughput saturates at the
// bus's peak bandwidth — which is what makes latency hiding by parallel
// hardware contexts (and its failure under contention) emerge naturally.

#ifndef SRC_MEM_MEMORY_CHANNEL_H_
#define SRC_MEM_MEMORY_CHANNEL_H_

#include <cstdint>
#include <string>

#include "src/sim/event_fn.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace npr {

class FaultInjector;

struct MemoryChannelConfig {
  std::string name;
  // Bytes moved per bus cycle (DRAM: 8, SRAM/Scratch: 4).
  uint32_t width_bytes = 4;
  // Duration of one bus cycle.
  SimTime bus_cycle_ps = 10000;
  // Fixed pipeline latency added after the bus transfer completes.
  SimTime read_latency_ps = 0;
  SimTime write_latency_ps = 0;
  // Observability: which WaitClass a context blocked on this channel is
  // charged to (raw value of npr::WaitClass; plain int here so mem/ does
  // not depend on obs/). Defaults to kOther.
  uint8_t profile_class = 6;
};

class MemoryChannel {
 public:
  MemoryChannel(EventQueue& engine, MemoryChannelConfig config);

  MemoryChannel(const MemoryChannel&) = delete;
  MemoryChannel& operator=(const MemoryChannel&) = delete;

  // Issues an access of `bytes` bytes. `done` runs (via the event queue)
  // when the access completes; it may be empty for posted writes the issuer
  // does not wait on. Returns the completion time.
  SimTime Issue(uint32_t bytes, bool is_write, EventFn done);

  // Coalesces `n` back-to-back accesses of `bytes_each` issued at this
  // instant into one scheduled event: the per-access arithmetic (queue-wait
  // samples, busy-timeline advance, fault spikes, byte and op counters) is
  // identical to n sequential Issue calls, but only the final completion is
  // scheduled. `done` (optional) runs when the last access completes.
  // Returns that completion time.
  SimTime IssueBurst(uint32_t n, uint32_t bytes_each, bool is_write, EventFn done);

  // Issues an access as if at now + delay_ps, without an intermediate
  // event: the queue wait is measured against the busy timeline at that
  // future instant. Correct when every issuer of this channel defers by the
  // same delay (the DMA engines' shared setup time), so call order equals
  // virtual-time order. Fault spikes are drawn at call time.
  SimTime IssueDeferred(SimTime delay_ps, uint32_t bytes, bool is_write, EventFn done);

  // Round-trip latency an access issued right now would see (queueing
  // included), without actually issuing it. Computed from the same
  // busy-timeline helper Issue uses, so Peek and a subsequent Issue at the
  // same instant always agree (fault spikes excepted: they are drawn at
  // Issue time and extend the returned completion, never shorten it).
  SimTime PeekLatency(uint32_t bytes, bool is_write) const;

  // Unloaded round-trip latency for an access of `bytes` bytes.
  SimTime UnloadedLatency(uint32_t bytes, bool is_write) const;

  const MemoryChannelConfig& config() const { return config_; }

  // Fault injection: adds deterministic latency spikes to accesses.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // --- statistics ---
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t bytes_moved() const { return bytes_moved_; }
  // Fraction of [window_start, now] the bus spent busy.
  double Utilization(SimTime window_start) const;
  // Distribution of queueing delay (time from issue to bus grant), in ps.
  const Histogram& queue_wait() const { return queue_wait_; }

  void ResetStats();

 private:
  SimTime Occupancy(uint32_t bytes) const;
  // The single definition of "when does the bus grant an access issued at
  // `at`": both Issue and PeekLatency go through here.
  SimTime GrantWait(SimTime at) const { return busy_until_ > at ? busy_until_ - at : 0; }
  SimTime IssueAt(SimTime virtual_now, uint32_t bytes, bool is_write, EventFn done);

  EventQueue& engine_;
  MemoryChannelConfig config_;
  FaultInjector* fault_ = nullptr;
  SimTime busy_until_ = 0;
  SimTime busy_accum_ = 0;

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t bytes_moved_ = 0;
  Histogram queue_wait_;
};

}  // namespace npr

#endif  // SRC_MEM_MEMORY_CHANNEL_H_
