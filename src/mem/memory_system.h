// Bundles the three IXP1200 memories: timing channels + backing stores.

#ifndef SRC_MEM_MEMORY_SYSTEM_H_
#define SRC_MEM_MEMORY_SYSTEM_H_

#include <cstdint>

#include "src/mem/backing_store.h"
#include "src/mem/memory_channel.h"
#include "src/sim/event_queue.h"

namespace npr {

struct MemorySystemConfig {
  MemoryChannelConfig dram;
  MemoryChannelConfig sram;
  MemoryChannelConfig scratch;
  size_t dram_size_bytes = 32u << 20;  // 32 MB
  size_t sram_size_bytes = 2u << 20;   // 2 MB
  size_t scratch_size_bytes = 4096;    // 4 KB on-chip
};

class MemorySystem {
 public:
  MemorySystem(EventQueue& engine, const MemorySystemConfig& config)
      : dram_(engine, config.dram),
        sram_(engine, config.sram),
        scratch_(engine, config.scratch),
        dram_store_("dram", config.dram_size_bytes),
        sram_store_("sram", config.sram_size_bytes),
        scratch_store_("scratch", config.scratch_size_bytes) {}

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  MemoryChannel& dram() { return dram_; }
  MemoryChannel& sram() { return sram_; }
  MemoryChannel& scratch() { return scratch_; }

  BackingStore& dram_store() { return dram_store_; }
  BackingStore& sram_store() { return sram_store_; }
  BackingStore& scratch_store() { return scratch_store_; }
  const BackingStore& dram_store() const { return dram_store_; }
  const BackingStore& sram_store() const { return sram_store_; }
  const BackingStore& scratch_store() const { return scratch_store_; }

  void ResetStats() {
    dram_.ResetStats();
    sram_.ResetStats();
    scratch_.ResetStats();
  }

 private:
  MemoryChannel dram_;
  MemoryChannel sram_;
  MemoryChannel scratch_;
  BackingStore dram_store_;
  BackingStore sram_store_;
  BackingStore scratch_store_;
};

}  // namespace npr

#endif  // SRC_MEM_MEMORY_SYSTEM_H_
