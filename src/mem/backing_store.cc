#include "src/mem/backing_store.h"

#include <cassert>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/sim/log.h"

namespace npr {

BackingStore::BackingStore(std::string name, size_t size_bytes)
    : name_(std::move(name)), data_(size_bytes, 0) {}

bool BackingStore::CheckRange(uint32_t addr, size_t len) const {
  if (static_cast<size_t>(addr) + len > data_.size()) {
    ++oob_errors_;
    NPR_ERROR("%s: out-of-bounds access addr=%u len=%zu size=%zu", name_.c_str(), addr, len,
              data_.size());
    assert(false && "backing store out-of-bounds access");
    return false;
  }
  return true;
}

void BackingStore::Write(uint32_t addr, std::span<const uint8_t> bytes) {
  if (!CheckRange(addr, bytes.size())) {
    return;
  }
  std::memcpy(data_.data() + addr, bytes.data(), bytes.size());
}

void BackingStore::Read(uint32_t addr, std::span<uint8_t> out) const {
  if (!CheckRange(addr, out.size())) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), data_.data() + addr, out.size());
  if (fault_ != nullptr && !out.empty()) {
    fault_->MaybeFlipReadBits(out);
  }
}

void BackingStore::WriteU32(uint32_t addr, uint32_t value) {
  uint8_t bytes[4];
  std::memcpy(bytes, &value, 4);
  Write(addr, bytes);
}

uint32_t BackingStore::ReadU32(uint32_t addr) const {
  uint8_t bytes[4] = {};
  Read(addr, bytes);
  uint32_t value;
  std::memcpy(&value, bytes, 4);
  return value;
}

void BackingStore::WriteU64(uint32_t addr, uint64_t value) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  Write(addr, bytes);
}

uint64_t BackingStore::ReadU64(uint32_t addr) const {
  uint8_t bytes[8] = {};
  Read(addr, bytes);
  uint64_t value;
  std::memcpy(&value, bytes, 8);
  return value;
}

void BackingStore::Zero(uint32_t addr, size_t len) {
  if (!CheckRange(addr, len)) {
    return;
  }
  std::memset(data_.data() + addr, 0, len);
}

}  // namespace npr
