#include "src/mem/backing_store.h"

#include <cassert>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/sim/log.h"

namespace npr {

BackingStore::BackingStore(std::string name, size_t size_bytes)
    : name_(std::move(name)), data_(size_bytes, 0) {}

bool BackingStore::RangeFailure(uint32_t addr, size_t len) const {
  ++oob_errors_;
  NPR_ERROR("%s: out-of-bounds access addr=%u len=%zu size=%zu", name_.c_str(), addr, len,
            data_.size());
  assert(false && "backing store out-of-bounds access");
  return false;
}

void BackingStore::FaultFlip(std::span<uint8_t> out) const {
  fault_->MaybeFlipReadBits(out);
}

void BackingStore::Zero(uint32_t addr, size_t len) {
  if (!CheckRange(addr, len)) {
    return;
  }
  std::memset(data_.data() + addr, 0, len);
}

}  // namespace npr
