// Small-buffer callable for simulation events.
//
// The event core runs millions of callbacks per simulated millisecond, almost
// all of which capture one or two pointers (a context to resume, a channel to
// poke). std::function heap-allocates anything larger than its tiny SBO and
// always pays a manager-function indirection; EventFn instead stores small
// trivially-copyable callables inline in the event node, has dedicated
// representations for `fn-ptr + context` and `coroutine_handle` (the two hot
// shapes), and boxes only large per-frame captures (e.g. a Packet moved into
// a MAC completion) on the heap.
//
// EventFn is move-only: events are scheduled once and run once.

#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace npr {

class EventFn {
 public:
  // Three pointers of inline storage: enough for every per-cycle callback in
  // the simulator ([this], [ctx], [self, port], [m, c], ...).
  static constexpr size_t kInlineBytes = 24;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  // Raw fast path: a plain function pointer plus context, no type erasure.
  EventFn(void (*fn)(void*), void* ctx) noexcept {
    const RawThunk thunk{fn, ctx};
    std::memcpy(buf_, &thunk, sizeof(thunk));
    invoke_ = &InvokeRaw;
  }

  // Coroutine fast path: resumes `h` when the event fires.
  static EventFn Resume(std::coroutine_handle<> h) noexcept {
    EventFn fn;
    void* addr = h.address();
    std::memcpy(fn.buf_, &addr, sizeof(addr));
    fn.invoke_ = &InvokeCoro;
    return fn;
  }

  // Generic callables. Small trivially-copyable ones are stored inline;
  // anything else is boxed on the heap (cold, per-frame paths only).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                                        std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
                  std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InvokeInline<D>;
    } else {
      D* boxed = new D(std::forward<F>(f));
      std::memcpy(buf_, &boxed, sizeof(boxed));
      invoke_ = &InvokeBoxed<D>;
      destroy_ = &DestroyBoxed<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // Runs the callable. The callable must be non-empty and not moved-from.
  void operator()() { invoke_(this); }

  // Destroys the callable (if any) and leaves the EventFn empty. Cheaper
  // than assigning EventFn() when the storage is about to be reused.
  void Reset() noexcept {
    if (destroy_ != nullptr) {
      destroy_(this);
    }
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  struct RawThunk {
    void (*fn)(void*);
    void* ctx;
  };

  static void InvokeRaw(EventFn* self) {
    RawThunk thunk;
    std::memcpy(&thunk, self->buf_, sizeof(thunk));
    thunk.fn(thunk.ctx);
  }

  static void InvokeCoro(EventFn* self) {
    void* addr;
    std::memcpy(&addr, self->buf_, sizeof(addr));
    std::coroutine_handle<>::from_address(addr).resume();
  }

  template <typename D>
  static void InvokeInline(EventFn* self) {
    (*std::launder(reinterpret_cast<D*>(self->buf_)))();
  }

  template <typename D>
  static D* Boxed(const EventFn* self) {
    D* boxed;
    std::memcpy(&boxed, self->buf_, sizeof(boxed));
    return boxed;
  }

  template <typename D>
  static void InvokeBoxed(EventFn* self) {
    (*Boxed<D>(self))();
  }

  template <typename D>
  static void DestroyBoxed(EventFn* self) {
    delete Boxed<D>(self);
  }

  // Inline callables are trivially copyable and boxed ones live behind a
  // pointer, so a move is a memcpy plus disowning the source.
  void MoveFrom(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    std::memcpy(buf_, other.buf_, kInlineBytes);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  void (*invoke_)(EventFn*) = nullptr;
  void (*destroy_)(EventFn*) = nullptr;
  alignas(void*) unsigned char buf_[kInlineBytes];
};

}  // namespace npr

#endif  // SRC_SIM_EVENT_FN_H_
