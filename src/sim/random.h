// Deterministic pseudo-random number generation for workloads.
//
// xoshiro256** seeded via SplitMix64. Every traffic generator takes an
// explicit seed so experiment runs are exactly reproducible.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace npr {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform value in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability p (clamped to [0, 1]).
  bool Chance(double p);

  // Exponentially distributed value with the given mean (for Poisson
  // arrival processes).
  double Exponential(double mean);

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). Used to model skewed flow popularity in
// workload generators. Precomputes the CDF once; draws are O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double skew);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace npr

#endif  // SRC_SIM_RANDOM_H_
