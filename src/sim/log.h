// Minimal leveled logging for the simulator.
//
// Logging is off (kWarn) by default so benchmark runs stay quiet; tests and
// examples can raise the level. Shard-safe: the level is an atomic and each
// LogMessage writes its line atomically, so concurrent node shards
// (src/sim/shard_group.h) may log freely. Lines from different shards may
// interleave in any order between runs — only in-shard order is stable.

#ifndef SRC_SIM_LOG_H_
#define SRC_SIM_LOG_H_

#include <cstdio>
#include <string>

namespace npr {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

// Process-wide minimum level that will be emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Emits one formatted log line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

namespace log_internal {
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace log_internal

#define NPR_LOG(level, ...)                                                          \
  do {                                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::npr::GetLogLevel())) {         \
      ::npr::LogMessage(level, __FILE__, __LINE__,                                   \
                        ::npr::log_internal::Format(__VA_ARGS__));                   \
    }                                                                                \
  } while (0)

#define NPR_TRACE(...) NPR_LOG(::npr::LogLevel::kTrace, __VA_ARGS__)
#define NPR_DEBUG(...) NPR_LOG(::npr::LogLevel::kDebug, __VA_ARGS__)
#define NPR_INFO(...) NPR_LOG(::npr::LogLevel::kInfo, __VA_ARGS__)
#define NPR_WARN(...) NPR_LOG(::npr::LogLevel::kWarn, __VA_ARGS__)
#define NPR_ERROR(...) NPR_LOG(::npr::LogLevel::kError, __VA_ARGS__)

}  // namespace npr

#endif  // SRC_SIM_LOG_H_
