#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/sim/log.h"

namespace npr {

EventQueue::EventQueue() = default;

// Chunks own the nodes; any still-pending boxed callbacks are released by
// the EventNode destructors when the chunk arrays go away.
EventQueue::~EventQueue() = default;

EventQueue::EventNode* EventQueue::RefillPool() {
  chunks_.push_back(std::make_unique<EventNode[]>(static_cast<size_t>(kChunkNodes)));
  EventNode* chunk = chunks_.back().get();
  for (int i = kChunkNodes - 1; i >= 0; --i) {
    chunk[i].next = free_;
    free_ = &chunk[i];
  }
  return free_;
}

void EventQueue::FreeNode(EventNode* n) {
  n->fn.Reset();  // releases a boxed callable, if any
  n->next = free_;
  free_ = n;
}

void EventQueue::ClearSlotBit(int level, int idx) {
  const int word = idx >> 6;
  if ((bitmap_[level][word] &= ~(uint64_t{1} << (idx & 63))) == 0) {
    summary_[level] &= ~(uint32_t{1} << word);
  }
}

int EventQueue::FindSetFrom(int level, int from) const {
  if (from >= kWheelSlots) {
    return -1;
  }
  int word = from >> 6;
  const uint64_t bits = bitmap_[level][word] & (~uint64_t{0} << (from & 63));
  if (bits != 0) {
    return (word << 6) + std::countr_zero(bits);
  }
  const uint32_t words = summary_[level] & (~uint32_t{0} << (word + 1));
  if (words == 0) {
    return -1;
  }
  word = std::countr_zero(words);
  return (word << 6) + std::countr_zero(bitmap_[level][word]);
}

void EventQueue::InsertReady(EventNode* n) {
  EventNode** p = &ready_head_;
  while (*p != nullptr && ((*p)->t < n->t || ((*p)->t == n->t && (*p)->seq < n->seq))) {
    p = &(*p)->next;
  }
  n->next = *p;
  *p = n;
}

void EventQueue::InsertNode(EventNode* n) {
  if (n->t < ready_limit_) {
    // Lands inside the already-drained window (e.g. scheduled at now() from
    // inside a callback): merge into the sorted ready list.
    InsertReady(n);
    return;
  }
  const int64_t tick = TickOf(n->t);
  // A node goes into the lowest level whose enclosing window contains the
  // cursor; within one window, slot indices never collide across rotations.
  for (int level = 0; level < kLevels; ++level) {
    const int window_shift = kWheelBits * (level + 1);
    if ((tick >> window_shift) == (next_tick_ >> window_shift)) {
      const int idx = static_cast<int>((tick >> (kWheelBits * level)) & kSlotMask);
      PushSlot(level, idx, n);
      return;
    }
  }
  far_.push_back(n);
  std::push_heap(far_.begin(), far_.end(), FarLater{});
}

void EventQueue::DrainLevel0Slot(int idx) {
  EventNode* head = slots_[0][idx];
  slots_[0][idx] = nullptr;
  ClearSlotBit(0, idx);
  assert(head != nullptr && "draining an empty bucket");
  if (head->next == nullptr) {  // common case: a single event in the bucket
    ready_head_ = head;
    return;
  }
  scratch_.clear();
  for (EventNode* n = head; n != nullptr; n = n->next) {
    scratch_.push_back(n);
  }
  std::sort(scratch_.begin(), scratch_.end(), [](const EventNode* a, const EventNode* b) {
    if (a->t != b->t) {
      return a->t < b->t;
    }
    return a->seq < b->seq;
  });
  for (size_t i = 0; i + 1 < scratch_.size(); ++i) {
    scratch_[i]->next = scratch_[i + 1];
  }
  scratch_.back()->next = nullptr;
  ready_head_ = scratch_.front();
}

void EventQueue::CascadeSlot(int level, int idx) {
  EventNode* n = slots_[level][idx];
  slots_[level][idx] = nullptr;
  ClearSlotBit(level, idx);
  while (n != nullptr) {
    EventNode* next = n->next;
    InsertNode(n);
    n = next;
  }
}

bool EventQueue::Advance() {
  if (size_ == 0) {
    return false;
  }
  for (;;) {
    if (ready_head_ != nullptr) {
      // A cascade or far-heap drain landed nodes directly in ready_.
      return true;
    }
    // Catch the hierarchy up with the cursor. Entering a new window can
    // happen mid-stream (the drained tick + 1 crosses a window boundary,
    // and the callback immediately schedules into the new window), so the
    // incoming window's higher-level slot must cascade down *before* the
    // level-0 scan — otherwise fresh level-0 events would run ahead of
    // earlier ones still parked a level up.
    const int64_t rot = next_tick_ >> (kLevels * kWheelBits);
    if (rot != caught_up_rot_) {
      caught_up_rot_ = rot;
      while (!far_.empty() && (TickOf(far_.front()->t) >> (kLevels * kWheelBits)) == rot) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        EventNode* n = far_.back();
        far_.pop_back();
        InsertNode(n);
      }
    }
    const int64_t w2 = next_tick_ >> (2 * kWheelBits);
    if (w2 != caught_up_w2_) {
      caught_up_w2_ = w2;
      const int idx2 = static_cast<int>(w2 & kSlotMask);
      if (slots_[2][idx2] != nullptr) {
        CascadeSlot(2, idx2);
      }
    }
    const int64_t w1 = next_tick_ >> kWheelBits;
    if (w1 != caught_up_w1_) {
      caught_up_w1_ = w1;
      const int idx1 = static_cast<int>(w1 & kSlotMask);
      if (slots_[1][idx1] != nullptr) {
        CascadeSlot(1, idx1);
      }
    }
    // Level 0: next occupied bucket in the current window.
    int idx = FindSetFrom(0, static_cast<int>(next_tick_ & kSlotMask));
    if (idx >= 0) {
      const int64_t tick = ((next_tick_ >> kWheelBits) << kWheelBits) | idx;
      next_tick_ = tick + 1;
      ready_limit_ = (tick + 1) << kTickShift;
      DrainLevel0Slot(idx);
      return true;
    }
    // Level 0 exhausted: cascade the next occupied level-1 slot down (the
    // cursor's own slot is empty — the catch-up above cascaded it — so the
    // inclusive scan lands on a strictly later window).
    idx = FindSetFrom(1, static_cast<int>(w1 & kSlotMask));
    if (idx >= 0) {
      const int64_t w1_new = ((w1 >> kWheelBits) << kWheelBits) | idx;
      next_tick_ = std::max(next_tick_, w1_new << kWheelBits);
      CascadeSlot(1, idx);
      continue;
    }
    idx = FindSetFrom(2, static_cast<int>(w2 & kSlotMask));
    if (idx >= 0) {
      const int64_t w2_new = ((w2 >> kWheelBits) << kWheelBits) | idx;
      next_tick_ = std::max(next_tick_, w2_new << (2 * kWheelBits));
      CascadeSlot(2, idx);
      continue;
    }
    // Wheels are empty: jump the cursor to the far-future heap and pull in
    // everything that now fits under the wheels' span.
    if (far_.empty()) {
      return false;
    }
    next_tick_ = std::max(next_tick_, TickOf(far_.front()->t));
    const int64_t rotation = next_tick_ >> (kLevels * kWheelBits);
    while (!far_.empty() && (TickOf(far_.front()->t) >> (kLevels * kWheelBits)) == rotation) {
      std::pop_heap(far_.begin(), far_.end(), FarLater{});
      EventNode* n = far_.back();
      far_.pop_back();
      InsertNode(n);
    }
  }
}

bool EventQueue::RunOne() {
  if (ready_head_ == nullptr && !Advance()) {
    return false;
  }
  EventNode* n = ready_head_;
  ready_head_ = n->next;
  --size_;
  now_ = n->t;
  ++events_run_;
  // Invoke in place: the node is already unlinked, so a callback that
  // schedules follow-up events can never touch it, and the callable is not
  // moved on the hot path. Recycle the node after.
  n->fn();
  FreeNode(n);
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  for (;;) {
    if (ready_head_ == nullptr && !Advance()) {
      break;
    }
    EventNode* n = ready_head_;
    if (n->t > t) {
      break;
    }
    ready_head_ = n->next;
    --size_;
    now_ = n->t;
    ++events_run_;
    n->fn();
    FreeNode(n);
  }
  if (t > now_) {
    now_ = t;
  }
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  if (size_ > 0) {
    NPR_ERROR("RunAll stopped at its %llu-event cap with %zu events still pending "
              "(runaway self-rescheduling loop?)",
              static_cast<unsigned long long>(max_events), size_);
  }
  return n;
}

void EventQueue::Clear() {
  while (ready_head_ != nullptr) {
    EventNode* n = ready_head_;
    ready_head_ = n->next;
    FreeNode(n);
  }
  for (int level = 0; level < kLevels; ++level) {
    summary_[level] = 0;
    for (int word = 0; word < kBitmapWords; ++word) {
      uint64_t bits = bitmap_[level][word];
      bitmap_[level][word] = 0;
      while (bits != 0) {
        const int idx = (word << 6) + std::countr_zero(bits);
        bits &= bits - 1;
        EventNode* n = slots_[level][idx];
        slots_[level][idx] = nullptr;
        while (n != nullptr) {
          EventNode* next = n->next;
          FreeNode(n);
          n = next;
        }
      }
    }
  }
  for (EventNode* n : far_) {
    FreeNode(n);
  }
  far_.clear();
  size_ = 0;
}

}  // namespace npr
