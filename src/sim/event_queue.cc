#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace npr {

void EventQueue::Schedule(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule an event in the past");
  heap_.push(Event{t, next_seq_++, std::move(cb)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const; the callback must be moved out before pop.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ++events_run_;
  ev.cb();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) {
    RunOne();
  }
  if (t > now_) {
    now_ = t;
  }
}

void EventQueue::RunAll(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
}

}  // namespace npr
