#include "src/sim/shard_group.h"

#include <algorithm>
#include <cstdlib>

#include "src/sim/log.h"

namespace npr {

ShardPool::ShardPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ShardPool::DrainIndices() {
  std::unique_lock<std::mutex> lock(mu_);
  while (claimed_ < n_) {
    const int i = claimed_++;
    const std::function<void(int)>* fn = fn_;
    lock.unlock();
    (*fn)(i);
    lock.lock();
    if (--remaining_ == 0) {
      cv_done_.notify_all();
    }
  }
}

void ShardPool::Worker() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || claimed_ < n_; });
      if (stop_) {
        return;
      }
    }
    DrainIndices();
  }
}

void ShardPool::Run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty()) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    claimed_ = 0;
    remaining_ = n;
  }
  cv_work_.notify_all();
  DrainIndices();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
  n_ = 0;
  claimed_ = 0;
}

ShardGroup::ShardGroup(EventQueue* hub, std::vector<EventQueue*> shards, SimTime window_ps,
                       int threads)
    : hub_(hub), shards_(std::move(shards)), window_ps_(window_ps), now_(hub->now()),
      pool_(threads) {
  // These hold in Release builds too: a bad window silently breaks the
  // lookahead guarantee, which is exactly the failure mode that must be loud.
  if (window_ps_ <= 0) {
    NPR_ERROR("ShardGroup window must be positive (got %lld ps)",
              static_cast<long long>(window_ps_));
    std::abort();
  }
  for (EventQueue* shard : shards_) {
    if (shard->now() != now_) {
      NPR_ERROR("shard clock (%lld ps) disagrees with hub clock (%lld ps) at construction",
                static_cast<long long>(shard->now()), static_cast<long long>(now_));
      std::abort();
    }
  }
}

void ShardGroup::RunUntil(SimTime t) {
  while (now_ < t) {
    const SimTime end = std::min(now_ + window_ps_, t);
    if (merge_) {
      merge_(now_);
    }
    // Hub first: it still may schedule into shards (they sit at now_), and
    // shards read state the hub wrote with a happens-before edge through
    // the pool.
    hub_->RunUntil(end);
    pool_.Run(static_cast<int>(shards_.size()),
              [this, end](int i) { shards_[static_cast<size_t>(i)]->RunUntil(end); });
    now_ = end;
    ++windows_run_;
  }
}

uint64_t ShardGroup::events_run() const {
  uint64_t total = hub_->events_run();
  for (const EventQueue* shard : shards_) {
    total += shard->events_run();
  }
  return total;
}

}  // namespace npr
