#include "src/sim/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace npr {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = n * (UINT64_MAX / n);
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

ZipfDistribution::ZipfDistribution(size_t n, double skew) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) {
    v /= sum;
  }
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace npr
