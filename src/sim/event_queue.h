// Discrete-event simulation engine.
//
// A single EventQueue instance drives one simulated router (all clock
// domains share the picosecond time base). Events scheduled for the same
// instant run in scheduling order (stable FIFO), which keeps runs
// deterministic and reproducible.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace npr {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  // Schedules `cb` to run at absolute time `t`. `t` must be >= now().
  void Schedule(SimTime t, Callback cb);

  // Schedules `cb` to run `dt` picoseconds from now.
  void ScheduleIn(SimTime dt, Callback cb) { Schedule(now_ + dt, std::move(cb)); }

  // Runs the single earliest pending event, advancing now() to its time.
  // Returns false (and leaves now() unchanged) when no events are pending.
  bool RunOne();

  // Runs every event with time <= `t`, then sets now() to `t`.
  void RunUntil(SimTime t);

  // Runs every event in the next `dt` picoseconds.
  void RunFor(SimTime dt) { RunUntil(now_ + dt); }

  // Drains all pending events regardless of time. Intended for tests.
  // `max_events` guards against runaway self-rescheduling loops.
  void RunAll(uint64_t max_events = 100'000'000);

  // Number of not-yet-executed events.
  size_t pending() const { return heap_.size(); }

  // Drops all pending events without running them (used at teardown).
  void Clear();

  // Total number of events executed since construction.
  uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    SimTime t;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace npr

#endif  // SRC_SIM_EVENT_QUEUE_H_
