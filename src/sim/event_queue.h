// Discrete-event simulation engine.
//
// A single EventQueue instance drives one simulated router (all clock
// domains share the picosecond time base). Events scheduled for the same
// instant run in scheduling order (stable FIFO), which keeps runs
// deterministic and reproducible.
//
// The queue is a three-level hierarchical timing wheel over pooled,
// intrusively-linked event nodes, with a spill-over heap for far-future
// events (OSPF timers, fault-plan epochs). Nearly every event in the
// simulator lands a fixed small delta ahead of now (5000 ps MicroEngine
// ticks, 1364 ps Pentium ticks, bus-cycle multiples), so scheduling and
// dispatch are O(1) with no heap allocation on the hot path: the callback
// (an EventFn) lives inside the 64-byte node. Same-instant FIFO order is
// preserved by per-event sequence numbers; buckets are sorted on
// (time, seq) when their turn comes.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace npr {

class EventQueue {
 public:
  using Callback = EventFn;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  // Schedules `cb` to run at absolute time `t`. `t` must be >= now().
  // Inline: the level-0 fast path (the next ~4.2 us, i.e. nearly every
  // event the simulator schedules) is a pool pop plus one list push.
  void Schedule(SimTime t, EventFn cb) {
    assert(t >= now_ && "cannot schedule an event in the past");
    assert(cb && "cannot schedule an empty callback");
    EventNode* n = free_;
    if (n == nullptr) [[unlikely]] {
      n = RefillPool();
    }
    free_ = n->next;
    n->t = t;
    n->seq = next_seq_++;
    n->next = nullptr;
    n->fn = std::move(cb);
    ++size_;
    const int64_t tick = t >> kTickShift;
    if (t >= ready_limit_ && (tick >> kWheelBits) == (next_tick_ >> kWheelBits))
        [[likely]] {
      PushSlot(0, static_cast<int>(tick & kSlotMask), n);
    } else {
      InsertNode(n);
    }
  }

  // Schedules `cb` to run `dt` picoseconds from now.
  void ScheduleIn(SimTime dt, EventFn cb) { Schedule(now_ + dt, std::move(cb)); }

  // Fast path for the most common event shape: a plain function pointer plus
  // context, bypassing EventFn's type erasure entirely.
  void ScheduleRaw(SimTime t, void (*fn)(void*), void* ctx) { Schedule(t, EventFn(fn, ctx)); }

  // Fast path for coroutine resumption: resumes `h` at time `t`. This is how
  // Compute/Read/Write awaitables get back on the processor they model.
  void ScheduleResume(SimTime t, std::coroutine_handle<> h) { Schedule(t, EventFn::Resume(h)); }
  void ScheduleResumeIn(SimTime dt, std::coroutine_handle<> h) { ScheduleResume(now_ + dt, h); }

  // Runs the single earliest pending event, advancing now() to its time.
  // Returns false (and leaves now() unchanged) when no events are pending.
  bool RunOne();

  // Runs every event with time <= `t`, then sets now() to `t`.
  void RunUntil(SimTime t);

  // Runs every event in the next `dt` picoseconds.
  void RunFor(SimTime dt) { RunUntil(now_ + dt); }

  // Drains all pending events regardless of time. Intended for tests.
  // `max_events` guards against runaway self-rescheduling loops; hitting it
  // is reported (NPR_ERROR + events still pending) rather than masked.
  // Returns the number of events run.
  uint64_t RunAll(uint64_t max_events = 100'000'000);

  // Number of not-yet-executed events.
  size_t pending() const { return size_; }

  // Drops all pending events without running them (used at teardown).
  void Clear();

  // Total number of events executed since construction.
  uint64_t events_run() const { return events_run_; }

 private:
  // One pooled event. Exactly one cache line: nodes never move once
  // allocated (lists and the far-heap hold pointers), so the EventFn needs
  // no relocation support beyond its own move.
  struct EventNode {
    SimTime t = 0;
    uint64_t seq = 0;
    EventNode* next = nullptr;
    EventFn fn;
  };

  // Level-0 buckets are 4096 ps (~4.1 ns, just under one 5 ns IXP cycle) so
  // consecutive MicroEngine ticks land in consecutive buckets. Each level
  // has 1024 slots: level 0 spans ~4.2 us, level 1 ~4.3 ms, level 2 ~4.4 s.
  // Anything further out (OSPF hellos, fault epochs) spills to a heap.
  static constexpr int kTickShift = 12;
  static constexpr int kWheelBits = 10;
  static constexpr int kWheelSlots = 1 << kWheelBits;
  static constexpr int kLevels = 3;
  static constexpr int kBitmapWords = kWheelSlots / 64;
  static constexpr int64_t kSlotMask = kWheelSlots - 1;
  static constexpr int kChunkNodes = 512;

  struct FarLater {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->t != b->t) {
        return a->t > b->t;
      }
      return a->seq > b->seq;
    }
  };

  static int64_t TickOf(SimTime t) { return t >> kTickShift; }

  // Grows the node pool by one chunk; returns the new free-list head.
  EventNode* RefillPool();
  void FreeNode(EventNode* n);
  void InsertNode(EventNode* n);
  void InsertReady(EventNode* n);
  void PushSlot(int level, int idx, EventNode* n) {
    n->next = slots_[level][idx];
    slots_[level][idx] = n;
    bitmap_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
    summary_[level] |= uint32_t{1} << (idx >> 6);
  }
  void ClearSlotBit(int level, int idx);
  int FindSetFrom(int level, int from) const;
  void CascadeSlot(int level, int idx);
  void DrainLevel0Slot(int idx);
  // Refills ready_ with the next due bucket (cascading and draining the
  // far-heap as needed). Returns false when nothing is pending.
  bool Advance();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  size_t size_ = 0;

  // Drained events waiting to run, sorted by (t, seq). All have t <
  // ready_limit_; a callback scheduling into that window inserts here.
  EventNode* ready_head_ = nullptr;
  SimTime ready_limit_ = 0;
  // First level-0 tick not yet drained (the wheel cursor).
  int64_t next_tick_ = 0;
  // Windows whose higher-level slot has already been cascaded down to the
  // cursor (Advance's catch-up step). All start at window 0, whose slots
  // are empty at construction.
  int64_t caught_up_w1_ = 0;
  int64_t caught_up_w2_ = 0;
  int64_t caught_up_rot_ = 0;

  EventNode* slots_[kLevels][kWheelSlots] = {};
  uint64_t bitmap_[kLevels][kBitmapWords] = {};
  // Bit w set iff bitmap_[level][w] != 0: one load decides where the next
  // occupied slot is instead of walking all 16 bitmap words.
  uint32_t summary_[kLevels] = {};
  std::vector<EventNode*> far_;      // min-heap on (t, seq)
  std::vector<EventNode*> scratch_;  // bucket sort scratch, reused

  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_ = nullptr;
};

}  // namespace npr

#endif  // SRC_SIM_EVENT_QUEUE_H_
