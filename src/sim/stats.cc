#include "src/sim/stats.h"

#include <bit>
#include <cstdio>

namespace npr {

double Histogram::Percentile(double p) const {
  if (acc_.count() == 0) {
    return 0.0;
  }
  const double target = p / 100.0 * static_cast<double>(acc_.count());
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Bucket i covers [2^(i-1), 2^i); report the midpoint.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      return (lo + hi) / 2.0;
    }
  }
  return acc_.max();
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1f min=%llu max=%llu p50~%.0f p99~%.0f",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(min()), static_cast<unsigned long long>(max()),
                Percentile(50), Percentile(99));
  return buf;
}

void Histogram::Reset() {
  acc_.Reset();
  for (auto& b : buckets_) {
    b = 0;
  }
}

void RateMeter::StartWindow(SimTime now) {
  windowing_ = true;
  window_start_ = now;
  last_event_ = now;
  events_ = 0;
}

void RateMeter::Record(SimTime now) {
  if (!windowing_) {
    StartWindow(now);
    return;
  }
  ++events_;
  last_event_ = now;
}

double RateMeter::RatePerSec() const {
  if (events_ < 2 || last_event_ <= window_start_) {
    return 0.0;
  }
  return static_cast<double>(events_) /
         (static_cast<double>(last_event_ - window_start_) / static_cast<double>(kPsPerSec));
}

}  // namespace npr
