// Statistics primitives shared by the simulator and the benchmark harness.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace npr {

// Running mean / variance / extrema over a stream of samples (Welford).
class Accumulator {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset() { *this = Accumulator(); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Power-of-two bucketed histogram for latency distributions.
class Histogram {
 public:
  void Add(uint64_t value) {
    acc_.Add(static_cast<double>(value));
    const int bucket = value == 0 ? 0 : std::bit_width(value);
    buckets_[std::min(bucket, kBuckets - 1)]++;
  }

  uint64_t count() const { return acc_.count(); }
  double mean() const { return acc_.mean(); }
  uint64_t min() const { return static_cast<uint64_t>(acc_.min()); }
  uint64_t max() const { return static_cast<uint64_t>(acc_.max()); }

  // Approximate p-th percentile (p in [0, 100]) from bucket midpoints.
  double Percentile(double p) const;

  // Human-readable one-line summary.
  std::string Summary() const;

  void Reset();

 private:
  static constexpr int kBuckets = 64;
  Accumulator acc_;
  uint64_t buckets_[kBuckets] = {};
};

// Measures a steady-state event rate over a window: total events divided by
// elapsed simulated time, with support for discarding a warmup prefix.
class RateMeter {
 public:
  // Marks the start of the measured window (ends any warmup period).
  void StartWindow(SimTime now);

  // Records one event (e.g. one forwarded packet) at time `now`.
  void Record(SimTime now);

  uint64_t events() const { return events_; }

  // Events per second over [window_start, last_event]. Zero if fewer than
  // two events were seen.
  double RatePerSec() const;

 private:
  bool windowing_ = false;
  SimTime window_start_ = 0;
  SimTime last_event_ = 0;
  uint64_t events_ = 0;
};

}  // namespace npr

#endif  // SRC_SIM_STATS_H_
