// Coroutine task type for simulated processor contexts.
//
// A Task is a fire-and-forget coroutine owned by the simulated hardware
// object (MicroEngine context, StrongARM, Pentium) that runs it. Tasks start
// suspended; the owner calls Start() once, after which the coroutine is
// resumed only by the awaitables it suspends on (memory completions, token
// arrival, timer events). Most hardware loops never return; destroying a
// Task destroys the suspended frame, which is how the simulation tears down.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <exception>
#include <utility>

namespace npr {

class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // A simulated hardware context has no one to propagate to; failing
      // loudly beats silently corrupting the simulation.
      std::terminate();
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  // Runs the coroutine up to its first suspension point.
  void Start() {
    if (handle_ && !handle_.done()) {
      handle_.resume();
    }
  }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace npr

#endif  // SRC_SIM_TASK_H_
