#include "src/sim/log.h"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace npr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex& OutputMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  // One lock per emitted line keeps lines from concurrent shards whole.
  std::lock_guard<std::mutex> lock(OutputMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

namespace log_internal {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace log_internal
}  // namespace npr
