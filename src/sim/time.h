// Simulation time base and clock domains.
//
// All simulation time is kept as a 64-bit count of picoseconds so that the
// three clock domains of the prototype hardware (200 MHz MicroEngines and
// StrongARM, 733 MHz Pentium III, and the 66/100 MHz buses) can be expressed
// exactly without floating point drift.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace npr {

// Absolute simulation time in picoseconds.
using SimTime = int64_t;

inline constexpr SimTime kPsPerNs = 1000;
inline constexpr SimTime kPsPerUs = 1000 * kPsPerNs;
inline constexpr SimTime kPsPerMs = 1000 * kPsPerUs;
inline constexpr SimTime kPsPerSec = 1000 * kPsPerMs;

// A fixed-frequency clock domain. Converts between cycle counts and SimTime.
struct ClockDomain {
  // Duration of one cycle in picoseconds.
  SimTime cycle_ps;

  // Time taken by `cycles` cycles of this clock.
  constexpr SimTime ToTime(int64_t cycles) const { return cycles * cycle_ps; }

  // Number of whole cycles of this clock in duration `t`.
  constexpr int64_t ToCycles(SimTime t) const { return t / cycle_ps; }

  // Clock frequency in Hz.
  constexpr double FrequencyHz() const { return 1e12 / static_cast<double>(cycle_ps); }
};

// The IXP1200 runs the StrongARM core and all six MicroEngines at a nominal
// 200 MHz (actual 199.066 MHz; the paper rounds and so do we): 5 ns cycles.
inline constexpr ClockDomain kIxpClock{5000};

// Host Pentium III at 733 MHz: 1.364 ns cycles (1364 ps).
inline constexpr ClockDomain kPentiumClock{1364};

// IX bus: 64-bit at 66 MHz.
inline constexpr ClockDomain kIxBusClock{15152};

// Memory buses (DRAM 64-bit, SRAM 32-bit) run at 100 MHz.
inline constexpr ClockDomain kMemBusClock{10000};

// PCI: 32-bit at 33 MHz.
inline constexpr ClockDomain kPciClock{30303};

}  // namespace npr

#endif  // SRC_SIM_TIME_H_
