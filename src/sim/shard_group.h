// Conservative-lookahead parallel execution for a set of EventQueue shards.
//
// A simulation that decomposes into loosely-coupled components — e.g. the
// nodes of a multi-chassis cluster joined by a switch fabric with a fixed
// one-way frame latency L — can run each component on its own EventQueue
// ("shard") and still be bit-for-bit deterministic. The guarantee is the
// classic conservative-lookahead argument: if every cross-shard effect
// produced at time t cannot land before t + L, then within any window
// (T, T+W] with W <= L the shards are causally independent and may run in
// any order, including concurrently. Cross-shard traffic produced during a
// window is buffered and merged at the next barrier in a deterministic
// total order, so a run with N worker threads is identical to a run with
// one.
//
// ShardGroup drives that loop. Each window:
//   1. the merge hook runs (single-threaded): the owner drains its
//      cross-shard mailboxes into the hub queue in a deterministic order;
//   2. the *hub* queue runs the window (single-threaded). The hub hosts
//      all cross-shard arbitration — control planes, fault supervisors,
//      fabric gates — and is the only place allowed to touch several
//      shards' state or to schedule events into a shard (legal because
//      every shard still sits at the window start, so any future-time
//      Schedule is valid);
//   3. the shards run the window, in parallel when the pool has threads.
//      A shard's events may only touch that shard's state, plus its own
//      outbound mailboxes.
//
// With threads == 1 no threads are ever created and step 3 is a plain
// loop, so "sequential mode" is not a degenerate special case but the
// reference implementation the parallel mode must (and does) reproduce
// bit-identically.

#ifndef SRC_SIM_SHARD_GROUP_H_
#define SRC_SIM_SHARD_GROUP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace npr {

// A fixed pool of worker threads that executes fn(0..n-1) with the caller
// participating. Index claims and completion accounting are mutex-guarded
// (claims are rare — one per shard per window — so contention is nil), which
// also gives every fn(i) a happens-before edge to the Run() return: the
// caller may freely read shard state the workers wrote.
class ShardPool {
 public:
  // `threads` is the total worker count including the caller; values <= 1
  // spawn nothing and make Run a plain sequential loop.
  explicit ShardPool(int threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  // Runs fn(i) for every i in [0, n) and returns once all completed.
  // Not reentrant; one Run at a time.
  void Run(int n, const std::function<void(int)>& fn);

  int threads() const { return threads_; }

 private:
  void Worker();
  // Claims and runs indices until none remain. Returns holding no lock.
  void DrainIndices();

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;  // valid while remaining_ > 0
  int n_ = 0;
  int claimed_ = 0;    // next index to hand out
  int remaining_ = 0;  // indices not yet completed
  bool stop_ = false;
};

class ShardGroup {
 public:
  // Called at each barrier with the start of the window about to run,
  // before the hub phase: drain cross-shard mailboxes here. Anything
  // delivered must land at a time > window_start (the lookahead
  // guarantee); the owner is expected to fail loudly otherwise.
  using MergeHook = std::function<void(SimTime window_start)>;

  // `hub` and `shards` are borrowed and must outlive the group. All queues
  // must sit at the same simulation time (normally 0, before Start).
  ShardGroup(EventQueue* hub, std::vector<EventQueue*> shards, SimTime window_ps, int threads);

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  void set_merge_hook(MergeHook hook) { merge_ = std::move(hook); }

  // Runs every queue up to `t` in conservative windows. On return the hub
  // and every shard sit exactly at `t`.
  void RunUntil(SimTime t);
  void RunFor(SimTime dt) { RunUntil(now_ + dt); }

  SimTime now() const { return now_; }
  SimTime window_ps() const { return window_ps_; }
  int threads() const { return pool_.threads(); }
  uint64_t windows_run() const { return windows_run_; }
  // Aggregate events executed across the hub and every shard.
  uint64_t events_run() const;

 private:
  EventQueue* hub_;
  std::vector<EventQueue*> shards_;
  const SimTime window_ps_;
  SimTime now_;
  uint64_t windows_run_ = 0;
  MergeHook merge_;
  ShardPool pool_;
};

}  // namespace npr

#endif  // SRC_SIM_SHARD_GROUP_H_
