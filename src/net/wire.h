// Big-endian (network byte order) field accessors used by all header codecs.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <span>

namespace npr {

inline uint16_t ReadBe16(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint16_t>(static_cast<uint16_t>(b[off]) << 8 | b[off + 1]);
}

inline uint32_t ReadBe32(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint32_t>(b[off]) << 24 | static_cast<uint32_t>(b[off + 1]) << 16 |
         static_cast<uint32_t>(b[off + 2]) << 8 | b[off + 3];
}

inline void WriteBe16(std::span<uint8_t> b, size_t off, uint16_t v) {
  b[off] = static_cast<uint8_t>(v >> 8);
  b[off + 1] = static_cast<uint8_t>(v);
}

inline void WriteBe32(std::span<uint8_t> b, size_t off, uint32_t v) {
  b[off] = static_cast<uint8_t>(v >> 24);
  b[off + 1] = static_cast<uint8_t>(v >> 16);
  b[off + 2] = static_cast<uint8_t>(v >> 8);
  b[off + 3] = static_cast<uint8_t>(v);
}

}  // namespace npr

#endif  // SRC_NET_WIRE_H_
