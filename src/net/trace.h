// Text packet traces: record what a run produced, replay it as a workload.
//
// Format (one record per line, '#' comments):
//   <time_us> <src_ip> <dst_ip> <proto> <src_port> <dst_port> <frame_bytes> [flags]
// e.g.
//   12.500 172.16.0.1 10.3.0.7 tcp 1024 80 64 S
//
// A TraceReplayer schedules each record onto a MacPort at its timestamp —
// the simulated-trace stand-in for the production traces the paper's
// testbed would have carried.

#ifndef SRC_NET_TRACE_H_
#define SRC_NET_TRACE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/net/mac_port.h"
#include "src/net/packet.h"
#include "src/sim/event_queue.h"

namespace npr {

struct TraceRecord {
  SimTime at = 0;  // absolute simulation time
  PacketSpec spec;

  // One text line (without newline).
  std::string Serialize() const;
  static std::optional<TraceRecord> Parse(const std::string& line);
};

struct TraceParseResult {
  bool ok = false;
  std::string error;
  std::vector<TraceRecord> records;
};

TraceParseResult ParseTrace(const std::string& text);

// Collects records (e.g. from a sink) and serializes them.
class TraceRecorder {
 public:
  void Record(const Packet& packet, SimTime now);
  std::string Serialize() const;
  size_t size() const { return records_.size(); }
  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
};

// Schedules every record of a trace onto `port` at its timestamp.
class TraceReplayer {
 public:
  TraceReplayer(EventQueue& engine, MacPort& port) : engine_(engine), port_(&port) {}

  // Schedules the records; must be called before the engine passes the
  // earliest timestamp. Returns the number scheduled.
  int Replay(const std::vector<TraceRecord>& records);

  uint64_t injected() const { return injected_; }

 private:
  EventQueue& engine_;
  MacPort* port_;
  uint64_t injected_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_TRACE_H_
