// ICMP codec and error-packet builder.
//
// The paper's data plane punts TTL expiry and routing failures to the
// control processors; a real router must answer them with ICMP errors
// (time-exceeded, destination-unreachable). The StrongARM generates these
// on its exception path.

#ifndef SRC_NET_ICMP_H_
#define SRC_NET_ICMP_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/net/packet.h"

namespace npr {

inline constexpr uint8_t kIcmpEchoReply = 0;
inline constexpr uint8_t kIcmpDestUnreachable = 3;
inline constexpr uint8_t kIcmpEchoRequest = 8;
inline constexpr uint8_t kIcmpTimeExceeded = 11;

inline constexpr uint8_t kIcmpCodeTtlExceeded = 0;
inline constexpr uint8_t kIcmpCodeHostUnreachable = 1;

struct IcmpHeader {
  uint8_t type = 0;
  uint8_t code = 0;
  uint16_t checksum = 0;
  uint32_t rest = 0;  // unused/identifier field

  static std::optional<IcmpHeader> Parse(std::span<const uint8_t> data);
  // Serializes and computes the checksum over `message` (header + payload);
  // `message` must alias the 8-byte header at its start.
  void WriteWithChecksum(std::span<uint8_t> message);
};

// Builds the RFC 792 error for `original`: an IP/ICMP packet from
// `router_ip` back to the original's source, quoting the offending IP
// header plus the first 8 payload bytes. Returns nullopt if the original
// cannot be parsed (never ICMP-about-ICMP errors either).
std::optional<Packet> BuildIcmpError(uint8_t type, uint8_t code, const Packet& original,
                                     uint32_t router_ip);

// Answers an ICMP echo request addressed to the router: same payload and
// identifier, addresses swapped, fresh TTL and checksums. Nullopt if
// `request` is not an echo request.
std::optional<Packet> BuildEchoReply(const Packet& request);

}  // namespace npr

#endif  // SRC_NET_ICMP_H_
