// Pooled, refcounted frame buffers for the packet data path.
//
// A FrameBuf is a header + trailing byte storage, carved from slab-allocated
// arenas and recycled through intrusive per-size-class free lists, so the
// steady-state data path performs no heap allocation per packet. Packet
// (src/net/packet.h) is a refcounted view over one FrameBuf; the last view
// to go away returns the buffer to its pool (or frees it, for one-off
// heap-backed buffers used by tests and control paths).
//
// Pools are single-threaded by design: each MacPort owns one, and pooled
// frames never leave the port (MacPort::TxAccept converts to a heap-backed
// buffer before handing frames to the sink). The refcount itself is atomic
// so heap-backed buffers may cross shard threads in the parallel cluster.

#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace npr {

class PacketPool;

// Header preceding the frame bytes. Allocated as
//   ::operator new(sizeof(FrameBuf) + capacity)
// with the payload starting immediately after the header.
struct FrameBuf {
  PacketPool* pool = nullptr;   // null: one-off heap buffer
  FrameBuf* next_free = nullptr;
  std::atomic<uint32_t> refcount{0};
  uint32_t capacity = 0;  // payload bytes available
  uint32_t len = 0;       // payload bytes in use (the frame length)
  uint8_t size_class = 0;

  uint8_t* data() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* data() const { return reinterpret_cast<const uint8_t*>(this + 1); }

  void Ref() { refcount.fetch_add(1, std::memory_order_relaxed); }
  // Returns the buffer to its pool (or the heap) when the last ref drops.
  void Unref();
};

// Slab-classed arena of FrameBufs. Three size classes cover the MAC's
// world: minimum frames (64 B), full MTU frames (1518 B), and jumbo room
// for reassembly overflow. Acquire picks the smallest class that fits and
// grows the backing arena a slab at a time; Release pushes onto that
// class's intrusive free list.
class PacketPool {
 public:
  static constexpr uint32_t kClassBytes[3] = {64, 1518, 9216};
  static constexpr int kNumClasses = 3;
  static constexpr int kSlabFrames = 64;  // buffers added per slab grow

  PacketPool() = default;
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns a buffer with refcount 1, len = bytes, from the smallest class
  // that fits (contents NOT zeroed), or nullptr when bytes exceeds the
  // jumbo class or a configured cap is exhausted.
  FrameBuf* TryAcquire(uint32_t bytes);

  // One-off heap-backed buffer (pool == nullptr), refcount 1. Used for the
  // Packet(std::vector) compatibility path and MakeOwned copies that leave
  // the pool's thread. Any size.
  static FrameBuf* AcquireHeap(uint32_t bytes);

  // Called by FrameBuf::Unref; not for direct use.
  void Release(FrameBuf* buf);

  // Caps the total buffers per size class (0 = unlimited, the default).
  // Exhaustion tests set a small cap so TryAcquire can fail gracefully.
  void set_max_frames_per_class(uint32_t n) { max_frames_per_class_ = n; }

  // --- ledger ---
  uint64_t acquires() const { return acquires_; }
  uint64_t releases() const { return releases_; }
  uint64_t outstanding() const { return acquires_ - releases_; }
  uint64_t high_water() const { return high_water_; }
  uint64_t exhausted() const { return exhausted_; }
  uint64_t slabs_allocated() const { return slabs_.size(); }

 private:
  FrameBuf* free_head_[kNumClasses] = {nullptr, nullptr, nullptr};
  uint32_t frames_in_class_[kNumClasses] = {0, 0, 0};
  uint32_t max_frames_per_class_ = 0;
  std::vector<void*> slabs_;

  uint64_t acquires_ = 0;
  uint64_t releases_ = 0;
  uint64_t high_water_ = 0;
  uint64_t exhausted_ = 0;

  bool GrowClass(int cls);
};

}  // namespace npr

#endif  // SRC_NET_PACKET_POOL_H_
