#include "src/net/trace.h"

#include <cstdio>
#include <sstream>

#include "src/net/tcp.h"

namespace npr {
namespace {

const char* ProtoName(uint8_t proto) {
  switch (proto) {
    case kIpProtoTcp:
      return "tcp";
    case kIpProtoUdp:
      return "udp";
    case kIpProtoIcmp:
      return "icmp";
    default:
      return "ip";
  }
}

std::optional<uint8_t> ProtoFromName(const std::string& name) {
  if (name == "tcp") {
    return kIpProtoTcp;
  }
  if (name == "udp") {
    return kIpProtoUdp;
  }
  if (name == "icmp") {
    return kIpProtoIcmp;
  }
  if (name == "ip") {
    return 253;  // experimental
  }
  return std::nullopt;
}

}  // namespace

std::string TraceRecord::Serialize() const {
  char buf[160];
  std::string flags;
  if (spec.protocol == kIpProtoTcp) {
    if (spec.tcp_flags & kTcpFlagSyn) {
      flags += 'S';
    }
    if (spec.tcp_flags & kTcpFlagAck) {
      flags += 'A';
    }
    if (spec.tcp_flags & kTcpFlagFin) {
      flags += 'F';
    }
    if (spec.tcp_flags & kTcpFlagRst) {
      flags += 'R';
    }
  }
  if (flags.empty()) {
    flags = "-";
  }
  std::snprintf(buf, sizeof(buf), "%.3f %s %s %s %u %u %zu %s",
                static_cast<double>(at) / static_cast<double>(kPsPerUs),
                Ipv4ToString(spec.src_ip).c_str(), Ipv4ToString(spec.dst_ip).c_str(),
                ProtoName(spec.protocol), spec.src_port, spec.dst_port, spec.frame_bytes,
                flags.c_str());
  return buf;
}

std::optional<TraceRecord> TraceRecord::Parse(const std::string& line) {
  std::istringstream in(line);
  double time_us = 0;
  std::string src, dst, proto, flags = "-";
  unsigned sport = 0, dport = 0;
  size_t bytes = 0;
  if (!(in >> time_us >> src >> dst >> proto >> sport >> dport >> bytes)) {
    return std::nullopt;
  }
  in >> flags;  // optional

  TraceRecord record;
  record.at = static_cast<SimTime>(time_us * static_cast<double>(kPsPerUs));
  record.spec.src_ip = Ipv4FromString(src);
  record.spec.dst_ip = Ipv4FromString(dst);
  auto p = ProtoFromName(proto);
  if (!p || record.spec.dst_ip == 0) {
    return std::nullopt;
  }
  record.spec.protocol = *p;
  record.spec.src_port = static_cast<uint16_t>(sport);
  record.spec.dst_port = static_cast<uint16_t>(dport);
  record.spec.frame_bytes = bytes;
  record.spec.tcp_flags = 0;
  for (char c : flags) {
    switch (c) {
      case 'S':
        record.spec.tcp_flags |= kTcpFlagSyn;
        break;
      case 'A':
        record.spec.tcp_flags |= kTcpFlagAck;
        break;
      case 'F':
        record.spec.tcp_flags |= kTcpFlagFin;
        break;
      case 'R':
        record.spec.tcp_flags |= kTcpFlagRst;
        break;
      default:
        break;
    }
  }
  if (record.spec.tcp_flags == 0) {
    record.spec.tcp_flags = kTcpFlagAck;
  }
  return record;
}

TraceParseResult ParseTrace(const std::string& text) {
  TraceParseResult result;
  std::istringstream in(text);
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) {
      raw.resize(comment);
    }
    if (raw.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    auto record = TraceRecord::Parse(raw);
    if (!record) {
      result.error = "line " + std::to_string(number) + ": unparseable record";
      return result;
    }
    result.records.push_back(*record);
  }
  result.ok = true;
  return result;
}

void TraceRecorder::Record(const Packet& packet, SimTime now) {
  auto ip = Ipv4Header::Parse(packet.l3());
  if (!ip) {
    return;
  }
  TraceRecord record;
  record.at = now;
  record.spec.src_ip = ip->src;
  record.spec.dst_ip = ip->dst;
  record.spec.protocol = ip->protocol;
  record.spec.frame_bytes = packet.size();
  if (ip->protocol == kIpProtoTcp) {
    // The packet may be const elsewhere; parse from the const view.
    auto l4 = packet.l3().subspan(ip->header_bytes());
    if (auto tcp = TcpHeader::Parse(l4)) {
      record.spec.src_port = tcp->src_port;
      record.spec.dst_port = tcp->dst_port;
      record.spec.tcp_flags = tcp->flags;
    }
  }
  records_.push_back(record);
}

std::string TraceRecorder::Serialize() const {
  std::string out = "# time_us src dst proto sport dport bytes flags\n";
  for (const auto& record : records_) {
    out += record.Serialize();
    out += '\n';
  }
  return out;
}

int TraceReplayer::Replay(const std::vector<TraceRecord>& records) {
  int scheduled = 0;
  for (const auto& record : records) {
    if (record.at < engine_.now()) {
      continue;
    }
    engine_.Schedule(record.at, [this, spec = record.spec] {
      Packet packet = BuildPacket(spec);
      packet.set_arrival_port(port_->id());
      packet.set_created(engine_.now());
      packet.set_id(static_cast<uint32_t>(0x7a000000u + injected_));
      ++injected_;
      port_->InjectFromWire(std::move(packet));
    });
    ++scheduled;
  }
  return scheduled;
}

}  // namespace npr
