// Abstract MAC-RX admission hooks (overload governor).
//
// The receiving MAC must be able to shed load *before* a frame consumes
// port memory or an input context — receive-livelock mitigation starts at
// the earliest possible point — and must be able to recognize control
// traffic and enqueue it ahead of data. The OverloadGovernor lives in
// src/core (it needs router-wide state), but npr_net cannot depend on
// npr_core (which links against it), so the MacPort consults this minimal
// interface instead; Router::SetGovernor wires the concrete governor onto
// every port. A null pointer (the default) admits everything — the
// zero-overhead configuration, bit-identical to a build without the
// subsystem.

#ifndef SRC_NET_RX_GOVERNOR_H_
#define SRC_NET_RX_GOVERNOR_H_

#include <cstddef>
#include <cstdint>

namespace npr {

class Packet;

// What the governor decided about one fully received frame. Each drop
// verdict names the degradation-ladder stage responsible, so every shed
// packet lands in a distinct counter (silent drops violate
// RouterInvariants' MAC accounting).
enum class RxVerdict : uint8_t {
  kAccept = 0,      // admit normally (tail-drop rules still apply)
  kAcceptPriority,  // control frame: enqueue ahead of data, never shed
  kDropRed,         // stage 1: RED-style probabilistic early drop
  kDropPolice,      // stage 2: heavy-hitter per-flow policing
  kDropQuench,      // stage 4: hard shed with source-quench accounting
};

class RxGovernorHooks {
 public:
  virtual ~RxGovernorHooks() = default;

  // Consulted once per frame that survived wire-level faults, before it is
  // segmented into MPs. `rx_backlog_mps` is the port's current receive
  // backlog (the RED congestion signal). Implementations must only inspect
  // the packet and account — never mutate port state inline.
  virtual RxVerdict AdmitFrame(uint8_t port, const Packet& packet,
                               size_t rx_backlog_mps) = 0;
};

}  // namespace npr

#endif  // SRC_NET_RX_GOVERNOR_H_
