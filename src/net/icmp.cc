#include "src/net/icmp.h"

#include <algorithm>

#include "src/net/checksum.h"
#include "src/net/wire.h"

namespace npr {

std::optional<IcmpHeader> IcmpHeader::Parse(std::span<const uint8_t> data) {
  if (data.size() < 8) {
    return std::nullopt;
  }
  IcmpHeader h;
  h.type = data[0];
  h.code = data[1];
  h.checksum = ReadBe16(data, 2);
  h.rest = ReadBe32(data, 4);
  return h;
}

void IcmpHeader::WriteWithChecksum(std::span<uint8_t> message) {
  message[0] = type;
  message[1] = code;
  WriteBe16(message, 2, 0);
  WriteBe32(message, 4, rest);
  checksum = InetChecksum(message);
  WriteBe16(message, 2, checksum);
}

std::optional<Packet> BuildIcmpError(uint8_t type, uint8_t code, const Packet& original,
                                     uint32_t router_ip) {
  auto orig_ip = Ipv4Header::Parse(original.l3());
  if (!orig_ip || orig_ip->src == 0) {
    return std::nullopt;
  }
  // RFC 1812 §4.3.2.7: never generate errors about ICMP errors.
  if (orig_ip->protocol == kIpProtoIcmp) {
    auto icmp = IcmpHeader::Parse(original.l3().subspan(orig_ip->header_bytes()));
    if (icmp && icmp->type != kIcmpEchoRequest && icmp->type != kIcmpEchoReply) {
      return std::nullopt;
    }
  }

  // Quote: offending IP header + first 8 payload bytes.
  const size_t quote_bytes =
      std::min(original.l3().size(), orig_ip->header_bytes() + 8);
  const size_t icmp_bytes = 8 + quote_bytes;
  const size_t frame_bytes =
      std::max<size_t>(kEthMinFrame, kEthHeaderBytes + kIpv4MinHeaderBytes + icmp_bytes);

  std::vector<uint8_t> frame(frame_bytes, 0);
  EthernetHeader eth;
  eth.src = PortMac(0);  // rewritten at egress
  eth.dst = PortMac(0);
  eth.Write(frame);

  const size_t l3_off = kEthHeaderBytes;
  const size_t l4_off = l3_off + kIpv4MinHeaderBytes;
  std::span<uint8_t> message(frame.data() + l4_off, icmp_bytes);
  std::copy_n(original.l3().begin(), quote_bytes, message.begin() + 8);
  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  icmp.WriteWithChecksum(message);

  Ipv4Header ip;
  ip.protocol = kIpProtoIcmp;
  ip.ttl = 64;
  ip.src = router_ip;
  ip.dst = orig_ip->src;
  ip.total_length = static_cast<uint16_t>(frame_bytes - kEthHeaderBytes);
  ip.Write(std::span<uint8_t>(frame.data() + l3_off, frame.size() - l3_off));

  Packet packet(std::move(frame));
  packet.set_id(original.id() ^ 0x80000000u);
  return packet;
}

std::optional<Packet> BuildEchoReply(const Packet& request) {
  auto ip = Ipv4Header::Parse(request.l3());
  if (!ip || ip->protocol != kIpProtoIcmp) {
    return std::nullopt;
  }
  auto icmp_bytes = request.l3().subspan(ip->header_bytes());
  auto icmp = IcmpHeader::Parse(icmp_bytes);
  if (!icmp || icmp->type != kIcmpEchoRequest) {
    return std::nullopt;
  }

  Packet reply(std::vector<uint8_t>(request.bytes().begin(), request.bytes().end()));
  auto l3 = reply.l3();
  auto reply_ip = *Ipv4Header::Parse(l3);
  std::swap(reply_ip.src, reply_ip.dst);
  reply_ip.ttl = 64;
  reply_ip.Write(l3);

  auto reply_icmp_bytes = l3.subspan(reply_ip.header_bytes());
  IcmpHeader reply_icmp = *icmp;
  reply_icmp.type = kIcmpEchoReply;
  // WriteWithChecksum rewrites the 8-byte header and checksums the whole
  // message (payload already copied).
  reply_icmp.WriteWithChecksum(reply_icmp_bytes);
  reply.set_id(request.id() ^ 0x40000000u);
  return reply;
}

}  // namespace npr
