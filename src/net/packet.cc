#include "src/net/packet.h"

#include <algorithm>
#include <cstring>

#include "src/net/tcp.h"
#include "src/net/udp.h"

namespace npr {

Packet::Packet(std::vector<uint8_t> frame) {
  if (frame.empty()) {
    return;
  }
  buf_ = PacketPool::AcquireHeap(static_cast<uint32_t>(frame.size()));
  std::memcpy(buf_->data(), frame.data(), frame.size());
}

void Packet::MakeOwned() {
  if (buf_ == nullptr || buf_->pool == nullptr) {
    return;
  }
  FrameBuf* owned = PacketPool::AcquireHeap(buf_->len);
  std::memcpy(owned->data(), buf_->data(), buf_->len);
  buf_->Unref();
  buf_ = owned;
}

std::span<uint8_t> Packet::l4() {
  auto ip = l3();
  auto header = Ipv4Header::Parse(ip);
  if (!header) {
    return {};
  }
  return ip.subspan(header->header_bytes());
}

void BuildFrameInto(const PacketSpec& spec, std::span<uint8_t> frame) {
  EthernetHeader eth;
  eth.dst = spec.eth_dst;
  eth.src = spec.eth_src;
  eth.ethertype = kEtherTypeIpv4;
  eth.Write(frame);

  Ipv4Header ip;
  ip.tos = 0;
  ip.ttl = spec.ttl;
  ip.protocol = spec.protocol;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.options = spec.ip_options;
  // Options must be padded to a multiple of 4.
  while (ip.options.size() % 4 != 0) {
    ip.options.push_back(0);  // EOL padding
  }
  ip.total_length = static_cast<uint16_t>(frame.size() - kEthHeaderBytes);

  const size_t l3_off = kEthHeaderBytes;
  const size_t l4_off = l3_off + kIpv4MinHeaderBytes + ip.options.size();
  std::span<uint8_t> l4(frame.data() + l4_off, frame.size() - l4_off);

  // Deterministic payload pattern for end-to-end integrity checks.
  const size_t transport_header =
      spec.protocol == kIpProtoTcp ? kTcpMinHeaderBytes
                                   : (spec.protocol == kIpProtoUdp ? kUdpHeaderBytes : 0);
  for (size_t i = transport_header; i < l4.size(); ++i) {
    l4[i] = static_cast<uint8_t>((spec.dst_ip + spec.dst_port + i) & 0xff);
  }

  if (spec.protocol == kIpProtoTcp && l4.size() >= kTcpMinHeaderBytes) {
    TcpHeader tcp;
    tcp.src_port = spec.src_port;
    tcp.dst_port = spec.dst_port;
    tcp.seq = spec.tcp_seq;
    tcp.ack = spec.tcp_ack;
    tcp.flags = spec.tcp_flags;
    tcp.window = 65535;
    tcp.WriteWithChecksum(l4, spec.src_ip, spec.dst_ip);
  } else if (spec.protocol == kIpProtoUdp && l4.size() >= kUdpHeaderBytes) {
    UdpHeader udp;
    udp.src_port = spec.src_port;
    udp.dst_port = spec.dst_port;
    udp.length = static_cast<uint16_t>(l4.size());
    udp.checksum = 0;  // optional in IPv4; generators leave it off
    udp.Write(l4);
  }

  ip.Write(std::span<uint8_t>(frame.data() + l3_off, frame.size() - l3_off));
}

Packet BuildPacket(const PacketSpec& spec) {
  FrameBuf* buf = PacketPool::AcquireHeap(static_cast<uint32_t>(ClampedFrameBytes(spec)));
  std::memset(buf->data(), 0, buf->len);
  BuildFrameInto(spec, std::span<uint8_t>(buf->data(), buf->len));
  return Packet::Adopt(buf);
}

std::span<const uint8_t> MpCursor::Next(MpTag& tag) {
  const size_t off = i_ * 64;
  const size_t len = std::min<size_t>(64, bytes_.size() - off);
  tag.port = port_;
  tag.sop = i_ == 0;
  tag.eop = i_ == n_ - 1;
  tag.bytes = static_cast<uint16_t>(len);
  tag.packet_id = packet_id_;
  ++i_;
  return bytes_.subspan(off, len);
}

bool MpCursor::CopyNext(Mp& out) {
  if (done()) {
    return false;
  }
  const auto span = Next(out.tag);
  std::memcpy(out.data.data(), span.data(), span.size());
  if (span.size() < out.data.size()) {
    std::memset(out.data.data() + span.size(), 0, out.data.size() - span.size());
  }
  return true;
}

std::vector<Mp> SegmentIntoMps(const Packet& packet, uint8_t port) {
  std::vector<Mp> mps(packet.mp_count());
  MpCursor cursor(packet, port);
  for (Mp& mp : mps) {
    cursor.CopyNext(mp);
  }
  return mps;
}

MpReassembler::~MpReassembler() {
  if (partial_ != nullptr) {
    partial_->Unref();
  }
}

void MpReassembler::EnsureRoom(uint32_t need) {
  if (partial_ != nullptr && need <= partial_->capacity) {
    return;
  }
  // Grow: pooled jumbo first, heap as the backstop. Start MTU-sized.
  FrameBuf* grown = pool_ != nullptr ? pool_->TryAcquire(need) : nullptr;
  if (grown == nullptr) {
    grown = PacketPool::AcquireHeap(need < kEthMaxFrame ? kEthMaxFrame : need);
  }
  if (partial_ != nullptr) {
    std::memcpy(grown->data(), partial_->data(), offset_);
    partial_->Unref();
  }
  partial_ = grown;
}

std::optional<Packet> MpReassembler::Accept(const Mp& mp) {
  if (mp.tag.sop) {
    if (in_packet_) {
      ++protocol_errors_;  // previous packet never finished
    }
    if (partial_ != nullptr) {
      partial_->Unref();
      partial_ = nullptr;
    }
    offset_ = 0;
    in_packet_ = true;
    first_tag_ = mp.tag;
    EnsureRoom(kEthMaxFrame);
  } else if (!in_packet_) {
    ++protocol_errors_;
    return std::nullopt;
  }
  EnsureRoom(offset_ + mp.tag.bytes);
  std::memcpy(partial_->data() + offset_, mp.data.data(), mp.tag.bytes);
  offset_ += mp.tag.bytes;
  if (!mp.tag.eop) {
    return std::nullopt;
  }
  in_packet_ = false;
  partial_->len = offset_;
  Packet packet = Packet::Adopt(partial_);
  partial_ = nullptr;
  packet.set_id(first_tag_.packet_id);
  return packet;
}

}  // namespace npr
