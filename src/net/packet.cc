#include "src/net/packet.h"

#include <algorithm>
#include <cstring>

#include "src/net/tcp.h"
#include "src/net/udp.h"

namespace npr {

std::span<uint8_t> Packet::l4() {
  auto ip = l3();
  auto header = Ipv4Header::Parse(ip);
  if (!header) {
    return {};
  }
  return ip.subspan(header->header_bytes());
}

Packet BuildPacket(const PacketSpec& spec) {
  const size_t frame_bytes = std::clamp<size_t>(spec.frame_bytes, kEthMinFrame, kEthMaxFrame);
  std::vector<uint8_t> frame(frame_bytes, 0);

  EthernetHeader eth;
  eth.dst = spec.eth_dst;
  eth.src = spec.eth_src;
  eth.ethertype = kEtherTypeIpv4;
  eth.Write(frame);

  Ipv4Header ip;
  ip.tos = 0;
  ip.ttl = spec.ttl;
  ip.protocol = spec.protocol;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.options = spec.ip_options;
  // Options must be padded to a multiple of 4.
  while (ip.options.size() % 4 != 0) {
    ip.options.push_back(0);  // EOL padding
  }
  ip.total_length = static_cast<uint16_t>(frame_bytes - kEthHeaderBytes);

  const size_t l3_off = kEthHeaderBytes;
  const size_t l4_off = l3_off + kIpv4MinHeaderBytes + ip.options.size();
  std::span<uint8_t> l4(frame.data() + l4_off, frame.size() - l4_off);

  // Deterministic payload pattern for end-to-end integrity checks.
  const size_t transport_header =
      spec.protocol == kIpProtoTcp ? kTcpMinHeaderBytes
                                   : (spec.protocol == kIpProtoUdp ? kUdpHeaderBytes : 0);
  for (size_t i = transport_header; i < l4.size(); ++i) {
    l4[i] = static_cast<uint8_t>((spec.dst_ip + spec.dst_port + i) & 0xff);
  }

  if (spec.protocol == kIpProtoTcp && l4.size() >= kTcpMinHeaderBytes) {
    TcpHeader tcp;
    tcp.src_port = spec.src_port;
    tcp.dst_port = spec.dst_port;
    tcp.seq = spec.tcp_seq;
    tcp.ack = spec.tcp_ack;
    tcp.flags = spec.tcp_flags;
    tcp.window = 65535;
    tcp.WriteWithChecksum(l4, spec.src_ip, spec.dst_ip);
  } else if (spec.protocol == kIpProtoUdp && l4.size() >= kUdpHeaderBytes) {
    UdpHeader udp;
    udp.src_port = spec.src_port;
    udp.dst_port = spec.dst_port;
    udp.length = static_cast<uint16_t>(l4.size());
    udp.checksum = 0;  // optional in IPv4; generators leave it off
    udp.Write(l4);
  }

  ip.Write(std::span<uint8_t>(frame.data() + l3_off, frame.size() - l3_off));
  return Packet(std::move(frame));
}

std::vector<Mp> SegmentIntoMps(const Packet& packet, uint8_t port) {
  std::vector<Mp> mps;
  const auto bytes = packet.bytes();
  const size_t n = packet.mp_count();
  mps.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Mp mp;
    const size_t off = i * 64;
    const size_t len = std::min<size_t>(64, bytes.size() - off);
    std::memcpy(mp.data.data(), bytes.data() + off, len);
    mp.tag.port = port;
    mp.tag.sop = i == 0;
    mp.tag.eop = i == n - 1;
    mp.tag.bytes = static_cast<uint16_t>(len);
    mp.tag.packet_id = packet.id();
    mps.push_back(mp);
  }
  return mps;
}

std::optional<Packet> MpReassembler::Accept(const Mp& mp) {
  if (mp.tag.sop) {
    if (in_packet_) {
      ++protocol_errors_;  // previous packet never finished
    }
    partial_.clear();
    in_packet_ = true;
    first_tag_ = mp.tag;
  } else if (!in_packet_) {
    ++protocol_errors_;
    return std::nullopt;
  }
  partial_.insert(partial_.end(), mp.data.begin(), mp.data.begin() + mp.tag.bytes);
  if (!mp.tag.eop) {
    return std::nullopt;
  }
  in_packet_ = false;
  Packet packet(std::move(partial_));
  partial_ = {};
  packet.set_id(first_tag_.packet_id);
  return packet;
}

}  // namespace npr
