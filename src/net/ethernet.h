// Ethernet II framing.

#ifndef SRC_NET_ETHERNET_H_
#define SRC_NET_ETHERNET_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace npr {

using MacAddr = std::array<uint8_t, 6>;

inline constexpr size_t kEthHeaderBytes = 14;
inline constexpr size_t kEthMinFrame = 64;     // incl. FCS in the standard; we model payload min
inline constexpr size_t kEthMaxFrame = 1518;   // maximal Ethernet frame (§3.2.3)
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeControl = 0x88b5;  // local experimental: control plane

// Per-port MAC address convention used throughout the repo: port p has
// address 02:00:00:00:00:0p (locally administered).
MacAddr PortMac(uint8_t port);
std::string MacToString(const MacAddr& mac);

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  uint16_t ethertype = kEtherTypeIpv4;

  // Parses the first 14 bytes of `frame`; nullopt if too short.
  static std::optional<EthernetHeader> Parse(std::span<const uint8_t> frame);

  // Serializes into the first 14 bytes of `frame` (must be large enough).
  void Write(std::span<uint8_t> frame) const;
};

}  // namespace npr

#endif  // SRC_NET_ETHERNET_H_
