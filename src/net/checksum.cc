#include "src/net/checksum.h"

namespace npr {

uint16_t ChecksumPartial(std::span<const uint8_t> data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(sum);
}

uint16_t InetChecksum(std::span<const uint8_t> data) {
  return static_cast<uint16_t>(~ChecksumPartial(data) & 0xffff);
}

uint16_t ChecksumIncremental16(uint16_t hc, uint16_t old16, uint16_t new16) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
  uint32_t sum = static_cast<uint16_t>(~hc);
  sum += static_cast<uint16_t>(~old16);
  sum += new16;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

}  // namespace npr
