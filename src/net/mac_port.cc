#include "src/net/mac_port.h"

#include <algorithm>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"

namespace npr {

MacPort::MacPort(EventQueue& engine, uint8_t id, double bits_per_sec, size_t rx_buffer_mps)
    : engine_(engine), id_(id), bits_per_sec_(bits_per_sec), rx_buffer_mps_(rx_buffer_mps) {}

SimTime MacPort::WireTime(size_t frame_bytes) const {
  const double bits = static_cast<double>(frame_bytes + kEthWireOverheadBytes) * 8.0;
  return static_cast<SimTime>(bits / bits_per_sec_ * static_cast<double>(kPsPerSec));
}

uint64_t MacPort::pooled_in_flight() const {
  uint64_t n = tx_reassembler_.pooled_partials();
  for (const auto& p : rx_pending_) {
    n += p.pooled() ? 1 : 0;
  }
  for (const auto& t : tx_pending_) {
    n += t.packet.pooled() ? 1 : 0;
  }
  return n;
}

void MacPort::InjectFromWire(Packet packet) {
  SimTime start = std::max(engine_.now(), rx_wire_busy_until_);
  if (fault_ != nullptr) {
    start += fault_->RxStallPs();
  }
  const SimTime done = start + WireTime(packet.size());
  rx_wire_busy_until_ = done;
  rx_pending_.push_back(std::move(packet));
  engine_.ScheduleRaw(
      done, [](void* self) { static_cast<MacPort*>(self)->RxWireDone(); }, this);
}

void MacPort::RxWireDone() {
  Packet p = std::move(rx_pending_.front());
  rx_pending_.pop_front();
  ++rx_offered_;
  if (fault_ != nullptr) {
    size_t keep = 0;
    switch (fault_->OnFrameRx(p.bytes(), &keep)) {
      case FaultInjector::FrameFault::kCrcDrop:
        ++rx_crc_dropped_;
        return;
      case FaultInjector::FrameFault::kTruncate:
        p.Truncate(keep);
        break;
      case FaultInjector::FrameFault::kCorrupt:
      case FaultInjector::FrameFault::kNone:
        break;
    }
  }
  // Governor verdict before the frame consumes port memory (stage-1 RED
  // and friends shed here, ahead of any input-context work).
  RxVerdict verdict = RxVerdict::kAccept;
  if (governor_ != nullptr) {
    verdict = governor_->AdmitFrame(id_, p, rx_mps_.size());
  }
  switch (verdict) {
    case RxVerdict::kDropRed:
      ++gov_red_dropped_;
      NPR_OBS_HOOK(tracer_, Record(SpanPoint::kDropGovRed, p.id(),
                                   static_cast<uint8_t>(kUnitMacBase + id_), id_));
      return;
    case RxVerdict::kDropPolice:
      ++gov_policed_;
      NPR_OBS_HOOK(tracer_, Record(SpanPoint::kDropGovPolice, p.id(),
                                   static_cast<uint8_t>(kUnitMacBase + id_), id_));
      return;
    case RxVerdict::kDropQuench:
      ++gov_quenched_;
      NPR_OBS_HOOK(tracer_, Record(SpanPoint::kDropGovQuench, p.id(),
                                   static_cast<uint8_t>(kUnitMacBase + id_), id_));
      return;
    case RxVerdict::kAccept:
    case RxVerdict::kAcceptPriority:
      break;
  }
  MpCursor cursor(p, id_);
  if (verdict == RxVerdict::kAcceptPriority) {
    // Control carve-out: exempt from tail drop, spliced ahead of every
    // queued data frame. The head of the deque may hold continuation MPs
    // of a frame whose SOP was already claimed — never split that
    // assembly; insert before the first queued SOP instead.
    ++rx_frames_;
    ++rx_priority_frames_;
    NPR_OBS_HOOK(tracer_, Record(SpanPoint::kMacRxFrame, p.id(),
                                 static_cast<uint8_t>(kUnitMacBase + id_), id_));
    size_t at = 0;
    while (at < rx_mps_.size() && !rx_mps_[at].tag.sop) {
      ++at;
    }
    Mp mp;
    while (cursor.CopyNext(mp)) {
      rx_mps_.insert(rx_mps_.begin() + static_cast<ptrdiff_t>(at), mp);
      ++at;
    }
    return;
  }
  if (rx_mps_.size() + cursor.mp_count() > rx_buffer_mps_) {
    ++rx_dropped_;
    return;
  }
  ++rx_frames_;
  NPR_OBS_HOOK(tracer_, Record(SpanPoint::kMacRxFrame, p.id(),
                               static_cast<uint8_t>(kUnitMacBase + id_), id_));
  while (!cursor.done()) {
    rx_mps_.emplace_back();
    cursor.CopyNext(rx_mps_.back());
  }
}

std::optional<Mp> MacPort::RxClaim() {
  if (rx_mps_.empty()) {
    return std::nullopt;
  }
  Mp mp = rx_mps_.front();
  rx_mps_.pop_front();
  ++rx_mps_claimed_;
  return mp;
}

void MacPort::TxAccept(const Mp& mp) {
  ++tx_backlog_mps_;
  auto packet = tx_reassembler_.Accept(mp);
  if (!packet) {
    return;
  }
  const size_t frame_mps = packet->mp_count();
  const SimTime start = std::max(engine_.now(), tx_wire_busy_until_);
  const SimTime done = start + WireTime(packet->size());
  tx_wire_busy_until_ = done;
  ++tx_frames_;
  tx_pending_.push_back(TxPending{std::move(*packet), frame_mps});
  engine_.ScheduleRaw(
      done, [](void* self) { static_cast<MacPort*>(self)->TxWireDone(); }, this);
}

void MacPort::TxWireDone() {
  TxPending t = std::move(tx_pending_.front());
  tx_pending_.pop_front();
  tx_backlog_mps_ -= std::min(t.frame_mps, tx_backlog_mps_);
  NPR_OBS_HOOK(tracer_, Record(SpanPoint::kMacTxFrame, t.packet.id(),
                               static_cast<uint8_t>(kUnitMacBase + id_), id_));
  if (sink_) {
    // Pooled buffers never leave the port: hand the sink a heap-backed
    // copy so it may keep the frame arbitrarily long (or on another shard).
    t.packet.MakeOwned();
    sink_(std::move(t.packet));
  }
}

}  // namespace npr
