#include "src/net/udp.h"

#include "src/net/wire.h"

namespace npr {

std::optional<UdpHeader> UdpHeader::Parse(std::span<const uint8_t> data) {
  if (data.size() < kUdpHeaderBytes) {
    return std::nullopt;
  }
  UdpHeader h;
  h.src_port = ReadBe16(data, 0);
  h.dst_port = ReadBe16(data, 2);
  h.length = ReadBe16(data, 4);
  h.checksum = ReadBe16(data, 6);
  return h;
}

void UdpHeader::Write(std::span<uint8_t> data) const {
  WriteBe16(data, 0, src_port);
  WriteBe16(data, 2, dst_port);
  WriteBe16(data, 4, length);
  WriteBe16(data, 6, checksum);
}

}  // namespace npr
