#include "src/net/packet_pool.h"

#include <algorithm>
#include <new>

namespace npr {
namespace {

int ClassFor(uint32_t bytes) {
  for (int c = 0; c < PacketPool::kNumClasses; ++c) {
    if (bytes <= PacketPool::kClassBytes[c]) {
      return c;
    }
  }
  return -1;
}

}  // namespace

void FrameBuf::Unref() {
  if (refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (pool != nullptr) {
      pool->Release(this);
    } else {
      this->~FrameBuf();
      ::operator delete(this);
    }
  }
}

PacketPool::~PacketPool() {
  for (void* slab : slabs_) {
    ::operator delete(slab);
  }
}

bool PacketPool::GrowClass(int cls) {
  uint32_t want = kSlabFrames;
  if (max_frames_per_class_ != 0) {
    if (frames_in_class_[cls] >= max_frames_per_class_) {
      return false;
    }
    want = std::min<uint32_t>(want, max_frames_per_class_ - frames_in_class_[cls]);
  }
  const size_t stride = sizeof(FrameBuf) + kClassBytes[cls];
  void* slab = ::operator new(stride * want);
  slabs_.push_back(slab);
  for (uint32_t i = 0; i < want; ++i) {
    auto* buf = new (static_cast<char*>(slab) + stride * i) FrameBuf();
    buf->pool = this;
    buf->capacity = kClassBytes[cls];
    buf->size_class = static_cast<uint8_t>(cls);
    buf->next_free = free_head_[cls];
    free_head_[cls] = buf;
  }
  frames_in_class_[cls] += want;
  return true;
}

FrameBuf* PacketPool::TryAcquire(uint32_t bytes) {
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    ++exhausted_;
    return nullptr;
  }
  if (free_head_[cls] == nullptr && !GrowClass(cls)) {
    ++exhausted_;
    return nullptr;
  }
  FrameBuf* buf = free_head_[cls];
  free_head_[cls] = buf->next_free;
  buf->next_free = nullptr;
  buf->len = bytes;
  buf->refcount.store(1, std::memory_order_relaxed);
  ++acquires_;
  if (outstanding() > high_water_) {
    high_water_ = outstanding();
  }
  return buf;
}

FrameBuf* PacketPool::AcquireHeap(uint32_t bytes) {
  void* raw = ::operator new(sizeof(FrameBuf) + bytes);
  auto* buf = new (raw) FrameBuf();
  buf->capacity = bytes;
  buf->len = bytes;
  buf->refcount.store(1, std::memory_order_relaxed);
  return buf;
}

void PacketPool::Release(FrameBuf* buf) {
  buf->next_free = free_head_[buf->size_class];
  free_head_[buf->size_class] = buf;
  ++releases_;
}

}  // namespace npr
