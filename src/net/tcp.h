// TCP header codec (enough for the paper's forwarders: splicing rewrites
// sequence numbers and checksums, the ACK/SYN monitors read flags).

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <optional>
#include <span>

namespace npr {

inline constexpr size_t kTcpMinHeaderBytes = 20;

inline constexpr uint8_t kTcpFlagFin = 0x01;
inline constexpr uint8_t kTcpFlagSyn = 0x02;
inline constexpr uint8_t kTcpFlagRst = 0x04;
inline constexpr uint8_t kTcpFlagPsh = 0x08;
inline constexpr uint8_t kTcpFlagAck = 0x10;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t data_offset = 5;  // 32-bit words
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
  uint16_t urgent = 0;

  size_t header_bytes() const { return static_cast<size_t>(data_offset) * 4; }

  static std::optional<TcpHeader> Parse(std::span<const uint8_t> data);

  // Serializes the fixed header. The checksum field is written as-is;
  // callers that need a valid transport checksum use WriteWithChecksum.
  void Write(std::span<uint8_t> data) const;

  // Serializes and computes the checksum over the IPv4 pseudo-header plus
  // `segment` (header + payload). `data` must alias the start of `segment`.
  void WriteWithChecksum(std::span<uint8_t> segment, uint32_t src_ip, uint32_t dst_ip);
};

}  // namespace npr

#endif  // SRC_NET_TCP_H_
