#include "src/net/ipv4.h"

#include <cstdio>
#include <cstring>

#include "src/net/checksum.h"
#include "src/net/wire.h"

namespace npr {

uint32_t Ipv4FromString(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) {
    return 0;
  }
  return a << 24 | b << 16 | c << 8 | d;
}

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr >> 24, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::optional<Ipv4Header> Ipv4Header::Parse(std::span<const uint8_t> data) {
  if (data.size() < kIpv4MinHeaderBytes) {
    return std::nullopt;
  }
  Ipv4Header h;
  h.version = data[0] >> 4;
  h.ihl = data[0] & 0x0f;
  if (h.version != 4 || h.ihl < 5 || data.size() < h.header_bytes()) {
    return std::nullopt;
  }
  h.tos = data[1];
  h.total_length = ReadBe16(data, 2);
  h.identification = ReadBe16(data, 4);
  h.flags_fragment = ReadBe16(data, 6);
  h.ttl = data[8];
  h.protocol = data[9];
  h.checksum = ReadBe16(data, 10);
  h.src = ReadBe32(data, 12);
  h.dst = ReadBe32(data, 16);
  if (h.ihl > 5) {
    const size_t opt_bytes = h.header_bytes() - kIpv4MinHeaderBytes;
    h.options.assign(data.begin() + kIpv4MinHeaderBytes,
                     data.begin() + kIpv4MinHeaderBytes + static_cast<long>(opt_bytes));
  }
  return h;
}

void Ipv4Header::Write(std::span<uint8_t> data) {
  ihl = static_cast<uint8_t>(5 + options.size() / 4);
  data[0] = static_cast<uint8_t>(version << 4 | ihl);
  data[1] = tos;
  WriteBe16(data, 2, total_length);
  WriteBe16(data, 4, identification);
  WriteBe16(data, 6, flags_fragment);
  data[8] = ttl;
  data[9] = protocol;
  WriteBe16(data, 10, 0);  // checksum computed below
  WriteBe32(data, 12, src);
  WriteBe32(data, 16, dst);
  if (!options.empty()) {
    std::memcpy(data.data() + kIpv4MinHeaderBytes, options.data(), options.size());
  }
  checksum = InetChecksum(data.subspan(0, header_bytes()));
  WriteBe16(data, 10, checksum);
}

bool Ipv4Header::Validate(std::span<const uint8_t> data) {
  if (data.size() < kIpv4MinHeaderBytes) {
    return false;
  }
  const uint8_t version = data[0] >> 4;
  const uint8_t ihl = data[0] & 0x0f;
  if (version != 4 || ihl < 5) {
    return false;
  }
  const size_t header_bytes = static_cast<size_t>(ihl) * 4;
  if (data.size() < header_bytes) {
    return false;
  }
  const uint16_t total_length = ReadBe16(data, 2);
  if (total_length < header_bytes) {
    return false;
  }
  // A correct header checksums (one's-complement) to 0.
  return ChecksumPartial(data.subspan(0, header_bytes)) == 0xffff;
}

bool DecrementTtlInPlace(std::span<uint8_t> ip_header) {
  const uint8_t ttl = ip_header[8];
  if (ttl <= 1) {
    return false;
  }
  // TTL and protocol share a 16-bit checksum word (bytes 8-9).
  const uint16_t old_word = ReadBe16(ip_header, 8);
  ip_header[8] = static_cast<uint8_t>(ttl - 1);
  const uint16_t new_word = ReadBe16(ip_header, 8);
  const uint16_t old_sum = ReadBe16(ip_header, 10);
  WriteBe16(ip_header, 10, ChecksumIncremental16(old_sum, old_word, new_word));
  return true;
}

}  // namespace npr
