// PCAP trace writer.
//
// Captures packets at any point in the simulated router into a standard
// libpcap file (readable by tcpdump/wireshark), with simulated-time
// timestamps. Useful for debugging forwarders: attach one to a MacPort
// sink or call Capture() inside a test harness.

#ifndef SRC_NET_PCAP_WRITER_H_
#define SRC_NET_PCAP_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace npr {

class PcapWriter {
 public:
  // Opens `path` and writes the global header (LINKTYPE_ETHERNET,
  // microsecond timestamps). Check ok() before use.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  // Appends one frame with the given simulated timestamp.
  void Capture(const Packet& packet, SimTime now);

  uint64_t captured() const { return captured_; }

  // Flushes and closes; further captures are ignored.
  void Close();

 private:
  void WriteU32(uint32_t v);
  void WriteU16(uint16_t v);

  std::FILE* file_ = nullptr;
  uint64_t captured_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_PCAP_WRITER_H_
