#include "src/net/ethernet.h"

#include <cstdio>
#include <cstring>

#include "src/net/wire.h"

namespace npr {

MacAddr PortMac(uint8_t port) { return MacAddr{0x02, 0x00, 0x00, 0x00, 0x00, port}; }

std::string MacToString(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3],
                mac[4], mac[5]);
  return buf;
}

std::optional<EthernetHeader> EthernetHeader::Parse(std::span<const uint8_t> frame) {
  if (frame.size() < kEthHeaderBytes) {
    return std::nullopt;
  }
  EthernetHeader h;
  std::memcpy(h.dst.data(), frame.data(), 6);
  std::memcpy(h.src.data(), frame.data() + 6, 6);
  h.ethertype = ReadBe16(frame, 12);
  return h;
}

void EthernetHeader::Write(std::span<uint8_t> frame) const {
  std::memcpy(frame.data(), dst.data(), 6);
  std::memcpy(frame.data() + 6, src.data(), 6);
  WriteBe16(frame, 12, ethertype);
}

}  // namespace npr
