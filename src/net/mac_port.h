// MAC port model (§2.2, §3.1).
//
// The evaluation board has 8 x 100 Mbps + 2 x 1 Gbps Ethernet ports. Each
// receiving MAC serializes the wire (preamble + frame + inter-frame gap),
// splits frames into tagged 64-byte MPs, and buffers them in port memory
// until the input contexts DMA them into the receive FIFO. The transmit
// side reassembles MPs back into frames and paces them onto the wire.
//
// Each port owns a PacketPool: the traffic generator builds RX frames in
// the pool, the TX reassembler assembles frames in the pool, and every
// pooled frame is released inside the port — frames handed to the sink are
// first copied to a one-off heap buffer (Packet::MakeOwned), so pooled
// buffers never outlive the port or cross shard threads.

#ifndef SRC_NET_MAC_PORT_H_
#define SRC_NET_MAC_PORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/net/rx_governor.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace npr {

class FaultInjector;
class Observer;

// Preamble (8) + inter-frame gap (12) per IEEE 802.3; with a 64-byte frame
// this yields the standard 148.8 Kpps maximum on 100 Mbps Ethernet.
inline constexpr size_t kEthWireOverheadBytes = 20;

class MacPort {
 public:
  // `rx_buffer_mps` bounds port receive memory; packets that do not fit are
  // dropped in their entirety (tail drop at the MAC).
  MacPort(EventQueue& engine, uint8_t id, double bits_per_sec, size_t rx_buffer_mps = 512);

  MacPort(const MacPort&) = delete;
  MacPort& operator=(const MacPort&) = delete;

  uint8_t id() const { return id_; }
  double bits_per_sec() const { return bits_per_sec_; }
  // The engine this port's wire events run on — the owning node's shard in
  // a sharded cluster (deferred fabric delivery schedules injections here).
  EventQueue& engine() { return engine_; }

  // The port's frame-buffer pool. TrafficGen acquires RX frames here; the
  // TX reassembler assembles into it.
  PacketPool& pool() { return pool_; }
  const PacketPool& pool() const { return pool_; }

  // --- receive side (wire -> router) ---

  // Offers a frame to the wire. Reception completes (and MPs appear) after
  // wire serialization; back-to-back frames queue behind each other.
  void InjectFromWire(Packet packet);

  // True when at least one received MP waits in port memory (port_rdy(p)).
  bool RxReady() const { return !rx_mps_.empty(); }

  // Claims the next MP for a DMA transfer (removed from port memory).
  std::optional<Mp> RxClaim();

  // --- transmit side (router -> wire) ---

  // True when the MAC can take another MP (bounded transmit buffer; the
  // forwarding code must "keep pace with each port's line speed", §3.1 —
  // the output scheduler skips ports whose MAC is backed up).
  bool TxReady() const { return tx_backlog_mps_ < tx_buffer_mps_; }
  size_t tx_backlog_mps() const { return tx_backlog_mps_; }

  // Accepts one MP from the transmit DMA; on end-of-packet the reassembled
  // frame is paced onto the wire and handed to the sink.
  void TxAccept(const Mp& mp);

  // Receives frames leaving on this port's wire.
  void SetSink(std::function<void(Packet&&)> sink) { sink_ = std::move(sink); }

  // Fault injection: wire-side receive faults (CRC drops, header
  // corruption, truncation, RX stalls).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Observability: stamps frame arrival/departure spans.
  void set_tracer(Observer* tracer) { tracer_ = tracer; }

  // Overload governance: every received frame is offered to the governor
  // before it consumes port memory. Control frames (kAcceptPriority) are
  // exempt from tail drop and spliced ahead of queued data frames — never
  // mid-frame, so partially claimed assemblies stay intact.
  void set_governor(RxGovernorHooks* governor) { governor_ = governor; }

  // --- statistics ---
  // MAC RX accounting (RouterInvariants): every offered frame must land in
  // exactly one of the sinks below —
  //   rx_offered == rx_crc_dropped + rx_dropped + gov_red_dropped
  //               + gov_policed + gov_quenched + rx_frames.
  // (rx_pool_exhausted frames were never offered: the generator could not
  // acquire a buffer, so no frame reached the wire.)
  uint64_t rx_offered() const { return rx_offered_; }
  uint64_t rx_frames() const { return rx_frames_; }
  uint64_t rx_dropped() const { return rx_dropped_; }
  uint64_t rx_crc_dropped() const { return rx_crc_dropped_; }
  uint64_t gov_red_dropped() const { return gov_red_dropped_; }
  uint64_t gov_policed() const { return gov_policed_; }
  uint64_t gov_quenched() const { return gov_quenched_; }
  uint64_t rx_priority_frames() const { return rx_priority_frames_; }
  uint64_t rx_mps_claimed() const { return rx_mps_claimed_; }
  uint64_t tx_frames() const { return tx_frames_; }
  size_t rx_backlog_mps() const { return rx_mps_.size(); }
  size_t rx_buffer_capacity_mps() const { return rx_buffer_mps_; }

  // Frames the source could not build because the pool was capped out.
  uint64_t rx_pool_exhausted() const { return rx_pool_exhausted_; }
  void CountRxPoolExhausted() { ++rx_pool_exhausted_; }

  // Pool-ledger hook (RouterInvariants): pooled frames currently held by
  // this port — in flight on the RX or TX wire, or mid-reassembly. At any
  // event boundary pool().outstanding() must equal this.
  uint64_t pooled_in_flight() const;

 private:
  struct TxPending {
    Packet packet;
    size_t frame_mps;
  };

  SimTime WireTime(size_t frame_bytes) const;
  void RxWireDone();
  void TxWireDone();

  EventQueue& engine_;
  const uint8_t id_;
  const double bits_per_sec_;
  const size_t rx_buffer_mps_;

  // Transmit buffer: 32 MPs (a maximal frame plus headroom).
  const size_t tx_buffer_mps_ = 32;
  size_t tx_backlog_mps_ = 0;
  SimTime rx_wire_busy_until_ = 0;
  SimTime tx_wire_busy_until_ = 0;
  std::deque<Mp> rx_mps_;
  PacketPool pool_;
  // Frames in flight on each wire, in completion order: wire busy times are
  // monotonic, so completions are FIFO and the events carry no payload —
  // a raw callback pops the head (no per-frame heap-boxed closure).
  std::deque<Packet> rx_pending_;
  std::deque<TxPending> tx_pending_;
  MpReassembler tx_reassembler_{&pool_};
  std::function<void(Packet&&)> sink_;
  FaultInjector* fault_ = nullptr;
  Observer* tracer_ = nullptr;
  RxGovernorHooks* governor_ = nullptr;

  uint64_t rx_offered_ = 0;
  uint64_t rx_frames_ = 0;
  uint64_t rx_dropped_ = 0;
  uint64_t rx_crc_dropped_ = 0;
  uint64_t gov_red_dropped_ = 0;
  uint64_t gov_policed_ = 0;
  uint64_t gov_quenched_ = 0;
  uint64_t rx_priority_frames_ = 0;
  uint64_t rx_mps_claimed_ = 0;
  uint64_t tx_frames_ = 0;
  uint64_t rx_pool_exhausted_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_MAC_PORT_H_
