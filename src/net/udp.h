// UDP header codec.

#ifndef SRC_NET_UDP_H_
#define SRC_NET_UDP_H_

#include <cstdint>
#include <optional>
#include <span>

namespace npr {

inline constexpr size_t kUdpHeaderBytes = 8;

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;

  static std::optional<UdpHeader> Parse(std::span<const uint8_t> data);
  void Write(std::span<uint8_t> data) const;
};

}  // namespace npr

#endif  // SRC_NET_UDP_H_
