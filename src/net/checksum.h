// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The router's IP forwarders recompute the header checksum after the TTL
// decrement; the minimal fast-path forwarder uses the incremental form, the
// full IP forwarder recomputes from scratch — both per the paper's
// description of the data plane (§1, §4.4).

#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace npr {

// One's-complement sum of `data` folded to 16 bits (not yet complemented).
uint16_t ChecksumPartial(std::span<const uint8_t> data, uint32_t initial = 0);

// Full Internet checksum of `data` (complemented, ready to store).
uint16_t InetChecksum(std::span<const uint8_t> data);

// RFC 1624 incremental update: given old checksum `hc`, a 16-bit field that
// changed from `old16` to `new16`, returns the new checksum.
uint16_t ChecksumIncremental16(uint16_t hc, uint16_t old16, uint16_t new16);

}  // namespace npr

#endif  // SRC_NET_CHECKSUM_H_
