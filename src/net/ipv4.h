// IPv4 header codec, validation, and forwarding-relevant helpers.

#ifndef SRC_NET_IPV4_H_
#define SRC_NET_IPV4_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace npr {

inline constexpr size_t kIpv4MinHeaderBytes = 20;
inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint8_t kIpProtoOspfLite = 89;  // control-plane protocol number

// Dotted-quad helpers; addresses are host-order uint32 throughout the repo.
uint32_t Ipv4FromString(const std::string& dotted);
std::string Ipv4ToString(uint32_t addr);

struct Ipv4Header {
  uint8_t version = 4;
  uint8_t ihl = 5;  // header length in 32-bit words (>5 means options present)
  uint8_t tos = 0;
  uint16_t total_length = 0;
  uint16_t identification = 0;
  uint16_t flags_fragment = 0;
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoUdp;
  uint16_t checksum = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  std::vector<uint8_t> options;  // raw option bytes, (ihl - 5) * 4 of them

  size_t header_bytes() const { return static_cast<size_t>(ihl) * 4; }
  bool has_options() const { return ihl > 5; }

  // Parses (and bounds-checks) the header at the start of `data`.
  static std::optional<Ipv4Header> Parse(std::span<const uint8_t> data);

  // Serializes into `data` (must hold header_bytes()), computing the
  // checksum field.
  void Write(std::span<uint8_t> data);

  // Validation the router's classifier performs (§4.4): version, length
  // fields, and checksum. Operates on raw bytes.
  static bool Validate(std::span<const uint8_t> data);
};

// In-place fast-path transform on raw bytes: decrement TTL and update the
// checksum incrementally (RFC 1624). Returns false (packet must be dropped
// or sent to an error handler) if the TTL is already 0.
bool DecrementTtlInPlace(std::span<uint8_t> ip_header);

}  // namespace npr

#endif  // SRC_NET_IPV4_H_
