// Workload generator.
//
// Stands in for the paper's traffic sources (four Pentium IIs driving eight
// Kingston KNE100TX NICs at 141 Kpps each, §3.5.1) and for the synthetic
// workloads of §4 (per-flow TCP traffic, SYN floods, exceptional packets
// carrying IP options).

#ifndef SRC_NET_TRAFFIC_GEN_H_
#define SRC_NET_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "src/net/mac_port.h"
#include "src/net/packet.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace npr {

// Address plan used repo-wide: destination 10.<port>.<x>.<y> routes to
// output port <port>; sources are 172.16.<srcport>.<x>.
uint32_t DstIpForPort(uint8_t port, uint16_t low = 1);
uint32_t SrcIpForPort(uint8_t port, uint16_t low = 1);

struct TrafficSpec {
  // Offered load in packets per second (paced deterministically unless
  // `poisson` is set).
  double rate_pps = 141'000;
  bool poisson = false;
  size_t frame_bytes = 64;

  // Destination selection.
  enum class DstPattern {
    kUniformPorts,  // uniform over [0, num_dst_ports)
    kSinglePort,    // everything to single_dst_port (contention workloads)
    kFlows,         // stable per-flow 4-tuples, Zipf-popular
  };
  DstPattern pattern = DstPattern::kUniformPorts;
  int num_dst_ports = 8;
  // Distinct low-octet destinations per port (bounds the route-cache
  // working set; keep <= a few hundred for a warm cache).
  int dst_spread = 64;
  uint8_t single_dst_port = 1;
  int num_flows = 64;
  double zipf_skew = 1.0;

  uint8_t protocol = kIpProtoUdp;
  uint8_t ttl = 64;
  // Transport ports for the uniform/single-port patterns.
  uint16_t src_port = 1024;
  uint16_t dst_port = 80;
  // Fraction of packets that are TCP SYNs (attack traffic for the SYN
  // monitor experiments).
  double syn_fraction = 0.0;
  // Fraction of packets carrying IP options (exceptional path, §3.2).
  double exceptional_fraction = 0.0;

  // --- adversarial modes (overload-governor workloads) ---
  // An adversarial mode overrides the destination pattern above and (for
  // the flood modes) multiplies the offered rate by flood_factor, so the
  // same spec describes both the conforming baseline and the attack.
  enum class Adversarial {
    kNone,
    // Min-size line-rate flood: 64-byte frames at flood_factor * rate_pps,
    // all aimed at single_dst_port, from flood_sources rotating sources —
    // the receive-livelock workload.
    kMinSizeFlood,
    // A handful of elephant flows taking elephant_share of the offered
    // frames, starving the remaining (conforming) sources — the
    // heavy-hitter policing workload.
    kElephantFlows,
    // Square-wave on/off bursts at flood_factor * rate_pps: burst_on_ps of
    // line rate, burst_off_ps of silence — the hysteresis/flap workload.
    kOnOffBurst,
    // Every packet a fresh 4-tuple: no flow locality, cold route cache,
    // maximal per-flow table churn.
    kFlowChurn,
  };
  Adversarial adversarial = Adversarial::kNone;
  double flood_factor = 4.0;
  int flood_sources = 2;
  int elephant_count = 2;
  double elephant_share = 0.9;
  SimTime burst_on_ps = 200 * kPsPerUs;
  SimTime burst_off_ps = 300 * kPsPerUs;
  int churn_spread = 1024;
};

class TrafficGen {
 public:
  // Generates onto `port`'s wire. Packet ids are globally unique across
  // generators via the (source port << 24) prefix.
  TrafficGen(EventQueue& engine, MacPort& port, TrafficSpec spec, uint64_t seed);

  // Emits packets from now until `until` (absolute sim time).
  void Start(SimTime until);

  uint64_t generated() const { return generated_; }

  // FNV-1a over every emitted frame's id and bytes, in emission order. Two
  // generators with the same (spec, seed) produce the same fingerprint —
  // the determinism contract adversarial replay relies on.
  uint64_t fingerprint() const { return fp_; }

 private:
  void EmitOne();
  Packet NextPacket();
  Packet Finish(PacketSpec ps, bool keep_ps_ports = false);

  EventQueue& engine_;
  MacPort& port_;
  TrafficSpec spec_;
  Rng rng_;
  ZipfDistribution flow_popularity_;
  std::vector<PacketSpec> flows_;
  SimTime until_ = 0;
  SimTime gap_ps_ = 0;
  uint64_t generated_ = 0;
  uint64_t fp_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace npr

#endif  // SRC_NET_TRAFFIC_GEN_H_
