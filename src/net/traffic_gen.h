// Workload generator.
//
// Stands in for the paper's traffic sources (four Pentium IIs driving eight
// Kingston KNE100TX NICs at 141 Kpps each, §3.5.1) and for the synthetic
// workloads of §4 (per-flow TCP traffic, SYN floods, exceptional packets
// carrying IP options).

#ifndef SRC_NET_TRAFFIC_GEN_H_
#define SRC_NET_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "src/net/mac_port.h"
#include "src/net/packet.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace npr {

// Address plan used repo-wide: destination 10.<port>.<x>.<y> routes to
// output port <port>; sources are 172.16.<srcport>.<x>.
uint32_t DstIpForPort(uint8_t port, uint16_t low = 1);
uint32_t SrcIpForPort(uint8_t port, uint16_t low = 1);

struct TrafficSpec {
  // Offered load in packets per second (paced deterministically unless
  // `poisson` is set).
  double rate_pps = 141'000;
  bool poisson = false;
  size_t frame_bytes = 64;

  // Destination selection.
  enum class DstPattern {
    kUniformPorts,  // uniform over [0, num_dst_ports)
    kSinglePort,    // everything to single_dst_port (contention workloads)
    kFlows,         // stable per-flow 4-tuples, Zipf-popular
  };
  DstPattern pattern = DstPattern::kUniformPorts;
  int num_dst_ports = 8;
  // Distinct low-octet destinations per port (bounds the route-cache
  // working set; keep <= a few hundred for a warm cache).
  int dst_spread = 64;
  uint8_t single_dst_port = 1;
  int num_flows = 64;
  double zipf_skew = 1.0;

  uint8_t protocol = kIpProtoUdp;
  uint8_t ttl = 64;
  // Transport ports for the uniform/single-port patterns.
  uint16_t src_port = 1024;
  uint16_t dst_port = 80;
  // Fraction of packets that are TCP SYNs (attack traffic for the SYN
  // monitor experiments).
  double syn_fraction = 0.0;
  // Fraction of packets carrying IP options (exceptional path, §3.2).
  double exceptional_fraction = 0.0;
};

class TrafficGen {
 public:
  // Generates onto `port`'s wire. Packet ids are globally unique across
  // generators via the (source port << 24) prefix.
  TrafficGen(EventQueue& engine, MacPort& port, TrafficSpec spec, uint64_t seed);

  // Emits packets from now until `until` (absolute sim time).
  void Start(SimTime until);

  uint64_t generated() const { return generated_; }

 private:
  void EmitOne();
  Packet NextPacket();

  EventQueue& engine_;
  MacPort& port_;
  TrafficSpec spec_;
  Rng rng_;
  ZipfDistribution flow_popularity_;
  std::vector<PacketSpec> flows_;
  SimTime until_ = 0;
  SimTime gap_ps_ = 0;
  uint64_t generated_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_TRAFFIC_GEN_H_
