#include "src/net/tcp.h"

#include <array>

#include "src/net/checksum.h"
#include "src/net/ipv4.h"
#include "src/net/wire.h"

namespace npr {

std::optional<TcpHeader> TcpHeader::Parse(std::span<const uint8_t> data) {
  if (data.size() < kTcpMinHeaderBytes) {
    return std::nullopt;
  }
  TcpHeader h;
  h.src_port = ReadBe16(data, 0);
  h.dst_port = ReadBe16(data, 2);
  h.seq = ReadBe32(data, 4);
  h.ack = ReadBe32(data, 8);
  h.data_offset = data[12] >> 4;
  h.flags = data[13] & 0x3f;
  h.window = ReadBe16(data, 14);
  h.checksum = ReadBe16(data, 16);
  h.urgent = ReadBe16(data, 18);
  if (h.data_offset < 5) {
    return std::nullopt;
  }
  return h;
}

void TcpHeader::Write(std::span<uint8_t> data) const {
  WriteBe16(data, 0, src_port);
  WriteBe16(data, 2, dst_port);
  WriteBe32(data, 4, seq);
  WriteBe32(data, 8, ack);
  data[12] = static_cast<uint8_t>(data_offset << 4);
  data[13] = flags;
  WriteBe16(data, 14, window);
  WriteBe16(data, 16, checksum);
  WriteBe16(data, 18, urgent);
}

void TcpHeader::WriteWithChecksum(std::span<uint8_t> segment, uint32_t src_ip, uint32_t dst_ip) {
  checksum = 0;
  Write(segment);
  WriteBe16(segment, 16, 0);
  // IPv4 pseudo-header: src, dst, zero, protocol, TCP length.
  std::array<uint8_t, 12> pseudo{};
  WriteBe32(pseudo, 0, src_ip);
  WriteBe32(pseudo, 4, dst_ip);
  pseudo[9] = kIpProtoTcp;
  WriteBe16(pseudo, 10, static_cast<uint16_t>(segment.size()));
  uint32_t partial = ChecksumPartial(pseudo);
  partial = ChecksumPartial(segment, partial);
  checksum = static_cast<uint16_t>(~partial & 0xffff);
  WriteBe16(segment, 16, checksum);
}

}  // namespace npr
