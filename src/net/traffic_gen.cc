#include "src/net/traffic_gen.h"

#include <cassert>
#include <cstring>

#include "src/net/tcp.h"

namespace npr {

uint32_t DstIpForPort(uint8_t port, uint16_t low) {
  return 0x0a000000u | static_cast<uint32_t>(port) << 16 | low;
}

uint32_t SrcIpForPort(uint8_t port, uint16_t low) {
  return 0xac100000u | static_cast<uint32_t>(port) << 8 | (low & 0xff);
}

TrafficGen::TrafficGen(EventQueue& engine, MacPort& port, TrafficSpec spec, uint64_t seed)
    : engine_(engine),
      port_(port),
      spec_(spec),
      rng_(seed),
      flow_popularity_(static_cast<size_t>(std::max(1, spec.num_flows)), spec.zipf_skew) {
  assert(spec_.rate_pps > 0);
  // Flood-style adversarial modes offer flood_factor times the nominal
  // rate; the min-size flood additionally pins the frame size, so "attack"
  // is a mode flag on the conforming spec rather than a separate spec.
  double rate = spec_.rate_pps;
  if (spec_.adversarial == TrafficSpec::Adversarial::kMinSizeFlood ||
      spec_.adversarial == TrafficSpec::Adversarial::kOnOffBurst) {
    rate *= std::max(spec_.flood_factor, 1.0);
  }
  if (spec_.adversarial == TrafficSpec::Adversarial::kMinSizeFlood) {
    spec_.frame_bytes = 64;
  }
  gap_ps_ = static_cast<SimTime>(static_cast<double>(kPsPerSec) / rate);

  // Pre-build the flow 4-tuples so per-flow state is stable across packets.
  if (spec_.pattern == TrafficSpec::DstPattern::kFlows) {
    flows_.reserve(static_cast<size_t>(spec_.num_flows));
    for (int f = 0; f < spec_.num_flows; ++f) {
      PacketSpec ps;
      const uint8_t dst_port_num =
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports)));
      ps.src_ip = SrcIpForPort(port_.id(), static_cast<uint16_t>(f + 1));
      ps.dst_ip = DstIpForPort(dst_port_num, static_cast<uint16_t>(f + 1));
      ps.src_port = static_cast<uint16_t>(1024 + f);
      ps.dst_port = static_cast<uint16_t>(80 + (f % 4));
      ps.protocol = kIpProtoTcp;
      ps.eth_src = PortMac(port_.id());
      ps.eth_dst = PortMac(0xfe);  // router's MAC; rewritten on forward
      flows_.push_back(ps);
    }
  }
}

void TrafficGen::Start(SimTime until) {
  until_ = until;
  engine_.ScheduleRaw(engine_.now(), [](void* g) { static_cast<TrafficGen*>(g)->EmitOne(); },
                      this);
}

void TrafficGen::EmitOne() {
  if (engine_.now() >= until_) {
    return;
  }
  if (spec_.adversarial == TrafficSpec::Adversarial::kOnOffBurst) {
    // Square wave: emit only during the on-window; inside an off-window,
    // sleep to the start of the next period (still deterministic — the
    // phase is a pure function of sim time).
    const SimTime period = spec_.burst_on_ps + spec_.burst_off_ps;
    const SimTime phase = engine_.now() % period;
    if (phase >= spec_.burst_on_ps) {
      engine_.ScheduleRaw(engine_.now() + (period - phase),
                          [](void* g) { static_cast<TrafficGen*>(g)->EmitOne(); }, this);
      return;
    }
  }
  Packet packet = NextPacket();
  if (packet.size() > 0) {
    // Fold the frame into the fingerprint before injection (the port may
    // mutate or drop it); id first so reordered identical payloads differ.
    fp_ = (fp_ ^ packet.id()) * 1099511628211ULL;
    for (uint8_t b : packet.bytes()) {
      fp_ = (fp_ ^ b) * 1099511628211ULL;
    }
    port_.InjectFromWire(std::move(packet));
    ++generated_;
  }
  // else: the port's pool was capped out (exhaustion tests) — the frame was
  // never built or offered; keep pacing.
  const SimTime gap = spec_.poisson
                          ? static_cast<SimTime>(rng_.Exponential(static_cast<double>(gap_ps_)))
                          : gap_ps_;
  engine_.ScheduleRaw(engine_.now() + std::max<SimTime>(gap, 1),
                      [](void* g) { static_cast<TrafficGen*>(g)->EmitOne(); }, this);
}

Packet TrafficGen::NextPacket() {
  PacketSpec ps;
  switch (spec_.adversarial) {
    case TrafficSpec::Adversarial::kMinSizeFlood:
    case TrafficSpec::Adversarial::kOnOffBurst: {
      // Flood: everything at one destination port (spread over dst_spread
      // low octets so the route cache still resolves), from a small set of
      // rotating sources — exactly the shape heavy-hitter policing keys on.
      const int nsrc = std::max(1, spec_.flood_sources);
      ps.dst_ip = DstIpForPort(
          spec_.single_dst_port,
          static_cast<uint16_t>(1 + rng_.Uniform(static_cast<uint64_t>(spec_.dst_spread))));
      ps.src_ip = SrcIpForPort(port_.id(),
                               static_cast<uint16_t>(1 + generated_ % static_cast<uint64_t>(nsrc)));
      ps.protocol = spec_.protocol;
      return Finish(ps);
    }
    case TrafficSpec::Adversarial::kElephantFlows: {
      // elephant_share of frames come from elephant_count sources; the rest
      // is the conforming background the governor must keep alive.
      const uint16_t low =
          rng_.Chance(spec_.elephant_share)
              ? static_cast<uint16_t>(
                    1 + rng_.Uniform(static_cast<uint64_t>(std::max(1, spec_.elephant_count))))
              : static_cast<uint16_t>(10 + rng_.Uniform(240));
      const uint8_t dst =
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports)));
      ps.src_ip = SrcIpForPort(port_.id(), low);
      ps.dst_ip = DstIpForPort(
          dst, static_cast<uint16_t>(1 + rng_.Uniform(static_cast<uint64_t>(spec_.dst_spread))));
      ps.protocol = spec_.protocol;
      return Finish(ps);
    }
    case TrafficSpec::Adversarial::kFlowChurn: {
      // A fresh 4-tuple every packet: no locality for the route cache or
      // any per-flow service to latch onto.
      ps.src_ip = SrcIpForPort(port_.id(), static_cast<uint16_t>(1 + generated_ % 250));
      ps.dst_ip = DstIpForPort(
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports))),
          static_cast<uint16_t>(1 + generated_ % static_cast<uint64_t>(std::max(1, spec_.churn_spread))));
      ps.src_port = static_cast<uint16_t>(1024 + generated_ % 60000);
      ps.dst_port = spec_.dst_port;
      ps.protocol = kIpProtoTcp;
      return Finish(ps, /*keep_ps_ports=*/true);
    }
    case TrafficSpec::Adversarial::kNone:
      break;
  }
  switch (spec_.pattern) {
    case TrafficSpec::DstPattern::kUniformPorts: {
      const uint8_t dst =
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports)));
      ps.dst_ip = DstIpForPort(dst, static_cast<uint16_t>(1 + rng_.Uniform(static_cast<uint64_t>(spec_.dst_spread))));
      ps.src_ip = SrcIpForPort(port_.id(), static_cast<uint16_t>(1 + rng_.Uniform(250)));
      ps.protocol = spec_.protocol;
      break;
    }
    case TrafficSpec::DstPattern::kSinglePort: {
      ps.dst_ip = DstIpForPort(spec_.single_dst_port, 1);
      ps.src_ip = SrcIpForPort(port_.id(), 1);
      ps.protocol = spec_.protocol;
      break;
    }
    case TrafficSpec::DstPattern::kFlows: {
      ps = flows_[flow_popularity_.Sample(rng_)];
      // Advance the conversation: sequence/ack numbers move every few
      // packets, so ACK-monitor style services see a realistic mix of
      // fresh and repeated acknowledgments.
      ps.tcp_seq = static_cast<uint32_t>(generated_ * 97);
      ps.tcp_ack = static_cast<uint32_t>(generated_ >> 2) * 1460;
      break;
    }
  }
  return Finish(ps, /*keep_ps_ports=*/spec_.pattern == TrafficSpec::DstPattern::kFlows);
}

// Common tail: ethernet addressing, transport ports, attack fractions,
// frame build, and the globally unique 1-based id.
Packet TrafficGen::Finish(PacketSpec ps, bool keep_ps_ports) {
  ps.eth_src = PortMac(port_.id());
  ps.eth_dst = PortMac(0xfe);
  ps.ttl = spec_.ttl;
  ps.frame_bytes = spec_.frame_bytes;
  if (!keep_ps_ports) {
    ps.src_port = spec_.src_port;
    ps.dst_port = spec_.dst_port;
  }
  if (spec_.syn_fraction > 0 && rng_.Chance(spec_.syn_fraction)) {
    ps.protocol = kIpProtoTcp;
    ps.tcp_flags = kTcpFlagSyn;
    ps.src_port = static_cast<uint16_t>(rng_.Range(1024, 65535));
  }
  if (spec_.exceptional_fraction > 0 && rng_.Chance(spec_.exceptional_fraction)) {
    // Record-route option: classifier diverts these to the slow path.
    ps.ip_options = {0x07, 0x04, 0x04, 0x00};
  }

  // Build the frame in place in the port's pool (no per-packet heap
  // allocation). A null acquire means the pool is capped out: report the
  // empty packet so EmitOne can attribute the loss to rx_pool_exhausted.
  const uint32_t frame_bytes = static_cast<uint32_t>(ClampedFrameBytes(ps));
  FrameBuf* buf = port_.pool().TryAcquire(frame_bytes);
  if (buf == nullptr) {
    port_.CountRxPoolExhausted();
    return Packet();
  }
  std::memset(buf->data(), 0, frame_bytes);
  BuildFrameInto(ps, std::span<uint8_t>(buf->data(), frame_bytes));
  Packet packet = Packet::Adopt(buf);
  // 1-based like the synthetic input path: id 0 means "no packet" to the
  // observability layer's in-flight tracker.
  packet.set_id(static_cast<uint32_t>(port_.id()) << 24 |
                static_cast<uint32_t>((generated_ + 1) & 0xffffff));
  packet.set_arrival_port(port_.id());
  packet.set_created(engine_.now());
  return packet;
}

}  // namespace npr
