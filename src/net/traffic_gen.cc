#include "src/net/traffic_gen.h"

#include <cassert>

#include "src/net/tcp.h"

namespace npr {

uint32_t DstIpForPort(uint8_t port, uint16_t low) {
  return 0x0a000000u | static_cast<uint32_t>(port) << 16 | low;
}

uint32_t SrcIpForPort(uint8_t port, uint16_t low) {
  return 0xac100000u | static_cast<uint32_t>(port) << 8 | (low & 0xff);
}

TrafficGen::TrafficGen(EventQueue& engine, MacPort& port, TrafficSpec spec, uint64_t seed)
    : engine_(engine),
      port_(port),
      spec_(spec),
      rng_(seed),
      flow_popularity_(static_cast<size_t>(std::max(1, spec.num_flows)), spec.zipf_skew) {
  assert(spec_.rate_pps > 0);
  gap_ps_ = static_cast<SimTime>(static_cast<double>(kPsPerSec) / spec_.rate_pps);

  // Pre-build the flow 4-tuples so per-flow state is stable across packets.
  if (spec_.pattern == TrafficSpec::DstPattern::kFlows) {
    flows_.reserve(static_cast<size_t>(spec_.num_flows));
    for (int f = 0; f < spec_.num_flows; ++f) {
      PacketSpec ps;
      const uint8_t dst_port_num =
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports)));
      ps.src_ip = SrcIpForPort(port_.id(), static_cast<uint16_t>(f + 1));
      ps.dst_ip = DstIpForPort(dst_port_num, static_cast<uint16_t>(f + 1));
      ps.src_port = static_cast<uint16_t>(1024 + f);
      ps.dst_port = static_cast<uint16_t>(80 + (f % 4));
      ps.protocol = kIpProtoTcp;
      ps.eth_src = PortMac(port_.id());
      ps.eth_dst = PortMac(0xfe);  // router's MAC; rewritten on forward
      flows_.push_back(ps);
    }
  }
}

void TrafficGen::Start(SimTime until) {
  until_ = until;
  engine_.ScheduleRaw(engine_.now(), [](void* g) { static_cast<TrafficGen*>(g)->EmitOne(); },
                      this);
}

void TrafficGen::EmitOne() {
  if (engine_.now() >= until_) {
    return;
  }
  port_.InjectFromWire(NextPacket());
  ++generated_;
  const SimTime gap = spec_.poisson
                          ? static_cast<SimTime>(rng_.Exponential(static_cast<double>(gap_ps_)))
                          : gap_ps_;
  engine_.ScheduleRaw(engine_.now() + std::max<SimTime>(gap, 1),
                      [](void* g) { static_cast<TrafficGen*>(g)->EmitOne(); }, this);
}

Packet TrafficGen::NextPacket() {
  PacketSpec ps;
  switch (spec_.pattern) {
    case TrafficSpec::DstPattern::kUniformPorts: {
      const uint8_t dst =
          static_cast<uint8_t>(rng_.Uniform(static_cast<uint64_t>(spec_.num_dst_ports)));
      ps.dst_ip = DstIpForPort(dst, static_cast<uint16_t>(1 + rng_.Uniform(static_cast<uint64_t>(spec_.dst_spread))));
      ps.src_ip = SrcIpForPort(port_.id(), static_cast<uint16_t>(1 + rng_.Uniform(250)));
      ps.protocol = spec_.protocol;
      break;
    }
    case TrafficSpec::DstPattern::kSinglePort: {
      ps.dst_ip = DstIpForPort(spec_.single_dst_port, 1);
      ps.src_ip = SrcIpForPort(port_.id(), 1);
      ps.protocol = spec_.protocol;
      break;
    }
    case TrafficSpec::DstPattern::kFlows: {
      ps = flows_[flow_popularity_.Sample(rng_)];
      // Advance the conversation: sequence/ack numbers move every few
      // packets, so ACK-monitor style services see a realistic mix of
      // fresh and repeated acknowledgments.
      ps.tcp_seq = static_cast<uint32_t>(generated_ * 97);
      ps.tcp_ack = static_cast<uint32_t>(generated_ >> 2) * 1460;
      break;
    }
  }
  ps.eth_src = PortMac(port_.id());
  ps.eth_dst = PortMac(0xfe);
  ps.ttl = spec_.ttl;
  ps.frame_bytes = spec_.frame_bytes;
  if (spec_.pattern != TrafficSpec::DstPattern::kFlows) {
    ps.src_port = spec_.src_port;
    ps.dst_port = spec_.dst_port;
  }
  if (spec_.syn_fraction > 0 && rng_.Chance(spec_.syn_fraction)) {
    ps.protocol = kIpProtoTcp;
    ps.tcp_flags = kTcpFlagSyn;
    ps.src_port = static_cast<uint16_t>(rng_.Range(1024, 65535));
  }
  if (spec_.exceptional_fraction > 0 && rng_.Chance(spec_.exceptional_fraction)) {
    // Record-route option: classifier diverts these to the slow path.
    ps.ip_options = {0x07, 0x04, 0x04, 0x00};
  }

  Packet packet = BuildPacket(ps);
  // 1-based like the synthetic input path: id 0 means "no packet" to the
  // observability layer's in-flight tracker.
  packet.set_id(static_cast<uint32_t>(port_.id()) << 24 |
                static_cast<uint32_t>((generated_ + 1) & 0xffffff));
  packet.set_arrival_port(port_.id());
  packet.set_created(engine_.now());
  return packet;
}

}  // namespace npr
