#include "src/net/pcap_writer.h"

namespace npr {
namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond-resolution pcap
constexpr uint32_t kLinkTypeEthernet = 1;

}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return;
  }
  WriteU32(kPcapMagic);
  WriteU16(2);  // version 2.4
  WriteU16(4);
  WriteU32(0);  // thiszone
  WriteU32(0);  // sigfigs
  WriteU32(65535);  // snaplen
  WriteU32(kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() { Close(); }

void PcapWriter::WriteU32(uint32_t v) { std::fwrite(&v, 4, 1, file_); }
void PcapWriter::WriteU16(uint16_t v) { std::fwrite(&v, 2, 1, file_); }

void PcapWriter::Capture(const Packet& packet, SimTime now) {
  if (file_ == nullptr) {
    return;
  }
  const uint64_t usec_total = static_cast<uint64_t>(now / kPsPerUs);
  WriteU32(static_cast<uint32_t>(usec_total / 1'000'000));  // ts_sec
  WriteU32(static_cast<uint32_t>(usec_total % 1'000'000));  // ts_usec
  WriteU32(static_cast<uint32_t>(packet.size()));           // incl_len
  WriteU32(static_cast<uint32_t>(packet.size()));           // orig_len
  std::fwrite(packet.bytes().data(), 1, packet.size(), file_);
  ++captured_;
}

void PcapWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace npr
