// Packet representation, builders, and MAC-packet (MP) segmentation.
//
// A Packet is a refcounted view over a FrameBuf holding a full Ethernet
// frame as real bytes (src/net/packet_pool.h): copying a Packet shares the
// buffer, and the last view returns it to its pool. The MAC hardware splits
// every frame into 64-byte MPs tagged first/intermediate/last/only (§3.1);
// MpCursor/MpReassembler model exactly that without allocating per packet.
// Simulator-side metadata (id, timestamps, arrival port) rides alongside
// the bytes for end-to-end verification and latency measurement.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/ixp/fifo.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/net/packet_pool.h"
#include "src/sim/time.h"

namespace npr {

// One 64-byte MAC-packet plus its MAC tag.
struct Mp {
  std::array<uint8_t, 64> data{};
  MpTag tag;
};

class Packet {
 public:
  Packet() = default;
  // Compatibility path (tests, control plane): copies the bytes into a
  // one-off heap-backed FrameBuf.
  explicit Packet(std::vector<uint8_t> frame);

  // Wraps a buffer that already carries one reference (the result of
  // PacketPool::TryAcquire / AcquireHeap); the Packet now owns that ref.
  static Packet Adopt(FrameBuf* buf) {
    Packet p;
    p.buf_ = buf;
    return p;
  }

  Packet(const Packet& o)
      : buf_(o.buf_), id_(o.id_), arrival_port_(o.arrival_port_), created_(o.created_) {
    if (buf_ != nullptr) {
      buf_->Ref();
    }
  }
  Packet& operator=(const Packet& o) {
    if (this != &o) {
      FrameBuf* old = buf_;
      buf_ = o.buf_;
      if (buf_ != nullptr) {
        buf_->Ref();
      }
      id_ = o.id_;
      arrival_port_ = o.arrival_port_;
      created_ = o.created_;
      if (old != nullptr) {
        old->Unref();
      }
    }
    return *this;
  }
  Packet(Packet&& o) noexcept
      : buf_(o.buf_), id_(o.id_), arrival_port_(o.arrival_port_), created_(o.created_) {
    o.buf_ = nullptr;
  }
  Packet& operator=(Packet&& o) noexcept {
    if (this != &o) {
      FrameBuf* old = buf_;
      buf_ = o.buf_;
      id_ = o.id_;
      arrival_port_ = o.arrival_port_;
      created_ = o.created_;
      o.buf_ = nullptr;
      if (old != nullptr) {
        old->Unref();
      }
    }
    return *this;
  }
  ~Packet() {
    if (buf_ != nullptr) {
      buf_->Unref();
    }
  }

  std::span<uint8_t> bytes() {
    return buf_ != nullptr ? std::span<uint8_t>(buf_->data(), buf_->len) : std::span<uint8_t>();
  }
  std::span<const uint8_t> bytes() const {
    return buf_ != nullptr ? std::span<const uint8_t>(buf_->data(), buf_->len)
                           : std::span<const uint8_t>();
  }
  size_t size() const { return buf_ != nullptr ? buf_->len : 0; }

  // View of the IP header + payload (after the Ethernet header).
  std::span<uint8_t> l3() { return bytes().subspan(kEthHeaderBytes); }
  std::span<const uint8_t> l3() const { return bytes().subspan(kEthHeaderBytes); }
  // View of the transport header + payload; empty if the IP header is bad.
  std::span<uint8_t> l4();

  // Number of MPs the MAC will split this frame into.
  size_t mp_count() const { return (size() + 63) / 64; }

  // Cuts the frame short (wire truncation fault). Always keeps at least the
  // Ethernet header plus one byte so l3() stays a valid view. Mutates the
  // shared buffer; only meaningful before the frame is shared.
  void Truncate(size_t n) {
    const size_t floor = kEthHeaderBytes + 1;
    if (buf_ != nullptr && n < buf_->len) {
      buf_->len = static_cast<uint32_t>(n < floor ? floor : n);
    }
  }

  // True when the frame lives in a (single-threaded, port-owned) pool.
  bool pooled() const { return buf_ != nullptr && buf_->pool != nullptr; }
  // Copies a pooled frame into a one-off heap buffer and drops the pool
  // ref, so the packet may outlive the pool and cross shard threads.
  // MacPort calls this before handing frames to its sink. No-op when the
  // frame is already heap-backed.
  void MakeOwned();

  // --- simulator metadata ---
  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }
  uint8_t arrival_port() const { return arrival_port_; }
  void set_arrival_port(uint8_t p) { arrival_port_ = p; }
  SimTime created() const { return created_; }
  void set_created(SimTime t) { created_ = t; }

 private:
  FrameBuf* buf_ = nullptr;
  uint32_t id_ = 0;
  uint8_t arrival_port_ = 0;
  SimTime created_ = 0;
};

// Declarative packet builder used by traffic generators, tests, examples.
struct PacketSpec {
  MacAddr eth_src = PortMac(0);
  MacAddr eth_dst = PortMac(1);
  uint32_t src_ip = 0x0a000001;  // 10.0.0.1
  uint32_t dst_ip = 0x0a010001;  // 10.1.0.1
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoUdp;
  std::vector<uint8_t> ip_options;  // multiple of 4 bytes; non-empty = exceptional path
  uint16_t src_port = 1024;
  uint16_t dst_port = 80;
  uint8_t tcp_flags = 0x10;  // ACK
  uint32_t tcp_seq = 0;
  uint32_t tcp_ack = 0;
  // Total frame size incl. Ethernet header; padded/clamped to [64, 1518].
  size_t frame_bytes = 64;
};

// The clamped on-wire size BuildPacket/BuildFrameInto will produce.
inline size_t ClampedFrameBytes(const PacketSpec& spec) {
  return spec.frame_bytes < kEthMinFrame
             ? kEthMinFrame
             : (spec.frame_bytes > kEthMaxFrame ? kEthMaxFrame : spec.frame_bytes);
}

// Writes a fully valid frame (correct IP and transport checksums) into a
// caller-provided buffer of exactly ClampedFrameBytes(spec) zeroed bytes.
// TrafficGen uses this to build frames in place in pooled buffers.
void BuildFrameInto(const PacketSpec& spec, std::span<uint8_t> frame);

// Builds a fully valid frame in a heap-backed Packet.
Packet BuildPacket(const PacketSpec& spec);

// Allocation-free MP segmentation: walks a frame 64 bytes at a time,
// yielding the payload span and MAC tag of each MP, as the receiving MAC
// does. The frame must stay alive while the cursor is in use.
class MpCursor {
 public:
  MpCursor(const Packet& packet, uint8_t port)
      : bytes_(packet.bytes()),
        n_((bytes_.size() + 63) / 64),
        packet_id_(packet.id()),
        port_(port) {}

  bool done() const { return i_ >= n_; }
  size_t mp_count() const { return n_; }

  // Returns the next MP's bytes (up to 64) and fills its tag.
  std::span<const uint8_t> Next(MpTag& tag);
  // Copies the next MP into `out`, zero-padding data to 64 bytes.
  bool CopyNext(Mp& out);

 private:
  std::span<const uint8_t> bytes_;
  size_t n_;
  size_t i_ = 0;
  uint32_t packet_id_;
  uint8_t port_;
};

// Compatibility wrapper over MpCursor for tests and tools; the data path
// uses the cursor directly to avoid the per-packet vector.
std::vector<Mp> SegmentIntoMps(const Packet& packet, uint8_t port);

// Rebuilds frames from MPs arriving in order, as the transmitting MAC does.
// One instance per output port. With a pool attached the partial frame is
// assembled directly in a pooled MTU-class buffer (heap fallback when the
// pool is capped out, so reassembly never wedges the TX path).
class MpReassembler {
 public:
  MpReassembler() = default;
  explicit MpReassembler(PacketPool* pool) : pool_(pool) {}
  ~MpReassembler();

  MpReassembler(const MpReassembler&) = delete;
  MpReassembler& operator=(const MpReassembler&) = delete;

  void set_pool(PacketPool* pool) { pool_ = pool; }

  // Consumes one MP; returns the completed packet on eop.
  std::optional<Packet> Accept(const Mp& mp);

  // MPs that arrived out of protocol (e.g. intermediate without sop).
  uint64_t protocol_errors() const { return protocol_errors_; }

  // Pool-ledger hook: 1 while a pooled partial frame is held mid-assembly.
  uint64_t pooled_partials() const {
    return partial_ != nullptr && partial_->pool != nullptr ? 1 : 0;
  }

 private:
  void EnsureRoom(uint32_t need);

  PacketPool* pool_ = nullptr;
  FrameBuf* partial_ = nullptr;
  uint32_t offset_ = 0;
  MpTag first_tag_;
  bool in_packet_ = false;
  uint64_t protocol_errors_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_PACKET_H_
