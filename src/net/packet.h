// Packet representation, builders, and MAC-packet (MP) segmentation.
//
// A Packet owns a full Ethernet frame as real bytes. The MAC hardware
// splits every frame into 64-byte MPs tagged first/intermediate/last/only
// (§3.1); SegmentIntoMps/MpReassembler model exactly that. Simulator-side
// metadata (id, timestamps, arrival port) rides alongside the bytes for
// end-to-end verification and latency measurement.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/ixp/fifo.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/sim/time.h"

namespace npr {

// One 64-byte MAC-packet plus its MAC tag.
struct Mp {
  std::array<uint8_t, 64> data{};
  MpTag tag;
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> frame) : frame_(std::move(frame)) {}

  std::span<uint8_t> bytes() { return frame_; }
  std::span<const uint8_t> bytes() const { return frame_; }
  size_t size() const { return frame_.size(); }

  // View of the IP header + payload (after the Ethernet header).
  std::span<uint8_t> l3() { return std::span<uint8_t>(frame_).subspan(kEthHeaderBytes); }
  std::span<const uint8_t> l3() const {
    return std::span<const uint8_t>(frame_).subspan(kEthHeaderBytes);
  }
  // View of the transport header + payload; empty if the IP header is bad.
  std::span<uint8_t> l4();

  // Number of MPs the MAC will split this frame into.
  size_t mp_count() const { return (frame_.size() + 63) / 64; }

  // Cuts the frame short (wire truncation fault). Always keeps at least the
  // Ethernet header plus one byte so l3() stays a valid view.
  void Truncate(size_t n) {
    const size_t floor = kEthHeaderBytes + 1;
    if (n < frame_.size()) {
      frame_.resize(n < floor ? floor : n);
    }
  }

  // --- simulator metadata ---
  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }
  uint8_t arrival_port() const { return arrival_port_; }
  void set_arrival_port(uint8_t p) { arrival_port_ = p; }
  SimTime created() const { return created_; }
  void set_created(SimTime t) { created_ = t; }

 private:
  std::vector<uint8_t> frame_;
  uint32_t id_ = 0;
  uint8_t arrival_port_ = 0;
  SimTime created_ = 0;
};

// Declarative packet builder used by traffic generators, tests, examples.
struct PacketSpec {
  MacAddr eth_src = PortMac(0);
  MacAddr eth_dst = PortMac(1);
  uint32_t src_ip = 0x0a000001;  // 10.0.0.1
  uint32_t dst_ip = 0x0a010001;  // 10.1.0.1
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoUdp;
  std::vector<uint8_t> ip_options;  // multiple of 4 bytes; non-empty = exceptional path
  uint16_t src_port = 1024;
  uint16_t dst_port = 80;
  uint8_t tcp_flags = 0x10;  // ACK
  uint32_t tcp_seq = 0;
  uint32_t tcp_ack = 0;
  // Total frame size incl. Ethernet header; padded/clamped to [64, 1518].
  size_t frame_bytes = 64;
};

// Builds a fully valid frame (correct IP and transport checksums).
Packet BuildPacket(const PacketSpec& spec);

// Splits a frame into tagged MPs, as the receiving MAC does.
std::vector<Mp> SegmentIntoMps(const Packet& packet, uint8_t port);

// Rebuilds frames from MPs arriving in order, as the transmitting MAC does.
// One instance per output port.
class MpReassembler {
 public:
  // Consumes one MP; returns the completed packet on eop.
  std::optional<Packet> Accept(const Mp& mp);

  // MPs that arrived out of protocol (e.g. intermediate without sop).
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  std::vector<uint8_t> partial_;
  MpTag first_tag_;
  bool in_packet_ = false;
  uint64_t protocol_errors_ = 0;
};

}  // namespace npr

#endif  // SRC_NET_PACKET_H_
