#include "src/obs/cycle_profiler.h"

#include <cstdio>

namespace npr {

const char* WaitClassName(WaitClass w) {
  switch (w) {
    case WaitClass::kDram: return "dram";
    case WaitClass::kSram: return "sram";
    case WaitClass::kScratch: return "scratch";
    case WaitClass::kFifo: return "fifo";
    case WaitClass::kToken: return "token";
    case WaitClass::kMutex: return "mutex";
    case WaitClass::kOther: return "other";
    case WaitClass::kCount: break;
  }
  return "?";
}

uint64_t CycleProfiler::EngineComputeCycles(uint8_t me) const {
  uint64_t total = 0;
  for (int c = 0; c < kMaxContexts; ++c) total += slot(me, static_cast<uint8_t>(c)).compute_cycles;
  return total;
}

uint64_t CycleProfiler::EngineWaitPs(uint8_t me, WaitClass w) const {
  uint64_t total = 0;
  for (int c = 0; c < kMaxContexts; ++c) {
    total += slot(me, static_cast<uint8_t>(c)).wait_ps[static_cast<int>(w)];
  }
  return total;
}

uint64_t CycleProfiler::TotalComputeCycles() const {
  uint64_t total = 0;
  for (int e = 0; e < kMaxEngines; ++e) total += EngineComputeCycles(static_cast<uint8_t>(e));
  return total;
}

uint64_t CycleProfiler::TotalWaitPs(WaitClass w) const {
  uint64_t total = 0;
  for (int e = 0; e < kMaxEngines; ++e) total += EngineWaitPs(static_cast<uint8_t>(e), w);
  return total;
}

std::string CycleProfiler::Report() const {
  std::string out;
  char line[256];
  for (int e = 0; e < kMaxEngines; ++e) {
    const uint64_t compute = EngineComputeCycles(static_cast<uint8_t>(e));
    uint64_t wait_total = 0;
    for (int w = 0; w < kWaitClassCount; ++w) {
      wait_total += EngineWaitPs(static_cast<uint8_t>(e), static_cast<WaitClass>(w));
    }
    if (compute == 0 && wait_total == 0) continue;
    std::snprintf(line, sizeof(line), "me%d: compute=%llu cyc", e,
                  static_cast<unsigned long long>(compute));
    out += line;
    for (int w = 0; w < kWaitClassCount; ++w) {
      const uint64_t ps = EngineWaitPs(static_cast<uint8_t>(e), static_cast<WaitClass>(w));
      if (ps == 0) continue;
      std::snprintf(line, sizeof(line), " %s=%.1fus", WaitClassName(static_cast<WaitClass>(w)),
                    static_cast<double>(ps) / 1e6);
      out += line;
    }
    out += "\n";
  }
  return out;
}

void CycleProfiler::Reset() {
  for (int e = 0; e < kMaxEngines; ++e) {
    for (int c = 0; c < kMaxContexts; ++c) slots_[e][c] = Slot{};
  }
}

}  // namespace npr
