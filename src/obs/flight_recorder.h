// Flight recorder (observability layer).
//
// A fixed-capacity ring of the most recent span records. Recording is
// allocation-free and O(1). When something goes wrong — a RouterInvariants
// violation, a vrp_trap, a lost token — TriggerDump snapshots the ring into
// a dump that tests and humans can inspect. The first dump of a run is kept
// (it is the evidence closest to the root cause); later triggers only count.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/span.h"
#include "src/sim/time.h"

namespace npr {

class FlightRecorder {
 public:
  struct Dump {
    std::string reason;            // what tripped the dump
    uint32_t packet_id = 0;        // faulted packet, 0 if not packet-specific
    SimTime t_ps = 0;              // when the dump was triggered
    std::vector<SpanRecord> records;  // ring contents, oldest first
  };

  explicit FlightRecorder(size_t capacity = 4096);

  // O(1), allocation-free: overwrites the oldest record once full.
  void Record(const SpanRecord& r) {
    ring_[head_] = r;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
  }

  // Snapshots the ring. The first dump is retained; subsequent triggers
  // increment the counter without overwriting the original evidence.
  void TriggerDump(const char* reason, uint32_t packet_id, SimTime now);

  bool has_dump() const { return has_dump_; }
  const Dump& dump() const { return dump_; }
  uint64_t dump_triggers() const { return dump_triggers_; }
  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }

  // Current ring contents, oldest first (for tests and manual inspection).
  std::vector<SpanRecord> Snapshot() const;

  // Renders a dump as text: header plus one line per record.
  static std::string Format(const Dump& dump);

  void Reset();

 private:
  std::vector<SpanRecord> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool has_dump_ = false;
  uint64_t dump_triggers_ = 0;
  Dump dump_;
};

}  // namespace npr

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
