// Observer: the router-wide observability facade.
//
// Bundles the three tentpole pieces — per-packet span tracing, the
// cycle-accounting profiler, and the flight recorder — behind one object
// that Router::SetObserver wires into every hook site. The whole layer is
// compile-time gated: when NPR_OBS_ENABLED is undefined the hook sites
// compile to nothing and the simulation is bit-identical to a build that
// never heard of src/obs.
//
// Record() is the hot path. It never allocates (the ring, the capture
// buffer, and the in-flight tracker are all pre-sized), never schedules
// events, and never touches an Rng, so attaching an observer cannot perturb
// simulated time.

#ifndef SRC_OBS_OBSERVER_H_
#define SRC_OBS_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "src/obs/cycle_profiler.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

// Hook-site helper: expands to nothing when the layer is compiled out, to a
// null-checked call otherwise. `obs` is an Observer*; `stmt` a member call.
#if defined(NPR_OBS_ENABLED)
#define NPR_OBS_HOOK(obs, stmt)        \
  do {                                 \
    if ((obs) != nullptr) (obs)->stmt; \
  } while (0)
#else
#define NPR_OBS_HOOK(obs, stmt) \
  do {                          \
  } while (0)
#endif

namespace npr {

// Which forwarding path a packet took (§3 of the paper): A = pure
// MicroEngine, B = StrongARM exception path, C = Pentium via PCI/I2O.
enum class PathKind : uint8_t { kPathA = 0, kPathB, kPathC, kCount };
inline constexpr int kPathKindCount = static_cast<int>(PathKind::kCount);
const char* PathKindName(PathKind p);

// Pipeline stage boundaries for the per-stage latency histograms.
enum class HopKind : uint8_t {
  kInput = 0,   // ingress -> enqueue (input context residency)
  kQueueWait,   // enqueue -> dequeue (descriptor queue wait)
  kOutput,      // dequeue -> tx complete (output context residency)
  kSaService,   // StrongARM pickup -> verdict (path B service)
  kPeService,   // bridge DMA -> return DMA landed (path C round trip)
  kCount
};
inline constexpr int kHopKindCount = static_cast<int>(HopKind::kCount);
const char* HopKindName(HopKind h);

struct ObserverConfig {
  size_t ring_capacity = 4096;   // flight-recorder depth (span records)
  size_t capture_reserve = 0;    // >0: also append every record to capture()
  size_t tracker_slots = 1 << 14;  // in-flight table capacity (power of two)
};

class Observer {
 public:
  explicit Observer(EventQueue& engine, ObserverConfig cfg = {});

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  // --- hot path ---------------------------------------------------------
  // Stamps one span record at the current simulated time.
  void Record(SpanPoint point, uint32_t packet_id, uint8_t unit, uint16_t arg = 0);

  // Snapshots the flight-recorder ring (first trigger wins).
  void TriggerDump(const char* reason, uint32_t packet_id) {
    recorder_.TriggerDump(reason, packet_id, engine_.now());
  }

  // --- components -------------------------------------------------------
  CycleProfiler& profiler() { return profiler_; }
  const CycleProfiler& profiler() const { return profiler_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  // --- derived views ----------------------------------------------------
  uint64_t records() const { return records_; }
  uint64_t point_count(SpanPoint p) const { return point_counts_[static_cast<int>(p)]; }

  // End-to-end latency (ns) of forwarded packets, split by path taken.
  const Histogram& path_latency(PathKind p) const {
    return path_latency_[static_cast<int>(p)];
  }
  // Per-stage residency (ns).
  const Histogram& hop_latency(HopKind h) const { return hop_latency_[static_cast<int>(h)]; }

  // Packets with an open chain (ingress seen, no erasing terminal yet).
  uint64_t tracker_live() const { return tracker_live_; }
  // Records that could not be tracked because the table was full.
  uint64_t tracker_overflows() const { return tracker_overflows_; }

  // Full capture of every record, in order (enabled by capture_reserve).
  const std::vector<SpanRecord>& capture() const { return capture_; }
  bool capture_truncated() const { return capture_truncated_; }

 private:
  struct Track {
    uint32_t packet_id = 0;
    bool used = false;
    uint8_t path = 0;        // PathKind
    uint64_t ingress_ps = 0;
    uint64_t mark_ps = 0;    // last stage boundary
  };

  Track* Find(uint32_t packet_id);
  Track* FindOrCreate(uint32_t packet_id);
  void Erase(Track* t);
  void UpdateTrack(SpanPoint point, uint32_t packet_id, uint64_t now);

  EventQueue& engine_;
  FlightRecorder recorder_;
  CycleProfiler profiler_;

  std::vector<SpanRecord> capture_;
  size_t capture_reserve_ = 0;
  bool capture_truncated_ = false;

  std::vector<Track> tracker_;
  size_t tracker_mask_ = 0;
  uint64_t tracker_live_ = 0;
  uint64_t tracker_overflows_ = 0;

  uint64_t records_ = 0;
  uint64_t point_counts_[kSpanPointCount] = {};
  Histogram path_latency_[kPathKindCount];
  Histogram hop_latency_[kHopKindCount];
};

}  // namespace npr

#endif  // SRC_OBS_OBSERVER_H_
