#include "src/obs/span.h"

namespace npr {

const char* SpanPointName(SpanPoint p) {
  switch (p) {
    case SpanPoint::kMacRxFrame: return "mac.rx_frame";
    case SpanPoint::kMacTxFrame: return "mac.tx_frame";
    case SpanPoint::kPktIngress: return "in.ingress";
    case SpanPoint::kInClassified: return "in.classified";
    case SpanPoint::kInEnqueued: return "in.enqueued";
    case SpanPoint::kInToSa: return "in.to_sa";
    case SpanPoint::kInToPe: return "in.to_pe";
    case SpanPoint::kDropInvalid: return "drop.invalid";
    case SpanPoint::kDropVrp: return "drop.vrp";
    case SpanPoint::kDropQueueFull: return "drop.queue_full";
    case SpanPoint::kDropNoBuffer: return "drop.no_buffer";
    case SpanPoint::kQueuePush: return "queue.push";
    case SpanPoint::kQueuePop: return "queue.pop";
    case SpanPoint::kQueueCorrupt: return "queue.corrupt";
    case SpanPoint::kOutDequeued: return "out.dequeued";
    case SpanPoint::kOutLostLap: return "out.lost_lap";
    case SpanPoint::kPktTxComplete: return "out.tx_complete";
    case SpanPoint::kSaDequeued: return "sa.dequeued";
    case SpanPoint::kSaForwarded: return "sa.forwarded";
    case SpanPoint::kSaReturnEnqueued: return "sa.return_enqueued";
    case SpanPoint::kSaAbsorbed: return "sa.absorbed";
    case SpanPoint::kSaLapped: return "sa.lapped";
    case SpanPoint::kSaShedPe: return "sa.shed_pe";
    case SpanPoint::kIcmpOriginated: return "sa.icmp_originated";
    case SpanPoint::kBridgeToPe: return "pe.bridge_to_pe";
    case SpanPoint::kPeIntake: return "pe.intake";
    case SpanPoint::kPeServiced: return "pe.serviced";
    case SpanPoint::kPeAbsorbed: return "pe.absorbed";
    case SpanPoint::kPeReturned: return "pe.returned";
    case SpanPoint::kFault: return "fault";
    case SpanPoint::kRecovery: return "recovery";
    case SpanPoint::kDropGovRed: return "drop.gov_red";
    case SpanPoint::kDropGovPolice: return "drop.gov_police";
    case SpanPoint::kDropGovQuench: return "drop.gov_quench";
    case SpanPoint::kSaShedGov: return "sa.shed_gov";
    case SpanPoint::kGovStage: return "gov.stage";
    case SpanPoint::kCount: break;
  }
  return "?";
}

}  // namespace npr
