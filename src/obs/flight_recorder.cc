#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "src/sim/log.h"

namespace npr {

FlightRecorder::FlightRecorder(size_t capacity) : ring_(std::max<size_t>(capacity, 16)) {}

std::vector<SpanRecord> FlightRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(size_);
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::TriggerDump(const char* reason, uint32_t packet_id, SimTime now) {
  ++dump_triggers_;
  if (has_dump_) return;
  has_dump_ = true;
  dump_.reason = reason;
  dump_.packet_id = packet_id;
  dump_.t_ps = now;
  dump_.records = Snapshot();
  NPR_ERROR("flight recorder: dump '%s' (packet %u) at t=%.3fus, %zu records", reason, packet_id,
            static_cast<double>(now) / 1e6, dump_.records.size());
}

std::string FlightRecorder::Format(const Dump& dump) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "flight dump: reason=%s packet=%u t=%llups records=%zu\n",
                dump.reason.c_str(), dump.packet_id, static_cast<unsigned long long>(dump.t_ps),
                dump.records.size());
  out += line;
  for (const SpanRecord& r : dump.records) {
    std::snprintf(line, sizeof(line), "  t=%-14llu pkt=%-8u unit=0x%02x arg=%-5u %s\n",
                  static_cast<unsigned long long>(r.t_ps), r.packet_id, r.unit, r.arg,
                  SpanPointName(static_cast<SpanPoint>(r.point)));
    out += line;
  }
  return out;
}

void FlightRecorder::Reset() {
  head_ = 0;
  size_ = 0;
  has_dump_ = false;
  dump_triggers_ = 0;
  dump_ = Dump{};
}

}  // namespace npr
