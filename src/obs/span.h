// Per-packet span records (observability layer).
//
// A span is one (sim-time, unit, point) stamp on a packet's journey through
// the router: MAC RX -> input context -> queue -> output context -> MAC TX,
// plus the StrongARM (path B) and Pentium (path C) detours. Records are
// fixed-size and the recording path is allocation-free; the layer is
// compiled out entirely when NPR_OBS_ENABLED is not defined, leaving the
// simulation bit-identical.

#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <cstdint>

namespace npr {

// Where in the pipeline a span was stamped. Names are stable: the golden
// trace file and docs/observability.md depend on them.
enum class SpanPoint : uint8_t {
  // --- wire / MAC ---
  kMacRxFrame = 0,   // frame fully received into port memory
  kMacTxFrame,       // reassembled frame paced onto the wire

  // --- input contexts (path A ingress) ---
  kPktIngress,       // SOP MP claimed, buffer allocated (ingress accounting point)
  kInClassified,     // route/VRP classification done (arg = disposition)
  kInEnqueued,       // EOP accepted into a plan output queue (arg = out port)
  kInToSa,           // EOP handed to the StrongARM local queue (path B)
  kInToPe,           // EOP handed to the Pentium-bound queue (path C)

  // --- terminal drops (each adjacent to its RouterStats counter) ---
  kDropInvalid,      // failed header validation
  kDropVrp,          // VRP policy drop
  kDropQueueFull,    // bounded queue rejected the descriptor
  kDropNoBuffer,     // buffer pool exhausted before ingress accounting

  // --- packet queues (descriptor level; packet_id is the buffer index) ---
  kQueuePush,
  kQueuePop,
  kQueueCorrupt,     // descriptor corrupted on pop; packet lost

  // --- output contexts ---
  kOutDequeued,      // descriptor popped and validated (arg = out port)
  kOutLostLap,       // buffer reuse lapped the queue; original packet lost
  kPktTxComplete,    // last MP streamed to the MAC; forwarded (arg = out port)

  // --- StrongARM bridge (path B) ---
  kSaDequeued,       // StrongARM picked the packet from its local queue
  kSaForwarded,      // slow-path forwarder re-enqueued it to an output queue
  kSaReturnEnqueued, // Pentium-returned packet re-enqueued to an output queue
  kSaAbsorbed,       // forwarder consumed the packet locally
  kSaLapped,         // lapped while waiting for the StrongARM
  kSaShedPe,         // shed because the Pentium path is degraded
  kIcmpOriginated,   // StrongARM sourced an ICMP packet (new chain)

  // --- Pentium host (path C) ---
  kBridgeToPe,       // bridge issued the PCI/I2O DMA toward the Pentium
  kPeIntake,         // Pentium picked the packet off the inbound I2O frame
  kPeServiced,       // Pentium forwarder finished (arg = out port)
  kPeAbsorbed,       // Pentium consumed/dropped the packet
  kPeReturned,       // return DMA landed back at the StrongARM

  // --- faults and recovery ---
  kFault,            // a FaultInjector hook fired (arg = FaultKind)
  kRecovery,         // the HealthMonitor repaired something (arg = RecoveryEvent kind)

  // --- overload governor (appended; numbering above is stable) ---
  kDropGovRed,       // stage 1: RED early drop at MAC RX (pre-ingress)
  kDropGovPolice,    // stage 2: heavy-hitter policing at MAC RX (pre-ingress)
  kDropGovQuench,    // stage 4: hard shed at MAC RX (pre-ingress)
  kSaShedGov,        // stage 3: bridge shed host-bound work under overload
  kGovStage,         // governor ladder transition (arg = new stage)

  kCount
};

inline constexpr int kSpanPointCount = static_cast<int>(SpanPoint::kCount);

// Short stable name for traces and dumps (e.g. "in.enqueued").
const char* SpanPointName(SpanPoint p);

// Terminal points end a packet's chain. Lap points (kOutLostLap, kSaLapped)
// are terminal for accounting but carry the *successor* packet's id (the
// original id is unrecoverable once the buffer is overwritten), so the
// tracker must not erase on them; IsErasingTerminal distinguishes the two.
inline constexpr bool IsTerminal(SpanPoint p) {
  switch (p) {
    case SpanPoint::kDropInvalid:
    case SpanPoint::kDropVrp:
    case SpanPoint::kDropQueueFull:
    case SpanPoint::kDropNoBuffer:
    case SpanPoint::kOutLostLap:
    case SpanPoint::kPktTxComplete:
    case SpanPoint::kSaAbsorbed:
    case SpanPoint::kSaLapped:
    case SpanPoint::kSaShedPe:
    case SpanPoint::kPeAbsorbed:
    case SpanPoint::kDropGovRed:
    case SpanPoint::kDropGovPolice:
    case SpanPoint::kDropGovQuench:
    case SpanPoint::kSaShedGov:
      return true;
    default:
      return false;
  }
}

inline constexpr bool IsErasingTerminal(SpanPoint p) {
  return IsTerminal(p) && p != SpanPoint::kOutLostLap && p != SpanPoint::kSaLapped;
}

// Executing unit encoding for SpanRecord::unit. MicroEngine contexts map to
// me*4+ctx (0..23); fixed codes cover everything that is not a context.
inline constexpr uint8_t kUnitMacBase = 0xA0;   // MAC port p -> 0xA0 + p
inline constexpr uint8_t kUnitQueue = 0xC0;     // packet-queue subsystem
inline constexpr uint8_t kUnitStrongArm = 0xF0;
inline constexpr uint8_t kUnitPentium = 0xF1;
inline constexpr uint8_t kUnitHealth = 0xF2;
inline constexpr uint8_t kUnitGovernor = 0xF3;
inline constexpr uint8_t kUnitNone = 0xFF;

inline constexpr uint8_t ContextUnit(uint8_t me_id, uint8_t ctx_index) {
  return static_cast<uint8_t>(me_id * 4 + ctx_index);
}

// One stamp. 16 bytes, trivially copyable; the flight-recorder ring and the
// golden-trace capture are arrays of these.
struct SpanRecord {
  uint64_t t_ps = 0;       // simulated time of the stamp
  uint32_t packet_id = 0;  // Packet::id(); buffer index for kQueue* points
  uint8_t point = 0;       // SpanPoint
  uint8_t unit = 0;        // executing unit (see encoding above)
  uint16_t arg = 0;        // point-specific (port, disposition, fault kind, ...)
};

static_assert(sizeof(SpanRecord) == 16, "span records are packed to 16 bytes");

}  // namespace npr

#endif  // SRC_OBS_SPAN_H_
