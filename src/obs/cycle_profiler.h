// Cycle-accounting profiler (observability layer).
//
// Attributes every MicroEngine cycle to one of {compute, DRAM stall, SRAM
// stall, Scratch stall, FIFO wait, token wait, mutex wait} per engine and
// context. Compute is attributed when a context starts a compute burst;
// blocked time is attributed when the context is made ready again, classified
// by what it blocked on. All storage is fixed-size; the hot-path methods do
// not allocate.

#ifndef SRC_OBS_CYCLE_PROFILER_H_
#define SRC_OBS_CYCLE_PROFILER_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace npr {

// Why a context was blocked. DRAM/SRAM/Scratch come from the memory
// channel's profile_class; token and mutex waits are tagged at the awaiter;
// anything else (FIFO polls, DMA completions, explicit sleeps) is kFifo.
enum class WaitClass : uint8_t {
  kDram = 0,
  kSram,
  kScratch,
  kFifo,
  kToken,
  kMutex,
  kOther,
  kCount
};

inline constexpr int kWaitClassCount = static_cast<int>(WaitClass::kCount);

// MemoryChannelConfig::profile_class stores these raw values (mem/ does not
// depend on obs/); the enum order is load-bearing.
static_assert(static_cast<int>(WaitClass::kDram) == 0);
static_assert(static_cast<int>(WaitClass::kSram) == 1);
static_assert(static_cast<int>(WaitClass::kScratch) == 2);
static_assert(static_cast<int>(WaitClass::kOther) == 6);

const char* WaitClassName(WaitClass w);

class CycleProfiler {
 public:
  static constexpr int kMaxEngines = 8;
  static constexpr int kMaxContexts = 4;

  struct Slot {
    uint64_t compute_cycles = 0;          // cycles spent executing
    uint64_t compute_bursts = 0;          // number of compute segments
    uint64_t wait_ps[kWaitClassCount] = {};   // blocked time per class (ps)
    uint64_t waits[kWaitClassCount] = {};     // blocked episodes per class
  };

  void AddCompute(uint8_t me, uint8_t ctx, uint32_t cycles) {
    Slot& s = slot_mut(me, ctx);
    s.compute_cycles += cycles;
    s.compute_bursts += 1;
  }

  void AddWait(uint8_t me, uint8_t ctx, WaitClass w, SimTime elapsed_ps) {
    Slot& s = slot_mut(me, ctx);
    const int k = static_cast<int>(w);
    s.wait_ps[k] += static_cast<uint64_t>(elapsed_ps);
    s.waits[k] += 1;
  }

  const Slot& slot(uint8_t me, uint8_t ctx) const {
    return slots_[me % kMaxEngines][ctx % kMaxContexts];
  }

  // Aggregates over all contexts of one engine.
  uint64_t EngineComputeCycles(uint8_t me) const;
  uint64_t EngineWaitPs(uint8_t me, WaitClass w) const;

  // Aggregates over everything.
  uint64_t TotalComputeCycles() const;
  uint64_t TotalWaitPs(WaitClass w) const;

  // Human-readable per-engine breakdown, one line per engine that ran.
  std::string Report() const;

  void Reset();

 private:
  Slot& slot_mut(uint8_t me, uint8_t ctx) {
    return slots_[me % kMaxEngines][ctx % kMaxContexts];
  }

  Slot slots_[kMaxEngines][kMaxContexts];
};

}  // namespace npr

#endif  // SRC_OBS_CYCLE_PROFILER_H_
