#include "src/obs/observer.h"

#include <bit>

namespace npr {

namespace {
// Bounds a collision cluster; beyond this the record is counted as an
// overflow rather than probed further (keeps Record strictly O(1)).
constexpr size_t kMaxProbes = 128;

constexpr uint64_t kPsPerNsLocal = 1000;
}  // namespace

const char* PathKindName(PathKind p) {
  switch (p) {
    case PathKind::kPathA: return "A";
    case PathKind::kPathB: return "B";
    case PathKind::kPathC: return "C";
    case PathKind::kCount: break;
  }
  return "?";
}

const char* HopKindName(HopKind h) {
  switch (h) {
    case HopKind::kInput: return "input";
    case HopKind::kQueueWait: return "queue_wait";
    case HopKind::kOutput: return "output";
    case HopKind::kSaService: return "sa_service";
    case HopKind::kPeService: return "pe_service";
    case HopKind::kCount: break;
  }
  return "?";
}

Observer::Observer(EventQueue& engine, ObserverConfig cfg)
    : engine_(engine), recorder_(cfg.ring_capacity) {
  capture_reserve_ = cfg.capture_reserve;
  capture_.reserve(capture_reserve_);
  const size_t slots = std::bit_ceil(std::max<size_t>(cfg.tracker_slots, 64));
  tracker_.resize(slots);
  tracker_mask_ = slots - 1;
}

void Observer::Record(SpanPoint point, uint32_t packet_id, uint8_t unit, uint16_t arg) {
  const uint64_t now = static_cast<uint64_t>(engine_.now());
  SpanRecord r;
  r.t_ps = now;
  r.packet_id = packet_id;
  r.point = static_cast<uint8_t>(point);
  r.unit = unit;
  r.arg = arg;

  ++records_;
  ++point_counts_[static_cast<int>(point)];
  recorder_.Record(r);
  if (capture_reserve_ > 0) {
    if (capture_.size() < capture_reserve_) {
      capture_.push_back(r);
    } else {
      capture_truncated_ = true;
    }
  }
  UpdateTrack(point, packet_id, now);
}

Observer::Track* Observer::Find(uint32_t packet_id) {
  size_t i = packet_id & tracker_mask_;
  for (size_t probes = 0; probes < kMaxProbes; ++probes) {
    Track& t = tracker_[i];
    if (!t.used) return nullptr;
    if (t.packet_id == packet_id) return &t;
    i = (i + 1) & tracker_mask_;
  }
  return nullptr;
}

Observer::Track* Observer::FindOrCreate(uint32_t packet_id) {
  size_t i = packet_id & tracker_mask_;
  for (size_t probes = 0; probes < kMaxProbes; ++probes) {
    Track& t = tracker_[i];
    if (!t.used) {
      t = Track{};
      t.used = true;
      t.packet_id = packet_id;
      ++tracker_live_;
      return &t;
    }
    if (t.packet_id == packet_id) return &t;
    i = (i + 1) & tracker_mask_;
  }
  ++tracker_overflows_;
  return nullptr;
}

void Observer::Erase(Track* t) {
  // Linear-probe deletion with backward shift: keeps clusters contiguous so
  // Find never crosses a hole it should not.
  size_t i = static_cast<size_t>(t - tracker_.data());
  tracker_[i].used = false;
  --tracker_live_;
  size_t j = i;
  for (;;) {
    j = (j + 1) & tracker_mask_;
    Track& cand = tracker_[j];
    if (!cand.used) return;
    const size_t home = cand.packet_id & tracker_mask_;
    // Move cand into the hole at i unless its home lies cyclically in (i, j].
    const bool home_in_range =
        (i < j) ? (home > i && home <= j) : (home > i || home <= j);
    if (!home_in_range) {
      tracker_[i] = cand;
      cand.used = false;
      i = j;
    }
  }
}

void Observer::UpdateTrack(SpanPoint point, uint32_t packet_id, uint64_t now) {
  switch (point) {
    // Chain accounting starts at kPktIngress (matching RouterInvariants'
    // ingress accounting point); MAC/queue/fault/recovery records and the
    // pre-ingress no-buffer drop never touch the tracker.
    case SpanPoint::kMacRxFrame:
    case SpanPoint::kMacTxFrame:
    case SpanPoint::kQueuePush:
    case SpanPoint::kQueuePop:
    case SpanPoint::kQueueCorrupt:
    case SpanPoint::kFault:
    case SpanPoint::kRecovery:
    case SpanPoint::kDropNoBuffer:
    case SpanPoint::kInClassified:
    // Governor MAC-RX drops happen before ingress accounting (the chain was
    // never opened); ladder transitions carry no packet at all.
    case SpanPoint::kDropGovRed:
    case SpanPoint::kDropGovPolice:
    case SpanPoint::kDropGovQuench:
    case SpanPoint::kGovStage:
    // Lap records carry the successor's id (the lapped packet's id is gone
    // with the overwritten buffer); erasing here would break a live chain.
    case SpanPoint::kOutLostLap:
    case SpanPoint::kSaLapped:
      return;
    default:
      break;
  }
  if (packet_id == 0) return;

  if (point == SpanPoint::kPktIngress || point == SpanPoint::kIcmpOriginated) {
    Track* t = FindOrCreate(packet_id);
    if (t == nullptr) return;
    t->path = static_cast<uint8_t>(point == SpanPoint::kIcmpOriginated ? PathKind::kPathB
                                                                       : PathKind::kPathA);
    t->ingress_ps = now;
    t->mark_ps = now;
    return;
  }

  Track* t = Find(packet_id);
  if (t == nullptr) return;  // chain started before attach, or already closed

  switch (point) {
    case SpanPoint::kInToSa:
    case SpanPoint::kSaDequeued:
      if (t->path == static_cast<uint8_t>(PathKind::kPathA)) {
        t->path = static_cast<uint8_t>(PathKind::kPathB);
      }
      break;
    case SpanPoint::kInToPe:
    case SpanPoint::kBridgeToPe:
    case SpanPoint::kPeIntake:
      t->path = static_cast<uint8_t>(PathKind::kPathC);
      break;
    default:
      break;
  }

  HopKind hop = HopKind::kCount;
  switch (point) {
    case SpanPoint::kInEnqueued:
    case SpanPoint::kInToSa:
    case SpanPoint::kInToPe:
      hop = HopKind::kInput;
      break;
    case SpanPoint::kOutDequeued:
    case SpanPoint::kSaDequeued:
    case SpanPoint::kBridgeToPe:
      hop = HopKind::kQueueWait;
      break;
    case SpanPoint::kPktTxComplete:
      hop = HopKind::kOutput;
      break;
    case SpanPoint::kSaForwarded:
    case SpanPoint::kSaReturnEnqueued:
    case SpanPoint::kSaAbsorbed:
    case SpanPoint::kSaShedPe:
      hop = HopKind::kSaService;
      break;
    case SpanPoint::kPeReturned:
    case SpanPoint::kPeAbsorbed:
      hop = HopKind::kPeService;
      break;
    default:
      break;
  }
  if (hop != HopKind::kCount && now >= t->mark_ps) {
    hop_latency_[static_cast<int>(hop)].Add((now - t->mark_ps) / kPsPerNsLocal);
    t->mark_ps = now;
  }

  if (point == SpanPoint::kPktTxComplete && now >= t->ingress_ps) {
    path_latency_[t->path].Add((now - t->ingress_ps) / kPsPerNsLocal);
  }

  if (IsErasingTerminal(point)) Erase(t);
}

}  // namespace npr
