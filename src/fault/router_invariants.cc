#include "src/fault/router_invariants.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/cluster/cluster_router.h"
#include "src/core/pentium_host.h"
#include "src/core/router.h"
#include "src/core/strongarm_bridge.h"
#include "src/core/upgrade.h"
#include "src/net/mac_port.h"
#include "src/obs/observer.h"

namespace npr {
namespace {

void Violate(InvariantReport* report, std::string message) {
  report->violations.push_back(std::move(message));
}

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

void CheckQueue(const PacketQueue& q, const char* label, InvariantReport* report) {
  if (q.size() > q.capacity()) {
    Violate(report, Format("%s queue %d: size %u exceeds capacity %u", label, q.id(),
                           q.size(), q.capacity()));
  }
  const uint32_t bad = q.CheckConsistency();
  if (bad != 0) {
    Violate(report, Format("%s queue %d: %u descriptor(s) disagree with the SRAM ring",
                           label, q.id(), bad));
  }
}

// Every packet admitted to the pipeline (plus every ICMP error originated in
// a fresh buffer) must be transmitted, counted as a drop, or still visibly
// in flight somewhere. dropped_no_buffer and the MAC-level CRC drops happen
// before ingress accounting and are deliberately outside the balance.
void CheckConservation(Router& router, InvariantReport* report) {
  const RouterConfig& cfg = router.config();
  const RouterStats& stats = router.stats();
  if (cfg.magic_drain || cfg.output_fake_data || cfg.port_mode == PortMode::kInfiniteFifo) {
    return;  // synthetic/absorbing modes do not conserve packets
  }
  if (stats.window_start != 0) {
    return;  // StartMeasurement() reset the ingress counters mid-run
  }
  report->conservation_checked = true;

  uint64_t corrupt_drops = 0;
  uint64_t queued = 0;
  for (const auto& q : router.queues().all_queues()) {
    corrupt_drops += q->corrupt_drops();
    queued += q->size();
  }
  corrupt_drops += router.sa_local_queue().corrupt_drops();
  corrupt_drops += router.sa_pentium_queue().corrupt_drops();
  queued += router.sa_local_queue().size();
  queued += router.sa_pentium_queue().size();

  report->sources = stats.input.packets + stats.icmp_originated;
  report->sinks = stats.forwarded + stats.dropped_invalid + stats.dropped_by_vrp +
                  stats.dropped_queue_full + stats.lost_overwritten + stats.sa_lapped +
                  stats.sa_absorbed + stats.pe_absorbed + stats.pkts_shed_degraded +
                  stats.gov_shed_pe + stats.gov_shed_sa + corrupt_drops;
  report->in_flight = queued + router.bridge().staging().size() +
                      router.pentium_host().scheduler().backlog() +
                      static_cast<uint64_t>(router.output_stage().active_streams()) +
                      static_cast<uint64_t>(router.input_stage().partial_assemblies());

  if (report->sources != report->sinks + report->in_flight) {
    Violate(report,
            Format("packet conservation: sources %" PRIu64 " != sinks %" PRIu64
                   " + in-flight %" PRIu64 " (leak of %" PRId64 ")",
                   report->sources, report->sinks, report->in_flight,
                   static_cast<int64_t>(report->sources) -
                       static_cast<int64_t>(report->sinks + report->in_flight)));
  }
}

// MAC RX accounting: every frame a port was offered must be attributed to a
// named outcome — CRC drop, tail drop, one of the governor's ladder stages,
// or acceptance. A mismatch means somebody dropped (or invented) a frame
// without a counter: a silent drop, which the overload work explicitly
// forbids. The per-port governor counters must also reconcile with the
// router-wide gov_* stats the governor itself increments (the verdict
// contract is 1:1: governor accounts, port attributes).
void CheckMacAccounting(Router& router, InvariantReport* report) {
  uint64_t red_sum = 0;
  uint64_t police_sum = 0;
  uint64_t quench_sum = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    const MacPort& port = router.port(p);
    const uint64_t attributed = port.rx_crc_dropped() + port.rx_dropped() +
                                port.gov_red_dropped() + port.gov_policed() +
                                port.gov_quenched() + port.rx_frames();
    if (port.rx_offered() != attributed) {
      Violate(report,
              Format("port %d MAC accounting: offered %" PRIu64 " != attributed %" PRIu64
                     " (silent drop of %" PRId64 ")",
                     p, port.rx_offered(), attributed,
                     static_cast<int64_t>(port.rx_offered()) -
                         static_cast<int64_t>(attributed)));
    }
    red_sum += port.gov_red_dropped();
    police_sum += port.gov_policed();
    quench_sum += port.gov_quenched();
  }
  const RouterStats& stats = router.stats();
  if (red_sum != stats.gov_red_dropped || police_sum != stats.gov_policed ||
      quench_sum != stats.gov_quenched) {
    Violate(report,
            Format("governor attribution: per-port sums red %" PRIu64 "/police %" PRIu64
                   "/quench %" PRIu64 " != router stats %" PRIu64 "/%" PRIu64 "/%" PRIu64,
                   red_sum, police_sum, quench_sum, stats.gov_red_dropped,
                   stats.gov_policed, stats.gov_quenched));
  }
}

void CheckTokenLiveness(Router& router, InvariantReport* report) {
  if (!router.started()) {
    return;
  }
  const SimTime now = router.engine().now();
  if (now <= RouterInvariants::kTokenLivenessWindowPs) {
    return;  // not enough history to judge
  }
  struct Stage {
    const char* name;
    TokenRing* ring;
    int contexts;
  };
  const Stage stages[] = {
      {"input", &router.input_stage().token_ring(), router.input_stage().num_contexts()},
      {"output", &router.output_stage().token_ring(), router.output_stage().num_contexts()},
  };
  for (const Stage& s : stages) {
    if (s.contexts == 0 || s.ring->members_up() == 0) {
      continue;  // stage disabled, or every context crashed (restart pending)
    }
    if (s.ring->token_lost()) {
      // The token is not merely slow — it is gone, and no grant can ever
      // happen until something regenerates it. That is only a violation
      // once the recovery window has elapsed with nobody acting; inside
      // the window a health monitor is expected to be mid-recovery.
      const SimTime lost_for = now - s.ring->token_lost_since_ps();
      if (lost_for > RouterInvariants::kTokenLivenessWindowPs) {
        Violate(report,
                Format("%s token ring: token lost %.3f ms ago and not regenerated",
                       s.name, static_cast<double>(lost_for) / kPsPerMs));
      }
      continue;  // do not double-report via the last-grant age below
    }
    const SimTime idle = now - s.ring->last_grant_ps();
    if (idle > RouterInvariants::kTokenLivenessWindowPs) {
      Violate(report, Format("%s token ring: no grant for %.3f ms (%d/%d members up)",
                             s.name, static_cast<double>(idle) / kPsPerMs,
                             s.ring->members_up(), s.ring->size()));
    }
  }
}

void CheckQueues(Router& router, InvariantReport* report) {
  for (const auto& q : router.queues().all_queues()) {
    CheckQueue(*q, "output", report);
  }
  CheckQueue(router.sa_local_queue(), "sa-local", report);
  CheckQueue(router.sa_pentium_queue(), "sa-pentium", report);
}

void CheckVrpBudget(Router& router, InvariantReport* report) {
  const VrpBudget& budget = router.config().budget;
  AdmissionControl& adm = router.admission();
  if (!budget.Admits(adm.general_chain_cost())) {
    Violate(report, "VRP budget: committed general chain exceeds the per-MP budget");
  }
  if (!budget.Admits(adm.max_per_flow_cost(), adm.general_chain_cost())) {
    Violate(report,
            "VRP budget: worst per-flow forwarder plus general chain exceeds the budget");
  }
  if (adm.pentium_committed_packet_rate() > adm.pentium_max_pps) {
    Violate(report, Format("Pentium admission: committed %.0f pps exceeds the %.0f pps path",
                           adm.pentium_committed_packet_rate(), adm.pentium_max_pps));
  }
}

void CheckMemoryBounds(Router& router, InvariantReport* report) {
  MemorySystem& mem = router.chip().memory();
  const BackingStore* stores[] = {&mem.dram_store(), &mem.sram_store(), &mem.scratch_store()};
  for (const BackingStore* store : stores) {
    if (store->oob_errors() != 0) {
      Violate(report, Format("memory bounds: %" PRIu64 " out-of-bounds %s accesses",
                             store->oob_errors(), store->name().c_str()));
    }
  }

  // Flow-state ledger: every SRAM byte the arena holds beyond the fixed
  // infrastructure must be a flow table reservation or a region an
  // in-flight upgrade holds (staged before cutover, retained during soak).
  // A Remove that leaks its `.state` binding shows up here as a leak, not
  // as a slow death by arena exhaustion.
  uint64_t reserved = 0;
  for (const FlowMeta* meta : router.flow_table().All()) {
    reserved += Arena::RoundUp(meta->state_bytes, 4);
  }
  if (router.upgrade() != nullptr) {
    reserved += router.upgrade()->held_state_bytes();
  }
  const uint64_t outstanding = router.sram_arena().outstanding() - router.sram_infra_bytes();
  if (outstanding != reserved) {
    Violate(report, Format("flow-state ledger: arena holds %" PRIu64
                           " bytes beyond infrastructure, flow table + upgrade reserve %" PRIu64
                           " (leak of %" PRId64 ")",
                           outstanding, reserved,
                           static_cast<int64_t>(outstanding) - static_cast<int64_t>(reserved)));
  }
}

// Frame-pool ledger: every pooled frame acquired anywhere must be traceable
// to a live holder. Per port, outstanding buffers must equal the frames in
// flight on that port's wires (plus a mid-reassembly partial); the router
// pool's outstanding buffers must equal what the StrongARM loop holds
// across its current suspension. Any excess is a leaked exit path.
void CheckPoolLedger(Router& router, InvariantReport* report) {
  for (int p = 0; p < router.num_ports(); ++p) {
    const MacPort& port = router.port(p);
    const uint64_t outstanding = port.pool().outstanding();
    const uint64_t held = port.pooled_in_flight();
    if (outstanding != held) {
      Violate(report,
              Format("port %d pool ledger: %" PRIu64 " buffer(s) outstanding, %" PRIu64
                     " accounted in flight (leak of %" PRId64 ")",
                     p, outstanding, held,
                     static_cast<int64_t>(outstanding) - static_cast<int64_t>(held)));
    }
  }
  const uint64_t bridge_held = static_cast<uint64_t>(router.bridge().pooled_live());
  const uint64_t router_outstanding = router.packet_pool().outstanding();
  if (router_outstanding != bridge_held) {
    Violate(report,
            Format("router pool ledger: %" PRIu64 " buffer(s) outstanding, bridge holds %" PRIu64
                   " (leak of %" PRId64 ")",
                   router_outstanding, bridge_held,
                   static_cast<int64_t>(router_outstanding) - static_cast<int64_t>(bridge_held)));
  }
}

}  // namespace

std::string InvariantReport::ToString() const {
  if (ok()) {
    return conservation_checked
               ? Format("all invariants hold (sources %" PRIu64 " = sinks %" PRIu64
                        " + in-flight %" PRIu64 ")",
                        sources, sinks, in_flight)
               : "all invariants hold (conservation not applicable)";
  }
  std::string out = Format("%zu invariant violation(s):", violations.size());
  for (const std::string& v : violations) {
    out += "\n  - ";
    out += v;
  }
  return out;
}

InvariantReport RouterInvariants::CheckAll(Router& router) {
  InvariantReport report;
  CheckConservation(router, &report);
  CheckMacAccounting(router, &report);
  CheckTokenLiveness(router, &report);
  CheckQueues(router, &report);
  CheckVrpBudget(router, &report);
  CheckMemoryBounds(router, &report);
  CheckPoolLedger(router, &report);
  if (!report.ok()) {
    // Freeze the flight recorder: the ring now holds the span records
    // closest to whatever broke the invariant.
    NPR_OBS_HOOK(router.observer(), TriggerDump("invariant", 0));
  }
  return report;
}

InvariantReport RouterInvariants::CheckCluster(ClusterRouter& cluster) {
  InvariantReport report;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    InvariantReport node = CheckAll(cluster.node(k));
    for (std::string& v : node.violations) {
      report.violations.push_back(Format("node%d: %s", k, v.c_str()));
    }
    if (node.conservation_checked) {
      report.conservation_checked = true;
      report.sources += node.sources;
      report.sinks += node.sinks;
      report.in_flight += node.in_flight;
    }
  }
  for (int plane = 0; plane < cluster.num_planes(); ++plane) {
    SwitchFabric& fabric = cluster.fabric(plane);
    SwitchFabric::MemberStats sum;
    for (int k = 0; k < cluster.num_nodes(); ++k) {
      const MacAddr macs[] = {ClusterNodeMac(k, plane), ClusterControlMac(k, plane)};
      const char* roles[] = {"data", "control"};
      for (int m = 0; m < 2; ++m) {
        const SwitchFabric::MemberStats ms = fabric.member_stats(macs[m]);
        sum.forwarded += ms.forwarded;
        sum.unknown_dropped += ms.unknown_dropped;
        sum.link_down_dropped += ms.link_down_dropped;
        sum.node_down_dropped += ms.node_down_dropped;
        sum.injected_dropped += ms.injected_dropped;
        if (ms.unknown_dropped != 0) {
          Violate(&report,
                  Format("fabric plane %d: node%d (%s) sent %" PRIu64
                         " frame(s) to a destination nobody answers on (blackhole)",
                         plane, k, roles[m], ms.unknown_dropped));
        }
      }
    }
    if (sum.forwarded != fabric.forwarded()) {
      Violate(&report, Format("fabric plane %d: per-member forwarded %" PRIu64
                              " != fabric forwarded %" PRIu64,
                              plane, sum.forwarded, fabric.forwarded()));
    }
    if (sum.unknown_dropped != fabric.unknown_destination()) {
      Violate(&report, Format("fabric plane %d: per-member unknown drops %" PRIu64
                              " != fabric unknown %" PRIu64,
                              plane, sum.unknown_dropped, fabric.unknown_destination()));
    }
    const uint64_t gate_sum =
        sum.link_down_dropped + sum.node_down_dropped + sum.injected_dropped;
    if (gate_sum != fabric.gate_dropped()) {
      Violate(&report, Format("fabric plane %d: per-member gate drops %" PRIu64
                              " != fabric gate drops %" PRIu64,
                              plane, gate_sum, fabric.gate_dropped()));
    }
  }
  return report;
}

}  // namespace npr
