// Router-wide invariant checking (docs/fault_injection.md).
//
// CheckAll() sweeps a router for structural damage: packets that vanished
// without being counted, a wedged token ring, queue state that disagrees
// with the SRAM it mirrors, an over-committed VRP budget, or out-of-bounds
// memory traffic. Fault-injection tests call it after every run — the
// contract is that faults produce *counted* drops or loud failures, never a
// silent wedge or an unaccounted packet.

#ifndef SRC_FAULT_ROUTER_INVARIANTS_H_
#define SRC_FAULT_ROUTER_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace npr {

class ClusterRouter;
class Router;

struct InvariantReport {
  std::vector<std::string> violations;

  // Packet-conservation accounting (valid when conservation_checked).
  uint64_t sources = 0;
  uint64_t sinks = 0;
  uint64_t in_flight = 0;
  // False when the configuration makes conservation meaningless (synthetic
  // MPs, magic drain, fake output data) or a measurement window reset the
  // ingress counters mid-run.
  bool conservation_checked = false;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

class RouterInvariants {
 public:
  // A healthy ring under any load grants the token many times per
  // microsecond; 5 ms without a grant means it is wedged.
  static constexpr SimTime kTokenLivenessWindowPs = 5 * kPsPerMs;

  // Runs every check against the router's current state. Cheap enough to
  // call after each test run; call at quiescence (after a drain period) for
  // an exact conservation balance.
  static InvariantReport CheckAll(Router& router);

  // Cluster scope: CheckAll on every node (violations prefixed "nodeK:",
  // conservation sums aggregated) plus fabric accounting on every plane. A
  // frame addressed to a MAC nobody answers on means some node forwarded
  // into a blackhole — a stale FIB is an invariant violation, not a drop —
  // and the per-member counters must reconcile with the fabric totals.
  static InvariantReport CheckCluster(ClusterRouter& cluster);
};

}  // namespace npr

#endif  // SRC_FAULT_ROUTER_INVARIANTS_H_
