#include "src/fault/fault_injector.h"

#include "src/vrp/isa.h"

namespace npr {
namespace {

// Ethernet header size; bytes [14, 34) of a frame hold the IPv4 header.
constexpr size_t kEthHeader = 14;
constexpr size_t kIpHeaderEnd = kEthHeader + 20;

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemLatencySpike:
      return "mem_latency_spike";
    case FaultKind::kMemBitFlip:
      return "mem_bit_flip";
    case FaultKind::kFrameCrcDrop:
      return "frame_crc_drop";
    case FaultKind::kFrameCorrupt:
      return "frame_corrupt";
    case FaultKind::kFrameTruncate:
      return "frame_truncate";
    case FaultKind::kRxStall:
      return "rx_stall";
    case FaultKind::kContextCrash:
      return "context_crash";
    case FaultKind::kTokenDrop:
      return "token_drop";
    case FaultKind::kDescCorrupt:
      return "desc_corrupt";
    case FaultKind::kTokenLost:
      return "token_lost";
    case FaultKind::kRestartLost:
      return "restart_lost";
    case FaultKind::kPentiumHang:
      return "pentium_hang";
    case FaultKind::kVrpTrap:
      return "vrp_trap";
    case FaultKind::kCtrlDrop:
      return "ctrl_drop";
    case FaultKind::kCtrlDup:
      return "ctrl_dup";
    case FaultKind::kCtrlDelay:
      return "ctrl_delay";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kFabricFrameLoss:
      return "fabric_frame_loss";
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kUpgradeCrash:
      return "upgrade_crash";
    case FaultKind::kImageCorrupt:
      return "image_corrupt";
    case FaultKind::kCount:
      break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, EventQueue& engine)
    : plan_(plan), engine_(engine), rng_(plan.seed) {
  if (plan_.context_crash_mean_ps > 0) {
    next_crash_at_ =
        engine_.now() +
        static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.context_crash_mean_ps)));
  }
  if (plan_.pentium_hang_mean_ps > 0) {
    next_hang_at_ =
        engine_.now() +
        static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.pentium_hang_mean_ps)));
  }
  if (plan_.link_down_mean_ps > 0) {
    next_link_down_at_ =
        engine_.now() +
        static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.link_down_mean_ps)));
  }
  if (plan_.node_crash_mean_ps > 0) {
    next_node_crash_at_ =
        engine_.now() +
        static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.node_crash_mean_ps)));
  }
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (uint64_t n : injected_) {
    total += n;
  }
  return total;
}

SimTime FaultInjector::MemExtraLatencyPs() {
  if (!armed_ || plan_.mem_latency_spike_p <= 0 || !rng_.Chance(plan_.mem_latency_spike_p)) {
    return 0;
  }
  Count(FaultKind::kMemLatencySpike);
  return plan_.mem_latency_spike_ps;
}

bool FaultInjector::MaybeFlipReadBits(std::span<uint8_t> out) {
  if (!armed_ || plan_.mem_bit_flip_p <= 0 || out.empty() || !rng_.Chance(plan_.mem_bit_flip_p)) {
    return false;
  }
  out[rng_.Uniform(out.size())] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
  Count(FaultKind::kMemBitFlip);
  return true;
}

FaultInjector::FrameFault FaultInjector::OnFrameRx(std::span<uint8_t> frame,
                                                   size_t* truncate_to) {
  if (!armed_) {
    return FrameFault::kNone;
  }
  if (plan_.frame_crc_p > 0 && rng_.Chance(plan_.frame_crc_p)) {
    Count(FaultKind::kFrameCrcDrop);
    return FrameFault::kCrcDrop;
  }
  if (plan_.frame_corrupt_p > 0 && frame.size() >= kIpHeaderEnd &&
      rng_.Chance(plan_.frame_corrupt_p)) {
    // Flip one bit inside the IPv4 header: the header checksum detects every
    // single-bit error, so the packet becomes a counted dropped_invalid.
    const size_t byte = kEthHeader + rng_.Uniform(kIpHeaderEnd - kEthHeader);
    frame[byte] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
    Count(FaultKind::kFrameCorrupt);
    return FrameFault::kCorrupt;
  }
  if (plan_.frame_truncate_p > 0 && frame.size() > kEthHeader + 2 &&
      rng_.Chance(plan_.frame_truncate_p)) {
    // Keep at least the Ethernet header plus one payload byte so the frame
    // still segments; anything shorter than a full IP header is dropped by
    // the classifier as invalid.
    *truncate_to = rng_.Range(kEthHeader + 1, frame.size() - 1);
    Count(FaultKind::kFrameTruncate);
    return FrameFault::kTruncate;
  }
  return FrameFault::kNone;
}

SimTime FaultInjector::RxStallPs() {
  if (!armed_ || plan_.rx_stall_p <= 0 || !rng_.Chance(plan_.rx_stall_p)) {
    return 0;
  }
  Count(FaultKind::kRxStall);
  return plan_.rx_stall_ps;
}

SimTime FaultInjector::TokenOfferDelayPs() {
  if (!armed_ || plan_.token_drop_p <= 0 || !rng_.Chance(plan_.token_drop_p)) {
    return 0;
  }
  Count(FaultKind::kTokenDrop);
  return plan_.token_redeliver_ps;
}

bool FaultInjector::ShouldLoseToken() {
  if (!armed_ || plan_.token_lost_p <= 0 || !rng_.Chance(plan_.token_lost_p)) {
    return false;
  }
  Count(FaultKind::kTokenLost);
  return true;
}

bool FaultInjector::ShouldCrashContext() {
  if (!armed_ || plan_.context_crash_mean_ps <= 0 || engine_.now() < next_crash_at_) {
    return false;
  }
  next_crash_at_ =
      engine_.now() +
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.context_crash_mean_ps)));
  Count(FaultKind::kContextCrash);
  return true;
}

bool FaultInjector::ShouldLoseRestart() {
  if (!armed_ || plan_.restart_lost_p <= 0 || !rng_.Chance(plan_.restart_lost_p)) {
    return false;
  }
  Count(FaultKind::kRestartLost);
  return true;
}

SimTime FaultInjector::PentiumHangPs() {
  if (!armed_ || plan_.pentium_hang_mean_ps <= 0 || engine_.now() < next_hang_at_) {
    return 0;
  }
  next_hang_at_ =
      engine_.now() +
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.pentium_hang_mean_ps)));
  last_hang_at_ = engine_.now();
  Count(FaultKind::kPentiumHang);
  return plan_.pentium_hang_ps;
}

FaultInjector::CtrlFault FaultInjector::OnCtrlMessage(SimTime* extra_delay_ps) {
  *extra_delay_ps = 0;
  if (!armed_) {
    return CtrlFault::kNone;
  }
  if (plan_.ctrl_drop_p > 0 && rng_.Chance(plan_.ctrl_drop_p)) {
    Count(FaultKind::kCtrlDrop);
    return CtrlFault::kDrop;
  }
  if (plan_.ctrl_dup_p > 0 && rng_.Chance(plan_.ctrl_dup_p)) {
    Count(FaultKind::kCtrlDup);
    return CtrlFault::kDup;
  }
  if (plan_.ctrl_delay_p > 0 && rng_.Chance(plan_.ctrl_delay_p)) {
    Count(FaultKind::kCtrlDelay);
    *extra_delay_ps = plan_.ctrl_delay_ps;
    return CtrlFault::kDelay;
  }
  return CtrlFault::kNone;
}

bool FaultInjector::ShouldTrapVrp() {
  if (!armed_ || plan_.vrp_trap_p <= 0 || !rng_.Chance(plan_.vrp_trap_p)) {
    return false;
  }
  Count(FaultKind::kVrpTrap);
  return true;
}

bool FaultInjector::ShouldCrashUpgrade() {
  if (!armed_ || plan_.upgrade_crash_p <= 0 || !rng_.Chance(plan_.upgrade_crash_p)) {
    return false;
  }
  Count(FaultKind::kUpgradeCrash);
  return true;
}

bool FaultInjector::MaybeCorruptImage(VrpProgram* program) {
  if (!armed_ || plan_.image_corrupt_p <= 0 || program == nullptr || program->code.empty() ||
      !rng_.Chance(plan_.image_corrupt_p)) {
    return false;
  }
  VrpInstr& instr = program->code[rng_.Uniform(program->code.size())];
  instr.imm ^= static_cast<int32_t>(1u << rng_.Uniform(32));
  Count(FaultKind::kImageCorrupt);
  return true;
}

bool FaultInjector::MaybeCorruptDescriptor(uint32_t* word) {
  if (!armed_ || plan_.desc_corrupt_p <= 0 || !rng_.Chance(plan_.desc_corrupt_p)) {
    return false;
  }
  // Only the low 24 bits are encoded descriptor state, and every one of them
  // participates in the sidecar cross-check, so each flip is detectable.
  *word ^= 1u << rng_.Uniform(24);
  Count(FaultKind::kDescCorrupt);
  return true;
}

SimTime FaultInjector::LinkDownPs() {
  if (!armed_ || plan_.link_down_mean_ps <= 0 || engine_.now() < next_link_down_at_) {
    return 0;
  }
  next_link_down_at_ =
      engine_.now() +
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.link_down_mean_ps)));
  last_link_down_at_ = engine_.now();
  Count(FaultKind::kLinkDown);
  return plan_.link_down_ps;
}

bool FaultInjector::ShouldDropFabricFrame() {
  if (!armed_ || plan_.fabric_loss_p <= 0 || !rng_.Chance(plan_.fabric_loss_p)) {
    return false;
  }
  Count(FaultKind::kFabricFrameLoss);
  return true;
}

SimTime FaultInjector::NodeCrashPs() {
  if (!armed_ || plan_.node_crash_mean_ps <= 0 || engine_.now() < next_node_crash_at_) {
    return 0;
  }
  next_node_crash_at_ =
      engine_.now() +
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.node_crash_mean_ps)));
  last_node_crash_at_ = engine_.now();
  Count(FaultKind::kNodeCrash);
  return plan_.node_crash_ps > 0 ? plan_.node_crash_ps : kForever;
}

}  // namespace npr
