#include "src/fault/fault_injector.h"

namespace npr {
namespace {

// Ethernet header size; bytes [14, 34) of a frame hold the IPv4 header.
constexpr size_t kEthHeader = 14;
constexpr size_t kIpHeaderEnd = kEthHeader + 20;

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemLatencySpike:
      return "mem_latency_spike";
    case FaultKind::kMemBitFlip:
      return "mem_bit_flip";
    case FaultKind::kFrameCrcDrop:
      return "frame_crc_drop";
    case FaultKind::kFrameCorrupt:
      return "frame_corrupt";
    case FaultKind::kFrameTruncate:
      return "frame_truncate";
    case FaultKind::kRxStall:
      return "rx_stall";
    case FaultKind::kContextCrash:
      return "context_crash";
    case FaultKind::kTokenDrop:
      return "token_drop";
    case FaultKind::kDescCorrupt:
      return "desc_corrupt";
    case FaultKind::kCount:
      break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, EventQueue& engine)
    : plan_(plan), engine_(engine), rng_(plan.seed) {
  if (plan_.context_crash_mean_ps > 0) {
    next_crash_at_ =
        engine_.now() +
        static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.context_crash_mean_ps)));
  }
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (uint64_t n : injected_) {
    total += n;
  }
  return total;
}

SimTime FaultInjector::MemExtraLatencyPs() {
  if (plan_.mem_latency_spike_p <= 0 || !rng_.Chance(plan_.mem_latency_spike_p)) {
    return 0;
  }
  Count(FaultKind::kMemLatencySpike);
  return plan_.mem_latency_spike_ps;
}

bool FaultInjector::MaybeFlipReadBits(std::span<uint8_t> out) {
  if (plan_.mem_bit_flip_p <= 0 || out.empty() || !rng_.Chance(plan_.mem_bit_flip_p)) {
    return false;
  }
  out[rng_.Uniform(out.size())] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
  Count(FaultKind::kMemBitFlip);
  return true;
}

FaultInjector::FrameFault FaultInjector::OnFrameRx(std::span<uint8_t> frame,
                                                   size_t* truncate_to) {
  if (plan_.frame_crc_p > 0 && rng_.Chance(plan_.frame_crc_p)) {
    Count(FaultKind::kFrameCrcDrop);
    return FrameFault::kCrcDrop;
  }
  if (plan_.frame_corrupt_p > 0 && frame.size() >= kIpHeaderEnd &&
      rng_.Chance(plan_.frame_corrupt_p)) {
    // Flip one bit inside the IPv4 header: the header checksum detects every
    // single-bit error, so the packet becomes a counted dropped_invalid.
    const size_t byte = kEthHeader + rng_.Uniform(kIpHeaderEnd - kEthHeader);
    frame[byte] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
    Count(FaultKind::kFrameCorrupt);
    return FrameFault::kCorrupt;
  }
  if (plan_.frame_truncate_p > 0 && frame.size() > kEthHeader + 2 &&
      rng_.Chance(plan_.frame_truncate_p)) {
    // Keep at least the Ethernet header plus one payload byte so the frame
    // still segments; anything shorter than a full IP header is dropped by
    // the classifier as invalid.
    *truncate_to = rng_.Range(kEthHeader + 1, frame.size() - 1);
    Count(FaultKind::kFrameTruncate);
    return FrameFault::kTruncate;
  }
  return FrameFault::kNone;
}

SimTime FaultInjector::RxStallPs() {
  if (plan_.rx_stall_p <= 0 || !rng_.Chance(plan_.rx_stall_p)) {
    return 0;
  }
  Count(FaultKind::kRxStall);
  return plan_.rx_stall_ps;
}

SimTime FaultInjector::TokenOfferDelayPs() {
  if (plan_.token_drop_p <= 0 || !rng_.Chance(plan_.token_drop_p)) {
    return 0;
  }
  Count(FaultKind::kTokenDrop);
  return plan_.token_redeliver_ps;
}

bool FaultInjector::ShouldCrashContext() {
  if (plan_.context_crash_mean_ps <= 0 || engine_.now() < next_crash_at_) {
    return false;
  }
  next_crash_at_ =
      engine_.now() +
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(plan_.context_crash_mean_ps)));
  Count(FaultKind::kContextCrash);
  return true;
}

bool FaultInjector::MaybeCorruptDescriptor(uint32_t* word) {
  if (plan_.desc_corrupt_p <= 0 || !rng_.Chance(plan_.desc_corrupt_p)) {
    return false;
  }
  // Only the low 24 bits are encoded descriptor state, and every one of them
  // participates in the sidecar cross-check, so each flip is detectable.
  *word ^= 1u << rng_.Uniform(24);
  Count(FaultKind::kDescCorrupt);
  return true;
}

}  // namespace npr
