// Deterministic fault injector.
//
// One FaultInjector instance is owned by the Router when its config carries a
// non-empty FaultPlan, and a raw pointer to it is handed to every hook site
// (memory channels, backing stores, MAC ports, token rings, packet queues,
// stage context loops). Each hook asks the injector a question ("extra
// latency for this access?", "does this frame survive the wire?") and the
// injector answers from its private seeded Rng, so a given (plan, workload)
// pair produces the identical fault sequence on every run.
//
// Hooks that a plan leaves disabled consume no Rng draws, so enabling one
// fault class does not perturb the schedule of another.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/fault/fault_plan.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace npr {

struct VrpProgram;

enum class FaultKind : uint8_t {
  kMemLatencySpike,
  kMemBitFlip,
  kFrameCrcDrop,
  kFrameCorrupt,
  kFrameTruncate,
  kRxStall,
  kContextCrash,
  kTokenDrop,
  kDescCorrupt,
  kTokenLost,
  kRestartLost,
  kPentiumHang,
  kVrpTrap,
  kCtrlDrop,
  kCtrlDup,
  kCtrlDelay,
  kLinkDown,
  kFabricFrameLoss,
  kNodeCrash,
  kUpgradeCrash,
  kImageCorrupt,
  kCount,
};

inline constexpr size_t kFaultKindCount = static_cast<size_t>(FaultKind::kCount);

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, EventQueue& engine);

  const FaultPlan& plan() const { return plan_; }

  // Number of faults of `kind` injected so far.
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)];
  }
  uint64_t total_injected() const;

  // --- memory channel / backing store hooks ---

  // Extra latency (possibly 0) to add to one memory access.
  SimTime MemExtraLatencyPs();

  // Possibly flips one bit in the bytes being returned from a read. Returns
  // true if a flip happened. The backing store itself is not modified.
  bool MaybeFlipReadBits(std::span<uint8_t> out);

  // --- MAC port hooks ---

  enum class FrameFault : uint8_t { kNone, kCrcDrop, kCorrupt, kTruncate };

  // Decides the fate of one received frame. kCorrupt flips one bit inside
  // the IP header in place (so the checksum fails downstream); kTruncate
  // sets *truncate_to to the surviving byte count.
  FrameFault OnFrameRx(std::span<uint8_t> frame, size_t* truncate_to);

  // Extra stall (possibly 0) before the RX path accepts a frame.
  SimTime RxStallPs();

  // --- token ring hooks ---

  // Extra delay (possibly 0) for one token hand-off, modelling a dropped
  // offer that has to be redelivered.
  SimTime TokenOfferDelayPs();

  // True when this hand-off loses the token outright (the offer never
  // arrives; recovery requires regeneration).
  bool ShouldLoseToken();

  // --- context crash hooks ---

  // Polled by stage context loops at their crash-safe point (top of loop,
  // no token or claim held). Crashes follow an exponential inter-arrival
  // process; at most one context crashes per deadline.
  bool ShouldCrashContext();

  SimTime context_restart_ps() const { return plan_.context_restart_ps; }

  // True when the scheduled restart of a crashed context is lost (the
  // restart event must not be scheduled; a watchdog recovers the context).
  bool ShouldLoseRestart();

  // --- Pentium hook ---

  // Polled by the Pentium loop at its top. Nonzero when a hang is due: the
  // loop busies itself for the returned duration, ignoring doorbells.
  // Hangs follow an exponential inter-arrival process.
  SimTime PentiumHangPs();

  // Simulated instant the most recent Pentium hang began (MTTD accounting).
  SimTime last_pentium_hang_at() const { return last_hang_at_; }

  // --- control channel hook ---

  enum class CtrlFault : uint8_t { kNone, kDrop, kDup, kDelay };

  // Decides the fate of one control message (or ack). kDelay sets
  // *extra_delay_ps to the added transit time.
  CtrlFault OnCtrlMessage(SimTime* extra_delay_ps);

  // --- VRP runtime hook ---

  // True when this program run traps at runtime despite static admission.
  bool ShouldTrapVrp();

  // --- in-service upgrade hooks ---

  // Polled by the upgrade orchestrator when a cutover/promotion step event
  // fires. True means the step is lost mid-way (the event does nothing);
  // only the orchestrator's step-deadline watchdog can recover.
  bool ShouldCrashUpgrade();

  // Possibly flips one bit in the immediate of one instruction of a VRP
  // image crossing the control channel (the sender's copy is intact — the
  // corruption happens in transit). Returns true if a flip happened; the
  // install-time checksum is what detects it.
  bool MaybeCorruptImage(VrpProgram* program);

  // --- packet queue hook ---

  // Possibly flips one bit in the low 24 encoded bits of a descriptor word
  // read back from SRAM. Returns true if a flip happened.
  bool MaybeCorruptDescriptor(uint32_t* word);

  // --- cluster hooks (polled by the node's cluster supervisor) ---

  // Nonzero when this node's internal fabric link is due to flap: the link
  // goes down for the returned duration. Exponential inter-arrivals.
  SimTime LinkDownPs();

  // True when the fabric eats this internal frame crossing.
  bool ShouldDropFabricFrame();

  // Nonzero when this node is due to crash whole: the node is dead for the
  // returned duration (kForever when plan.node_crash_ps == 0, i.e. the
  // crash is permanent fail-stop). Exponential inter-arrivals.
  static constexpr SimTime kForever = INT64_MAX;
  SimTime NodeCrashPs();

  // Simulated instants the most recent link flap / node crash began
  // (cluster MTTD accounting).
  SimTime last_link_down_at() const { return last_link_down_at_; }
  SimTime last_node_crash_at() const { return last_node_crash_at_; }

  // Disarming stops all *new* fault injection (every hook answers
  // "no fault" without consuming Rng draws). Used by recovery experiments
  // to end the fault burst and measure the healed router.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

 private:
  void Count(FaultKind kind) { injected_[static_cast<size_t>(kind)] += 1; }

  const FaultPlan plan_;
  EventQueue& engine_;
  Rng rng_;
  bool armed_ = true;
  SimTime next_crash_at_ = 0;
  SimTime next_hang_at_ = 0;
  SimTime last_hang_at_ = 0;
  SimTime next_link_down_at_ = 0;
  SimTime next_node_crash_at_ = 0;
  SimTime last_link_down_at_ = 0;
  SimTime last_node_crash_at_ = 0;
  std::array<uint64_t, kFaultKindCount> injected_{};
};

}  // namespace npr

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
