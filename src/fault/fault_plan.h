// Declarative fault-injection plans.
//
// A FaultPlan describes *what* can go wrong and how often; a FaultInjector
// (fault_injector.h) turns the plan into concrete, seed-deterministic fault
// events at the hook points wired through the simulator. A default-constructed
// plan injects nothing and the router builds no injector at all, so the
// zero-fault configuration is bit-identical to a build without this
// subsystem. The named presets below are the "shipped" plans exercised by
// tests/fault_test.cc and bench/fault_chaos.cc.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>

#include "src/sim/time.h"

namespace npr {

struct FaultPlan {
  // Seed for the injector's private Rng; the same (plan, workload) pair
  // replays every fault at the identical simulated instant.
  uint64_t seed = 0xfa017ULL;

  // --- memory channels (DRAM/SRAM/Scratch timing) ---
  // Per-access probability that the access takes an extra latency spike
  // (a refresh collision, an arbitration stall).
  double mem_latency_spike_p = 0.0;
  SimTime mem_latency_spike_ps = 2 * kPsPerUs;
  // Per-read probability of a single-bit flip in the returned data (the
  // stored bytes stay intact — a transient read disturbance).
  double mem_bit_flip_p = 0.0;

  // --- MAC ports (wire-side receive faults) ---
  double frame_crc_p = 0.0;       // frame fails CRC: dropped whole at the MAC
  double frame_corrupt_p = 0.0;   // single-bit flip inside the IP header
  double frame_truncate_p = 0.0;  // frame cut short on the wire
  double rx_stall_p = 0.0;        // receive path stalls before serialization
  SimTime rx_stall_ps = 20 * kPsPerUs;

  // --- MicroEngine contexts ---
  // Mean inter-arrival of context crashes (exponential); 0 disables. A
  // crashed context leaves its token-ring seat, is reinstalled after
  // `context_restart_ps`, and rejoins the rotation.
  SimTime context_crash_mean_ps = 0;
  SimTime context_restart_ps = 100 * kPsPerUs;

  // --- token ring ---
  // Probability a token hand-off signal is dropped and must be redelivered
  // after `token_redeliver_ps` (models a lost inter-thread signal).
  double token_drop_p = 0.0;
  SimTime token_redeliver_ps = 5 * kPsPerUs;

  // --- packet queues ---
  // Per-pop probability of a single-bit corruption in the descriptor word
  // read back from SRAM (the stored word stays intact).
  double desc_corrupt_p = 0.0;

  bool Any() const {
    return mem_latency_spike_p > 0 || mem_bit_flip_p > 0 || frame_crc_p > 0 ||
           frame_corrupt_p > 0 || frame_truncate_p > 0 || rx_stall_p > 0 ||
           context_crash_mean_ps > 0 || token_drop_p > 0 || desc_corrupt_p > 0;
  }

  // --- shipped plans ---

  static FaultPlan MemoryFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.mem_latency_spike_p = 2e-4;
    p.mem_bit_flip_p = 1e-4;
    return p;
  }

  static FaultPlan FrameFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.frame_crc_p = 0.02;
    p.frame_corrupt_p = 0.02;
    p.frame_truncate_p = 0.01;
    p.rx_stall_p = 0.01;
    return p;
  }

  static FaultPlan ContextCrashes(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.context_crash_mean_ps = 2 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    return p;
  }

  static FaultPlan TokenFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.token_drop_p = 0.01;
    return p;
  }

  static FaultPlan DescriptorFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.desc_corrupt_p = 0.005;
    return p;
  }

  // Everything at once, rates dialed so the router stays live.
  static FaultPlan Chaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.mem_latency_spike_p = 1e-4;
    p.mem_bit_flip_p = 5e-5;
    p.frame_crc_p = 0.01;
    p.frame_corrupt_p = 0.01;
    p.frame_truncate_p = 0.005;
    p.rx_stall_p = 0.005;
    p.context_crash_mean_ps = 3 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    p.token_drop_p = 0.005;
    p.desc_corrupt_p = 0.002;
    return p;
  }
};

}  // namespace npr

#endif  // SRC_FAULT_FAULT_PLAN_H_
