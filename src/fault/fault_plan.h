// Declarative fault-injection plans.
//
// A FaultPlan describes *what* can go wrong and how often; a FaultInjector
// (fault_injector.h) turns the plan into concrete, seed-deterministic fault
// events at the hook points wired through the simulator. A default-constructed
// plan injects nothing and the router builds no injector at all, so the
// zero-fault configuration is bit-identical to a build without this
// subsystem. The named presets below are the "shipped" plans exercised by
// tests/fault_test.cc and bench/fault_chaos.cc.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>

#include "src/sim/time.h"

namespace npr {

struct FaultPlan {
  // Seed for the injector's private Rng; the same (plan, workload) pair
  // replays every fault at the identical simulated instant.
  uint64_t seed = 0xfa017ULL;

  // --- memory channels (DRAM/SRAM/Scratch timing) ---
  // Per-access probability that the access takes an extra latency spike
  // (a refresh collision, an arbitration stall).
  double mem_latency_spike_p = 0.0;
  SimTime mem_latency_spike_ps = 2 * kPsPerUs;
  // Per-read probability of a single-bit flip in the returned data (the
  // stored bytes stay intact — a transient read disturbance).
  double mem_bit_flip_p = 0.0;

  // --- MAC ports (wire-side receive faults) ---
  double frame_crc_p = 0.0;       // frame fails CRC: dropped whole at the MAC
  double frame_corrupt_p = 0.0;   // single-bit flip inside the IP header
  double frame_truncate_p = 0.0;  // frame cut short on the wire
  double rx_stall_p = 0.0;        // receive path stalls before serialization
  SimTime rx_stall_ps = 20 * kPsPerUs;

  // --- MicroEngine contexts ---
  // Mean inter-arrival of context crashes (exponential); 0 disables. A
  // crashed context leaves its token-ring seat, is reinstalled after
  // `context_restart_ps`, and rejoins the rotation.
  SimTime context_crash_mean_ps = 0;
  SimTime context_restart_ps = 100 * kPsPerUs;

  // --- token ring ---
  // Probability a token hand-off signal is dropped and must be redelivered
  // after `token_redeliver_ps` (models a lost inter-thread signal).
  double token_drop_p = 0.0;
  SimTime token_redeliver_ps = 5 * kPsPerUs;
  // Probability a token hand-off is lost outright: the offer is never
  // delivered and the ring wedges until something (the HealthMonitor)
  // regenerates the token. Distinct from token_drop_p, which self-heals.
  double token_lost_p = 0.0;

  // --- packet queues ---
  // Per-pop probability of a single-bit corruption in the descriptor word
  // read back from SRAM (the stored word stays intact).
  double desc_corrupt_p = 0.0;

  // --- crash-restart path ---
  // Probability the scheduled restart of a crashed context is itself lost
  // (the restart event never fires); only a watchdog can bring the context
  // back.
  double restart_lost_p = 0.0;

  // --- Pentium ---
  // Mean inter-arrival of Pentium hangs (exponential); 0 disables. A hang
  // makes the Pentium unresponsive for `pentium_hang_ps`: doorbells
  // coalesce, I2O work piles up, and path C must shed until it returns.
  SimTime pentium_hang_mean_ps = 0;
  SimTime pentium_hang_ps = 1 * kPsPerMs;

  // --- control channel (StrongARM<->Pentium install/remove/getdata/setdata) ---
  double ctrl_drop_p = 0.0;   // message (or its ack) vanishes in transit
  double ctrl_dup_p = 0.0;    // message is delivered twice
  double ctrl_delay_p = 0.0;  // message is delayed by ctrl_delay_ps
  SimTime ctrl_delay_ps = 150 * kPsPerUs;

  // --- VRP runtime ---
  // Per-program-run probability that an admitted forwarder traps at runtime
  // anyway (a flipped ISTORE bit, an unmodelled data-dependent path). This
  // is what the quarantine escalation exists to contain.
  double vrp_trap_p = 0.0;

  // --- in-service upgrade (src/core/upgrade.h) ---
  // Per-step probability that an upgrade orchestration step (cutover or
  // promotion) is lost mid-way — the event simply never runs, as if the
  // control processor died between the snapshot and the pointer flip. Only
  // the orchestrator's own step-deadline watchdog can detect it and roll
  // the upgrade back.
  double upgrade_crash_p = 0.0;
  // Per-transfer probability that a VRP image crossing the control channel
  // picks up a single-bit flip in one instruction word. The install-time
  // checksum (VrpImageChecksum) exists to catch exactly this.
  double image_corrupt_p = 0.0;

  // --- cluster (multi-chassis) fault classes ---
  // These are polled by each node's cluster supervisor, not by single-chassis
  // hook sites, so a standalone Router carrying them injects nothing.
  //
  // Internal-link flap: mean inter-arrival of this node's fabric link going
  // down (exponential; 0 disables), and how long it stays down before the
  // flap ends. Frames crossing a down link are dropped and counted.
  SimTime link_down_mean_ps = 0;
  SimTime link_down_ps = 500 * kPsPerUs;
  // Switch-fabric frame loss: per-crossing probability that the fabric
  // silently eats an internal frame (a backplane CRC hit, an overrun).
  double fabric_loss_p = 0.0;
  // Whole-node crash: mean inter-arrival of this node crashing (exponential;
  // 0 disables) and how long it stays dead before warm restart. A crash
  // duration of 0 means the node never comes back (permanent fail-stop).
  SimTime node_crash_mean_ps = 0;
  SimTime node_crash_ps = 2 * kPsPerMs;

  bool Any() const {
    return mem_latency_spike_p > 0 || mem_bit_flip_p > 0 || frame_crc_p > 0 ||
           frame_corrupt_p > 0 || frame_truncate_p > 0 || rx_stall_p > 0 ||
           context_crash_mean_ps > 0 || token_drop_p > 0 || token_lost_p > 0 ||
           desc_corrupt_p > 0 || restart_lost_p > 0 || pentium_hang_mean_ps > 0 ||
           ctrl_drop_p > 0 || ctrl_dup_p > 0 || ctrl_delay_p > 0 || vrp_trap_p > 0 ||
           upgrade_crash_p > 0 || image_corrupt_p > 0 || link_down_mean_ps > 0 ||
           fabric_loss_p > 0 || node_crash_mean_ps > 0;
  }

  // Per-node seed derivation for cluster runs. Node k's injector must see a
  // stream statistically independent of node j's — deriving with `seed + k`
  // would make adjacent nodes' exponential arrival draws correlated — and
  // the derivation must be a pure function of (base seed, node) so a chaos
  // run replays bit-identically. SplitMix64 finalization gives both: every
  // input bit avalanches through the output. Node faults stay deterministic
  // under changes to *other* nodes' plans because each injector owns a
  // private Rng and disabled classes draw nothing from it.
  static uint64_t DeriveNodeSeed(uint64_t base, int node) {
    uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(node + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // --- shipped plans ---

  static FaultPlan MemoryFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.mem_latency_spike_p = 2e-4;
    p.mem_bit_flip_p = 1e-4;
    return p;
  }

  static FaultPlan FrameFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.frame_crc_p = 0.02;
    p.frame_corrupt_p = 0.02;
    p.frame_truncate_p = 0.01;
    p.rx_stall_p = 0.01;
    return p;
  }

  static FaultPlan ContextCrashes(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.context_crash_mean_ps = 2 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    return p;
  }

  static FaultPlan TokenFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.token_drop_p = 0.01;
    return p;
  }

  static FaultPlan DescriptorFaults(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.desc_corrupt_p = 0.005;
    return p;
  }

  // Everything at once, rates dialed so the router stays live.
  static FaultPlan Chaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.mem_latency_spike_p = 1e-4;
    p.mem_bit_flip_p = 5e-5;
    p.frame_crc_p = 0.01;
    p.frame_corrupt_p = 0.01;
    p.frame_truncate_p = 0.005;
    p.rx_stall_p = 0.005;
    p.context_crash_mean_ps = 3 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    p.token_drop_p = 0.005;
    p.desc_corrupt_p = 0.002;
    return p;
  }

  // The recovery chaos preset: faults that leave the router degraded
  // *forever* unless a HealthMonitor closes the loop — lost tokens, lost
  // restarts, Pentium hangs, runtime VRP traps, and a lossy control
  // channel. Only run this plan with health monitoring attached; without
  // it the wedges it creates are permanent by design.
  static FaultPlan RecoveryChaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.token_lost_p = 3e-5;
    p.context_crash_mean_ps = 4 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    p.restart_lost_p = 0.5;
    p.pentium_hang_mean_ps = 5 * kPsPerMs;
    p.pentium_hang_ps = 1 * kPsPerMs;
    p.vrp_trap_p = 2e-4;
    p.ctrl_drop_p = 0.2;
    p.ctrl_dup_p = 0.1;
    p.ctrl_delay_p = 0.2;
    return p;
  }

  // Overload chaos: ambient wire and engine faults at rates that *compose*
  // with adversarial offered load rather than dominate it. Meant to run
  // alongside a hostile TrafficGen mode and an OverloadGovernor: the frame
  // faults keep MAC accounting honest while the governor is dropping, and
  // the context churn stresses the ladder's pressure sampling.
  static FaultPlan OverloadChaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.frame_crc_p = 0.005;
    p.frame_corrupt_p = 0.005;
    p.rx_stall_p = 0.002;
    p.mem_latency_spike_p = 5e-5;
    p.token_drop_p = 0.002;
    p.context_crash_mean_ps = 5 * kPsPerMs;
    p.context_restart_ps = 50 * kPsPerUs;
    return p;
  }

  // Upgrade chaos: every way an in-service upgrade can go wrong at once — a
  // lossy/duplicating control channel carrying the new image, bit flips in
  // the image in transit, and orchestration steps lost mid-cutover — over
  // mild ambient fabric loss. Meant for rolling-upgrade experiments with an
  // UpgradeOrchestrator attached: every failure either rejects at install
  // (checksum), rolls back (step watchdog), or retries (channel), and the
  // cluster must end version-consistent.
  static FaultPlan UpgradeChaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.ctrl_drop_p = 0.15;
    p.ctrl_dup_p = 0.05;
    p.ctrl_delay_p = 0.1;
    p.image_corrupt_p = 0.2;
    p.upgrade_crash_p = 0.25;
    p.fabric_loss_p = 0.001;
    return p;
  }

  // Cluster chaos: the three multi-chassis fault classes at rates a 4-node
  // cluster with reconvergence survives. Apply to a ClusterRouter (which
  // derives per-node seeds via DeriveNodeSeed); meaningless on a standalone
  // Router, whose hook sites never poll these classes.
  static FaultPlan ClusterChaos(uint64_t seed = 0xfa017ULL) {
    FaultPlan p;
    p.seed = seed;
    p.link_down_mean_ps = 20 * kPsPerMs;
    p.link_down_ps = 500 * kPsPerUs;
    p.fabric_loss_p = 0.002;
    p.node_crash_mean_ps = 40 * kPsPerMs;
    p.node_crash_ps = 4 * kPsPerMs;
    return p;
  }
};

}  // namespace npr

#endif  // SRC_FAULT_FAULT_PLAN_H_
