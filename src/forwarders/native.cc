#include "src/forwarders/native.h"

#include "src/net/ipv4.h"
#include "src/net/tcp.h"

namespace npr {

NativeAction FullIpForwarder::Process(NativeContext& ctx) {
  auto l3 = ctx.packet->l3();
  auto ip = Ipv4Header::Parse(l3);
  if (!ip || !Ipv4Header::Validate(l3)) {
    return NativeAction::kDrop;
  }
  if (ip->ttl <= 1) {
    // ICMP time-exceeded generation is left to the control plane.
    return NativeAction::kDrop;
  }

  // Option processing (§4.4: the full protocol "including options").
  if (ip->has_options()) {
    ++options_handled_;
    ctx.extra_cycles += static_cast<uint32_t>(ip->options.size()) * 8;
    for (size_t i = 0; i + 1 < ip->options.size();) {
      const uint8_t type = ip->options[i];
      if (type == 0) {  // end of options
        break;
      }
      if (type == 1) {  // no-op
        ++i;
        continue;
      }
      const uint8_t len = ip->options[i + 1];
      if (len < 2 || i + len > ip->options.size()) {
        return NativeAction::kDrop;  // malformed option
      }
      if (type == 7 && len >= 7) {
        // Record route: stamp this hop's address if the pointer has room.
        const uint8_t ptr = ip->options[i + 2];
        if (ptr >= 4 && static_cast<size_t>(ptr) + 3 <= len) {
          const size_t slot = i + ptr - 1;
          ip->options[slot] = 10;  // 10.x.y.z router address, first octet
          ip->options[slot + 1] = 0;
          ip->options[slot + 2] = 0;
          ip->options[slot + 3] = ctx.out_port;
          ip->options[i + 2] = static_cast<uint8_t>(ptr + 4);
        }
      }
      i += len;
    }
  }

  // Route, TTL, checksum, MAC rewrite.
  auto lookup = ctx.routes->Lookup(ip->dst);
  ctx.extra_cycles += static_cast<uint32_t>(lookup.memory_accesses) * 40;
  if (!lookup.entry) {
    return NativeAction::kDrop;
  }
  ctx.out_port = lookup.entry->out_port;

  ip->ttl -= 1;
  ip->Write(l3);  // recomputes the checksum from scratch (full IP path)

  EthernetHeader eth = *EthernetHeader::Parse(ctx.packet->bytes());
  eth.src = PortMac(ctx.out_port);
  eth.dst = lookup.entry->next_hop_mac;
  eth.Write(ctx.packet->bytes());

  // Update counters in flow state: [0] processed, [4] with-options.
  if (ctx.state_bytes >= 8 && ctx.sram != nullptr) {
    ctx.sram->WriteU32(ctx.state_addr, ctx.sram->ReadU32(ctx.state_addr) + 1);
    if (ip->has_options()) {
      ctx.sram->WriteU32(ctx.state_addr + 4, ctx.sram->ReadU32(ctx.state_addr + 4) + 1);
    }
  }
  ++processed_;
  return NativeAction::kForward;
}

NativeAction TcpProxyForwarder::Process(NativeContext& ctx) {
  auto l3 = ctx.packet->l3();
  auto ip = Ipv4Header::Parse(l3);
  if (!ip || ip->protocol != kIpProtoTcp) {
    return NativeAction::kForward;
  }
  auto l4 = l3.subspan(ip->header_bytes());
  auto tcp = TcpHeader::Parse(l4);
  if (!tcp) {
    return NativeAction::kDrop;
  }
  if (ctx.sram == nullptr || ctx.state_bytes < 20) {
    return NativeAction::kForward;
  }

  uint32_t phase = ctx.sram->ReadU32(ctx.state_addr);
  switch (phase) {
    case 0:  // expect SYN
      if (tcp->flags & kTcpFlagSyn) {
        ctx.sram->WriteU32(ctx.state_addr + 4, tcp->seq);
        ctx.sram->WriteU32(ctx.state_addr, 1);
      }
      break;
    case 1:  // expect the peer's ACK completing the handshake
      if (tcp->flags & kTcpFlagAck) {
        ctx.sram->WriteU32(ctx.state_addr + 8, tcp->ack);
        ctx.sram->WriteU32(ctx.state_addr, 2);
        ++handshakes_;
      }
      break;
    default: {
      // Established: inspect payload; once enough has been vetted, mark the
      // connection splice-eligible so the control half can push the data
      // path down to the MicroEngines.
      const size_t payload = l4.size() > tcp->header_bytes() ? l4.size() - tcp->header_bytes()
                                                             : 0;
      const uint32_t seen = ctx.sram->ReadU32(ctx.state_addr + 12) +
                            static_cast<uint32_t>(payload);
      ctx.sram->WriteU32(ctx.state_addr + 12, seen);
      ctx.extra_cycles += static_cast<uint32_t>(payload) / 2;  // content scan
      if (seen >= 128) {
        ctx.sram->WriteU32(ctx.state_addr + 16, 1);
      }
      break;
    }
  }
  return NativeAction::kForward;
}

}  // namespace npr
