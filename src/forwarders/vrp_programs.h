// The paper's example data forwarders (Table 5), written in VRP assembly.
//
// Each function assembles, verifies, and returns a ready-to-install
// program. The programs are *functional*: they really read and modify the
// MP bytes and their SRAM flow state, against the frame layout used
// throughout this repo (Ethernet 14 B + IPv4 20 B + TCP/UDP at byte 34).
//
// Packet-register map for a minimum frame (64-byte MP, 32-bit big-endian
// words):
//   p3  = bytes 12..15 : ethertype (hi 16) | IP ver/ihl/tos (lo 16)
//   p5  = bytes 20..23 : IP id | flags/frag
//   p6  = bytes 24..27 : TTL | proto | IP checksum
//   p7  = bytes 28..31 : IP src
//   p8  = bytes 32..35 : IP dst (hi 16 in p7's tail... see note) — actually
//         bytes 30..33 hold IP dst; p8 = IP dst tail | TCP src port
//   p9  = bytes 36..39 : TCP dst port | seq hi
//   p10 = bytes 40..43 : seq lo | ack hi
//   p11 = bytes 44..47 : ack lo | data-off/flags
//   p12 = bytes 48..51 : window | checksum
// (IPv4 src is bytes 26..29, dst 30..33 — they straddle words; forwarders
// that need them shift-and-or two packet registers, as real MicroEngine
// code does.)

#ifndef SRC_FORWARDERS_VRP_PROGRAMS_H_
#define SRC_FORWARDERS_VRP_PROGRAMS_H_

#include "src/vrp/isa.h"

namespace npr {

// TCP splicer (§4.4 [21]): rewrites sequence/ack numbers by the splice
// deltas and fixes the checksum incrementally. State (24 B):
//   [0]  seq delta   [4] ack delta   [8] port map (src<<16|dst)
//   [12] checksum adjust   [16] spliced flag   [20] packet count
VrpProgram BuildTcpSplicer();

// Wavelet video dropper (§4.4 [3]): drops packets whose layer tag exceeds
// the control-set cutoff; counts forwarded packets. State (8 B):
//   [0] cutoff layer   [4] forwarded count
VrpProgram BuildWaveletDropper();

// ACK monitor (§4.4 [17]): tracks repeat ACKs per flow. State (12 B):
//   [0] last ack   [4] duplicate count   [8] total acks
VrpProgram BuildAckMonitor();

// SYN monitor (§4.4): counts SYN packets (SYN-flood detection). State (4 B):
//   [0] SYN count
VrpProgram BuildSynMonitor();

// Port filter (§4.4): drops packets whose TCP destination port falls in any
// of up to five [lo, hi] ranges. State (20 B): five words of lo<<16|hi.
VrpProgram BuildPortFilter();

// Minimal IP (§4.4): decrement TTL, fix the checksum incrementally, replace
// the Ethernet header from cached route state. State (24 B):
//   [0..11] next-hop dst MAC + src MAC (packed)   [12] out port
//   [16] forwarded count   [20] TTL-expired count
VrpProgram BuildIpMinimal();

// Packet tagger (one of the §1 motivating services): rewrites the IPv4
// TOS/DSCP byte to the control-set class and repairs the header checksum
// incrementally. State (8 B): [0] class byte  [4] tagged count
VrpProgram BuildDscpTagger();

// Token-bucket rate limiter: spends one token per packet, drops when the
// bucket is empty; the control half refills the bucket periodically (the
// data plane has no clock — a deliberate VRP property). State (8 B):
//   [0] tokens remaining  [4] dropped count
VrpProgram BuildRateLimiter();

// Input-side weighted-fair-queueing approximation (§3.4.1: "the larger
// computing capacity available in input-side protocol processing could be
// used to select the appropriate priority queue and thereby approximate
// more complex schemes, such as weighted fair queuing. We have not
// evaluated this in detail." — bench/wfq_approximation evaluates it).
// Deficit-style: of every 4 packets, `weight` go to the protected priority
// queue and the rest to best-effort. State (8 B): [0] weight 0..4
// [4] accumulator.
VrpProgram BuildWfqApproximator();

// A synthetic forwarder of `blocks` Figure-9 code blocks (10 register
// instructions + one 4-byte SRAM read each); used by tests and the
// admission-control benches.
VrpProgram BuildSyntheticBlocks(int blocks);

}  // namespace npr

#endif  // SRC_FORWARDERS_VRP_PROGRAMS_H_
