#include "src/forwarders/control.h"

#include <cstring>

#include "src/forwarders/vrp_programs.h"
#include "src/sim/log.h"

namespace npr {
namespace {

uint32_t ReadStateWord(Router& router, uint32_t fid, uint32_t offset) {
  auto data = router.GetData(fid);
  if (data.size() < offset + 4) {
    return 0;
  }
  uint32_t v;
  std::memcpy(&v, data.data() + offset, 4);
  return v;
}

void WriteStateWord(Router& router, uint32_t fid, uint32_t offset, uint32_t value) {
  auto data = router.GetData(fid);
  if (data.size() < offset + 4) {
    return;
  }
  std::memcpy(data.data() + offset, &value, 4);
  router.SetData(fid, data);
}

// Folded one's-complement sum of (~old + new) for a 32-bit field changed
// by `delta` (new = old + delta): over the two 16-bit halves this equals
// fold(delta) plus the expected carry propagation; computing it from the
// delta alone is exact because (~m + m') sums telescope per RFC 1624.
uint32_t OnesComplementAdjust(uint32_t delta) {
  // (~old_hi + new_hi) + (~old_lo + new_lo) == fold(delta) + 0xffff-ish
  // carries; summing delta's halves with end-around carry gives the same
  // residue mod 0xffff.
  uint32_t sum = (delta >> 16) + (delta & 0xffff);
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return sum;
}

}  // namespace

uint64_t PerfMonitorController::Poll() {
  const uint64_t value = ReadStateWord(router_, fid_, offset_);
  const uint64_t delta = value - last_value_;
  last_value_ = value;
  deltas_.push_back(delta);
  return delta;
}

bool SynFloodDetector::Poll() {
  if (filter_fid_ != 0) {
    return true;
  }
  const uint64_t count = ReadStateWord(router_, monitor_fid_, 0);
  const uint64_t delta = count - last_count_;
  last_count_ = count;
  if (delta < threshold_) {
    return false;
  }
  // Attack: deploy the port filter against every packet.
  VrpProgram filter = BuildPortFilter();
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &filter;
  auto outcome = router_.Install(req);
  if (!outcome.ok) {
    NPR_WARN("syn-flood filter rejected: %s", outcome.error.c_str());
    return false;
  }
  filter_fid_ = outcome.fid;
  // Program range 0: block [lo, hi] (remaining ranges stay empty).
  WriteStateWord(router_, filter_fid_, 0,
                 static_cast<uint32_t>(block_lo_) << 16 | block_hi_);
  return true;
}

uint32_t WaveletController::Poll(double interval_sec) {
  const uint64_t count = ReadStateWord(router_, fid_, 4);
  const uint64_t delta = count - last_count_;
  last_count_ = count;
  const double rate = interval_sec > 0 ? static_cast<double>(delta) / interval_sec : 0;
  if (rate > target_pps_ * 1.1 && cutoff_ > 1) {
    --cutoff_;  // congested: drop one more layer
  } else if (rate < target_pps_ * 0.9 && cutoff_ < 16) {
    ++cutoff_;  // headroom: admit one more layer
  }
  WriteStateWord(router_, fid_, 0, cutoff_);
  return cutoff_;
}

bool SpliceController::Poll() {
  if (splicer_fid_ != 0) {
    return true;
  }
  // Proxy state word [16] flags splice eligibility (see TcpProxyForwarder).
  if (ReadStateWord(router_, proxy_fid_, 16) == 0) {
    return false;
  }
  VrpProgram splicer = BuildTcpSplicer();
  InstallRequest req;
  req.key = flow_;
  req.where = Where::kMicroEngine;
  req.program = &splicer;
  auto outcome = router_.Install(req);
  if (!outcome.ok) {
    NPR_WARN("splicer rejected: %s", outcome.error.c_str());
    return false;
  }
  splicer_fid_ = outcome.fid;
  // Seed the splice deltas from the proxy's observed sequence numbers, and
  // precompute the one's-complement checksum adjustment covering both the
  // seq and ack rewrites (RFC 1624; see BuildTcpSplicer).
  const uint32_t peer_seq = ReadStateWord(router_, proxy_fid_, 4);
  const uint32_t local_seq = ReadStateWord(router_, proxy_fid_, 8);
  const uint32_t seq_delta = local_seq - peer_seq;
  const uint32_t ack_delta = peer_seq - local_seq;
  WriteStateWord(router_, splicer_fid_, 0, seq_delta);
  WriteStateWord(router_, splicer_fid_, 4, ack_delta);
  uint32_t adjust = OnesComplementAdjust(seq_delta) + OnesComplementAdjust(ack_delta);
  while (adjust >> 16) {
    adjust = (adjust & 0xffff) + (adjust >> 16);
  }
  WriteStateWord(router_, splicer_fid_, 12, adjust);
  WriteStateWord(router_, splicer_fid_, 16, 1);  // spliced
  // The proxy no longer needs to see this flow: remove its Pentium binding
  // so the fast path carries every subsequent packet.
  router_.Remove(proxy_fid_);
  return true;
}

}  // namespace npr
