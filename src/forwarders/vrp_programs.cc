#include "src/forwarders/vrp_programs.h"

#include <cassert>
#include <string>

#include "src/vrp/assembler.h"
#include "src/vrp/verifier.h"

// Frame layout these programs are written against (see net/packet.h):
//   byte 22      IPv4 TTL          -> p5 bits 15..8
//   byte 23      IPv4 protocol     -> p5 bits 7..0
//   bytes 24-25  IPv4 checksum     -> p6 bits 31..16
//   bytes 36-37  TCP dst port      -> p9 bits 31..16
//   bytes 38-41  TCP seq           -> p9 lo16 | p10 hi16
//   bytes 42-45  TCP ack           -> p10 lo16 | p11 hi16
//   byte 47      TCP flags         -> p11 bits 7..0
//   bytes 50-51  TCP checksum      -> p12 bits 15..0
//   byte 54+     payload           -> p13 bits 15..0 onward

namespace npr {
namespace {

VrpProgram MustAssemble(const std::string& name, const std::string& source) {
  AssembleResult result = Assemble(name, source);
  assert(result.ok && "built-in forwarder failed to assemble");
  VerifyResult verified = VerifyProgram(result.program);
  assert(verified.ok && "built-in forwarder failed verification");
  (void)verified;
  return std::move(result.program);
}

}  // namespace

VrpProgram BuildTcpSplicer() {
  return MustAssemble("tcp-splicer", R"(
    .state 24
    ; state: [0] seq delta  [4] ack delta  [8] port map  [12] cksum adjust
    ;        [16] spliced flag  [20] packet count
    ; Checksum handling is exact RFC 1624: state[12] holds the folded
    ; one's-complement sum of both deltas; each 32-bit rewrite that wraps
    ; past 2^32 subtracts one more (2^32 == 1 mod 0xffff).
            ldsram r0, 16
            beq r0, r7, out         ; splice not yet established: pass through
            ldsram r0, 12           ; r0 accumulates the checksum adjustment

            ; --- seq' = seq + seq_delta (seq = p9 lo16 | p10 hi16) ---
            ldpkt r1, p9
            ldpkt r2, p10
            mov r3, r1
            shl r3, 16
            mov r4, r2
            shr r4, 16
            or r3, r4               ; r3 = seq
            ldsram r5, 0
            mov r6, r3              ; r6 = old seq
            add r3, r5              ; r3 = seq'
            bge r3, r6, nw1         ; unsigned carry-out iff new < old
            addi r0, 0xfffe         ; adjust -= 1 (mod 0xffff)
    nw1:    mov r4, r3
            shr r4, 16              ; seq' hi
            shr r1, 16
            shl r1, 16              ; p9 top half preserved
            or r1, r4
            stpkt r1, p9
            mov r4, r3
            shl r4, 16              ; seq' lo into top half
            shl r2, 16
            shr r2, 16              ; p10 bottom half preserved (ack hi)
            or r4, r2
            stpkt r4, p10

            ; --- ack' = ack + ack_delta (ack = p10 lo16 | p11 hi16) ---
            ldpkt r1, p10
            ldpkt r2, p11
            mov r3, r1
            shl r3, 16
            mov r4, r2
            shr r4, 16
            or r3, r4               ; r3 = ack
            ldsram r5, 4
            mov r6, r3              ; r6 = old ack
            add r3, r5              ; r3 = ack'
            bge r3, r6, nw2
            addi r0, 0xfffe
    nw2:    mov r4, r3
            shr r4, 16
            shr r1, 16
            shl r1, 16
            or r1, r4
            stpkt r1, p10
            mov r4, r3
            shl r4, 16
            shl r2, 16
            shr r2, 16
            or r4, r2
            stpkt r4, p11

            ; --- apply the adjustment: HC' = ~fold(~HC + adjust) ---
            ldpkt r6, p12
            mov r1, r6
            andi r1, 0xffff         ; HC
            movi r2, 0xffff
            xor r1, r2              ; ~HC
            add r1, r0
            mov r4, r1
            shr r4, 16
            andi r1, 0xffff
            add r1, r4              ; fold
            mov r4, r1
            shr r4, 16
            andi r1, 0xffff
            add r1, r4              ; fold again
            xor r1, r2
            andi r1, 0xffff
            shr r6, 16
            shl r6, 16              ; window half preserved
            or r6, r1
            stpkt r6, p12

            ; --- packet count ---
            ldsram r5, 20
            addi r5, 1
            stsram r5, 20
    out:    send
  )");
}

VrpProgram BuildWaveletDropper() {
  return MustAssemble("wavelet-dropper", R"(
    .state 8
    ; state: [0] cutoff layer  [4] forwarded count
    ; Layer tag rides in the first payload bytes (p13 lo16): level in the
    ; high byte, subband in the low byte; layer index = level * 4 + subband.
            ldpkt r0, p13
            mov r1, r0
            andi r0, 255            ; subband
            shr r1, 8
            andi r1, 255            ; level
            mov r2, r1
            shl r2, 2
            add r2, r0              ; r2 = layer index
            ldsram r3, 0            ; cutoff
            blt r2, r3, keep
            ; boundary layer: probabilistic keep keyed by the sequence hash
            ; (smooths the quality step at the cutoff)
            mov r4, r2
            sub r4, r3
            bne r4, r7, toss        ; strictly above cutoff: always drop
            ldpkt r5, p14           ; media sequence number
            hash r6, r5
            andi r6, 3
            beq r6, r7, keep        ; keep 1 in 4 at the boundary
    toss:   drop
    keep:   ldsram r4, 4
            addi r4, 1
            stsram r4, 4
            send
  )");
}

VrpProgram BuildAckMonitor() {
  return MustAssemble("ack-monitor", R"(
    .state 12
    ; state: [0] last ack  [4] duplicate count  [8] total acks
            ldpkt r6, p5
            andi r6, 255            ; IP protocol byte
            movi r0, 6
            bne r6, r0, done        ; not TCP
            ldpkt r0, p11
            mov r2, r0
            andi r0, 16             ; ACK flag
            beq r0, r7, done
            ldpkt r1, p10
            shl r1, 16              ; ack hi16 (from p10 lo16)
            shr r2, 16              ; ack lo16 (from p11 hi16)... note order
            or r1, r2               ; r1 = ack number
            ldsram r3, 0
            bne r1, r3, fresh
            ldsram r4, 4            ; repeat ACK
            addi r4, 1
            stsram r4, 4
    fresh:  stsram r1, 0
            ldsram r5, 8
            addi r5, 1
            stsram r5, 8
    done:   send
  )");
}

VrpProgram BuildSynMonitor() {
  return MustAssemble("syn-monitor", R"(
    .state 4
    ; state: [0] SYN count
            ldpkt r6, p5
            andi r6, 255            ; IP protocol byte
            movi r1, 6
            bne r6, r1, done        ; not TCP: byte 47 is payload, not flags
            ldpkt r0, p11
            andi r0, 2              ; SYN flag (low byte of p11)
            beq r0, r7, done
            ldsram r1, 0
            addi r1, 1
            stsram r1, 0
    done:   send
  )");
}

VrpProgram BuildPortFilter() {
  // Five ranges, each one state word lo<<16 | hi; an empty range is 0.
  std::string body = R"(
    .state 20
            ldpkt r0, p9
            shr r0, 16              ; TCP destination port
  )";
  for (int i = 0; i < 5; ++i) {
    const std::string off = std::to_string(i * 4);
    const std::string next = "n" + std::to_string(i);
    body += "        ldsram r1, " + off + "\n";
    body += "        mov r2, r1\n";
    body += "        shr r2, 16\n";           // lo
    body += "        andi r1, 0xffff\n";      // hi
    body += "        blt r0, r2, " + next + "\n";
    body += "        bge r1, r0, reject\n";
    body += next + ":\n";
  }
  body += R"(
            send
    reject: drop
  )";
  return MustAssemble("port-filter", body);
}

VrpProgram BuildIpMinimal() {
  return MustAssemble("ip-minimal", R"(
    .state 24
    ; state: [0..11] new Ethernet header words (dst MAC + src MAC)
    ;        [16] forwarded count  [20] TTL-expired count
            ldpkt r0, p5
            mov r1, r0
            shr r1, 8
            andi r1, 255            ; TTL
            movi r2, 1
            bge r2, r1, expire      ; TTL <= 1
            addi r0, -256           ; TTL - 1 (byte 22 is bits 15..8 of p5)
            stpkt r0, p5
            ; incremental header checksum (RFC 1141): HC' = HC + 0x0100
            ; with end-around carry (p6 hi16 holds the checksum)
            ldpkt r3, p6
            mov r4, r3
            shr r4, 16
            addi r4, 256
            mov r5, r4
            shr r5, 16
            andi r4, 0xffff
            add r4, r5
            shl r4, 16
            shl r3, 16
            shr r3, 16
            or r3, r4
            stpkt r3, p6
            ; replace the Ethernet header from cached route state
            ldsram r5, 0
            stpkt r5, p0
            ldsram r5, 4
            stpkt r5, p1
            ldsram r5, 8
            stpkt r5, p2
            ldsram r6, 16
            addi r6, 1
            stsram r6, 16
            send
    expire: ldsram r6, 20
            addi r6, 1
            stsram r6, 20
            except
  )");
}

VrpProgram BuildDscpTagger() {
  return MustAssemble("dscp-tagger", R"(
    .state 8
    ; state: [0] class byte  [4] tagged count
    ; TOS is frame byte 15 = bits 7..0 of p3; the IP checksum word covering
    ; it pairs TOS with ver/ihl (bytes 14-15), so the incremental update
    ; (RFC 1624) operates on that 16-bit word.
            ldpkt r0, p3
            mov r1, r0
            andi r1, 0xffff         ; old ver/ihl|tos word
            ldsram r2, 0            ; new class
            andi r2, 255
            shr r0, 16
            shl r0, 16              ; ethertype half preserved
            mov r3, r1
            shr r3, 8
            shl r3, 8
            or r3, r2               ; new ver/ihl|tos word
            or r0, r3
            stpkt r0, p3
            beq r1, r3, done        ; unchanged: checksum stays
            ; HC' = ~(~HC + ~m + m') on p6 hi16
            ldpkt r4, p6
            mov r5, r4
            shr r5, 16              ; HC
            movi r6, 0xffff
            xor r5, r6              ; ~HC
            xor r1, r6              ; ~m  (old word)
            add r5, r1
            add r5, r3              ; + m'
            ; fold carries twice (sum of three 16-bit values)
            mov r1, r5
            shr r1, 16
            andi r5, 0xffff
            add r5, r1
            mov r1, r5
            shr r1, 16
            andi r5, 0xffff
            add r5, r1
            xor r5, r6              ; ~sum = HC'
            andi r5, 0xffff
            shl r5, 16
            shl r4, 16
            shr r4, 16
            or r4, r5
            stpkt r4, p6
            ldsram r2, 4
            addi r2, 1
            stsram r2, 4
    done:   send
  )");
}

VrpProgram BuildRateLimiter() {
  return MustAssemble("rate-limiter", R"(
    .state 8
    ; state: [0] tokens remaining  [4] dropped count
            ldsram r0, 0
            beq r0, r7, deny        ; bucket empty
            addi r0, -1
            stsram r0, 0
            send
    deny:   ldsram r1, 4
            addi r1, 1
            stsram r1, 4
            drop
  )");
}

VrpProgram BuildWfqApproximator() {
  return MustAssemble("wfq-approx", R"(
    .state 8
    ; state: [0] weight (0..4)  [4] accumulator
            ldsram r0, 0
            ldsram r1, 4
            add r1, r0              ; acc += weight
            movi r2, 4
            blt r1, r2, low
            sub r1, r2
            stsram r1, 4
            setq 0                  ; this packet rides the protected queue
            send
    low:    stsram r1, 4
            setq 1                  ; best effort
            send
  )");
}

VrpProgram BuildSyntheticBlocks(int blocks) {
  std::string body = ".state 4\n";
  for (int b = 0; b < blocks; ++b) {
    // One Figure-9 combined block: 10 register instructions + one 4-byte
    // SRAM read.
    body += R"(
            movi r0, 7
            addi r0, 3
            shl r0, 2
            mov r1, r0
            xor r1, r0
            or r1, r0
            addi r1, 1
            shr r1, 1
            and r1, r0
            addi r1, 5
            ldsram r2, 0
    )";
  }
  body += "        send\n";
  return MustAssemble("synthetic-" + std::to_string(blocks), body);
}

}  // namespace npr
