// Control-forwarder halves (§4.4).
//
// Many router services split into a data forwarder (runs on the IXP for
// every packet) and a control forwarder (runs on the Pentium, initializes
// and manages the data half through install/getdata/setdata). These
// classes are the control halves of the paper's examples; each is driven
// periodically by the host (examples schedule them on the event queue).

#ifndef SRC_FORWARDERS_CONTROL_H_
#define SRC_FORWARDERS_CONTROL_H_

#include <cstdint>
#include <vector>

#include "src/core/router.h"

namespace npr {

// Performance monitoring (§4.4 [20]): periodically aggregates the data
// forwarder's counters and keeps a rate history a coordinator could pull.
class PerfMonitorController {
 public:
  PerfMonitorController(Router& router, uint32_t fid, uint32_t counter_offset = 0)
      : router_(router), fid_(fid), offset_(counter_offset) {}

  // Samples the counter; returns the delta since the previous poll.
  uint64_t Poll();

  uint64_t total() const { return last_value_; }
  const std::vector<uint64_t>& history() const { return deltas_; }

 private:
  Router& router_;
  uint32_t fid_;
  uint32_t offset_;
  uint64_t last_value_ = 0;
  std::vector<uint64_t> deltas_;
};

// SYN-flood detection: polls the SYN monitor; when the SYN rate between
// polls exceeds the threshold, installs the port filter as a general
// MicroEngine forwarder (intrusion-detection pattern: "the control
// forwarder analyzes events and installs filters in the data forwarder").
class SynFloodDetector {
 public:
  SynFloodDetector(Router& router, uint32_t syn_monitor_fid, uint64_t threshold_per_poll)
      : router_(router), monitor_fid_(syn_monitor_fid), threshold_(threshold_per_poll) {}

  // Returns true if the filter was (already or newly) deployed.
  bool Poll();

  bool attack_detected() const { return filter_fid_ != 0; }
  uint32_t filter_fid() const { return filter_fid_; }
  // Blocks destination ports [lo, hi] when deployed.
  void SetBlockedRange(uint16_t lo, uint16_t hi) {
    block_lo_ = lo;
    block_hi_ = hi;
  }

 private:
  Router& router_;
  uint32_t monitor_fid_;
  uint64_t threshold_;
  uint64_t last_count_ = 0;
  uint32_t filter_fid_ = 0;
  uint16_t block_lo_ = 0;
  uint16_t block_hi_ = 0;
};

// Wavelet video control (§4.4 [3]): reads the forwarded count, compares to
// the target rate, and moves the layer cutoff so the data forwarder drops
// high-frequency layers first under congestion.
class WaveletController {
 public:
  WaveletController(Router& router, uint32_t dropper_fid, double target_pps)
      : router_(router), fid_(dropper_fid), target_pps_(target_pps) {}

  // Adjusts the cutoff from the rate since the last poll. `interval_sec`
  // converts counts to rates. Returns the new cutoff.
  uint32_t Poll(double interval_sec);

  uint32_t cutoff() const { return cutoff_; }

 private:
  Router& router_;
  uint32_t fid_;
  double target_pps_;
  uint32_t cutoff_ = 16;  // start permissive (all layers pass)
  uint64_t last_count_ = 0;
};

// TCP splice controller (§4.4 [21]): watches the proxy's flow state; once
// the handshake is vetted, installs the splicer as a per-flow MicroEngine
// forwarder (moving every subsequent packet off the Pentium) and seeds its
// deltas.
class SpliceController {
 public:
  SpliceController(Router& router, uint32_t proxy_fid, FlowKey flow)
      : router_(router), proxy_fid_(proxy_fid), flow_(flow) {}

  // Returns true once spliced.
  bool Poll();

  bool spliced() const { return splicer_fid_ != 0; }
  uint32_t splicer_fid() const { return splicer_fid_; }

 private:
  Router& router_;
  uint32_t proxy_fid_;
  FlowKey flow_;
  uint32_t splicer_fid_ = 0;
};

}  // namespace npr

#endif  // SRC_FORWARDERS_CONTROL_H_
