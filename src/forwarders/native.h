// Native forwarders for the StrongARM and Pentium levels (§4.4).
//
// These are the services too expensive for the VRP budget: full IP with
// option processing (~660 cycles/packet), TCP proxying (~800+), and
// configurable synthetic services used by the robustness experiments.

#ifndef SRC_FORWARDERS_NATIVE_H_
#define SRC_FORWARDERS_NATIVE_H_

#include <cstdint>
#include <string>

#include "src/core/forwarder.h"

namespace npr {

// Does nothing: the measurement forwarder of §3.6 ("null forwarder").
class NullForwarder : public NativeForwarder {
 public:
  explicit NullForwarder(uint32_t cycles = 150) : cycles_(cycles) {}

  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return cycles_; }
  NativeAction Process(NativeContext& ctx) override {
    (void)ctx;
    ++processed_;
    return NativeAction::kForward;
  }

  uint64_t processed() const { return processed_; }

 private:
  std::string name_ = "null";
  uint32_t cycles_;
  uint64_t processed_ = 0;
};

// A synthetic service burning a fixed number of cycles per packet — the
// robustness experiment's "1510 cycles of extra per-packet processing".
class FixedCostForwarder : public NativeForwarder {
 public:
  FixedCostForwarder(std::string name, uint32_t cycles)
      : name_(std::move(name)), cycles_(cycles) {}

  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return cycles_; }
  NativeAction Process(NativeContext& ctx) override {
    (void)ctx;
    ++processed_;
    return NativeAction::kForward;
  }

  uint64_t processed() const { return processed_; }

 private:
  std::string name_;
  uint32_t cycles_;
  uint64_t processed_ = 0;
};

// Full IP (§4.4: "at least 660 cycles per packet"): complete validation,
// option processing (record-route and timestamp are honored), TTL, and a
// fresh checksum.
class FullIpForwarder : public NativeForwarder {
 public:
  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return 660; }
  uint32_t state_bytes() const override { return 16; }  // counters
  NativeAction Process(NativeContext& ctx) override;

  uint64_t processed() const { return processed_; }
  uint64_t options_handled() const { return options_handled_; }

 private:
  std::string name_ = "ip-full";
  uint64_t processed_ = 0;
  uint64_t options_handled_ = 0;
};

// TCP proxy control half (§4.4 splicing): terminates the handshake, then
// signals that the connection may be spliced. Needs the packet body (it
// inspects application data), so the bridge must move whole frames.
class TcpProxyForwarder : public NativeForwarder {
 public:
  const std::string& name() const override { return name_; }
  uint32_t cycles_per_packet() const override { return 800; }
  uint32_t state_bytes() const override { return 32; }
  bool needs_packet_body() const override { return true; }
  NativeAction Process(NativeContext& ctx) override;

  uint64_t handshakes_seen() const { return handshakes_; }

 private:
  // State layout: [0] connection phase  [4] peer seq  [8] local seq
  //               [12] bytes inspected  [16] splice-eligible flag
  std::string name_ = "tcp-proxy";
  uint64_t handshakes_ = 0;
};

}  // namespace npr

#endif  // SRC_FORWARDERS_NATIVE_H_
