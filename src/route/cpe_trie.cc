#include "src/route/cpe_trie.h"

#include <cassert>
#include <numeric>

namespace npr {
namespace {

// Bits [off, off+k) of `addr`, most-significant first.
uint32_t ExtractBits(uint32_t addr, int off, int k) {
  if (k == 0) {
    return 0;
  }
  return (addr >> (32 - off - k)) & ((uint32_t{1} << k) - 1);
}

}  // namespace

CpeTrie::CpeTrie(std::vector<int> strides) : strides_(std::move(strides)) {
  assert(std::accumulate(strides_.begin(), strides_.end(), 0) == 32 &&
         "strides must cover exactly 32 bits");
  NewNode(0);
}

int CpeTrie::NewNode(int level) {
  Node node;
  node.level = level;
  node.slots.resize(size_t{1} << strides_[static_cast<size_t>(level)]);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void CpeTrie::Insert(const Prefix& prefix, uint32_t value) {
  InsertAt(0, prefix.addr, prefix.len, value, 0);
}

void CpeTrie::InsertAt(int node_idx, uint32_t addr, uint8_t len, uint32_t value, int bit_off) {
  const int level = nodes_[static_cast<size_t>(node_idx)].level;
  const int stride = strides_[static_cast<size_t>(level)];
  const int remaining = static_cast<int>(len) - bit_off;

  if (remaining <= stride) {
    // Controlled expansion: the prefix covers 2^(stride - remaining)
    // consecutive slots of this node. Longer prefixes take priority.
    const uint32_t hi = ExtractBits(addr, bit_off, remaining);
    const uint32_t span = uint32_t{1} << (stride - remaining);
    const uint32_t first = hi << (stride - remaining);
    auto& slots = nodes_[static_cast<size_t>(node_idx)].slots;
    for (uint32_t i = first; i < first + span; ++i) {
      Slot& slot = slots[i];
      if (slot.value < 0 || slot.value_plen <= len) {
        slot.value = static_cast<int32_t>(value);
        slot.value_plen = len;
      }
    }
    return;
  }

  const uint32_t idx = ExtractBits(addr, bit_off, stride);
  int child = nodes_[static_cast<size_t>(node_idx)].slots[idx].child;
  if (child < 0) {
    child = NewNode(level + 1);
    // NewNode may reallocate nodes_; re-resolve the slot reference.
    nodes_[static_cast<size_t>(node_idx)].slots[idx].child = child;
  }
  InsertAt(child, addr, len, value, bit_off + stride);
}

CpeTrie::LookupResult CpeTrie::Lookup(uint32_t ip) const {
  LookupResult result;
  int node_idx = 0;
  int bit_off = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(node_idx)];
    ++result.nodes_visited;
    const int stride = strides_[static_cast<size_t>(node.level)];
    const uint32_t idx = ExtractBits(ip, bit_off, stride);
    const Slot& slot = node.slots[idx];
    if (slot.value >= 0) {
      result.value = static_cast<uint32_t>(slot.value);
    }
    if (slot.child < 0) {
      return result;
    }
    node_idx = slot.child;
    bit_off += stride;
  }
}

void CpeTrie::Clear() {
  nodes_.clear();
  NewNode(0);
}

size_t CpeTrie::MemoryBytes() const {
  size_t slots = 0;
  for (const auto& node : nodes_) {
    slots += node.slots.size();
  }
  return slots * 4;  // one packed 32-bit word per slot in a hardware layout
}

}  // namespace npr
