#include "src/route/route_loader.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace npr {
namespace {

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    out.push_back(tok);
  }
  return out;
}

}  // namespace

bool ParseMac(const std::string& text, MacAddr* out) {
  unsigned b[6];
  if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &b[0], &b[1], &b[2], &b[3], &b[4],
                  &b[5]) != 6) {
    return false;
  }
  for (int i = 0; i < 6; ++i) {
    if (b[i] > 255) {
      return false;
    }
    (*out)[static_cast<size_t>(i)] = static_cast<uint8_t>(b[i]);
  }
  return true;
}

RouteLoadResult LoadRoutesFromString(const std::string& text, RouteTable& table) {
  RouteLoadResult result;
  std::istringstream in(text);
  std::string raw;
  int number = 0;

  auto fail = [&](const std::string& why) {
    result.ok = false;
    result.error = "line " + std::to_string(number) + ": " + why;
    return result;
  };

  while (std::getline(in, raw)) {
    ++number;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) {
      raw.resize(comment);
    }
    const auto tokens = Tokens(raw);
    if (tokens.empty()) {
      continue;
    }
    if (tokens.size() < 2 || tokens.size() > 3) {
      return fail("expected: <prefix|default> <port> [next-hop-mac]");
    }

    std::optional<Prefix> prefix;
    if (tokens[0] == "default") {
      prefix = Prefix::Make(0, 0);
    } else {
      prefix = Prefix::Parse(tokens[0]);
    }
    if (!prefix) {
      return fail("bad prefix '" + tokens[0] + "'");
    }

    char* end = nullptr;
    const long port = std::strtol(tokens[1].c_str(), &end, 10);
    if (end == tokens[1].c_str() || *end != '\0' || port < 0 || port > 15) {
      return fail("bad port '" + tokens[1] + "' (0..15)");
    }

    RouteEntry entry;
    entry.out_port = static_cast<uint8_t>(port);
    entry.next_hop_mac = PortMac(entry.out_port);
    if (tokens.size() == 3 && !ParseMac(tokens[2], &entry.next_hop_mac)) {
      return fail("bad MAC '" + tokens[2] + "'");
    }
    table.AddRoute(*prefix, entry);
    ++result.routes_loaded;
  }
  result.ok = true;
  return result;
}

RouteLoadResult LoadRoutesFromFile(const std::string& path, RouteTable& table) {
  std::ifstream in(path);
  if (!in) {
    RouteLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return LoadRoutesFromString(text.str(), table);
}

}  // namespace npr
