#include "src/route/route_cache.h"

namespace npr {
namespace {

// Same mixer as the hardware hash unit; the fast path charges one cycle.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RouteCache::RouteCache(int log2_entries)
    : slots_(size_t{1} << log2_entries), mask_((uint32_t{1} << log2_entries) - 1) {}

size_t RouteCache::IndexOf(uint32_t dst_ip) const {
  return static_cast<size_t>(Mix64(dst_ip) & mask_);
}

std::optional<RouteEntry> RouteCache::Lookup(uint32_t dst_ip, uint64_t table_epoch) {
  const Slot& slot = slots_[IndexOf(dst_ip)];
  if (slot.valid && slot.key == dst_ip && slot.epoch == table_epoch) {
    ++hits_;
    return slot.entry;
  }
  ++misses_;
  return std::nullopt;
}

void RouteCache::Insert(uint32_t dst_ip, const RouteEntry& entry, uint64_t table_epoch) {
  Slot& slot = slots_[IndexOf(dst_ip)];
  slot.valid = true;
  slot.key = dst_ip;
  slot.epoch = table_epoch;
  slot.entry = entry;
}

}  // namespace npr
