// Routing table: prefix -> (output port, next-hop MAC), backed by the CPE
// trie for longest-prefix match. Lives in SRAM on the real board (§2.2);
// the cycle cost of walking it is charged by whichever processor performs
// the lookup (StrongARM or Pentium — it exceeds the VRP budget, §4.4).

#ifndef SRC_ROUTE_ROUTE_TABLE_H_
#define SRC_ROUTE_ROUTE_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/net/ethernet.h"
#include "src/route/cpe_trie.h"
#include "src/route/prefix.h"

namespace npr {

struct RouteEntry {
  uint8_t out_port = 0;
  MacAddr next_hop_mac{};
};

class RouteTable {
 public:
  RouteTable() = default;

  // Adds or replaces the route for `prefix`.
  void AddRoute(const Prefix& prefix, const RouteEntry& entry);
  // Convenience: "10.1.0.0/16" -> port with that port's link-peer MAC.
  bool AddRoute(const std::string& cidr, uint8_t out_port);

  // Withdraws a prefix. Returns false if it was not present.
  bool RemoveRoute(const Prefix& prefix);

  struct LookupResult {
    std::optional<RouteEntry> entry;
    int memory_accesses = 0;
  };
  LookupResult Lookup(uint32_t dst_ip) const;

  size_t size() const { return routes_.size(); }
  // Bumped on every mutation; route caches use it for invalidation.
  uint64_t epoch() const { return epoch_; }

  // All installed routes (for diagnostics and the control plane).
  std::vector<std::pair<Prefix, RouteEntry>> Dump() const;

 private:
  void Rebuild();

  std::map<Prefix, RouteEntry> routes_;
  std::vector<RouteEntry> entries_;        // trie values index into this
  std::map<Prefix, uint32_t> entry_index_; // prefix -> slot in entries_
  CpeTrie trie_;
  uint64_t epoch_ = 0;
};

}  // namespace npr

#endif  // SRC_ROUTE_ROUTE_TABLE_H_
