// CIDR prefix type.

#ifndef SRC_ROUTE_PREFIX_H_
#define SRC_ROUTE_PREFIX_H_

#include <cstdint>
#include <optional>
#include <string>

namespace npr {

struct Prefix {
  uint32_t addr = 0;  // host byte order, canonical (bits beyond len are 0)
  uint8_t len = 0;    // 0..32

  // Parses "a.b.c.d/len"; rejects malformed input or len > 32.
  static std::optional<Prefix> Parse(const std::string& text);

  // Canonicalizes: masks addr to len bits.
  static Prefix Make(uint32_t addr, uint8_t len);

  uint32_t Mask() const { return len == 0 ? 0 : ~uint32_t{0} << (32 - len); }
  bool Contains(uint32_t ip) const { return (ip & Mask()) == addr; }

  std::string ToString() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend auto operator<=>(const Prefix&, const Prefix&) = default;
};

}  // namespace npr

#endif  // SRC_ROUTE_PREFIX_H_
