// Longest-prefix match via controlled prefix expansion (Srinivasan &
// Varghese, TOCS 1999 — reference [22] of the paper).
//
// A fixed-stride multibit trie: each prefix is expanded to the next stride
// boundary, with longer prefixes overwriting the expansion of shorter ones
// (leaf pushing). Lookup inspects at most one node per stride level; the
// paper reports this algorithm costs ~236 cycles per packet on the
// StrongARM, far beyond the VRP budget, which is why full lookups run above
// the MicroEngines while the fast path uses a route cache.

#ifndef SRC_ROUTE_CPE_TRIE_H_
#define SRC_ROUTE_CPE_TRIE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/route/prefix.h"

namespace npr {

class CpeTrie {
 public:
  // `strides` must sum to 32. The paper-era default {16, 8, 8} gives at
  // most three memory accesses per lookup.
  explicit CpeTrie(std::vector<int> strides = {16, 8, 8});

  // Inserts (or replaces) a prefix mapping to `value`. Value is an opaque
  // next-hop handle (index into the route table's entry array).
  void Insert(const Prefix& prefix, uint32_t value);

  struct LookupResult {
    std::optional<uint32_t> value;
    int nodes_visited = 0;  // = memory accesses a hardware walk would make
  };
  LookupResult Lookup(uint32_t ip) const;

  // Removes everything (RouteTable rebuilds on withdrawals).
  void Clear();

  size_t node_count() const { return nodes_.size(); }
  // Total table memory if each slot were a 4-byte SRAM word.
  size_t MemoryBytes() const;

 private:
  struct Slot {
    int32_t child = -1;       // node index, or -1
    int32_t value = -1;       // next-hop handle, or -1
    uint8_t value_plen = 0;   // prefix length that wrote `value` (for priority)
  };
  struct Node {
    int level;
    std::vector<Slot> slots;
  };

  int NewNode(int level);
  void InsertAt(int node_idx, uint32_t addr, uint8_t len, uint32_t value, int bit_off);
  // Pushes `value` into every slot of the subtree whose current value was
  // written by a shorter prefix.
  void PushValue(int node_idx, uint32_t value, uint8_t plen);

  std::vector<int> strides_;
  std::vector<Node> nodes_;
};

}  // namespace npr

#endif  // SRC_ROUTE_CPE_TRIE_H_
