// Fast-path route cache (§3.5.1).
//
// The MicroEngine fast path classifies "using a one-cycle hardware hash of
// [the destination] address, and we assume a hit in a route cache". This is
// a direct-mapped cache in SRAM keyed by destination IP, invalidated as a
// whole (epoch tag) whenever the route table changes. A miss diverts the
// packet to the StrongARM for a full CPE lookup.

#ifndef SRC_ROUTE_ROUTE_CACHE_H_
#define SRC_ROUTE_ROUTE_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/route/route_table.h"

namespace npr {

class RouteCache {
 public:
  // `log2_entries`: cache has 2^log2_entries direct-mapped slots.
  explicit RouteCache(int log2_entries = 12);

  // Fast-path lookup: returns the cached entry on a hit (and current epoch).
  std::optional<RouteEntry> Lookup(uint32_t dst_ip, uint64_t table_epoch);

  // Fills the slot after a slow-path lookup.
  void Insert(uint32_t dst_ip, const RouteEntry& entry, uint64_t table_epoch);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  size_t entries() const { return slots_.size(); }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  struct Slot {
    bool valid = false;
    uint32_t key = 0;
    uint64_t epoch = 0;
    RouteEntry entry;
  };

  size_t IndexOf(uint32_t dst_ip) const;

  std::vector<Slot> slots_;
  uint32_t mask_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace npr

#endif  // SRC_ROUTE_ROUTE_CACHE_H_
