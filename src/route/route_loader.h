// Text route-configuration loader.
//
// Lets deployments describe their FIB in a file instead of code:
//
//   # destination        out-port   [next-hop MAC]
//   10.1.0.0/16          1
//   192.168.0.0/24       3          02:aa:bb:cc:dd:ee
//   default              0
//
// '#' starts a comment; 'default' is 0.0.0.0/0.

#ifndef SRC_ROUTE_ROUTE_LOADER_H_
#define SRC_ROUTE_ROUTE_LOADER_H_

#include <string>

#include "src/route/route_table.h"

namespace npr {

struct RouteLoadResult {
  bool ok = false;
  std::string error;  // "line N: ..." when !ok
  int routes_loaded = 0;
};

// Parses `text` (the file contents) into `table`. On error the table keeps
// whatever loaded before the bad line.
RouteLoadResult LoadRoutesFromString(const std::string& text, RouteTable& table);

// Convenience: reads the file at `path` and delegates to the above.
RouteLoadResult LoadRoutesFromFile(const std::string& path, RouteTable& table);

// Parses "aa:bb:cc:dd:ee:ff"; returns false on malformed input.
bool ParseMac(const std::string& text, MacAddr* out);

}  // namespace npr

#endif  // SRC_ROUTE_ROUTE_LOADER_H_
