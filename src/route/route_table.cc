#include "src/route/route_table.h"

namespace npr {

void RouteTable::AddRoute(const Prefix& prefix, const RouteEntry& entry) {
  routes_[prefix] = entry;
  // Inserts are incremental (the trie handles longest-prefix priority on
  // overlap); replacing an existing prefix just rewrites its entry slot.
  // Only withdrawals need a rebuild.
  auto it = entry_index_.find(prefix);
  if (it != entry_index_.end()) {
    entries_[it->second] = entry;
  } else {
    entries_.push_back(entry);
    const uint32_t index = static_cast<uint32_t>(entries_.size() - 1);
    entry_index_[prefix] = index;
    trie_.Insert(prefix, index);
  }
  ++epoch_;
}

bool RouteTable::AddRoute(const std::string& cidr, uint8_t out_port) {
  auto prefix = Prefix::Parse(cidr);
  if (!prefix) {
    return false;
  }
  RouteEntry entry;
  entry.out_port = out_port;
  entry.next_hop_mac = PortMac(out_port);
  AddRoute(*prefix, entry);
  return true;
}

bool RouteTable::RemoveRoute(const Prefix& prefix) {
  if (routes_.erase(prefix) == 0) {
    return false;
  }
  Rebuild();
  return true;
}

void RouteTable::Rebuild() {
  // Withdrawals invalidate expanded slots, so the trie is rebuilt from the
  // authoritative prefix map. At control-plane update rates this is cheap;
  // the data plane never calls it.
  trie_.Clear();
  entries_.clear();
  entry_index_.clear();
  entries_.reserve(routes_.size());
  for (const auto& [prefix, entry] : routes_) {
    entries_.push_back(entry);
    entry_index_[prefix] = static_cast<uint32_t>(entries_.size() - 1);
    trie_.Insert(prefix, static_cast<uint32_t>(entries_.size() - 1));
  }
  ++epoch_;
}

RouteTable::LookupResult RouteTable::Lookup(uint32_t dst_ip) const {
  LookupResult result;
  auto hit = trie_.Lookup(dst_ip);
  result.memory_accesses = hit.nodes_visited;
  if (hit.value) {
    result.entry = entries_[*hit.value];
  }
  return result;
}

std::vector<std::pair<Prefix, RouteEntry>> RouteTable::Dump() const {
  return {routes_.begin(), routes_.end()};
}

}  // namespace npr
