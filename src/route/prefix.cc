#include "src/route/prefix.h"

#include <cstdio>

#include "src/net/ipv4.h"

namespace npr {

std::optional<Prefix> Prefix::Parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    return std::nullopt;
  }
  unsigned a = 256, b = 256, c = 256, d = 256, len = 64;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u/%u", &a, &b, &c, &d, &len) != 5) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255 || len > 32) {
    return std::nullopt;
  }
  return Make(a << 24 | b << 16 | c << 8 | d, static_cast<uint8_t>(len));
}

Prefix Prefix::Make(uint32_t addr, uint8_t len) {
  Prefix p;
  p.len = len;
  p.addr = addr & (len == 0 ? 0 : ~uint32_t{0} << (32 - len));
  return p;
}

std::string Prefix::ToString() const {
  return Ipv4ToString(addr) + "/" + std::to_string(len);
}

}  // namespace npr
