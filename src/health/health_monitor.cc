#include "src/health/health_monitor.h"

#include "src/core/overload.h"
#include "src/core/upgrade.h"
#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"

namespace npr {

namespace {

// A kRecovery span (unit kUnitHealth, arg = RecoveryEvent::Kind) marks the
// moment service was restored, so flight-recorder dumps taken after a fault
// show the repair alongside the damage.
[[maybe_unused]] void RecordRecoverySpan(Router& router, RecoveryEvent::Kind kind) {
  (void)router;
  (void)kind;
  NPR_OBS_HOOK(router.observer(),
               Record(SpanPoint::kRecovery, 0, kUnitHealth, static_cast<uint16_t>(kind)));
}

}  // namespace

const char* RecoveryKindName(RecoveryEvent::Kind kind) {
  switch (kind) {
    case RecoveryEvent::Kind::kTokenRegen:
      return "token-regen";
    case RecoveryEvent::Kind::kContextRestore:
      return "context-restore";
    case RecoveryEvent::Kind::kPentiumDegrade:
      return "pentium-degrade";
    case RecoveryEvent::Kind::kQuarantine:
      return "quarantine";
    case RecoveryEvent::Kind::kLinkFailover:
      return "link-failover";
    case RecoveryEvent::Kind::kNodeFailover:
      return "node-failover";
    case RecoveryEvent::Kind::kNodeReadmit:
      return "node-readmit";
    case RecoveryEvent::Kind::kOverload:
      return "overload";
    case RecoveryEvent::Kind::kUpgradeRollback:
      return "upgrade-rollback";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(Router& router, HealthConfig config)
    : router_(router), cfg_(config) {
  router_.set_health_hooks(this);
  const SimTime now = router_.engine().now();
  pentium_progress_at_ = now;
  bridge_progress_at_ = now;
  router_.engine().ScheduleIn(cfg_.scan_interval_ps, [this] { Tick(); });
}

HealthMonitor::~HealthMonitor() { router_.set_health_hooks(nullptr); }

uint32_t HealthMonitor::trap_count(uint32_t program_id) const {
  auto it = quarantine_.find(program_id);
  return it == quarantine_.end() ? 0 : it->second.traps;
}

void HealthMonitor::Tick() {
  CheckTokenRings();
  CheckContexts();
  CheckPentium();
  CheckBridge();
  CheckOverload();
  CheckUpgrade();
  router_.engine().ScheduleIn(cfg_.scan_interval_ps, [this] { Tick(); });
}

void HealthMonitor::CheckTokenRings() {
  const SimTime now = router_.engine().now();
  TokenRing* rings[] = {&router_.input_stage().token_ring(),
                        &router_.output_stage().token_ring()};
  for (TokenRing* ring : rings) {
    if (!ring->token_lost()) {
      continue;
    }
    const SimTime fault_at = ring->token_lost_since_ps();
    if (now - fault_at < cfg_.token_deadline_ps) {
      continue;  // within the deadline: could still be a slow pass
    }
    if (ring->RecoverLostToken()) {
      router_.stats().watchdog_fired += 1;
      router_.stats().tokens_regenerated += 1;
      events_.push_back({RecoveryEvent::Kind::kTokenRegen, fault_at, now, now});
      RecordRecoverySpan(router_, RecoveryEvent::Kind::kTokenRegen);
    }
  }
}

void HealthMonitor::CheckContexts() {
  const SimTime now = router_.engine().now();
  InputStage& in = router_.input_stage();
  for (int i = 0; i < in.num_contexts(); ++i) {
    if (in.ContextDown(i) && now - in.ContextDownSincePs(i) >= cfg_.context_deadline_ps) {
      const SimTime fault_at = in.ContextDownSincePs(i);
      in.RecoverContext(i);
      router_.stats().watchdog_fired += 1;
      events_.push_back({RecoveryEvent::Kind::kContextRestore, fault_at, now, now});
      RecordRecoverySpan(router_, RecoveryEvent::Kind::kContextRestore);
    }
  }
  OutputStage& out = router_.output_stage();
  for (int i = 0; i < out.num_contexts(); ++i) {
    if (out.ContextDown(i) && now - out.ContextDownSincePs(i) >= cfg_.context_deadline_ps) {
      const SimTime fault_at = out.ContextDownSincePs(i);
      out.RecoverContext(i);
      router_.stats().watchdog_fired += 1;
      events_.push_back({RecoveryEvent::Kind::kContextRestore, fault_at, now, now});
      RecordRecoverySpan(router_, RecoveryEvent::Kind::kContextRestore);
    }
  }
}

void HealthMonitor::CheckPentium() {
  if (!router_.config().enable_pentium) {
    return;
  }
  const SimTime now = router_.engine().now();
  PentiumHost& pe = router_.pentium_host();
  const uint64_t processed = pe.processed();
  const uint64_t pending =
      router_.bridge().to_pentium().full_q.size() + pe.scheduler().backlog();

  if (processed != pentium_last_processed_) {
    pentium_last_processed_ = processed;
    pentium_progress_at_ = now;
    if (pentium_degraded_) {
      pentium_degraded_ = false;
      events_[degrade_event_index_].recovered_at = now;
      RecordRecoverySpan(router_, RecoveryEvent::Kind::kPentiumDegrade);
    }
    return;
  }
  if (pending == 0) {
    // Nothing for the Pentium to do: a stall cannot be observed (and does
    // no harm). If it is still hung when work arrives, the watchdog
    // re-fires then.
    pentium_progress_at_ = now;
    if (pentium_degraded_) {
      pentium_degraded_ = false;
      events_[degrade_event_index_].recovered_at = now;
      RecordRecoverySpan(router_, RecoveryEvent::Kind::kPentiumDegrade);
    }
    return;
  }
  if (!pentium_degraded_ && now - pentium_progress_at_ >= cfg_.pentium_deadline_ps) {
    // Attribute the fault to the injected hang when one is on record; a
    // real deployment only knows the last time progress was seen.
    SimTime fault_at = pentium_progress_at_;
    if (router_.fault_injector() != nullptr) {
      const SimTime hang_at = router_.fault_injector()->last_pentium_hang_at();
      if (hang_at >= pentium_progress_at_) {
        fault_at = hang_at;
      }
    }
    pentium_degraded_ = true;
    router_.stats().watchdog_fired += 1;
    degrade_event_index_ = events_.size();
    events_.push_back({RecoveryEvent::Kind::kPentiumDegrade, fault_at, now, 0});
  }
}

void HealthMonitor::CheckBridge() {
  const SimTime now = router_.engine().now();
  StrongArmBridge& bridge = router_.bridge();
  // Governor sheds count as bridge work: a bridge that spends the whole
  // scan interval shedding under overload is making progress, not stalled.
  const uint64_t work = bridge.bridged_to_pentium() + bridge.returned_from_pentium() +
                        bridge.local_processed() + router_.stats().pkts_shed_degraded +
                        router_.stats().gov_shed_pe + router_.stats().gov_shed_sa;
  const bool pending =
      !router_.sa_local_queue().empty() || !router_.sa_pentium_queue().empty();
  if (work != bridge_last_work_ || !pending) {
    bridge_last_work_ = work;
    bridge_progress_at_ = now;
    return;
  }
  if (now - bridge_progress_at_ >= cfg_.bridge_deadline_ps) {
    router_.stats().watchdog_fired += 1;
    router_.chip().strongarm().Wake();
    bridge_progress_at_ = now;  // rearm; fires again if the wake did not help
  }
}

void HealthMonitor::CheckOverload() {
  // Overload is a reported, recovered condition like any other fault class:
  // the episode opens when the governor's ladder leaves stage 0 (fault_at is
  // when pressure first crossed the enter threshold, so MTTD covers the
  // dwell) and closes when it returns.
  const OverloadGovernor* gov = router_.governor();
  if (gov == nullptr) {
    return;
  }
  const SimTime now = router_.engine().now();
  if (gov->overloaded() && !overload_open_) {
    overload_open_ = true;
    router_.stats().watchdog_fired += 1;
    overload_event_index_ = events_.size();
    events_.push_back({RecoveryEvent::Kind::kOverload, gov->overload_since_ps(), now, 0});
  } else if (!gov->overloaded() && overload_open_) {
    overload_open_ = false;
    events_[overload_event_index_].recovered_at = now;
    RecordRecoverySpan(router_, RecoveryEvent::Kind::kOverload);
  }
}

void HealthMonitor::CheckUpgrade() {
  // Upgrade rollbacks already carry the full fault/detect/recover triple;
  // the monitor just folds each new episode into the uniform event stream
  // so MTTD/MTTR reporting covers upgrades like every other fault class.
  const UpgradeOrchestrator* up = router_.upgrade();
  if (up == nullptr) {
    return;
  }
  const auto& rollbacks = up->rollbacks();
  for (; upgrade_rollback_index_ < rollbacks.size(); ++upgrade_rollback_index_) {
    const UpgradeRollbackRecord& r = rollbacks[upgrade_rollback_index_];
    router_.stats().watchdog_fired += 1;
    events_.push_back(
        {RecoveryEvent::Kind::kUpgradeRollback, r.fault_at, r.detected_at, r.recovered_at});
    RecordRecoverySpan(router_, RecoveryEvent::Kind::kUpgradeRollback);
  }
}

void HealthMonitor::OnVrpTrap(uint32_t program_id) {
  QuarantineState& q = quarantine_[program_id];
  if (q.evicted) {
    return;
  }
  q.traps += 1;
  if (q.first_trap_at == 0) {
    q.first_trap_at = router_.engine().now();
  }
  if (q.action_pending) {
    return;
  }
  const bool wants_evict = q.traps >= cfg_.evict_after_traps;
  const bool wants_throttle = !q.throttled && q.traps >= cfg_.throttle_after_traps;
  if (wants_evict || wants_throttle) {
    // Deferred: this is called from inside ClassifyFirstMp, which may be
    // iterating the general chain — never mutate the ISTORE inline.
    q.action_pending = true;
    router_.engine().ScheduleIn(1, [this, program_id] { ApplyQuarantine(program_id); });
  }
}

void HealthMonitor::ApplyQuarantine(uint32_t program_id) {
  auto it = quarantine_.find(program_id);
  if (it == quarantine_.end()) {
    return;
  }
  QuarantineState& q = it->second;
  q.action_pending = false;
  if (q.evicted) {
    return;
  }
  const SimTime now = router_.engine().now();
  if (q.traps >= cfg_.evict_after_traps) {
    q.evicted = true;
    const FlowMeta* flow = router_.flow_table().FindByProgram(program_id);
    if (flow != nullptr) {
      // Ordinary control-path removal: releases ISTORE slots, admission
      // commitments, and the flow binding. Path A continues on default IP.
      router_.Remove(flow->fid);
    } else {
      router_.istore().Remove(program_id);
    }
    router_.stats().watchdog_fired += 1;
    router_.stats().forwarders_quarantined += 1;
    events_.push_back({RecoveryEvent::Kind::kQuarantine, q.first_trap_at, now, now});
    RecordRecoverySpan(router_, RecoveryEvent::Kind::kQuarantine);
    return;
  }
  if (!q.throttled && q.traps >= cfg_.throttle_after_traps) {
    q.throttled = true;
    router_.istore().SetThrottled(program_id, true);
    router_.stats().watchdog_fired += 1;
    router_.engine().ScheduleIn(cfg_.throttle_cooldown_ps, [this, program_id] {
      auto lift = quarantine_.find(program_id);
      if (lift == quarantine_.end() || lift->second.evicted) {
        return;
      }
      lift->second.throttled = false;
      if (router_.istore().Get(program_id) != nullptr) {
        router_.istore().SetThrottled(program_id, false);
      }
    });
  }
}

}  // namespace npr
