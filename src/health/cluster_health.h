// Federated cluster health: per-node liveness probes and escalation.
//
// Each node already runs its own HealthMonitor for intra-node faults; this
// monitor federates liveness *across* nodes. A supervisor probes every node
// over its own hardened ControlChannel (GetData on a nonexistent flow — the
// cheapest idempotent round trip; the ack, not the payload, is the liveness
// signal). Node up/down state is mirrored onto the probe channels through
// ClusterRouter::AddNodeStateHook, so a crashed node's probes are dropped at
// the channel's link gate exactly as its fabric frames are dropped at the
// fabric gate.
//
// When a probe exhausts its retries the node is marked degraded and the
// monitor escalates to ClusterControlPlane::SuspectNode, which expires every
// survivor's adjacencies to the node immediately instead of waiting out the
// remainder of the OSPF dead-interval — federated detection beating
// per-adjacency timeouts, with false positives self-correcting on the next
// hello. When probes succeed again the node is re-admitted and the episode
// closes. Every episode is a RecoveryEvent (kNodeFailover / kNodeReadmit)
// with ground-truth fault timestamps taken from the node-state hook, so
// cluster MTTD/MTTR reuse the exact machinery intra-node recovery uses.

#ifndef SRC_HEALTH_CLUSTER_HEALTH_H_
#define SRC_HEALTH_CLUSTER_HEALTH_H_

#include <memory>
#include <vector>

#include "src/cluster/cluster_control.h"
#include "src/cluster/cluster_router.h"
#include "src/health/control_channel.h"
#include "src/health/health_monitor.h"

namespace npr {

struct ClusterHealthConfig {
  // Probe cadence per node; one probe outstanding per node at a time.
  SimTime probe_period_ps = 100 * kPsPerUs;
  // Probe channel timing: snappy on purpose. Worst-case failure declaration
  // (ack_timeout + backoffs across max_attempts) must undercut the OSPF
  // dead-interval, or escalation never beats the per-adjacency timeout.
  SimTime probe_link_delay_ps = 5 * kPsPerUs;
  SimTime probe_ack_timeout_ps = 40 * kPsPerUs;
  SimTime probe_backoff_base_ps = 20 * kPsPerUs;
  int probe_max_attempts = 3;
  uint64_t probe_seed = 0x9ea17ULL;
  // Escalate probe failures to ClusterControlPlane::SuspectNode.
  bool escalate = true;
};

class ClusterHealthMonitor {
 public:
  // Registers the node-state mirror and starts the probe tick. Construct
  // after ClusterControlPlane (escalation needs it), before RunFor.
  ClusterHealthMonitor(ClusterRouter& cluster, ClusterControlPlane& control,
                       ClusterHealthConfig config = ClusterHealthConfig{});

  ClusterHealthMonitor(const ClusterHealthMonitor&) = delete;
  ClusterHealthMonitor& operator=(const ClusterHealthMonitor&) = delete;

  bool node_degraded(int node) const {
    return degraded_[static_cast<size_t>(node)];
  }
  // Planned-maintenance flag (the rolling-upgrade coordinator raises it
  // around each node's shadow/cutover/soak). Probes keep flowing — the node
  // is expected to stay responsive — but a probe failure is absorbed: the
  // node is never marked degraded or escalated to SuspectNode while the
  // flag is set, so an upgrade in progress cannot read as a node death.
  void SetMaintenance(int node, bool on) {
    maintenance_[static_cast<size_t>(node)] = on;
  }
  bool maintenance(int node) const { return maintenance_[static_cast<size_t>(node)]; }
  ControlChannel& probe_channel(int node) {
    return *probes_[static_cast<size_t>(node)].channel;
  }

  // Probe-driven episodes (kNodeFailover paired with kNodeReadmit).
  const std::vector<RecoveryEvent>& events() const { return events_; }
  // The control plane's ReconvergenceRecords folded into RecoveryEvents
  // (kLinkFailover / kNodeFailover / kNodeReadmit) so benches report one
  // uniform MTTD/MTTR table across intra-node and cluster fault classes.
  std::vector<RecoveryEvent> ReconvergenceEvents() const;

  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t probes_acked() const { return probes_acked_; }
  uint64_t probes_failed() const { return probes_failed_; }
  uint64_t suspects_raised() const { return suspects_raised_; }
  // Probe failures absorbed because the node was under maintenance.
  uint64_t maintenance_absorbed() const { return maintenance_absorbed_; }

 private:
  struct ProbeState {
    std::unique_ptr<ControlChannel> channel;
    uint64_t seq = 0;  // outstanding probe; 0 = none
    SimTime sent_at = 0;
  };

  void Tick();
  void ResolveProbe(int node);
  void OnNodeState(int node, bool up);
  void MarkDegraded(int node);
  void MarkRecovered(int node);
  void CloseFailoverFromRecords();

  ClusterRouter& cluster_;
  ClusterControlPlane& control_;
  ClusterHealthConfig cfg_;

  std::vector<ProbeState> probes_;
  std::vector<bool> degraded_;
  std::vector<bool> maintenance_;
  std::vector<SimTime> node_down_at_;  // ground truth from the state hook
  std::vector<SimTime> node_up_at_;
  std::vector<size_t> failover_event_;  // open kNodeFailover index + 1; 0 = none

  std::vector<RecoveryEvent> events_;
  uint64_t probes_sent_ = 0;
  uint64_t probes_acked_ = 0;
  uint64_t probes_failed_ = 0;
  uint64_t suspects_raised_ = 0;
  uint64_t maintenance_absorbed_ = 0;
};

}  // namespace npr

#endif  // SRC_HEALTH_CLUSTER_HEALTH_H_
