// Hardened StrongARM <-> Pentium control channel.
//
// The paper's install/remove/getdata/setdata interface (§4.5) assumes the
// PCI control path delivers every message. This wrapper makes the channel
// robust to a lossy link: every request carries a sequence number, the
// receiver acknowledges execution, and the sender retries on per-attempt
// timeouts with deterministic seeded exponential backoff. The receiver
// caches results by sequence number, so retries and duplicated deliveries
// are idempotent — a Remove that executed but whose ack was dropped is not
// re-executed, and the cached outcome is re-acked.
//
// Link faults (drop / duplicate / delay, applied to requests and acks
// alike) come from the router's FaultInjector via OnCtrlMessage; with no
// injector attached the link is perfect. All timing and randomness are
// deterministic: the same seed yields a bit-identical trace().

#ifndef SRC_HEALTH_CONTROL_CHANNEL_H_
#define SRC_HEALTH_CONTROL_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/router.h"
#include "src/sim/random.h"
#include "src/vrp/isa.h"

namespace npr {

struct ControlChannelConfig {
  uint64_t seed = 0xc7a1c7a1ULL;
  // One-way request/ack latency over the (simulated) PCI control path.
  SimTime link_delay_ps = 10 * kPsPerUs;
  // Per-attempt ack deadline; a miss counts a ctrl_timeout and retries.
  SimTime ack_timeout_ps = 200 * kPsPerUs;
  // Retry n waits base * 2^(n-1), jittered by +/- `backoff_jitter`.
  SimTime backoff_base_ps = 100 * kPsPerUs;
  double backoff_jitter = 0.25;
  int max_attempts = 8;
};

// Uniform result for all four control operations.
struct CtrlResult {
  bool ok = false;
  uint32_t fid = 0;             // Install
  std::vector<uint8_t> data;    // GetData
  std::string error;
};

class ControlChannel {
 public:
  using Callback = std::function<void(const CtrlResult&)>;

  ControlChannel(Router& router, ControlChannelConfig config = ControlChannelConfig{});
  // Pins the channel's timers/deliveries to an explicit engine instead of
  // the router's own. A sharded cluster's probe channels run on the hub
  // engine while the probed router runs on its node shard; executions then
  // happen in the hub phase, when the shard is parked. Equivalent to the
  // two-argument form whenever `engine == router.engine()`.
  ControlChannel(Router& router, EventQueue& engine,
                 ControlChannelConfig config = ControlChannelConfig{});

  // Each submits one control message and returns its sequence number.
  // The request (including any VRP program payload) is copied; execution
  // and the callback happen at simulated ack time.
  uint64_t Install(const InstallRequest& request, Callback done = nullptr);
  uint64_t Remove(uint32_t fid, Callback done = nullptr);
  uint64_t GetData(uint32_t fid, Callback done = nullptr);
  uint64_t SetData(uint32_t fid, std::vector<uint8_t> data, Callback done = nullptr);
  // Ships a replacement image for flow `fid` to the peer's upgrade
  // orchestrator (src/core/upgrade.h), which shadows, cuts over, and soaks
  // it; the ack reports whether the episode *started* (the orchestrator's
  // own verdict arrives later through its phase/report). The image crosses
  // the link as bytes: with a fault injector armed, image_corrupt_p may
  // flip a bit in the receiver's copy — `checksum` (VrpImageChecksum of the
  // sent program) then refuses it on arrival while the sender's copy stays
  // pristine, so a resend under a fresh sequence number can succeed.
  uint64_t Upgrade(uint32_t fid, const VrpProgram& program, uint64_t checksum,
                   Callback done = nullptr);

  // Sender-side status for a sequence number.
  bool acked(uint64_t seq) const;
  bool failed(uint64_t seq) const;  // gave up after max_attempts
  const CtrlResult* result(uint64_t seq) const;
  size_t in_flight() const;

  // Deterministic event log ("t=<ps> seq=<n> ..."); bit-identical across
  // same-seed runs.
  const std::vector<std::string>& trace() const { return trace_; }

  uint64_t executed_count() const { return executed_count_; }

  // Hard link state: while down, every crossing (request and ack alike) is
  // dropped — the peer is unreachable, not merely lossy. Cluster health
  // mirrors node up/down onto its probe channels through this.
  void set_link_up(bool up) { link_up_ = up; }
  bool link_up() const { return link_up_; }

 private:
  enum class Op : uint8_t { kInstall, kRemove, kGetData, kSetData, kUpgrade };

  struct Pending {
    Op op = Op::kInstall;
    InstallRequest request;      // kInstall (program pointer fixed up below)
    VrpProgram program;          // owned copy of the install payload
    bool has_program = false;
    uint32_t fid = 0;            // kRemove / kGetData / kSetData / kUpgrade
    std::vector<uint8_t> data;   // kSetData payload
    uint64_t checksum = 0;       // kUpgrade image checksum
    Callback done;
    int attempt = 0;
    bool acked = false;
    bool failed = false;
    CtrlResult result;
  };

  static const char* OpName(Op op);

  uint64_t Submit(Pending pending);
  void SendAttempt(uint64_t seq);
  void DeliverRequest(uint64_t seq);
  void SendAck(uint64_t seq, const CtrlResult& result);
  void DeliverAck(uint64_t seq, CtrlResult result);
  void OnAttemptTimeout(uint64_t seq, int attempt);
  // Applies link faults to one crossing. Returns the number of copies to
  // deliver (0 = dropped) and the extra delay for each.
  int LinkCrossing(uint64_t seq, const char* what, SimTime* extra_delay_ps);
  CtrlResult Execute(const Pending& pending);
  void Note(const char* fmt, ...);

  Router& router_;
  EventQueue& engine_;
  ControlChannelConfig cfg_;
  Rng rng_;
  bool link_up_ = true;
  uint64_t next_seq_ = 1;
  std::map<uint64_t, Pending> pending_;
  // Receiver-side idempotency cache: seq -> executed result.
  std::map<uint64_t, CtrlResult> executed_;
  uint64_t executed_count_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace npr

#endif  // SRC_HEALTH_CONTROL_CHANNEL_H_
