// Cluster rolling upgrade: node-by-node hitless image replacement.
//
// Drives one UpgradeOrchestrator per node through the hardened control
// channel, sequencing the cluster so at most one node is ever mid-upgrade:
//
//   for each node k:  maintenance(k) on -> ship image over the channel
//                     (checksum-verified on arrival, bounded resends when a
//                     corrupted copy is refused) -> poll the orchestrator
//                     until the episode settles -> promoted: maintenance
//                     off, next node.
//
// Maintenance makes federated health upgrade-aware: ClusterHealthMonitor
// keeps probing the node but absorbs probe failures instead of raising a
// SuspectNode, so a cutover can never read as a node death.
//
// Abort-on-first-rollback keeps the cluster version-consistent: the first
// node whose episode ends in rollback (or watchdog abort) stops the
// rollout, and every already-promoted node is downgraded back to the old
// image through the same orchestrators — fast windows, direct calls (the
// old image is a known-good resident, not a wire transfer). The run then
// reports kAborted with every node on the old version; only a downgrade
// that itself exhausts its retries leaves kInconsistent.
//
// The coordinator is a hub resident: its poll tick, channel callbacks, and
// orchestrator phase reads all run on the cluster hub engine, where node
// shards are parked (the ClusterHealthMonitor precedent).

#ifndef SRC_HEALTH_ROLLING_UPGRADE_H_
#define SRC_HEALTH_ROLLING_UPGRADE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_router.h"
#include "src/core/upgrade.h"
#include "src/health/cluster_health.h"
#include "src/health/control_channel.h"

namespace npr {

struct RollingUpgradeConfig {
  // Per-node orchestrator windows for the forward upgrade.
  UpgradeConfig node;
  // Windows for abort-path downgrades: much shorter — the old image is
  // known good, so the shadow/soak evidence bars drop to zero.
  UpgradeConfig downgrade = [] {
    UpgradeConfig c;
    c.shadow_window_ps = 20 * kPsPerUs;
    c.shadow_min_packets = 0;
    c.step_deadline_ps = 100 * kPsPerUs;
    c.soak_window_ps = 20 * kPsPerUs;
    c.soak_min_packets = 0;
    c.probe_period_ps = 10 * kPsPerUs;
    return c;
  }();
  // Control-channel template for image shipment; the seed is re-derived
  // per node (FaultPlan::DeriveNodeSeed) so channels stay decorrelated.
  ControlChannelConfig channel;
  uint64_t channel_seed = 0x9011a5ULL;
  // Coordinator poll cadence on the hub engine.
  SimTime poll_period_ps = 50 * kPsPerUs;
  // Image send attempts per node (fresh sequence number each, so a copy
  // corrupted in transit gets an independent redraw) before aborting.
  int max_sends = 4;
  // Downgrade attempts per node before declaring the cluster inconsistent
  // (an upgrade_crash fault can abort a downgrade's own cutover step).
  int max_downgrade_attempts = 8;
};

class RollingUpgradeCoordinator {
 public:
  enum class Status : uint8_t {
    kIdle,
    kRunning,       // rolling forward
    kDowngrading,   // first rollback seen; restoring promoted nodes
    kDone,          // every node promoted
    kAborted,       // rollout stopped; every node back on the old image
    kInconsistent,  // a downgrade exhausted its retries (nodes disagree)
  };

  // `health` may be null (no federated monitor attached); maintenance
  // flagging is skipped then. Construct before RunFor, destroy after.
  RollingUpgradeCoordinator(ClusterRouter& cluster, ClusterHealthMonitor* health,
                            RollingUpgradeConfig config = RollingUpgradeConfig{});

  RollingUpgradeCoordinator(const RollingUpgradeCoordinator&) = delete;
  RollingUpgradeCoordinator& operator=(const RollingUpgradeCoordinator&) = delete;

  // Starts the rollout: upgrade flow fids[k] on node k to `next`. The
  // current images are captured here as the downgrade targets. `checksum`
  // of 0 is replaced by VrpImageChecksum(next). False if already running
  // or a node/fid is missing.
  bool Start(std::vector<uint32_t> fids, const VrpProgram& next, uint64_t checksum = 0);

  Status status() const { return status_; }
  const std::string& error() const { return error_; }
  // Node currently mid-upgrade (or mid-downgrade); -1 when none.
  int current_node() const { return current_; }
  int nodes_promoted() const { return promoted_; }
  uint64_t image_resends() const { return resends_; }

  UpgradeOrchestrator& orchestrator(int node) {
    return *orchestrators_[static_cast<size_t>(node)];
  }
  ControlChannel& channel(int node) { return *channels_[static_cast<size_t>(node)]; }

  // Nodes whose active ISTORE image matches the new program (by checksum).
  // A consistent cluster reports 0 (aborted) or num_nodes (done).
  int NodesOnNewImage() const;

  static const char* StatusName(Status status);

 private:
  void SetMaintenance(int node, bool on);
  void ShipImage(int node);
  void PollTick();
  void AdvanceOrFinish();
  void StartAbort(std::string reason);
  void BeginDowngrade(int node);

  ClusterRouter& cluster_;
  ClusterHealthMonitor* health_;
  RollingUpgradeConfig cfg_;

  std::vector<std::unique_ptr<UpgradeOrchestrator>> orchestrators_;
  std::vector<std::unique_ptr<ControlChannel>> channels_;

  Status status_ = Status::kIdle;
  std::string error_;
  std::vector<uint32_t> fids_;
  VrpProgram next_;
  uint64_t checksum_ = 0;
  std::vector<VrpProgram> old_images_;  // downgrade targets, captured at Start

  int current_ = -1;
  int promoted_ = 0;
  int sends_ = 0;            // image shipments for the current node
  uint64_t resends_ = 0;
  std::vector<int> downgrade_queue_;  // promoted nodes awaiting downgrade
  int downgrade_attempts_ = 0;
  bool downgrade_began_ = false;  // current node's downgrade Begin succeeded
  bool poll_scheduled_ = false;
};

}  // namespace npr

#endif  // SRC_HEALTH_ROLLING_UPGRADE_H_
