#include "src/health/cluster_health.h"

#include "src/fault/fault_plan.h"

namespace npr {

ClusterHealthMonitor::ClusterHealthMonitor(ClusterRouter& cluster,
                                           ClusterControlPlane& control,
                                           ClusterHealthConfig config)
    : cluster_(cluster), control_(control), cfg_(config) {
  const int n = cluster_.num_nodes();
  probes_.resize(static_cast<size_t>(n));
  degraded_.assign(static_cast<size_t>(n), false);
  maintenance_.assign(static_cast<size_t>(n), false);
  node_down_at_.assign(static_cast<size_t>(n), 0);
  node_up_at_.assign(static_cast<size_t>(n), 0);
  failover_event_.assign(static_cast<size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    ControlChannelConfig cc;
    cc.seed = FaultPlan::DeriveNodeSeed(cfg_.probe_seed, k);
    cc.link_delay_ps = cfg_.probe_link_delay_ps;
    cc.ack_timeout_ps = cfg_.probe_ack_timeout_ps;
    cc.backoff_base_ps = cfg_.probe_backoff_base_ps;
    cc.backoff_jitter = 0.0;
    cc.max_attempts = cfg_.probe_max_attempts;
    // Probe channels are hub residents: their callbacks mutate monitor
    // state, so in a sharded cluster they must run on the hub engine, not
    // the probed node's shard. (Same engine object in legacy mode.)
    probes_[static_cast<size_t>(k)].channel =
        std::make_unique<ControlChannel>(cluster_.node(k), cluster_.engine(), cc);
    probes_[static_cast<size_t>(k)].channel->set_link_up(cluster_.node_up(k));
  }
  cluster_.AddNodeStateHook([this](int node, bool up) { OnNodeState(node, up); });
  cluster_.engine().ScheduleIn(cfg_.probe_period_ps, [this] { Tick(); });
}

void ClusterHealthMonitor::Tick() {
  CloseFailoverFromRecords();
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    ResolveProbe(k);
    ProbeState& p = probes_[static_cast<size_t>(k)];
    if (p.seq == 0) {
      // GetData on fid 0 (never allocated): the ack is the liveness signal,
      // the ok=false payload is irrelevant.
      p.sent_at = cluster_.engine().now();
      p.seq = p.channel->GetData(0);
      probes_sent_ += 1;
    }
  }
  cluster_.engine().ScheduleIn(cfg_.probe_period_ps, [this] { Tick(); });
}

void ClusterHealthMonitor::ResolveProbe(int node) {
  ProbeState& p = probes_[static_cast<size_t>(node)];
  if (p.seq == 0) {
    return;
  }
  if (p.channel->acked(p.seq)) {
    p.seq = 0;
    probes_acked_ += 1;
    if (degraded_[static_cast<size_t>(node)]) {
      MarkRecovered(node);
    }
  } else if (p.channel->failed(p.seq)) {
    p.seq = 0;
    probes_failed_ += 1;
    if (maintenance_[static_cast<size_t>(node)]) {
      // Planned maintenance: the failure is noted but never escalated — an
      // upgrade mid-cutover must not read as a node death.
      maintenance_absorbed_ += 1;
    } else if (!degraded_[static_cast<size_t>(node)]) {
      MarkDegraded(node);
    }
  }
}

void ClusterHealthMonitor::OnNodeState(int node, bool up) {
  const SimTime now = cluster_.engine().now();
  if (up) {
    node_up_at_[static_cast<size_t>(node)] = now;
  } else {
    node_down_at_[static_cast<size_t>(node)] = now;
  }
  // Mirror onto the probe channel: a dead node's control path is hard-down,
  // not merely lossy, so in-flight probes and retries die at the link.
  probes_[static_cast<size_t>(node)].channel->set_link_up(up);
}

void ClusterHealthMonitor::MarkDegraded(int node) {
  const SimTime now = cluster_.engine().now();
  degraded_[static_cast<size_t>(node)] = true;
  // Ground truth when the state hook saw the crash; the probe submission
  // time otherwise (false positives have no crash to attribute).
  SimTime fault_at = probes_[static_cast<size_t>(node)].sent_at;
  if (!cluster_.node_up(node) && node_down_at_[static_cast<size_t>(node)] != 0) {
    fault_at = node_down_at_[static_cast<size_t>(node)];
  }
  events_.push_back({RecoveryEvent::Kind::kNodeFailover, fault_at, now, 0});
  failover_event_[static_cast<size_t>(node)] = events_.size();
  if (cfg_.escalate) {
    suspects_raised_ += 1;
    control_.SuspectNode(node);
  }
}

void ClusterHealthMonitor::MarkRecovered(int node) {
  const SimTime now = cluster_.engine().now();
  degraded_[static_cast<size_t>(node)] = false;
  const size_t open = failover_event_[static_cast<size_t>(node)];
  if (open != 0) {
    RecoveryEvent& ev = events_[open - 1];
    if (ev.recovered_at == 0) {
      ev.recovered_at = now;  // no reconvergence record matched (false alarm)
    }
    failover_event_[static_cast<size_t>(node)] = 0;
  }
  SimTime fault_at = node_up_at_[static_cast<size_t>(node)];
  if (fault_at == 0) {
    fault_at = now;
  }
  events_.push_back({RecoveryEvent::Kind::kNodeReadmit, fault_at, now, now});
}

void ClusterHealthMonitor::CloseFailoverFromRecords() {
  // A failover episode is *recovered* when the survivors finished rerouting
  // (the control plane's matching kNodeDown record closed), not when the
  // dead node eventually returns — readmission is its own episode.
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    const size_t open = failover_event_[static_cast<size_t>(k)];
    if (open == 0) {
      continue;
    }
    RecoveryEvent& ev = events_[open - 1];
    if (ev.recovered_at != 0) {
      continue;
    }
    for (const ReconvergenceRecord& r : control_.records()) {
      if (r.kind == ReconvergenceRecord::Kind::kNodeDown && r.node == k && r.closed() &&
          r.reconverged_at >= ev.fault_at) {
        ev.recovered_at = r.reconverged_at;
        break;
      }
    }
  }
}

std::vector<RecoveryEvent> ClusterHealthMonitor::ReconvergenceEvents() const {
  std::vector<RecoveryEvent> out;
  out.reserve(control_.records().size());
  for (const ReconvergenceRecord& r : control_.records()) {
    RecoveryEvent ev;
    switch (r.kind) {
      case ReconvergenceRecord::Kind::kLinkDown:
        ev.kind = RecoveryEvent::Kind::kLinkFailover;
        break;
      case ReconvergenceRecord::Kind::kNodeDown:
        ev.kind = RecoveryEvent::Kind::kNodeFailover;
        break;
      case ReconvergenceRecord::Kind::kNodeReadmit:
        ev.kind = RecoveryEvent::Kind::kNodeReadmit;
        break;
    }
    ev.fault_at = r.fault_at;
    ev.detected_at = r.detected_at;
    ev.recovered_at = r.reconverged_at;
    out.push_back(ev);
  }
  return out;
}

}  // namespace npr
