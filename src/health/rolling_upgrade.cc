#include "src/health/rolling_upgrade.h"

#include "src/fault/fault_plan.h"
#include "src/sim/log.h"

namespace npr {

RollingUpgradeCoordinator::RollingUpgradeCoordinator(ClusterRouter& cluster,
                                                     ClusterHealthMonitor* health,
                                                     RollingUpgradeConfig config)
    : cluster_(cluster), health_(health), cfg_(std::move(config)) {
  const int n = cluster_.num_nodes();
  orchestrators_.reserve(static_cast<size_t>(n));
  channels_.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    orchestrators_.push_back(
        std::make_unique<UpgradeOrchestrator>(cluster_.node(k), cfg_.node));
    ControlChannelConfig cc = cfg_.channel;
    cc.seed = FaultPlan::DeriveNodeSeed(cfg_.channel_seed, k);
    // Image channels are hub residents like the health probes: callbacks
    // mutate coordinator state, so they must fire in the hub phase.
    channels_.push_back(
        std::make_unique<ControlChannel>(cluster_.node(k), cluster_.engine(), cc));
  }
}

void RollingUpgradeCoordinator::SetMaintenance(int node, bool on) {
  if (health_ != nullptr) {
    health_->SetMaintenance(node, on);
  }
}

bool RollingUpgradeCoordinator::Start(std::vector<uint32_t> fids, const VrpProgram& next,
                                      uint64_t checksum) {
  if (status_ == Status::kRunning || status_ == Status::kDowngrading) {
    return false;
  }
  if (static_cast<int>(fids.size()) != cluster_.num_nodes()) {
    return false;
  }
  // Capture every node's current image first: they are the downgrade
  // targets if the rollout aborts, and they must be taken before any node
  // cuts over.
  std::vector<VrpProgram> old_images;
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    const FlowMeta* meta = cluster_.node(k).flow_table().Get(fids[static_cast<size_t>(k)]);
    if (meta == nullptr || meta->where != Where::kMicroEngine) {
      return false;
    }
    const VrpProgram* prog = cluster_.node(k).istore().Get(meta->me_program_id);
    if (prog == nullptr) {
      return false;
    }
    old_images.push_back(*prog);
  }
  fids_ = std::move(fids);
  next_ = next;
  checksum_ = checksum != 0 ? checksum : VrpImageChecksum(next);
  old_images_ = std::move(old_images);
  status_ = Status::kRunning;
  error_.clear();
  current_ = 0;
  promoted_ = 0;
  sends_ = 0;
  resends_ = 0;
  downgrade_queue_.clear();
  SetMaintenance(current_, true);
  ShipImage(current_);
  if (!poll_scheduled_) {
    poll_scheduled_ = true;
    cluster_.engine().ScheduleIn(cfg_.poll_period_ps, [this] { PollTick(); });
  }
  return true;
}

void RollingUpgradeCoordinator::ShipImage(int node) {
  sends_ += 1;
  channels_[static_cast<size_t>(node)]->Upgrade(
      fids_[static_cast<size_t>(node)], next_, checksum_,
      [this, node](const CtrlResult& r) {
        if (status_ != Status::kRunning || current_ != node || r.ok) {
          return;  // stale rollout, or the episode started and polling owns it
        }
        // Refused on arrival (checksum of a corrupted copy, or the channel
        // gave up). A fresh sequence number redraws the link faults.
        if (sends_ < cfg_.max_sends) {
          resends_ += 1;
          NPR_WARN("rolling-upgrade: node %d refused image (%s), resend %d/%d", node,
                   r.error.c_str(), sends_, cfg_.max_sends);
          ShipImage(node);
          return;
        }
        StartAbort("node " + std::to_string(node) + ": image refused after " +
                   std::to_string(sends_) + " sends: " + r.error);
      });
}

void RollingUpgradeCoordinator::PollTick() {
  if (status_ == Status::kRunning && current_ >= 0) {
    UpgradeOrchestrator& up = *orchestrators_[static_cast<size_t>(current_)];
    switch (up.phase()) {
      case UpgradePhase::kPromoted:
        SetMaintenance(current_, false);
        promoted_ += 1;
        AdvanceOrFinish();
        break;
      case UpgradePhase::kRolledBack:
      case UpgradePhase::kAborted:
        StartAbort("node " + std::to_string(current_) + ": " +
                   (up.report().error.empty() ? UpgradePhaseName(up.phase())
                                              : up.report().error));
        break;
      default:
        break;  // idle (image still in flight) or mid-episode: keep waiting
    }
  } else if (status_ == Status::kDowngrading && current_ >= 0) {
    UpgradeOrchestrator& up = *orchestrators_[static_cast<size_t>(current_)];
    if (!downgrade_began_) {
      // The previous Begin was refused outright; retry or give up.
      if (downgrade_attempts_ >= cfg_.max_downgrade_attempts) {
        status_ = Status::kInconsistent;
        error_ += "; node " + std::to_string(current_) + ": downgrade never started";
        current_ = -1;
      } else {
        BeginDowngrade(current_);
      }
    } else {
      switch (up.phase()) {
        case UpgradePhase::kPromoted:
          // Downgrade promoted == the old image is active again.
          SetMaintenance(current_, false);
          if (downgrade_queue_.empty()) {
            status_ = Status::kAborted;
            current_ = -1;
          } else {
            current_ = downgrade_queue_.back();
            downgrade_queue_.pop_back();
            downgrade_attempts_ = 0;
            BeginDowngrade(current_);
          }
          break;
        case UpgradePhase::kRolledBack:
        case UpgradePhase::kAborted:
          // An upgrade_crash fault can abort the downgrade's own cutover;
          // the node is still on the new image, so try again.
          if (downgrade_attempts_ >= cfg_.max_downgrade_attempts) {
            status_ = Status::kInconsistent;
            error_ += "; node " + std::to_string(current_) + ": downgrade failed after " +
                      std::to_string(downgrade_attempts_) + " attempts";
            SetMaintenance(current_, false);
            current_ = -1;
          } else {
            BeginDowngrade(current_);
          }
          break;
        default:
          break;
      }
    }
  }
  if (status_ == Status::kRunning || status_ == Status::kDowngrading) {
    cluster_.engine().ScheduleIn(cfg_.poll_period_ps, [this] { PollTick(); });
  } else {
    poll_scheduled_ = false;
  }
}

void RollingUpgradeCoordinator::AdvanceOrFinish() {
  current_ += 1;
  sends_ = 0;
  if (current_ >= cluster_.num_nodes()) {
    status_ = Status::kDone;
    current_ = -1;
    NPR_INFO("rolling-upgrade: all %d nodes promoted", cluster_.num_nodes());
    return;
  }
  SetMaintenance(current_, true);
  ShipImage(current_);
}

void RollingUpgradeCoordinator::StartAbort(std::string reason) {
  NPR_WARN("rolling-upgrade: abort: %s", reason.c_str());
  error_ = std::move(reason);
  if (current_ >= 0) {
    SetMaintenance(current_, false);
  }
  // Promoted nodes are exactly 0..current_-1; downgrade newest-first so the
  // queue pops in install order.
  downgrade_queue_.clear();
  for (int k = 0; k < current_; ++k) {
    downgrade_queue_.push_back(k);
  }
  if (downgrade_queue_.empty()) {
    status_ = Status::kAborted;
    current_ = -1;
    return;
  }
  status_ = Status::kDowngrading;
  current_ = downgrade_queue_.back();
  downgrade_queue_.pop_back();
  downgrade_attempts_ = 0;
  BeginDowngrade(current_);
}

void RollingUpgradeCoordinator::BeginDowngrade(int node) {
  SetMaintenance(node, true);
  downgrade_attempts_ += 1;
  UpgradeOrchestrator& up = *orchestrators_[static_cast<size_t>(node)];
  up.set_config(cfg_.downgrade);
  // Direct call, not a wire transfer: the old image is a known-good local
  // resident, and the abort path should not gamble on a lossy channel.
  downgrade_began_ = up.Begin(fids_[static_cast<size_t>(node)],
                              old_images_[static_cast<size_t>(node)]);
  if (!downgrade_began_) {
    NPR_WARN("rolling-upgrade: node %d downgrade refused: %s", node,
             up.last_error().c_str());
  }
}

const char* RollingUpgradeCoordinator::StatusName(Status status) {
  switch (status) {
    case Status::kIdle:
      return "idle";
    case Status::kRunning:
      return "running";
    case Status::kDowngrading:
      return "downgrading";
    case Status::kDone:
      return "done";
    case Status::kAborted:
      return "aborted";
    case Status::kInconsistent:
      return "inconsistent";
  }
  return "?";
}

int RollingUpgradeCoordinator::NodesOnNewImage() const {
  if (fids_.empty()) {
    return 0;
  }
  const uint64_t want = VrpImageChecksum(next_);
  int count = 0;
  for (int k = 0; k < cluster_.num_nodes(); ++k) {
    const FlowMeta* meta =
        cluster_.node(k).flow_table().Get(fids_[static_cast<size_t>(k)]);
    if (meta == nullptr) {
      continue;
    }
    const VrpProgram* prog = cluster_.node(k).istore().Get(meta->me_program_id);
    if (prog != nullptr && VrpImageChecksum(*prog) == want) {
      count += 1;
    }
  }
  return count;
}

}  // namespace npr
