// Router health monitor (self-healing tentpole).
//
// The paper's robustness argument (§5) is that faults stay contained; this
// subsystem closes the loop from containment to *recovery*. A periodic
// watchdog tick walks the hierarchy:
//
//   MicroEngines — per-context liveness (a crashed context whose scheduled
//     restart was lost is reinstalled after a deadline) and token-ring
//     liveness (a lost token is regenerated, restoring rotation).
//   StrongARM    — bridge progress (a stalled bridge with work pending is
//     woken, recovering a lost doorbell).
//   Pentium      — progress watchdog (no packets serviced while work is
//     pending marks the host degraded; the bridge then sheds
//     Pentium-bound packets so path A keeps line rate, and the mark
//     clears when the host makes progress again).
//
// Separately, trapping forwarders are quarantined with escalation: traps
// are counted per ISTORE program; past `throttle_after_traps` the program
// is throttled (skipped, packets take default IP) for a cooldown, and past
// `evict_after_traps` it is evicted through the ordinary control interface
// (releasing ISTORE slots and admission commitments). All actions are
// deferred to scheduled events so the data path is never mutated from
// inside a classify call.
//
// Every deadline and threshold lives in HealthConfig; every recovery is
// recorded as a RecoveryEvent carrying fault/detect/recover timestamps so
// benches can report MTTD and MTTR per fault class.

#ifndef SRC_HEALTH_HEALTH_MONITOR_H_
#define SRC_HEALTH_HEALTH_MONITOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/health_hooks.h"
#include "src/core/router.h"

namespace npr {

struct HealthConfig {
  // Watchdog scan period.
  SimTime scan_interval_ps = 50 * kPsPerUs;
  // How long a token may be lost before the monitor regenerates it.
  SimTime token_deadline_ps = 200 * kPsPerUs;
  // How long a context may be down before the monitor reinstalls it. Must
  // exceed the fault plan's normal restart delay, so the monitor only acts
  // when the scheduled restart was itself lost.
  SimTime context_deadline_ps = 500 * kPsPerUs;
  // Pentium progress deadline: no packet serviced while work is pending.
  SimTime pentium_deadline_ps = 300 * kPsPerUs;
  // StrongARM bridge progress deadline (lost doorbell recovery).
  SimTime bridge_deadline_ps = 2 * kPsPerMs;
  // Quarantine escalation: warn (count only) on the first trap, throttle at
  // `throttle_after_traps`, evict at `evict_after_traps` cumulative traps.
  uint32_t throttle_after_traps = 3;
  uint32_t evict_after_traps = 6;
  SimTime throttle_cooldown_ps = 2 * kPsPerMs;
};

struct RecoveryEvent {
  enum class Kind : uint8_t {
    kTokenRegen,      // lost token regenerated
    kContextRestore,  // context reinstalled after a lost restart
    kPentiumDegrade,  // Pentium marked degraded ... later cleared
    kQuarantine,      // forwarder evicted after repeated traps
    // Cluster scope (ClusterHealthMonitor / ClusterControlPlane):
    kLinkFailover,    // internal link lost, traffic rerouted or shed
    kNodeFailover,    // whole node lost, prefixes withdrawn cluster-wide
    kNodeReadmit,     // warm-restarted node resynced and re-admitted
    // Overload governor (src/core/overload.h):
    kOverload,        // ladder left stage 0 ... later returned to it
    // Upgrade orchestrator (src/core/upgrade.h):
    kUpgradeRollback,  // soaked upgrade reverted to the retained image
  };
  Kind kind = Kind::kTokenRegen;
  SimTime fault_at = 0;      // when the fault actually happened
  SimTime detected_at = 0;   // when the watchdog noticed
  SimTime recovered_at = 0;  // when service was restored (0 = not yet)

  SimTime mttd_ps() const { return detected_at - fault_at; }
  SimTime mttr_ps() const { return recovered_at - fault_at; }
};

const char* RecoveryKindName(RecoveryEvent::Kind kind);

class HealthMonitor : public HealthHooks {
 public:
  // Attaches to the router (set_health_hooks) and starts the watchdog tick.
  // The monitor must be destroyed before the router and must not outlive
  // the last RunFor it was alive for.
  explicit HealthMonitor(Router& router, HealthConfig config = HealthConfig{});
  ~HealthMonitor() override;

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // HealthHooks (called from the data path; record/schedule only).
  void OnVrpTrap(uint32_t program_id) override;
  bool ShedPentiumBound() const override { return pentium_degraded_; }

  bool pentium_degraded() const { return pentium_degraded_; }
  uint32_t trap_count(uint32_t program_id) const;
  const std::vector<RecoveryEvent>& events() const { return events_; }
  const HealthConfig& config() const { return cfg_; }

 private:
  void Tick();
  void CheckTokenRings();
  void CheckContexts();
  void CheckPentium();
  void CheckBridge();
  void CheckOverload();
  void CheckUpgrade();
  void ApplyQuarantine(uint32_t program_id);

  struct QuarantineState {
    uint32_t traps = 0;
    bool throttled = false;
    bool evicted = false;
    bool action_pending = false;
    SimTime first_trap_at = 0;
  };

  Router& router_;
  HealthConfig cfg_;

  bool pentium_degraded_ = false;
  uint64_t pentium_last_processed_ = 0;
  SimTime pentium_progress_at_ = 0;
  size_t degrade_event_index_ = 0;

  uint64_t bridge_last_work_ = 0;
  SimTime bridge_progress_at_ = 0;

  bool overload_open_ = false;
  size_t overload_event_index_ = 0;

  size_t upgrade_rollback_index_ = 0;

  std::map<uint32_t, QuarantineState> quarantine_;
  std::vector<RecoveryEvent> events_;
};

}  // namespace npr

#endif  // SRC_HEALTH_HEALTH_MONITOR_H_
