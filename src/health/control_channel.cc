#include "src/health/control_channel.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/core/upgrade.h"
#include "src/fault/fault_injector.h"

namespace npr {

ControlChannel::ControlChannel(Router& router, ControlChannelConfig config)
    : ControlChannel(router, router.engine(), config) {}

ControlChannel::ControlChannel(Router& router, EventQueue& engine, ControlChannelConfig config)
    : router_(router), engine_(engine), cfg_(config), rng_(config.seed) {}

const char* ControlChannel::OpName(Op op) {
  switch (op) {
    case Op::kInstall:
      return "install";
    case Op::kRemove:
      return "remove";
    case Op::kGetData:
      return "getdata";
    case Op::kSetData:
      return "setdata";
    case Op::kUpgrade:
      return "upgrade";
  }
  return "?";
}

void ControlChannel::Note(const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  char line[256];
  snprintf(line, sizeof(line), "t=%" PRIu64 " %s",
           static_cast<uint64_t>(engine_.now()), buf);
  trace_.emplace_back(line);
}

uint64_t ControlChannel::Install(const InstallRequest& request, Callback done) {
  Pending p;
  p.op = Op::kInstall;
  p.request = request;
  if (request.program != nullptr) {
    p.program = *request.program;
    p.has_program = true;
  }
  p.done = std::move(done);
  return Submit(std::move(p));
}

uint64_t ControlChannel::Remove(uint32_t fid, Callback done) {
  Pending p;
  p.op = Op::kRemove;
  p.fid = fid;
  p.done = std::move(done);
  return Submit(std::move(p));
}

uint64_t ControlChannel::GetData(uint32_t fid, Callback done) {
  Pending p;
  p.op = Op::kGetData;
  p.fid = fid;
  p.done = std::move(done);
  return Submit(std::move(p));
}

uint64_t ControlChannel::SetData(uint32_t fid, std::vector<uint8_t> data, Callback done) {
  Pending p;
  p.op = Op::kSetData;
  p.fid = fid;
  p.data = std::move(data);
  p.done = std::move(done);
  return Submit(std::move(p));
}

uint64_t ControlChannel::Upgrade(uint32_t fid, const VrpProgram& program, uint64_t checksum,
                                 Callback done) {
  Pending p;
  p.op = Op::kUpgrade;
  p.fid = fid;
  p.program = program;
  p.has_program = true;
  p.checksum = checksum;
  p.done = std::move(done);
  return Submit(std::move(p));
}

uint64_t ControlChannel::Submit(Pending pending) {
  const uint64_t seq = next_seq_++;
  pending_[seq] = std::move(pending);
  SendAttempt(seq);
  return seq;
}

int ControlChannel::LinkCrossing(uint64_t seq, const char* what, SimTime* extra_delay_ps) {
  *extra_delay_ps = 0;
  if (!link_up_) {
    Note("seq=%" PRIu64 " %s lost: link down", seq, what);
    return 0;
  }
  FaultInjector* fault = router_.fault_injector();
  if (fault == nullptr) {
    return 1;
  }
  const FaultInjector::CtrlFault f = fault->OnCtrlMessage(extra_delay_ps);
  switch (f) {
    case FaultInjector::CtrlFault::kDrop:
      Note("seq=%" PRIu64 " %s dropped by link", seq, what);
      return 0;
    case FaultInjector::CtrlFault::kDup:
      Note("seq=%" PRIu64 " %s duplicated by link", seq, what);
      return 2;
    case FaultInjector::CtrlFault::kDelay:
      Note("seq=%" PRIu64 " %s delayed %" PRIu64 " ps by link", seq, what,
           static_cast<uint64_t>(*extra_delay_ps));
      return 1;
    case FaultInjector::CtrlFault::kNone:
      break;
  }
  return 1;
}

void ControlChannel::SendAttempt(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.acked || it->second.failed) {
    return;
  }
  Pending& p = it->second;
  if (p.attempt >= cfg_.max_attempts) {
    p.failed = true;
    Note("seq=%" PRIu64 " %s failed after %d attempts", seq, OpName(p.op), p.attempt);
    if (p.done) {
      CtrlResult r;
      r.ok = false;
      r.error = "control channel: max attempts exhausted";
      p.result = r;
      p.done(r);
    }
    return;
  }
  p.attempt += 1;
  const int attempt = p.attempt;
  Note("seq=%" PRIu64 " %s attempt=%d send", seq, OpName(p.op), attempt);

  SimTime extra = 0;
  const int copies = LinkCrossing(seq, "request", &extra);
  for (int c = 0; c < copies; ++c) {
    // A duplicated message arrives as two back-to-back deliveries.
    const SimTime delay =
        cfg_.link_delay_ps + extra + static_cast<SimTime>(c) * (cfg_.link_delay_ps / 4 + 1);
    engine_.ScheduleIn(delay, [this, seq] { DeliverRequest(seq); });
  }
  engine_.ScheduleIn(cfg_.ack_timeout_ps,
                              [this, seq, attempt] { OnAttemptTimeout(seq, attempt); });
}

void ControlChannel::DeliverRequest(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return;
  }
  // Receiver side: execute once, re-ack duplicates from the cache.
  auto done = executed_.find(seq);
  if (done == executed_.end()) {
    CtrlResult r = Execute(it->second);
    executed_count_ += 1;
    Note("seq=%" PRIu64 " %s executed ok=%d", seq, OpName(it->second.op), r.ok ? 1 : 0);
    done = executed_.emplace(seq, std::move(r)).first;
  } else {
    Note("seq=%" PRIu64 " duplicate delivery, re-ack from cache", seq);
  }
  SendAck(seq, done->second);
}

CtrlResult ControlChannel::Execute(const Pending& pending) {
  CtrlResult r;
  switch (pending.op) {
    case Op::kInstall: {
      InstallRequest req = pending.request;
      if (pending.has_program) {
        req.program = &pending.program;
      }
      const InstallOutcome out = router_.Install(req);
      r.ok = out.ok;
      r.fid = out.fid;
      r.error = out.error;
      break;
    }
    case Op::kRemove:
      r.ok = router_.Remove(pending.fid);
      break;
    case Op::kGetData:
      r.data = router_.GetData(pending.fid);
      r.ok = !r.data.empty();
      break;
    case Op::kSetData:
      r.ok = router_.SetData(pending.fid,
                             std::span<const uint8_t>(pending.data.data(), pending.data.size()));
      break;
    case Op::kUpgrade: {
      UpgradeOrchestrator* up = router_.upgrade();
      if (up == nullptr) {
        r.error = "upgrade: no orchestrator attached";
        break;
      }
      // The receiver's copy is what crossed the wire; corruption lands here,
      // never on the sender's retained program.
      VrpProgram image = pending.program;
      if (FaultInjector* fault = router_.fault_injector(); fault != nullptr) {
        fault->MaybeCorruptImage(&image);
      }
      r.ok = up->Begin(pending.fid, image, pending.checksum);
      r.fid = pending.fid;
      if (!r.ok) {
        r.error = up->last_error();
      }
      break;
    }
  }
  return r;
}

void ControlChannel::SendAck(uint64_t seq, const CtrlResult& result) {
  SimTime extra = 0;
  const int copies = LinkCrossing(seq, "ack", &extra);
  for (int c = 0; c < copies; ++c) {
    const SimTime delay =
        cfg_.link_delay_ps + extra + static_cast<SimTime>(c) * (cfg_.link_delay_ps / 4 + 1);
    CtrlResult copy = result;
    engine_.ScheduleIn(
        delay, [this, seq, r = std::move(copy)] { DeliverAck(seq, r); });
  }
}

void ControlChannel::DeliverAck(uint64_t seq, CtrlResult result) {
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.acked || it->second.failed) {
    return;  // duplicate or late ack
  }
  Pending& p = it->second;
  p.acked = true;
  p.result = std::move(result);
  Note("seq=%" PRIu64 " %s acked ok=%d attempts=%d", seq, OpName(p.op),
       p.result.ok ? 1 : 0, p.attempt);
  if (p.done) {
    p.done(p.result);
  }
}

void ControlChannel::OnAttemptTimeout(uint64_t seq, int attempt) {
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.acked || it->second.failed) {
    return;
  }
  Pending& p = it->second;
  if (p.attempt != attempt) {
    return;  // a newer attempt owns the timer
  }
  router_.stats().ctrl_timeouts += 1;
  if (p.attempt >= cfg_.max_attempts) {
    SendAttempt(seq);  // reports the failure
    return;
  }
  router_.stats().ctrl_retries += 1;
  // Deterministic exponential backoff with seeded jitter.
  SimTime backoff = cfg_.backoff_base_ps << (p.attempt - 1);
  if (cfg_.backoff_jitter > 0) {
    const double j = (rng_.NextDouble() * 2.0 - 1.0) * cfg_.backoff_jitter;
    backoff = static_cast<SimTime>(static_cast<double>(backoff) * (1.0 + j));
  }
  Note("seq=%" PRIu64 " attempt=%d timeout, retry in %" PRIu64 " ps", seq, attempt,
       static_cast<uint64_t>(backoff));
  engine_.ScheduleIn(backoff, [this, seq] { SendAttempt(seq); });
}

bool ControlChannel::acked(uint64_t seq) const {
  auto it = pending_.find(seq);
  return it != pending_.end() && it->second.acked;
}

bool ControlChannel::failed(uint64_t seq) const {
  auto it = pending_.find(seq);
  return it != pending_.end() && it->second.failed;
}

const CtrlResult* ControlChannel::result(uint64_t seq) const {
  auto it = pending_.find(seq);
  if (it == pending_.end() || !(it->second.acked || it->second.failed)) {
    return nullptr;
  }
  return &it->second.result;
}

size_t ControlChannel::in_flight() const {
  size_t n = 0;
  for (const auto& [seq, p] : pending_) {
    n += (!p.acked && !p.failed) ? 1 : 0;
  }
  return n;
}

}  // namespace npr
