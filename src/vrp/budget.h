// VRP budget model (§4.2, §4.3).
//
// The budget is what makes the router robust: admission control proves each
// data forwarder fits, so no extension can push the MicroEngines below line
// rate. The prototype's 8 x 100 Mbps configuration leaves each 64-byte MP:
// 240 instruction cycles, 24 four-byte SRAM transfers (96 bytes of
// persistent state), 3 hardware hashes, and 650 ISTORE slots (§4.3).

#ifndef SRC_VRP_BUDGET_H_
#define SRC_VRP_BUDGET_H_

#include <cstdint>
#include <string>

#include "src/vrp/isa.h"

namespace npr {

struct VrpBudget {
  uint32_t cycles = 240;
  uint32_t sram_transfers = 24;  // 4 bytes each
  uint32_t hashes = 3;
  uint32_t istore_slots = 650;

  // The paper's prototype budget (8 x 100 Mbps -> 1.128 Mpps line rate).
  static VrpBudget Prototype() { return VrpBudget{}; }

  // Derives a budget from a required aggregate forwarding rate, using the
  // measured relation of Figure 9: the input stage costs ~229 effective
  // cycles/MP with protected queues, four MicroEngines provide 800 Mcycles
  // of input pipeline per second, and each 4-byte SRAM transfer costs ~8
  // effective (partially hidden) cycles. Headroom is split between compute
  // and state access in the prototype's 240:24 proportion.
  static VrpBudget ForForwardingRate(double mpps);

  // True if `cost` (plus `extra`, e.g. already-installed general
  // forwarders) fits in every dimension.
  bool Admits(const VrpCost& cost, const VrpCost& extra = {}) const;

  std::string ToString() const;
};

}  // namespace npr

#endif  // SRC_VRP_BUDGET_H_
