#include "src/vrp/budget.h"

#include <algorithm>
#include <cstdio>

namespace npr {

VrpBudget VrpBudget::ForForwardingRate(double mpps) {
  VrpBudget b;
  if (mpps <= 0) {
    return b;
  }
  // Four input MicroEngines at 200 MHz give 800 Mcycles/s of pipeline;
  // the fixed input stage consumes ~229 effective cycles per MP (§3.5.1
  // instrumentation with protected queues), and the classifier 56 (§4.5).
  const double headroom = 800.0 / mpps - 229.0 - 56.0;
  if (headroom <= 0) {
    b.cycles = 0;
    b.sram_transfers = 0;
    b.hashes = 0;
    return b;
  }
  // Prototype proportions: 240 cycles : 24 transfers (at ~8 effective
  // cycles each) : 3 hashes within the 1.128 Mpps headroom.
  const double scale = headroom / (240.0 + 24.0 * 8.0 + 3.0);
  b.cycles = static_cast<uint32_t>(240.0 * scale);
  b.sram_transfers = static_cast<uint32_t>(24.0 * scale);
  b.hashes = std::max<uint32_t>(1, static_cast<uint32_t>(3.0 * scale));
  return b;
}

bool VrpBudget::Admits(const VrpCost& cost, const VrpCost& extra) const {
  return cost.cycles + extra.cycles <= cycles &&
         cost.sram_transfers() + extra.sram_transfers() <= sram_transfers &&
         cost.hashes + extra.hashes <= hashes;
}

std::string VrpBudget::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{cycles=%u sram_transfers=%u hashes=%u istore=%u}", cycles,
                sram_transfers, hashes, istore_slots);
  return buf;
}

}  // namespace npr
