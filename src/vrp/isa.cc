#include "src/vrp/isa.h"

#include <cstdio>

namespace npr {
namespace {

const char* Mnemonic(VrpOp op) {
  switch (op) {
    case VrpOp::kMovI:
      return "movi";
    case VrpOp::kMov:
      return "mov";
    case VrpOp::kAdd:
      return "add";
    case VrpOp::kAddI:
      return "addi";
    case VrpOp::kSub:
      return "sub";
    case VrpOp::kAnd:
      return "and";
    case VrpOp::kAndI:
      return "andi";
    case VrpOp::kOr:
      return "or";
    case VrpOp::kXor:
      return "xor";
    case VrpOp::kShl:
      return "shl";
    case VrpOp::kShr:
      return "shr";
    case VrpOp::kLdPkt:
      return "ldpkt";
    case VrpOp::kStPkt:
      return "stpkt";
    case VrpOp::kLdSram:
      return "ldsram";
    case VrpOp::kStSram:
      return "stsram";
    case VrpOp::kHash:
      return "hash";
    case VrpOp::kBeq:
      return "beq";
    case VrpOp::kBne:
      return "bne";
    case VrpOp::kBlt:
      return "blt";
    case VrpOp::kBge:
      return "bge";
    case VrpOp::kSend:
      return "send";
    case VrpOp::kDrop:
      return "drop";
    case VrpOp::kSetQueue:
      return "setq";
    case VrpOp::kExcept:
      return "except";
    case VrpOp::kNop:
      return "nop";
  }
  return "?";
}

}  // namespace

uint64_t EncodeVrpWord(const VrpInstr& instr) {
  return (static_cast<uint64_t>(instr.op) << 48) | (static_cast<uint64_t>(instr.a) << 40) |
         (static_cast<uint64_t>(instr.b) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(instr.imm));
}

uint64_t VrpImageChecksum(const VrpProgram& program) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const VrpInstr& instr : program.code) {
    mix(EncodeVrpWord(instr));
  }
  mix(program.flow_state_bytes);
  return h;
}

std::string Disassemble(const VrpProgram& program) {
  std::string out = "; " + program.name + " (.state " +
                    std::to_string(program.flow_state_bytes) + ")\n";
  char buf[96];
  for (size_t pc = 0; pc < program.code.size(); ++pc) {
    const VrpInstr& in = program.code[pc];
    std::snprintf(buf, sizeof(buf), "%3zu: %-7s a=%u b=%u imm=%d\n", pc, Mnemonic(in.op), in.a,
                  in.b, in.imm);
    out += buf;
  }
  return out;
}

}  // namespace npr
