#include "src/vrp/istore_layout.h"

#include <algorithm>

#include "src/sim/log.h"

namespace npr {

IStoreLayout::IStoreLayout(const HwConfig& hw)
    : capacity_(hw.istore_slots - hw.istore_ri_slots - hw.istore_classifier_slots),
      total_slots_(hw.istore_slots),
      write_cycles_per_instr_(hw.istore_write_cycles_per_instr) {}

std::optional<uint32_t> IStoreLayout::InstallPerFlow(const VrpProgram& program) {
  // Per-flow forwarders end in an indirect jump back to the RI epilogue
  // (one extra slot).
  const uint32_t slots = static_cast<uint32_t>(program.instructions()) + 1;
  if (used_ + slots > capacity_) {
    return std::nullopt;
  }
  used_ += slots;
  const uint32_t id = next_id_++;
  entries_[id] = Entry{program, /*general=*/false, slots, install_seq_++, 0};
  return id;
}

std::optional<uint32_t> IStoreLayout::InstallGeneral(const VrpProgram& program,
                                                     uint32_t state_addr) {
  // Generals fall through to the next one: no trailing jump slot.
  const uint32_t slots = static_cast<uint32_t>(program.instructions());
  if (used_ + slots > capacity_) {
    return std::nullopt;
  }
  used_ += slots;
  const uint32_t id = next_id_++;
  entries_[id] = Entry{program, /*general=*/true, slots, install_seq_++, state_addr};
  return id;
}

bool IStoreLayout::Remove(uint32_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  used_ -= it->second.slots;
  // A remove mid-replacement drops both halves of the double buffer.
  if (it->second.staged) {
    used_ -= it->second.staged->slots;
  }
  if (it->second.retained) {
    used_ -= it->second.retained->slots;
  }
  entries_.erase(it);
  return true;
}

uint32_t IStoreLayout::SlotsFor(const Entry& entry, const VrpProgram& program) const {
  // Same trailing-jump rule as the original install path.
  return static_cast<uint32_t>(program.instructions()) + (entry.general ? 0 : 1);
}

bool IStoreLayout::StageReplace(uint32_t id, const VrpProgram& next, uint32_t next_state_addr) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    NPR_ERROR("istore: stage-replace on unknown handle %u", id);
    return false;
  }
  Entry& entry = it->second;
  if (entry.staged || entry.retained) {
    NPR_ERROR("istore: handle %u already has a replacement in flight", id);
    return false;
  }
  const uint32_t slots = SlotsFor(entry, next);
  if (used_ + slots > capacity_) {
    return false;
  }
  used_ += slots;
  entry.staged = Image{next, slots, next_state_addr};
  return true;
}

bool IStoreLayout::CancelReplace(uint32_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.staged) {
    return false;
  }
  used_ -= it->second.staged->slots;
  it->second.staged.reset();
  return true;
}

bool IStoreLayout::CommitReplace(uint32_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.staged) {
    return false;
  }
  Entry& entry = it->second;
  entry.retained = Image{std::move(entry.program), entry.slots, entry.state_addr};
  entry.program = std::move(entry.staged->program);
  entry.slots = entry.staged->slots;
  entry.state_addr = entry.staged->state_addr;
  entry.staged.reset();
  return true;
}

bool IStoreLayout::RevertReplace(uint32_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.retained) {
    return false;
  }
  Entry& entry = it->second;
  used_ -= entry.slots;  // the new image's slots go back to the pool
  entry.program = std::move(entry.retained->program);
  entry.slots = entry.retained->slots;
  entry.state_addr = entry.retained->state_addr;
  entry.retained.reset();
  return true;
}

bool IStoreLayout::PromoteReplace(uint32_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.retained) {
    return false;
  }
  used_ -= it->second.retained->slots;
  it->second.retained.reset();
  return true;
}

bool IStoreLayout::HasRetained(uint32_t id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.retained.has_value();
}

const VrpProgram* IStoreLayout::Staged(uint32_t id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.staged ? &it->second.staged->program : nullptr;
}

const VrpProgram* IStoreLayout::Get(uint32_t id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.program;
}

bool IStoreLayout::SetThrottled(uint32_t id, bool throttled) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    NPR_ERROR("istore: throttle(%s) on unknown handle %u ignored",
              throttled ? "on" : "off", id);
    return false;
  }
  it->second.throttled = throttled;
  return true;
}

bool IStoreLayout::IsThrottled(uint32_t id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.throttled;
}

std::vector<IStoreLayout::GeneralEntry> IStoreLayout::GeneralChain() const {
  // Stored in reverse order from the end of the store: the most recently
  // installed general executes first; the first-installed (minimal IP)
  // executes last.
  std::vector<std::pair<uint64_t, GeneralEntry>> generals;
  for (const auto& [id, entry] : entries_) {
    if (entry.general && !entry.throttled) {
      generals.emplace_back(entry.install_seq,
                            GeneralEntry{&entry.program, entry.state_addr, id});
    }
  }
  std::sort(generals.begin(), generals.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<GeneralEntry> chain;
  chain.reserve(generals.size());
  for (const auto& [seq, ge] : generals) {
    chain.push_back(ge);
  }
  return chain;
}

uint64_t IStoreLayout::InstallCostCycles(const VrpProgram& program) const {
  return static_cast<uint64_t>(program.instructions()) * write_cycles_per_instr_;
}

uint64_t IStoreLayout::FullRewriteCostCycles() const {
  return static_cast<uint64_t>(total_slots_) * write_cycles_per_instr_;
}

}  // namespace npr
