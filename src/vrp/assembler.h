// Two-pass assembler for VRP programs.
//
// Control forwarders ship data-forwarder code to the router through the
// install() interface (§4.5); in this repo that code is written in a small
// assembly language so admission control genuinely "inspects the code"
// (§4.6) rather than trusting a declared cost.
//
// Syntax (one instruction per line, ';' or '#' starts a comment):
//   .state N            ; bytes of per-flow SRAM state
//   movi rA, imm        ; rA = imm
//   mov/add/sub/and/or/xor rA, rB
//   addi/andi rA, imm
//   shl/shr rA, imm
//   ldpkt rA, pN        ; rA = packet word N
//   stpkt rA, pN
//   ldsram rA, off      ; rA = flow_state[off]  (off: byte offset, 4-aligned)
//   stsram rA, off
//   hash rA, rB
//   beq/bne/blt/bge rA, rB, label   ; forward only
//   setq imm            ; select destination priority queue
//   send | drop | except
//   label:

#ifndef SRC_VRP_ASSEMBLER_H_
#define SRC_VRP_ASSEMBLER_H_

#include <string>

#include "src/vrp/isa.h"

namespace npr {

struct AssembleResult {
  bool ok = false;
  std::string error;  // "line N: ..." when !ok
  VrpProgram program;
};

AssembleResult Assemble(const std::string& name, const std::string& source);

}  // namespace npr

#endif  // SRC_VRP_ASSEMBLER_H_
