#include "src/vrp/verifier.h"

#include <algorithm>
#include <vector>

namespace npr {
namespace {

bool IsBranch(VrpOp op) {
  return op == VrpOp::kBeq || op == VrpOp::kBne || op == VrpOp::kBlt || op == VrpOp::kBge;
}

bool IsTerminator(VrpOp op) {
  return op == VrpOp::kSend || op == VrpOp::kDrop || op == VrpOp::kExcept;
}

bool ReadsGpB(VrpOp op) {
  switch (op) {
    case VrpOp::kMov:
    case VrpOp::kAdd:
    case VrpOp::kSub:
    case VrpOp::kAnd:
    case VrpOp::kOr:
    case VrpOp::kXor:
    case VrpOp::kHash:
    case VrpOp::kBeq:
    case VrpOp::kBne:
    case VrpOp::kBlt:
    case VrpOp::kBge:
      return true;
    default:
      return false;
  }
}

bool UsesGpA(VrpOp op) {
  switch (op) {
    case VrpOp::kSetQueue:
    case VrpOp::kSend:
    case VrpOp::kDrop:
    case VrpOp::kExcept:
    case VrpOp::kNop:
      return false;
    default:
      return true;
  }
}

// Single-instruction cost: 1 cycle baseline; taken-or-not branches pay a
// branch-delay cycle (§4.6: "slightly larger than the instruction counts
// ... since branch delays must be taken into consideration").
VrpCost InstrCost(const VrpInstr& in) {
  VrpCost c;
  c.cycles = IsBranch(in.op) ? 2 : 1;
  switch (in.op) {
    case VrpOp::kLdSram:
      c.sram_reads = 1;
      break;
    case VrpOp::kStSram:
      c.sram_writes = 1;
      break;
    case VrpOp::kHash:
      c.hashes = 1;
      break;
    default:
      break;
  }
  return c;
}

}  // namespace

VerifyResult VerifyProgram(const VrpProgram& program) {
  const auto& code = program.code;
  const size_t n = code.size();
  if (n == 0) {
    return VerifyResult::Fail("empty program");
  }

  // --- structural checks ---
  for (size_t pc = 0; pc < n; ++pc) {
    const VrpInstr& in = code[pc];
    if (UsesGpA(in.op) && in.a >= kVrpGpRegs) {
      return VerifyResult::Fail("instruction " + std::to_string(pc) + ": register a out of range");
    }
    if (in.op == VrpOp::kLdPkt || in.op == VrpOp::kStPkt) {
      if (in.b >= kVrpPacketRegs) {
        return VerifyResult::Fail("instruction " + std::to_string(pc) +
                                  ": packet register out of range");
      }
    } else if (ReadsGpB(in.op) && in.b >= kVrpGpRegs) {
      return VerifyResult::Fail("instruction " + std::to_string(pc) + ": register b out of range");
    }
    if (IsBranch(in.op)) {
      if (in.imm <= 0) {
        return VerifyResult::Fail("instruction " + std::to_string(pc) +
                                  ": backward or self branch (loops are rejected)");
      }
      if (pc + static_cast<size_t>(in.imm) >= n) {
        return VerifyResult::Fail("instruction " + std::to_string(pc) +
                                  ": branch target out of range");
      }
    }
    if (in.op == VrpOp::kLdSram || in.op == VrpOp::kStSram) {
      if (in.imm < 0 || in.imm % 4 != 0 ||
          static_cast<uint32_t>(in.imm) + 4 > program.flow_state_bytes) {
        return VerifyResult::Fail("instruction " + std::to_string(pc) +
                                  ": flow-state access misaligned or out of bounds");
      }
    }
    // Every path must end in a terminator: the final instruction must not
    // fall off the end.
    if (pc == n - 1 && !IsTerminator(in.op)) {
      return VerifyResult::Fail("program does not end with send/drop/except");
    }
  }

  // --- worst-case cost: reverse DP over the acyclic CFG ---
  std::vector<VrpCost> worst(n + 1);
  for (size_t i = n; i-- > 0;) {
    const VrpInstr& in = code[i];
    VrpCost c = InstrCost(in);
    if (!IsTerminator(in.op)) {
      const VrpCost& fall = worst[i + 1];
      VrpCost succ = fall;
      if (IsBranch(in.op)) {
        const VrpCost& taken = worst[i + static_cast<size_t>(in.imm)];
        succ.cycles = std::max(fall.cycles, taken.cycles);
        succ.sram_reads = std::max(fall.sram_reads, taken.sram_reads);
        succ.sram_writes = std::max(fall.sram_writes, taken.sram_writes);
        succ.hashes = std::max(fall.hashes, taken.hashes);
      }
      c.cycles += succ.cycles;
      c.sram_reads += succ.sram_reads;
      c.sram_writes += succ.sram_writes;
      c.hashes += succ.hashes;
    }
    worst[i] = c;
  }

  VerifyResult result;
  result.ok = true;
  result.worst_case = worst[0];
  result.instructions = static_cast<uint32_t>(n);
  return result;
}

}  // namespace npr
