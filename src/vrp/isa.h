// Virtual Router Processor (VRP) instruction set (§4.2, §4.3).
//
// The VRP is the abstract machine the paper defines for per-packet
// extension code on the MicroEngines. Its programs see:
//   * P0..P15 — the current 64-byte MP as sixteen 32-bit packet registers
//   * R0..R7  — general-purpose scratch registers (not preserved across MPs)
//   * flow state — `size` bytes of SRAM at an address the classifier binds
//   * the hardware hash unit
// Control flow is forward-only: the paper's admission control exploits the
// fact that a data forwarder has "no reason to contain a loop" (any loop
// over a 64-byte MP is effectively unrolled), which makes worst-case cost
// statically computable (§4.6).

#ifndef SRC_VRP_ISA_H_
#define SRC_VRP_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace npr {

inline constexpr int kVrpPacketRegs = 16;  // P0..P15: the MP
inline constexpr int kVrpGpRegs = 8;       // R0..R7

enum class VrpOp : uint8_t {
  // ALU — 1 cycle each.
  kMovI,   // R[a] = imm
  kMov,    // R[a] = R[b]
  kAdd,    // R[a] += R[b]
  kAddI,   // R[a] += imm
  kSub,    // R[a] -= R[b]
  kAnd,    // R[a] &= R[b]
  kAndI,   // R[a] &= imm
  kOr,     // R[a] |= R[b]
  kXor,    // R[a] ^= R[b]
  kShl,    // R[a] <<= imm
  kShr,    // R[a] >>= imm (logical)

  // Packet register file — 1 cycle, no memory traffic.
  kLdPkt,  // R[a] = P[b]  (32-bit big-endian word b of the MP)
  kStPkt,  // P[b] = R[a]

  // Flow state — one 4-byte SRAM transfer each (counted against budget).
  kLdSram,  // R[a] = SRAM32[flow_state + imm]
  kStSram,  // SRAM32[flow_state + imm] = R[a]

  // Hardware hash unit — 1 cycle (§3.5.1), counted against budget.
  kHash,  // R[a] = hash32(R[b])

  // Forward-only conditional branches — 1 cycle + 1 branch-delay cycle.
  kBeq,  // if R[a] == R[b] jump to pc + imm (imm > 0)
  kBne,
  kBlt,  // unsigned <
  kBge,  // unsigned >=

  // Terminators — 1 cycle.
  kSend,      // finish; packet continues (to the queue chosen so far)
  kDrop,      // finish; packet is discarded
  kSetQueue,  // select destination priority queue = imm (not a terminator)
  kExcept,    // finish; divert packet to the exceptional (StrongARM) path

  kNop,
};

struct VrpInstr {
  VrpOp op = VrpOp::kNop;
  uint8_t a = 0;
  uint8_t b = 0;
  int32_t imm = 0;
};

// Worst-case static cost of a program (computed by the verifier) or the
// metered dynamic cost of one execution (reported by the interpreter).
struct VrpCost {
  uint32_t cycles = 0;       // instruction cycles incl. branch delays
  uint32_t sram_reads = 0;   // 4-byte transfers
  uint32_t sram_writes = 0;  // 4-byte transfers
  uint32_t hashes = 0;

  uint32_t sram_transfers() const { return sram_reads + sram_writes; }
  uint32_t sram_bytes() const { return sram_transfers() * 4; }
};

// A compiled data forwarder.
struct VrpProgram {
  std::string name;
  std::vector<VrpInstr> code;
  // Bytes of per-flow SRAM state the forwarder requires (install's `size`).
  uint32_t flow_state_bytes = 0;

  size_t instructions() const { return code.size(); }
};

// Returns a human-readable disassembly (for diagnostics and the Table 5
// bench output).
std::string Disassemble(const VrpProgram& program);

// The assembled 64-bit image word for one instruction: op/a/b packed in the
// high half, the immediate in the low half. This is the wire format an
// install request carries across the control channel and the unit the
// image checksum covers.
uint64_t EncodeVrpWord(const VrpInstr& instr);

// FNV-1a over the assembled words plus the declared .state size. Install
// verifies a sender-supplied checksum against the bytes that actually
// arrived, so an image corrupted in transit is rejected at install time
// rather than discovered at its first runtime trap.
uint64_t VrpImageChecksum(const VrpProgram& program);

}  // namespace npr

#endif  // SRC_VRP_ISA_H_
