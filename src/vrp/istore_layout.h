// MicroEngine ISTORE layout manager (Figure 11, §4.5).
//
// Each input context's 1024-slot instruction store holds, between the fixed
// router-infrastructure prologue and epilogue: the classifier, the per-flow
// forwarders, and the general forwarders. General forwarders are stored in
// reverse order from the end of the store so control falls from one to the
// next without hard-coded jump addresses; the last one (installed first) is
// always minimal IP. Per-flow forwarders end in an indirect jump through a
// MicroEngine register. Installation writes the store with
// instruction-level granularity at two memory accesses per instruction.

#ifndef SRC_VRP_ISTORE_LAYOUT_H_
#define SRC_VRP_ISTORE_LAYOUT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/ixp/hw_config.h"
#include "src/vrp/isa.h"

namespace npr {

class IStoreLayout {
 public:
  explicit IStoreLayout(const HwConfig& hw);

  // Installs a per-flow forwarder (reached via classifier metadata).
  // Returns its handle, or nullopt if the extension region is full.
  std::optional<uint32_t> InstallPerFlow(const VrpProgram& program);

  // Installs a general forwarder (applied to every packet, executed before
  // all previously installed generals). `state_addr` is the SRAM address of
  // its (ALL-keyed) state.
  std::optional<uint32_t> InstallGeneral(const VrpProgram& program, uint32_t state_addr = 0);

  struct GeneralEntry {
    const VrpProgram* program;
    uint32_t state_addr;
    uint32_t id;  // install handle (trap attribution / quarantine)
  };

  // Frees a forwarder's slots. Returns false for unknown handles.
  bool Remove(uint32_t id);

  const VrpProgram* Get(uint32_t id) const;

  // Quarantine throttle: a throttled forwarder keeps its slots but is
  // skipped by the classify path (packets take the default IP transform)
  // until the throttle lifts. Returns false — and logs an error — for an
  // unknown handle: a throttle that silently lands nowhere would leave a
  // misbehaving (or overloading) forwarder running while its caller
  // believes it contained.
  bool SetThrottled(uint32_t id, bool throttled);
  bool IsThrottled(uint32_t id) const;

  // --- in-service replacement (hitless upgrade, src/core/upgrade.h) ---
  //
  // A staged image is the double-buffer half: its slots count against
  // capacity while staged, but Get()/GeneralChain() keep returning the
  // active image. CommitReplace swaps the two in one step — the handle, and
  // therefore every classifier/flow-table reference, never changes — and
  // retains the previous image so RevertReplace can swap back. Exactly one
  // of {staged, retained} exists at a time per handle.

  // Reserves slots for `next` beside the active image. Fails on unknown
  // handles, exhausted capacity, or if a replacement is already in flight.
  bool StageReplace(uint32_t id, const VrpProgram& next, uint32_t next_state_addr);
  // Discards a staged (not yet committed) image and frees its slots.
  bool CancelReplace(uint32_t id);
  // The staged image becomes active; the old image is retained for revert.
  bool CommitReplace(uint32_t id);
  // Swaps the retained old image back in and frees the new one's slots.
  bool RevertReplace(uint32_t id);
  // Drops the retained old image after a successful soak, freeing its slots.
  bool PromoteReplace(uint32_t id);
  // True while a committed-but-not-yet-promoted replacement holds both
  // halves (i.e. RevertReplace is still possible).
  bool HasRetained(uint32_t id) const;
  // The staged program (nullptr unless StageReplace is pending commit).
  const VrpProgram* Staged(uint32_t id) const;

  // General forwarders in execution (fall-through) order.
  std::vector<GeneralEntry> GeneralChain() const;

  // Cycles the StrongARM needs to write this program into one ISTORE
  // (§4.5: two memory accesses per instruction, 40 cycles each).
  uint64_t InstallCostCycles(const VrpProgram& program) const;
  // Cycles to rewrite the entire store (classification changes, §4.5).
  uint64_t FullRewriteCostCycles() const;

  uint32_t extension_capacity() const { return capacity_; }
  uint32_t used_slots() const { return used_; }
  uint32_t free_slots() const { return capacity_ - used_; }

 private:
  struct Image {
    VrpProgram program;
    uint32_t slots = 0;
    uint32_t state_addr = 0;
  };

  struct Entry {
    VrpProgram program;
    bool general;
    uint32_t slots;
    uint64_t install_seq;
    uint32_t state_addr;
    bool throttled = false;
    // In-flight replacement: staged before commit, retained after.
    std::optional<Image> staged;
    std::optional<Image> retained;
  };

  uint32_t SlotsFor(const Entry& entry, const VrpProgram& program) const;

  const uint32_t capacity_;       // slots available to extensions (650)
  const uint32_t total_slots_;    // full store (1024)
  const uint32_t write_cycles_per_instr_;
  uint32_t used_ = 0;
  uint32_t next_id_ = 1;
  uint64_t install_seq_ = 0;
  std::map<uint32_t, Entry> entries_;
};

}  // namespace npr

#endif  // SRC_VRP_ISTORE_LAYOUT_H_
