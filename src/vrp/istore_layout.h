// MicroEngine ISTORE layout manager (Figure 11, §4.5).
//
// Each input context's 1024-slot instruction store holds, between the fixed
// router-infrastructure prologue and epilogue: the classifier, the per-flow
// forwarders, and the general forwarders. General forwarders are stored in
// reverse order from the end of the store so control falls from one to the
// next without hard-coded jump addresses; the last one (installed first) is
// always minimal IP. Per-flow forwarders end in an indirect jump through a
// MicroEngine register. Installation writes the store with
// instruction-level granularity at two memory accesses per instruction.

#ifndef SRC_VRP_ISTORE_LAYOUT_H_
#define SRC_VRP_ISTORE_LAYOUT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/ixp/hw_config.h"
#include "src/vrp/isa.h"

namespace npr {

class IStoreLayout {
 public:
  explicit IStoreLayout(const HwConfig& hw);

  // Installs a per-flow forwarder (reached via classifier metadata).
  // Returns its handle, or nullopt if the extension region is full.
  std::optional<uint32_t> InstallPerFlow(const VrpProgram& program);

  // Installs a general forwarder (applied to every packet, executed before
  // all previously installed generals). `state_addr` is the SRAM address of
  // its (ALL-keyed) state.
  std::optional<uint32_t> InstallGeneral(const VrpProgram& program, uint32_t state_addr = 0);

  struct GeneralEntry {
    const VrpProgram* program;
    uint32_t state_addr;
    uint32_t id;  // install handle (trap attribution / quarantine)
  };

  // Frees a forwarder's slots. Returns false for unknown handles.
  bool Remove(uint32_t id);

  const VrpProgram* Get(uint32_t id) const;

  // Quarantine throttle: a throttled forwarder keeps its slots but is
  // skipped by the classify path (packets take the default IP transform)
  // until the throttle lifts. Returns false — and logs an error — for an
  // unknown handle: a throttle that silently lands nowhere would leave a
  // misbehaving (or overloading) forwarder running while its caller
  // believes it contained.
  bool SetThrottled(uint32_t id, bool throttled);
  bool IsThrottled(uint32_t id) const;

  // General forwarders in execution (fall-through) order.
  std::vector<GeneralEntry> GeneralChain() const;

  // Cycles the StrongARM needs to write this program into one ISTORE
  // (§4.5: two memory accesses per instruction, 40 cycles each).
  uint64_t InstallCostCycles(const VrpProgram& program) const;
  // Cycles to rewrite the entire store (classification changes, §4.5).
  uint64_t FullRewriteCostCycles() const;

  uint32_t extension_capacity() const { return capacity_; }
  uint32_t used_slots() const { return used_; }
  uint32_t free_slots() const { return capacity_ - used_; }

 private:
  struct Entry {
    VrpProgram program;
    bool general;
    uint32_t slots;
    uint64_t install_seq;
    uint32_t state_addr;
    bool throttled = false;
  };

  const uint32_t capacity_;       // slots available to extensions (650)
  const uint32_t total_slots_;    // full store (1024)
  const uint32_t write_cycles_per_instr_;
  uint32_t used_ = 0;
  uint32_t next_id_ = 1;
  uint64_t install_seq_ = 0;
  std::map<uint32_t, Entry> entries_;
};

}  // namespace npr

#endif  // SRC_VRP_ISTORE_LAYOUT_H_
