// VRP interpreter: executes a data forwarder over one 64-byte MP.
//
// The interpreter is both functional (it really reads/writes the MP bytes
// and the flow state in simulated SRAM) and metered: it reports the exact
// dynamic cost so the input stage can charge the MicroEngine, and — as the
// runtime safety net behind static admission — it traps a program the
// moment it exceeds the enforced budget, diverting the packet to the
// exceptional path instead of stalling the pipeline.

#ifndef SRC_VRP_INTERPRETER_H_
#define SRC_VRP_INTERPRETER_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/ixp/hash_unit.h"
#include "src/mem/backing_store.h"
#include "src/vrp/budget.h"
#include "src/vrp/isa.h"

namespace npr {

enum class VrpAction : uint8_t {
  kSend,    // forward to the selected queue
  kDrop,    // discard
  kExcept,  // divert to the StrongARM path
  kTrap,    // budget violation or illegal instruction at runtime
};

struct VrpOutcome {
  VrpAction action = VrpAction::kSend;
  std::optional<uint32_t> queue;  // set by kSetQueue
  VrpCost metered;                // actual dynamic cost of this run
};

class VrpInterpreter {
 public:
  VrpInterpreter(BackingStore& sram, HashUnit& hash) : sram_(sram), hash_(hash) {}

  // Runs `program` over `mp` (64 bytes, mutated in place by kStPkt) with
  // flow state at `flow_state_addr` in SRAM. If `enforce` is non-null the
  // program traps on the first budget-exceeding instruction.
  VrpOutcome Run(const VrpProgram& program, std::span<uint8_t> mp, uint32_t flow_state_addr,
                 const VrpBudget* enforce = nullptr);

  uint64_t traps() const { return traps_; }

 private:
  BackingStore& sram_;
  HashUnit& hash_;
  uint64_t traps_ = 0;
};

}  // namespace npr

#endif  // SRC_VRP_INTERPRETER_H_
