// Static verifier for VRP programs — the heart of admission control (§4.6).
//
// "Verifying that the forwarder lives within the available VRP budget is
// trivial since there is no reason for the forwarder to contain a loop, and
// hence, a backwards jump." The verifier enforces exactly that structural
// property and then computes a worst-case cost over the (acyclic) control
// flow graph by dynamic programming from the exits.

#ifndef SRC_VRP_VERIFIER_H_
#define SRC_VRP_VERIFIER_H_

#include <string>

#include "src/vrp/isa.h"

namespace npr {

struct VerifyResult {
  bool ok = false;
  std::string error;       // empty when ok
  VrpCost worst_case;      // valid only when ok
  uint32_t instructions = 0;

  static VerifyResult Fail(std::string why) {
    VerifyResult r;
    r.error = std::move(why);
    return r;
  }
};

// Checks structure (register bounds, forward-only branches, all paths
// terminate, flow-state accesses aligned and in bounds) and computes the
// worst-case per-MP cost. Each metric's worst case is maximized
// independently over paths, which is a safe (conservative) bound for
// admission.
VerifyResult VerifyProgram(const VrpProgram& program);

}  // namespace npr

#endif  // SRC_VRP_VERIFIER_H_
