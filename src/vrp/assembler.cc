#include "src/vrp/assembler.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace npr {
namespace {

std::string Lower(std::string s) {
  for (auto& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Splits on whitespace and commas.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

bool ParseReg(const std::string& tok, char kind, uint8_t* out) {
  const std::string low = Lower(tok);
  if (low.size() < 2 || low[0] != kind) {
    return false;
  }
  int v = 0;
  for (size_t i = 1; i < low.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(low[i]))) {
      return false;
    }
    v = v * 10 + (low[i] - '0');
  }
  *out = static_cast<uint8_t>(v);
  return true;
}

bool ParseImm(const std::string& tok, int32_t* out) {
  if (tok.empty()) {
    return false;
  }
  size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(tok, &pos, 0);
  } catch (...) {
    return false;
  }
  if (pos != tok.size()) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

struct PendingInstr {
  int line;
  std::vector<std::string> tokens;
};

}  // namespace

AssembleResult Assemble(const std::string& name, const std::string& source) {
  AssembleResult result;
  result.program.name = name;

  auto fail = [&](int line, const std::string& why) -> AssembleResult& {
    result.ok = false;
    result.error = "line " + std::to_string(line) + ": " + why;
    return result;
  };

  // Pass 1: strip comments, bind labels to instruction indexes, collect
  // directives and instruction token lists.
  std::map<std::string, size_t> labels;
  std::vector<PendingInstr> instrs;
  {
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      const auto comment = raw.find_first_of(";#");
      if (comment != std::string::npos) {
        raw.resize(comment);
      }
      auto tokens = Tokenize(raw);
      while (!tokens.empty() && tokens[0].back() == ':') {
        const std::string label = Lower(tokens[0].substr(0, tokens[0].size() - 1));
        if (label.empty() || labels.count(label) != 0) {
          return fail(number, "bad or duplicate label '" + label + "'");
        }
        labels[label] = instrs.size();
        tokens.erase(tokens.begin());
      }
      if (tokens.empty()) {
        continue;
      }
      if (Lower(tokens[0]) == ".state") {
        int32_t bytes = 0;
        if (tokens.size() != 2 || !ParseImm(tokens[1], &bytes) || bytes < 0 || bytes % 4 != 0) {
          return fail(number, ".state requires a non-negative multiple of 4");
        }
        result.program.flow_state_bytes = static_cast<uint32_t>(bytes);
        continue;
      }
      instrs.push_back(PendingInstr{number, std::move(tokens)});
    }
  }

  // Pass 2: encode.
  static const std::map<std::string, VrpOp> kRegReg = {
      {"mov", VrpOp::kMov}, {"add", VrpOp::kAdd}, {"sub", VrpOp::kSub},
      {"and", VrpOp::kAnd}, {"or", VrpOp::kOr},   {"xor", VrpOp::kXor},
      {"hash", VrpOp::kHash}};
  static const std::map<std::string, VrpOp> kRegImm = {{"movi", VrpOp::kMovI},
                                                       {"addi", VrpOp::kAddI},
                                                       {"andi", VrpOp::kAndI},
                                                       {"shl", VrpOp::kShl},
                                                       {"shr", VrpOp::kShr},
                                                       {"ldsram", VrpOp::kLdSram},
                                                       {"stsram", VrpOp::kStSram}};
  static const std::map<std::string, VrpOp> kBranch = {{"beq", VrpOp::kBeq},
                                                       {"bne", VrpOp::kBne},
                                                       {"blt", VrpOp::kBlt},
                                                       {"bge", VrpOp::kBge}};

  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const auto& [line, tokens] = instrs[idx];
    const std::string mnem = Lower(tokens[0]);
    VrpInstr out;

    auto need = [&](size_t n) { return tokens.size() == n; };

    if (auto it = kRegReg.find(mnem); it != kRegReg.end()) {
      out.op = it->second;
      if (!need(3) || !ParseReg(tokens[1], 'r', &out.a) || !ParseReg(tokens[2], 'r', &out.b)) {
        return fail(line, mnem + " expects: " + mnem + " rA, rB");
      }
    } else if (auto it2 = kRegImm.find(mnem); it2 != kRegImm.end()) {
      out.op = it2->second;
      if (!need(3) || !ParseReg(tokens[1], 'r', &out.a) || !ParseImm(tokens[2], &out.imm)) {
        return fail(line, mnem + " expects: " + mnem + " rA, imm");
      }
    } else if (auto it3 = kBranch.find(mnem); it3 != kBranch.end()) {
      out.op = it3->second;
      if (!need(4) || !ParseReg(tokens[1], 'r', &out.a) || !ParseReg(tokens[2], 'r', &out.b)) {
        return fail(line, mnem + " expects: " + mnem + " rA, rB, label");
      }
      const auto target = labels.find(Lower(tokens[3]));
      if (target == labels.end()) {
        return fail(line, "unknown label '" + tokens[3] + "'");
      }
      out.imm = static_cast<int32_t>(target->second) - static_cast<int32_t>(idx);
      if (out.imm <= 0) {
        return fail(line, "backward branch to '" + tokens[3] + "' (loops are rejected)");
      }
    } else if (mnem == "ldpkt" || mnem == "stpkt") {
      out.op = mnem == "ldpkt" ? VrpOp::kLdPkt : VrpOp::kStPkt;
      if (!need(3) || !ParseReg(tokens[1], 'r', &out.a) || !ParseReg(tokens[2], 'p', &out.b)) {
        return fail(line, mnem + " expects: " + mnem + " rA, pN");
      }
    } else if (mnem == "setq") {
      out.op = VrpOp::kSetQueue;
      if (!need(2) || !ParseImm(tokens[1], &out.imm)) {
        return fail(line, "setq expects: setq imm");
      }
    } else if (mnem == "send" || mnem == "drop" || mnem == "except" || mnem == "nop") {
      out.op = mnem == "send" ? VrpOp::kSend
               : mnem == "drop" ? VrpOp::kDrop
               : mnem == "except" ? VrpOp::kExcept
                                  : VrpOp::kNop;
      if (!need(1)) {
        return fail(line, mnem + " takes no operands");
      }
    } else {
      return fail(line, "unknown mnemonic '" + mnem + "'");
    }
    result.program.code.push_back(out);
  }

  if (result.program.code.empty()) {
    return fail(0, "no instructions");
  }
  result.ok = true;
  return result;
}

}  // namespace npr
