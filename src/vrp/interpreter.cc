#include "src/vrp/interpreter.h"

#include <array>

namespace npr {
namespace {

uint32_t ReadPacketWord(std::span<const uint8_t> mp, uint8_t word) {
  const size_t off = static_cast<size_t>(word) * 4;
  if (off + 4 > mp.size()) {
    return 0;
  }
  return static_cast<uint32_t>(mp[off]) << 24 | static_cast<uint32_t>(mp[off + 1]) << 16 |
         static_cast<uint32_t>(mp[off + 2]) << 8 | mp[off + 3];
}

void WritePacketWord(std::span<uint8_t> mp, uint8_t word, uint32_t v) {
  const size_t off = static_cast<size_t>(word) * 4;
  if (off + 4 > mp.size()) {
    return;
  }
  mp[off] = static_cast<uint8_t>(v >> 24);
  mp[off + 1] = static_cast<uint8_t>(v >> 16);
  mp[off + 2] = static_cast<uint8_t>(v >> 8);
  mp[off + 3] = static_cast<uint8_t>(v);
}

}  // namespace

VrpOutcome VrpInterpreter::Run(const VrpProgram& program, std::span<uint8_t> mp,
                               uint32_t flow_state_addr, const VrpBudget* enforce) {
  VrpOutcome out;
  std::array<uint32_t, kVrpGpRegs> r{};
  const auto& code = program.code;
  size_t pc = 0;
  // Forward-only control flow bounds execution by the program length; the
  // guard below also catches unverified programs with backward branches.
  size_t steps = 0;

  auto trap = [&] {
    ++traps_;
    out.action = VrpAction::kTrap;
    return out;
  };

  while (pc < code.size()) {
    if (++steps > code.size()) {
      return trap();  // loop detected at runtime (program was not verified)
    }
    const VrpInstr& in = code[pc];
    VrpCost& m = out.metered;
    m.cycles += 1;
    size_t next = pc + 1;
    bool done = false;

    switch (in.op) {
      case VrpOp::kMovI:
        r[in.a] = static_cast<uint32_t>(in.imm);
        break;
      case VrpOp::kMov:
        r[in.a] = r[in.b];
        break;
      case VrpOp::kAdd:
        r[in.a] += r[in.b];
        break;
      case VrpOp::kAddI:
        r[in.a] += static_cast<uint32_t>(in.imm);
        break;
      case VrpOp::kSub:
        r[in.a] -= r[in.b];
        break;
      case VrpOp::kAnd:
        r[in.a] &= r[in.b];
        break;
      case VrpOp::kAndI:
        r[in.a] &= static_cast<uint32_t>(in.imm);
        break;
      case VrpOp::kOr:
        r[in.a] |= r[in.b];
        break;
      case VrpOp::kXor:
        r[in.a] ^= r[in.b];
        break;
      case VrpOp::kShl:
        r[in.a] <<= (in.imm & 31);
        break;
      case VrpOp::kShr:
        r[in.a] >>= (in.imm & 31);
        break;
      case VrpOp::kLdPkt:
        r[in.a] = ReadPacketWord(mp, in.b);
        break;
      case VrpOp::kStPkt:
        WritePacketWord(mp, in.b, r[in.a]);
        break;
      case VrpOp::kLdSram:
        m.sram_reads += 1;
        r[in.a] = sram_.ReadU32(flow_state_addr + static_cast<uint32_t>(in.imm));
        break;
      case VrpOp::kStSram:
        m.sram_writes += 1;
        sram_.WriteU32(flow_state_addr + static_cast<uint32_t>(in.imm), r[in.a]);
        break;
      case VrpOp::kHash:
        m.hashes += 1;
        r[in.a] = hash_.Hash32(r[in.b]);
        break;
      case VrpOp::kBeq:
      case VrpOp::kBne:
      case VrpOp::kBlt:
      case VrpOp::kBge: {
        m.cycles += 1;  // branch delay
        if (in.imm <= 0) {
          return trap();
        }
        bool taken = false;
        switch (in.op) {
          case VrpOp::kBeq:
            taken = r[in.a] == r[in.b];
            break;
          case VrpOp::kBne:
            taken = r[in.a] != r[in.b];
            break;
          case VrpOp::kBlt:
            taken = r[in.a] < r[in.b];
            break;
          default:
            taken = r[in.a] >= r[in.b];
            break;
        }
        if (taken) {
          next = pc + static_cast<size_t>(in.imm);
        }
        break;
      }
      case VrpOp::kSetQueue:
        out.queue = static_cast<uint32_t>(in.imm);
        break;
      case VrpOp::kSend:
        out.action = VrpAction::kSend;
        done = true;
        break;
      case VrpOp::kDrop:
        out.action = VrpAction::kDrop;
        done = true;
        break;
      case VrpOp::kExcept:
        out.action = VrpAction::kExcept;
        done = true;
        break;
      case VrpOp::kNop:
        break;
    }

    if (enforce != nullptr && !enforce->Admits(out.metered)) {
      return trap();
    }
    if (done) {
      return out;
    }
    pc = next;
  }
  // Fell off the end without a terminator.
  return trap();
}

}  // namespace npr
