// Router-wide statistics, including the per-stage operation accounting that
// reproduces Table 2.

#ifndef SRC_CORE_ROUTER_STATS_H_
#define SRC_CORE_ROUTER_STATS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace npr {

// Per-pipeline-stage operation counts, accumulated per MP processed. The
// Table 2 bench divides these by `mps`.
struct StageStats {
  uint64_t mps = 0;
  uint64_t packets = 0;
  uint64_t reg_cycles = 0;
  uint64_t sram_reads = 0;
  uint64_t sram_writes = 0;
  uint64_t dram_reads = 0;
  uint64_t dram_writes = 0;
  uint64_t scratch_reads = 0;
  uint64_t scratch_writes = 0;
  // CAM mutex traffic, kept separate from the data-path SRAM ops the way
  // the paper's Table 2 instrumentation does.
  uint64_t mutex_ops = 0;

  void Reset() { *this = StageStats{}; }
  double PerMp(uint64_t v) const {
    return mps == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(mps);
  }
};

struct RouterStats {
  StageStats input;
  StageStats output;

  // Packet dispositions.
  uint64_t forwarded = 0;          // fully transmitted out a port
  uint64_t dropped_invalid = 0;    // failed IP validation
  uint64_t dropped_by_vrp = 0;     // a data forwarder said drop
  uint64_t dropped_queue_full = 0; // no room in the destination queue
  uint64_t lost_overwritten = 0;   // circular buffer lapped before transmit
  uint64_t dropped_no_buffer = 0;  // stack pool exhausted (§3.2.3 alternative)
  uint64_t vrp_traps = 0;          // runtime budget violations

  // Hierarchy traffic.
  // Output-loop iteration mix (diagnostics).
  uint64_t output_idle_iters = 0;  // token held, no ready queue
  uint64_t output_lost_iters = 0;  // dequeued a lapped buffer

  uint64_t exceptional = 0;         // diverted to the StrongARM (any reason)
  uint64_t to_pentium = 0;          // enqueued toward the Pentium
  uint64_t sa_local_processed = 0;  // packets the StrongARM forwarded itself
  uint64_t icmp_generated = 0;      // errors originated on the exception path
  uint64_t pentium_processed = 0;

  // Packet-conservation bookkeeping (RouterInvariants): every way a packet
  // leaves the system other than transmission or the drop counters above.
  uint64_t sa_lapped = 0;        // exception-queue pop hit a lapped buffer
  uint64_t sa_absorbed = 0;      // StrongARM consumed/dropped the packet
  uint64_t pe_absorbed = 0;      // Pentium consumed/dropped the packet
  uint64_t icmp_originated = 0;  // ICMP errors built in fresh buffers (a source)

  // Fault-injection outcomes.
  uint64_t context_crashes = 0;
  uint64_t context_restarts = 0;

  // Self-healing subsystem (src/health): detection and recovery counters.
  uint64_t watchdog_fired = 0;          // any health deadline tripped
  uint64_t tokens_regenerated = 0;      // lost tokens re-issued
  uint64_t forwarders_quarantined = 0;  // trapping forwarders auto-removed
  uint64_t ctrl_retries = 0;            // control messages resent after timeout
  uint64_t ctrl_timeouts = 0;           // control ops abandoned (max retries)
  uint64_t pkts_shed_degraded = 0;      // path-C packets shed while degraded

  // Overload governor (src/core/overload.h): every governor-shed packet is
  // attributed to the ladder stage that shed it. The MAC-RX counters mirror
  // the per-port MacPort counters (RouterInvariants cross-checks the sums);
  // the bridge-shed counters join the packet-conservation sinks.
  uint64_t gov_red_dropped = 0;   // stage 1: RED early drop at MAC RX
  uint64_t gov_policed = 0;       // stage 2: heavy-hitter policing at MAC RX
  uint64_t gov_quenched = 0;      // stage 4: hard shed at MAC RX (+ quench log)
  uint64_t gov_shed_pe = 0;       // stage 3: Pentium-bound shed at the bridge
  uint64_t gov_shed_sa = 0;       // stage 3: SA-local-bound shed at the bridge
  uint64_t gov_escalations = 0;   // ladder stage increases

  // In-service upgrades (src/core/upgrade.h).
  uint64_t upgrades_started = 0;
  uint64_t upgrades_promoted = 0;
  uint64_t upgrade_rollbacks = 0;        // soak failed; old image restored
  uint64_t upgrade_aborts = 0;           // pre-commit abort (shadow/crash)
  uint64_t upgrade_divergences = 0;      // shadow/soak comparator mismatches
  uint64_t upgrade_checksum_rejects = 0; // corrupted images refused at install

  // Cluster control plane (src/cluster + src/control): reconvergence work
  // charged to this node.
  uint64_t spf_recomputes = 0;     // Dijkstra re-runs triggered by LSA change
  uint64_t routes_withdrawn = 0;   // prefixes pulled after a failure
  uint64_t lsas_reflooded = 0;     // LSAs this node re-originated or relayed

  // End-to-end latency of forwarded packets, in nanoseconds.
  Histogram latency_ns;
  // Forwarding rate over the measurement window.
  RateMeter forward_rate;
  SimTime window_start = 0;

  // Begins a measurement window (discards warmup).
  void StartWindow(SimTime now) {
    window_start = now;
    forward_rate.StartWindow(now);
    input.Reset();
    output.Reset();
    latency_ns.Reset();
  }
};

// One-line summary of the self-healing counters for end-to-end output.
inline std::string HealthSummary(const RouterStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "health: watchdog_fired=%llu tokens_regenerated=%llu "
                "forwarders_quarantined=%llu ctrl_retries=%llu ctrl_timeouts=%llu "
                "pkts_shed_degraded=%llu",
                static_cast<unsigned long long>(s.watchdog_fired),
                static_cast<unsigned long long>(s.tokens_regenerated),
                static_cast<unsigned long long>(s.forwarders_quarantined),
                static_cast<unsigned long long>(s.ctrl_retries),
                static_cast<unsigned long long>(s.ctrl_timeouts),
                static_cast<unsigned long long>(s.pkts_shed_degraded));
  return std::string(buf);
}

}  // namespace npr

#endif  // SRC_CORE_ROUTER_STATS_H_
