#include "src/core/pentium_host.h"

#include <algorithm>

#include "src/core/strongarm_bridge.h"
#include "src/fault/fault_injector.h"
#include "src/net/ipv4.h"
#include "src/obs/observer.h"

namespace npr {

void NotifyPentium(PentiumHost& host) { host.Notify(); }

PentiumHost::PentiumHost(RouterCore& core, StrongArmBridge& bridge)
    : core_(core), bridge_(bridge) {
  // Flow 0 carries control traffic; the paper allocates it enough share to
  // keep routing updates timely regardless of data load (§4.1).
  sched_.ConfigureFlow(0, 10.0);
}

void PentiumHost::Start() { core_.host->pentium().Install(PeLoop()); }

void PentiumHost::Notify() { core_.host->pentium().Wake(); }

Task PentiumHost::PeLoop() {
  SoftCore& pe = core_.host->pentium();
  const HwConfig& hw = core_.config->hw;
  MemorySystem& mem = core_.chip->memory();

  for (;;) {
    bool did_work = false;

    // Injected hang: the Pentium burns cycles without touching a packet,
    // which is what the watchdog's stalled-progress check detects.
    if (core_.fault != nullptr) {
      const SimTime hang_ps = core_.fault->PentiumHangPs();
      if (hang_ps > 0) {
        co_await pe.Compute(static_cast<uint64_t>(hang_ps / pe.clock().cycle_ps));
      }
    }

    // --- intake: one I2O entry per pass, so service (below) is never
    // starved when the StrongARM refills the queue faster than the copy
    // cost drains it ---
    if (!bridge_.to_pentium().full_q.empty() && sched_.backlog() < kMaxBacklog) {
      auto ptr = bridge_.to_pentium().full_q.Pop();
      auto it = bridge_.staging().find(*ptr);
      if (it == bridge_.staging().end()) {
        continue;  // stale pointer; nothing staged
      }
      HostPacket hp = it->second;
      bridge_.staging().erase(it);
      bridge_.to_pentium().free_q.Push(*ptr);
      // Recycling a free buffer is the StrongARM's cue to start the next
      // DMA — without it the pipeline ping-pongs (SA would only wake on
      // return-path completions).
      NotifyBridge(bridge_);
      // Software-simulated I2O management plus the copy through the cache:
      // fitted to Table 4 (197 + 10.54 cycles/byte of frame). This is the
      // *entire* per-packet Pentium path cost of the loop test — the I2O
      // pointer pops and the return-side posting are inside the fit.
      co_await pe.Compute(hw.pentium_fixed_cycles +
                          static_cast<uint64_t>(hw.pentium_per_byte_cycles *
                                                static_cast<double>(hp.desc.frame_bytes)));
      sched_.Enqueue(hp.desc.flow_handle, hp);
      NPR_OBS_HOOK(core_.obs,
                   Record(SpanPoint::kPeIntake, BufferMetaFor(core_, hp.desc.buffer_addr).packet_id,
                          kUnitPentium, hp.desc.out_port));
      did_work = true;
    }

    // --- service: one packet from the proportional-share scheduler ---
    if (auto hp = sched_.Next()) {
      const FlowMeta* flow =
          hp->desc.flow_handle != 0 ? core_.flow_table->Get(hp->desc.flow_handle) : nullptr;

      Packet packet;
      bool have_bytes = false;
      bool forward = true;
      uint8_t out_port = hp->desc.out_port;

      std::vector<const FlowMeta*> to_run;
      if (flow != nullptr && flow->where == Where::kPentium) {
        to_run.push_back(flow);
      } else {
        to_run = core_.flow_table->Generals(Where::kPentium);
        if (!to_run.empty()) {
          ++control_processed_;
        }
      }

      for (const FlowMeta* f : to_run) {
        if (!forward) {
          break;
        }
        NativeForwarder* fw = core_.pe_forwarders->Get(f->native_index);
        if (fw == nullptr) {
          continue;
        }
        if (!have_bytes) {
          std::vector<uint8_t> bytes(hp->desc.frame_bytes);
          mem.dram_store().Read(hp->desc.buffer_addr, bytes);
          packet = Packet(std::move(bytes));
          have_bytes = true;
        }
        // Lazy body fetch (§3.7): pull the rest of the frame across PCI
        // only when the forwarder declares it reads the body.
        if (fw->needs_packet_body() && hp->bytes_moved < hp->desc.frame_bytes) {
          const uint32_t rest = hp->desc.frame_bytes - std::min<uint32_t>(
                                                           hp->desc.frame_bytes, 64);
          if (rest > 0) {
            co_await pe.Read(core_.host->pci(), rest);
            co_await pe.Compute(static_cast<uint64_t>(hw.pentium_per_byte_cycles *
                                                      static_cast<double>(rest)));
            hp->bytes_moved += rest;
          }
        }
        NativeContext nc;
        nc.packet = &packet;
        nc.sram = &mem.sram_store();
        nc.state_addr = f->state_addr;
        nc.state_bytes = f->state_bytes;
        nc.routes = core_.route_table;
        nc.now = core_.engine->now();
        nc.out_port = out_port;
        const NativeAction action = fw->Process(nc);
        co_await pe.Compute(fw->cycles_per_packet() + nc.extra_cycles);
        out_port = nc.out_port;
        if (action == NativeAction::kDrop) {
          forward = false;
          ++dropped_;
        } else if (action == NativeAction::kConsume) {
          forward = false;  // absorbed (e.g. a routing update)
        }
      }

      // Per-flow data packets resolve their route here (classification on
      // the IXP said only "Pentium flow"; §4.5 passes the metadata along).
      if (forward && flow != nullptr) {
        if (!have_bytes) {
          std::vector<uint8_t> bytes(hp->desc.frame_bytes);
          mem.dram_store().Read(hp->desc.buffer_addr, bytes);
          packet = Packet(std::move(bytes));
          have_bytes = true;
        }
        auto ip = Ipv4Header::Parse(packet.l3());
        if (!ip) {
          forward = false;
        } else {
          auto lookup = core_.route_table->Lookup(ip->dst);
          co_await pe.Compute(static_cast<uint64_t>(40 * (lookup.memory_accesses + 1)));
          if (!lookup.entry || !DecrementTtlInPlace(packet.l3())) {
            forward = false;
          } else {
            out_port = lookup.entry->out_port;
            EthernetHeader eth = *EthernetHeader::Parse(packet.bytes());
            eth.src = PortMac(out_port);
            eth.dst = lookup.entry->next_hop_mac;
            eth.Write(packet.bytes());
          }
        }
      }

      ++processed_;
      core_.stats->pentium_processed += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kPeServiced,
                                     BufferMetaFor(core_, hp->desc.buffer_addr).packet_id,
                                     kUnitPentium, out_port));

      if (!forward && !(to_run.empty() && flow == nullptr)) {
        core_.stats->pe_absorbed += 1;
        NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kPeAbsorbed,
                                       BufferMetaFor(core_, hp->desc.buffer_addr).packet_id,
                                       kUnitPentium, out_port));
        ReleaseBuffer(core_, hp->desc.buffer_addr);  // dropped or consumed
      }
      // Return path: DMA the (possibly modified) packet back and publish
      // on the reverse I2O pair. In the Table 4 feed loop the packet is
      // echoed even though no forwarder ran.
      const bool echo = to_run.empty() && flow == nullptr;
      if (forward || echo) {
        if (have_bytes) {
          mem.dram_store().Write(hp->desc.buffer_addr, packet.bytes());
        }
        PacketDescriptor out_desc = hp->desc;
        out_desc.out_port = out_port;
        const uint32_t ptr = 0x80000000u | static_cast<uint32_t>(processed_ & 0xffffff);
        HostPacket back{out_desc, hp->bytes_moved};
        StrongArmBridge* bridge = &bridge_;
        core_.host->pci().Issue(hp->bytes_moved, /*is_write=*/true, [bridge, ptr, back] {
          bridge->staging()[ptr] = back;
          bridge->from_pentium().full_q.Push(ptr);
          NotifyBridge(*bridge);
        });
      }
      did_work = true;
    }

    if (!did_work) {
      co_await pe.Block();  // I2O doorbell wakes us
    }
  }
}

}  // namespace npr
