// Overload governor: graceful degradation under adversarial traffic.
//
// The paper's robustness argument is performance *isolation* — path A holds
// line rate no matter what paths B/C see — but isolation alone does not
// survive hostile offered load: min-size floods fill port receive memory,
// elephant flows starve conforming sources, and host-bound churn wedges the
// StrongARM. Worse, in a cluster, node-local overload that starves OSPF
// hellos or health probes masquerades as node death and triggers spurious
// cluster-wide reconvergence — the failure amplification Mogul &
// Ramakrishnan's receive-livelock work and SEDA-style adaptive shedding
// exist to prevent.
//
// The governor samples pressure (worst port RX fill and host-queue fill) on
// a periodic tick and drives a hysteresis-controlled degradation ladder:
//
//   stage 1  RED-style probabilistic early drop at MAC RX, before a frame
//            consumes port memory or an input context.
//   stage 2  per-flow policing: sources that offered more than a share of a
//            port's frames last tick are heavy hitters and are policed.
//   stage 3  forwarder throttling: installed general VRP extensions are
//            throttled through the ISTORE (packets take default IP), and
//            the bridge sheds host-bound packets (paths B/C) so the
//            StrongARM serves path A.
//   stage 4  hard shed: every data frame is dropped at MAC RX with
//            ICMP-source-quench-style per-source accounting.
//
// A strict-priority carve-out is orthogonal to the ladder: OSPF-lite frames
// (IP proto 89) are classified at MAC RX, enqueued ahead of data, exempt
// from tail drop, and never shed at any stage — overload cannot silence the
// control plane. Every transition and every shed is attributed: stage
// changes raise gov_escalations and a kGovStage span; drops land in
// per-stage counters that RouterInvariants reconciles against the per-port
// MAC accounting. Attached to HealthMonitor, overload is a reported,
// recovered condition (RecoveryEvent::kOverload with MTTD/MTTR), not
// silence. Each threshold in OverloadConfig has an enter level above its
// exit level plus a dwell, so bursty pressure cannot make the ladder flap.

#ifndef SRC_CORE_OVERLOAD_H_
#define SRC_CORE_OVERLOAD_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/core/router.h"
#include "src/net/rx_governor.h"
#include "src/sim/random.h"

namespace npr {

struct OverloadConfig {
  // Seed for the governor's private Rng (RED and policing coin flips); the
  // same (config, workload) pair replays every verdict bit-identically.
  uint64_t seed = 0x90feed01ULL;
  // Pressure sampling period.
  SimTime tick_ps = 20 * kPsPerUs;

  // Ladder thresholds on pressure = max(port RX fill, host-queue fill).
  // Stage S is entered after pressure held >= enter_fill[S] for
  // escalate_dwell_ticks consecutive ticks, and left after pressure held
  // < exit_fill[S] for deescalate_dwell_ticks. enter_fill[S] > exit_fill[S]
  // is the hysteresis band; transitions move one stage per dwell.
  double enter_fill[5] = {0.0, 0.20, 0.45, 0.65, 0.90};
  double exit_fill[5] = {0.0, 0.08, 0.25, 0.45, 0.70};
  int escalate_dwell_ticks = 2;
  int deescalate_dwell_ticks = 6;

  // Stage 1+: RED early drop. Below red_min_fill a port never drops; the
  // drop probability ramps linearly to red_max_p at red_max_fill.
  double red_min_fill = 0.25;
  double red_max_fill = 0.95;
  double red_max_p = 0.85;

  // Stage 2+: heavy-hitter policing. A source is hot on a port when it
  // offered at least hh_share of the port's frames last tick (and at least
  // hh_min_frames); hot sources are policed with probability hh_drop_p.
  double hh_share = 0.25;
  uint64_t hh_min_frames = 8;
  double hh_drop_p = 0.9;
};

class OverloadGovernor : public RxGovernorHooks {
 public:
  // Attaches to the router (SetGovernor on the core and every MacPort) and
  // starts the pressure tick. Like the HealthMonitor: must be destroyed
  // before the router, and must not outlive the last RunFor it was alive
  // for.
  explicit OverloadGovernor(Router& router, OverloadConfig config = OverloadConfig{});
  ~OverloadGovernor() override;

  OverloadGovernor(const OverloadGovernor&) = delete;
  OverloadGovernor& operator=(const OverloadGovernor&) = delete;

  // RxGovernorHooks: per-frame verdict at MAC RX (called from the port's
  // wire-completion event; accounts and decides, never mutates inline).
  RxVerdict AdmitFrame(uint8_t port, const Packet& packet,
                       size_t rx_backlog_mps) override;

  // Bridge policy: shed host-bound work (Pentium-bound / SA-local queues)
  // while the ladder is at stage 3 or above.
  bool ShedHostBound() const { return stage_ >= 3; }
  bool ShedSaLocal() const { return stage_ >= 3; }

  // --- introspection (tests, health monitor, benches) ---
  int stage() const { return stage_; }
  bool overloaded() const { return stage_ > 0; }
  // When the current (or most recent) overload episode began (stage 0 -> 1).
  SimTime overload_since_ps() const { return overload_since_ps_; }
  uint64_t escalations() const { return escalations_; }
  uint64_t control_admitted() const { return control_admitted_; }
  // ICMP-source-quench-style accounting: hard-shed frames per source IP.
  const std::map<uint32_t, uint64_t>& quench_by_src() const { return quench_by_src_; }
  // Sources currently policed on `port` (last tick's heavy hitters).
  const std::set<uint32_t>& hot_sources(uint8_t port) const;
  const OverloadConfig& config() const { return cfg_; }

 private:
  void Tick();
  double Pressure();
  void SetStage(int next);
  void RebuildHotSets();
  void ThrottleExtensions();
  void LiftThrottles();

  Router& router_;
  OverloadConfig cfg_;
  Rng rng_;

  int stage_ = 0;
  int escalate_ticks_ = 0;
  int deescalate_ticks_ = 0;
  SimTime overload_since_ps_ = 0;
  uint64_t escalations_ = 0;
  uint64_t control_admitted_ = 0;

  // Per-port offered-frame counts by source IP over the current tick
  // (ordered maps/sets: deterministic iteration).
  std::map<uint8_t, std::map<uint32_t, uint64_t>> offered_by_src_;
  std::map<uint8_t, std::set<uint32_t>> hot_;
  std::map<uint32_t, uint64_t> quench_by_src_;

  // ISTORE handles this governor throttled at stage 3 — only these are
  // lifted on de-escalation, so a health-quarantine throttle on the same
  // store is never clobbered.
  std::set<uint32_t> throttled_by_gov_;
};

}  // namespace npr

#endif  // SRC_CORE_OVERLOAD_H_
