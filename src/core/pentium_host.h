// Pentium host processor (§3.7, §4.1).
//
// The Pentium runs the control plane and the forwarders too expensive for
// the lower levels. Packets arrive over PCI through (software-simulated)
// I2O queue pairs, are sorted into per-flow backlogs, and are served by a
// proportional-share scheduler so control traffic and reserved flows keep
// their cycle shares under any load. Processed packets return over PCI and
// re-enter ordinary output queues via the StrongARM.

#ifndef SRC_CORE_PENTIUM_HOST_H_
#define SRC_CORE_PENTIUM_HOST_H_

#include <cstdint>

#include "src/core/prop_share.h"
#include "src/core/router_core.h"
#include "src/sim/task.h"

namespace npr {

class StrongArmBridge;

class PentiumHost {
 public:
  PentiumHost(RouterCore& core, StrongArmBridge& bridge);

  void Start();

  // I2O doorbell.
  void Notify();

  PropShareScheduler& scheduler() { return sched_; }

  uint64_t processed() const { return processed_; }
  uint64_t control_processed() const { return control_processed_; }
  uint64_t dropped() const { return dropped_; }

 private:
  Task PeLoop();

  // Intake stalls when the software backlog reaches this bound, pushing
  // backpressure down the I2O free list to the StrongARM and ultimately to
  // the MicroEngines' Pentium-bound queue (where overload becomes visible
  // drops, as in §4.7).
  static constexpr size_t kMaxBacklog = 128;

  RouterCore& core_;
  StrongArmBridge& bridge_;
  PropShareScheduler sched_;
  uint64_t processed_ = 0;
  uint64_t control_processed_ = 0;
  uint64_t dropped_ = 0;
};

// Wakes the Pentium if it is blocked on the I2O doorbell.
void NotifyPentium(PentiumHost& host);

}  // namespace npr

#endif  // SRC_CORE_PENTIUM_HOST_H_
