#include "src/core/buffer_allocator.h"

#include <cassert>

namespace npr {

CircularBufferAllocator::CircularBufferAllocator(uint32_t dram_base, uint32_t buffer_bytes,
                                                 uint32_t num_buffers)
    : dram_base_(dram_base),
      buffer_bytes_(buffer_bytes),
      num_buffers_(num_buffers),
      meta_(num_buffers),
      generation_(num_buffers, 0) {}

uint32_t CircularBufferAllocator::Allocate(const BufferMeta& meta) {
  const uint32_t index = next_;
  next_ = (next_ + 1) % num_buffers_;
  ++allocations_;
  meta_[index] = meta;
  meta_[index].generation = allocations_;  // unique, monotonically increasing
  generation_[index] = allocations_;
  return AddressOf(index);
}

uint32_t CircularBufferAllocator::IndexOf(uint32_t addr) const {
  assert(addr >= dram_base_);
  const uint32_t index = (addr - dram_base_) / buffer_bytes_;
  assert(index < num_buffers_);
  return index;
}

bool CircularBufferAllocator::StillValid(uint32_t addr, uint64_t generation) const {
  return generation_[IndexOf(addr)] == generation;
}

const BufferMeta& CircularBufferAllocator::MetaFor(uint32_t addr) const {
  return meta_[IndexOf(addr)];
}

StackBufferPool::StackBufferPool(uint32_t dram_base, uint32_t buffer_bytes, uint32_t num_buffers)
    : dram_base_(dram_base),
      buffer_bytes_(buffer_bytes),
      num_buffers_(num_buffers),
      meta_(num_buffers) {
  free_.reserve(num_buffers);
  for (uint32_t i = 0; i < num_buffers; ++i) {
    free_.push_back(num_buffers - 1 - i);
  }
}

std::optional<uint32_t> StackBufferPool::Allocate(const BufferMeta& meta) {
  if (free_.empty()) {
    ++failures_;
    return std::nullopt;
  }
  const uint32_t index = free_.back();
  free_.pop_back();
  meta_[index] = meta;
  return dram_base_ + index * buffer_bytes_;
}

void StackBufferPool::Free(uint32_t addr) {
  assert(addr >= dram_base_);
  const uint32_t index = (addr - dram_base_) / buffer_bytes_;
  assert(index < num_buffers_);
  free_.push_back(index);
}

const BufferMeta& StackBufferPool::MetaFor(uint32_t addr) const {
  const uint32_t index = (addr - dram_base_) / buffer_bytes_;
  return meta_[index];
}

}  // namespace npr
