// StrongARM minimal OS (§3.6, §4.1).
//
// The StrongARM deliberately runs no general-purpose OS: it (1) bridges
// packets between the MicroEngines and the Pentium over PCI/I2O, and
// (2) services a small set of local forwarders (route-cache misses via the
// full CPE lookup, IP options via full IP, and any installed SA-level
// flows). Pentium-bound traffic takes strict priority over local work.
// Polling is the default (526 Kpps); interrupt mode is provided and — as
// the paper found — measurably slower.

#ifndef SRC_CORE_STRONGARM_BRIDGE_H_
#define SRC_CORE_STRONGARM_BRIDGE_H_

#include <cstdint>
#include <map>

#include "src/core/classifier.h"
#include "src/core/prop_share.h"
#include "src/core/router_core.h"
#include "src/ixp/i2o_queue.h"
#include "src/sim/task.h"

namespace npr {

class OutputStage;
class PentiumHost;

class StrongArmBridge {
 public:
  StrongArmBridge(RouterCore& core, Classifier& classifier);

  void Start();

  // Doorbell from the input contexts (used in interrupt mode) and from the
  // Pentium return path.
  void Notify();

  // Table 4 mode: ignore the real queues and feed synthesized packets of
  // `frame_bytes` to the Pentium as fast as possible, consuming the echo.
  void EnableFeedMode(size_t frame_bytes, bool move_full_frame);

  // I2O logical queues (a free/full pair per direction, §3.7).
  I2oQueuePair& to_pentium() { return to_pentium_; }
  I2oQueuePair& from_pentium() { return from_pentium_; }

  // Host-side staging: buffer-pointer -> packet, filled when the PCI DMA
  // completes (what the Pentium finds in its host memory buffer).
  std::map<uint32_t, HostPacket>& staging() { return staging_; }

  uint64_t bridged_to_pentium() const { return bridged_to_pentium_; }
  uint64_t returned_from_pentium() const { return returned_; }
  uint64_t local_processed() const { return local_processed_; }
  uint64_t feed_roundtrips() const { return feed_roundtrips_; }

  // Pool-ledger hook (RouterInvariants): frames from the router pool the
  // SA loop currently holds live across a suspension (0 or 1 — the loop
  // materializes at most one packet at a time).
  int pooled_live() const { return pooled_live_; }

 private:
  Task SaLoop();
  // One local packet: slow-path route resolution / full IP / SA flow
  // forwarder. Returns true if it forwarded the packet onward.
  // (implemented inline in the loop; see .cc)

  RouterCore& core_;
  Classifier& classifier_;
  I2oQueuePair to_pentium_;
  I2oQueuePair from_pentium_;
  std::map<uint32_t, HostPacket> staging_;
  uint32_t next_host_buffer_ = 1;

  // Stride state for the §4.1 proportional-share option.
  double pentium_pass_ = 0;
  double local_pass_ = 0;

  bool feed_mode_ = false;
  size_t feed_frame_bytes_ = 64;
  bool feed_move_full_ = true;

  uint64_t bridged_to_pentium_ = 0;
  uint64_t returned_ = 0;
  uint64_t local_processed_ = 0;
  uint64_t feed_roundtrips_ = 0;
  int pooled_live_ = 0;
};

// Wakes the StrongARM (no-op when polling and awake). Free function so the
// input stage does not need the full bridge definition.
void NotifyBridge(StrongArmBridge& bridge);

}  // namespace npr

#endif  // SRC_CORE_STRONGARM_BRIDGE_H_
