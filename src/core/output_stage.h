// Output pipeline stage (§3.3, Figure 6).
//
// Output contexts are statically assigned whole ports and FIFO slots; a
// token ring identical to the input side serializes them so the strictly
// ordered transmit FIFO is consumed correctly. Each iteration the context
// either continues streaming the MPs of its current packet or selects the
// next non-empty queue per the configured servicing discipline (O.1
// batching / O.2 per-packet head checks / O.3 readiness indirection).

#ifndef SRC_CORE_OUTPUT_STAGE_H_
#define SRC_CORE_OUTPUT_STAGE_H_

#include <deque>
#include <utility>
#include <vector>

#include "src/core/router_core.h"
#include "src/ixp/token_ring.h"
#include "src/sim/task.h"

namespace npr {

class OutputStage {
 public:
  explicit OutputStage(RouterCore& core);

  // Installs and starts the context programs. Call once.
  void Start();

  TokenRing& token_ring() { return ring_; }
  int num_contexts() const { return static_cast<int>(members_.size()); }

  // Health-monitor recovery interface (see InputStage for semantics).
  void RecoverContext(int out_ctx_index);
  bool ContextDown(int out_ctx_index) const;
  SimTime ContextDownSincePs(int out_ctx_index) const;

  // Completes a packet on behalf of the StrongARM/Pentium return path
  // (those processors hand packets back to ordinary output queues; the
  // output stage transmits them like any other packet).
  void DeliverMpToPort(uint8_t port, const Mp& mp);

  // Packets currently mid-stream out of DRAM (counted for conservation).
  int active_streams() const;

 private:
  struct Streaming {
    bool active = false;
    PacketDescriptor desc;
    uint16_t next_mp = 0;
    PacketQueue* queue = nullptr;
    uint32_t batch_remaining = 0;
    uint32_t pops_since_burst = 0;
  };

  Task ContextLoop(HwContext& ctx, int member, int out_ctx_index);
  void CompletePacket(const PacketDescriptor& desc);

  // Delivers the oldest MP handed to the transmit DMA. The IX bus is a
  // single FIFO server with a fixed setup delay, so completions arrive in
  // issue order; parking MPs here (instead of in each completion event's
  // capture) keeps the per-MP DMA event allocation-free.
  void DeliverHeadFromDma();

  // Reinstalls a crashed context's loop and rejoins it to the token ring.
  void RestartContext(int out_ctx_index);

  RouterCore& core_;
  TokenRing ring_;
  std::vector<HwContext*> members_;
  std::vector<int> member_index_;  // ring member id per context (restart)
  std::vector<Streaming> streaming_;  // per output context
  // output_fake_data mode: the eternal descriptor served when queues are
  // empty (see RouterConfig).
  PacketDescriptor fake_desc_;
  bool fake_ready_ = false;
  std::deque<std::pair<uint8_t, Mp>> dma_in_flight_;  // (port, mp), bus FIFO order
};

}  // namespace npr

#endif  // SRC_CORE_OUTPUT_STAGE_H_
