// Flow/classification table (§4.5).
//
// The classifier hashes the IP and TCP headers, combines the hashes, and
// indexes a table whose entries carry: the key (for exact-match
// confirmation), where the forwarder runs, a reference to the forwarder
// (ISTORE offset / jump-table index), and the SRAM address of the flow
// state. install() binds keys to forwarders here; ALL-keyed ("general")
// forwarders apply to every packet.

#ifndef SRC_CORE_FLOW_TABLE_H_
#define SRC_CORE_FLOW_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace npr {

// Processor level a forwarder runs on (§4.5's `where` argument).
enum class Where : uint8_t {
  kMicroEngine,  // ME: VRP program in the ISTORE
  kStrongArm,    // SA: native function from the StrongARM's fixed set
  kPentium,      // PE: native function from the Pentium jump table
};

struct FlowKey {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  bool all = false;  // the special ALL key

  static FlowKey All() {
    FlowKey k;
    k.all = true;
    return k;
  }
  static FlowKey Tuple(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport) {
    return FlowKey{src, dst, sport, dport, false};
  }

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

struct FlowMeta {
  uint32_t fid = 0;
  FlowKey key;
  Where where = Where::kMicroEngine;
  uint32_t me_program_id = 0;  // IStoreLayout handle when where == kMicroEngine
  int native_index = -1;       // SA/PE jump-table index otherwise
  uint32_t state_addr = 0;     // SRAM address of flow state
  uint32_t state_bytes = 0;
  // Pentium admission parameters (§4.6).
  double reserved_pps = 0;
  double reserved_cpp = 0;
};

class FlowTable {
 public:
  // Returns the fid (also written into meta.fid).
  uint32_t Insert(FlowMeta meta);
  bool Remove(uint32_t fid);

  const FlowMeta* Get(uint32_t fid) const;
  // Mutable access for in-place rebinding (the upgrade orchestrator's
  // cutover flips state_addr/state_bytes without touching the key maps).
  FlowMeta* GetMutable(uint32_t fid);
  // Exact 4-tuple match (per-flow forwarders). Nullptr if none.
  const FlowMeta* LookupTuple(const FlowKey& key) const;
  // ALL-keyed forwarders that run on `where` (general SA/PE forwarders; ME
  // generals live in the ISTORE chain instead).
  std::vector<const FlowMeta*> Generals(Where where) const;
  // Every installed flow, in fid order (the memory-bounds ledger walks the
  // state reservations).
  std::vector<const FlowMeta*> All() const;

  // Resolves a MicroEngine ISTORE handle back to its flow (quarantine
  // eviction goes through the fid-keyed control interface). Nullptr if no
  // installed flow references the program.
  const FlowMeta* FindByProgram(uint32_t me_program_id) const;

  size_t size() const { return by_fid_.size(); }

 private:
  uint32_t next_fid_ = 1;
  std::map<uint32_t, FlowMeta> by_fid_;
  std::map<FlowKey, uint32_t> by_key_;
};

}  // namespace npr

#endif  // SRC_CORE_FLOW_TABLE_H_
