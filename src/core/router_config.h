// Router configuration: pipeline shape, queueing disciplines, stage cost
// decomposition, and workload-independent policy.

#ifndef SRC_CORE_ROUTER_CONFIG_H_
#define SRC_CORE_ROUTER_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/ixp/hw_config.h"
#include "src/vrp/budget.h"

namespace npr {

// Input-side queue management (Table 1 rows I.1 / I.2; row I.3 is I.2 under
// an all-to-one-queue workload, not a different discipline).
enum class InputQueueing {
  kPrivatePerContext,  // I.1: one queue per (input context, port); no locks
  kProtectedPublic,    // I.2: shared per-port queues guarded by HwMutex
};

// Output-side queue servicing (Table 1 rows O.1 / O.2 / O.3).
enum class OutputServicing {
  kSingleQueueBatching,    // O.1
  kSingleQueueNoBatching,  // O.2
  kMultiQueueIndirection,  // O.3: readiness bit-array + up to 16 queues/port
};

// How the MACs are driven.
enum class PortMode {
  kReal,          // packets arrive from MacPort objects over the IX bus DMA
  kInfiniteFifo,  // §3.5.1: one pre-staged MP recycled per FIFO slot,
                  // emulating infinitely fast ports (used by the benches)
};

// Which classifier runs in protocol_processing.
enum class ClassifierMode {
  kFastPath,   // one-cycle dest hash + route cache (§3.5.1)
  kFlowTable,  // full classifier: validate, hash IP+TCP headers, flow
               // metadata lookup — 56 instructions + 20 B SRAM (§4.5)
};

// Register-instruction decomposition of the two pipeline stages. The
// defaults sum to Table 2's measured counts: input 171 and output 109
// register operations per MP in the I.2 + O.1 configuration.
struct StageCosts {
  // --- input (total 171 with protected queues) ---
  uint32_t in_cs_port_check = 10;  // inside the token critical section
  uint32_t in_cs_dma_issue = 35;   // inside the token critical section
  uint32_t in_addr_calc = 10;      // calculate_mp_addr / buffer bookkeeping
  uint32_t in_fifo_copy = 20;      // IN_FIFO -> registers
  uint32_t in_protocol = 56;       // classify (incl. 1-cycle hash) + minimal forward
  uint32_t in_dram_copy = 20;      // registers -> DRAM issue sequence
  uint32_t in_enqueue = 10;        // descriptor construction + queue bookkeeping
  uint32_t in_mutex_ops = 9;       // CAM acquire/release issue (protected only)
  uint32_t in_loop = 1;

  uint32_t InputTotal(InputQueueing iq) const {
    const uint32_t base = in_cs_port_check + in_cs_dma_issue + in_addr_calc + in_fifo_copy +
                          in_protocol + in_dram_copy + in_enqueue + in_loop;
    return base + (iq == InputQueueing::kProtectedPublic ? in_mutex_ops : 0);
  }

  // --- output (total 109 with a single batched queue) ---
  uint32_t out_cs = 23;           // token critical section: FIFO slot enable order
  uint32_t out_select_queue = 20; // scheduler: pick a non-empty queue
  uint32_t out_dequeue = 16;
  uint32_t out_copy = 35;         // DRAM -> OUT_FIFO issue sequence
  uint32_t out_loop = 15;
  // Unamortized head-pointer check (O.2) and readiness-indirection scan
  // (O.3) instructions; calibrated to Table 1 rows O.2 (3.41 Mpps) and O.3
  // (3.29 Mpps).
  uint32_t out_head_check_cycles = 8;
  uint32_t out_indirection_cycles = 12;

  uint32_t OutputTotal() const {
    return out_cs + out_select_queue + out_dequeue + out_copy + out_loop;
  }

  // Entries fetched per amortized 16 B SRAM burst in the batching dequeue.
  uint32_t dequeue_burst = 4;
};

struct RouterConfig {
  HwConfig hw = HwConfig::Default();
  StageCosts costs;

  // Pipeline shape (§3.5.1: "4 MicroEngines (16 contexts) running the input
  // loop and 2 MicroEngines (8 contexts) running the output loop").
  int input_mes = 4;
  int output_mes = 2;
  // Overrides for Figure 7 scaling experiments: if >= 0, use exactly this
  // many contexts for the stage (packed onto the minimum number of MEs).
  int input_contexts_override = -1;
  int output_contexts_override = -1;

  InputQueueing input_queueing = InputQueueing::kProtectedPublic;
  OutputServicing output_servicing = OutputServicing::kSingleQueueBatching;
  // Queues per output port (1 unless O.3 / I.1).
  int queues_per_port = 1;
  uint32_t queue_capacity = 1024;

  PortMode port_mode = PortMode::kReal;
  ClassifierMode classifier = ClassifierMode::kFastPath;

  // Port complement; defaults to the board's 8 x 100 Mbps (the two gigabit
  // ports can be added by appending 1e9 entries).
  std::vector<double> port_rates_bps = std::vector<double>(8, 100e6);

  bool enable_strongarm = true;
  bool enable_pentium = true;
  bool sa_use_interrupts = false;  // §3.6: polling won (526 Kpps)

  // §4.1: "We eventually plan to run a proportional share scheduler on the
  // StrongARM... but we currently implement a simple priority scheme that
  // gives packets being passed up to the Pentium precedence." Both are
  // implemented; strict priority (the paper's prototype) is the default.
  bool sa_proportional_share = false;
  double sa_pentium_share = 3.0;  // tickets for the Pentium-bound queue
  double sa_local_share = 1.0;    // tickets for local forwarders

  // ICMP error generation on the StrongARM exception path (time-exceeded
  // for TTL expiry, destination-unreachable for routing failures).
  bool generate_icmp_errors = true;
  uint32_t router_ip = 0x0aff0001;  // 10.255.0.1, the errors' source

  // VRP admission budget for MicroEngine extensions.
  VrpBudget budget = VrpBudget::Prototype();
  // Synthetic per-MP VRP blocks (Figures 9/10): each block is 10 register
  // instructions and/or one 4-byte SRAM read.
  uint32_t vrp_blocks_reg = 0;
  uint32_t vrp_blocks_sram = 0;

  // InfiniteFifo mode: fraction of synthetic packets diverted to the
  // StrongARM as exceptional (robustness experiment #2), and fraction bound
  // for the Pentium (robustness experiment #1).
  double synthetic_exceptional_fraction = 0.0;
  double synthetic_pentium_fraction = 0.0;
  // InfiniteFifo destination pattern: uniform over ports, or everything to
  // one port/queue (Table 1 row I.3, Figure 10 maximal contention).
  bool synthetic_single_dst = false;
  uint8_t synthetic_dst_port = 1;

  // Stage-isolation modes for Table 1 / Figure 7 ("results for input and
  // output are presented separately"):
  //  * magic_drain: a zero-cost simulator process empties the port queues,
  //    so the measured rate is the input process's enqueue rate.
  //  * output_fake_data: the output loop is "fooled into believing data was
  //    always available" (§3.5.1) — an eternal template descriptor is
  //    served whenever the real queues are empty.
  bool magic_drain = false;
  bool output_fake_data = false;

  // §3.2.2 ablation: the paper rotates the token so a context always hands
  // it to a context on *another* MicroEngine. Setting this false rotates
  // within each engine first (the naive order) — measurably slower.
  bool token_ring_interleaved = true;
  // §3.2.3 ablation: replace the circular buffer ring with the per-port
  // stack pool the paper describes but chose not to build. Removes the
  // buffer-lap loss hazard at the cost of an extra SRAM push/pop per packet.
  bool use_stack_buffer_pool = false;

  // Deterministic fault injection (docs/fault_injection.md). The default
  // plan injects nothing and builds no injector.
  FaultPlan fault_plan;

  // §3.7 ablation: an early design had the ports DMA packets directly
  // to/from DRAM, bypassing the FIFOs — four memory accesses per byte of a
  // minimum packet (port->DRAM, DRAM->registers, registers->DRAM,
  // DRAM->port), which saturated DRAM at 2.69 Mpps.
  bool dram_direct_path = false;

  int num_ports() const { return static_cast<int>(port_rates_bps.size()); }
  int input_contexts() const {
    return input_contexts_override >= 0 ? input_contexts_override
                                        : input_mes * hw.contexts_per_me;
  }
  int output_contexts() const {
    return output_contexts_override >= 0 ? output_contexts_override
                                         : output_mes * hw.contexts_per_me;
  }
};

}  // namespace npr

#endif  // SRC_CORE_ROUTER_CONFIG_H_
