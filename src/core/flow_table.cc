#include "src/core/flow_table.h"

namespace npr {

uint32_t FlowTable::Insert(FlowMeta meta) {
  meta.fid = next_fid_++;
  if (!meta.key.all) {
    by_key_[meta.key] = meta.fid;
  }
  const uint32_t fid = meta.fid;
  by_fid_[fid] = std::move(meta);
  return fid;
}

bool FlowTable::Remove(uint32_t fid) {
  auto it = by_fid_.find(fid);
  if (it == by_fid_.end()) {
    return false;
  }
  if (!it->second.key.all) {
    // Only drop the key binding if this fid still owns it — a newer install
    // may have rebound the same tuple (e.g. a splicer replacing its proxy).
    auto key_it = by_key_.find(it->second.key);
    if (key_it != by_key_.end() && key_it->second == fid) {
      by_key_.erase(key_it);
    }
  }
  by_fid_.erase(it);
  return true;
}

const FlowMeta* FlowTable::Get(uint32_t fid) const {
  auto it = by_fid_.find(fid);
  return it == by_fid_.end() ? nullptr : &it->second;
}

FlowMeta* FlowTable::GetMutable(uint32_t fid) {
  auto it = by_fid_.find(fid);
  return it == by_fid_.end() ? nullptr : &it->second;
}

const FlowMeta* FlowTable::LookupTuple(const FlowKey& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &by_fid_.at(it->second);
}

const FlowMeta* FlowTable::FindByProgram(uint32_t me_program_id) const {
  for (const auto& [fid, meta] : by_fid_) {
    if (meta.where == Where::kMicroEngine && meta.me_program_id == me_program_id) {
      return &meta;
    }
  }
  return nullptr;
}

std::vector<const FlowMeta*> FlowTable::All() const {
  std::vector<const FlowMeta*> out;
  out.reserve(by_fid_.size());
  for (const auto& [fid, meta] : by_fid_) {
    out.push_back(&meta);
  }
  return out;
}

std::vector<const FlowMeta*> FlowTable::Generals(Where where) const {
  std::vector<const FlowMeta*> out;
  for (const auto& [fid, meta] : by_fid_) {
    if (meta.key.all && meta.where == where) {
      out.push_back(&meta);
    }
  }
  return out;
}

}  // namespace npr
