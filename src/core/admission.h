// Admission control (§4.6).
//
// Decides which forwarders may be installed at each level of the processor
// hierarchy, which is what makes extensibility safe:
//  * MicroEngine forwarders are statically verified (no loops -> exact
//    worst-case cost) and must fit the VRP budget — general forwarders run
//    serially (their costs sum), per-flow forwarders logically in parallel
//    (only the most expensive one counts) — plus ISTORE space.
//  * StrongARM forwarders must leave the bridge's reserved capacity intact.
//  * Pentium forwarders declare (expected packet rate, cycles per packet);
//    the product must fit the remaining cycle budget and the total packet
//    rate must stay below what the PCI path sustains.

#ifndef SRC_CORE_ADMISSION_H_
#define SRC_CORE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/core/forwarder.h"
#include "src/core/router_config.h"
#include "src/vrp/istore_layout.h"
#include "src/vrp/verifier.h"

namespace npr {

struct AdmissionResult {
  bool admitted = false;
  std::string reason;   // populated on rejection
  VrpCost worst_case;   // ME checks: the verified worst-case cost

  static AdmissionResult Deny(std::string why) {
    AdmissionResult r;
    r.reason = std::move(why);
    return r;
  }
  static AdmissionResult Allow(VrpCost cost = {}) {
    AdmissionResult r;
    r.admitted = true;
    r.worst_case = cost;
    return r;
  }
};

class AdmissionControl {
 public:
  AdmissionControl(const RouterConfig& config, IStoreLayout& istore);

  // --- MicroEngine level ---
  AdmissionResult CheckMicroEngine(const VrpProgram& program, bool general) const;
  void CommitMicroEngine(uint32_t handle, const VrpCost& cost, bool general);
  void ReleaseMicroEngine(uint32_t handle);

  // In-service replacement (hitless upgrade): admits `next` as the future
  // image of an already-committed handle, i.e. with the old image's cost
  // excluded from the budget sum it must fit. ISTORE space is checked for
  // the double-buffer interval, when both images hold slots.
  AdmissionResult CheckReplaceMicroEngine(uint32_t handle, const VrpProgram& next) const;
  // Re-points the handle's commitment at `cost` (cutover and rollback both
  // go through here — it is its own inverse given the old cost).
  void ReplaceMicroEngine(uint32_t handle, const VrpCost& cost);
  // The committed worst case for a handle (zeroes for unknown handles).
  VrpCost CommittedCost(uint32_t handle) const;

  // --- StrongARM level ---
  AdmissionResult CheckStrongArm(const NativeForwarder& forwarder, double expected_pps) const;
  void CommitStrongArm(uint32_t fid, double cycle_rate);
  void ReleaseStrongArm(uint32_t fid);

  // --- Pentium level ---
  AdmissionResult CheckPentium(double expected_pps, double cycles_per_packet) const;
  void CommitPentium(uint32_t fid, double expected_pps, double cycles_per_packet);
  void ReleasePentium(uint32_t fid);

  // Introspection for tests and diagnostics.
  VrpCost general_chain_cost() const { return sum_generals_; }
  VrpCost max_per_flow_cost() const;
  double pentium_committed_cycle_rate() const { return pe_cycle_rate_; }
  double pentium_committed_packet_rate() const { return pe_packet_rate_; }

  // Fraction of the StrongARM reserved for bridging (the paper's prototype
  // reserves all of it; we default to 80% so SA extensions are testable).
  double sa_bridge_reserve = 0.8;
  // Maximum sustained Pentium-path packet rate (Table 4).
  double pentium_max_pps = 534'000;

 private:
  const RouterConfig& config_;
  IStoreLayout& istore_;

  VrpCost sum_generals_;
  std::map<uint32_t, std::pair<VrpCost, bool>> me_committed_;  // handle -> (cost, general)
  std::map<uint32_t, double> sa_committed_;                    // fid -> cycle rate
  std::map<uint32_t, std::pair<double, double>> pe_committed_; // fid -> (pps, cpp)
  double sa_cycle_rate_ = 0;
  double pe_cycle_rate_ = 0;
  double pe_packet_rate_ = 0;
};

}  // namespace npr

#endif  // SRC_CORE_ADMISSION_H_
