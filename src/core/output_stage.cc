#include "src/core/output_stage.h"

#include <algorithm>
#include <cassert>

#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"

namespace npr {

namespace {
[[maybe_unused]] uint8_t ObsUnitOf(const HwContext& ctx) {
  return ContextUnit(static_cast<uint8_t>(ctx.engine().id()), static_cast<uint8_t>(ctx.index()));
}
}  // namespace

OutputStage::OutputStage(RouterCore& core)
    : core_(core), ring_(*core.engine, core.config->hw.token_pass_cycles) {}

void OutputStage::Start() {
  const RouterConfig& cfg = *core_.config;
  const int n_ctx = cfg.output_contexts();
  const int per_me = cfg.hw.contexts_per_me;
  const int n_me = (n_ctx + per_me - 1) / per_me;
  // Output MicroEngines come after the input stage's allocation.
  const int first_me = (cfg.input_contexts() + per_me - 1) / per_me;
  assert(first_me + n_me <= core_.chip->num_mes());

  members_.clear();
  streaming_.assign(static_cast<size_t>(n_ctx), Streaming{});
  for (int r = 0; r < n_ctx; ++r) {
    const int me = first_me + r % n_me;
    const int slot = r / n_me;
    members_.push_back(&core_.chip->me(me).context(slot));
  }
  member_index_.clear();
  for (int r = 0; r < n_ctx; ++r) {
    member_index_.push_back(ring_.AddMember(*members_[static_cast<size_t>(r)]));
  }
  if (cfg.output_fake_data) {
    // Build the eternal template packet once; the fake descriptor's buffer
    // is never re-allocated, so the lap check always passes.
    BufferMeta meta;
    meta.packet_id = 0;
    meta.ingress_time = 0;
    fake_desc_.buffer_addr = core_.buffers->Allocate(meta);
    fake_desc_.generation = core_.buffers->MetaFor(fake_desc_.buffer_addr).generation;
    fake_desc_.mp_count = 1;
    fake_desc_.frame_bytes = 64;
    fake_desc_.out_port = 0;
    fake_ready_ = true;
  }

  for (int r = 0; r < n_ctx; ++r) {
    HwContext* ctx = members_[static_cast<size_t>(r)];
    ctx->Install(ContextLoop(*ctx, member_index_[static_cast<size_t>(r)], r));
  }
}

void OutputStage::RestartContext(int out_ctx_index) {
  const int member = member_index_[static_cast<size_t>(out_ctx_index)];
  HwContext* ctx = members_[static_cast<size_t>(out_ctx_index)];
  // Idempotent: the health monitor and the scheduled restart can race; only
  // the first one reinstalls the loop (a crash marks the member down before
  // its loop co_returns, so member-up means the context is live).
  if (!ring_.member_down(member)) {
    return;
  }
  core_.stats->context_restarts += 1;
  ring_.SetMemberDown(member, false);
  ctx->Install(ContextLoop(*ctx, member, out_ctx_index));
}

void OutputStage::RecoverContext(int out_ctx_index) { RestartContext(out_ctx_index); }

bool OutputStage::ContextDown(int out_ctx_index) const {
  return ring_.member_down(member_index_[static_cast<size_t>(out_ctx_index)]);
}

SimTime OutputStage::ContextDownSincePs(int out_ctx_index) const {
  return ring_.member_down_since_ps(member_index_[static_cast<size_t>(out_ctx_index)]);
}

int OutputStage::active_streams() const {
  int n = 0;
  for (const Streaming& s : streaming_) {
    n += s.active ? 1 : 0;
  }
  return n;
}

void OutputStage::DeliverMpToPort(uint8_t port, const Mp& mp) {
  if (core_.config->port_mode == PortMode::kReal &&
      port < static_cast<uint8_t>(core_.ports.size())) {
    core_.ports[port]->TxAccept(mp);
  }
}

void OutputStage::DeliverHeadFromDma() {
  auto [port, mp] = std::move(dma_in_flight_.front());
  dma_in_flight_.pop_front();
  DeliverMpToPort(port, mp);
}

void OutputStage::CompletePacket(const PacketDescriptor& desc) {
  RouterStats& stats = *core_.stats;
  stats.forwarded += 1;
  stats.forward_rate.Record(core_.engine->now());
  const BufferMeta& meta = BufferMetaFor(core_, desc.buffer_addr);
  if (meta.ingress_time > 0) {
    const SimTime latency = core_.engine->now() - meta.ingress_time;
    stats.latency_ns.Add(static_cast<uint64_t>(latency / kPsPerNs));
  }
}

Task OutputStage::ContextLoop(HwContext& ctx, int member, int out_ctx_index) {
  const RouterConfig& cfg = *core_.config;
  const StageCosts& costs = cfg.costs;
  MemorySystem& mem = core_.chip->memory();
  StageStats& st = core_.stats->output;
  Streaming& cur = streaming_[static_cast<size_t>(out_ctx_index)];
  const auto& queues = core_.queues->QueuesForOutputContext(out_ctx_index);
  const uint32_t batch_max = 8;

  // Output-only synthetic runs (fake descriptors, no input stage feeding the
  // queues, no observer, no fault plan): the queues stay empty forever, so
  // selection always lands on the fake descriptor and nothing can observe
  // the instant between queue selection and dequeue. The two pipeline
  // occupancies fuse into one Compute — same cycle total, one fewer event
  // per packet.
  const bool fuse_select_dequeue = cfg.output_fake_data && cfg.input_contexts() == 0;

  for (;;) {
    // Crash-safe point: no token is held. A mid-stream packet survives in
    // streaming_[out_ctx_index] and resumes after the restart.
    if (core_.fault != nullptr && core_.fault->ShouldCrashContext()) {
      core_.stats->context_crashes += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kFault, 0, ObsUnitOf(ctx),
                                     static_cast<uint16_t>(FaultKind::kContextCrash)));
      ring_.SetMemberDown(member, true);
      // A lost restart leaves the context down until a health monitor (if
      // attached) reinstalls it.
      if (!core_.fault->ShouldLoseRestart()) {
        OutputStage* self = this;
        core_.engine->ScheduleIn(core_.fault->context_restart_ps(),
                                 [self, out_ctx_index] { self->RestartContext(out_ctx_index); });
      }
      co_return;
    }
    // Token critical section: keep the strictly ordered transmit FIFO
    // slots in rotation (§3.3).
    co_await ring_.Acquire(member);
    co_await ctx.Compute(costs.out_cs + cfg.hw.output_token_overhead_cycles);
    st.reg_cycles += costs.out_cs;
    ring_.Release(member);

    if (!cur.active) {
      // select_queue (§3.4.1): fixed priority order over this context's
      // queues, with discipline-specific check costs.
      uint32_t select_cost = costs.out_select_queue;
      switch (cfg.output_servicing) {
        case OutputServicing::kSingleQueueBatching:
          if (cur.batch_remaining == 0) {
            // Head check once per batch (§3.4.3 batching optimization).
            co_await ctx.Read(mem.scratch(), 4);
            st.scratch_reads += 1;
          }
          break;
        case OutputServicing::kSingleQueueNoBatching:
          co_await ctx.Read(mem.scratch(), 4);
          st.scratch_reads += 1;
          select_cost += costs.out_head_check_cycles;
          break;
        case OutputServicing::kMultiQueueIndirection:
          // One readiness-word read summarizes all queues (§3.4.3).
          co_await ctx.Read(mem.scratch(), 4);
          st.scratch_reads += 1;
          select_cost += costs.out_indirection_cycles;
          break;
      }
      const bool fused = fuse_select_dequeue && core_.obs == nullptr && core_.fault == nullptr;
      if (fused) {
        co_await ctx.Compute(select_cost + costs.out_dequeue);
        st.reg_cycles += select_cost + costs.out_dequeue;
      } else {
        co_await ctx.Compute(select_cost);
        st.reg_cycles += select_cost;
      }

      PacketQueue* chosen = nullptr;
      for (PacketQueue* q : queues) {
        if (q->empty()) {
          continue;
        }
        if (cfg.port_mode == PortMode::kReal) {
          const uint8_t port = core_.queues->PortOf(*q);
          if (port < core_.ports.size() && !core_.ports[port]->TxReady()) {
            continue;  // MAC backed up: keep pace with the line (§3.1)
          }
        }
        chosen = q;
        break;
      }
      const bool use_fake = chosen == nullptr && fake_ready_;
      if (chosen == nullptr && !use_fake) {
        assert(!fused && "fused select+dequeue requires the fake descriptor");
        core_.stats->output_idle_iters += 1;
        cur.batch_remaining = 0;
        co_await ctx.Compute(costs.out_loop);
        st.reg_cycles += costs.out_loop;
        co_await ctx.Yield();
        continue;
      }
      if (cfg.output_servicing == OutputServicing::kSingleQueueBatching &&
          cur.batch_remaining == 0) {
        cur.batch_remaining = use_fake
                                  ? batch_max
                                  : static_cast<uint32_t>(
                                        std::min<uint64_t>(chosen->size(), batch_max));
      }

      // Dequeue: descriptors are fetched in 16-byte SRAM bursts, one burst
      // per `dequeue_burst` packets. (Charged with selection when fused.)
      if (!fused) {
        co_await ctx.Compute(costs.out_dequeue);
        st.reg_cycles += costs.out_dequeue;
      }
      if (cur.pops_since_burst == 0) {
        co_await ctx.Read(mem.sram(), 16);
        st.sram_reads += 1;
      }
      cur.pops_since_burst = (cur.pops_since_burst + 1) % costs.dequeue_burst;
      ctx.Post(mem.sram(), 4);  // consume marker / queue credit
      st.sram_writes += 1;

      std::optional<PacketDescriptor> desc;
      if (use_fake) {
        desc = fake_desc_;
        desc->out_port = static_cast<uint8_t>(out_ctx_index % cfg.num_ports());
      } else {
        desc = chosen->Pop();
      }
      if (!desc) {
        continue;
      }
      if (!use_fake && chosen->empty() &&
          cfg.output_servicing == OutputServicing::kMultiQueueIndirection) {
        core_.queues->ClearReady(*chosen);
      }
      if (cur.batch_remaining > 0) {
        cur.batch_remaining -= 1;
      }

      // Buffer-lap check (§3.2.3): if the circular allocator already reused
      // this buffer, the packet is gone. (The stack pool has no such
      // hazard — lifetimes are explicit.)
      if (core_.stack_pool == nullptr &&
          !core_.buffers->StillValid(desc->buffer_addr, desc->generation)) {
        core_.stats->lost_overwritten += 1;
        core_.stats->output_lost_iters += 1;
        // The span carries the *successor* packet's id: the lapped packet's
        // id went with the overwritten buffer.
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kOutLostLap, BufferMetaFor(core_, desc->buffer_addr).packet_id,
                            ObsUnitOf(ctx), desc->out_port));
        continue;
      }
      cur.active = true;
      cur.desc = *desc;
      cur.next_mp = 0;
      cur.queue = chosen;
      NPR_OBS_HOOK(core_.obs,
                   Record(SpanPoint::kOutDequeued, BufferMetaFor(core_, desc->buffer_addr).packet_id,
                          ObsUnitOf(ctx), desc->out_port));
    }

    // Stream one MP: DRAM -> OUT_FIFO (two 32-byte reads), then enable the
    // slot for the transmit DMA.
    co_await ctx.Compute(costs.out_copy);
    st.reg_cycles += costs.out_copy;
    const uint32_t mp_addr = cur.desc.buffer_addr + static_cast<uint32_t>(cur.next_mp) * 64;
    // Two back-to-back 32-byte references issued as one pipelined burst:
    // the context swaps out once, not twice.
    co_await ctx.Read(mem.dram(), 64);
    st.dram_reads += 2;
    // Tail/slot bookkeeping in Scratch (Table 2: 2 reads / 2 writes per MP,
    // one read charged here and one in selection above on average).
    co_await ctx.Read(mem.scratch(), 4);
    st.scratch_reads += 1;
    ctx.PostBurst(mem.scratch(), 2, 4);
    st.scratch_writes += 2;

    Mp mp;
    mem.dram_store().Read(mp_addr, std::span<uint8_t>(mp.data));
    const BufferMeta& meta = BufferMetaFor(core_, cur.desc.buffer_addr);
    mp.tag.port = cur.desc.out_port;
    mp.tag.sop = cur.next_mp == 0;
    mp.tag.eop = cur.next_mp + 1 == cur.desc.mp_count;
    const uint32_t offset = static_cast<uint32_t>(cur.next_mp) * 64;
    mp.tag.bytes = static_cast<uint16_t>(
        std::min<uint32_t>(64, static_cast<uint32_t>(cur.desc.frame_bytes) - offset));
    mp.tag.packet_id = meta.packet_id;

    st.mps += 1;
    cur.next_mp += 1;

    if (cfg.dram_direct_path) {
      // §3.7 ablation: the transmit DMA pulls the MP from DRAM again.
      mem.dram().Issue(64, /*is_write=*/false, nullptr);
      st.dram_reads += 2;
    }
    const bool last = cur.next_mp == cur.desc.mp_count;
    if (cfg.port_mode == PortMode::kReal) {
      OutputStage* self = this;
      dma_in_flight_.emplace_back(cur.desc.out_port, mp);
      core_.chip->tx_dma().Transfer(64, [self] { self->DeliverHeadFromDma(); });
    }
    if (last) {
      st.packets += 1;
      CompletePacket(cur.desc);
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kPktTxComplete, meta.packet_id, ObsUnitOf(ctx),
                                     cur.desc.out_port));
      if (core_.stack_pool != nullptr) {
        // Return the buffer to the pool: an extra SRAM push (§3.2.3).
        ctx.Post(mem.sram(), 4);
        st.sram_writes += 1;
        ReleaseBuffer(core_, cur.desc.buffer_addr);
      }
      cur.active = false;
    }

    co_await ctx.Compute(costs.out_loop);
    st.reg_cycles += costs.out_loop;
  }
}

}  // namespace npr
