#include "src/core/router.h"

#include <cassert>

#include "src/core/overload.h"
#include "src/fault/fault_injector.h"
#include "src/net/traffic_gen.h"
#include "src/obs/observer.h"
#include "src/sim/log.h"

namespace npr {
namespace {

// SRAM layout: queues and flow state share the 2 MB SRAM; Scratch holds
// head/tail pairs and readiness words within its 4 KB.
constexpr uint32_t kSramArenaBase = 0;
constexpr uint32_t kScratchArenaBase = 0;

}  // namespace

Router::Router(RouterConfig config)
    : Router(std::move(config), nullptr) {}

Router::Router(RouterConfig config, EventQueue& shared_engine)
    : Router(std::move(config), &shared_engine) {}

Router::Router(RouterConfig config, EventQueue* shared_engine)
    : config_(std::move(config)),
      owned_engine_(shared_engine == nullptr ? std::make_unique<EventQueue>() : nullptr),
      engine_(shared_engine != nullptr ? *shared_engine : *owned_engine_),
      chip_(engine_, config_.hw),
      host_(engine_, config_.hw),
      sram_arena_(kSramArenaBase, static_cast<uint32_t>(chip_.memory().sram_store().size())),
      scratch_arena_(kScratchArenaBase,
                     static_cast<uint32_t>(chip_.memory().scratch_store().size())),
      buffers_(/*dram_base=*/0, config_.hw.buffer_bytes, config_.hw.num_buffers),
      istore_(config_.hw),
      vrp_(chip_.memory().sram_store(), chip_.hash()),
      admission_(config_, istore_),
      classifier_(config_.classifier, route_table_, route_cache_, flow_table_, chip_.hash()) {
  // MAC ports exist in both modes (routes target them); they only source
  // traffic in kReal mode.
  ports_.reserve(static_cast<size_t>(config_.num_ports()));
  for (int p = 0; p < config_.num_ports(); ++p) {
    ports_.push_back(std::make_unique<MacPort>(engine_, static_cast<uint8_t>(p),
                                               config_.port_rates_bps[static_cast<size_t>(p)]));
  }

  queues_ = std::make_unique<QueuePlan>(engine_, chip_.memory(), config_, sram_arena_,
                                        scratch_arena_, config_.input_contexts(),
                                        std::max(1, config_.output_contexts()));

  // Exception queues (§3.6): local service and Pentium-bound.
  sa_local_queue_ = std::make_unique<PacketQueue>(
      chip_.memory().sram_store(), chip_.memory().scratch_store(),
      sram_arena_.Alloc(config_.queue_capacity * 4), scratch_arena_.Alloc(8),
      config_.queue_capacity, /*id=*/-1, /*dram_base=*/0, config_.hw.buffer_bytes);
  sa_pentium_queue_ = std::make_unique<PacketQueue>(
      chip_.memory().sram_store(), chip_.memory().scratch_store(),
      sram_arena_.Alloc(config_.queue_capacity * 4), scratch_arena_.Alloc(8),
      config_.queue_capacity, /*id=*/-2, /*dram_base=*/0, config_.hw.buffer_bytes);

  if (config_.use_stack_buffer_pool) {
    stack_pool_ = std::make_unique<StackBufferPool>(/*dram_base=*/0, config_.hw.buffer_bytes,
                                                    config_.hw.num_buffers);
  }

  core_.config = &config_;
  core_.engine = &engine_;
  core_.chip = &chip_;
  core_.host = &host_;
  core_.buffers = &buffers_;
  core_.stack_pool = stack_pool_.get();
  core_.queues = queues_.get();
  core_.route_table = &route_table_;
  core_.route_cache = &route_cache_;
  core_.flow_table = &flow_table_;
  core_.istore = &istore_;
  core_.vrp = &vrp_;
  core_.sa_local_queue = sa_local_queue_.get();
  core_.sa_pentium_queue = sa_pentium_queue_.get();
  core_.sa_forwarders = &sa_forwarders_;
  core_.pe_forwarders = &pe_forwarders_;
  for (auto& port : ports_) {
    core_.ports.push_back(port.get());
  }
  core_.stats = &stats_;
  core_.pool = &packet_pool_;

  input_ = std::make_unique<InputStage>(core_, classifier_);
  output_ = std::make_unique<OutputStage>(core_);
  bridge_ = std::make_unique<StrongArmBridge>(core_, classifier_);
  pentium_ = std::make_unique<PentiumHost>(core_, *bridge_);
  core_.bridge = bridge_.get();
  core_.pentium = pentium_.get();

  if (config_.fault_plan.Any()) {
    fault_ = std::make_unique<FaultInjector>(config_.fault_plan, engine_);
    core_.fault = fault_.get();
    MemorySystem& m = chip_.memory();
    m.dram().set_fault_injector(fault_.get());
    m.sram().set_fault_injector(fault_.get());
    m.scratch().set_fault_injector(fault_.get());
    // Bit flips only on the packet-payload store: descriptor words and flow
    // state have their own fault class (descriptor corruption) with a
    // detection path.
    m.dram_store().set_fault_injector(fault_.get());
    for (auto& port : ports_) {
      port->set_fault_injector(fault_.get());
    }
    for (const auto& q : queues_->all_queues()) {
      q->set_fault_injector(fault_.get());
    }
    sa_local_queue_->set_fault_injector(fault_.get());
    sa_pentium_queue_->set_fault_injector(fault_.get());
    input_->token_ring().set_fault_injector(fault_.get());
    output_->token_ring().set_fault_injector(fault_.get());
  }

  // Everything allocated so far is fixed infrastructure (queues, readiness
  // words); anything above this watermark is flow state and must reconcile
  // against the flow table (RouterInvariants memory-bounds ledger).
  sram_infra_bytes_ = sram_arena_.outstanding();
}

void Router::SetObserver(Observer* obs) {
  core_.obs = obs;
  CycleProfiler* profiler = obs != nullptr ? &obs->profiler() : nullptr;
  for (int i = 0; i < chip_.num_mes(); ++i) {
    chip_.me(i).set_profiler(profiler);
  }
  for (auto& port : ports_) {
    port->set_tracer(obs);
  }
  for (const auto& q : queues_->all_queues()) {
    q->set_tracer(obs);
  }
  sa_local_queue_->set_tracer(obs);
  sa_pentium_queue_->set_tracer(obs);
  input_->token_ring().set_tracer(obs);
  output_->token_ring().set_tracer(obs);
}

void Router::SetGovernor(OverloadGovernor* governor) {
  core_.governor = governor;
  for (auto& port : ports_) {
    port->set_governor(governor);
  }
}

Router::~Router() {
  // Drop pending events before the coroutine frames die so nothing can
  // resume into freed state. A shared engine belongs to the cluster, which
  // clears it before destroying its member routers.
  if (owned_engine_ != nullptr) {
    owned_engine_->Clear();
  }
}

void Router::Start() {
  assert(!started_ && "Router::Start called twice");
  started_ = true;
  if (config_.output_contexts() > 0) {
    output_->Start();
  }
  if (config_.input_contexts() > 0) {
    input_->Start();
  }
  if (config_.enable_strongarm) {
    bridge_->Start();
  }
  if (config_.enable_pentium) {
    pentium_->Start();
  }
  if (config_.magic_drain) {
    DrainOnce();
  }
}

void Router::DrainOnce() {
  // Zero-cost simulated drain (Table 1 / Figure 7 input-only isolation):
  // completed packets are counted as forwarded the instant they are
  // enqueued.
  for (const auto& q : queues_->all_queues()) {
    while (auto d = q->Pop()) {
      stats_.forwarded += 1;
      stats_.forward_rate.Record(engine_.now());
    }
  }
  while (sa_local_queue_->Pop()) {
  }
  while (sa_pentium_queue_->Pop()) {
  }
  engine_.ScheduleIn(kPsPerUs, [this] { DrainOnce(); });
}

InstallOutcome Router::Install(const InstallRequest& request) {
  InstallOutcome outcome;

  FlowMeta meta;
  meta.key = request.key;
  meta.where = request.where;

  uint32_t state_bytes = request.state_bytes;
  switch (request.where) {
    case Where::kMicroEngine: {
      if (request.program == nullptr) {
        outcome.reject = InstallReject::kBadRequest;
        outcome.error = "ME install requires a VRP program";
        return outcome;
      }
      if (request.image_checksum != 0 &&
          VrpImageChecksum(*request.program) != request.image_checksum) {
        // The image was damaged between the sender and here (e.g. in
        // transit on the control channel): refuse before any resource is
        // touched, instead of discovering it at the first runtime trap.
        outcome.reject = InstallReject::kChecksumMismatch;
        outcome.error = "image checksum mismatch";
        stats_.upgrade_checksum_rejects += 1;
        return outcome;
      }
      if (state_bytes == 0) {
        state_bytes = request.program->flow_state_bytes;
      }
      const bool general = request.key.all;
      AdmissionResult admit = admission_.CheckMicroEngine(*request.program, general);
      if (!admit.admitted) {
        outcome.reject = InstallReject::kAdmission;
        outcome.error = admit.reason;
        return outcome;
      }
      // Allocate and zero the flow state (§4.5).
      meta.state_bytes = state_bytes;
      meta.state_addr = state_bytes > 0 ? sram_arena_.Alloc(state_bytes) : 0;
      if (state_bytes > 0) {
        chip_.memory().sram_store().Zero(meta.state_addr, state_bytes);
      }
      auto handle = general ? istore_.InstallGeneral(*request.program, meta.state_addr)
                            : istore_.InstallPerFlow(*request.program);
      if (!handle) {
        if (state_bytes > 0) {
          sram_arena_.Free(meta.state_addr, state_bytes);
        }
        outcome.reject = InstallReject::kIstoreFull;
        outcome.error = "ISTORE allocation failed";
        return outcome;
      }
      admission_.CommitMicroEngine(*handle, admit.worst_case, general);
      meta.me_program_id = *handle;
      break;
    }
    case Where::kStrongArm: {
      NativeForwarder* fw = sa_forwarders_.Get(request.native_index);
      if (fw == nullptr) {
        outcome.reject = InstallReject::kBadRequest;
        outcome.error = "unknown StrongARM jump-table index";
        return outcome;
      }
      AdmissionResult admit = admission_.CheckStrongArm(*fw, request.expected_pps);
      if (!admit.admitted) {
        outcome.reject = InstallReject::kAdmission;
        outcome.error = admit.reason;
        return outcome;
      }
      if (state_bytes == 0) {
        state_bytes = fw->state_bytes();
      }
      meta.state_bytes = state_bytes;
      meta.state_addr = state_bytes > 0 ? sram_arena_.Alloc(state_bytes) : 0;
      if (state_bytes > 0) {
        chip_.memory().sram_store().Zero(meta.state_addr, state_bytes);
      }
      meta.native_index = request.native_index;
      break;
    }
    case Where::kPentium: {
      NativeForwarder* fw = pe_forwarders_.Get(request.native_index);
      if (fw == nullptr) {
        outcome.reject = InstallReject::kBadRequest;
        outcome.error = "unknown Pentium jump-table index";
        return outcome;
      }
      const double cpp = request.expected_cpp > 0
                             ? request.expected_cpp
                             : static_cast<double>(fw->cycles_per_packet());
      AdmissionResult admit = admission_.CheckPentium(request.expected_pps, cpp);
      if (!admit.admitted) {
        outcome.reject = InstallReject::kAdmission;
        outcome.error = admit.reason;
        return outcome;
      }
      if (state_bytes == 0) {
        state_bytes = fw->state_bytes();
      }
      meta.state_bytes = state_bytes;
      meta.state_addr = state_bytes > 0 ? sram_arena_.Alloc(state_bytes) : 0;
      if (state_bytes > 0) {
        chip_.memory().sram_store().Zero(meta.state_addr, state_bytes);
      }
      meta.native_index = request.native_index;
      meta.reserved_pps = request.expected_pps;
      meta.reserved_cpp = cpp;
      break;
    }
  }

  const uint32_t fid = flow_table_.Insert(meta);
  switch (request.where) {
    case Where::kMicroEngine:
      break;  // committed above under the istore handle
    case Where::kStrongArm:
      admission_.CommitStrongArm(
          fid, request.expected_pps *
                   static_cast<double>(sa_forwarders_.Get(request.native_index)
                                           ->cycles_per_packet()));
      break;
    case Where::kPentium: {
      const FlowMeta* installed = flow_table_.Get(fid);
      admission_.CommitPentium(fid, installed->reserved_pps, installed->reserved_cpp);
      // Tickets proportional to the reserved cycle rate.
      pentium_->scheduler().ConfigureFlow(
          fid, std::max(1.0, installed->reserved_pps * installed->reserved_cpp / 1e4));
      break;
    }
  }

  outcome.ok = true;
  outcome.fid = fid;
  return outcome;
}

bool Router::Remove(uint32_t fid) {
  const FlowMeta* meta = flow_table_.Get(fid);
  if (meta == nullptr) {
    return false;
  }
  switch (meta->where) {
    case Where::kMicroEngine:
      istore_.Remove(meta->me_program_id);
      admission_.ReleaseMicroEngine(meta->me_program_id);
      break;
    case Where::kStrongArm:
      admission_.ReleaseStrongArm(fid);
      break;
    case Where::kPentium:
      admission_.ReleasePentium(fid);
      pentium_->scheduler().RemoveFlow(fid);
      break;
  }
  // Release the flow-state binding along with the forwarder: install
  // allocated it, so remove must return it, or repeated install/remove
  // cycles bleed the arena dry (and the memory-bounds ledger catches it).
  if (meta->state_bytes > 0) {
    sram_arena_.Free(meta->state_addr, meta->state_bytes);
  }
  return flow_table_.Remove(fid);
}

std::vector<uint8_t> Router::GetData(uint32_t fid) {
  const FlowMeta* meta = flow_table_.Get(fid);
  if (meta == nullptr || meta->state_bytes == 0) {
    return {};
  }
  std::vector<uint8_t> data(meta->state_bytes);
  chip_.memory().sram_store().Read(meta->state_addr, data);
  return data;
}

bool Router::SetData(uint32_t fid, std::span<const uint8_t> data) {
  const FlowMeta* meta = flow_table_.Get(fid);
  if (meta == nullptr || data.size() > meta->state_bytes) {
    return false;
  }
  chip_.memory().sram_store().Write(meta->state_addr, data);
  return true;
}

void Router::SetExceptionHandler(std::unique_ptr<NativeForwarder> handler) {
  exception_handler_ = std::move(handler);
  core_.sa_exception_handler = exception_handler_.get();
}

bool Router::AddRoute(const std::string& cidr, uint8_t out_port) {
  return route_table_.AddRoute(cidr, out_port);
}

void Router::WarmRouteCache(int spread) {
  for (int p = 0; p < config_.num_ports(); ++p) {
    for (int low = 1; low <= spread; ++low) {
      const uint32_t dst = DstIpForPort(static_cast<uint8_t>(p), static_cast<uint16_t>(low));
      auto result = route_table_.Lookup(dst);
      if (result.entry) {
        route_cache_.Insert(dst, *result.entry, route_table_.epoch());
      }
    }
  }
}

void Router::StartMeasurement() {
  stats_.StartWindow(engine_.now());
  chip_.memory().ResetStats();
  chip_.strongarm().ResetStats();
  host_.pentium().ResetStats();
}

double Router::ForwardingRateMpps() const { return stats_.forward_rate.RatePerSec() / 1e6; }

}  // namespace npr
