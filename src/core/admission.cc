#include "src/core/admission.h"

#include <algorithm>

#include "src/sim/time.h"

namespace npr {
namespace {

VrpCost Sum(const VrpCost& a, const VrpCost& b) {
  VrpCost s;
  s.cycles = a.cycles + b.cycles;
  s.sram_reads = a.sram_reads + b.sram_reads;
  s.sram_writes = a.sram_writes + b.sram_writes;
  s.hashes = a.hashes + b.hashes;
  return s;
}

}  // namespace

AdmissionControl::AdmissionControl(const RouterConfig& config, IStoreLayout& istore)
    : config_(config), istore_(istore) {}

VrpCost AdmissionControl::max_per_flow_cost() const {
  VrpCost max_cost;
  for (const auto& [handle, entry] : me_committed_) {
    if (!entry.second) {  // per-flow
      max_cost.cycles = std::max(max_cost.cycles, entry.first.cycles);
      max_cost.sram_reads = std::max(max_cost.sram_reads, entry.first.sram_reads);
      max_cost.sram_writes = std::max(max_cost.sram_writes, entry.first.sram_writes);
      max_cost.hashes = std::max(max_cost.hashes, entry.first.hashes);
    }
  }
  return max_cost;
}

AdmissionResult AdmissionControl::CheckMicroEngine(const VrpProgram& program,
                                                   bool general) const {
  // Inspect the code (§4.6): the verifier rejects loops and computes the
  // exact worst-case cost.
  VerifyResult verify = VerifyProgram(program);
  if (!verify.ok) {
    return AdmissionResult::Deny("verification failed: " + verify.error);
  }

  const uint32_t slots_needed = verify.instructions + (general ? 0 : 1);
  if (slots_needed > istore_.free_slots()) {
    return AdmissionResult::Deny("ISTORE full: need " + std::to_string(slots_needed) +
                                 " slots, " + std::to_string(istore_.free_slots()) + " free");
  }

  // General forwarders run serially (sum); per-flow forwarders logically in
  // parallel (only the most expensive applies to any one packet).
  VrpCost total = Sum(sum_generals_, max_per_flow_cost());
  if (general) {
    total = Sum(total, verify.worst_case);
  } else {
    VrpCost max_pf = max_per_flow_cost();
    VrpCost candidate = verify.worst_case;
    max_pf.cycles = std::max(max_pf.cycles, candidate.cycles);
    max_pf.sram_reads = std::max(max_pf.sram_reads, candidate.sram_reads);
    max_pf.sram_writes = std::max(max_pf.sram_writes, candidate.sram_writes);
    max_pf.hashes = std::max(max_pf.hashes, candidate.hashes);
    total = Sum(sum_generals_, max_pf);
  }
  if (!config_.budget.Admits(total)) {
    return AdmissionResult::Deny("VRP budget exceeded: need {cycles=" +
                                 std::to_string(total.cycles) + " sram=" +
                                 std::to_string(total.sram_transfers()) + " hashes=" +
                                 std::to_string(total.hashes) + "} budget " +
                                 config_.budget.ToString());
  }
  return AdmissionResult::Allow(verify.worst_case);
}

void AdmissionControl::CommitMicroEngine(uint32_t handle, const VrpCost& cost, bool general) {
  me_committed_[handle] = {cost, general};
  if (general) {
    sum_generals_ = Sum(sum_generals_, cost);
  }
}

void AdmissionControl::ReleaseMicroEngine(uint32_t handle) {
  auto it = me_committed_.find(handle);
  if (it == me_committed_.end()) {
    return;
  }
  if (it->second.second) {
    sum_generals_.cycles -= it->second.first.cycles;
    sum_generals_.sram_reads -= it->second.first.sram_reads;
    sum_generals_.sram_writes -= it->second.first.sram_writes;
    sum_generals_.hashes -= it->second.first.hashes;
  }
  me_committed_.erase(it);
}

AdmissionResult AdmissionControl::CheckReplaceMicroEngine(uint32_t handle,
                                                          const VrpProgram& next) const {
  auto it = me_committed_.find(handle);
  if (it == me_committed_.end()) {
    return AdmissionResult::Deny("replace: unknown MicroEngine handle " +
                                 std::to_string(handle));
  }
  const VrpCost old_cost = it->second.first;
  const bool general = it->second.second;

  VerifyResult verify = VerifyProgram(next);
  if (!verify.ok) {
    return AdmissionResult::Deny("verification failed: " + verify.error);
  }
  const uint32_t slots_needed = verify.instructions + (general ? 0 : 1);
  if (slots_needed > istore_.free_slots()) {
    return AdmissionResult::Deny("ISTORE full: double buffer needs " +
                                 std::to_string(slots_needed) + " slots, " +
                                 std::to_string(istore_.free_slots()) + " free");
  }

  // Budget with the old image swapped out for the new one. For per-flow
  // handles the parallel-max must be recomputed without this handle.
  VrpCost total;
  if (general) {
    VrpCost generals = sum_generals_;
    generals.cycles = generals.cycles - old_cost.cycles + verify.worst_case.cycles;
    generals.sram_reads = generals.sram_reads - old_cost.sram_reads + verify.worst_case.sram_reads;
    generals.sram_writes =
        generals.sram_writes - old_cost.sram_writes + verify.worst_case.sram_writes;
    generals.hashes = generals.hashes - old_cost.hashes + verify.worst_case.hashes;
    total = Sum(generals, max_per_flow_cost());
  } else {
    VrpCost max_pf = verify.worst_case;
    for (const auto& [h, entry] : me_committed_) {
      if (entry.second || h == handle) {
        continue;
      }
      max_pf.cycles = std::max(max_pf.cycles, entry.first.cycles);
      max_pf.sram_reads = std::max(max_pf.sram_reads, entry.first.sram_reads);
      max_pf.sram_writes = std::max(max_pf.sram_writes, entry.first.sram_writes);
      max_pf.hashes = std::max(max_pf.hashes, entry.first.hashes);
    }
    total = Sum(sum_generals_, max_pf);
  }
  if (!config_.budget.Admits(total)) {
    return AdmissionResult::Deny("VRP budget exceeded after replace: need {cycles=" +
                                 std::to_string(total.cycles) + " sram=" +
                                 std::to_string(total.sram_transfers()) + " hashes=" +
                                 std::to_string(total.hashes) + "} budget " +
                                 config_.budget.ToString());
  }
  return AdmissionResult::Allow(verify.worst_case);
}

void AdmissionControl::ReplaceMicroEngine(uint32_t handle, const VrpCost& cost) {
  auto it = me_committed_.find(handle);
  if (it == me_committed_.end()) {
    return;
  }
  if (it->second.second) {
    sum_generals_.cycles = sum_generals_.cycles - it->second.first.cycles + cost.cycles;
    sum_generals_.sram_reads =
        sum_generals_.sram_reads - it->second.first.sram_reads + cost.sram_reads;
    sum_generals_.sram_writes =
        sum_generals_.sram_writes - it->second.first.sram_writes + cost.sram_writes;
    sum_generals_.hashes = sum_generals_.hashes - it->second.first.hashes + cost.hashes;
  }
  it->second.first = cost;
}

VrpCost AdmissionControl::CommittedCost(uint32_t handle) const {
  auto it = me_committed_.find(handle);
  return it == me_committed_.end() ? VrpCost{} : it->second.first;
}

AdmissionResult AdmissionControl::CheckStrongArm(const NativeForwarder& forwarder,
                                                 double expected_pps) const {
  const double capacity = kIxpClock.FrequencyHz();
  const double available = capacity * (1.0 - sa_bridge_reserve);
  const double needed = expected_pps * static_cast<double>(forwarder.cycles_per_packet());
  if (sa_cycle_rate_ + needed > available) {
    return AdmissionResult::Deny("StrongARM capacity: bridge reserve leaves " +
                                 std::to_string(available) + " cycles/s, committed " +
                                 std::to_string(sa_cycle_rate_) + ", requested " +
                                 std::to_string(needed));
  }
  return AdmissionResult::Allow();
}

void AdmissionControl::CommitStrongArm(uint32_t fid, double cycle_rate) {
  sa_committed_[fid] = cycle_rate;
  sa_cycle_rate_ += cycle_rate;
}

void AdmissionControl::ReleaseStrongArm(uint32_t fid) {
  auto it = sa_committed_.find(fid);
  if (it != sa_committed_.end()) {
    sa_cycle_rate_ -= it->second;
    sa_committed_.erase(it);
  }
}

AdmissionResult AdmissionControl::CheckPentium(double expected_pps,
                                               double cycles_per_packet) const {
  const double capacity = kPentiumClock.FrequencyHz();
  // Each packet also costs the bridge path: software I2O in and out.
  const double bridge_cpp =
      static_cast<double>(config_.hw.pentium_fixed_cycles) * 1.5 +
      config_.hw.pentium_per_byte_cycles * 72.0;
  const double needed = expected_pps * (cycles_per_packet + bridge_cpp);
  if (pe_cycle_rate_ + needed > capacity) {
    return AdmissionResult::Deny("Pentium cycle budget: capacity " + std::to_string(capacity) +
                                 ", committed " + std::to_string(pe_cycle_rate_) +
                                 ", requested " + std::to_string(needed));
  }
  if (pe_packet_rate_ + expected_pps > pentium_max_pps) {
    return AdmissionResult::Deny("Pentium packet rate: max " + std::to_string(pentium_max_pps) +
                                 " pps, committed " + std::to_string(pe_packet_rate_));
  }
  return AdmissionResult::Allow();
}

void AdmissionControl::CommitPentium(uint32_t fid, double expected_pps,
                                     double cycles_per_packet) {
  pe_committed_[fid] = {expected_pps, cycles_per_packet};
  const double bridge_cpp =
      static_cast<double>(config_.hw.pentium_fixed_cycles) * 1.5 +
      config_.hw.pentium_per_byte_cycles * 72.0;
  pe_cycle_rate_ += expected_pps * (cycles_per_packet + bridge_cpp);
  pe_packet_rate_ += expected_pps;
}

void AdmissionControl::ReleasePentium(uint32_t fid) {
  auto it = pe_committed_.find(fid);
  if (it == pe_committed_.end()) {
    return;
  }
  const double bridge_cpp =
      static_cast<double>(config_.hw.pentium_fixed_cycles) * 1.5 +
      config_.hw.pentium_per_byte_cycles * 72.0;
  pe_cycle_rate_ -= it->second.first * (it->second.second + bridge_cpp);
  pe_packet_rate_ -= it->second.first;
  pe_committed_.erase(it);
}

}  // namespace npr
