// Packet classification (§2.1, §4.5).
//
// The classifier runs inside protocol_processing on the first MP of each
// packet. The fast path (§3.5.1) validates the IP header and hashes the
// destination address into the route cache; the full classifier also hashes
// the IP and TCP headers separately, combines them, and looks up flow
// metadata installed through the install() interface. Exceptional packets
// (options, TTL expiry, cache misses) divert to the StrongARM; flow-bound
// packets may divert to the StrongARM or Pentium.

#ifndef SRC_CORE_CLASSIFIER_H_
#define SRC_CORE_CLASSIFIER_H_

#include <cstdint>
#include <span>

#include "src/core/flow_table.h"
#include "src/core/router_config.h"
#include "src/ixp/hash_unit.h"
#include "src/route/route_cache.h"
#include "src/route/route_table.h"

namespace npr {

struct ClassifyOutcome {
  enum class Target : uint8_t {
    kPort,           // fast path: forward out `out_port`
    kStrongArmLocal, // exceptional or SA-bound flow
    kPentium,        // Pentium-bound flow or control protocol
    kDrop,           // invalid packet
  };

  Target target = Target::kDrop;
  uint8_t out_port = 0;
  uint32_t priority = 0;
  const FlowMeta* flow = nullptr;  // matched per-flow metadata (any level)
  RouteEntry route;                // valid when a route was found
  bool route_found = false;
  const char* reason = "";         // why exceptional / dropped (accounting)
};

class Classifier {
 public:
  Classifier(ClassifierMode mode, RouteTable& routes, RouteCache& cache, FlowTable& flows,
             HashUnit& hash)
      : mode_(mode), routes_(routes), cache_(cache), flows_(flows), hash_(hash) {}

  // Classifies from the packet's first bytes (Ethernet + IP [+ TCP/UDP]
  // headers; the first MP is enough, §4.3). Purely functional — the input
  // stage charges the cycles and SRAM accesses.
  ClassifyOutcome Classify(std::span<const uint8_t> frame_head);

  // Resolves a route the slow way (CPE walk) and refreshes the cache; used
  // by the StrongARM on cache misses. Returns accesses walked.
  int SlowPathResolve(uint32_t dst_ip, RouteEntry* out);

 private:
  ClassifierMode mode_;
  RouteTable& routes_;
  RouteCache& cache_;
  FlowTable& flows_;
  HashUnit& hash_;
};

}  // namespace npr

#endif  // SRC_CORE_CLASSIFIER_H_
